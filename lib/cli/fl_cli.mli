(** Shared command-line plumbing for the executables and the bench
    harness: flag scanning, the --trace/--stats wiring, and the bench
    baseline regression gate.

    Input-validating helpers follow CLI convention — they print a
    diagnostic to stderr and [exit 2] on bad user input. *)

(** [take_opt flag args] strips every [flag VALUE] pair out of [args] and
    returns the last VALUE seen.  Exits 2 when [flag] is last with no
    value. *)
val take_opt : string -> string list -> string option * string list

(** [take_flag flag args] is whether [flag] occurs, and [args] without
    it. *)
val take_flag : string -> string list -> bool * string list

(** Parsed inprocessing flags: [enabled = None] when neither
    [--inprocess] nor [--no-inprocess] was given (caller's default
    applies); [every] from [--inprocess-every N]. *)
type inprocess = { enabled : bool option; every : int option }

(** [take_inprocess args] strips [--inprocess], [--no-inprocess] and
    [--inprocess-every N] from [args].  Exits 2 when both polarity flags
    are present or N is not a positive integer. *)
val take_inprocess : string list -> inprocess * string list

(** [check_inprocess ~on ~off ~every] validates pre-parsed flag values
    (the Cmdliner path) with the same exit-2 behaviour. *)
val check_inprocess : on:bool -> off:bool -> every:int option -> inprocess

(** [parse_inprocess_every s] is [s] as a positive int; exits 2
    otherwise. *)
val parse_inprocess_every : string -> int

(** [take_solver args] strips the shared solver flag group —
    [--portfolio N], [--portfolio-det], [--seed N], [--cube-depth D],
    [--cdcl-var-decay F], [--cdcl-restart-base N],
    [--cdcl-phase false|true|random], [--cdcl-random-freq F] — and folds
    it to a {!Fl_sat.Portfolio.spec}: [None] when no flag was given (the
    plain sequential path), otherwise a spec with [workers] from
    [--portfolio] (default 1, which forces deterministic mode — a 1-wide
    portfolio has nothing to race) and the [--cdcl-*] values as the base
    configuration.  Exits 2 on out-of-range values. *)
val take_solver : string list -> Fl_sat.Portfolio.spec option * string list

(** [check_solver] builds the same spec from pre-parsed values (the
    Cmdliner path), with the same validation / exit-2 behaviour. *)
val check_solver :
  ?portfolio:int ->
  ?det:bool ->
  ?seed:int ->
  ?cube_depth:int ->
  ?var_decay:float ->
  ?restart_base:int ->
  ?phase:[ `False | `True | `Random ] ->
  ?random_freq:float ->
  unit ->
  Fl_sat.Portfolio.spec option

(** [parse_phase s] parses a [--cdcl-phase] value; exits 2 otherwise. *)
val parse_phase : string -> [ `False | `True | `Random ]

(** Usage-string fragment describing the solver flag group. *)
val solver_usage : string

(** [slurp path] reads the whole file as raw bytes; ["-"] reads stdin to
    EOF.  Exits 2 when the file cannot be opened. *)
val slurp : string -> string

(** Pool width default: [recommended_domain_count () - 1], at least 1. *)
val default_jobs : unit -> int

(** [parse_jobs s] is [s] as a positive int; exits 2 otherwise. *)
val parse_jobs : string -> int

(** [install_trace file] truncates [file], installs a JSONL sink writing
    to it, and closes it at exit. *)
val install_trace : string -> unit

(** [print_stats ()] prints the full default-registry snapshot (counters,
    gauges, histogram summaries) to stderr. *)
val print_stats : unit -> unit

(** [stats_on_exit ()] registers {!print_stats} with [at_exit]. *)
val stats_on_exit : unit -> unit

(** Regression gate over two BENCH_<name>.json reports (see
    EXPERIMENTS.md).  Gating rules:
    - top-level strings must be equal;
    - a [true] boolean in the baseline must stay [true];
    - all-string sections (the per-cell attack statuses) must match
      member-wise — any flip, missing or extra cell fails;
    - watched numeric metrics must stay within the ratio tolerance
      ([current/baseline <= tolerance] for lower-is-better metrics,
      [>= 1/tolerance] for higher-is-better ones);
    - everything else (wall time, speedup, counters, histograms,
      per-cell numeric sections) is informational. *)
module Baseline : sig
  (** [gate ?tolerance ?watch_lower ?watch_higher ~baseline ~current ()]
      loads both report files, prints a ratio table and a per-section
      status summary to stdout, and returns the list of gate failures (if
      any).  [tolerance] defaults to 1.25; [watch_lower] defaults to
      [["solve_ratio_geomean"]], [watch_higher] to
      [["max_clause_reduction_pct"]].
      @raise Failure when either file is unreadable or not a JSON
      object. *)
  val gate :
    ?tolerance:float ->
    ?watch_lower:string list ->
    ?watch_higher:string list ->
    baseline:string ->
    current:string ->
    unit ->
    (unit, string list) result
end
