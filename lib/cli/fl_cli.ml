(* Shared command-line plumbing for the binaries and the bench harness.

   Three executables (bench/main, bin/flsat, bin/fulllock_cli) grew the
   same --trace/--stats/--jobs handling independently; this module is the
   single copy.  Error handling follows CLI convention: helpers that
   validate user input print a diagnostic and [exit 2]. *)

(* ------------------------------------------------------------------ *)
(* Argument scanning                                                   *)
(* ------------------------------------------------------------------ *)

let take_opt flag args =
  let value = ref None in
  let rec go acc = function
    | [] -> List.rev acc
    | f :: v :: rest when f = flag ->
      value := Some v;
      go acc rest
    | [ f ] when f = flag ->
      Printf.eprintf "%s needs an argument\n" flag;
      exit 2
    | a :: rest -> go (a :: acc) rest
  in
  let rest = go [] args in
  !value, rest

let take_flag flag args =
  let present = List.mem flag args in
  present, List.filter (fun a -> a <> flag) args

(* --inprocess / --no-inprocess / --inprocess-every N, shared by the
   bench harness and both binaries.  [enabled = None] means the caller's
   default applies (off for attacks, per-experiment for bench). *)
type inprocess = { enabled : bool option; every : int option }

let parse_inprocess_every s =
  match int_of_string_opt s with
  | Some n when n >= 1 -> n
  | _ ->
    Printf.eprintf "--inprocess-every needs a positive integer, got %S\n" s;
    exit 2

let check_inprocess ~on ~off ~every =
  if on && off then begin
    Printf.eprintf "--inprocess and --no-inprocess are mutually exclusive\n";
    exit 2
  end;
  (match every with
   | Some n when n < 1 ->
     Printf.eprintf "--inprocess-every needs a positive integer, got %d\n" n;
     exit 2
   | _ -> ());
  {
    enabled = (if on then Some true else if off then Some false else None);
    every;
  }

let take_inprocess args =
  let every, args = take_opt "--inprocess-every" args in
  let on, args = take_flag "--inprocess" args in
  let off, args = take_flag "--no-inprocess" args in
  let every = Option.map parse_inprocess_every every in
  check_inprocess ~on ~off ~every, args

(* --portfolio / --seed / --cdcl-* solver flag group, shared by flsat,
   fulllock and the bench harness.  All-defaults folds to [None] so the
   plain sequential Cdcl path stays untouched; any flag present builds a
   Portfolio spec (a 1-worker deterministic portfolio is exactly a
   configured Cdcl, so --cdcl-* knobs work without --portfolio). *)

let parse_pos_int flag s =
  match int_of_string_opt s with
  | Some n when n >= 1 -> n
  | _ ->
    Printf.eprintf "%s needs a positive integer, got %S\n" flag s;
    exit 2

let parse_int flag s =
  match int_of_string_opt s with
  | Some n -> n
  | None ->
    Printf.eprintf "%s needs an integer, got %S\n" flag s;
    exit 2

let parse_unit_float flag s =
  match float_of_string_opt s with
  | Some f when f >= 0.0 && f <= 1.0 -> f
  | _ ->
    Printf.eprintf "%s needs a float in [0,1], got %S\n" flag s;
    exit 2

let parse_phase s =
  match String.lowercase_ascii s with
  | "false" | "0" -> `False
  | "true" | "1" -> `True
  | "random" -> `Random
  | _ ->
    Printf.eprintf "--cdcl-phase needs false|true|random, got %S\n" s;
    exit 2

let check_solver ?portfolio ?(det = false) ?seed ?cube_depth ?var_decay
    ?restart_base ?phase ?random_freq () =
  (match portfolio with
   | Some n when n < 1 ->
     Printf.eprintf "--portfolio needs a positive integer, got %d\n" n;
     exit 2
   | _ -> ());
  (match cube_depth with
   | Some d when d < 0 || d > 16 ->
     Printf.eprintf "--cube-depth needs an integer in [0,16], got %d\n" d;
     exit 2
   | _ -> ());
  (match var_decay with
   | Some f when not (f > 0.0 && f < 1.0) ->
     Printf.eprintf "--cdcl-var-decay needs a float in (0,1), got %g\n" f;
     exit 2
   | _ -> ());
  (match restart_base with
   | Some n when n < 1 ->
     Printf.eprintf "--cdcl-restart-base needs a positive integer, got %d\n" n;
     exit 2
   | _ -> ());
  (match random_freq with
   | Some f when not (f >= 0.0 && f <= 1.0) ->
     Printf.eprintf "--cdcl-random-freq needs a float in [0,1], got %g\n" f;
     exit 2
   | _ -> ());
  if
    portfolio = None && not det && seed = None && cube_depth = None
    && var_decay = None && restart_base = None && phase = None
    && random_freq = None
  then None
  else begin
    let base = Fl_sat.Cdcl.default_config in
    let base =
      {
        base with
        Fl_sat.Cdcl.seed = Option.value seed ~default:base.Fl_sat.Cdcl.seed;
        var_decay =
          Option.value var_decay ~default:base.Fl_sat.Cdcl.var_decay;
        restart_base =
          Option.value restart_base ~default:base.Fl_sat.Cdcl.restart_base;
        phase_default =
          Option.value phase ~default:base.Fl_sat.Cdcl.phase_default;
        random_var_freq =
          Option.value random_freq
            ~default:base.Fl_sat.Cdcl.random_var_freq;
      }
    in
    let workers = Option.value portfolio ~default:1 in
    Some
      {
        Fl_sat.Portfolio.default_spec with
        Fl_sat.Portfolio.workers;
        seed = Option.value seed ~default:0;
        (* A 1-wide portfolio has nothing to race: keep it on the
           deterministic inline path. *)
        deterministic = det || workers = 1;
        cube_depth = Option.value cube_depth ~default:0;
        base_config = base;
      }
  end

let take_solver args =
  let portfolio, args = take_opt "--portfolio" args in
  let det, args = take_flag "--portfolio-det" args in
  let seed, args = take_opt "--seed" args in
  let cube_depth, args = take_opt "--cube-depth" args in
  let var_decay, args = take_opt "--cdcl-var-decay" args in
  let restart_base, args = take_opt "--cdcl-restart-base" args in
  let phase, args = take_opt "--cdcl-phase" args in
  let random_freq, args = take_opt "--cdcl-random-freq" args in
  let p name f = Option.map (f name) in
  ( check_solver
      ?portfolio:(p "--portfolio" parse_pos_int portfolio)
      ~det
      ?seed:(p "--seed" parse_int seed)
      ?cube_depth:(p "--cube-depth" parse_int cube_depth)
      ?var_decay:
        (Option.map
           (fun s ->
             match float_of_string_opt s with
             | Some f -> f
             | None ->
               Printf.eprintf "--cdcl-var-decay needs a float, got %S\n" s;
               exit 2)
           var_decay)
      ?restart_base:(p "--cdcl-restart-base" parse_pos_int restart_base)
      ?phase:(Option.map parse_phase phase)
      ?random_freq:(p "--cdcl-random-freq" parse_unit_float random_freq)
      (),
    args )

(* The usage-string fragment for the group, so the three binaries stay
   in sync. *)
let solver_usage =
  "  --portfolio N           race N diverse CDCL members per miter solve\n\
  \  --portfolio-det         deterministic portfolio (fixed member, no domains)\n\
  \  --seed N                solver seed (diversification / det member pick)\n\
  \  --cube-depth D          cube-and-conquer on 2^D high-fanout key vars\n\
  \  --cdcl-var-decay F      VSIDS activity decay, in (0,1)  [0.95]\n\
  \  --cdcl-restart-base N   Luby restart unit, conflicts    [64]\n\
  \  --cdcl-phase P          saved-phase default: false|true|random\n\
  \  --cdcl-random-freq F    random decision fraction, in [0,1]  [0]"

(* Whole-file slurp with the conventional "-" = stdin spelling, shared
   by the daemon client (bench payloads travel inline over the socket)
   and fltrace. *)
let slurp path =
  let read_channel ic =
    let buf = Buffer.create 65536 in
    (try
       while true do
         Buffer.add_channel buf ic 65536
       done
     with End_of_file -> ());
    Buffer.contents buf
  in
  if path = "-" then read_channel stdin
  else
    match open_in_bin path with
    | exception Sys_error msg ->
      Printf.eprintf "cannot read %s: %s\n" path msg;
      exit 2
    | ic ->
      Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
          read_channel ic)

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

let parse_jobs s =
  match int_of_string_opt s with
  | Some n when n >= 1 -> n
  | _ ->
    Printf.eprintf "--jobs needs a positive integer, got %S\n" s;
    exit 2

(* ------------------------------------------------------------------ *)
(* Trace and stats wiring                                              *)
(* ------------------------------------------------------------------ *)

let install_trace file =
  let oc = open_out file in
  ignore (Fl_obs.add_sink (Fl_obs.jsonl_sink oc));
  at_exit (fun () -> close_out oc)

(* The full snapshot: counters, gauges and histogram summaries — exactly
   what Fl_obs.pp_snapshot prints now that histograms exist. *)
let print_stats () = Format.eprintf "%a" Fl_obs.pp_snapshot ()

let stats_on_exit () = at_exit print_stats

(* ------------------------------------------------------------------ *)
(* Bench regression gate                                               *)
(* ------------------------------------------------------------------ *)

module Baseline = struct
  module J = Fl_obs.Json

  (* Member names that vary with machine, load or pool width: shown in the
     ratio table for information but never gated. *)
  let informational =
    [ "wall_seconds"; "task_seconds"; "speedup"; "jobs"; "cells" ]

  let default_watch_lower =
    [ "solve_ratio_geomean"; "solve_ratio_inp_geomean" ]
  let default_watch_higher = [ "max_clause_reduction_pct" ]

  let load path =
    let ic = open_in path in
    let text =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match J.parse text with
    | J.Jobj members -> members
    | _ -> failwith (path ^ ": expected a JSON object")
    | exception J.Parse_error msg -> failwith (path ^ ": " ^ msg)

  let is_string_section = function
    | J.Jobj members ->
      members <> []
      && List.for_all
           (fun (_, v) -> match v with J.Jstring _ -> true | _ -> false)
           members
    | _ -> false

  (* Compare two all-string sections member-wise; every mismatch is a
     status flip.  Returns (matches, failures). *)
  let compare_statuses name b c =
    let fails = ref [] and matches = ref 0 in
    let get o k = match o with J.Jobj ms -> List.assoc_opt k ms | _ -> None in
    let keys o = match o with J.Jobj ms -> List.map fst ms | _ -> [] in
    List.iter
      (fun k ->
        match get b k, get c k with
        | Some (J.Jstring vb), Some (J.Jstring vc) ->
          if vb = vc then incr matches
          else
            fails :=
              Printf.sprintf "%s[%s]: status flipped %S -> %S" name k vb vc
              :: !fails
        | _, None ->
          fails := Printf.sprintf "%s[%s]: missing from current run" name k :: !fails
        | _ -> ())
      (keys b);
    List.iter
      (fun k ->
        if get b k = None then
          fails := Printf.sprintf "%s[%s]: not in baseline" name k :: !fails)
      (keys c);
    !matches, List.rev !fails

  let gate ?(tolerance = 1.25) ?(watch_lower = default_watch_lower)
      ?(watch_higher = default_watch_higher) ~baseline ~current () =
    let b = load baseline and c = load current in
    let failures = ref [] in
    let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
    let rows = ref [] in
    let row name vb vc gate_note =
      rows := (name, vb, vc, gate_note) :: !rows
    in
    List.iter
      (fun (name, vb) ->
        let vc = List.assoc_opt name c in
        match vb, vc with
        | J.Jstring sb, Some (J.Jstring sc) ->
          if sb <> sc then fail "%s: %S -> %S" name sb sc
        | J.Jbool bb, Some (J.Jbool bc) ->
          if bb && not bc then fail "%s: flipped true -> false" name
        | J.Jobj _, Some sc when is_string_section vb ->
          let matches, fails = compare_statuses name vb sc in
          failures := List.rev_append fails !failures;
          Printf.printf "%-28s %d statuses, %d match, %d flips\n" name
            (matches + List.length fails)
            matches (List.length fails)
        | (J.Jint _ | J.Jfloat _), Some ((J.Jint _ | J.Jfloat _) as vcn) ->
          let fb = Option.get (J.number vb)
          and fc = Option.get (J.number vcn) in
          let ratio = if fb = 0.0 then Float.nan else fc /. fb in
          let watched_lower = List.mem name watch_lower
          and watched_higher = List.mem name watch_higher in
          let note =
            if List.mem name informational then "info"
            else if watched_lower then begin
              if ratio > tolerance then begin
                fail "%s: %.4f -> %.4f (ratio %.3f > %.2f)" name fb fc ratio
                  tolerance;
                "REGRESSED"
              end
              else Printf.sprintf "ok (<= %.2fx)" tolerance
            end
            else if watched_higher then begin
              if ratio < 1.0 /. tolerance then begin
                fail "%s: %.4f -> %.4f (ratio %.3f < %.3f)" name fb fc ratio
                  (1.0 /. tolerance);
                "REGRESSED"
              end
              else Printf.sprintf "ok (>= %.2fx)" (1.0 /. tolerance)
            end
            else "-"
          in
          row name fb fc note
        | _, None ->
          if
            List.mem name watch_lower
            || List.mem name watch_higher
            || is_string_section vb
          then fail "%s: missing from current run" name
        | _ -> ())
      b;
    List.iter
      (fun (name, _) ->
        if
          List.assoc_opt name b = None
          && (List.mem name watch_lower || List.mem name watch_higher)
        then fail "%s: watched metric not in baseline" name)
      c;
    if !rows <> [] then begin
      Printf.printf "%-28s %14s %14s %8s  %s\n" "metric" "baseline" "current"
        "ratio" "gate";
      List.iter
        (fun (name, fb, fc, note) ->
          let ratio = if fb = 0.0 then Float.nan else fc /. fb in
          Printf.printf "%-28s %14.4f %14.4f %8.3f  %s\n" name fb fc ratio note)
        (List.rev !rows)
    end;
    match List.rev !failures with
    | [] ->
      Printf.printf "baseline gate: PASS (vs %s)\n%!" baseline;
      Ok ()
    | fails ->
      Printf.printf "baseline gate: FAIL (vs %s)\n%!" baseline;
      Error fails
end
