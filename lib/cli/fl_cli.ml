(* Shared command-line plumbing for the binaries and the bench harness.

   Three executables (bench/main, bin/flsat, bin/fulllock_cli) grew the
   same --trace/--stats/--jobs handling independently; this module is the
   single copy.  Error handling follows CLI convention: helpers that
   validate user input print a diagnostic and [exit 2]. *)

(* ------------------------------------------------------------------ *)
(* Argument scanning                                                   *)
(* ------------------------------------------------------------------ *)

let take_opt flag args =
  let value = ref None in
  let rec go acc = function
    | [] -> List.rev acc
    | f :: v :: rest when f = flag ->
      value := Some v;
      go acc rest
    | [ f ] when f = flag ->
      Printf.eprintf "%s needs an argument\n" flag;
      exit 2
    | a :: rest -> go (a :: acc) rest
  in
  let rest = go [] args in
  !value, rest

let take_flag flag args =
  let present = List.mem flag args in
  present, List.filter (fun a -> a <> flag) args

(* --inprocess / --no-inprocess / --inprocess-every N, shared by the
   bench harness and both binaries.  [enabled = None] means the caller's
   default applies (off for attacks, per-experiment for bench). *)
type inprocess = { enabled : bool option; every : int option }

let parse_inprocess_every s =
  match int_of_string_opt s with
  | Some n when n >= 1 -> n
  | _ ->
    Printf.eprintf "--inprocess-every needs a positive integer, got %S\n" s;
    exit 2

let check_inprocess ~on ~off ~every =
  if on && off then begin
    Printf.eprintf "--inprocess and --no-inprocess are mutually exclusive\n";
    exit 2
  end;
  (match every with
   | Some n when n < 1 ->
     Printf.eprintf "--inprocess-every needs a positive integer, got %d\n" n;
     exit 2
   | _ -> ());
  {
    enabled = (if on then Some true else if off then Some false else None);
    every;
  }

let take_inprocess args =
  let every, args = take_opt "--inprocess-every" args in
  let on, args = take_flag "--inprocess" args in
  let off, args = take_flag "--no-inprocess" args in
  let every = Option.map parse_inprocess_every every in
  check_inprocess ~on ~off ~every, args

(* Whole-file slurp with the conventional "-" = stdin spelling, shared
   by the daemon client (bench payloads travel inline over the socket)
   and fltrace. *)
let slurp path =
  let read_channel ic =
    let buf = Buffer.create 65536 in
    (try
       while true do
         Buffer.add_channel buf ic 65536
       done
     with End_of_file -> ());
    Buffer.contents buf
  in
  if path = "-" then read_channel stdin
  else
    match open_in_bin path with
    | exception Sys_error msg ->
      Printf.eprintf "cannot read %s: %s\n" path msg;
      exit 2
    | ic ->
      Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
          read_channel ic)

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

let parse_jobs s =
  match int_of_string_opt s with
  | Some n when n >= 1 -> n
  | _ ->
    Printf.eprintf "--jobs needs a positive integer, got %S\n" s;
    exit 2

(* ------------------------------------------------------------------ *)
(* Trace and stats wiring                                              *)
(* ------------------------------------------------------------------ *)

let install_trace file =
  let oc = open_out file in
  ignore (Fl_obs.add_sink (Fl_obs.jsonl_sink oc));
  at_exit (fun () -> close_out oc)

(* The full snapshot: counters, gauges and histogram summaries — exactly
   what Fl_obs.pp_snapshot prints now that histograms exist. *)
let print_stats () = Format.eprintf "%a" Fl_obs.pp_snapshot ()

let stats_on_exit () = at_exit print_stats

(* ------------------------------------------------------------------ *)
(* Bench regression gate                                               *)
(* ------------------------------------------------------------------ *)

module Baseline = struct
  module J = Fl_obs.Json

  (* Member names that vary with machine, load or pool width: shown in the
     ratio table for information but never gated. *)
  let informational =
    [ "wall_seconds"; "task_seconds"; "speedup"; "jobs"; "cells" ]

  let default_watch_lower =
    [ "solve_ratio_geomean"; "solve_ratio_inp_geomean" ]
  let default_watch_higher = [ "max_clause_reduction_pct" ]

  let load path =
    let ic = open_in path in
    let text =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match J.parse text with
    | J.Jobj members -> members
    | _ -> failwith (path ^ ": expected a JSON object")
    | exception J.Parse_error msg -> failwith (path ^ ": " ^ msg)

  let is_string_section = function
    | J.Jobj members ->
      members <> []
      && List.for_all
           (fun (_, v) -> match v with J.Jstring _ -> true | _ -> false)
           members
    | _ -> false

  (* Compare two all-string sections member-wise; every mismatch is a
     status flip.  Returns (matches, failures). *)
  let compare_statuses name b c =
    let fails = ref [] and matches = ref 0 in
    let get o k = match o with J.Jobj ms -> List.assoc_opt k ms | _ -> None in
    let keys o = match o with J.Jobj ms -> List.map fst ms | _ -> [] in
    List.iter
      (fun k ->
        match get b k, get c k with
        | Some (J.Jstring vb), Some (J.Jstring vc) ->
          if vb = vc then incr matches
          else
            fails :=
              Printf.sprintf "%s[%s]: status flipped %S -> %S" name k vb vc
              :: !fails
        | _, None ->
          fails := Printf.sprintf "%s[%s]: missing from current run" name k :: !fails
        | _ -> ())
      (keys b);
    List.iter
      (fun k ->
        if get b k = None then
          fails := Printf.sprintf "%s[%s]: not in baseline" name k :: !fails)
      (keys c);
    !matches, List.rev !fails

  let gate ?(tolerance = 1.25) ?(watch_lower = default_watch_lower)
      ?(watch_higher = default_watch_higher) ~baseline ~current () =
    let b = load baseline and c = load current in
    let failures = ref [] in
    let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
    let rows = ref [] in
    let row name vb vc gate_note =
      rows := (name, vb, vc, gate_note) :: !rows
    in
    List.iter
      (fun (name, vb) ->
        let vc = List.assoc_opt name c in
        match vb, vc with
        | J.Jstring sb, Some (J.Jstring sc) ->
          if sb <> sc then fail "%s: %S -> %S" name sb sc
        | J.Jbool bb, Some (J.Jbool bc) ->
          if bb && not bc then fail "%s: flipped true -> false" name
        | J.Jobj _, Some sc when is_string_section vb ->
          let matches, fails = compare_statuses name vb sc in
          failures := List.rev_append fails !failures;
          Printf.printf "%-28s %d statuses, %d match, %d flips\n" name
            (matches + List.length fails)
            matches (List.length fails)
        | (J.Jint _ | J.Jfloat _), Some ((J.Jint _ | J.Jfloat _) as vcn) ->
          let fb = Option.get (J.number vb)
          and fc = Option.get (J.number vcn) in
          let ratio = if fb = 0.0 then Float.nan else fc /. fb in
          let watched_lower = List.mem name watch_lower
          and watched_higher = List.mem name watch_higher in
          let note =
            if List.mem name informational then "info"
            else if watched_lower then begin
              if ratio > tolerance then begin
                fail "%s: %.4f -> %.4f (ratio %.3f > %.2f)" name fb fc ratio
                  tolerance;
                "REGRESSED"
              end
              else Printf.sprintf "ok (<= %.2fx)" tolerance
            end
            else if watched_higher then begin
              if ratio < 1.0 /. tolerance then begin
                fail "%s: %.4f -> %.4f (ratio %.3f < %.3f)" name fb fc ratio
                  (1.0 /. tolerance);
                "REGRESSED"
              end
              else Printf.sprintf "ok (>= %.2fx)" (1.0 /. tolerance)
            end
            else "-"
          in
          row name fb fc note
        | _, None ->
          if
            List.mem name watch_lower
            || List.mem name watch_higher
            || is_string_section vb
          then fail "%s: missing from current run" name
        | _ -> ())
      b;
    List.iter
      (fun (name, _) ->
        if
          List.assoc_opt name b = None
          && (List.mem name watch_lower || List.mem name watch_higher)
        then fail "%s: watched metric not in baseline" name)
      c;
    if !rows <> [] then begin
      Printf.printf "%-28s %14s %14s %8s  %s\n" "metric" "baseline" "current"
        "ratio" "gate";
      List.iter
        (fun (name, fb, fc, note) ->
          let ratio = if fb = 0.0 then Float.nan else fc /. fb in
          Printf.printf "%-28s %14.4f %14.4f %8.3f  %s\n" name fb fc ratio note)
        (List.rev !rows)
    end;
    match List.rev !failures with
    | [] ->
      Printf.printf "baseline gate: PASS (vs %s)\n%!" baseline;
      Ok ()
    | fails ->
      Printf.printf "baseline gate: FAIL (vs %s)\n%!" baseline;
      Error fails
end
