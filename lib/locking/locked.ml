module Circuit = Fl_netlist.Circuit
module Sim = Fl_netlist.Sim
module View = Fl_netlist.View

type t = {
  locked : Circuit.t;
  oracle : Circuit.t;
  correct_key : bool array;
  scheme : string;
}

(* Both circuits evaluate through their memoized compiled views; repeated
   oracle queries (the SAT-attack hot path) pay no per-call analysis. *)
let query_oracle t inputs =
  View.eval (View.of_circuit t.oracle) ~inputs ~keys:[||]

let eval_locked t ~key ~inputs =
  View.eval (View.of_circuit t.locked) ~inputs ~keys:key

let key_matches ?exhaustive_limit ?vectors ?seed t ~key =
  View.agree_on_probes ?exhaustive_limit ?vectors ?seed
    (View.of_circuit t.locked) ~keys_a:key
    (View.of_circuit t.oracle) ~keys_b:[||]

let verify ?exhaustive_limit ?vectors ?seed t =
  key_matches ?exhaustive_limit ?vectors ?seed t ~key:t.correct_key

let output_corruption ?(trials = 16) ?(vectors = 64) t rng =
  let n = Circuit.num_inputs t.oracle in
  let nk = Array.length t.correct_key in
  let total = ref 0.0 in
  let samples = ref 0 in
  for _ = 1 to trials do
    let key = Array.init nk (fun _ -> Random.State.bool rng) in
    if key <> t.correct_key then
      for _ = 1 to vectors do
        let inputs = Sim.random_vector rng n in
        let reference = query_oracle t inputs in
        let fraction =
          match eval_locked t ~key ~inputs with
          | outputs ->
            let diff = ref 0 in
            Array.iteri (fun i v -> if v <> reference.(i) then incr diff) outputs;
            float_of_int !diff /. float_of_int (Array.length reference)
          | exception Sim.Unresolved _ -> 1.0
        in
        total := !total +. fraction;
        incr samples
      done
  done;
  if !samples = 0 then 0.0 else !total /. float_of_int !samples

let output_corruption_fast ?(trials = 16) ?(batches = 2) t rng =
  let n = Circuit.num_inputs t.oracle in
  let nk = Array.length t.correct_key in
  let corrupted = ref 0 and total = ref 0 in
  let popcount x =
    let rec go x acc = if x = 0 then acc else go (x lsr 1) (acc + (x land 1)) in
    go (x land max_int) (if x < 0 then 1 else 0)
  in
  for _ = 1 to trials do
    let key = Array.init nk (fun _ -> Random.State.bool rng) in
    if key <> t.correct_key then begin
      let packed_key = Array.map (fun b -> if b then -1 else 0) key in
      for _ = 1 to batches do
        let inputs = Fl_netlist.Sim_word.random_words rng ~width:n in
        let reference = Fl_netlist.Sim_word.eval t.oracle ~inputs ~keys:[||] in
        let out = Fl_netlist.Sim_word.eval_tristate t.locked ~inputs ~keys:packed_key in
        Array.iteri
          (fun i w ->
            (* A lane is corrupted when it differs from the oracle or never
               settles (undefined). *)
            let bad =
              lnot w.Fl_netlist.Sim_word.defined
              lor ((w.Fl_netlist.Sim_word.value lxor reference.(i))
                   land w.Fl_netlist.Sim_word.defined)
            in
            corrupted := !corrupted + popcount bad;
            total := !total + Fl_netlist.Sim_word.lanes)
          out
      done
    end
  done;
  if !total = 0 then 0.0 else float_of_int !corrupted /. float_of_int !total

let num_key_bits t = Array.length t.correct_key

let pp fmt t =
  Format.fprintf fmt "%s: %d gates locked with %d key bits (oracle: %d gates)"
    t.scheme (Circuit.num_gates t.locked) (num_key_bits t)
    (Circuit.num_gates t.oracle)
