module Gate = Fl_netlist.Gate
module Circuit = Fl_netlist.Circuit
module View = Fl_netlist.View

module Key_bag = struct
  type t = { builder : Circuit.Builder.t; mutable values : bool list (* reversed *) }

  let create builder = { builder; values = [] }

  let fresh bag correct_value =
    let id = Circuit.Builder.key_input bag.builder in
    bag.values <- correct_value :: bag.values;
    id

  let fresh_vector bag values = Array.map (fun v -> fresh bag v) values
  let correct_key bag = Array.of_list (List.rev bag.values)
  let count bag = List.length bag.values
end

let redirect b ~from_id ~to_id ~limit ?(except = []) () =
  for id = 0 to limit - 1 do
    if not (List.mem id except) then begin
      let fanins = Circuit.Builder.fanins_of b id in
      if Array.exists (fun f -> f = from_id) fanins then
        Circuit.Builder.set_fanins b id
          (Array.map (fun f -> if f = from_id then to_id else f) fanins)
    end
  done

let lockable_gates c =
  let ids = ref [] in
  for id = Circuit.num_nodes c - 1 downto 0 do
    match (Circuit.node c id).Circuit.kind with
    | Gate.Input | Gate.Key_input | Gate.Const _ -> ()
    | Gate.Buf | Gate.Not | Gate.And | Gate.Nand | Gate.Or | Gate.Nor
    | Gate.Xor | Gate.Xnor | Gate.Mux | Gate.Lut _ ->
      ids := id :: !ids
  done;
  Array.of_list !ids

let shuffle rng a =
  let a = Array.copy a in
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  a

let select_wires c rng ~count ~policy =
  let candidates = shuffle rng (lockable_gates c) in
  if Array.length candidates < count then
    invalid_arg "Insertion_util.select_wires: not enough gates";
  match policy with
  | `Any -> Array.sub candidates 0 count
  | `Independent ->
    (* Greedy independent set (no path in either direction between any two
       chosen wires).  The greedy outcome is order-sensitive, so retry a few
       shuffles before concluding the circuit is too narrow.  Cones come
       from the shared view's per-node cache, so retries (and later
       analyses of the same circuit) reuse them. *)
    let view = View.of_circuit c in
    let fanin_of id = View.cone_of_influence view id in
    let attempt order =
      let chosen = ref [] in
      let independent id =
        List.for_all
          (fun other -> (not (fanin_of id).(other)) && not (fanin_of other).(id))
          !chosen
      in
      Array.iter
        (fun id ->
          if List.length !chosen < count && independent id then
            chosen := id :: !chosen)
        order;
      if List.length !chosen >= count then Some (Array.of_list (List.rev !chosen))
      else None
    in
    let rec retry tries order =
      match attempt order with
      | Some wires -> wires
      | None ->
        if tries = 0 then
          invalid_arg
            (Printf.sprintf
               "Insertion_util.select_wires: could not find %d independent wires"
               count)
        else retry (tries - 1) (shuffle rng order)
    in
    retry 8 candidates
  | `Connected ->
    (* Seed with a random wire, then prefer wires connected (either
       direction) to the current set; fall back to arbitrary wires. *)
    let chosen = ref [ candidates.(0) ] in
    let connected id =
      List.exists
        (fun other ->
          Circuit.reaches c ~src:id ~dst:other || Circuit.reaches c ~src:other ~dst:id)
        !chosen
    in
    let rest = Array.sub candidates 1 (Array.length candidates - 1) in
    Array.iter
      (fun id -> if List.length !chosen < count && connected id then chosen := id :: !chosen)
      rest;
    Array.iter
      (fun id ->
        if List.length !chosen < count && not (List.mem id !chosen) then
          chosen := id :: !chosen)
      rest;
    Array.of_list (List.rev !chosen)

module Pass = struct
  type t = {
    builder : Circuit.Builder.t;
    bag : Key_bag.t;
    map : int array;
    drivers : int array;
    orig : Circuit.t;
  }

  let start ~name orig =
    let builder = Circuit.Builder.create ~name:(orig.Circuit.name ^ "-" ^ name) () in
    let map = Circuit.copy_nodes_into builder orig in
    {
      builder;
      bag = Key_bag.create builder;
      map;
      drivers = Array.map (fun (_, id) -> map.(id)) orig.Circuit.outputs;
      orig;
    }

  let builder p = p.builder
  let bag p = p.bag
  let wire p id = p.map.(id)

  let snapshot p = Circuit.Builder.size p.builder

  let set_driver p ~output_index ~to_id = p.drivers.(output_index) <- to_id

  let redirect_wire ?limit p ~from_id ~to_id =
    (* Nodes at or after [limit] belong to the block being inserted and read
       the original wire on purpose. *)
    let limit = Option.value ~default:to_id limit in
    redirect p.builder ~from_id ~to_id ~limit ();
    Array.iteri (fun i d -> if d = from_id then p.drivers.(i) <- to_id) p.drivers

  let finish p ~scheme =
    Array.iteri
      (fun i (name, _) -> Circuit.Builder.output p.builder name p.drivers.(i))
      p.orig.Circuit.outputs;
    {
      Locked.locked = Circuit.of_builder p.builder;
      oracle = p.orig;
      correct_key = Key_bag.correct_key p.bag;
      scheme;
    }
end

let keyed_lut b bag ~addr ~truth_table =
  let k = Array.length addr in
  if Array.length truth_table <> 1 lsl k then
    invalid_arg "Insertion_util.keyed_lut: table size mismatch";
  let leaves = Key_bag.fresh_vector bag truth_table in
  (* Reduce pairs (2i, 2i+1) selecting on addr.(level): leaves are LSB-first,
     so adjacent entries differ in address bit [level]. *)
  let rec reduce values level =
    match Array.length values with
    | 1 -> values.(0)
    | len ->
      let half = len / 2 in
      let next =
        Array.init half (fun i ->
            Circuit.Builder.add b Gate.Mux
              [| addr.(level); values.(2 * i); values.((2 * i) + 1) |])
      in
      reduce next (level + 1)
  in
  reduce leaves 0
