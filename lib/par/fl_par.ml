(* Fixed-size domain pool over a mutex/condition work queue.

   The moving parts are deliberately few: one queue of erased [unit -> unit]
   jobs (each job owns either its slot of a batch's result array — which is
   what makes batch result ordering deterministic — or the handle it
   settles), and three conditions: "queue gained work" for the workers,
   "batch drained" for batch submitters, "a handle settled" for streaming
   waiters.  Retry, soft-timeout marking, cancellation and the Fl_obs
   events all live in the per-task wrappers, so the inline jobs=1 path and
   the worker path run the exact same code.

   Two submission styles share the queue:
   - [run]/[map]: one batch at a time, results by index (the original API);
   - [submit]/[await]/[await_any]/[cancel]: streaming — tasks are
     submitted individually, consumed as they settle, and cooperatively
     cancellable (the task polls the [should_stop] thunk it is given).

   Submitting to (or awaiting) a pool from inside one of its own tasks
   would deadlock — every worker could end up waiting on work only a
   worker can run — so it fails fast with Invalid_argument: worker
   domains register their ids at spawn, and the jobs=1 inline path marks
   the submitting domain for the duration of the task. *)

type 'a outcome =
  | Done of 'a
  | Late of 'a * float
  | Failed of string * int
  | Cancelled

type batch_stats = {
  tasks : int;
  completed : int;
  late : int;
  failed : int;
  cancelled : int;
  retries : int;
  task_seconds : float;
  wall_seconds : float;
}

let zero_stats =
  {
    tasks = 0;
    completed = 0;
    late = 0;
    failed = 0;
    cancelled = 0;
    retries = 0;
    task_seconds = 0.0;
    wall_seconds = 0.0;
  }

type t = {
  pname : string;
  jobs : int;
  mutex : Mutex.t;
  has_work : Condition.t;
  batch_done : Condition.t;
  settled : Condition.t;  (* broadcast whenever any streamed handle settles *)
  queue : (unit -> unit) Queue.t;
  mutable outstanding : int;  (* jobs of the current batch not yet finished *)
  mutable in_batch : bool;
  mutable stopped : bool;
  mutable workers : unit Domain.t list;
  mutable worker_ids : int list;  (* registered at spawn, for the re-entrancy guard *)
  mutable inline_domain : int;  (* domain running a jobs=1 inline task, -1 if none *)
  mutable next_id : int;  (* streamed-submission counter (event task index) *)
  mutable last : batch_stats;
}

type 'a handle = {
  h_pool : t;
  h_id : int;
  h_cancel : bool Atomic.t;
  mutable h_outcome : 'a outcome option;  (* guarded by h_pool.mutex *)
}

let c_tasks = Fl_obs.Counter.make "par.tasks"
let c_retries = Fl_obs.Counter.make "par.retries"
let c_failures = Fl_obs.Counter.make "par.failures"
let c_timeouts = Fl_obs.Counter.make "par.timeouts"
let c_cancelled = Fl_obs.Counter.make "par.cancelled"
let c_batches = Fl_obs.Counter.make "par.batches"

(* Queue wait: batch submission to task start, in microseconds (scale
   1e-6, so summaries read in seconds).  Deep-telemetry guarded — see
   DESIGN.md §4f. *)
let h_queue_wait = Fl_obs.Hist.make ~scale:1e-6 "par.queue_wait_s"

let jobs p = p.jobs
let name p = p.pname
let last_stats p = p.last

let locked p f =
  Mutex.lock p.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock p.mutex) f

(* Workers block on [has_work]; a job is run outside the lock and the
   wrapper never raises.  Batch accounting (outstanding / batch_done)
   lives inside the batch job wrapper, not here, so streamed jobs flow
   through the same loop untouched. *)
let rec worker_loop p =
  Mutex.lock p.mutex;
  while Queue.is_empty p.queue && not p.stopped do
    Condition.wait p.has_work p.mutex
  done;
  if Queue.is_empty p.queue then Mutex.unlock p.mutex (* stopped: exit *)
  else begin
    let job = Queue.pop p.queue in
    Mutex.unlock p.mutex;
    job ();
    worker_loop p
  end

(* Re-entrancy guard: submitting to / waiting on a pool from inside one
   of its own tasks deadlocks (fl_par.mli used to merely document the
   rule).  Worker ids are read under the pool mutex; a worker is
   necessarily registered before it runs any task. *)
let guard p fn =
  let self = (Domain.self () :> int) in
  let inside =
    locked p (fun () -> p.inline_domain = self || List.mem self p.worker_ids)
  in
  if inside then
    invalid_arg
      (fn ^ ": called from inside a task of pool \"" ^ p.pname
     ^ "\" (the queue is not re-entrant)")

let create ?(name = "pool") ~jobs () =
  if jobs < 1 then invalid_arg "Fl_par.create: jobs must be >= 1";
  let p =
    {
      pname = name;
      jobs;
      mutex = Mutex.create ();
      has_work = Condition.create ();
      batch_done = Condition.create ();
      settled = Condition.create ();
      queue = Queue.create ();
      outstanding = 0;
      in_batch = false;
      stopped = false;
      workers = [];
      worker_ids = [];
      inline_domain = -1;
      next_id = 0;
      last = zero_stats;
    }
  in
  if jobs > 1 then
    p.workers <-
      List.init jobs (fun _ ->
          Domain.spawn (fun () ->
              locked p (fun () ->
                  p.worker_ids <- (Domain.self () :> int) :: p.worker_ids);
              worker_loop p));
  p

let shutdown p =
  let workers =
    locked p (fun () ->
        let ws = p.workers in
        p.stopped <- true;
        p.workers <- [];
        Condition.broadcast p.has_work;
        ws)
  in
  List.iter Domain.join workers

let with_pool ?name ~jobs f =
  let p = create ?name ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown p) (fun () -> f p)

(* Mutable accounting of the batch in flight, guarded by [p.mutex]. *)
type accounting = {
  mutable a_completed : int;
  mutable a_late : int;
  mutable a_failed : int;
  mutable a_cancelled : int;
  mutable a_retries : int;
  mutable a_task_seconds : float;
}

let task_fields p i =
  [
    "pool", Fl_obs.String p.pname;
    "task", Fl_obs.Int i;
    "domain", Fl_obs.Int (Domain.self () :> int);
  ]

(* The per-task wrapper: cancellation check, bounded retry, soft-timeout
   marking, result-slot write, events, accounting.  Runs on a worker
   domain (jobs > 1) or inline on the submitter (jobs = 1); must never
   raise — a raise here would kill a worker and hang the batch. *)
let exec_task p ~acct ~cancelled ~submitted ~timeout ~retries ~results i f =
  Fl_obs.Counter.incr c_tasks;
  if Fl_obs.deep_enabled () then
    Fl_obs.Hist.record_time h_queue_wait (Unix.gettimeofday () -. submitted);
  if Atomic.get cancelled then begin
    Fl_obs.Counter.incr c_cancelled;
    if Fl_obs.enabled () then
      Fl_obs.emit "par.task.cancelled" ~fields:(task_fields p i);
    results.(i) <- Cancelled;
    locked p (fun () -> acct.a_cancelled <- acct.a_cancelled + 1)
  end
  else begin
    if Fl_obs.enabled () then
      Fl_obs.emit "par.task.start" ~fields:(task_fields p i);
    let t0 = Unix.gettimeofday () in
    let rec attempt k =
      match f () with
      | v -> Ok (v, k)
      | exception e ->
        if k <= retries then begin
          Fl_obs.Counter.incr c_retries;
          locked p (fun () -> acct.a_retries <- acct.a_retries + 1);
          attempt (k + 1)
        end
        else Error (Printexc.to_string e, k)
    in
    let verdict = attempt 1 in
    let elapsed = Unix.gettimeofday () -. t0 in
    (match verdict with
     | Ok (v, attempts) ->
       let late = match timeout with Some s -> elapsed > s | None -> false in
       if late then begin
         Fl_obs.Counter.incr c_timeouts;
         results.(i) <- Late (v, elapsed);
         if Fl_obs.enabled () then
           Fl_obs.emit "par.task.timeout"
             ~fields:
               (task_fields p i
                @ [
                    "elapsed_s", Fl_obs.Float elapsed;
                    ( "timeout_s",
                      Fl_obs.Float (Option.value ~default:0.0 timeout) );
                    "attempts", Fl_obs.Int attempts;
                  ])
       end
       else begin
         results.(i) <- Done v;
         if Fl_obs.enabled () then
           Fl_obs.emit "par.task.done"
             ~fields:
               (task_fields p i
                @ [
                    "elapsed_s", Fl_obs.Float elapsed;
                    "attempts", Fl_obs.Int attempts;
                  ])
       end;
       locked p (fun () ->
           acct.a_completed <- acct.a_completed + 1;
           if late then acct.a_late <- acct.a_late + 1;
           acct.a_task_seconds <- acct.a_task_seconds +. elapsed)
     | Error (msg, attempts) ->
       (* Fatal: mark and cancel everything not yet started. *)
       Fl_obs.Counter.incr c_failures;
       Atomic.set cancelled true;
       results.(i) <- Failed (msg, attempts);
       if Fl_obs.enabled () then
         Fl_obs.emit "par.task.error"
           ~fields:
             (task_fields p i
              @ [
                  "error", Fl_obs.String msg;
                  "attempts", Fl_obs.Int attempts;
                  "elapsed_s", Fl_obs.Float elapsed;
                ]);
       locked p (fun () ->
           acct.a_failed <- acct.a_failed + 1;
           acct.a_task_seconds <- acct.a_task_seconds +. elapsed))
  end

let run p ?timeout ?(retries = 0) fs =
  if retries < 0 then invalid_arg "Fl_par.run: retries must be >= 0";
  guard p "Fl_par.run";
  let n = Array.length fs in
  let results = Array.make n Cancelled in
  if n = 0 then (p.last <- { zero_stats with wall_seconds = 0.0 }; results)
  else begin
    let cancelled = Atomic.make false in
    let acct =
      {
        a_completed = 0;
        a_late = 0;
        a_failed = 0;
        a_cancelled = 0;
        a_retries = 0;
        a_task_seconds = 0.0;
      }
    in
    Fl_obs.Counter.incr c_batches;
    let t0 = Unix.gettimeofday () in
    let job i () =
      exec_task p ~acct ~cancelled ~submitted:t0 ~timeout ~retries ~results i
        fs.(i)
    in
    if p.jobs = 1 then begin
      (* Inline: index order, no queue — bit-for-bit sequential. *)
      p.inline_domain <- (Domain.self () :> int);
      Fun.protect
        ~finally:(fun () -> p.inline_domain <- -1)
        (fun () ->
          for i = 0 to n - 1 do
            job i ()
          done)
    end
    else begin
      locked p (fun () ->
          if p.stopped then failwith "Fl_par.run: pool is shut down";
          if p.in_batch then failwith "Fl_par.run: batch already in flight";
          p.in_batch <- true;
          for i = 0 to n - 1 do
            Queue.push
              (fun () ->
                job i ();
                locked p (fun () ->
                    p.outstanding <- p.outstanding - 1;
                    if p.outstanding = 0 then Condition.broadcast p.batch_done))
              p.queue
          done;
          p.outstanding <- n;
          Condition.broadcast p.has_work);
      locked p (fun () ->
          while p.outstanding > 0 do
            Condition.wait p.batch_done p.mutex
          done;
          p.in_batch <- false)
    end;
    let wall = Unix.gettimeofday () -. t0 in
    p.last <-
      {
        tasks = n;
        completed = acct.a_completed;
        late = acct.a_late;
        failed = acct.a_failed;
        cancelled = acct.a_cancelled;
        retries = acct.a_retries;
        task_seconds = acct.a_task_seconds;
        wall_seconds = wall;
      };
    if Fl_obs.enabled () then
      Fl_obs.emit "par.batch.done"
        ~fields:
          [
            "pool", Fl_obs.String p.pname;
            "tasks", Fl_obs.Int n;
            "completed", Fl_obs.Int acct.a_completed;
            "failed", Fl_obs.Int acct.a_failed;
            "cancelled", Fl_obs.Int acct.a_cancelled;
            "task_seconds", Fl_obs.Float acct.a_task_seconds;
            "wall_seconds", Fl_obs.Float wall;
          ];
    results
  end

(* --- streaming submission --- *)

(* Streaming cousin of [exec_task]: same cancellation / retry /
   soft-timeout / event semantics, but it settles a handle (broadcast on
   [settled]) instead of writing a batch slot, passes the task a
   [should_stop] poll for cooperative cancellation, and a failure never
   cancels other submissions.  Never raises. *)
let exec_handle p ~timeout ~retries ~submitted h f =
  Fl_obs.Counter.incr c_tasks;
  if Fl_obs.deep_enabled () then
    Fl_obs.Hist.record_time h_queue_wait (Unix.gettimeofday () -. submitted);
  let settle outcome =
    locked p (fun () ->
        h.h_outcome <- Some outcome;
        Condition.broadcast p.settled)
  in
  if Atomic.get h.h_cancel then begin
    Fl_obs.Counter.incr c_cancelled;
    if Fl_obs.enabled () then
      Fl_obs.emit "par.task.cancelled" ~fields:(task_fields p h.h_id);
    settle Cancelled
  end
  else begin
    if Fl_obs.enabled () then
      Fl_obs.emit "par.task.start" ~fields:(task_fields p h.h_id);
    let should_stop () = Atomic.get h.h_cancel in
    let t0 = Unix.gettimeofday () in
    let rec attempt k =
      match f should_stop with
      | v -> Ok (v, k)
      | exception e ->
        if k <= retries then begin
          Fl_obs.Counter.incr c_retries;
          attempt (k + 1)
        end
        else Error (Printexc.to_string e, k)
    in
    let verdict = attempt 1 in
    let elapsed = Unix.gettimeofday () -. t0 in
    match verdict with
    | Ok (v, attempts) ->
      let late = match timeout with Some s -> elapsed > s | None -> false in
      if late then begin
        Fl_obs.Counter.incr c_timeouts;
        if Fl_obs.enabled () then
          Fl_obs.emit "par.task.timeout"
            ~fields:
              (task_fields p h.h_id
              @ [
                  "elapsed_s", Fl_obs.Float elapsed;
                  "timeout_s", Fl_obs.Float (Option.value ~default:0.0 timeout);
                  "attempts", Fl_obs.Int attempts;
                ]);
        settle (Late (v, elapsed))
      end
      else begin
        if Fl_obs.enabled () then
          Fl_obs.emit "par.task.done"
            ~fields:
              (task_fields p h.h_id
              @ [
                  "elapsed_s", Fl_obs.Float elapsed;
                  "attempts", Fl_obs.Int attempts;
                ]);
        settle (Done v)
      end
    | Error (msg, attempts) ->
      Fl_obs.Counter.incr c_failures;
      if Fl_obs.enabled () then
        Fl_obs.emit "par.task.error"
          ~fields:
            (task_fields p h.h_id
            @ [
                "error", Fl_obs.String msg;
                "attempts", Fl_obs.Int attempts;
                "elapsed_s", Fl_obs.Float elapsed;
              ]);
      settle (Failed (msg, attempts))
  end

let submit p ?timeout ?(retries = 0) f =
  if retries < 0 then invalid_arg "Fl_par.submit: retries must be >= 0";
  guard p "Fl_par.submit";
  let t0 = Unix.gettimeofday () in
  let h =
    locked p (fun () ->
        if p.stopped then failwith "Fl_par.submit: pool is shut down";
        let id = p.next_id in
        p.next_id <- id + 1;
        let h =
          { h_pool = p; h_id = id; h_cancel = Atomic.make false; h_outcome = None }
        in
        if p.jobs > 1 then begin
          Queue.push
            (fun () -> exec_handle p ~timeout ~retries ~submitted:t0 h f)
            p.queue;
          Condition.signal p.has_work
        end;
        h)
  in
  if p.jobs = 1 then begin
    (* Inline, synchronously at submission — sequential semantics: the
       handle is already settled when [submit] returns. *)
    p.inline_domain <- (Domain.self () :> int);
    Fun.protect
      ~finally:(fun () -> p.inline_domain <- -1)
      (fun () -> exec_handle p ~timeout ~retries ~submitted:t0 h f)
  end;
  h

let cancel h = Atomic.set h.h_cancel true
let poll h = locked h.h_pool (fun () -> h.h_outcome)

let await h =
  let p = h.h_pool in
  guard p "Fl_par.await";
  locked p (fun () ->
      let rec wait () =
        match h.h_outcome with
        | Some o -> o
        | None ->
          Condition.wait p.settled p.mutex;
          wait ()
      in
      wait ())

let await_any hs =
  match hs with
  | [] -> invalid_arg "Fl_par.await_any: empty handle list"
  | h0 :: rest ->
    let p = h0.h_pool in
    List.iter
      (fun h ->
        if h.h_pool != p then
          invalid_arg "Fl_par.await_any: handles from different pools")
      rest;
    guard p "Fl_par.await_any";
    locked p (fun () ->
        let first_settled () =
          let rec find i = function
            | [] -> None
            | h :: tl -> (
              match h.h_outcome with
              | Some o -> Some (i, o)
              | None -> find (i + 1) tl)
          in
          find 0 hs
        in
        let rec wait () =
          match first_settled () with
          | Some r -> r
          | None ->
            Condition.wait p.settled p.mutex;
            wait ()
        in
        wait ())

let map p ?timeout ?retries f xs =
  run p ?timeout ?retries (Array.map (fun x () -> f x) xs)

let map_list p ?timeout ?retries f xs =
  Array.to_list (map p ?timeout ?retries f (Array.of_list xs))

let value = function Done v | Late (v, _) -> Some v | Failed _ | Cancelled -> None

let get = function
  | Done v | Late (v, _) -> v
  | Failed (msg, attempts) ->
    failwith (Printf.sprintf "Fl_par: task failed after %d attempts: %s" attempts msg)
  | Cancelled -> failwith "Fl_par: task cancelled"

let map_reduce p ?timeout ?retries ~map:f ~reduce ~init xs =
  let outcomes = map_list p ?timeout ?retries f xs in
  List.fold_left (fun acc o -> reduce acc (get o)) init outcomes
