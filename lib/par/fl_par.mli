(** Domain-based parallel work queue for attack sweeps.

    A pool is a fixed set of worker domains pulling tasks from a shared
    queue.  One batch at a time is submitted through {!run} (or the
    {!map} / {!map_reduce} conveniences); results land by {e task index},
    so the output order is deterministic regardless of completion order,
    and a [jobs = 1] pool executes every task inline on the calling
    domain in index order — bit-for-bit the sequential behaviour.

    Per-task semantics:

    - {e soft timeout}: a task that finishes after its deadline is marked
      {!constructor:Late} (the value is kept — domains cannot be killed, so
      the timeout is advisory; long-running tasks such as SAT attacks
      enforce their own hard budgets internally).
    - {e bounded retry}: a task that raises is re-run up to [retries]
      times before it is declared {!constructor:Failed}.
    - {e cancellation}: the first fatal (retries-exhausted) failure cancels
      every task of the batch that has not started yet; those report
      {!constructor:Cancelled}.

    Observability: the pool emits [par.task.start] / [par.task.done] /
    [par.task.timeout] (plus [par.task.error], [par.task.cancelled] and
    [par.batch.done]) through {!Fl_obs}, each tagged with the pool name,
    task index and domain id, and keeps [par.*] counters.  {!Fl_obs}
    counters are striped per domain, so worker-side increments always
    merge into the global snapshot.

    Streaming submission: {!submit} enqueues one task and returns a
    {!type:handle} immediately; {!await} / {!await_any} consume results as
    they land, and {!cancel} requests cooperative cancellation — a task
    that has not started reports [Cancelled], a running task sees its
    [should_stop] poll flip to [true] and is expected to wind down (its
    produced value is kept).  A portfolio races solvers this way: submit
    N, [await_any], cancel the losers.

    Tasks must be self-contained: build circuits and views {e inside} the
    task (views are domain-local) and do not touch shared mutable state.
    Submitting to — or awaiting — a pool from inside one of its own tasks
    would deadlock; every such call ({!run}, {!submit}, {!await},
    {!await_any}) raises [Invalid_argument] instead (the queue is not
    re-entrant). *)

type t
(** A pool of worker domains.  Values of this type are not themselves
    domain-safe: submit batches from one domain at a time. *)

(** Outcome of one task, in task-index order. *)
type 'a outcome =
  | Done of 'a  (** completed within its (optional) soft deadline *)
  | Late of 'a * float
      (** completed, but after [timeout] seconds; carries elapsed time *)
  | Failed of string * int
      (** raised on every attempt; exception text and attempts made *)
  | Cancelled  (** skipped: an earlier task of the batch failed fatally *)

(** Aggregate accounting of the most recent batch. *)
type batch_stats = {
  tasks : int;
  completed : int;  (** [Done] + [Late] *)
  late : int;
  failed : int;
  cancelled : int;
  retries : int;  (** re-runs performed across the batch *)
  task_seconds : float;  (** summed per-task wall time *)
  wall_seconds : float;  (** batch wall time; speedup = task/wall *)
}

(** [create ~jobs ()] builds a pool of width [jobs]: [jobs >= 2] spawns
    [jobs] worker domains, [jobs = 1] spawns none and runs every batch
    inline on the submitting domain (sequential semantics, no domain
    overhead).  [name] tags the pool's events and defaults to ["pool"].
    @raise Invalid_argument when [jobs < 1]. *)
val create : ?name:string -> jobs:int -> unit -> t

val jobs : t -> int
val name : t -> string

(** [run p ?timeout ?retries tasks] executes every task and returns their
    outcomes by index.  [timeout] is the per-task soft deadline in
    seconds; [retries] (default 0) bounds re-runs after an exception.
    Blocks until the whole batch settles. *)
val run :
  t -> ?timeout:float -> ?retries:int -> (unit -> 'a) array -> 'a outcome array

(** [map p f xs] is [run p (fun () -> f x) per x]. *)
val map :
  t -> ?timeout:float -> ?retries:int -> ('a -> 'b) -> 'a array ->
  'b outcome array

val map_list :
  t -> ?timeout:float -> ?retries:int -> ('a -> 'b) -> 'a list ->
  'b outcome list

(** [map_reduce p ~map ~reduce ~init xs] maps in parallel and folds the
    results sequentially in index order, so it equals
    [List.fold_left reduce init (List.map map xs)] whenever no task
    fails.  Late results fold like [Done] ones.
    @raise Failure when any task fails or is cancelled. *)
val map_reduce :
  t -> ?timeout:float -> ?retries:int -> map:('a -> 'b) ->
  reduce:('acc -> 'b -> 'acc) -> init:'acc -> 'a list -> 'acc

(** A streamed task in flight (or settled).  Handles are cheap and
    single-pool; they may be awaited from any domain that is not a worker
    of the pool, and awaited more than once. *)
type 'a handle

(** [submit p f] enqueues the single task [f] and returns immediately
    (jobs >= 2); on a [jobs = 1] pool the task runs inline before
    [submit] returns — sequential semantics, deterministic.  [f] receives
    a [should_stop] thunk that flips to [true] after {!cancel}; a
    cooperative task polls it and winds down early (e.g. a SAT solver
    returning [Unknown]).  [timeout] / [retries] behave as in {!run}.  A
    failed streamed task never cancels other submissions.
    @raise Invalid_argument from inside a task of the same pool.
    @raise Failure when the pool is shut down. *)
val submit :
  t -> ?timeout:float -> ?retries:int -> ((unit -> bool) -> 'a) -> 'a handle

(** [await h] blocks until [h] settles and returns its outcome.
    @raise Invalid_argument from inside a task of the same pool. *)
val await : 'a handle -> 'a outcome

(** [await_any hs] blocks until at least one handle has settled and
    returns the position (in [hs]) and outcome of the first settled one
    found.  Handles already settled return immediately.
    @raise Invalid_argument on an empty list, on handles from different
    pools, or from inside a task of the same pool. *)
val await_any : 'a handle list -> int * 'a outcome

(** [cancel h] requests cancellation: a task not yet started settles as
    [Cancelled]; a running task sees its [should_stop] poll return
    [true].  Idempotent, never blocks. *)
val cancel : 'a handle -> unit

(** [poll h] is [h]'s outcome if it has settled, without blocking. *)
val poll : 'a handle -> 'a outcome option

(** Accounting of the most recent finished batch (zeros before any;
    streamed tasks are not included). *)
val last_stats : t -> batch_stats

(** [value o] is the task's value, late or not. *)
val value : 'a outcome -> 'a option

(** [get o] is the task's value.
    @raise Failure on [Failed] / [Cancelled]. *)
val get : 'a outcome -> 'a

(** [shutdown p] joins the worker domains.  Idempotent; the pool accepts
    no further batches. *)
val shutdown : t -> unit

(** [with_pool ~jobs f] is [f pool] with {!shutdown} guaranteed. *)
val with_pool : ?name:string -> jobs:int -> (t -> 'a) -> 'a
