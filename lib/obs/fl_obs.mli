(** Structured observability: counters, gauges, timed spans and an event
    stream with pluggable sinks.

    The whole stack (solver, attacks, view layer, benches) reports through
    this module.  The design contract is {e zero overhead when no sink is
    installed}: {!emit} and {!with_span} reduce to one branch on an empty
    sink list, and callers are expected to guard field-list construction
    with {!enabled}.  Counters and gauges are striped atomic cells — an
    increment is one uncontended atomic add whether or not anything is
    observing.

    The module is domain-safe (the [Fl_par] sweeps run attacks on worker
    domains): counter increments stripe by domain id and reads merge the
    stripes, so per-domain work always lands in the global snapshot;
    event delivery to sinks is serialized, so JSONL lines stay whole under
    parallel emission; span depth is domain-local.

    The module is deliberately dependency-free (only [Unix.gettimeofday]
    for timestamps) so every layer of the repository can depend on it
    without cycles. *)

(** {1 Values and events} *)

(** Field value of a structured event. *)
type value = Int of int | Float of float | String of string | Bool of bool

type event = {
  ts : float;  (** Unix time at emission *)
  name : string;  (** dotted event name, e.g. ["attack.iteration"] *)
  fields : (string * value) list;
}

(** {1 Sinks}

    A sink consumes every emitted event.  No sink is installed by default
    (the "null sink"): emission is then a single list-emptiness check.
    Delivery is serialized across domains; a sink body must not call
    {!emit} (the serialization lock is not re-entrant). *)

type sink = event -> unit

type sink_id

(** [add_sink s] installs [s]; events flow to every installed sink. *)
val add_sink : sink -> sink_id

val remove_sink : sink_id -> unit

(** [with_sink s f] installs [s] for the duration of [f] (exception-safe). *)
val with_sink : sink -> (unit -> 'a) -> 'a

(** [enabled ()] is [true] iff at least one sink is installed.  Guard any
    non-trivial field construction with this. *)
val enabled : unit -> bool

(** [jsonl_sink oc] writes one JSON object per event per line to [oc]
    (see {!Json.to_string} for the schema).  The caller owns [oc]. *)
val jsonl_sink : out_channel -> sink

(** [console_sink ?oc ()] writes human-readable one-liners
    ([HH:MM:SS.mmm name k=v ...]) to [oc] (default [stderr]). *)
val console_sink : ?oc:out_channel -> unit -> sink

(** [emit ?fields name] sends an event to every sink; a no-op (single
    branch) when none is installed. *)
val emit : ?fields:(string * value) list -> string -> unit

(** {1 Spans}

    A span is a timed, nestable region.  When a sink is installed,
    [with_span name f] emits ["span.begin"] (fields [depth]) on entry and
    ["span.end"] (fields [depth], [dur_s]) on exit, exception-safely; with
    no sink it is a bare call to [f].  [depth] is 0 for top-level spans and
    grows with nesting. *)

val with_span :
  ?fields:(string * value) list -> string -> (unit -> 'a) -> 'a

(** Current span nesting depth (0 outside any span). *)
val span_depth : unit -> int

(** {1 Counters and gauges}

    Metrics live in named registries; {!Registry.default} ("fl") is where
    the library layers register.  [make] is idempotent per (registry, name):
    asking again returns the same cell, so modules can declare their
    counters at top level without coordination.

    Counters are domain-safe: increments go to a per-domain stripe of
    atomic cells and {!Counter.value} / {!snapshot} sum the stripes, so
    work done on Fl_par worker domains is merged into the global totals
    (the merge happens on every read — nothing is deferred to a join). *)

module Registry : sig
  type t

  val create : string -> t
  val default : t
  val name : t -> string
end

module Counter : sig
  type t

  (** [make ?registry name] is the (registry, name) counter, created at 0 on
      first use. *)
  val make : ?registry:Registry.t -> string -> t

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
end

module Gauge : sig
  type t

  val make : ?registry:Registry.t -> string -> t
  val set : t -> float -> unit
  val value : t -> float
end

(** [snapshot ?registry ()] is every counter and gauge of the registry as
    (name, value) pairs, sorted by name.  Counters snapshot as [Int],
    gauges as [Float]. *)
val snapshot : ?registry:Registry.t -> unit -> (string * value) list

(** [reset_metrics ?registry ()] zeroes every counter and gauge (for
    benchmark isolation; existing handles stay valid). *)
val reset_metrics : ?registry:Registry.t -> unit -> unit

(** [pp_snapshot fmt ()] prints the default registry's snapshot, one
    [name = value] per line. *)
val pp_snapshot : Format.formatter -> unit -> unit

(** {1 JSONL encoding} *)

module Json : sig
  exception Parse_error of string

  (** [to_string e] is a single-line JSON object:
      [{"ts":<float>,"event":<name>,<field>:<value>,...}].  Field order is
      preserved.  Strings are escaped per JSON; floats print with enough
      digits to round-trip. *)
  val to_string : event -> string

  (** [of_string line] parses a line produced by {!to_string} (any flat
      JSON object with an ["event"] member and string/number/bool values).
      @raise Parse_error on malformed input. *)
  val of_string : string -> event

  (** [value_to_string v] is the JSON encoding of one scalar (for builders
      of larger JSON documents, e.g. the bench reports). *)
  val value_to_string : value -> string

  (** [string_to_string s] is [s] as a quoted, escaped JSON string. *)
  val string_to_string : string -> string
end
