(** Structured observability: counters, gauges, histograms, timed spans,
    span profiles and an event stream with pluggable sinks.

    The whole stack (solver, attacks, view layer, benches) reports through
    this module.  The design contract is {e zero overhead when no sink is
    installed}: {!emit} and {!with_span} reduce to two atomic loads and a
    branch when neither a global nor a scoped sink exists, and callers are
    expected to guard field-list construction with {!enabled}.  Counters, gauges and histograms are striped atomic
    cells — an increment is one uncontended atomic add whether or not
    anything is observing.

    The module is domain-safe (the [Fl_par] sweeps run attacks on worker
    domains): counter and histogram increments stripe by domain id and
    reads merge the stripes, so per-domain work always lands in the global
    snapshot; event delivery to sinks is serialized, so JSONL lines stay
    whole under parallel emission; span depth is domain-local.

    The module is deliberately dependency-free (only [Unix.gettimeofday]
    for timestamps) so every layer of the repository can depend on it
    without cycles. *)

(** {1 Values and events} *)

(** Field value of a structured event. *)
type value = Int of int | Float of float | String of string | Bool of bool

type event = {
  ts : float;  (** Unix time at emission *)
  name : string;  (** dotted event name, e.g. ["attack.iteration"] *)
  fields : (string * value) list;
}

(** {1 Sinks}

    A sink consumes every emitted event.  No sink is installed by default
    (the "null sink"): emission is then a single list-emptiness check.
    Delivery is serialized across domains; a sink body must not call
    {!emit} (the serialization lock is not re-entrant). *)

type sink = event -> unit

type sink_id

(** [add_sink s] installs [s]; events flow to every installed sink. *)
val add_sink : sink -> sink_id

val remove_sink : sink_id -> unit

(** [with_sink s f] installs [s] for the duration of [f] (exception-safe). *)
val with_sink : sink -> (unit -> 'a) -> 'a

(** [with_scoped_sink s f] installs [s] {e on the calling domain only} for
    the duration of [f] (exception-safe, nestable).  Events emitted by
    code running under [f] — on that domain — reach [s] in addition to the
    global sinks; events from other domains do not.  Delivery to scoped
    sinks is domain-local and bypasses the global serialization lock, so
    scopes on different domains never contend.  This is the per-request
    telemetry mechanism of the serving layer: each request's attack runs
    under a scope whose sink forwards frames to the requesting client.

    Caveat: sys-threads sharing a domain share the scope (the scope list
    is domain-local, not thread-local); do not run two independently
    emitting threads on one domain inside scopes. *)
val with_scoped_sink : sink -> (unit -> 'a) -> 'a

(** [enabled ()] is [true] iff at least one sink — global, or scoped on
    the calling domain — is installed.  Guard any non-trivial field
    construction with this. *)
val enabled : unit -> bool

(** [jsonl_sink oc] writes one JSON object per event per line to [oc]
    (see {!Json.to_string} for the schema).  The caller owns [oc]. *)
val jsonl_sink : out_channel -> sink

(** [console_sink ?oc ()] writes human-readable one-liners
    ([HH:MM:SS.mmm name k=v ...]) to [oc] (default [stderr]). *)
val console_sink : ?oc:out_channel -> unit -> sink

(** [emit ?fields name] sends an event to every sink; a no-op (single
    branch) when none is installed. *)
val emit : ?fields:(string * value) list -> string -> unit

(** {1 Deep profiling switch}

    Distribution telemetry in solver and pool hot paths (the [cdcl.*] and
    [par.*] histograms) guards on this flag instead of {!enabled}, so a
    bench run can populate histograms without installing any event sink.
    Off by default; with it off the instrumented conflict path costs one
    atomic load and branch. *)

val set_deep : bool -> unit
val deep_enabled : unit -> bool

(** {1 Spans}

    A span is a timed, nestable region.  When a sink is installed,
    [with_span name f] emits ["span.begin"] (fields [depth], [domain]) on
    entry and ["span.end"] (fields [depth], [domain], [dur_s]) on exit,
    exception-safely; with no sink it is a bare call to [f].  [depth] is 0
    for top-level spans and grows with nesting; [domain] is the emitting
    domain's id, which lets {!Profile} keep interleaved worker stacks
    separate.  When a top-level span closes, the [gc.minor_words],
    [gc.major_words] and [gc.top_heap_words] gauges are refreshed from
    [Gc.quick_stat]. *)

val with_span :
  ?fields:(string * value) list -> string -> (unit -> 'a) -> 'a

(** Current span nesting depth (0 outside any span). *)
val span_depth : unit -> int

(** {1 Counters, gauges and histograms}

    Metrics live in named registries; {!Registry.default} ("fl") is where
    the library layers register.  [make] is idempotent per (registry, name):
    asking again returns the same cell, so modules can declare their
    counters at top level without coordination.

    Counters and histograms are domain-safe: increments go to a per-domain
    stripe of atomic cells and {!Counter.value} / {!snapshot} /
    {!hist_snapshot} sum the stripes, so work done on Fl_par worker domains
    is merged into the global totals (the merge happens on every read —
    nothing is deferred to a join). *)

module Registry : sig
  type t

  val create : string -> t
  val default : t
  val name : t -> string
end

module Counter : sig
  type t

  (** [make ?registry name] is the (registry, name) counter, created at 0 on
      first use. *)
  val make : ?registry:Registry.t -> string -> t

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
end

module Gauge : sig
  type t

  val make : ?registry:Registry.t -> string -> t
  val set : t -> float -> unit
  val value : t -> float
end

(** {1 JSONL encoding} *)

module Json : sig
  exception Parse_error of string

  (** Generic JSON tree, used by the offline tooling (fltrace, the bench
      regression gate) to read whole documents. *)
  type t =
    | Jnull
    | Jbool of bool
    | Jint of int
    | Jfloat of float
    | Jstring of string
    | Jarr of t list
    | Jobj of (string * t) list

  (** [parse s] parses one complete JSON document.
      @raise Parse_error on malformed input or trailing garbage. *)
  val parse : string -> t

  (** [member k j] is field [k] of object [j], if [j] is an object that
      has it. *)
  val member : string -> t -> t option

  (** [number j] is [j] as a float when it is a number. *)
  val number : t -> float option

  (** [to_string e] is a single-line JSON object:
      [{"ts":<float>,"event":<name>,<field>:<value>,...}].  Field order is
      preserved.  Strings are escaped per JSON; finite floats print with
      enough digits to round-trip, infinities as the out-of-range literal
      [1e999] (read back as infinity) and nan as [null]. *)
  val to_string : event -> string

  (** [of_string line] parses a line produced by {!to_string} (any flat
      JSON object with an ["event"] member and string/number/bool values;
      [null] fields parse as [String "null"]).
      @raise Parse_error on malformed input. *)
  val of_string : string -> event

  (** [encode j] is the compact single-line JSON encoding of an arbitrary
      tree — the inverse of {!parse} (numeric spellings follow
      {!to_string}'s float rules).  {!to_string} remains the dedicated
      fast path for flat event lines; [encode] is for whole documents
      (the [Fl_serve] protocol frames). *)
  val encode : t -> string

  (** [of_value v] lifts an event field value into the tree. *)
  val of_value : value -> t

  (** [value_to_string v] is the JSON encoding of one scalar (for builders
      of larger JSON documents, e.g. the bench reports). *)
  val value_to_string : value -> string

  (** [string_to_string s] is [s] as a quoted, escaped JSON string. *)
  val string_to_string : string -> string
end

(** {1 Histograms}

    Fixed-shape log₂ histograms: 64 buckets, bucket 0 holds values [<= 0]
    and bucket [i >= 1] holds [[2^(i-1), 2^i - 1]].  Like counters they
    stripe by domain — {!Hist.record} is one atomic add on the recording
    domain's stripe, with no lock and no allocation — and a read merges
    the stripes.  A histogram records raw integers; [scale] is a display
    multiplier applied on read (the stock time histograms record
    microseconds with [scale = 1e-6], so summaries read in seconds). *)

module Hist : sig
  type t

  (** Merged read-side snapshot: total counts per bucket. *)
  type snap = { hname : string; hscale : float; hbuckets : int array }

  (** [make ?registry ?scale name] is the (registry, name) histogram,
      created empty on first use.  [scale] defaults to [1.0] and is fixed
      at creation. *)
  val make : ?registry:Registry.t -> ?scale:float -> string -> t

  (** [record h v] adds one sample: a single atomic increment. *)
  val record : t -> int -> unit

  (** [record_time h seconds] records [seconds] converted to the
      histogram's scale units (microseconds for [scale = 1e-6]), rounded
      to nearest. *)
  val record_time : t -> float -> unit

  (** [read h] merges the stripes into a snapshot (named by the caller via
      {!Fl_obs.hist_snapshot}, which is the usual way to read). *)
  val read_cells : string -> t -> snap

  (** [bucket_of v] is the bucket index [record] files [v] under. *)
  val bucket_of : int -> int

  val count : snap -> int

  (** [sum s] estimates the sample sum from bucket midpoints, in display
      units. *)
  val sum : snap -> float

  (** [quantile s q] is the scaled upper bound of the bucket holding the
      [q]-th sample — an upper estimate, exact to within one bucket.  0 on
      an empty histogram. *)
  val quantile : snap -> float -> float

  (** [max_value s] is the scaled upper bound of the highest non-empty
      bucket (0 when empty). *)
  val max_value : snap -> float

  (** [upper_bound s i] is bucket [i]'s largest representable value in
      display units (0 for bucket 0). *)
  val upper_bound : snap -> int -> float

  (** [merge a b] sums bucket counts pointwise; keeps [a]'s name.
      @raise Invalid_argument when the scales differ. *)
  val merge : snap -> snap -> snap

  (** [json s] renders [{"count":..,"sum":..,"p50":..,"p90":..,"p99":..,
      "max":..,"scale":..,"buckets":{"<index>":<count>,..}}] — summary
      statistics plus the sparse bucket vector, so {!of_json} recovers the
      exact distribution. *)
  val json : snap -> string

  (** [of_json ~name j] reads back what {!json} wrote.
      @raise Json.Parse_error on missing or malformed members. *)
  val of_json : name:string -> Json.t -> snap
end

(** [snapshot ?registry ()] is every counter and gauge of the registry as
    (name, value) pairs, sorted by name.  Counters snapshot as [Int],
    gauges as [Float].  Histograms are excluded (see {!hist_snapshot}). *)
val snapshot : ?registry:Registry.t -> unit -> (string * value) list

(** [hist_snapshot ?registry ()] is every histogram of the registry as a
    merged snapshot, sorted by name. *)
val hist_snapshot : ?registry:Registry.t -> unit -> Hist.snap list

(** [reset_metrics ?registry ()] zeroes every counter, gauge and histogram
    (for benchmark isolation; existing handles stay valid). *)
val reset_metrics : ?registry:Registry.t -> unit -> unit

(** [pp_snapshot fmt ()] prints the default registry's snapshot — one
    [name = value] per line, histograms as count/p50/p99/max summaries. *)
val pp_snapshot : Format.formatter -> unit -> unit

(** {1 Span profiles}

    Aggregates ["span.begin:*"]/["span.end:*"] events into a
    calling-context tree: one node per path of span names, carrying call
    count, total time, and {e self} time (total minus the sum of the
    direct children's totals — the time spent in the span's own code).
    Per-domain open-span stacks (from the events' [domain] field) keep
    interleaved worker-domain traces attributed to the right parents.

    Feed a profile live with {!Profile.sink} (delivery is serialized by
    the sink lock) or offline with {!Profile.of_jsonl_file}; then read it
    with {!Profile.roots} / {!Profile.flame}.  Reading while events are
    still being fed is a race — detach the sink first. *)

module Profile : sig
  type t

  val create : unit -> t

  (** [add_event p e] folds one event into the profile; non-span events
      are ignored.  An end without a matching begin (truncated trace) is
      dropped and counted in {!unmatched}. *)
  val add_event : t -> event -> unit

  (** [sink p] is [add_event p] as an installable sink. *)
  val sink : t -> sink

  (** [of_jsonl_file path] builds a profile from a JSONL trace, skipping
      unparsable lines. *)
  val of_jsonl_file : string -> t

  (** Immutable aggregation tree, children sorted by total time
      descending. *)
  type tree = {
    tname : string;
    calls : int;
    total_s : float;
    self_s : float;  (** [total_s] minus the children's [total_s], >= 0 *)
    children : tree list;
  }

  (** Top-level spans, sorted by total time descending. *)
  val roots : t -> tree list

  (** Number of span.end events that could not be matched to an open
      span. *)
  val unmatched : t -> int

  (** [flame p] is the profile as folded stacks: one
      [("root;child;..;name", self_seconds)] line per node with positive
      self time — the input format of flamegraph.pl (scale the value to
      integer microseconds when writing).  The self values under each root
      sum to that root's total time. *)
  val flame : t -> (string * float) list
end
