(* Observability substrate.  Everything here is deliberately boring:
   striped atomic cells for metrics, a list of sinks for events,
   gettimeofday for clocks.  The one invariant that matters is the no-sink
   fast path — emit and with_span must cost a single branch when nothing is
   listening, and a histogram record must stay one atomic add whether or
   not anything ever reads it.

   Domain-safety (the Fl_par sweeps run attacks on worker domains):
   counters and histograms stripe their cells by domain id, so concurrent
   increments land on (mostly) distinct atomics and a read merges the
   stripes — the "per-domain registries merged at join" design, with the
   merge done on every read so nothing is lost if a domain is still
   running.  Sink installation publishes through an [Atomic.t] and event
   delivery is serialized by a mutex, keeping JSONL lines whole under
   parallel emission.  Span depth is domain-local state. *)

type value = Int of int | Float of float | String of string | Bool of bool

type event = { ts : float; name : string; fields : (string * value) list }
type sink = event -> unit
type sink_id = int

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

module Json = struct
  exception Parse_error of string

  type t =
    | Jnull
    | Jbool of bool
    | Jint of int
    | Jfloat of float
    | Jstring of string
    | Jarr of t list
    | Jobj of (string * t) list

  let escape buf s =
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'

  (* %.17g round-trips any float; trim to %g when that already does.
     Non-finite floats have no JSON spelling: infinities print as the
     out-of-range literal 1e999 (which float_of_string reads back as
     infinity) and nan prints as null. *)
  let float_str f =
    if f <> f then "null"
    else if f = Float.infinity then "1e999"
    else if f = Float.neg_infinity then "-1e999"
    else if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.1f" f
    else
      let short = Printf.sprintf "%g" f in
      if float_of_string short = f then short else Printf.sprintf "%.17g" f

  let add_value buf = function
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_str f)
    | String s -> escape buf s
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")

  let value_to_string v =
    let buf = Buffer.create 16 in
    add_value buf v;
    Buffer.contents buf

  let string_to_string s =
    let buf = Buffer.create 16 in
    escape buf s;
    Buffer.contents buf

  let to_string e =
    let buf = Buffer.create 128 in
    Buffer.add_string buf "{\"ts\":";
    add_value buf (Float e.ts);
    Buffer.add_string buf ",\"event\":";
    escape buf e.name;
    List.iter
      (fun (k, v) ->
        Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        add_value buf v)
      e.fields;
    Buffer.add_char buf '}';
    Buffer.contents buf

  (* Recursive-descent parser for the full JSON language; [of_string]
     restricts the result to the flat-object shape [to_string] emits, and
     the bench regression gate reads whole BENCH_*.json documents. *)
  type cursor = { text : string; mutable pos : int }

  let fail msg = raise (Parse_error msg)

  let peek cur =
    if cur.pos >= String.length cur.text then '\000' else cur.text.[cur.pos]

  let skip_ws cur =
    while
      cur.pos < String.length cur.text
      && (match cur.text.[cur.pos] with
          | ' ' | '\t' | '\n' | '\r' -> true
          | _ -> false)
    do
      cur.pos <- cur.pos + 1
    done

  let expect cur c =
    skip_ws cur;
    if peek cur <> c then
      fail (Printf.sprintf "expected %C at offset %d" c cur.pos)
    else cur.pos <- cur.pos + 1

  let parse_string cur =
    expect cur '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if cur.pos >= String.length cur.text then fail "unterminated string"
      else
        let c = cur.text.[cur.pos] in
        cur.pos <- cur.pos + 1;
        match c with
        | '"' -> Buffer.contents buf
        | '\\' ->
          (if cur.pos >= String.length cur.text then fail "bad escape"
           else
             let e = cur.text.[cur.pos] in
             cur.pos <- cur.pos + 1;
             match e with
             | '"' -> Buffer.add_char buf '"'
             | '\\' -> Buffer.add_char buf '\\'
             | '/' -> Buffer.add_char buf '/'
             | 'n' -> Buffer.add_char buf '\n'
             | 'r' -> Buffer.add_char buf '\r'
             | 't' -> Buffer.add_char buf '\t'
             | 'b' -> Buffer.add_char buf '\b'
             | 'f' -> Buffer.add_char buf '\012'
             | 'u' ->
               if cur.pos + 4 > String.length cur.text then fail "bad \\u"
               else begin
                 let hex = String.sub cur.text cur.pos 4 in
                 cur.pos <- cur.pos + 4;
                 let code =
                   try int_of_string ("0x" ^ hex)
                   with _ -> fail "bad \\u digits"
                 in
                 if code < 0x80 then Buffer.add_char buf (Char.chr code)
                 else
                   (* Non-ASCII escapes are not produced by to_string;
                      decode to UTF-8 for completeness. *)
                   Buffer.add_string buf
                     (if code < 0x800 then
                        let b0 = 0xC0 lor (code lsr 6)
                        and b1 = 0x80 lor (code land 0x3F) in
                        Printf.sprintf "%c%c" (Char.chr b0) (Char.chr b1)
                      else
                        let b0 = 0xE0 lor (code lsr 12)
                        and b1 = 0x80 lor ((code lsr 6) land 0x3F)
                        and b2 = 0x80 lor (code land 0x3F) in
                        Printf.sprintf "%c%c%c" (Char.chr b0) (Char.chr b1)
                          (Char.chr b2))
               end
             | _ -> fail "bad escape");
          go ()
        | c ->
          Buffer.add_char buf c;
          go ()
    in
    go ()

  let rec parse_value cur =
    skip_ws cur;
    match peek cur with
    | '{' ->
      cur.pos <- cur.pos + 1;
      let members = ref [] in
      skip_ws cur;
      if peek cur <> '}' then begin
        let rec go () =
          skip_ws cur;
          let k = parse_string cur in
          expect cur ':';
          let v = parse_value cur in
          members := (k, v) :: !members;
          skip_ws cur;
          if peek cur = ',' then begin
            cur.pos <- cur.pos + 1;
            go ()
          end
        in
        go ()
      end;
      expect cur '}';
      Jobj (List.rev !members)
    | '[' ->
      cur.pos <- cur.pos + 1;
      let items = ref [] in
      skip_ws cur;
      if peek cur <> ']' then begin
        let rec go () =
          let v = parse_value cur in
          items := v :: !items;
          skip_ws cur;
          if peek cur = ',' then begin
            cur.pos <- cur.pos + 1;
            go ()
          end
        in
        go ()
      end;
      expect cur ']';
      Jarr (List.rev !items)
    | '"' -> Jstring (parse_string cur)
    | 't' ->
      if cur.pos + 4 <= String.length cur.text
         && String.sub cur.text cur.pos 4 = "true"
      then begin
        cur.pos <- cur.pos + 4;
        Jbool true
      end
      else fail "bad literal"
    | 'f' ->
      if cur.pos + 5 <= String.length cur.text
         && String.sub cur.text cur.pos 5 = "false"
      then begin
        cur.pos <- cur.pos + 5;
        Jbool false
      end
      else fail "bad literal"
    | 'n' ->
      if cur.pos + 4 <= String.length cur.text
         && String.sub cur.text cur.pos 4 = "null"
      then begin
        cur.pos <- cur.pos + 4;
        Jnull
      end
      else fail "bad literal"
    | c when c = '-' || (c >= '0' && c <= '9') ->
      let start = cur.pos in
      let is_float = ref false in
      while
        cur.pos < String.length cur.text
        &&
        match cur.text.[cur.pos] with
        | '0' .. '9' | '-' | '+' -> true
        | '.' | 'e' | 'E' ->
          is_float := true;
          true
        | _ -> false
      do
        cur.pos <- cur.pos + 1
      done;
      let tok = String.sub cur.text start (cur.pos - start) in
      if !is_float then
        Jfloat (try float_of_string tok with _ -> fail "bad number")
      else Jint (try int_of_string tok with _ -> fail "bad number")
    | _ -> fail (Printf.sprintf "unexpected character at offset %d" cur.pos)

  let parse text =
    let cur = { text; pos = 0 } in
    let v = parse_value cur in
    skip_ws cur;
    if cur.pos <> String.length text then fail "trailing garbage";
    v

  (* Generic encoder — the inverse of [parse].  [to_string] above stays
     the dedicated flat-event fast path; this one serializes arbitrary
     trees (the serving layer's request/response frames). *)
  let rec add_json buf = function
    | Jnull -> Buffer.add_string buf "null"
    | Jbool b -> Buffer.add_string buf (if b then "true" else "false")
    | Jint i -> Buffer.add_string buf (string_of_int i)
    | Jfloat f -> Buffer.add_string buf (float_str f)
    | Jstring s -> escape buf s
    | Jarr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          add_json buf v)
        items;
      Buffer.add_char buf ']'
    | Jobj members ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          add_json buf v)
        members;
      Buffer.add_char buf '}'

  let encode j =
    let buf = Buffer.create 128 in
    add_json buf j;
    Buffer.contents buf

  let of_value = function
    | Int i -> Jint i
    | Float f -> Jfloat f
    | String s -> Jstring s
    | Bool b -> Jbool b

  let member k = function Jobj ms -> List.assoc_opt k ms | _ -> None

  let number = function
    | Jint i -> Some (float_of_int i)
    | Jfloat f -> Some f
    | _ -> None

  let of_string line =
    let members =
      match parse line with
      | Jobj ms -> ms
      | _ -> fail "expected an object"
    in
    let scalar k = function
      | Jint i -> Int i
      | Jfloat f -> Float f
      | Jstring s -> String s
      | Jbool b -> Bool b
      | Jnull -> String "null"
      | Jobj _ | Jarr _ ->
        fail (Printf.sprintf "field %S is not a scalar" k)
    in
    let members = List.map (fun (k, v) -> (k, scalar k v)) members in
    let ts =
      match List.assoc_opt "ts" members with
      | Some (Float f) -> f
      | Some (Int i) -> float_of_int i
      | _ -> fail "missing ts"
    in
    let name =
      match List.assoc_opt "event" members with
      | Some (String s) -> s
      | _ -> fail "missing event"
    in
    let fields =
      List.filter (fun (k, _) -> k <> "ts" && k <> "event") members
    in
    { ts; name; fields }
end

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)
(* ------------------------------------------------------------------ *)

let sinks : (sink_id * sink) list Atomic.t = Atomic.make []
let next_sink_id = Atomic.make 0

(* Serializes both sink-list mutation and event delivery; a sink body must
   not emit (the mutex is not re-entrant). *)
let sink_mutex = Mutex.create ()

let add_sink s =
  let id = 1 + Atomic.fetch_and_add next_sink_id 1 in
  Mutex.lock sink_mutex;
  Atomic.set sinks ((id, s) :: Atomic.get sinks);
  Mutex.unlock sink_mutex;
  id

let remove_sink id =
  Mutex.lock sink_mutex;
  Atomic.set sinks (List.filter (fun (i, _) -> i <> id) (Atomic.get sinks));
  Mutex.unlock sink_mutex

let with_sink s f =
  let id = add_sink s in
  Fun.protect ~finally:(fun () -> remove_sink id) f

(* Scoped sinks: installed on the calling domain only, for the extent of
   one callback.  The serving layer uses one per request, so concurrent
   attacks on worker domains each stream their own telemetry without
   seeing each other's events.  The list lives in DLS; a global count
   keeps the nothing-installed fast path at two atomic loads (the DLS
   lookup only happens once some domain has a scope open).  Delivery is
   domain-local state, so it runs OUTSIDE the global sink mutex — scoped
   sinks on different domains never serialize against each other.  Two
   sys-threads sharing one domain share the scope list; the finalizer
   removes by physical identity so interleaved scopes unwind safely, but
   emissions from the sibling thread during the scope will also reach the
   scoped sink (don't share a domain between independently-emitting
   threads). *)
let scoped_count = Atomic.make 0

let scoped_key : sink list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let scoped_here () =
  if Atomic.get scoped_count = 0 then [] else !(Domain.DLS.get scoped_key)

let with_scoped_sink s f =
  let cell = Domain.DLS.get scoped_key in
  cell := s :: !cell;
  Atomic.incr scoped_count;
  Fun.protect
    ~finally:(fun () ->
      Atomic.decr scoped_count;
      let rec drop = function
        | [] -> []
        | x :: rest -> if x == s then rest else x :: drop rest
      in
      cell := drop !cell)
    f

let enabled () = Atomic.get sinks <> [] || scoped_here () <> []

let emit ?(fields = []) name =
  match (Atomic.get sinks, scoped_here ()) with
  | [], [] -> ()
  | installed, scoped ->
    let e = { ts = Unix.gettimeofday (); name; fields } in
    (match installed with
     | [] -> ()
     | _ ->
       Mutex.lock sink_mutex;
       Fun.protect
         ~finally:(fun () -> Mutex.unlock sink_mutex)
         (fun () -> List.iter (fun (_, s) -> s e) installed));
    List.iter (fun s -> s e) scoped

(* Deep profiling switch: histograms in solver/pool hot paths guard on
   this instead of [enabled], so a bench run can populate distributions
   without paying for event delivery.  Off by default — the no-sink,
   no-deep cost of an instrumented conflict is one load and branch. *)
let deep = Atomic.make false
let set_deep b = Atomic.set deep b
let deep_enabled () = Atomic.get deep

(* ------------------------------------------------------------------ *)
(* Registries, counters, gauges, histograms                            *)
(* ------------------------------------------------------------------ *)

(* Counters are striped: each domain increments the atomic cell its id
   hashes to, and a read sums the stripes.  Uncontended in the common case
   (stripe count >= active domains), always exact at read time. *)
let stripes = 16 (* power of two *)

let stripe_index () = (Domain.self () :> int) land (stripes - 1)

(* Histograms bucket by log2: bucket 0 holds values <= 0, bucket i >= 1
   holds [2^(i-1), 2^i - 1].  63-bit ints need at most 63 significant
   bits, so 64 buckets cover the whole int range. *)
let hist_buckets = 64

(* The raw striped cell grid lives outside module [Hist] so the registry's
   metric type can mention it before [Hist] (which needs [Json]) is
   defined. *)
type hist_cells = {
  hist_scale : float; (* display multiplier: value * scale = display units *)
  hist_grid : int Atomic.t array array; (* stripes x buckets *)
}

module Registry = struct
  type metric =
    | Mcounter of int Atomic.t array
    | Mgauge of float Atomic.t
    | Mhist of hist_cells

  type t = {
    rname : string;
    metrics : (string, metric) Hashtbl.t;
    lock : Mutex.t;  (* guards [metrics]; creation/snapshot only *)
  }

  let create rname =
    { rname; metrics = Hashtbl.create 32; lock = Mutex.create () }

  let default = create "fl"
  let name r = r.rname

  let locked r f =
    Mutex.lock r.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock r.lock) f
end

module Counter = struct
  type t = int Atomic.t array

  let make ?(registry = Registry.default) name =
    Registry.locked registry (fun () ->
        match Hashtbl.find_opt registry.Registry.metrics name with
        | Some (Registry.Mcounter c) -> c
        | Some (Registry.Mgauge _) ->
          invalid_arg
            (Printf.sprintf "Fl_obs.Counter.make: %S is a gauge" name)
        | Some (Registry.Mhist _) ->
          invalid_arg
            (Printf.sprintf "Fl_obs.Counter.make: %S is a histogram" name)
        | None ->
          let c = Array.init stripes (fun _ -> Atomic.make 0) in
          Hashtbl.add registry.Registry.metrics name (Registry.Mcounter c);
          c)

  let incr c = Atomic.incr c.(stripe_index ())
  let add c n = ignore (Atomic.fetch_and_add c.(stripe_index ()) n)
  let value c = Array.fold_left (fun acc cell -> acc + Atomic.get cell) 0 c
end

module Gauge = struct
  type t = float Atomic.t

  let make ?(registry = Registry.default) name =
    Registry.locked registry (fun () ->
        match Hashtbl.find_opt registry.Registry.metrics name with
        | Some (Registry.Mgauge g) -> g
        | Some (Registry.Mcounter _) ->
          invalid_arg
            (Printf.sprintf "Fl_obs.Gauge.make: %S is a counter" name)
        | Some (Registry.Mhist _) ->
          invalid_arg
            (Printf.sprintf "Fl_obs.Gauge.make: %S is a histogram" name)
        | None ->
          let g = Atomic.make 0.0 in
          Hashtbl.add registry.Registry.metrics name (Registry.Mgauge g);
          g)

  let set g v = Atomic.set g v
  let value g = Atomic.get g
end

module Hist = struct
  type t = hist_cells

  type snap = { hname : string; hscale : float; hbuckets : int array }

  let make ?(registry = Registry.default) ?(scale = 1.0) name =
    Registry.locked registry (fun () ->
        match Hashtbl.find_opt registry.Registry.metrics name with
        | Some (Registry.Mhist h) -> h
        | Some (Registry.Mcounter _) ->
          invalid_arg
            (Printf.sprintf "Fl_obs.Hist.make: %S is a counter" name)
        | Some (Registry.Mgauge _) ->
          invalid_arg (Printf.sprintf "Fl_obs.Hist.make: %S is a gauge" name)
        | None ->
          let h =
            {
              hist_scale = scale;
              hist_grid =
                Array.init stripes (fun _ ->
                    Array.init hist_buckets (fun _ -> Atomic.make 0));
            }
          in
          Hashtbl.add registry.Registry.metrics name (Registry.Mhist h);
          h)

  (* Significant-bit count by binary steps — a handful of shifts, no loop
     proportional to the value. *)
  let bucket_of v =
    if v <= 0 then 0
    else begin
      let v = ref v and b = ref 1 in
      if !v lsr 32 > 0 then begin
        b := !b + 32;
        v := !v lsr 32
      end;
      if !v lsr 16 > 0 then begin
        b := !b + 16;
        v := !v lsr 16
      end;
      if !v lsr 8 > 0 then begin
        b := !b + 8;
        v := !v lsr 8
      end;
      if !v lsr 4 > 0 then begin
        b := !b + 4;
        v := !v lsr 4
      end;
      if !v lsr 2 > 0 then begin
        b := !b + 2;
        v := !v lsr 2
      end;
      if !v lsr 1 > 0 then incr b;
      !b
    end

  let record h v = Atomic.incr h.hist_grid.(stripe_index ()).(bucket_of v)

  (* Times are recorded in units of the histogram's scale (1e-6 for the
     stock time histograms, i.e. microseconds), rounded to nearest. *)
  let record_time h seconds =
    record h (int_of_float ((seconds /. h.hist_scale) +. 0.5))

  let read_cells name h =
    let buckets =
      Array.init hist_buckets (fun b ->
          let n = ref 0 in
          for s = 0 to stripes - 1 do
            n := !n + Atomic.get h.hist_grid.(s).(b)
          done;
          !n)
    in
    { hname = name; hscale = h.hist_scale; hbuckets = buckets }

  let count s = Array.fold_left ( + ) 0 s.hbuckets

  (* Bucket i covers [2^(i-1), 2^i - 1]; its midpoint is 1.5*2^(i-1)-0.5
     (exact for i=1, the singleton bucket {1}). *)
  let midpoint i =
    if i = 0 then 0.0 else (1.5 *. (2.0 ** float_of_int (i - 1))) -. 0.5

  let upper_bound s i =
    if i = 0 then 0.0 else ((2.0 ** float_of_int i) -. 1.0) *. s.hscale

  let sum s =
    let acc = ref 0.0 in
    Array.iteri
      (fun i n -> acc := !acc +. (float_of_int n *. midpoint i *. s.hscale))
      s.hbuckets;
    !acc

  (* [quantile s q] is the scaled upper bound of the bucket holding the
     q-th sample (an upper estimate, exact to within the bucket width). *)
  let quantile s q =
    let total = count s in
    if total = 0 then 0.0
    else begin
      let q = Float.min 1.0 (Float.max 0.0 q) in
      let target =
        Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int total)))
      in
      let cum = ref 0 and found = ref 0 in
      (try
         Array.iteri
           (fun i n ->
             cum := !cum + n;
             if !cum >= target then begin
               found := i;
               raise Exit
             end)
           s.hbuckets
       with Exit -> ());
      upper_bound s !found
    end

  let max_value s =
    let top = ref 0 in
    Array.iteri (fun i n -> if n > 0 then top := i) s.hbuckets;
    upper_bound s !top

  let merge a b =
    if a.hscale <> b.hscale then
      invalid_arg
        (Printf.sprintf "Fl_obs.Hist.merge: scales differ (%s vs %s)"
           (Json.float_str a.hscale) (Json.float_str b.hscale));
    {
      hname = a.hname;
      hscale = a.hscale;
      hbuckets = Array.init hist_buckets (fun i -> a.hbuckets.(i) + b.hbuckets.(i));
    }

  (* JSON rendering: summary statistics plus the sparse bucket array keyed
     by bucket index, so the exact distribution round-trips. *)
  let json s =
    let buf = Buffer.create 128 in
    Buffer.add_string buf "{\"count\":";
    Buffer.add_string buf (string_of_int (count s));
    Buffer.add_string buf ",\"sum\":";
    Buffer.add_string buf (Json.float_str (sum s));
    Buffer.add_string buf ",\"p50\":";
    Buffer.add_string buf (Json.float_str (quantile s 0.5));
    Buffer.add_string buf ",\"p90\":";
    Buffer.add_string buf (Json.float_str (quantile s 0.9));
    Buffer.add_string buf ",\"p99\":";
    Buffer.add_string buf (Json.float_str (quantile s 0.99));
    Buffer.add_string buf ",\"max\":";
    Buffer.add_string buf (Json.float_str (max_value s));
    Buffer.add_string buf ",\"scale\":";
    Buffer.add_string buf (Json.float_str s.hscale);
    Buffer.add_string buf ",\"buckets\":{";
    let first = ref true in
    Array.iteri
      (fun i n ->
        if n > 0 then begin
          if not !first then Buffer.add_char buf ',';
          first := false;
          Buffer.add_string buf (Printf.sprintf "\"%d\":%d" i n)
        end)
      s.hbuckets;
    Buffer.add_string buf "}}";
    Buffer.contents buf

  let of_json ~name j =
    let scale =
      match Option.bind (Json.member "scale" j) Json.number with
      | Some s -> s
      | None -> raise (Json.Parse_error "histogram: missing scale")
    in
    let buckets = Array.make hist_buckets 0 in
    (match Json.member "buckets" j with
     | Some (Json.Jobj members) ->
       List.iter
         (fun (k, v) ->
           let i =
             try int_of_string k
             with _ ->
               raise (Json.Parse_error "histogram: non-integer bucket key")
           in
           if i < 0 || i >= hist_buckets then
             raise (Json.Parse_error "histogram: bucket index out of range");
           match v with
           | Json.Jint n -> buckets.(i) <- n
           | _ -> raise (Json.Parse_error "histogram: non-integer count"))
         members
     | _ -> raise (Json.Parse_error "histogram: missing buckets"));
    { hname = name; hscale = scale; hbuckets = buckets }
end

let snapshot ?(registry = Registry.default) () =
  Registry.locked registry (fun () ->
      Hashtbl.fold
        (fun name m acc ->
          match m with
          | Registry.Mcounter c -> (name, Int (Counter.value c)) :: acc
          | Registry.Mgauge g -> (name, Float (Atomic.get g)) :: acc
          | Registry.Mhist _ -> acc (* see hist_snapshot *))
        registry.Registry.metrics [])
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let hist_snapshot ?(registry = Registry.default) () =
  Registry.locked registry (fun () ->
      Hashtbl.fold
        (fun name m acc ->
          match m with
          | Registry.Mhist h -> Hist.read_cells name h :: acc
          | Registry.Mcounter _ | Registry.Mgauge _ -> acc)
        registry.Registry.metrics [])
  |> List.sort (fun a b -> compare a.Hist.hname b.Hist.hname)

let reset_metrics ?(registry = Registry.default) () =
  Registry.locked registry (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | Registry.Mcounter c -> Array.iter (fun cell -> Atomic.set cell 0) c
          | Registry.Mgauge g -> Atomic.set g 0.0
          | Registry.Mhist h ->
            Array.iter
              (fun row -> Array.iter (fun cell -> Atomic.set cell 0) row)
              h.hist_grid)
        registry.Registry.metrics)

let pp_snapshot fmt () =
  List.iter
    (fun (name, v) ->
      match v with
      | Int i -> Format.fprintf fmt "%s = %d@." name i
      | Float f -> Format.fprintf fmt "%s = %g@." name f
      | String s -> Format.fprintf fmt "%s = %s@." name s
      | Bool b -> Format.fprintf fmt "%s = %b@." name b)
    (snapshot ());
  List.iter
    (fun s ->
      Format.fprintf fmt "%s = count %d p50 %g p99 %g max %g@." s.Hist.hname
        (Hist.count s) (Hist.quantile s 0.5) (Hist.quantile s 0.99)
        (Hist.max_value s))
    (hist_snapshot ())

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

(* Nesting depth is per domain: spans opened on a worker domain do not
   perturb the main domain's depth. *)
let depth_key = Domain.DLS.new_key (fun () -> ref 0)

let depth () = Domain.DLS.get depth_key

let span_depth () = !(depth ())

(* GC gauges sampled when a top-level span closes — cheap (Gc.quick_stat),
   and a top-level span exit is exactly the "one experiment / one attack
   finished" moment the bench reports want a heap picture of. *)
let gc_minor_words = Gauge.make "gc.minor_words"
let gc_major_words = Gauge.make "gc.major_words"
let gc_top_heap_words = Gauge.make "gc.top_heap_words"

let sample_gc () =
  let g = Gc.quick_stat () in
  Gauge.set gc_minor_words g.Gc.minor_words;
  Gauge.set gc_major_words g.Gc.major_words;
  Gauge.set gc_top_heap_words (float_of_int g.Gc.top_heap_words)

let with_span ?(fields = []) name f =
  if not (enabled ()) then f ()
  else begin
    let depth = depth () in
    let d = !depth in
    let dom = (Domain.self () :> int) in
    emit
      ~fields:(("depth", Int d) :: ("domain", Int dom) :: fields)
      ("span.begin:" ^ name);
    let t0 = Unix.gettimeofday () in
    incr depth;
    Fun.protect
      ~finally:(fun () ->
        decr depth;
        let dur = Unix.gettimeofday () -. t0 in
        if d = 0 then sample_gc ();
        emit
          ~fields:
            (("depth", Int d)
             :: ("domain", Int dom)
             :: ("dur_s", Float dur)
             :: fields)
          ("span.end:" ^ name))
      f
  end

(* ------------------------------------------------------------------ *)
(* Span profiles                                                       *)
(* ------------------------------------------------------------------ *)

module Profile = struct
  (* A calling-context tree: one node per (path of span names), with
     per-domain open-span stacks so interleaved worker-domain traces
     attribute time to the right parent.  Feed it events either live (as a
     sink — delivery is already serialized by the sink mutex) or offline
     from a JSONL trace. *)

  type node = {
    nname : string;
    mutable calls : int;
    mutable total_s : float;
    nchildren : (string, node) Hashtbl.t;
  }

  type t = {
    proot : node;
    pstacks : (int, node list ref) Hashtbl.t; (* domain -> innermost-first *)
    mutable punmatched : int;
  }

  let make_node nname =
    { nname; calls = 0; total_s = 0.0; nchildren = Hashtbl.create 4 }

  let create () =
    {
      proot = make_node "<root>";
      pstacks = Hashtbl.create 4;
      punmatched = 0;
    }

  let begin_prefix = "span.begin:"
  let end_prefix = "span.end:"

  let strip prefix s =
    let lp = String.length prefix in
    if String.length s >= lp && String.sub s 0 lp = prefix then
      Some (String.sub s lp (String.length s - lp))
    else None

  let stack p dom =
    match Hashtbl.find_opt p.pstacks dom with
    | Some st -> st
    | None ->
      let st = ref [] in
      Hashtbl.add p.pstacks dom st;
      st

  let field_int e k =
    match List.assoc_opt k e.fields with Some (Int i) -> Some i | _ -> None

  let field_float e k =
    match List.assoc_opt k e.fields with
    | Some (Float f) -> Some f
    | Some (Int i) -> Some (float_of_int i)
    | _ -> None

  let child parent name =
    match Hashtbl.find_opt parent.nchildren name with
    | Some n -> n
    | None ->
      let n = make_node name in
      Hashtbl.add parent.nchildren name n;
      n

  let add_event p e =
    match strip begin_prefix e.name with
    | Some name ->
      let dom = Option.value ~default:0 (field_int e "domain") in
      let st = stack p dom in
      let parent = match !st with [] -> p.proot | n :: _ -> n in
      st := child parent name :: !st
    | None ->
      (match strip end_prefix e.name with
       | None -> ()
       | Some name ->
         let dom = Option.value ~default:0 (field_int e "domain") in
         let dur = Option.value ~default:0.0 (field_float e "dur_s") in
         let st = stack p dom in
         let rec pop = function
           | n :: rest when n.nname = name ->
             n.calls <- n.calls + 1;
             n.total_s <- n.total_s +. dur;
             st := rest
           | _ :: rest ->
             (* an enclosing begin lost its end (truncated trace);
                resync at the matching frame if one exists *)
             p.punmatched <- p.punmatched + 1;
             pop rest
           | [] -> p.punmatched <- p.punmatched + 1
         in
         if List.exists (fun n -> n.nname = name) !st then pop !st
         else p.punmatched <- p.punmatched + 1)

  let sink p : sink = fun e -> add_event p e

  let of_jsonl_file path =
    let p = create () in
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        try
          while true do
            let line = input_line ic in
            if String.trim line <> "" then
              match Json.of_string line with
              | e -> add_event p e
              | exception Json.Parse_error _ -> ()
          done
        with End_of_file -> ());
    p

  type tree = {
    tname : string;
    calls : int;
    total_s : float;
    self_s : float;
    children : tree list;
  }

  let rec freeze node =
    let children =
      Hashtbl.fold (fun _ n acc -> freeze n :: acc) node.nchildren []
      |> List.sort (fun a b -> compare b.total_s a.total_s)
    in
    let child_total =
      List.fold_left (fun acc c -> acc +. c.total_s) 0.0 children
    in
    {
      tname = node.nname;
      calls = node.calls;
      total_s = node.total_s;
      self_s = Float.max 0.0 (node.total_s -. child_total);
      children;
    }

  let roots p =
    Hashtbl.fold (fun _ n acc -> freeze n :: acc) p.proot.nchildren []
    |> List.sort (fun a b -> compare b.total_s a.total_s)

  let unmatched p = p.punmatched

  (* Folded stacks ("a;b;c self-seconds"), one line per tree node: the
     format flamegraph.pl consumes, and by construction the self values
     under a root sum to that root's total. *)
  let flame p =
    let lines = ref [] in
    let rec go prefix t =
      let path = if prefix = "" then t.tname else prefix ^ ";" ^ t.tname in
      if t.self_s > 0.0 then lines := (path, t.self_s) :: !lines;
      List.iter (go path) t.children
    in
    List.iter (go "") (roots p);
    List.rev !lines
end

(* ------------------------------------------------------------------ *)
(* Stock sinks                                                         *)
(* ------------------------------------------------------------------ *)

let jsonl_sink oc e =
  output_string oc (Json.to_string e);
  output_char oc '\n'

let console_sink ?(oc = stderr) () e =
  let tm = Unix.localtime e.ts in
  let ms = int_of_float ((e.ts -. Float.of_int (int_of_float e.ts)) *. 1000.0) in
  let buf = Buffer.create 96 in
  Buffer.add_string buf
    (Printf.sprintf "%02d:%02d:%02d.%03d %s" tm.Unix.tm_hour tm.Unix.tm_min
       tm.Unix.tm_sec ms e.name);
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf k;
      Buffer.add_char buf '=';
      Buffer.add_string buf
        (match v with
         | Int i -> string_of_int i
         | Float f -> Printf.sprintf "%g" f
         | String s -> s
         | Bool b -> string_of_bool b))
    e.fields;
  Buffer.add_char buf '\n';
  output_string oc (Buffer.contents buf);
  flush oc
