(* Observability substrate.  Everything here is deliberately boring:
   striped atomic cells for metrics, a list of sinks for events,
   gettimeofday for clocks.  The one invariant that matters is the no-sink
   fast path — emit and with_span must cost a single branch when nothing is
   listening.

   Domain-safety (the Fl_par sweeps run attacks on worker domains):
   counters stripe their cells by domain id, so concurrent increments land
   on (mostly) distinct atomics and a read merges the stripes — the
   "per-domain registries merged at join" design, with the merge done on
   every read so nothing is lost if a domain is still running.  Sink
   installation publishes through an [Atomic.t] and event delivery is
   serialized by a mutex, keeping JSONL lines whole under parallel
   emission.  Span depth is domain-local state. *)

type value = Int of int | Float of float | String of string | Bool of bool

type event = { ts : float; name : string; fields : (string * value) list }
type sink = event -> unit
type sink_id = int

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)
(* ------------------------------------------------------------------ *)

let sinks : (sink_id * sink) list Atomic.t = Atomic.make []
let next_sink_id = Atomic.make 0

(* Serializes both sink-list mutation and event delivery; a sink body must
   not emit (the mutex is not re-entrant). *)
let sink_mutex = Mutex.create ()

let add_sink s =
  let id = 1 + Atomic.fetch_and_add next_sink_id 1 in
  Mutex.lock sink_mutex;
  Atomic.set sinks ((id, s) :: Atomic.get sinks);
  Mutex.unlock sink_mutex;
  id

let remove_sink id =
  Mutex.lock sink_mutex;
  Atomic.set sinks (List.filter (fun (i, _) -> i <> id) (Atomic.get sinks));
  Mutex.unlock sink_mutex

let with_sink s f =
  let id = add_sink s in
  Fun.protect ~finally:(fun () -> remove_sink id) f

let enabled () = Atomic.get sinks <> []

let emit ?(fields = []) name =
  match Atomic.get sinks with
  | [] -> ()
  | installed ->
    let e = { ts = Unix.gettimeofday (); name; fields } in
    Mutex.lock sink_mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock sink_mutex)
      (fun () -> List.iter (fun (_, s) -> s e) installed)

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

(* Nesting depth is per domain: spans opened on a worker domain do not
   perturb the main domain's depth. *)
let depth_key = Domain.DLS.new_key (fun () -> ref 0)

let depth () = Domain.DLS.get depth_key

let span_depth () = !(depth ())

let with_span ?(fields = []) name f =
  if not (enabled ()) then f ()
  else begin
    let depth = depth () in
    let d = !depth in
    emit ~fields:(("depth", Int d) :: fields) ("span.begin:" ^ name);
    let t0 = Unix.gettimeofday () in
    incr depth;
    Fun.protect
      ~finally:(fun () ->
        decr depth;
        let dur = Unix.gettimeofday () -. t0 in
        emit
          ~fields:(("depth", Int d) :: ("dur_s", Float dur) :: fields)
          ("span.end:" ^ name))
      f
  end

(* ------------------------------------------------------------------ *)
(* Registries, counters, gauges                                        *)
(* ------------------------------------------------------------------ *)

(* Counters are striped: each domain increments the atomic cell its id
   hashes to, and a read sums the stripes.  Uncontended in the common case
   (stripe count >= active domains), always exact at read time. *)
let stripes = 16 (* power of two *)

let stripe_index () = (Domain.self () :> int) land (stripes - 1)

module Registry = struct
  type metric = Mcounter of int Atomic.t array | Mgauge of float Atomic.t

  type t = {
    rname : string;
    metrics : (string, metric) Hashtbl.t;
    lock : Mutex.t;  (* guards [metrics]; creation/snapshot only *)
  }

  let create rname =
    { rname; metrics = Hashtbl.create 32; lock = Mutex.create () }

  let default = create "fl"
  let name r = r.rname

  let locked r f =
    Mutex.lock r.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock r.lock) f
end

module Counter = struct
  type t = int Atomic.t array

  let make ?(registry = Registry.default) name =
    Registry.locked registry (fun () ->
        match Hashtbl.find_opt registry.Registry.metrics name with
        | Some (Registry.Mcounter c) -> c
        | Some (Registry.Mgauge _) ->
          invalid_arg
            (Printf.sprintf "Fl_obs.Counter.make: %S is a gauge" name)
        | None ->
          let c = Array.init stripes (fun _ -> Atomic.make 0) in
          Hashtbl.add registry.Registry.metrics name (Registry.Mcounter c);
          c)

  let incr c = Atomic.incr c.(stripe_index ())
  let add c n = ignore (Atomic.fetch_and_add c.(stripe_index ()) n)
  let value c = Array.fold_left (fun acc cell -> acc + Atomic.get cell) 0 c
end

module Gauge = struct
  type t = float Atomic.t

  let make ?(registry = Registry.default) name =
    Registry.locked registry (fun () ->
        match Hashtbl.find_opt registry.Registry.metrics name with
        | Some (Registry.Mgauge g) -> g
        | Some (Registry.Mcounter _) ->
          invalid_arg
            (Printf.sprintf "Fl_obs.Gauge.make: %S is a counter" name)
        | None ->
          let g = Atomic.make 0.0 in
          Hashtbl.add registry.Registry.metrics name (Registry.Mgauge g);
          g)

  let set g v = Atomic.set g v
  let value g = Atomic.get g
end

let snapshot ?(registry = Registry.default) () =
  Registry.locked registry (fun () ->
      Hashtbl.fold
        (fun name m acc ->
          let v =
            match m with
            | Registry.Mcounter c -> Int (Counter.value c)
            | Registry.Mgauge g -> Float (Atomic.get g)
          in
          (name, v) :: acc)
        registry.Registry.metrics [])
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let reset_metrics ?(registry = Registry.default) () =
  Registry.locked registry (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | Registry.Mcounter c -> Array.iter (fun cell -> Atomic.set cell 0) c
          | Registry.Mgauge g -> Atomic.set g 0.0)
        registry.Registry.metrics)

let pp_snapshot fmt () =
  List.iter
    (fun (name, v) ->
      match v with
      | Int i -> Format.fprintf fmt "%s = %d@." name i
      | Float f -> Format.fprintf fmt "%s = %g@." name f
      | String s -> Format.fprintf fmt "%s = %s@." name s
      | Bool b -> Format.fprintf fmt "%s = %b@." name b)
    (snapshot ())

(* ------------------------------------------------------------------ *)
(* JSONL                                                               *)
(* ------------------------------------------------------------------ *)

module Json = struct
  exception Parse_error of string

  let escape buf s =
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'

  (* %.17g round-trips any float; trim to %g when that already does. *)
  let float_str f =
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.1f" f
    else
      let short = Printf.sprintf "%g" f in
      if float_of_string short = f then short else Printf.sprintf "%.17g" f

  let add_value buf = function
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_str f)
    | String s -> escape buf s
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")

  let value_to_string v =
    let buf = Buffer.create 16 in
    add_value buf v;
    Buffer.contents buf

  let string_to_string s =
    let buf = Buffer.create 16 in
    escape buf s;
    Buffer.contents buf

  let to_string e =
    let buf = Buffer.create 128 in
    Buffer.add_string buf "{\"ts\":";
    add_value buf (Float e.ts);
    Buffer.add_string buf ",\"event\":";
    escape buf e.name;
    List.iter
      (fun (k, v) ->
        Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        add_value buf v)
      e.fields;
    Buffer.add_char buf '}';
    Buffer.contents buf

  (* Minimal recursive-descent parser for one flat object of scalars — the
     exact language [to_string] emits (plus null, for robustness). *)
  type cursor = { text : string; mutable pos : int }

  let fail msg = raise (Parse_error msg)

  let peek cur =
    if cur.pos >= String.length cur.text then '\000' else cur.text.[cur.pos]

  let skip_ws cur =
    while
      cur.pos < String.length cur.text
      && (match cur.text.[cur.pos] with
          | ' ' | '\t' | '\n' | '\r' -> true
          | _ -> false)
    do
      cur.pos <- cur.pos + 1
    done

  let expect cur c =
    skip_ws cur;
    if peek cur <> c then
      fail (Printf.sprintf "expected %C at offset %d" c cur.pos)
    else cur.pos <- cur.pos + 1

  let parse_string cur =
    expect cur '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if cur.pos >= String.length cur.text then fail "unterminated string"
      else
        let c = cur.text.[cur.pos] in
        cur.pos <- cur.pos + 1;
        match c with
        | '"' -> Buffer.contents buf
        | '\\' ->
          (if cur.pos >= String.length cur.text then fail "bad escape"
           else
             let e = cur.text.[cur.pos] in
             cur.pos <- cur.pos + 1;
             match e with
             | '"' -> Buffer.add_char buf '"'
             | '\\' -> Buffer.add_char buf '\\'
             | '/' -> Buffer.add_char buf '/'
             | 'n' -> Buffer.add_char buf '\n'
             | 'r' -> Buffer.add_char buf '\r'
             | 't' -> Buffer.add_char buf '\t'
             | 'b' -> Buffer.add_char buf '\b'
             | 'f' -> Buffer.add_char buf '\012'
             | 'u' ->
               if cur.pos + 4 > String.length cur.text then fail "bad \\u"
               else begin
                 let hex = String.sub cur.text cur.pos 4 in
                 cur.pos <- cur.pos + 4;
                 let code =
                   try int_of_string ("0x" ^ hex)
                   with _ -> fail "bad \\u digits"
                 in
                 if code < 0x80 then Buffer.add_char buf (Char.chr code)
                 else
                   (* Non-ASCII escapes are not produced by to_string;
                      decode to UTF-8 for completeness. *)
                   Buffer.add_string buf
                     (if code < 0x800 then
                        let b0 = 0xC0 lor (code lsr 6)
                        and b1 = 0x80 lor (code land 0x3F) in
                        Printf.sprintf "%c%c" (Char.chr b0) (Char.chr b1)
                      else
                        let b0 = 0xE0 lor (code lsr 12)
                        and b1 = 0x80 lor ((code lsr 6) land 0x3F)
                        and b2 = 0x80 lor (code land 0x3F) in
                        Printf.sprintf "%c%c%c" (Char.chr b0) (Char.chr b1)
                          (Char.chr b2))
               end
             | _ -> fail "bad escape");
          go ()
        | c ->
          Buffer.add_char buf c;
          go ()
    in
    go ()

  let parse_scalar cur =
    skip_ws cur;
    match peek cur with
    | '"' -> String (parse_string cur)
    | 't' ->
      if cur.pos + 4 <= String.length cur.text
         && String.sub cur.text cur.pos 4 = "true"
      then begin
        cur.pos <- cur.pos + 4;
        Bool true
      end
      else fail "bad literal"
    | 'f' ->
      if cur.pos + 5 <= String.length cur.text
         && String.sub cur.text cur.pos 5 = "false"
      then begin
        cur.pos <- cur.pos + 5;
        Bool false
      end
      else fail "bad literal"
    | 'n' ->
      if cur.pos + 4 <= String.length cur.text
         && String.sub cur.text cur.pos 4 = "null"
      then begin
        cur.pos <- cur.pos + 4;
        String "null"
      end
      else fail "bad literal"
    | c when c = '-' || (c >= '0' && c <= '9') ->
      let start = cur.pos in
      let is_float = ref false in
      while
        cur.pos < String.length cur.text
        &&
        match cur.text.[cur.pos] with
        | '0' .. '9' | '-' | '+' -> true
        | '.' | 'e' | 'E' ->
          is_float := true;
          true
        | _ -> false
      do
        cur.pos <- cur.pos + 1
      done;
      let tok = String.sub cur.text start (cur.pos - start) in
      if !is_float then
        Float (try float_of_string tok with _ -> fail "bad number")
      else Int (try int_of_string tok with _ -> fail "bad number")
    | _ -> fail (Printf.sprintf "unexpected character at offset %d" cur.pos)

  let of_string line =
    let cur = { text = line; pos = 0 } in
    expect cur '{';
    let members = ref [] in
    skip_ws cur;
    if peek cur <> '}' then begin
      let rec go () =
        skip_ws cur;
        let k = parse_string cur in
        expect cur ':';
        let v = parse_scalar cur in
        members := (k, v) :: !members;
        skip_ws cur;
        if peek cur = ',' then begin
          cur.pos <- cur.pos + 1;
          go ()
        end
      in
      go ()
    end;
    expect cur '}';
    skip_ws cur;
    if cur.pos <> String.length line then fail "trailing garbage";
    let members = List.rev !members in
    let ts =
      match List.assoc_opt "ts" members with
      | Some (Float f) -> f
      | Some (Int i) -> float_of_int i
      | _ -> fail "missing ts"
    in
    let name =
      match List.assoc_opt "event" members with
      | Some (String s) -> s
      | _ -> fail "missing event"
    in
    let fields =
      List.filter (fun (k, _) -> k <> "ts" && k <> "event") members
    in
    { ts; name; fields }
end

let jsonl_sink oc e =
  output_string oc (Json.to_string e);
  output_char oc '\n'

let console_sink ?(oc = stderr) () e =
  let tm = Unix.localtime e.ts in
  let ms = int_of_float ((e.ts -. Float.of_int (int_of_float e.ts)) *. 1000.0) in
  let buf = Buffer.create 96 in
  Buffer.add_string buf
    (Printf.sprintf "%02d:%02d:%02d.%03d %s" tm.Unix.tm_hour tm.Unix.tm_min
       tm.Unix.tm_sec ms e.name);
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf k;
      Buffer.add_char buf '=';
      Buffer.add_string buf
        (match v with
         | Int i -> string_of_int i
         | Float f -> Printf.sprintf "%g" f
         | String s -> s
         | Bool b -> string_of_bool b))
    e.fields;
  Buffer.add_char buf '\n';
  output_string oc (Buffer.contents buf);
  flush oc
