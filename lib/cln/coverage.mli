(** Permutation coverage of a CLN — the blocking vs non-blocking experiment
    of §3.1/§4.1.

    A blocking log₂N network realises only a fraction of the N! permutations;
    the near-non-blocking LOG(N, log₂N−2, 1) realises almost all of them.
    Coverage is measured by enumerating (small N) or sampling (larger N) the
    key space restricted to permutation configurations. *)

type report = {
  spec : Cln.spec;
  distinct_permutations : int;
  total_permutations : int;  (** N! *)
  keys_examined : int;
  exhaustive : bool;
}

(** [measure ?max_keys spec] enumerates routable keys (switch bits only —
    inverters do not affect routing).  If the permutation key space exceeds
    [max_keys] (default 1 lsl 20), a uniform sample of [max_keys] keys is
    used and [exhaustive] is false. *)
val measure : ?max_keys:int -> Cln.spec -> report

val coverage_fraction : report -> float
val pp_report : Format.formatter -> report -> unit

(** [routes_permutation spec perm] — whether some routable key realises
    [perm] (backtracking search over switch-box configurations).
    Single-plane networks only (multi-plane routing reduces to the chosen
    plane anyway). *)
val routes_permutation : Cln.spec -> int array -> bool

(** [route spec ?inverted perm] — a key realising [perm] (output [j] carries
    input [perm.(j)]) with inversion pattern [inverted] (all-false by
    default), or [None] when the network cannot route it.  Backtracking with
    reachability pruning, so exact: [None] means genuinely unroutable.
    @raise Invalid_argument on a malformed permutation or when [inverted]
    needs inverters the spec does not have. *)
val route : Cln.spec -> ?inverted:bool array -> int array -> bool array option

(** [route_verified spec ?inverted perm] is {!route} with a simulation
    cross-check: the routed key is replayed on the compiled standalone
    netlist through the shared circuit view ({!Fl_netlist.View}),
    word-batched random probes confirming every output [j] carries
    input [perm.(j)] (xor its inversion bit).
    @raise Failure when the routed key fails the cross-check (a router or
    netlist-compiler bug, not an unroutable permutation). *)
val route_verified :
  ?probes:int ->
  Cln.spec ->
  ?inverted:bool array ->
  int array ->
  bool array option
