type report = {
  spec : Cln.spec;
  distinct_permutations : int;
  total_permutations : int;
  keys_examined : int;
  exhaustive : bool;
}

let factorial n =
  let rec go acc i = if i > n then acc else go (acc * i) (i + 1) in
  if n > 20 then max_int else go 1 2

let measure ?(max_keys = 1 lsl 20) spec =
  if spec.Cln.planes <> 1 then
    invalid_arg "Coverage.measure: single-plane networks only";
  let boxes = Cln.num_switch_boxes spec in
  let space = if boxes >= 62 then max_int else 1 lsl boxes in
  let exhaustive = space <= max_keys in
  let keys_examined = if exhaustive then space else max_keys in
  let seen = Hashtbl.create 4096 in
  let rng = Random.State.make [| 0x5eed; boxes |] in
  let swaps = Array.make boxes false in
  for trial = 0 to keys_examined - 1 do
    if exhaustive then
      for b = 0 to boxes - 1 do
        swaps.(b) <- trial land (1 lsl b) <> 0
      done
    else
      for b = 0 to boxes - 1 do
        swaps.(b) <- Random.State.bool rng
      done;
    let key = Cln.key_of_swaps spec swaps in
    let action = Cln.decode spec ~key in
    Hashtbl.replace seen (Array.to_list action.Cln.source) ()
  done;
  {
    spec;
    distinct_permutations = Hashtbl.length seen;
    total_permutations = factorial spec.Cln.n;
    keys_examined;
    exhaustive;
  }

let coverage_fraction r =
  float_of_int r.distinct_permutations /. float_of_int r.total_permutations

let pp_report fmt r =
  Format.fprintf fmt "%a: %d/%d permutations (%.1f%%)%s" Cln.pp_spec r.spec
    r.distinct_permutations r.total_permutations
    (100.0 *. coverage_fraction r)
    (if r.exhaustive then ""
     else Printf.sprintf " [sampled %d keys]" r.keys_examined)

(* Backtracking router with reachability pruning.  Works on the swap-only
   configuration space (box = pass | exchange), which is what lock
   generation uses.  On success the per-box swap choices are recorded in
   [swaps] (traversal order, matching {!Cln.key_of_swaps}). *)
let search_permutation spec perm swaps =
  if spec.Cln.planes <> 1 then
    invalid_arg "Coverage: routing analysis supports single-plane networks only";
  let topo = Cln.topology spec in
  let n = spec.Cln.n in
  if n > 62 then invalid_arg "Coverage.routes_permutation: n too large";
  if Array.length perm <> n then invalid_arg "Coverage.routes_permutation: bad permutation";
  (* target.(i) = output position that must receive input i. *)
  let target = Array.make n (-1) in
  Array.iteri
    (fun j src ->
      if src < 0 || src >= n || target.(src) >= 0 then
        invalid_arg "Coverage.routes_permutation: not a permutation";
      target.(src) <- j)
    perm;
  let layers = Array.of_list topo.Topology.layers in
  let num_layers = Array.length layers in
  (* reach.(l).(p): bitmask of final outputs reachable from position p just
     before layer l. reach.(num_layers) is the identity. *)
  let reach = Array.make_matrix (num_layers + 1) n 0 in
  for p = 0 to n - 1 do
    reach.(num_layers).(p) <- 1 lsl p
  done;
  for l = num_layers - 1 downto 0 do
    (match layers.(l) with
     | Topology.Route r ->
       (* after: value at i came from before-position r.(i) *)
       for i = 0 to n - 1 do
         reach.(l).(r.(i)) <- reach.(l).(r.(i)) lor reach.(l + 1).(i)
       done
     | Topology.Switch ->
       for box = 0 to (n / 2) - 1 do
         let m = reach.(l + 1).(2 * box) lor reach.(l + 1).((2 * box) + 1) in
         reach.(l).(2 * box) <- m;
         reach.(l).((2 * box) + 1) <- m
       done)
  done;
  let ok_at l p src = reach.(l).(p) land (1 lsl target.(src)) <> 0 in
  (* Ordinal of each Switch layer (for the swap-vector layout). *)
  let switch_ordinal = Array.make num_layers 0 in
  let counter = ref 0 in
  Array.iteri
    (fun l layer ->
      match layer with
      | Topology.Switch ->
        switch_ordinal.(l) <- !counter;
        incr counter
      | Topology.Route _ -> ())
    layers;
  (* DFS over layers; state = array of input indices at current positions. *)
  let rec go l state =
    if l = num_layers then Array.for_all2 (fun p src -> target.(src) = p) (Array.init n (fun i -> i)) state
    else
      match layers.(l) with
      | Topology.Route r ->
        let next = Array.map (fun srcpos -> state.(srcpos)) r in
        let feasible = ref true in
        Array.iteri (fun p src -> if not (ok_at (l + 1) p src) then feasible := false) next;
        !feasible && go (l + 1) next
      | Topology.Switch ->
        (* Choose pass/exchange per box with pruning, box by box. *)
        let next = Array.copy state in
        let base = switch_ordinal.(l) * (n / 2) in
        let rec boxes b =
          if b = n / 2 then go (l + 1) next
          else begin
            let a = state.(2 * b) and c = state.((2 * b) + 1) in
            let try_cfg x y swap =
              if ok_at (l + 1) (2 * b) x && ok_at (l + 1) ((2 * b) + 1) y then begin
                next.(2 * b) <- x;
                next.((2 * b) + 1) <- y;
                swaps.(base + b) <- swap;
                boxes (b + 1)
              end
              else false
            in
            try_cfg a c false || try_cfg c a true
          end
        in
        boxes 0
  in
  go 0 (Array.init n (fun i -> i))

let routes_permutation spec perm =
  let swaps = Array.make (Cln.num_switch_boxes spec) false in
  search_permutation spec perm swaps

let route spec ?inverted perm =
  let swaps = Array.make (Cln.num_switch_boxes spec) false in
  if not (search_permutation spec perm swaps) then None
  else begin
    let key = Cln.key_of_swaps spec swaps in
    (match inverted with
     | None -> ()
     | Some pattern -> Cln.set_inversions spec key ~inverted:pattern);
    Some key
  end

let route_verified ?(probes = 4) spec ?inverted perm =
  match route spec ?inverted perm with
  | None -> None
  | Some key ->
    let module View = Fl_netlist.View in
    let view = View.of_circuit (Cln.standalone spec) in
    let n = spec.Cln.n in
    let packed_key = View.broadcast key in
    let inv_word j =
      match inverted with
      | Some pattern when pattern.(j) -> -1
      | _ -> 0
    in
    let rng = Random.State.make [| 0xc14; n |] in
    for _ = 1 to probes do
      let inputs = Fl_netlist.Sim_word.random_words rng ~width:n in
      let out = View.eval_packed view ~inputs ~keys:packed_key in
      Array.iteri
        (fun j w ->
          if w <> inputs.(perm.(j)) lxor inv_word j then
            failwith "Coverage.route_verified: routed key failed simulation \
                      cross-check")
        out
    done;
    Some key
