module Gate = Fl_netlist.Gate
module Circuit = Fl_netlist.Circuit
module View = Fl_netlist.View
module Locked = Fl_locking.Locked

type result = {
  stripped : Circuit.t;
  removed_flip_gates : int;
  bypassed_mux_islands : int;
  equivalent : bool;
}

let run ?(vectors = 256) ?(seed = 11) locked =
  let c = locked.Locked.locked in
  let tainted = Sps.key_tainted c in
  let b = Circuit.Builder.create ~name:(c.Circuit.name ^ "-stripped") () in
  let map = Circuit.copy_nodes_into b c in
  let flips = ref 0 in
  let bypasses = ref 0 in
  for id = 0 to Circuit.num_nodes c - 1 do
    let nd = Circuit.node c id in
    match nd.Circuit.kind, nd.Circuit.fanins with
    | (Gate.Xor | Gate.Xnor), [| x; y |] ->
      (* Flip-gate pattern: keep the key-free operand; the key-dependent one
         is presumed to be a point-function flip that is 0 under the correct
         key (XNOR keeps the complement). *)
      let clean =
        if tainted.(x) && not tainted.(y) then Some y
        else if tainted.(y) && not tainted.(x) then Some x
        else None
      in
      (match clean with
       | Some keep ->
         incr flips;
         let kind = if nd.Circuit.kind = Gate.Xor then Gate.Buf else Gate.Not in
         Circuit.Builder.replace b map.(id) kind [| map.(keep) |]
       | None -> ())
    | Gate.Mux, [| sel; a; _ |] when tainted.(sel) ->
      (* Key-routed MUX: identity bypass (the select = 0 branch). *)
      incr bypasses;
      Circuit.Builder.replace b map.(id) Gate.Buf [| map.(a) |]
    | _, _ -> ()
  done;
  Array.iter (fun (port, id) -> Circuit.Builder.output b port map.(id)) c.Circuit.outputs;
  let stripped = Circuit.of_builder b in
  (* Equivalence against the oracle: remaining key inputs are pinned to 0.
     Probing is the shared word-batched helper on the compiled views. *)
  let keys = Array.make (Circuit.num_keys stripped) false in
  let equivalent =
    View.agree_on_probes ~exhaustive_limit:12 ~vectors ~seed
      (View.of_circuit stripped) ~keys_a:keys
      (View.of_circuit locked.Locked.oracle) ~keys_b:[||]
  in
  { stripped; removed_flip_gates = !flips; bypassed_mux_islands = !bypasses; equivalent }
