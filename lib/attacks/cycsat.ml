module Gate = Fl_netlist.Gate
module Circuit = Fl_netlist.Circuit
module View = Fl_netlist.View
module Formula = Fl_cnf.Formula

(* Feedback (back) edges found by an iterative DFS over the signal-flow
   graph; removing them leaves a DAG.  Only used to pick the set of cycle
   heads and to report preprocessing effort. *)
let back_edges c =
  let n = Circuit.num_nodes c in
  let color = Array.make n 0 in
  (* 0 white, 1 gray, 2 black; iterative DFS along fanins. *)
  let result = ref [] in
  let visit root =
    let stack = ref [ root, ref 0 ] in
    color.(root) <- 1;
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | (u, child) :: rest ->
        let fanins = (Circuit.node c u).Circuit.fanins in
        if !child < Array.length fanins then begin
          let slot = !child in
          let f = fanins.(slot) in
          incr child;
          match color.(f) with
          | 0 ->
            color.(f) <- 1;
            stack := (f, ref 0) :: !stack
          | 1 -> result := (f, u, slot) :: !result
          | _ -> ()
        end
        else begin
          color.(u) <- 2;
          stack := rest
        end
    done
  in
  for u = 0 to n - 1 do
    if color.(u) = 0 then visit u
  done;
  !result

let num_feedback_edges c = List.length (back_edges c)

let key_index_table c =
  let tbl = Hashtbl.create 16 in
  Array.iteri (fun i id -> Hashtbl.add tbl id i) c.Circuit.keys;
  tbl

(* The "no structural cycle" constraint.

   For every cycle head [y] (heads of DFS back edges, deduplicated), fresh
   variables r_t := "there is a key-unblocked structural path of length >= 1
   from y to t" are introduced for the nodes of y's SCC, with monotone
   implication clauses along every intra-SCC edge:

     seed:  for y's out-edge to t:   blocked(edge) \/ r_t
     step:  for any edge src -> t:   ~r_src \/ blocked(edge) \/ r_t
     goal:  ~r_y

   An edge is blocked only when it enters a MUX data slot whose select is a
   key input (that is the only key-controlled routing in locked netlists).
   The encoding is sound and complete: a model exists for exactly the keys
   under which every structural cycle is cut — including cycles through
   several back edges, the case the classic per-feedback-wire CycSAT-I
   conditions miss. *)
let no_cycle_condition c =
  let backs = back_edges c in
  let key_index = key_index_table c in
  let heads = List.sort_uniq compare (List.map (fun (_, u, _) -> u) backs) in
  (* Through the shared view so repeated condition builds (and anything
     else analysing this circuit) reuse one SCC computation. *)
  let scc = View.scc (View.of_circuit c) in
  let fan_out_slots =
    (* node -> (consumer, slot) list, intra-SCC only *)
    let n = Circuit.num_nodes c in
    let table = Array.make n [] in
    for u = 0 to n - 1 do
      Array.iteri
        (fun slot f ->
          if scc.(f) = scc.(u) then table.(f) <- (u, slot) :: table.(f))
        (Circuit.node c u).Circuit.fanins
    done;
    table
  in
  fun formula key_vars ->
    if Array.length key_vars <> Circuit.num_keys c then
      invalid_arg "Cycsat.no_cycle_condition: key vector length mismatch";
    (* blocked condition of the edge entering [u] at [slot]:
       `Never / `Always (never propagates) / `Key literal. *)
    let blocked u slot =
      let nd = Circuit.node c u in
      match nd.Circuit.kind with
      | Gate.Mux when slot = 1 || slot = 2 ->
        (match Hashtbl.find_opt key_index nd.Circuit.fanins.(0) with
         | Some ki ->
           (* slot 1 propagates when select = 0, so key = 1 blocks it. *)
           `Key (if slot = 1 then key_vars.(ki) else -key_vars.(ki))
         | None -> `Never)
      | Gate.Mux
      | Gate.Input | Gate.Key_input | Gate.Const _ | Gate.Buf | Gate.Not
      | Gate.And | Gate.Nand | Gate.Or | Gate.Nor | Gate.Xor | Gate.Xnor
      | Gate.Lut _ ->
        `Never
    in
    List.iter
      (fun y ->
        let members =
          let acc = ref [] in
          for t = 0 to Circuit.num_nodes c - 1 do
            if scc.(t) = scc.(y) then acc := t :: !acc
          done;
          !acc
        in
        match members with
        | [ _ ] when not (List.exists (fun (f, u, _) -> f = y && u = y) backs) ->
          (* Trivial SCC without a self-loop: no cycle through y. *)
          ()
        | _ ->
          let var = Hashtbl.create 64 in
          List.iter (fun t -> Hashtbl.add var t (Formula.fresh_var formula)) members;
          let r t = Hashtbl.find var t in
          List.iter
            (fun src ->
              List.iter
                (fun (consumer, slot) ->
                  let head =
                    match blocked consumer slot with
                    | `Never -> [ r consumer ]
                    | `Key lit -> [ lit; r consumer ]
                  in
                  (* Path extension from src; y itself seeds paths of
                     length 1. *)
                  if src = y then Formula.add_clause formula head;
                  Formula.add_clause formula (-r src :: head))
                fan_out_slots.(src))
            members;
          Formula.add_clause formula [ -r y ])
      heads

let run ?base ?timeout ?max_conflicts ?max_iterations ?progress ?preprocess
    ?inprocess ?inprocess_every ?inprocess_min_conflicts ?portfolio locked =
  match base with
  | Some _ ->
    (* A prepared base already carries the NC emitter it was built with
       (Session re-applies it to the key-recovery formula); recomputing
       the cycle analysis here would waste the cache hit. *)
    Sat_attack.run ?base ?timeout ?max_conflicts ?max_iterations ?progress
      ~label:"cycsat" ?inprocess ?inprocess_every ?inprocess_min_conflicts
      ?portfolio locked
  | None ->
    let emitter = no_cycle_condition locked.Fl_locking.Locked.locked in
    Sat_attack.run ?timeout ?max_conflicts ?max_iterations ?progress
      ~extra_key_constraint:emitter ~label:"cycsat" ?preprocess ?inprocess
      ?inprocess_every ?inprocess_min_conflicts ?portfolio locked
