(** CycSAT (Zhou, Shamsi et al., ICCAD'17) — the cycle-aware SAT attack the
    paper uses for Table 4.

    Preprocessing computes, for every feedback edge, a "no structural cycle"
    (NC) condition over the key variables: somewhere along each potential
    cycle a key-selected MUX must deselect the cycle edge.  The conditions
    are conjoined onto both miter key copies and onto the key-recovery
    formula, after which the ordinary DIP loop runs.  This is CycSAT-I: NC
    may over-constrain (it rejects keys with structural-but-functionally-open
    cycles), which is the attack's documented incompleteness. *)

(** [no_cycle_condition c] analyses the locked circuit and returns an
    emitter that asserts the NC conditions over a key-variable vector
    (ordered like [c.keys]) inside a formula.  Circuits whose cycles cannot
    be blocked by any key make the formula unsatisfiable. *)
val no_cycle_condition :
  Fl_netlist.Circuit.t -> Fl_cnf.Formula.t -> int array -> unit

(** Number of feedback edges the preprocessing breaks (0 for acyclic
    circuits — then {!run} degenerates to the plain SAT attack). *)
val num_feedback_edges : Fl_netlist.Circuit.t -> int

(** [run ?base ?timeout ?max_conflicts ?max_iterations ?progress
    ?preprocess ?inprocess ?inprocess_every ?inprocess_min_conflicts
    locked] — CycSAT attack; parameters as in {!Sat_attack.run}.  [base]
    must have been prepared with {!no_cycle_condition} as its extra key
    constraint; when given, the cycle analysis is not recomputed (the
    base carries the emitter) and [preprocess] is superseded by the
    base's setting. *)
val run :
  ?base:Session.Base.t ->
  ?timeout:float ->
  ?max_conflicts:int ->
  ?max_iterations:int ->
  ?progress:Sat_attack.progress ->
  ?preprocess:bool ->
  ?inprocess:bool ->
  ?inprocess_every:int ->
  ?inprocess_min_conflicts:int ->
  ?portfolio:Fl_sat.Portfolio.spec ->
  Fl_locking.Locked.t ->
  Sat_attack.result
