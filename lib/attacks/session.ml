module Circuit = Fl_netlist.Circuit
module View = Fl_netlist.View
module Formula = Fl_cnf.Formula
module Tseytin = Fl_cnf.Tseytin
module Miter = Fl_cnf.Miter
module Cdcl = Fl_sat.Cdcl
module Solver_intf = Fl_sat.Solver_intf
module Portfolio = Fl_sat.Portfolio
module Preprocess = Fl_sat.Preprocess
module Inprocess = Fl_sat.Inprocess
module Locked = Fl_locking.Locked

(* DIP-source split: how many DIPs came from the word-level screen vs a
   miter solve, and how many screen passes ran. *)
let c_dip_screened = Fl_obs.Counter.make "session.dip.screened"
let c_dip_solver = Fl_obs.Counter.make "session.dip.solver"
let c_screen_passes = Fl_obs.Counter.make "session.screen.passes"
let c_base_prepared = Fl_obs.Counter.make "session.base.prepared"
let c_base_reused = Fl_obs.Counter.make "session.base.reused"

(* A formula paired with an incremental solver: [sync] feeds the solver only
   the clauses appended since the last call, so the DIP loop stays linear in
   the number of iterations instead of rebuilding quadratically.  The solver
   backend is existentially packed ({!Solver_intf.S}), so a session can run
   on any backend while the attack loops stay first-order code. *)
type 's tracked_s = {
  solver : 's;
  backend : (module Solver_intf.S with type t = 's);
  formula : Formula.t;
  mutable loaded : int;  (* clauses already in the solver *)
}

type tracked = Tracked : 's tracked_s -> tracked

let tracked_of (backend : (module Solver_intf.S)) formula =
  let (module B) = backend in
  Tracked
    {
      solver = B.create ();
      backend = (module B : Solver_intf.S with type t = B.t);
      formula;
      loaded = 0;
    }

let sync = function
  | Tracked tr ->
    let (module B) = tr.backend in
    B.ensure_vars tr.solver (Formula.num_vars tr.formula);
    let clauses = Formula.clauses tr.formula in
    for i = tr.loaded to Array.length clauses - 1 do
      B.add_clause_a tr.solver clauses.(i)
    done;
    tr.loaded <- Array.length clauses

let tracked_stats = function
  | Tracked tr ->
    let (module B) = tr.backend in
    B.stats tr.solver

let tracked_solve t ~budget =
  match t with
  | Tracked tr ->
    let (module B) = tr.backend in
    B.solve ~budget tr.solver

let tracked_model = function
  | Tracked tr ->
    let (module B) = tr.backend in
    B.model tr.solver

type t = {
  locked : Locked.t;
  mutable miter : Miter.t;
      (* when preprocessing/inprocessing ran, [miter.formula] is the
         reduced formula (original variable numbering preserved) *)
  pre : Preprocess.t option;
  mutable miter_tracked : tracked;
  key_tracked : tracked;
  key_vars : int array;
  backend : (module Solver_intf.S);
  miter_backend : (module Solver_intf.S);
      (* what the miter solver is rebuilt from after inprocessing: the
         portfolio backend when one was requested, [backend] otherwise
         (the key solver always runs on the plain backend — its solves
         are many and cheap, so racing them would only burn domains) *)
  (* Between-iterations inprocessing: period in DIP iterations (None =
     disabled), the iteration count at the last run, the composed
     model-reconstruction chain (reduced-formula model -> original-miter
     model, one layer per simplification that ran), the per-run stats log
     and a reusable probe scratch. *)
  inprocess_every : int option;
  mutable inprocess_period : int;
      (* current adaptive period: starts at [inprocess_every], doubles
         (capped) after a low-yield run, resets after a productive one *)
  mutable last_inprocess : int;
  inprocess_min_conflicts : int;
      (* conflict-interval gate: a run only fires once the solvers have
         accrued this many conflicts since the previous run, so easy
         attacks (few conflicts per DIP) never pay for a rebuild *)
  mutable last_inprocess_conflicts : int;
  mutable recon : bool array -> bool array;
  mutable inprocess_log : Inprocess.stats list;
  scratch : Inprocess.scratch;
  deadline : float;
  conflict_budget : int option;
      (* total solver conflicts the attack may spend; deterministic
         alternative to the wall-clock deadline for parallel sweeps *)
  start : float;
  label : string;
  mutable iteration_count : int;
  mutable stats : Cdcl.stats;
  (* Word-batched DIP screening state: the locked circuit's compiled view,
     a small pool of key candidates (miter-model keys, all consistent with
     every observation added so far) and a private deterministic RNG for
     the candidate input vectors. *)
  view : View.t;
  mutable key_pool : bool array list;
  mutable last_observed : bool array option;
      (* most recent observed input vector; screening seeds half its
         candidate lanes from perturbations of it *)
  screen_rng : Random.State.t;
}

(* Fields of one solver-stat delta, shared by the per-iteration attack
   records and the periodic cdcl.progress records. *)
let stats_fields (d : Cdcl.stats) =
  [
    "decisions", Fl_obs.Int d.Cdcl.decisions;
    "propagations", Fl_obs.Int d.Cdcl.propagations;
    "conflicts", Fl_obs.Int d.Cdcl.conflicts;
    "restarts", Fl_obs.Int d.Cdcl.restarts;
    "learned_clauses", Fl_obs.Int d.Cdcl.learned_clauses;
    "learned_literals", Fl_obs.Int d.Cdcl.learned_literals;
    "reductions", Fl_obs.Int d.Cdcl.reductions;
    "max_decision_level", Fl_obs.Int d.Cdcl.max_decision_level;
  ]

(* Every N conflicts each session solver reports its stat deltas, so
   long solver calls (the interesting ones) are visible from a trace even
   before the iteration record lands. *)
let progress_conflict_period = 2048

let arm_progress label role = function
  | Tracked tr ->
    let (module B) = tr.backend in
    B.set_progress tr.solver ~every:progress_conflict_period (fun delta ->
        if Fl_obs.enabled () then
          Fl_obs.emit "cdcl.progress"
            ~fields:
              (("attack", Fl_obs.String label)
               :: ("solver", Fl_obs.String role)
               :: stats_fields delta))

(* The preprocessing frozen set: every variable later clauses may mention.
   DIP constraints instantiate fresh circuit copies (fresh variables only)
   and assert over the two key-variable copies; key-condition emitters
   (CycSAT) touch the key copies; Appsat pins inputs of fresh copies.  The
   outputs are frozen too so callers may constrain them directly. *)
let frozen_vars (m : Miter.t) =
  Array.concat
    [ m.Miter.inputs; m.Miter.keys_a; m.Miter.keys_b;
      m.Miter.outputs_a; m.Miter.outputs_b ]

(* A prepared base: the locked circuit's miter with any extra key
   constraint asserted and the one-shot preprocessing already run, frozen
   into an immutable snapshot that any number of sessions can start from.
   Sessions mutate their miter formula (observation constraints append,
   inprocessing replaces it), so [create] hands each one a private
   {!Formula.copy} of the base formula — Tseytin encoding and SatELite
   never re-run.  [Preprocess.t] reconstruction is a pure replay of the
   elimination stack, safe to share across sessions and domains; the
   formula copy is the only per-session cost. *)
module Base = struct
  type t = {
    b_circuit : Circuit.t;
    b_miter : Miter.t;  (* formula is the reduced base; never mutated *)
    b_pre : Preprocess.t option;
    b_extra : (Formula.t -> int array -> unit) option;
  }

  let prepare ?extra_key_constraint ?(label = "base") ?(preprocess = true)
      circuit =
    let miter0 =
      Fl_obs.with_span "session.build_miter" (fun () -> Miter.build circuit)
    in
    (match extra_key_constraint with
     | Some add ->
       add miter0.Miter.formula miter0.Miter.keys_a;
       add miter0.Miter.formula miter0.Miter.keys_b
     | None -> ());
    (* See [create]: an Unsat preprocessing verdict would mean the miter
       itself is contradictory — fall back to the unpreprocessed base. *)
    let pre, miter =
      if not preprocess then (None, miter0)
      else begin
        let p =
          Fl_obs.with_span "session.preprocess" (fun () ->
              Preprocess.run ~label ~frozen:(frozen_vars miter0)
                miter0.Miter.formula)
        in
        if Preprocess.is_unsat p then (None, miter0)
        else (Some p, { miter0 with Miter.formula = Preprocess.formula p })
      end
    in
    Fl_obs.Counter.incr c_base_prepared;
    { b_circuit = circuit; b_miter = miter; b_pre = pre;
      b_extra = extra_key_constraint }

  let circuit b = b.b_circuit
  let clause_var_ratio b = Formula.ratio b.b_miter.Miter.formula
  let preprocess_stats b = Option.map Preprocess.stats b.b_pre
end

(* Cube-variable ranking for the portfolio's cube-and-conquer mode: key
   inputs ordered by the size of their transitive fanout cone (BFS over
   the view's fanout lists — the keys whose influence reaches the most
   downstream logic split the search space most evenly), mapped to their
   CNF variables in the miter's A key copy. *)
let ranked_key_vars view circuit (miter : Miter.t) =
  let fanouts = View.fanouts view in
  let n = Array.length fanouts in
  let reach_of node =
    let seen = Array.make n false in
    let q = Queue.create () in
    seen.(node) <- true;
    Queue.add node q;
    let count = ref 0 in
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      Array.iter
        (fun w ->
          if not seen.(w) then begin
            seen.(w) <- true;
            incr count;
            Queue.add w q
          end)
        fanouts.(u)
    done;
    !count
  in
  let ranked =
    Array.mapi (fun i node -> i, reach_of node) circuit.Circuit.keys
  in
  Array.sort
    (fun (ia, ra) (ib, rb) ->
      match compare rb ra with 0 -> compare ia ib | c -> c)
    ranked;
  Array.map (fun (i, _) -> miter.Miter.keys_a.(i)) ranked

let create ?base ?extra_key_constraint ?(label = "sat") ?max_conflicts
    ?(preprocess = true) ?(inprocess = false) ?(inprocess_every = 8)
    ?(inprocess_min_conflicts = 2048) ?(backend = Solver_intf.cdcl) ?portfolio
    ~deadline locked =
  let circuit = locked.Locked.locked in
  (* With a prepared base, the miter (extra constraint included) and the
     preprocessing verdict come from the snapshot; the session's private
     formula is a copy so observation constraints and inprocessing never
     touch the shared base.  The [extra_key_constraint] and [preprocess]
     arguments are superseded by what the base was prepared with. *)
  let extra_key_constraint =
    match base with
    | Some b -> b.Base.b_extra
    | None -> extra_key_constraint
  in
  let pre, miter =
    match base with
    | Some b ->
      if not (b.Base.b_circuit == circuit) then
        invalid_arg
          "Fl_attacks.Session.create: base was prepared for a different \
           circuit";
      Fl_obs.Counter.incr c_base_reused;
      ( b.Base.b_pre,
        { b.Base.b_miter with
          Miter.formula = Formula.copy b.Base.b_miter.Miter.formula } )
    | None ->
      let miter0 =
        Fl_obs.with_span "session.build_miter" (fun () -> Miter.build circuit)
      in
      (match extra_key_constraint with
       | Some add ->
         add miter0.Miter.formula miter0.Miter.keys_a;
         add miter0.Miter.formula miter0.Miter.keys_b
       | None -> ());
      (* Preprocess the base miter (including any extra key constraint,
         which the simplifier may exploit) with the interface variables
         frozen.  The key-recovery formula is not preprocessed: it grows by
         whole circuit copies per observation, so a one-shot pass would be
         stale after the first iteration.  An Unsat verdict here would mean
         the miter itself is contradictory — defensively fall back to the
         unpreprocessed path. *)
      if not preprocess then (None, miter0)
      else begin
        let p =
          Fl_obs.with_span "session.preprocess" (fun () ->
              Preprocess.run ~label ~frozen:(frozen_vars miter0)
                miter0.Miter.formula)
        in
        if Preprocess.is_unsat p then (None, miter0)
        else (Some p, { miter0 with Miter.formula = Preprocess.formula p })
      end
  in
  let key_formula = Formula.create () in
  let key_vars = Formula.fresh_vars key_formula (Circuit.num_keys circuit) in
  (match extra_key_constraint with
   | Some add -> add key_formula key_vars
   | None -> ());
  let view = View.of_circuit circuit in
  (* The portfolio (when requested) fronts the miter solver only; an
     empty cube_vars is filled with the fanout-ranked key variables so
     cube-and-conquer splits where the paper's CLN reconverges most. *)
  let miter_backend =
    match portfolio with
    | None -> backend
    | Some spec ->
      let spec =
        if
          spec.Portfolio.cube_depth > 0
          && Array.length spec.Portfolio.cube_vars = 0
        then { spec with Portfolio.cube_vars = ranked_key_vars view circuit miter }
        else spec
      in
      Portfolio.backend spec
  in
  let miter_tracked = tracked_of miter_backend miter.Miter.formula in
  let key_tracked = tracked_of backend key_formula in
  arm_progress label "miter" miter_tracked;
  arm_progress label "key" key_tracked;
  {
    locked;
    miter;
    pre;
    miter_tracked;
    key_tracked;
    key_vars;
    backend;
    miter_backend;
    inprocess_every =
      (if inprocess then Some (max 1 inprocess_every) else None);
    inprocess_period = max 1 inprocess_every;
    last_inprocess = 0;
    inprocess_min_conflicts = max 0 inprocess_min_conflicts;
    last_inprocess_conflicts = 0;
    recon =
      (match pre with
       | None -> fun m -> m
       | Some p -> Preprocess.reconstruct p);
    inprocess_log = [];
    scratch = Inprocess.scratch ();
    deadline;
    conflict_budget = max_conflicts;
    start = Unix.gettimeofday ();
    label;
    iteration_count = 0;
    stats = Cdcl.zero_stats;
    view;
    key_pool = [];
    last_observed = None;
    screen_rng =
      Random.State.make
        [| 0x5c3ee9; Circuit.num_inputs circuit; Circuit.num_keys circuit |];
  }

let elapsed s = Unix.gettimeofday () -. s.start

let conflicts_left s =
  match s.conflict_budget with
  | None -> None
  | Some m -> Some (m - s.stats.Cdcl.conflicts)

let out_of_time s =
  Unix.gettimeofday () > s.deadline
  || match conflicts_left s with Some left -> left <= 0 | None -> false

let budget s =
  let b = Cdcl.budget_seconds (s.deadline -. Unix.gettimeofday ()) in
  match conflicts_left s with
  | None -> b
  | Some left -> { b with Cdcl.max_conflicts = max 1 left }

(* One structured record per miter solve.  A Sat outcome is an attack
   iteration ("attack.iteration"); the final Unsat/Unknown solve is recorded
   too ("attack.exhausted" / "attack.timeout") so that summing the deltas of
   every record reproduces {!solver_stats} exactly. *)
let emit_record s name ?dip ?(screened = false) delta =
  if Fl_obs.enabled () then begin
    let f = s.miter.Miter.formula in
    let fields =
      ("attack", Fl_obs.String s.label)
      :: ("scheme", Fl_obs.String s.locked.Locked.scheme)
      :: ("iter", Fl_obs.Int s.iteration_count)
      :: ("clauses", Fl_obs.Int (Formula.num_clauses f))
      :: ("vars", Fl_obs.Int (Formula.num_vars f))
      :: ("clause_var_ratio", Fl_obs.Float (Formula.ratio f))
      :: ("elapsed_s", Fl_obs.Float (elapsed s))
      :: stats_fields delta
    in
    let fields =
      if screened then fields @ [ "screened", Fl_obs.Bool true ] else fields
    in
    let fields =
      match dip with
      | None -> fields
      | Some bits ->
        fields
        @ [
            ( "dip",
              Fl_obs.String
                (String.init (Array.length bits) (fun i ->
                     if bits.(i) then '1' else '0')) );
          ]
    in
    Fl_obs.emit name ~fields
  end

(* ------------------------------------------------------------------ *)
(* Word-batched DIP screening                                          *)
(* ------------------------------------------------------------------ *)

(* The miter's Sat models hand us two concrete keys per iteration that are
   consistent with every observation added so far (the I/O constraints are
   asserted over both key copies).  Any input on which two such keys make
   the locked circuit disagree is itself a satisfying miter assignment —
   a genuine DIP — so before paying for a solver call we sweep [View.lanes]
   random candidate vectors per pass through the word evaluator and look
   for a disagreeing, fully-settled lane.  Each screened DIP's oracle
   observation then eliminates at least one pool key (the two witnesses
   disagree on it, the oracle fixes the truth), so at most [max_pool_keys]
   consecutive screened iterations can occur before the solver runs:
   termination arguments are unchanged. *)

let max_pool_keys = 6
let screen_passes_per_call = 4

(* 63 random bits; [Random.State.bits] yields 30 per call. *)
let random_word rng =
  Random.State.bits rng
  lor (Random.State.bits rng lsl 30)
  lor (Random.State.bits rng lsl 60)

(* A pool key stays only while the locked circuit under it settles to the
   observed oracle outputs — i.e. while it remains a witness consistent
   with the whole observation set. *)
let key_consistent s ~inputs ~outputs key =
  match View.eval s.view ~inputs ~keys:key with
  | outs -> outs = outputs
  | exception View.Unresolved _ -> false

let add_pool_key s key =
  if
    List.length s.key_pool < max_pool_keys
    && not (List.exists (fun k -> k = key) s.key_pool)
  then s.key_pool <- s.key_pool @ [ key ]

let lowest_bit w =
  let rec go w i = if w land 1 = 1 then i else go (w lsr 1) (i + 1) in
  go w 0

let screen_dip s =
  match s.key_pool with
  | [] | [ _ ] -> None
  | pool ->
    let n = Circuit.num_inputs s.locked.Locked.locked in
    let rec pass remaining =
      if remaining = 0 then None
      else begin
        Fl_obs.Counter.incr c_screen_passes;
        (* Alternate pass flavours: uniform-random lanes, and sparse
           perturbations of the last observed input — two surviving pool
           keys agree on every observation, so where they still differ is
           usually near one, not at a uniformly random point. *)
        let inputs =
          match s.last_observed with
          | Some base when remaining mod 2 = 0 ->
            Array.init n (fun j ->
                let noise =
                  random_word s.screen_rng
                  land random_word s.screen_rng
                  land random_word s.screen_rng
                in
                (if base.(j) then -1 else 0) lxor noise)
          | _ -> Array.init n (fun _ -> random_word s.screen_rng)
        in
        let words =
          List.map
            (fun k -> View.eval_words s.view ~inputs ~keys:(View.broadcast k))
            pool
        in
        (* First pair of pool keys with a settled, differing output lane. *)
        let rec pairs = function
          | [] | [ _ ] -> pass (remaining - 1)
          | wa :: rest ->
            let rec against = function
              | [] -> pairs rest
              | wb :: more ->
                let diff = ref 0 in
                Array.iteri
                  (fun i (a : View.word) ->
                    let b : View.word = wb.(i) in
                    diff :=
                      !diff
                      lor (a.View.defined land b.View.defined
                           land (a.View.value lxor b.View.value)))
                  wa;
                if !diff = 0 then against more
                else
                  let l = lowest_bit !diff in
                  Some (Array.init n (fun j -> inputs.(j) land (1 lsl l) <> 0))
            in
            against rest
        in
        pairs words
      end
    in
    Fl_obs.with_span "session.screen" (fun () -> pass screen_passes_per_call)

(* Between-iterations inprocessing.  Every [inprocess_every] DIP
   iterations the miter formula — base clauses plus the incremental
   observation tail — is re-simplified (probing, SCC collapsing,
   XOR/Gauss, subsumption, bounded elimination) with the interface
   variables frozen, and the miter solver is rebuilt from the reduced
   formula.  Learnt clauses of the retired solver are replayed through
   {!Inprocess.map_clause}: each is implied by the formula it was learnt
   from, hence sound over the reduced (equisatisfiable, reconstruction
   only touches removed variables) formula when its image survives the
   substitution/unit maps.  Model reconstruction chains: the new layer
   runs first, then the layers of earlier runs, then the one-shot
   preprocessing layer.  An Unsat verdict keeps the current solver — the
   next solve returns Unsat itself, taking the normal `Exhausted exit.

   The period adapts: a run that removes under ~2% of the clauses and
   derives no units or equivalences was overhead, so the next one waits
   twice as long (capped at 16x the base period); a productive run
   resets the period.  On top of the iteration period, a run only fires
   once the session solvers have accrued [inprocess_min_conflicts]
   conflicts since the previous run (the schedule conflict-driven
   solvers use): an attack the solver finds easy — DIPs falling out in
   a handful of conflicts — never pays for a rebuild it cannot amortise,
   while a thrashing miter crosses the gate every few iterations and is
   re-simplified on the dense base schedule.  Both gates are functions
   of solver state only, so the schedule is machine-independent. *)
let inprocess_productive (st : Inprocess.stats) =
  let removed = st.Inprocess.clauses_before - st.Inprocess.clauses_after in
  removed * 50 >= st.Inprocess.clauses_before
  || st.Inprocess.units > 0
  || st.Inprocess.equiv_collapsed > 0

let maybe_inprocess s =
  match s.inprocess_every with
  | None -> ()
  | Some every ->
    if
      s.iteration_count - s.last_inprocess >= s.inprocess_period
      && s.iteration_count > 0
      && s.stats.Cdcl.conflicts - s.last_inprocess_conflicts
         >= s.inprocess_min_conflicts
      && not (out_of_time s)
    then begin
      s.last_inprocess <- s.iteration_count;
      s.last_inprocess_conflicts <- s.stats.Cdcl.conflicts;
      let ip =
        Fl_obs.with_span "session.inprocess" (fun () ->
            Inprocess.run ~label:s.label ~scratch:s.scratch
              ~frozen:(frozen_vars s.miter) s.miter.Miter.formula)
      in
      let st = Inprocess.stats ip in
      s.inprocess_period <-
        (if inprocess_productive st then every
         else min (16 * every) (2 * s.inprocess_period));
      s.inprocess_log <- st :: s.inprocess_log;
      if not (Inprocess.is_unsat ip) then begin
        let reduced = Inprocess.formula ip in
        let nt = tracked_of s.miter_backend reduced in
        sync nt;
        (match nt, s.miter_tracked with
         | Tracked ntr, Tracked otr ->
           let (module NB) = ntr.backend in
           let (module OB) = otr.backend in
           OB.iter_learnts otr.solver (fun c ->
               match Inprocess.map_clause ip c with
               | Some c' when Array.length c' > 0 ->
                 NB.add_clause_a ntr.solver c'
               | _ -> ()));
        arm_progress s.label "miter" nt;
        s.miter <- { s.miter with Miter.formula = reduced };
        s.miter_tracked <- nt;
        let prev = s.recon in
        s.recon <- (fun m -> prev (Inprocess.reconstruct ip m))
      end
    end

(* One miter solve; shared by the screening and reference paths.
   [record_models] feeds the model's two key vectors into the screening
   pool.  When the miter was preprocessed, the backend's model (of the
   reduced formula) is first extended to a model of the original formula —
   interface variables are frozen so their values pass through unchanged,
   but reconstruction keeps the extraction honest about which formula the
   model satisfies. *)
let solve_dip s ~record_models =
  maybe_inprocess s;
  sync s.miter_tracked;
  let before = tracked_stats s.miter_tracked in
  let outcome =
    Fl_obs.with_span "session.solve_dip" (fun () ->
        tracked_solve s.miter_tracked ~budget:(budget s))
  in
  let delta = Cdcl.sub_stats (tracked_stats s.miter_tracked) before in
  s.stats <- Cdcl.add_stats s.stats delta;
  match outcome with
  | Cdcl.Unknown ->
    emit_record s "attack.timeout" delta;
    `Timeout
  | Cdcl.Unsat ->
    emit_record s "attack.exhausted" delta;
    `Exhausted
  | Cdcl.Sat ->
    s.iteration_count <- s.iteration_count + 1;
    Fl_obs.Counter.incr c_dip_solver;
    let model = s.recon (tracked_model s.miter_tracked) in
    let value v = model.(v) in
    let dip = Array.map value s.miter.Miter.inputs in
    if record_models then begin
      add_pool_key s (Array.map value s.miter.Miter.keys_a);
      add_pool_key s (Array.map value s.miter.Miter.keys_b)
    end;
    emit_record s "attack.iteration" ~dip delta;
    `Dip dip

let find_dip s =
  if out_of_time s then `Timeout
  else
    match screen_dip s with
    | Some dip ->
      s.iteration_count <- s.iteration_count + 1;
      Fl_obs.Counter.incr c_dip_screened;
      emit_record s "attack.iteration" ~dip ~screened:true Cdcl.zero_stats;
      `Dip dip
    | None -> solve_dip s ~record_models:true

let find_dip_reference s =
  if out_of_time s then `Timeout else solve_dip s ~record_models:false

let constrain_io s ~inputs ~outputs =
  Fl_obs.with_span "session.observe" @@ fun () ->
  let circuit = s.locked.Locked.locked in
  Miter.add_io_constraint s.miter circuit ~inputs ~outputs;
  let key_formula =
    match s.key_tracked with Tracked tr -> tr.formula
  in
  let enc = Tseytin.encode ~share_keys:s.key_vars key_formula circuit in
  Tseytin.assert_vector key_formula enc.Tseytin.input_vars inputs;
  Tseytin.assert_vector key_formula enc.Tseytin.output_vars outputs;
  s.last_observed <- Some (Array.copy inputs);
  (* Pool keys must stay consistent with the full observation set. *)
  if s.key_pool <> [] then
    s.key_pool <- List.filter (key_consistent s ~inputs ~outputs) s.key_pool

let observe s dip =
  let outputs = Locked.query_oracle s.locked dip in
  constrain_io s ~inputs:dip ~outputs

let candidate_key s =
  sync s.key_tracked;
  match
    Fl_obs.with_span "session.key_solve" (fun () ->
        tracked_solve s.key_tracked ~budget:(budget s))
  with
  | Cdcl.Sat ->
    let model = tracked_model s.key_tracked in
    `Key (Array.map (fun v -> model.(v)) s.key_vars)
  | Cdcl.Unsat -> `None
  | Cdcl.Unknown -> `Timeout

let iterations s = s.iteration_count
let solver_stats s = s.stats
let clause_var_ratio s = Formula.ratio s.miter.Miter.formula
let preprocess_stats s = Option.map Preprocess.stats s.pre
let inprocess_stats s = List.rev s.inprocess_log
