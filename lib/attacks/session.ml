module Circuit = Fl_netlist.Circuit
module Formula = Fl_cnf.Formula
module Tseytin = Fl_cnf.Tseytin
module Miter = Fl_cnf.Miter
module Cdcl = Fl_sat.Cdcl
module Locked = Fl_locking.Locked

(* A formula paired with an incremental solver: [sync] feeds the solver only
   the clauses appended since the last call, so the DIP loop stays linear in
   the number of iterations instead of rebuilding quadratically. *)
type tracked = {
  formula : Formula.t;
  solver : Cdcl.t;
  mutable loaded : int;  (* clauses already in the solver *)
}

let tracked_of formula = { formula; solver = Cdcl.create (); loaded = 0 }

let sync tr =
  Cdcl.ensure_vars tr.solver (Formula.num_vars tr.formula);
  let clauses = Formula.clauses tr.formula in
  for i = tr.loaded to Array.length clauses - 1 do
    Cdcl.add_clause_a tr.solver clauses.(i)
  done;
  tr.loaded <- Array.length clauses

type t = {
  locked : Locked.t;
  miter : Miter.t;
  miter_tracked : tracked;
  key_tracked : tracked;
  key_vars : int array;
  deadline : float;
  start : float;
  label : string;
  mutable iteration_count : int;
  mutable stats : Cdcl.stats;
}

(* Fields of one solver-stat delta, shared by the per-iteration attack
   records and the periodic cdcl.progress records. *)
let stats_fields (d : Cdcl.stats) =
  [
    "decisions", Fl_obs.Int d.Cdcl.decisions;
    "propagations", Fl_obs.Int d.Cdcl.propagations;
    "conflicts", Fl_obs.Int d.Cdcl.conflicts;
    "restarts", Fl_obs.Int d.Cdcl.restarts;
    "learned_clauses", Fl_obs.Int d.Cdcl.learned_clauses;
    "learned_literals", Fl_obs.Int d.Cdcl.learned_literals;
    "reductions", Fl_obs.Int d.Cdcl.reductions;
    "max_decision_level", Fl_obs.Int d.Cdcl.max_decision_level;
  ]

(* Every N conflicts each session solver reports its stat deltas, so
   long solver calls (the interesting ones) are visible from a trace even
   before the iteration record lands. *)
let progress_conflict_period = 2048

let arm_progress label role solver =
  Cdcl.set_progress solver ~every:progress_conflict_period (fun delta ->
      if Fl_obs.enabled () then
        Fl_obs.emit "cdcl.progress"
          ~fields:
            (("attack", Fl_obs.String label)
             :: ("solver", Fl_obs.String role)
             :: stats_fields delta))

let create ?extra_key_constraint ?(label = "sat") ~deadline locked =
  let circuit = locked.Locked.locked in
  let miter = Miter.build circuit in
  let key_formula = Formula.create () in
  let key_vars = Formula.fresh_vars key_formula (Circuit.num_keys circuit) in
  (match extra_key_constraint with
   | Some add ->
     add key_formula key_vars;
     add miter.Miter.formula miter.Miter.keys_a;
     add miter.Miter.formula miter.Miter.keys_b
   | None -> ());
  let miter_tracked = tracked_of miter.Miter.formula in
  let key_tracked = tracked_of key_formula in
  arm_progress label "miter" miter_tracked.solver;
  arm_progress label "key" key_tracked.solver;
  {
    locked;
    miter;
    miter_tracked;
    key_tracked;
    key_vars;
    deadline;
    start = Unix.gettimeofday ();
    label;
    iteration_count = 0;
    stats = Cdcl.zero_stats;
  }

let elapsed s = Unix.gettimeofday () -. s.start
let out_of_time s = Unix.gettimeofday () > s.deadline
let budget s = Cdcl.budget_seconds (s.deadline -. Unix.gettimeofday ())

(* One structured record per miter solve.  A Sat outcome is an attack
   iteration ("attack.iteration"); the final Unsat/Unknown solve is recorded
   too ("attack.exhausted" / "attack.timeout") so that summing the deltas of
   every record reproduces {!solver_stats} exactly. *)
let emit_record s name ?dip delta =
  if Fl_obs.enabled () then begin
    let f = s.miter.Miter.formula in
    let fields =
      ("attack", Fl_obs.String s.label)
      :: ("scheme", Fl_obs.String s.locked.Locked.scheme)
      :: ("iter", Fl_obs.Int s.iteration_count)
      :: ("clauses", Fl_obs.Int (Formula.num_clauses f))
      :: ("vars", Fl_obs.Int (Formula.num_vars f))
      :: ("clause_var_ratio", Fl_obs.Float (Formula.ratio f))
      :: ("elapsed_s", Fl_obs.Float (elapsed s))
      :: stats_fields delta
    in
    let fields =
      match dip with
      | None -> fields
      | Some bits ->
        fields
        @ [
            ( "dip",
              Fl_obs.String
                (String.init (Array.length bits) (fun i ->
                     if bits.(i) then '1' else '0')) );
          ]
    in
    Fl_obs.emit name ~fields
  end

let find_dip s =
  if out_of_time s then `Timeout
  else begin
    sync s.miter_tracked;
    let solver = s.miter_tracked.solver in
    let before = Cdcl.stats solver in
    let outcome = Cdcl.solve ~budget:(budget s) solver in
    let delta = Cdcl.sub_stats (Cdcl.stats solver) before in
    s.stats <- Cdcl.add_stats s.stats delta;
    match outcome with
    | Cdcl.Unknown ->
      emit_record s "attack.timeout" delta;
      `Timeout
    | Cdcl.Unsat ->
      emit_record s "attack.exhausted" delta;
      `Exhausted
    | Cdcl.Sat ->
      s.iteration_count <- s.iteration_count + 1;
      let dip = Array.map (fun v -> Cdcl.value solver v) s.miter.Miter.inputs in
      emit_record s "attack.iteration" ~dip delta;
      `Dip dip
  end

let constrain_io s ~inputs ~outputs =
  let circuit = s.locked.Locked.locked in
  Miter.add_io_constraint s.miter circuit ~inputs ~outputs;
  let key_formula = s.key_tracked.formula in
  let enc = Tseytin.encode ~share_keys:s.key_vars key_formula circuit in
  Tseytin.assert_vector key_formula enc.Tseytin.input_vars inputs;
  Tseytin.assert_vector key_formula enc.Tseytin.output_vars outputs

let observe s dip =
  let outputs = Locked.query_oracle s.locked dip in
  constrain_io s ~inputs:dip ~outputs

let candidate_key s =
  sync s.key_tracked;
  let solver = s.key_tracked.solver in
  let outcome = Cdcl.solve ~budget:(budget s) solver in
  match outcome with
  | Cdcl.Sat -> `Key (Array.map (fun v -> Cdcl.value solver v) s.key_vars)
  | Cdcl.Unsat -> `None
  | Cdcl.Unknown -> `Timeout

let iterations s = s.iteration_count
let solver_stats s = s.stats
let clause_var_ratio s = Formula.ratio s.miter.Miter.formula
