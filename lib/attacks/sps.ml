module Gate = Fl_netlist.Gate
module Circuit = Fl_netlist.Circuit
module Locked = Fl_locking.Locked

(* Probability that a gate outputs 1 given independent fanin
   probabilities. *)
let gate_probability kind (ps : float array) =
  let all = Array.fold_left (fun acc p -> acc *. p) 1.0 in
  let none = Array.fold_left (fun acc p -> acc *. (1.0 -. p)) 1.0 in
  let parity () =
    (* P(odd number of ones) via the product formula. *)
    let prod = Array.fold_left (fun acc p -> acc *. (1.0 -. (2.0 *. p))) 1.0 ps in
    0.5 *. (1.0 -. prod)
  in
  match kind with
  | Gate.Input | Gate.Key_input -> 0.5
  | Gate.Const b -> if b then 1.0 else 0.0
  | Gate.Buf -> ps.(0)
  | Gate.Not -> 1.0 -. ps.(0)
  | Gate.And -> all ps
  | Gate.Nand -> 1.0 -. all ps
  | Gate.Or -> 1.0 -. none ps
  | Gate.Nor -> none ps
  | Gate.Xor -> parity ()
  | Gate.Xnor -> 1.0 -. parity ()
  | Gate.Mux -> ((1.0 -. ps.(0)) *. ps.(1)) +. (ps.(0) *. ps.(2))
  | Gate.Lut tt ->
    (* Sum over minterms of the table. *)
    let k = Array.length ps in
    let total = ref 0.0 in
    Array.iteri
      (fun row v ->
        if v then begin
          let p = ref 1.0 in
          for j = 0 to k - 1 do
            p := !p *. (if row land (1 lsl j) <> 0 then ps.(j) else 1.0 -. ps.(j))
          done;
          total := !total +. !p
        end)
      tt;
    !total

let probabilities c =
  let n = Circuit.num_nodes c in
  let prob = Array.make n 0.5 in
  let eval id =
    let nd = Circuit.node c id in
    match nd.Circuit.kind with
    | Gate.Input | Gate.Key_input -> 0.5
    | kind -> gate_probability kind (Array.map (fun f -> prob.(f)) nd.Circuit.fanins)
  in
  (match Fl_netlist.View.topo_order (Fl_netlist.View.of_circuit c) with
   | Some order -> Array.iter (fun id -> prob.(id) <- eval id) order
   | None ->
     (* Damped fixpoint sweeps for cyclic circuits. *)
     for _ = 1 to 24 do
       for id = 0 to n - 1 do
         prob.(id) <- (0.5 *. prob.(id)) +. (0.5 *. eval id)
       done
     done);
  prob

let key_tainted c =
  let n = Circuit.num_nodes c in
  let tainted = Array.make n false in
  Array.iter (fun id -> tainted.(id) <- true) c.Circuit.keys;
  (* Propagate taint; iterate to a fixpoint to cover cyclic circuits. *)
  let changed = ref true in
  while !changed do
    changed := false;
    for id = 0 to n - 1 do
      if not tainted.(id) then begin
        let nd = Circuit.node c id in
        if Array.exists (fun f -> tainted.(f)) nd.Circuit.fanins then begin
          tainted.(id) <- true;
          changed := true
        end
      end
    done
  done;
  tainted

let skew_ranking c ~top =
  let prob = probabilities c in
  let tainted = key_tainted c in
  let entries = ref [] in
  for id = 0 to Circuit.num_nodes c - 1 do
    let nd = Circuit.node c id in
    match nd.Circuit.kind with
    | Gate.Input | Gate.Key_input | Gate.Const _ -> ()
    | _ ->
      if tainted.(id) then
        entries := (id, prob.(id), Float.abs (prob.(id) -. 0.5)) :: !entries
  done;
  let sorted =
    List.sort (fun (_, _, a) (_, _, b) -> compare b a) !entries
  in
  List.filteri (fun i _ -> i < top) sorted

let flip_wire_skew locked =
  let c = locked.Locked.locked in
  let prob = probabilities c in
  let tainted = key_tainted c in
  let results = ref [] in
  for id = 0 to Circuit.num_nodes c - 1 do
    let nd = Circuit.node c id in
    match nd.Circuit.kind, nd.Circuit.fanins with
    | (Gate.Xor | Gate.Xnor), [| a; b |] ->
      let candidate =
        if tainted.(a) && not tainted.(b) then Some a
        else if tainted.(b) && not tainted.(a) then Some b
        else None
      in
      (match candidate with
       | Some flip -> results := (flip, Float.abs (prob.(flip) -. 0.5)) :: !results
       | None -> ())
    | _, _ -> ()
  done;
  List.sort (fun (_, a) (_, b) -> compare b a) !results

let identifies_block ?(threshold = 0.45) locked =
  match flip_wire_skew locked with
  | (_, skew) :: _ -> skew >= threshold
  | [] -> false
