(** Shared state of an oracle-guided attack: the miter, the accumulated
    observation constraints, and the key-recovery formula.  {!Sat_attack},
    {!Cycsat} (via its key-condition emitter) and {!Appsat} all drive their
    loops through this module. *)

type t

(** [create ?extra_key_constraint ?label ~deadline locked] builds the miter
    and the key-recovery formula; [extra_key_constraint] is asserted over
    both miter key copies and the recovery keys.  [deadline] is an absolute
    Unix time.  [label] (default ["sat"]) names the attack in every
    {!Fl_obs} record the session emits. *)
val create :
  ?extra_key_constraint:(Fl_cnf.Formula.t -> int array -> unit) ->
  ?label:string ->
  deadline:float ->
  Fl_locking.Locked.t ->
  t

(** [find_dip s] solves the miter for the next discriminating input
    pattern.  Increments the iteration counter on success.

    When an {!Fl_obs} sink is installed, every miter solve emits one
    structured record — ["attack.iteration"] (with the DIP) on success,
    ["attack.exhausted"] / ["attack.timeout"] for the final solve — carrying
    the attack label, scheme, iteration index, the formula's clause/var
    counts and ratio, elapsed seconds, and the solver-stat deltas of that
    solve.  Summing the deltas over all records of a session reproduces
    {!solver_stats} exactly.  The session solvers also report
    ["cdcl.progress"] deltas every 2048 conflicts mid-solve. *)
val find_dip : t -> [ `Dip of bool array | `Exhausted | `Timeout ]

(** [observe s dip] queries the oracle on [dip] and constrains both key
    copies and the recovery formula with the observed behaviour. *)
val observe : t -> bool array -> unit

(** [constrain_io s ~inputs ~outputs] adds an arbitrary I/O observation
    (AppSAT's random queries). *)
val constrain_io : t -> inputs:bool array -> outputs:bool array -> unit

(** [candidate_key s] solves the recovery formula for a key consistent with
    every observation so far. *)
val candidate_key : t -> [ `Key of bool array | `None | `Timeout ]

val iterations : t -> int
val solver_stats : t -> Fl_sat.Cdcl.stats
val clause_var_ratio : t -> float
val elapsed : t -> float
val out_of_time : t -> bool
