(** Shared state of an oracle-guided attack: the miter, the accumulated
    observation constraints, and the key-recovery formula.  {!Sat_attack},
    {!Cycsat} (via its key-condition emitter) and {!Appsat} all drive their
    loops through this module. *)

type t

(** {1 Prepared bases}

    The expensive, observation-independent part of a session — building
    the miter (Tseytin encoding of two circuit copies), asserting any
    extra key constraint, and the one-shot SatELite-style preprocessing —
    depends only on the locked circuit.  A {!Base.t} freezes that work
    into an immutable snapshot: any number of sessions (concurrently, on
    any domain) can then be created from it, each receiving a private
    copy of the reduced formula, so attacking the same circuit twice
    never re-runs Tseytin + preprocessing.  This is the unit the
    [Fl_serve] content-addressed cache stores. *)
module Base : sig
  type t

  (** [prepare ?extra_key_constraint ?label ?preprocess circuit] builds
      and preprocesses the base miter of [circuit] once.  The arguments
      mean what they mean on {!Session.create}; they are captured in the
      snapshot, so sessions created from this base inherit them
      (CycSAT's no-cycle emitter prepared here is re-applied to each
      session's key-recovery formula).  Counted on
      [session.base.prepared]. *)
  val prepare :
    ?extra_key_constraint:(Fl_cnf.Formula.t -> int array -> unit) ->
    ?label:string ->
    ?preprocess:bool ->
    Fl_netlist.Circuit.t ->
    t

  (** The circuit the base was prepared for.  {!Session.create} requires
      the session's locked circuit to be {e physically} this one. *)
  val circuit : t -> Fl_netlist.Circuit.t

  (** Clauses-to-variables ratio of the (reduced) base formula. *)
  val clause_var_ratio : t -> float

  (** As {!Session.preprocess_stats}, for the base's one-shot pass. *)
  val preprocess_stats : t -> Fl_sat.Preprocess.stats option
end

(** [create ?base ?extra_key_constraint ?label ?max_conflicts ?preprocess
    ?backend ~deadline locked] builds the miter and the key-recovery
    formula; [extra_key_constraint] is asserted over both miter key copies
    and the recovery keys.  [deadline] is an absolute Unix time.
    [max_conflicts] additionally caps the total solver conflicts the
    session may spend — a machine-load-independent budget, so sweeps run
    under {!Fl_par} reach the same outcome at any [--jobs] width (the wall
    deadline is contention-sensitive).  [label] (default ["sat"]) names the
    attack in every {!Fl_obs} record the session emits.

    [preprocess] (default [true]) runs {!Fl_sat.Preprocess} once over the
    base miter — subsumption, self-subsuming resolution and bounded
    variable elimination — with the miter's interface variables (shared
    inputs, both key copies, both output vectors) frozen, so the clauses
    the attack loop adds later remain sound against the reduced formula.
    Models of the reduced formula are reconstructed to full models before
    DIPs and pool keys are extracted.  Pass [~preprocess:false] for the
    reference unpreprocessed path.

    [inprocess] (default [false]) additionally re-runs the bounded
    {!Fl_sat.Inprocess} engine (failed-literal probing, equivalent-literal
    SCC collapsing, XOR recovery + GF(2) elimination, subsumption, bounded
    elimination) over the miter formula — base clauses plus the
    accumulated observation tail — every [inprocess_every] DIP iterations
    (default 8), rebuilding the miter solver from the reduced formula and
    replaying learnt clauses that survive the substitution/unit maps.
    The period backs off adaptively: after a run that removes under ~2%
    of the clauses and derives no units or equivalences the next run
    waits twice as long (capped at 16x [inprocess_every]); a productive
    run resets the schedule.  Runs are additionally conflict-gated: one
    only fires after the session solvers have accrued
    [inprocess_min_conflicts] conflicts (default 2048) since the
    previous run, so attacks the solver finds easy never pay for a
    rebuild they cannot amortise.  Both gates depend on solver state
    only — the schedule is machine-independent.
    With [~inprocess:false] the solve path is bit-identical to the
    non-inprocessed session.

    [backend] (default {!Fl_sat.Solver_intf.cdcl}) selects the incremental
    SAT backend both session solvers run on.

    [portfolio] fronts the {e miter} solver with a
    {!Fl_sat.Portfolio} backend built from the given spec (the
    key-recovery solver stays on [backend]: its solves are many and
    cheap, the miter solves dominate).  When the spec asks for cubing
    ([cube_depth > 0]) but gives no [cube_vars], the session fills them
    with the miter's first-copy key variables ranked by transitive
    fanout cone size ({!Fl_netlist.View}), so the cube split happens on
    the keys that influence the most circuit — the variables most likely
    to partition the search space evenly.

    [base] starts the session from a prepared {!Base.t} snapshot instead
    of building the miter: the session gets a private {!Fl_cnf.Formula}
    copy of the base's reduced formula, the base's preprocessing layer
    for model reconstruction, and the base's extra key constraint
    (re-applied to this session's fresh key-recovery formula).  The
    [extra_key_constraint] and [preprocess] arguments are ignored in
    favour of what the base captured.  The locked circuit must be
    physically [Base.circuit base] (the miter encodes exactly that
    node numbering) or [create] raises [Invalid_argument].  Counted on
    [session.base.reused]. *)
val create :
  ?base:Base.t ->
  ?extra_key_constraint:(Fl_cnf.Formula.t -> int array -> unit) ->
  ?label:string ->
  ?max_conflicts:int ->
  ?preprocess:bool ->
  ?inprocess:bool ->
  ?inprocess_every:int ->
  ?inprocess_min_conflicts:int ->
  ?backend:(module Fl_sat.Solver_intf.S) ->
  ?portfolio:Fl_sat.Portfolio.spec ->
  deadline:float ->
  Fl_locking.Locked.t ->
  t

(** [find_dip s] finds the next discriminating input pattern.  Increments
    the iteration counter on success.

    Before touching the solver it {e screens} candidate vectors through the
    circuit's word evaluator ({!Fl_netlist.View.eval_words}, 63 vectors per
    pass): the session keeps a small pool of key witnesses harvested from
    earlier miter models — all consistent with every observation so far —
    and any input on which two pool keys disagree (on a settled lane) is
    itself a satisfying miter assignment, i.e. a genuine DIP, returned
    without a solver call.  Observing a screened DIP evicts at least one
    of the disagreeing witnesses from the pool, so at most pool-size
    consecutive screened iterations can occur before the miter is solved
    again; termination and correctness match {!find_dip_reference}.

    When an {!Fl_obs} sink is installed, every iteration emits one
    structured record — ["attack.iteration"] (with the DIP) on success,
    ["attack.exhausted"] / ["attack.timeout"] for the final solve — carrying
    the attack label, scheme, iteration index, the formula's clause/var
    counts and ratio, elapsed seconds, and the solver-stat deltas of that
    solve.  Screened iterations carry a ["screened" = true] field and
    all-zero deltas, so summing the deltas over all records of a session
    still reproduces {!solver_stats} exactly.  The session solvers also
    report ["cdcl.progress"] deltas every 2048 conflicts mid-solve.  The
    ["session.dip.screened"] / ["session.dip.solver"] counters split DIPs
    by source; ["session.screen.passes"] counts word-evaluator sweeps. *)
val find_dip : t -> [ `Dip of bool array | `Exhausted | `Timeout ]

(** [find_dip_reference s] is the pure-solver path: every DIP comes from a
    miter solve, no screening pool is consulted or populated.  Kept as the
    oracle for tests asserting that the screened loop recovers the same
    keys. *)
val find_dip_reference : t -> [ `Dip of bool array | `Exhausted | `Timeout ]

(** [observe s dip] queries the oracle on [dip] and constrains both key
    copies and the recovery formula with the observed behaviour. *)
val observe : t -> bool array -> unit

(** [constrain_io s ~inputs ~outputs] adds an arbitrary I/O observation
    (AppSAT's random queries). *)
val constrain_io : t -> inputs:bool array -> outputs:bool array -> unit

(** [candidate_key s] solves the recovery formula for a key consistent with
    every observation so far. *)
val candidate_key : t -> [ `Key of bool array | `None | `Timeout ]

val iterations : t -> int
val solver_stats : t -> Fl_sat.Cdcl.stats

(** Clauses-to-variables ratio of the session's miter formula (reduced, when
    preprocessing ran, plus all incremental observation constraints). *)
val clause_var_ratio : t -> float

(** Statistics of the one-shot miter preprocessing pass; [None] when the
    session was created with [~preprocess:false] (or the defensive
    unpreprocessed fallback engaged). *)
val preprocess_stats : t -> Fl_sat.Preprocess.stats option

(** Statistics of the between-iterations inprocessing runs, oldest first;
    empty unless the session was created with [~inprocess:true] and at
    least one period elapsed. *)
val inprocess_stats : t -> Fl_sat.Inprocess.stats list

val elapsed : t -> float
val out_of_time : t -> bool
