module Circuit = Fl_netlist.Circuit
module Cdcl = Fl_sat.Cdcl
module Equiv = Fl_sat.Equiv
module Locked = Fl_locking.Locked

type status =
  | Broken of bool array
  | Timeout
  | Iteration_limit
  | No_key_found

type result = {
  status : status;
  iterations : int;
  wall_time : float;
  key_is_correct : bool;
  solver : Cdcl.stats;
  clause_var_ratio : float;
  dips : bool array list;
}

type progress = int -> float -> unit

let run ?base ?(timeout = 60.0) ?max_conflicts ?(max_iterations = max_int)
    ?(progress = fun _ _ -> ()) ?extra_key_constraint ?(label = "sat")
    ?preprocess ?inprocess ?inprocess_every ?inprocess_min_conflicts ?portfolio
    locked =
  Fl_obs.with_span ("attack." ^ label) @@ fun () ->
  let deadline = Unix.gettimeofday () +. timeout in
  let session =
    Session.create ?base ?extra_key_constraint ~label ?max_conflicts
      ?preprocess ?inprocess ?inprocess_every ?inprocess_min_conflicts
      ?portfolio ~deadline locked
  in
  let finish status dips =
    let key_is_correct =
      match status with
      | Broken key ->
        (* Formal check when the locked netlist is acyclic; random-vector
           plus exhaustive-small simulation otherwise (cyclic CNF
           equivalence would be unsound). *)
        if Fl_netlist.View.is_acyclic (Fl_netlist.View.of_circuit locked.Locked.locked)
        then
          (* With a conflict budget the verification budget is conflict-based
             too, keeping the whole result machine-load-independent. *)
          let budget =
            match max_conflicts with
            | Some m -> Cdcl.budget_conflicts (max 10_000 m)
            | None -> Cdcl.budget_seconds (max 5.0 timeout)
          in
          Equiv.check_key ~budget ~locked:locked.Locked.locked
            ~oracle:locked.Locked.oracle key
          = Equiv.Equivalent
        else Locked.key_matches locked ~key
      | Timeout | Iteration_limit | No_key_found -> false
    in
    {
      status;
      iterations = Session.iterations session;
      wall_time = Session.elapsed session;
      key_is_correct;
      solver = Session.solver_stats session;
      clause_var_ratio = Session.clause_var_ratio session;
      dips;
    }
  in
  let rec loop dips =
    if Session.iterations session >= max_iterations then finish Iteration_limit dips
    else
      match Session.find_dip session with
      | `Timeout -> finish Timeout dips
      | `Dip dip ->
        Session.observe session dip;
        progress (Session.iterations session) (Session.elapsed session);
        loop (dip :: dips)
      | `Exhausted ->
        (match Session.candidate_key session with
         | `Key key -> finish (Broken key) dips
         | `None -> finish No_key_found dips
         | `Timeout -> finish Timeout dips)
  in
  loop []

let pp_result fmt r =
  let status =
    match r.status with
    | Broken _ -> if r.key_is_correct then "broken (key correct)" else "broken (KEY WRONG)"
    | Timeout -> "timeout"
    | Iteration_limit -> "iteration limit"
    | No_key_found -> "no consistent key"
  in
  Format.fprintf fmt "%s after %d iterations, %.2fs, ratio %.2f (%a)" status
    r.iterations r.wall_time r.clause_var_ratio Cdcl.pp_stats r.solver;
  if r.iterations > 0 then begin
    let per n = float_of_int n /. float_of_int r.iterations in
    Format.fprintf fmt
      " [per iteration: %.1f decisions, %.1f propagations, %.1f conflicts]"
      (per r.solver.Cdcl.decisions)
      (per r.solver.Cdcl.propagations)
      (per r.solver.Cdcl.conflicts)
  end
