(** The oracle-guided SAT attack of Subramanyan, Ray and Malik (HOST'15).

    Each iteration solves the miter for a discriminating input pattern
    (DIP), queries the oracle, and adds the observed I/O behaviour as a
    constraint on both key copies.  When the miter goes UNSAT, any key
    consistent with the accumulated observations is functionally correct
    (for acyclic circuits).

    On cyclic locked circuits the plain attack is unsound — the CNF admits
    spurious stabilisations, so the recovered key may be wrong or the loop
    may not converge; that failure mode is the paper's motivation for
    CycSAT, and {!result.key_is_correct} reports it honestly. *)

type status =
  | Broken of bool array  (** recovered key *)
  | Timeout  (** budget exhausted — wall clock or conflict cap *)
  | Iteration_limit
  | No_key_found  (** miter UNSAT but no consistent key (cyclic pathology) *)

type result = {
  status : status;
  iterations : int;
  wall_time : float;
  key_is_correct : bool;  (** functional check of the recovered key *)
  solver : Fl_sat.Cdcl.stats;  (** accumulated over all iterations *)
  clause_var_ratio : float;  (** of the final attack formula (Fig. 7) *)
  dips : bool array list;  (** the tested DIPs, most recent first *)
}

(** Hook called after each iteration with (iteration, elapsed seconds). *)
type progress = int -> float -> unit

(** [run ?timeout ?max_conflicts ?max_iterations ?progress
    ?extra_key_constraint ?label locked] runs the attack.
    [extra_key_constraint] (used by CycSAT) may add clauses over a
    key-variable vector into a formula; it is applied to both miter key
    copies and to the key-recovery formula.  [max_conflicts] caps the total
    solver conflicts of the attack (and makes the key-correctness check
    conflict-budgeted too): a deterministic, machine-load-independent
    budget, which is what the [Fl_par]-swept bench experiments use so
    --jobs does not change outcomes.  [label] (default ["sat"]) names the
    attack in the per-iteration {!Fl_obs} records the underlying {!Session}
    emits (see {!Session.find_dip}).  [preprocess] is forwarded to
    {!Session.create}: [true] (the default) runs the one-shot SatELite-style
    simplification of the base miter, [false] is the reference
    unpreprocessed path.  [inprocess] / [inprocess_every] /
    [inprocess_min_conflicts] (default off / 8 / 2048) are forwarded
    too: between-iterations {!Fl_sat.Inprocess} simplification of the
    growing attack formula with a solver rebuild every N DIP iterations,
    conflict-gated as described in {!Session.create}.  [base] starts the
    session from a prepared {!Session.Base} snapshot (see there): the
    miter and its preprocessing are reused instead of rebuilt, and
    [extra_key_constraint] / [preprocess] are superseded by what the base
    captured.  [portfolio] fronts the miter solver with a
    {!Fl_sat.Portfolio} backend (racing / cube-and-conquer / deterministic
    — see {!Session.create}). *)
val run :
  ?base:Session.Base.t ->
  ?timeout:float ->
  ?max_conflicts:int ->
  ?max_iterations:int ->
  ?progress:progress ->
  ?extra_key_constraint:(Fl_cnf.Formula.t -> int array -> unit) ->
  ?label:string ->
  ?preprocess:bool ->
  ?inprocess:bool ->
  ?inprocess_every:int ->
  ?inprocess_min_conflicts:int ->
  ?portfolio:Fl_sat.Portfolio.spec ->
  Fl_locking.Locked.t ->
  result

(** Prints the status line, the accumulated solver stats and (when at least
    one iteration ran) per-iteration averages of decisions, propagations
    and conflicts. *)
val pp_result : Format.formatter -> result -> unit
