(** AppSAT (Shamsi et al., HOST'17): approximate deobfuscation.

    The DIP loop is interleaved with random-query reinforcement: every few
    iterations the current best key candidate is extracted and its error
    rate estimated on random inputs; disagreeing queries are added as
    constraints.  The attack settles for an {e approximately} correct key
    once the estimated error drops below a threshold — which defeats
    low-corruption schemes (SARLock) but not high-corruption ones
    (Full-Lock). *)

type result = {
  key : bool array option;  (** best key candidate at termination *)
  estimated_error : float;  (** fraction of sampled inputs that disagree *)
  exact : bool;  (** terminated via miter-UNSAT (key provably correct) *)
  iterations : int;
  random_queries : int;
  wall_time : float;
}

(** [run ?base ?timeout ?max_iterations ?settle_every ?samples
    ?error_threshold ?seed locked] — defaults: settle every 4 DIP
    iterations, 64 random samples per estimate, accept below 1% estimated
    error.  [base] is a prepared {!Session.Base} snapshot (prepared
    without an extra key constraint — AppSAT shares the plain SAT-attack
    base) to skip rebuilding the miter. *)
val run :
  ?base:Session.Base.t ->
  ?timeout:float ->
  ?max_iterations:int ->
  ?settle_every:int ->
  ?samples:int ->
  ?error_threshold:float ->
  ?seed:int ->
  Fl_locking.Locked.t ->
  result

val pp_result : Format.formatter -> result -> unit
