module Circuit = Fl_netlist.Circuit
module Sim_word = Fl_netlist.Sim_word
module View = Fl_netlist.View
module Locked = Fl_locking.Locked

type result = {
  key : bool array option;
  estimated_error : float;
  exact : bool;
  iterations : int;
  random_queries : int;
  wall_time : float;
}

(* Error rate of a key candidate on random inputs; also returns the
   disagreeing queries so they can reinforce the constraint set.  Probes run
   {!View.lanes} per word-sim pass; only disagreeing lanes are unpacked back
   into scalar (inputs, outputs) observations. *)
let estimate_error locked rng ~samples key =
  let oracle_v = View.of_circuit locked.Locked.oracle in
  let locked_v = View.of_circuit locked.Locked.locked in
  let n = Circuit.num_inputs locked.Locked.oracle in
  let packed_key = View.broadcast key in
  let wrong = ref [] in
  let wrong_count = ref 0 in
  let remaining = ref samples in
  while !remaining > 0 do
    let used = min View.lanes !remaining in
    remaining := !remaining - used;
    let inputs = Sim_word.random_words rng ~width:n in
    let reference = View.eval_words oracle_v ~inputs ~keys:[||] in
    let out = View.eval_words locked_v ~inputs ~keys:packed_key in
    let bad = ref 0 in
    Array.iteri
      (fun i wa ->
        (* A lane disagrees when either side is undefined or the defined
           values differ. *)
        let wb = reference.(i) in
        bad :=
          !bad
          lor lnot (wa.View.defined land wb.View.defined)
          lor ((wa.View.value lxor wb.View.value)
               land wa.View.defined land wb.View.defined))
      out;
    let mask = if used >= View.lanes then -1 else (1 lsl used) - 1 in
    let bad = !bad land mask in
    if bad <> 0 then
      for l = 0 to used - 1 do
        if bad land (1 lsl l) <> 0 then begin
          incr wrong_count;
          let bit w = w land (1 lsl l) <> 0 in
          let iv = Array.map bit inputs in
          let ov = Array.map (fun w -> bit w.View.value) reference in
          wrong := (iv, ov) :: !wrong
        end
      done
  done;
  float_of_int !wrong_count /. float_of_int samples, !wrong

let run ?base ?(timeout = 60.0) ?(max_iterations = max_int)
    ?(settle_every = 4) ?(samples = 64) ?(error_threshold = 0.01) ?(seed = 0)
    locked =
  Fl_obs.with_span "attack.appsat" @@ fun () ->
  let deadline = Unix.gettimeofday () +. timeout in
  let session = Session.create ?base ~label:"appsat" ~deadline locked in
  let rng = Random.State.make [| seed; 0xa99 |] in
  let queries = ref 0 in
  let finish ?key ?(error = 1.0) ~exact () =
    {
      key;
      estimated_error = error;
      exact;
      iterations = Session.iterations session;
      random_queries = !queries;
      wall_time = Session.elapsed session;
    }
  in
  let try_settle () =
    match Session.candidate_key session with
    | `Key key ->
      let error, disagreements = estimate_error locked rng ~samples key in
      queries := !queries + samples;
      if Fl_obs.enabled () then
        Fl_obs.emit "appsat.settle"
          ~fields:
            [
              "iter", Fl_obs.Int (Session.iterations session);
              "error", Fl_obs.Float error;
              "random_queries", Fl_obs.Int !queries;
              "disagreements", Fl_obs.Int (List.length disagreements);
              "elapsed_s", Fl_obs.Float (Session.elapsed session);
            ];
      if error <= error_threshold then Some (finish ~key ~error ~exact:false ())
      else begin
        (* Reinforce: add the disagreeing oracle observations. *)
        List.iter
          (fun (inputs, outputs) -> Session.constrain_io session ~inputs ~outputs)
          disagreements;
        None
      end
    | `None | `Timeout -> None
  in
  let rec loop () =
    if Session.iterations session >= max_iterations then
      match Session.candidate_key session with
      | `Key key ->
        let error, _ = estimate_error locked rng ~samples key in
        finish ~key ~error ~exact:false ()
      | `None | `Timeout -> finish ~exact:false ()
    else
      match Session.find_dip session with
      | `Timeout -> finish ~exact:false ()
      | `Exhausted ->
        (match Session.candidate_key session with
         | `Key key -> finish ~key ~error:0.0 ~exact:true ()
         | `None | `Timeout -> finish ~exact:false ())
      | `Dip dip ->
        Session.observe session dip;
        if Session.iterations session mod settle_every = 0 then
          match try_settle () with Some r -> r | None -> loop ()
        else loop ()
  in
  loop ()

let pp_result fmt r =
  Format.fprintf fmt
    "%s key, error %.3f%s, %d iterations, %d random queries, %.2fs"
    (match r.key with Some _ -> "found" | None -> "no")
    r.estimated_error
    (if r.exact then " (exact)" else "")
    r.iterations r.random_queries r.wall_time
