(** SatELite-style CNF preprocessing with model reconstruction.

    [run ~frozen f] simplifies [f] by tautology and duplicate removal,
    backward subsumption, self-subsuming resolution (clause strengthening)
    and bounded variable elimination (NiVER/SatELite: a variable is
    eliminated only when the non-tautological resolvent count does not
    exceed the number of clauses removed plus [growth]).  Variables in
    [frozen] are never eliminated, so clauses added {e after} preprocessing
    may mention them freely — the contract the incremental attack loop
    relies on (DIP constraints only touch frozen key variables plus fresh
    variables).

    Variable numbering is preserved: the reduced formula has the same
    [num_vars] as the input and eliminated variables simply no longer
    occur, so literals, shared variables and incremental fresh-variable
    allocation all keep working unchanged.

    Every transformation except variable elimination preserves logical
    equivalence; elimination preserves equisatisfiability and is undone by
    {!reconstruct}, which extends any model of the reduced formula (plus
    any clauses over frozen/fresh variables added later) to a model of the
    original formula by replaying the elimination stack in reverse. *)

type t

type stats = {
  vars_before : int;  (** variables occurring in at least one clause *)
  vars_after : int;
  clauses_before : int;
  clauses_after : int;
  literals_before : int;
  literals_after : int;
  tautologies : int;  (** input clauses dropped as tautological *)
  duplicates : int;  (** input clauses dropped as exact duplicates *)
  subsumed : int;  (** clauses removed by subsumption *)
  strengthened : int;  (** literals removed by self-subsuming resolution *)
  eliminated : int;  (** variables eliminated *)
  resolvents : int;  (** clauses added by elimination *)
  wall_s : float;
}

(** [run ?growth ?max_occ ?label ~frozen f] preprocesses [f].  [growth]
    (default 0) is the permitted clause-count increase per elimination;
    [max_occ] (default 40) skips elimination of variables with more total
    occurrences (quadratic-resolvent guard).  [frozen] lists variable
    numbers that must survive.  When an {!Fl_obs} sink is installed a
    ["preprocess.done"] event is emitted, labelled [label] (default
    ["preprocess"]); the ["preprocess.*"] counters tick regardless. *)
val run :
  ?growth:int -> ?max_occ:int -> ?label:string -> frozen:int array ->
  Fl_cnf.Formula.t -> t

(** The reduced formula.  Same [num_vars] as the input; meaningless when
    {!is_unsat} holds. *)
val formula : t -> Fl_cnf.Formula.t

(** [true] when preprocessing derived the empty clause: the input formula
    is unsatisfiable. *)
val is_unsat : t -> bool

val stats : t -> stats

(** [reconstruct t model] extends [model] — indexed by variable with slot 0
    unused, the {!Cdcl.model} convention, satisfying {!formula}[ t] (and
    possibly further clauses over frozen or fresh variables) — to a model
    of the {e original} formula by assigning each eliminated variable so
    that every clause removed at its elimination is satisfied.  Returns a
    fresh array; values of non-eliminated (in particular frozen) variables
    are unchanged. *)
val reconstruct : t -> bool array -> bool array

val pp_stats : Format.formatter -> stats -> unit
