module Circuit = Fl_netlist.Circuit
module Formula = Fl_cnf.Formula
module Tseytin = Fl_cnf.Tseytin

type verdict =
  | Equivalent
  | Different of { inputs : bool array; outputs_a : bool array; outputs_b : bool array }
  | Unknown

module type S = sig
  val check :
    ?budget:Cdcl.budget ->
    ?keys_a:bool array ->
    ?keys_b:bool array ->
    Circuit.t ->
    Circuit.t ->
    verdict

  val check_key :
    ?budget:Cdcl.budget ->
    locked:Circuit.t ->
    oracle:Circuit.t ->
    bool array ->
    verdict
end

module Make (Solver : Solver_intf.S) = struct
  let check ?(budget = Cdcl.no_budget) ?(keys_a = [||]) ?(keys_b = [||]) a b =
    if Circuit.num_inputs a <> Circuit.num_inputs b then
      invalid_arg "Equiv.check: input counts differ";
    if Circuit.num_outputs a <> Circuit.num_outputs b then
      invalid_arg "Equiv.check: output counts differ";
    if not (Circuit.is_acyclic a && Circuit.is_acyclic b) then
      invalid_arg "Equiv.check: cyclic circuit (CNF equivalence would be unsound)";
    if Array.length keys_a <> Circuit.num_keys a then
      invalid_arg "Equiv.check: key length mismatch for first circuit";
    if Array.length keys_b <> Circuit.num_keys b then
      invalid_arg "Equiv.check: key length mismatch for second circuit";
    let f = Formula.create () in
    let enc_a = Tseytin.encode f a in
    let enc_b = Tseytin.encode ~share_inputs:enc_a.Tseytin.input_vars f b in
    Tseytin.assert_vector f enc_a.Tseytin.key_vars keys_a;
    Tseytin.assert_vector f enc_b.Tseytin.key_vars keys_b;
    let pairs =
      Array.to_list
        (Array.map2 (fun x y -> x, y) enc_a.Tseytin.output_vars enc_b.Tseytin.output_vars)
    in
    ignore (Tseytin.assert_any_differs f pairs);
    let solver = Solver_intf.load (module Solver) f in
    match Solver.solve ~budget solver with
    | Cdcl.Unsat -> Equivalent
    | Cdcl.Unknown -> Unknown
    | Cdcl.Sat ->
      let value v = Solver.value solver v in
      Different
        {
          inputs = Array.map value enc_a.Tseytin.input_vars;
          outputs_a = Array.map value enc_a.Tseytin.output_vars;
          outputs_b = Array.map value enc_b.Tseytin.output_vars;
        }

  let check_key ?budget ~locked ~oracle key =
    check ?budget ~keys_a:key ~keys_b:[||] locked oracle
end

include Make (Solver_intf.Cdcl_backend)

let pp_verdict fmt = function
  | Equivalent -> Format.pp_print_string fmt "equivalent (proved)"
  | Unknown -> Format.pp_print_string fmt "unknown (budget exhausted)"
  | Different { inputs; _ } ->
    Format.fprintf fmt "different (counterexample input:%a)"
      (fun f arr ->
        Array.iter (fun b -> Format.pp_print_char f (if b then '1' else '0')) arr)
      inputs
