(** Bounded CNF inprocessing for the attack loop: failed-literal probing,
    equivalent-literal SCC collapsing, and XOR recovery with GF(2)
    Gaussian elimination, on top of the shared {!Simp_db} machinery
    (subsumption, bounded variable elimination, model reconstruction).

    The engine produces an equisatisfiable reduced formula plus enough
    state to (a) reconstruct a full model of the original formula from a
    model of the reduced one and (b) map clauses expressed over the
    original variables (e.g. exported learnt clauses) onto the reduced
    variable space. Frozen variables are never substituted, eliminated or
    dropped; units derived on them stay as unit clauses in the reduced
    formula. *)

type stats = {
  vars_before : int;
  vars_after : int;
  clauses_before : int;
  clauses_after : int;
  literals_before : int;
  literals_after : int;
  probes : int;  (** probe roots actually propagated (both polarities) *)
  failed_literals : int;
  shared_implications : int;  (** literals implied by both polarities *)
  hyper_binaries : int;  (** binaries added by hyper-binary resolution *)
  equiv_classes : int;  (** SCC classes that collapsed ≥ 1 variable *)
  equiv_collapsed : int;  (** variables substituted by a representative *)
  xor_rows : int;  (** XOR constraints recovered from clause patterns *)
  gauss_pivots : int;  (** GF(2) row eliminations performed *)
  gauss_units : int;
  gauss_equivs : int;
  units : int;  (** total unit assignments applied *)
  subsumed : int;
  strengthened : int;
  eliminated : int;  (** variables removed by bounded elimination *)
  resolvents : int;
  rounds : int;
  wall_s : float;
}

type t

(** Reusable probe working set (2·nvars byte maps + a trail); pass the
    same scratch to successive runs to avoid reallocating it. Buffers
    grow on demand and are all-zero between runs. *)
type scratch

val scratch : unit -> scratch

(** [run ~frozen f] simplifies [f]. [frozen] variables survive untouched
    (the attack interface: inputs, key copies, outputs). [rounds] bounds
    the XOR→probe→SCC→subsume→eliminate iterations (default 2, with
    progress-based early exit); [max_probes] caps probe roots per pass
    (default 512); [max_xor_arity] caps XOR detection width (default 5);
    [growth]/[max_occ] bound variable elimination as in {!Preprocess}.
    The [probe]/[scc]/[xor]/[elim] switches disable individual passes
    (used by per-pass property tests). *)
val run :
  ?rounds:int ->
  ?max_probes:int ->
  ?max_xor_arity:int ->
  ?growth:int ->
  ?max_occ:int ->
  ?probe:bool ->
  ?scc:bool ->
  ?xor:bool ->
  ?elim:bool ->
  ?scratch:scratch ->
  ?label:string ->
  frozen:int array ->
  Fl_cnf.Formula.t ->
  t

(** The reduced, equisatisfiable formula (empty when {!is_unsat}). *)
val formula : t -> Fl_cnf.Formula.t

(** The simplifier proved the input unsatisfiable (failed pair of
    probes, contradictory SCC, inconsistent XOR system, or an empty
    clause). *)
val is_unsat : t -> bool

val stats : t -> stats

(** [reconstruct t model] extends a model of {!formula} (indexed by
    variable, slot 0 unused) to a model of the original formula, filling
    in substituted, unit-assigned and eliminated variables. *)
val reconstruct : t -> bool array -> bool array

(** [map_clause t lits] rewrites a clause over original variables into
    the reduced space: substituted literals follow their representative,
    derived units evaluate, duplicate literals merge. Returns [None] if
    the clause is satisfied or tautological after mapping, or if it
    mentions a variable removed by bounded elimination (no sound image
    exists). The result is never the empty clause. *)
val map_clause : t -> int array -> int array option

val pp_stats : Format.formatter -> stats -> unit
