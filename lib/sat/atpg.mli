(** SAT-based automatic test-pattern generation (ATPG) for single stuck-at
    faults.

    A fault's test miter instantiates the good and the faulty netlist on
    shared primary inputs (the faulty copy replaces the fault site with a
    constant) and asks a SAT backend for an input that makes some output
    differ.  UNSAT is a {e proof} that the fault is untestable (redundant
    logic — locked netlists contain plenty around deselected MUX paths).

    Key inputs are pinned to the activation key in both copies, modelling
    production test of an activated part. *)

type outcome =
  | Test of bool array  (** input vector detecting the fault *)
  | Untestable  (** proved redundant under the given key *)
  | Unknown  (** budget exhausted *)

type report = {
  tests : bool array list;  (** generated vectors (deduplicated) *)
  testable : int;
  untestable : int;
  unknown : int;
}

module type S = sig
  (** [generate ?budget c ~keys fault] — a test for [fault = (node,
      stuck_at)].
      @raise Invalid_argument on cyclic circuits or a key-length mismatch. *)
  val generate :
    ?budget:Cdcl.budget ->
    Fl_netlist.Circuit.t ->
    keys:bool array ->
    node:int ->
    stuck_at:bool ->
    outcome

  (** [cover ?budget c ~keys ~faults] runs [generate] for each (node,
      stuck-at) pair, fault-simulating accumulated vectors first so easy
      faults don't all pay a SAT call. *)
  val cover :
    ?budget_per_fault:float ->
    Fl_netlist.Circuit.t ->
    keys:bool array ->
    faults:(int * bool) list ->
    report
end

(** ATPG over any {!Solver_intf.S} backend. *)
module Make (_ : Solver_intf.S) : S

(** The default instance, decided by {!Cdcl}. *)
include S

val pp_report : Format.formatter -> report -> unit
