(** Packed literals and byte-coded truth values for the solver core.

    A literal is [2*var + sign] in one unboxed int (0-based variables,
    sign 1 = negated); negation is one xor and the literal doubles as its
    own watch-list index.  Truth values are byte-coded as
    0 = false, 1 = true, 2 = undef so that a literal evaluates with a
    single byte load and xor ({!value}). *)

(** Transparent alias: literals index watch lists and live in the int
    arena directly, so the packing is part of the contract (callers
    outside the solver core should stick to the functions below). *)
type t = int

external of_int : int -> t = "%identity"
external to_int : t -> int = "%identity"

(** [make v sign] is variable [v] (0-based), negated when [sign]. *)
val make : int -> bool -> t

val var : t -> int
val sign : t -> bool
val neg : t -> t

(** A sentinel distinct from every proper literal (compares as [-1]). *)
val undef : t

val of_dimacs : int -> t
val to_dimacs : t -> int
val pp : Format.formatter -> t -> unit

module Lbool : sig
  type t = int

  val false_ : t
  val true_ : t
  val undef : t

  (** Negation by bit-twiddle: flips false/true, fixes undef. *)
  val neg : t -> t

  val of_bool : bool -> t
  val is_true : t -> bool
  val is_false : t -> bool

  (** Values [>= undef] are undefined ({!value} can yield 2 or 3). *)
  val is_undef : t -> bool
end

(** [value_var assigns v] is the stored {!Lbool.t} of variable [v]. *)
val value_var : Bytes.t -> int -> Lbool.t

(** [value assigns l] is the value of literal [l]: 0 false, 1 true,
    [>= 2] undef.  The assignment bytes must be initialised to ['\002']
    (undef). *)
val value : Bytes.t -> t -> Lbool.t

(** [assign assigns l] makes [l] true. *)
val assign : Bytes.t -> t -> unit

(** [unassign assigns v] resets variable [v] to undef. *)
val unassign : Bytes.t -> int -> unit
