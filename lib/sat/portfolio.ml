(* Portfolio + cube-and-conquer backend over {!Cdcl} and {!Fl_par}.

   N diverse solver configurations hold the same clause set (every
   [add_clause] is mirrored).  A [solve] races them as streamed
   {!Fl_par} tasks — first decisive member wins, losers are cancelled
   through {!Cdcl.set_interrupt} — or, with [cube_depth > 0], splits the
   search space into assumption cubes over high-fanout key variables
   that members pull from a shared counter.

   Clause sharing happens at solve boundaries only: each member exports
   its short learnts on its own worker domain into a mutex-guarded
   buffer; the coordinator imports them into the other members once every
   task has settled and the solvers are quiescent (add_clause needs level
   0).  Sharing is sound because a learnt clause is a resolvent of
   database clauses only — assumptions never act as resolution axioms,
   they just survive as literals — and all members share one database.

   Determinism: [deterministic = true] instantiates a single member
   (picked by [seed mod workers]) and solves inline with the full budget
   — no domains, no sharing, no interrupts — so with [seed mod workers =
   0] the portfolio is bit-for-bit the plain sequential {!Cdcl}
   reference. *)

type spec = {
  workers : int;
  seed : int;
  deterministic : bool;
  cube_depth : int;
  cube_vars : int array;
  share_max_len : int;
  share_cap : int;
  base_config : Cdcl.config;
}

let default_spec =
  {
    workers = 2;
    seed = 0;
    deterministic = false;
    cube_depth = 0;
    cube_vars = [||];
    share_max_len = 8;
    share_cap = 512;
    base_config = Cdcl.default_config;
  }

let check_spec spec =
  if spec.workers < 1 then invalid_arg "Portfolio: workers must be >= 1";
  if spec.cube_depth < 0 || spec.cube_depth > 16 then
    invalid_arg "Portfolio: cube_depth must be in [0, 16]";
  if spec.share_max_len < 0 then
    invalid_arg "Portfolio: share_max_len must be >= 0";
  if spec.share_cap < 0 then invalid_arg "Portfolio: share_cap must be >= 0"

(* Member 0 is the reference configuration; the rest cycle through
   restart / decay / phase / random-decision variations, each with its
   own RNG seed mixed from the spec seed. *)
let member_config spec i =
  let base = spec.base_config in
  if i = 0 then base
  else begin
    let seed =
      base.Cdcl.seed lxor (spec.seed * 0x9e3779b9) lxor (i * 0x85ebca77)
    in
    match (i - 1) mod 5 with
    | 0 -> { base with Cdcl.restart_base = base.Cdcl.restart_base * 4; seed }
    | 1 -> { base with Cdcl.var_decay = 0.85; phase_default = `True; seed }
    | 2 ->
      {
        base with
        Cdcl.restart_base = max 1 (base.Cdcl.restart_base / 4);
        random_var_freq = 0.02;
        seed;
      }
    | 3 -> { base with Cdcl.phase_default = `Random; clause_decay = 0.99; seed }
    | _ ->
      {
        base with
        Cdcl.var_decay = 0.99;
        restart_base = base.Cdcl.restart_base * 2;
        phase_default = `Random;
        seed;
      }
  end

type t = {
  spec : spec;
  members : Cdcl.t array;  (* deterministic mode: just the winning member *)
  config_ids : int array;  (* members.(k) runs [member_config config_ids.(k)] *)
  mutable winner : int;  (* member index of the last decisive solve *)
  (* canonical literal sets already broadcast, so repeated solves do not
     re-import the same clause *)
  shared_seen : (int list, unit) Hashtbl.t;
}

let c_solves = Fl_obs.Counter.make "portfolio.solves"
let c_races = Fl_obs.Counter.make "portfolio.races"
let c_cancelled = Fl_obs.Counter.make "portfolio.cancelled"
let c_cubes = Fl_obs.Counter.make "portfolio.cubes"
let c_exported = Fl_obs.Counter.make "portfolio.shared.exported"
let c_imported = Fl_obs.Counter.make "portfolio.shared.imported"

let create spec =
  check_spec spec;
  let config_ids =
    if spec.deterministic then
      [| ((spec.seed mod spec.workers) + spec.workers) mod spec.workers |]
    else Array.init spec.workers Fun.id
  in
  {
    spec;
    members =
      Array.map
        (fun i -> Cdcl.create ~config:(member_config spec i) ())
        config_ids;
    config_ids;
    winner = 0;
    shared_seen = Hashtbl.create 64;
  }

let winner t = t.winner
let ensure_vars t n = Array.iter (fun m -> Cdcl.ensure_vars m n) t.members
let add_clause_a t lits = Array.iter (fun m -> Cdcl.add_clause_a m lits) t.members
let add_clause t lits = Array.iter (fun m -> Cdcl.add_clause m lits) t.members
let value t v = Cdcl.value t.members.(t.winner) v
let model t = Cdcl.model t.members.(t.winner)
let num_vars t = Cdcl.num_vars t.members.(0)
let num_clauses t = Cdcl.num_clauses t.members.(t.winner)
let iter_learnts t f = Cdcl.iter_learnts t.members.(t.winner) f

(* The member-wise sum: monotone in every counter field, so the attack
   session's per-iteration stat deltas keep summing to the totals. *)
let stats t =
  Array.fold_left
    (fun acc m -> Cdcl.add_stats acc (Cdcl.stats m))
    Cdcl.zero_stats t.members

let set_progress t ~every cb =
  Array.iter (fun m -> Cdcl.set_progress m ~every cb) t.members

let clear_progress t = Array.iter Cdcl.clear_progress t.members

(* The [2^d] assumption cubes over the first [d] ranked split variables
   (all sign combinations); [| [] |] — one unconstrained cube — when
   cubing is off or no split variables were provided. *)
let cubes_of spec =
  let d = min spec.cube_depth (Array.length spec.cube_vars) in
  if d <= 0 then [| [] |]
  else
    Array.init (1 lsl d) (fun idx ->
        List.init d (fun j ->
            if idx land (1 lsl j) <> 0 then spec.cube_vars.(j)
            else -spec.cube_vars.(j)))

let outcome_str = function
  | Cdcl.Sat -> "sat"
  | Cdcl.Unsat -> "unsat"
  | Cdcl.Unknown -> "unknown"

let race t assumptions budget =
  Fl_obs.Counter.incr c_races;
  let n = Array.length t.members in
  let cubes = cubes_of t.spec in
  let ncubes = Array.length cubes in
  let stop = Atomic.make false in
  (* Split the conflict budget so the race spends at most the sequential
     allowance in aggregate: per member when racing one cube, per cube
     when cube-and-conquering.  Deadlines need no split — the racers run
     concurrently. *)
  let split_budget =
    if budget.Cdcl.max_conflicts < 0 then budget
    else
      {
        budget with
        Cdcl.max_conflicts =
          max 1 (budget.Cdcl.max_conflicts / max n ncubes);
      }
  in
  let cube_results = Array.make ncubes Cdcl.Unknown in
  let next_cube = Atomic.make 0 in
  let exch_mutex = Mutex.create () in
  let exch = ref [] in
  let task k should_stop =
    let m = t.members.(k) in
    Cdcl.set_interrupt m (fun () -> Atomic.get stop || should_stop ());
    Fun.protect ~finally:(fun () -> Cdcl.clear_interrupt m) @@ fun () ->
    let out = ref Cdcl.Unknown in
    if ncubes = 1 then begin
      let o = Cdcl.solve ~assumptions ~budget:split_budget m in
      (match o with
       | Cdcl.Sat | Cdcl.Unsat -> Atomic.set stop true
       | Cdcl.Unknown -> ());
      out := o
    end
    else begin
      (* Cube-and-conquer: pull cubes until exhausted, stopped or Sat. *)
      let running = ref true in
      while !running do
        if Atomic.get stop || should_stop () then running := false
        else begin
          let i = Atomic.fetch_and_add next_cube 1 in
          if i >= ncubes then running := false
          else begin
            Fl_obs.Counter.incr c_cubes;
            let o =
              Cdcl.solve
                ~assumptions:(assumptions @ cubes.(i))
                ~budget:split_budget m
            in
            cube_results.(i) <- o;
            if o = Cdcl.Sat then begin
              out := Cdcl.Sat;
              Atomic.set stop true;
              running := false
            end
          end
        end
      done
    end;
    (* Export short learnts into the exchange buffer while still on the
       worker domain: the solver is quiescent and owned by this task. *)
    if t.spec.share_max_len > 0 && t.spec.share_cap > 0 then begin
      let mine = ref [] in
      let count = ref 0 in
      (try
         Cdcl.iter_learnts m (fun c ->
             if !count >= t.spec.share_cap then raise Exit;
             if Array.length c <= t.spec.share_max_len then begin
               mine := c :: !mine;
               incr count
             end)
       with Exit -> ());
      match !mine with
      | [] -> ()
      | ms ->
        Fl_obs.Counter.add c_exported !count;
        Mutex.lock exch_mutex;
        List.iter (fun c -> exch := (k, c) :: !exch) ms;
        Mutex.unlock exch_mutex
    end;
    !out
  in
  let member_out = Array.make n Cdcl.Unknown in
  let decisive = ref None in
  Fl_par.with_pool ~name:"portfolio" ~jobs:n (fun pool ->
      let handles = List.init n (fun k -> k, Fl_par.submit pool (task k)) in
      (* Consume settlements as they land; the first decisive member wins
         and the losers are cancelled (their in-flight solves observe the
         [stop] flag through their interrupt hooks within ~256
         conflicts). *)
      let rec drain pending =
        match pending with
        | [] -> ()
        | _ ->
          let i, o = Fl_par.await_any (List.map snd pending) in
          let k, _ = List.nth pending i in
          let rest = List.filteri (fun j _ -> j <> i) pending in
          let out =
            match o with
            | Fl_par.Done v | Fl_par.Late (v, _) -> v
            | Fl_par.Failed _ | Fl_par.Cancelled -> Cdcl.Unknown
          in
          member_out.(k) <- out;
          (match out with
           | (Cdcl.Sat | Cdcl.Unsat) when !decisive = None ->
             decisive := Some (k, out);
             Atomic.set stop true;
             List.iter (fun (_, h) -> Fl_par.cancel h) rest
           | _ -> ());
          drain rest
      in
      drain handles);
  let result =
    match !decisive with
    | Some (k, out) ->
      t.winner <- k;
      out
    | None ->
      (* Cube mode proves Unsat collectively: every cube refuted. *)
      if ncubes > 1 && Array.for_all (fun o -> o = Cdcl.Unsat) cube_results
      then Cdcl.Unsat
      else Cdcl.Unknown
  in
  let cancelled_n =
    if !decisive = None then 0
    else
      Array.fold_left
        (fun a o -> if o = Cdcl.Unknown then a + 1 else a)
        0 member_out
  in
  if cancelled_n > 0 then Fl_obs.Counter.add c_cancelled cancelled_n;
  (* Import the exchanged clauses into every other member now that all
     solvers are quiescent (level 0).  Deduplicated for the lifetime of
     the portfolio via the canonical sorted literal list. *)
  let imported = ref 0 in
  let exported = ref 0 in
  List.iter
    (fun (src, c) ->
      incr exported;
      let key = List.sort compare (Array.to_list c) in
      if not (Hashtbl.mem t.shared_seen key) then begin
        Hashtbl.add t.shared_seen key ();
        Array.iteri
          (fun k m ->
            if k <> src then begin
              Cdcl.add_clause_a m c;
              incr imported
            end)
          t.members
      end)
    (List.rev !exch);
  if !imported > 0 then Fl_obs.Counter.add c_imported !imported;
  if Fl_obs.enabled () then
    Fl_obs.emit "portfolio.race.done"
      ~fields:
        [
          "workers", Fl_obs.Int n;
          "outcome", Fl_obs.String (outcome_str result);
          ( "winner_config",
            Fl_obs.Int
              (match !decisive with
               | Some (k, _) -> t.config_ids.(k)
               | None -> -1) );
          "cancelled", Fl_obs.Int cancelled_n;
          "cubes", Fl_obs.Int (if ncubes > 1 then ncubes else 0);
          "shared_exported", Fl_obs.Int !exported;
          "shared_imported", Fl_obs.Int !imported;
        ];
  result

let solve ?(assumptions = []) ?(budget = Cdcl.no_budget) t =
  Fl_obs.Counter.incr c_solves;
  if Array.length t.members = 1 then begin
    (* Deterministic mode (or a 1-worker portfolio): inline, full budget,
       no domains — sequential semantics. *)
    t.winner <- 0;
    Cdcl.solve ~assumptions ~budget t.members.(0)
  end
  else race t assumptions budget

let backend spec : (module Solver_intf.S) =
  check_spec spec;
  (module struct
    type nonrec t = t

    let create () = create spec
    let ensure_vars = ensure_vars
    let add_clause = add_clause
    let add_clause_a = add_clause_a
    let solve = solve
    let value = value
    let model = model
    let num_vars = num_vars
    let num_clauses = num_clauses
    let stats = stats
    let iter_learnts = iter_learnts
    let set_progress = set_progress
    let clear_progress = clear_progress
  end)
