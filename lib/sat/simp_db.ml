(* Shared occurrence-list clause database for the CNF simplifiers.

   {!Preprocess} (the one-shot SatELite pass) and {!Inprocess} (the
   between-iterations engine) both work on the same representation: packed
   canonical clauses with per-clause 63-bit variable signatures, literal
   occurrence lists with lazy staleness compaction, a subsumption work
   queue, and one elimination stack driving model reconstruction.  This
   module is the single copy of that machinery; the two passes layer their
   own reasoning (subsumption/BVE fixpoints, probing, SCC collapsing,
   XOR/Gauss) on top of it.

   Like {!Solver_intf}, the record is exposed directly — the clients live
   in this library and need structural access to clauses and occurrence
   lists. *)

module Formula = Fl_cnf.Formula

(* Growable int vector (occurrence lists). *)
module Vec = struct
  type t = { mutable data : int array; mutable size : int }

  let create () = { data = [||]; size = 0 }

  let push v x =
    if v.size = Array.length v.data then begin
      let data' = Array.make (max 4 (v.size * 2)) 0 in
      Array.blit v.data 0 data' 0 v.size;
      v.data <- data'
    end;
    v.data.(v.size) <- x;
    v.size <- v.size + 1

  let get v i = v.data.(i)
  let size v = v.size
end

(* Literal index for occurrence lists. *)
let lidx l = (2 * (abs l - 1)) + if l < 0 then 1 else 0

(* Sort by variable; each variable appears at most once per canonical
   clause, so the sign tiebreak never fires within one clause. *)
let lit_compare a b =
  let c = compare (abs a) (abs b) in
  if c <> 0 then c else compare a b

let signature lits =
  Array.fold_left (fun s l -> s lor (1 lsl (abs l mod 63))) 0 lits

(* Canonicalize a literal array in place: sort, drop duplicate literals,
   detect tautologies.  Returns [None] for a tautology, otherwise a
   clause trimmed to its deduplicated prefix — no intermediate lists, so
   loading a large miter stays one packed array per clause.  The caller
   must own [lits] (it is sorted and possibly truncated). *)
let canonical lits =
  Array.sort lit_compare lits;
  let n = Array.length lits in
  let w = ref 0 in
  let taut = ref false in
  (let i = ref 0 in
   while (not !taut) && !i < n do
     let l = lits.(!i) in
     if !i + 1 < n && lits.(!i + 1) = -l then taut := true
     else if !w > 0 && lits.(!w - 1) = l then ()
     else begin
       lits.(!w) <- l;
       incr w
     end;
     incr i
   done);
  if !taut then None
  else Some (if !w = n then lits else Array.sub lits 0 !w)

(* Merge walk over canonical clauses [c] and [d]:
   [`Subsumes] when c ⊆ d; [`Strengthen l] when (c \ {l}) ⊆ d and -l ∈ d
   (self-subsuming resolution removes -l from d); [`No] otherwise. *)
let subsumes c d =
  let lc = Array.length c and ld = Array.length d in
  if lc > ld then `No
  else begin
    let rec go i j flip =
      if i = lc then if flip = 0 then `Subsumes else `Strengthen flip
      else if j = ld then `No
      else begin
        let a = c.(i) and b = d.(j) in
        let va = abs a and vb = abs b in
        if va < vb then `No
        else if va > vb then go i (j + 1) flip
        else if a = b then go (i + 1) (j + 1) flip
        else if flip = 0 then go (i + 1) (j + 1) a
        else `No
      end
    in
    go 0 0 0
  end

type t = {
  nvars : int;
  frozen_set : Bytes.t;  (* var-1 -> '\001' when frozen *)
  mutable cl : int array array;  (* [||] = dead slot *)
  mutable sg : int array;  (* per-clause variable signature *)
  mutable n : int;  (* clause slots used *)
  occ : Vec.t array;  (* literal -> clause indices (stale entries allowed) *)
  queue : int Queue.t;  (* subsumption work list *)
  mutable queued : Bytes.t;  (* clause idx -> queued flag *)
  elim_set : Bytes.t;  (* var-1 -> '\001' when eliminated *)
  mutable elim_stack : (int * int array list) list;
  mutable unsat : bool;
  (* counters *)
  mutable n_taut : int;
  mutable n_dup : int;
  mutable n_sub : int;
  mutable n_str : int;
  mutable n_elim : int;
  mutable n_res : int;
}

let alive db ci = db.cl.(ci) <> [||]
let frozen db v = Bytes.get db.frozen_set (v - 1) = '\001'
let eliminated db v = Bytes.get db.elim_set (v - 1) = '\001'

let enqueue_clause db ci =
  if Bytes.get db.queued ci = '\000' then begin
    Bytes.set db.queued ci '\001';
    Queue.add ci db.queue
  end

let kill db ci =
  if alive db ci then begin
    db.cl.(ci) <- [||];
    db.sg.(ci) <- 0
  end

(* Append a canonical clause; occurrence entries for every literal, queued
   for a subsumption pass. *)
let append db lits =
  if Array.length lits = 0 then begin
    db.unsat <- true;
    -1
  end
  else begin
    if db.n = Array.length db.cl then begin
      let cap = max 64 (db.n * 2) in
      let cl' = Array.make cap [||] in
      Array.blit db.cl 0 cl' 0 db.n;
      db.cl <- cl';
      let sg' = Array.make cap 0 in
      Array.blit db.sg 0 sg' 0 db.n;
      db.sg <- sg';
      let queued' = Bytes.make cap '\000' in
      Bytes.blit db.queued 0 queued' 0 db.n;
      db.queued <- queued'
    end;
    let ci = db.n in
    db.cl.(ci) <- lits;
    db.sg.(ci) <- signature lits;
    db.n <- ci + 1;
    Array.iter (fun l -> Vec.push db.occ.(lidx l) ci) lits;
    enqueue_clause db ci;
    ci
  end

(* Remove literal [l] from clause [ci] (self-subsuming resolution).  The
   occurrence entry for [l] goes stale; the others stay valid. *)
let strengthen db ci l =
  let old = db.cl.(ci) in
  let lits = Array.make (Array.length old - 1) 0 in
  let w = ref 0 in
  Array.iter
    (fun x ->
      if x <> l then begin
        lits.(!w) <- x;
        incr w
      end)
    old;
  if Array.length lits = 0 then db.unsat <- true
  else begin
    db.cl.(ci) <- lits;
    db.sg.(ci) <- signature lits;
    db.n_str <- db.n_str + 1;
    enqueue_clause db ci
  end

(* Live clause indices currently containing literal [l], compacting the
   occurrence list in place. *)
let occurrences db l =
  let v = db.occ.(lidx l) in
  let out = ref [] in
  let w = ref 0 in
  for i = 0 to Vec.size v - 1 do
    let ci = Vec.get v i in
    if alive db ci && Array.exists (fun x -> x = l) db.cl.(ci) then begin
      v.Vec.data.(!w) <- ci;
      incr w;
      out := ci :: !out
    end
  done;
  v.Vec.size <- !w;
  List.rev !out

let occ_count db v = Vec.size db.occ.(lidx v) + Vec.size db.occ.(lidx (-v))

(* Backward subsumption/strengthening with clause [ci] as the subsumer.
   Candidates containing every literal of [ci] lie in occ(p) for any p in
   the clause; candidates reachable by flipping p itself lie in occ(-p) —
   so scanning occ(p) ∪ occ(-p) for one literal p covers both cases
   (SatELite's trick).  p is chosen to minimize the scan. *)
let backward_subsume db ci =
  let c = db.cl.(ci) in
  if Array.length c > 0 then begin
    let best = ref c.(0) in
    let cost l = Vec.size db.occ.(lidx l) + Vec.size db.occ.(lidx (-l)) in
    Array.iter (fun l -> if cost l < cost !best then best := l) c;
    let sig_c = db.sg.(ci) in
    let scan l =
      List.iter
        (fun di ->
          if di <> ci && alive db di && sig_c land lnot db.sg.(di) = 0 then
            match subsumes c db.cl.(di) with
            | `Subsumes ->
              kill db di;
              db.n_sub <- db.n_sub + 1
            | `Strengthen fl ->
              (* c \ {fl} ⊆ d and -fl ∈ d: remove -fl from d. *)
              strengthen db di (-fl)
            | `No -> ())
        (occurrences db l)
    in
    scan !best;
    scan (- !best)
  end

let drain_subsumption db =
  while (not db.unsat) && not (Queue.is_empty db.queue) do
    let ci = Queue.take db.queue in
    Bytes.set db.queued ci '\000';
    if alive db ci then backward_subsume db ci
  done

(* Resolvent of [a] (containing v) and [b] (containing -v) on variable [v];
   [None] when tautological. *)
let resolve v a b =
  let lits = Array.make (Array.length a + Array.length b - 2) 0 in
  let w = ref 0 in
  let take l =
    if abs l <> v then begin
      lits.(!w) <- l;
      incr w
    end
  in
  Array.iter take a;
  Array.iter take b;
  canonical (if !w = Array.length lits then lits else Array.sub lits 0 !w)

(* Record [v] as eliminated with the clauses removed at its elimination —
   the snapshots {!reconstruct_stack} replays. *)
let push_elim db v saved =
  db.elim_stack <- (v, saved) :: db.elim_stack;
  Bytes.set db.elim_set (v - 1) '\001'

(* Bounded variable elimination of [v]: worthwhile when the surviving
   resolvents do not outnumber the removed clauses by more than [growth]. *)
let try_eliminate db ~growth ~max_occ v =
  if not (frozen db v || eliminated db v || db.unsat) then begin
    let pos = occurrences db v and neg = occurrences db (-v) in
    let np = List.length pos and nn = List.length neg in
    if
      np + nn > 0
      && np + nn <= max_occ
      && np * nn <= max_occ * max_occ
    then begin
      let budget = np + nn + growth in
      let resolvents = ref [] in
      let count = ref 0 in
      (try
         List.iter
           (fun pi ->
             List.iter
               (fun ni ->
                 match resolve v db.cl.(pi) db.cl.(ni) with
                 | None -> ()
                 | Some r ->
                   incr count;
                   if !count > budget then raise Exit;
                   resolvents := r :: !resolvents)
               neg)
           pos;
         (* Accepted: snapshot and remove the clauses of v, add the
            resolvents.  The snapshots drive model reconstruction. *)
         let saved = List.map (fun ci -> Array.copy db.cl.(ci)) (pos @ neg) in
         List.iter (kill db) pos;
         List.iter (kill db) neg;
         push_elim db v saved;
         db.n_elim <- db.n_elim + 1;
         List.iter
           (fun r ->
             db.n_res <- db.n_res + 1;
             ignore (append db r))
           !resolvents
       with Exit -> ())
    end
  end

(* One elimination sweep over all variables, cheapest first, draining the
   subsumption queue after each (resolvents re-arm it).  Returns how many
   variables the sweep eliminated. *)
let elimination_sweep db ~growth ~max_occ =
  let before = db.n_elim in
  let order = Array.init db.nvars (fun i -> i + 1) in
  Array.sort (fun a b -> compare (occ_count db a) (occ_count db b)) order;
  Array.iter
    (fun v ->
      try_eliminate db ~growth ~max_occ v;
      drain_subsumption db)
    order;
  db.n_elim - before

(* ------------------------------------------------------------------ *)

let count_occurring_vars db =
  let seen = Bytes.make db.nvars '\000' in
  for ci = 0 to db.n - 1 do
    Array.iter (fun l -> Bytes.set seen (abs l - 1) '\001') db.cl.(ci)
  done;
  let n = ref 0 in
  Bytes.iter (fun c -> if c = '\001' then incr n) seen;
  !n

let live_counts db =
  let clauses = ref 0 and literals = ref 0 in
  for ci = 0 to db.n - 1 do
    if alive db ci then begin
      incr clauses;
      literals := !literals + Array.length db.cl.(ci)
    end
  done;
  !clauses, !literals

(* Load a formula: canonicalize every clause, drop tautologies and exact
   duplicates, count both. *)
let create ~frozen f =
  let nvars = Formula.num_vars f in
  let frozen_set = Bytes.make (max 1 nvars) '\000' in
  Array.iter
    (fun v -> if v >= 1 && v <= nvars then Bytes.set frozen_set (v - 1) '\001')
    frozen;
  let db =
    {
      nvars;
      frozen_set;
      cl = Array.make (max 64 (Formula.num_clauses f)) [||];
      sg = Array.make (max 64 (Formula.num_clauses f)) 0;
      n = 0;
      occ = Array.init (2 * max 1 nvars) (fun _ -> Vec.create ());
      queue = Queue.create ();
      queued = Bytes.make (max 64 (Formula.num_clauses f)) '\000';
      elim_set = Bytes.make (max 1 nvars) '\000';
      elim_stack = [];
      unsat = false;
      n_taut = 0;
      n_dup = 0;
      n_sub = 0;
      n_str = 0;
      n_elim = 0;
      n_res = 0;
    }
  in
  let seen = Hashtbl.create (Formula.num_clauses f) in
  Formula.iter_clauses f (fun clause ->
      (* Copy before canonicalizing: the input formula owns [clause] and
         [canonical] sorts in place. *)
      match canonical (Array.copy clause) with
      | None -> db.n_taut <- db.n_taut + 1
      | Some lits ->
        if Hashtbl.mem seen lits then db.n_dup <- db.n_dup + 1
        else begin
          Hashtbl.add seen lits ();
          ignore (append db lits)
        end);
  db

(* Emit the reduced formula, numbering preserved.  The clause arrays
   transfer ownership: the working db dies with its pass and the
   elimination stack snapshotted its own copies, so the packed clauses
   flow into the formula — and from there into the solver arena —
   without another per-clause materialization. *)
let extract db =
  let reduced = Formula.create () in
  Formula.reserve reduced db.nvars;
  if not db.unsat then
    for ci = 0 to db.n - 1 do
      if alive db ci then Formula.add_clause_a reduced db.cl.(ci)
    done;
  reduced

(* Replay an elimination stack most-recent-first: when variable [v] is
   fixed, every variable eliminated after it already has a value, and the
   clauses saved at [v]'s elimination mention only [v], surviving variables
   and later-eliminated ones — so each clause is decidable.  [v] must be
   true iff some saved clause containing the positive literal is not
   already satisfied by the other literals (resolution completeness
   guarantees the negative-literal clauses are then satisfied too).

   Equivalence substitutions ([v := l], see {!Inprocess}) use the same
   entry shape — saved clauses [[v; -l]; [-v; l]] — and the same rule
   assigns [v] the value of [l], so one replay covers elimination, derived
   units ([[l]]) and substitution uniformly. *)
let reconstruct_stack stack model =
  let need = ref (Array.length model) in
  List.iter (fun (v, _) -> if v + 1 > !need then need := v + 1) stack;
  let m = Array.make !need false in
  Array.blit model 0 m 0 (Array.length model);
  let lit_true l = if l > 0 then m.(l) else not m.(-l) in
  List.iter
    (fun (v, saved) ->
      let forced_true =
        List.exists
          (fun clause ->
            Array.exists (fun l -> l = v) clause
            && not
                 (Array.exists
                    (fun l -> abs l <> v && lit_true l)
                    clause))
          saved
      in
      m.(v) <- forced_true)
    stack;
  m
