(** Conflict-driven clause-learning SAT solver.

    A from-scratch MiniSAT-style solver: two-watched-literal propagation
    with blocking literals, first-UIP conflict analysis, VSIDS decision
    heuristic with a binary heap, phase saving, Luby restarts, incremental
    clause addition and solving under assumptions.  Detailed search
    statistics are exposed because the paper's argument is about the
    *shape* of the search (recursive calls / decisions per attack
    iteration), not just sat/unsat answers.

    Memory layout (DESIGN.md §4e): every clause lives in one flat int
    {!Arena} addressed by word offset; assignments, saved phases and the
    analysis scratch are byte arrays ({!Lit.Lbool}); watcher lists carry
    blocking literals so satisfied clauses are skipped without touching
    the arena. *)

type t

type outcome =
  | Sat
  | Unsat
  | Unknown  (** budget exhausted *)

type stats = {
  decisions : int;
  propagations : int;
  conflicts : int;
  restarts : int;
  learned_clauses : int;
  learned_literals : int;
  reductions : int;  (** learnt-database reductions *)
  max_decision_level : int;
}

val zero_stats : stats

(** [add_stats a b] sums the monotone fields; [max_decision_level] takes the
    max. *)
val add_stats : stats -> stats -> stats

(** [sub_stats a b] is the per-field delta [a - b] of the monotone fields;
    [max_decision_level] (a running max, not a counter) is kept from [a]. *)
val sub_stats : stats -> stats -> stats

(** Resource budget for one {!solve} call.  [max_conflicts < 0] and
    [deadline < 0.] mean unlimited. *)
type budget = { max_conflicts : int; deadline : float  (** Unix time *) }

val no_budget : budget
val budget_conflicts : int -> budget
val budget_seconds : float -> budget

(** Search-heuristic configuration — the knobs a portfolio diversifies
    over.  {!default_config} reproduces the solver's historical
    hard-coded constants bit-for-bit, so a default-configured solver is
    indistinguishable from one created before the knobs existed. *)
type config = {
  var_decay : float;  (** VSIDS activity decay, in (0, 1]; default 0.95 *)
  clause_decay : float;
      (** learnt-clause activity decay, in (0, 1]; default 0.999 *)
  restart_base : int;
      (** conflicts in the first Luby restart segment; default 64 *)
  phase_default : [ `False | `True | `Random ];
      (** polarity of a variable decided before any phase was saved;
          default [`False] *)
  random_var_freq : float;
      (** probability that a decision picks a uniformly random variable
          instead of the VSIDS top, in [0, 1); default 0.0 *)
  seed : int;
      (** seed for [`Random] phases and random decisions; unused (no RNG
          draw ever happens) under the default config *)
}

val default_config : config

(** [create ?config ()] builds an empty solver.
    @raise Invalid_argument when a [config] field is out of range. *)
val create : ?config:config -> unit -> t

(** The configuration the solver was created with. *)
val config : t -> config

(** [set_interrupt s f] arms a cooperative cancellation hook: [f] is
    polled on the budget-check path (every 256 conflicts), and a [true]
    return makes the in-flight {!solve} come back [Unknown].  The solver
    stays fully usable afterwards.  One hook per solver; re-arming
    replaces it, {!clear_interrupt} disarms.  [f] runs on the solving
    domain and must not touch the solver. *)
val set_interrupt : t -> (unit -> bool) -> unit

val clear_interrupt : t -> unit

(** [of_formula f] loads every clause of [f] into a fresh solver. *)
val of_formula : Fl_cnf.Formula.t -> t

(** [ensure_vars s n] makes variables [1..n] known to the solver. *)
val ensure_vars : t -> int -> unit

(** [add_clause s lits] adds a clause (DIMACS literals).  May be called
    between [solve] calls; the solver backtracks to level 0 first.  Adding
    an empty clause makes the instance permanently unsat. *)
val add_clause : t -> int list -> unit

val add_clause_a : t -> int array -> unit

(** [solve ?assumptions ?budget s] runs the CDCL loop.  With assumptions the
    answer is relative to them (Unsat means: unsat under these assumptions).
    Statistics accumulate across calls. *)
val solve : ?assumptions:int list -> ?budget:budget -> t -> outcome

(** [value s v] is the model value of variable [v] after [Sat].
    @raise Invalid_argument if the last call did not return Sat or [v] is
    unknown. *)
val value : t -> int -> bool

(** [model s] is the full model as (variable -> value), index 0 unused. *)
val model : t -> bool array

val num_vars : t -> int

(** Current clause count in the arena (problem + live learnt clauses). *)
val num_clauses : t -> int

(** Live learnt clauses (shrinks when the database is reduced, unlike the
    monotone [stats.learned_clauses]). *)
val num_learnts : t -> int

(** Words currently allocated in the clause arena (live + dead clauses);
    a direct measure of solver-core memory. *)
val arena_words : t -> int

(** [iter_learnts s f] calls [f] on every live learnt clause, as a fresh
    array of DIMACS literals — the export hook for portfolio clause
    sharing.  [f] must not modify the solver. *)
val iter_learnts : t -> (int array -> unit) -> unit

(** [reduce_now s] backtracks to level 0 and forces one learnt-database
    reduction (arena compaction + watch-list rebuild) — the same path
    search takes when the database outgrows its budget.  Exposed for
    tests and inprocessing hooks; a no-op on a permanently-unsat
    solver. *)
val reduce_now : t -> unit

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit

(** [set_progress s ~every cb] arms a periodic progress hook: during search,
    after every [every] conflicts, [cb] is called with the stat deltas
    accumulated since the previous firing (first firing: since arming).
    One hook per solver; re-arming replaces it, {!clear_progress} disarms.
    When disarmed the search loop pays one integer compare per conflict.
    @raise Invalid_argument when [every <= 0]. *)
val set_progress : t -> every:int -> (stats -> unit) -> unit

val clear_progress : t -> unit

(** [solve_formula ?budget f] is a convenience one-shot solve; returns the
    outcome, the model when Sat, and the stats. *)
val solve_formula :
  ?budget:budget -> Fl_cnf.Formula.t -> outcome * bool array option * stats
