(** SAT-based combinational equivalence checking.

    Builds the miter of two acyclic netlists (shared primary inputs, outputs
    pairwise XORed into a disjunction) and decides it with a SAT backend:
    UNSAT proves equivalence, SAT yields a distinguishing counterexample.
    Key inputs, when present, are pinned to caller-supplied values — this is
    how a recovered attack key is checked {e formally} rather than by
    sampling. *)

type verdict =
  | Equivalent
  | Different of { inputs : bool array; outputs_a : bool array; outputs_b : bool array }
      (** concrete counterexample *)
  | Unknown  (** solver budget exhausted *)

module type S = sig
  (** [check ?budget ?keys_a ?keys_b a b] compares circuit [a] under key
      [keys_a] with circuit [b] under [keys_b] ([ [||] ] by default).
      @raise Invalid_argument when input/output counts differ, a circuit is
      cyclic, or a key length mismatches. *)
  val check :
    ?budget:Cdcl.budget ->
    ?keys_a:bool array ->
    ?keys_b:bool array ->
    Fl_netlist.Circuit.t ->
    Fl_netlist.Circuit.t ->
    verdict

  (** [check_key ?budget ~locked ~oracle key] — formal version of
      {!Fl_locking.Locked.key_matches}: proves the key correct instead of
      sampling vectors (acyclic locked netlists only). *)
  val check_key :
    ?budget:Cdcl.budget ->
    locked:Fl_netlist.Circuit.t ->
    oracle:Fl_netlist.Circuit.t ->
    bool array ->
    verdict
end

(** Equivalence checking over any {!Solver_intf.S} backend. *)
module Make (_ : Solver_intf.S) : S

(** The default instance, decided by {!Cdcl}. *)
include S

val pp_verdict : Format.formatter -> verdict -> unit
