(** Portfolio + cube-and-conquer parallel SAT backend.

    A {!Solver_intf.S}-conforming backend that keeps [workers] diverse
    {!Cdcl} instances loaded with the same clause set and, per [solve]
    call, either:

    - {e races} them across domains (one {!Fl_par} streamed task per
      member, each with a [1/workers] conflict-budget slice): the first
      member to reach a decisive Sat/Unsat answer wins, the losers are
      cooperatively cancelled through {!Cdcl.set_interrupt}; or
    - {e cube-and-conquers} ([cube_depth > 0]): the assumption space is
      split into [2^cube_depth] cubes over the highest-fanout key
      variables ([cube_vars], ranked by the caller — see
      [Fl_attacks.Session]), members pull cubes from a shared counter,
      any Sat cube decides Sat, and all-cubes-Unsat decides Unsat; or
    - runs {e deterministically} ([deterministic = true]): a single
      member — picked by [seed mod workers] — solves inline with the full
      budget and no domains, so results (and DIP sequences) are
      bit-for-bit reproducible; with [seed mod workers = 0] they equal
      the plain sequential {!Cdcl} reference.

    After every race the members exchange learnt clauses: each member's
    short learnts ([<= share_max_len] literals, at most [share_cap] per
    member per solve) are collected on the worker domain into a
    mutex-guarded buffer and imported into the other members at the solve
    boundary (level 0).  This is sound because a CDCL learnt clause is a
    resolvent of database clauses only — assumptions never enter the
    resolution, they merely remain as literals — and every member holds
    the same database.

    [stats] is the member-wise sum (so per-iteration deltas measured by
    the attack session stay monotone and sum correctly); [value] /
    [model] / [iter_learnts] read the winning member.  Counters
    [portfolio.*] and one [portfolio.race.done] event per race feed the
    observability layer. *)

type spec = {
  workers : int;  (** member count, >= 1 *)
  seed : int;  (** diversification seed; picks the deterministic winner *)
  deterministic : bool;  (** fixed winner by seed, no domains, no sharing *)
  cube_depth : int;  (** split on [2^depth] cubes; 0 = plain racing *)
  cube_vars : int array;
      (** DIMACS variables to split on, best first; cubing is skipped
          when fewer than [cube_depth] are given *)
  share_max_len : int;  (** max literals of a shared learnt; 0 disables *)
  share_cap : int;  (** max clauses exported per member per solve *)
  base_config : Cdcl.config;
      (** member 0's configuration; the other members diversify from it *)
}

(** [workers = 2], [seed = 0], racing (non-deterministic), no cubing,
    share clauses of at most 8 literals, 512 per member per solve,
    {!Cdcl.default_config} as the base. *)
val default_spec : spec

(** [member_config spec i] is the {!Cdcl.config} member [i] runs:
    member 0 runs [spec.base_config] unchanged (the reference
    configuration), members 1.. cycle through restart / decay / phase /
    random-decision variations seeded from [spec.seed]. *)
val member_config : spec -> int -> Cdcl.config

type t

(** [create spec] builds a portfolio instance.  Deterministic mode
    instantiates only the winning member.
    @raise Invalid_argument when a [spec] field is out of range. *)
val create : spec -> t

(** The member index whose answer the last decisive [solve] adopted
    (0 before any).  [value]/[model]/[iter_learnts] read this member. *)
val winner : t -> int

(** [backend spec] packs the portfolio as a first-class
    {!Solver_intf.S} module whose [create ()] is [create spec]. *)
val backend : spec -> (module Solver_intf.S)

(** The {!Solver_intf.S} operations, usable directly. *)

val ensure_vars : t -> int -> unit
val add_clause : t -> int list -> unit
val add_clause_a : t -> int array -> unit
val solve : ?assumptions:int list -> ?budget:Cdcl.budget -> t -> Cdcl.outcome
val value : t -> int -> bool
val model : t -> bool array
val num_vars : t -> int
val num_clauses : t -> int
val stats : t -> Cdcl.stats
val iter_learnts : t -> (int array -> unit) -> unit
val set_progress : t -> every:int -> (Cdcl.stats -> unit) -> unit
val clear_progress : t -> unit
