(* Bounded inprocessing over a CNF: failed-literal probing, equivalent-
   literal SCC collapsing and XOR recovery + GF(2) Gaussian elimination,
   layered on the shared {!Simp_db} clause database (subsumption, bounded
   variable elimination, elimination-stack model reconstruction).

   Unlike {!Preprocess}, which runs once at session creation, this engine
   is built to re-run over a formula that has grown an incremental
   observation tail: the attack loop calls it every N DIP iterations,
   swaps the reduced formula in, and rebuilds the solver.  Derived units
   and equivalences are folded into the same reconstruction stack shape
   {!Preprocess} uses — a unit [l] is recorded as the elimination entry
   [(v, [[l]])] and an equivalence [v := l] as [(v, [[v; -l]; [-v; l]])],
   so {!Simp_db.reconstruct_stack} replays all three uniformly.

   Frozen variables (the attack interface) are never substituted or
   eliminated; a unit derived on a frozen variable stays in the reduced
   formula as a unit clause so later-added clauses still interact with
   it. *)

module Formula = Fl_cnf.Formula

let c_runs = Fl_obs.Counter.make "inprocess.runs"
let c_units = Fl_obs.Counter.make "inprocess.units"
let c_failed = Fl_obs.Counter.make "inprocess.failed_literals"
let c_collapsed = Fl_obs.Counter.make "inprocess.equiv_collapsed"
let c_xor_rows = Fl_obs.Counter.make "inprocess.xor_rows"
let c_gauss_pivots = Fl_obs.Counter.make "inprocess.gauss_pivots"
let c_clauses_removed = Fl_obs.Counter.make "inprocess.clauses_removed"
let h_probe_yield = Fl_obs.Hist.make "inprocess.probe_yield"
let h_xor_rows = Fl_obs.Hist.make "inprocess.xor_rows_per_run"
let h_gauss_pivots = Fl_obs.Hist.make "inprocess.gauss_pivots_per_run"

type stats = {
  vars_before : int;
  vars_after : int;
  clauses_before : int;
  clauses_after : int;
  literals_before : int;
  literals_after : int;
  probes : int;
  failed_literals : int;
  shared_implications : int;
  hyper_binaries : int;
  equiv_classes : int;
  equiv_collapsed : int;
  xor_rows : int;
  gauss_pivots : int;
  gauss_units : int;
  gauss_equivs : int;
  units : int;
  subsumed : int;
  strengthened : int;
  eliminated : int;
  resolvents : int;
  rounds : int;
  wall_s : float;
}

type t = {
  reduced : Formula.t;
  unsat : bool;
  stack : (int * int array list) list;
  assign : Bytes.t;  (* var-1 -> '\000' open, '\001' true, '\002' false *)
  subst : int array;  (* var-1 -> representative literal, 0 = itself *)
  elim : Bytes.t;  (* the db's elim_set, for {!map_clause} *)
  nvars : int;
  st : stats;
}

(* Reusable probe buffers, sized to 2*nvars literal slots: the per-probe
   assignment marks and the positive-probe implication set.  A Session
   keeps one scratch across all its inprocessing runs so the repeated
   passes do not reallocate the O(vars) working set every time. *)
type scratch = {
  mutable pval : Bytes.t;  (* lidx -> '\001' when the literal is true *)
  mutable pmark : Bytes.t;  (* lidx -> '\001' when implied by probe(+v) *)
  trail : Simp_db.Vec.t;
}

let scratch () =
  { pval = Bytes.empty; pmark = Bytes.empty; trail = Simp_db.Vec.create () }

let ensure_scratch scr n2 =
  if Bytes.length scr.pval < n2 then begin
    scr.pval <- Bytes.make n2 '\000';
    scr.pmark <- Bytes.make n2 '\000'
  end

(* Mutable pass state: the clause db plus derived-fact maps and work
   counters. *)
type state = {
  db : Simp_db.t;
  assign : Bytes.t;
  subst : int array;
  unit_queue : int Queue.t;
  mutable prop_budget : int;  (* probing clause-visit budget *)
  mutable hyper_budget : int;
  mutable n_units : int;
  mutable n_probes : int;
  mutable n_failed : int;
  mutable n_shared : int;
  mutable n_hyper : int;
  mutable n_classes : int;
  mutable n_collapsed : int;
  mutable n_xor_rows : int;
  mutable n_gauss_pivots : int;
  mutable n_gauss_units : int;
  mutable n_gauss_equivs : int;
}

let truth st l =
  match Bytes.get st.assign (abs l - 1) with
  | '\000' -> `Open
  | '\001' -> if l > 0 then `True else `False
  | _ -> if l > 0 then `False else `True

let enqueue_unit st l =
  match truth st l with
  | `True -> ()
  | `False -> st.db.Simp_db.unsat <- true
  | `Open -> Queue.add l st.unit_queue

(* Commit queued units: satisfied clauses die, falsified literals are
   stripped (cascading into new units).  A non-frozen variable is recorded
   on the elimination stack as [(v, [[l]])] — reconstruction then forces
   it to [l]'s value; a frozen variable keeps a unit clause in the db so
   clauses added after this pass still see the assignment. *)
let apply_units st =
  let db = st.db in
  while (not db.Simp_db.unsat) && not (Queue.is_empty st.unit_queue) do
    let l = Queue.take st.unit_queue in
    match truth st l with
    | `True -> ()
    | `False -> db.Simp_db.unsat <- true
    | `Open ->
      let v = abs l in
      if not (Simp_db.eliminated db v) then begin
        Bytes.set st.assign (v - 1) (if l > 0 then '\001' else '\002');
        st.n_units <- st.n_units + 1;
        List.iter (Simp_db.kill db) (Simp_db.occurrences db l);
        List.iter
          (fun ci ->
            Simp_db.strengthen db ci (-l);
            if (not db.Simp_db.unsat) && Simp_db.alive db ci then begin
              let c = db.Simp_db.cl.(ci) in
              if Array.length c = 1 then enqueue_unit st c.(0)
            end)
          (Simp_db.occurrences db (-l));
        if Simp_db.frozen db v then ignore (Simp_db.append db [| l |])
        else Simp_db.push_elim db v [ [| l |] ]
      end
  done

let harvest_units st =
  let db = st.db in
  for ci = 0 to db.Simp_db.n - 1 do
    if Simp_db.alive db ci then begin
      let c = db.Simp_db.cl.(ci) in
      if Array.length c = 1 then enqueue_unit st c.(0)
    end
  done;
  apply_units st

(* ------------------------------------------------------------------ *)
(* Pass 1: failed-literal probing                                      *)
(* ------------------------------------------------------------------ *)

(* BCP from [root] under the probe-local assignment [scr.pval]; every
   propagated literal lands on [scr.trail] (root first).  [on_hyper]
   receives literals propagated through a clause longer than two — each is
   a hyper-binary resolvent (¬root ∨ lit) of the root with a clause chain.
   Returns [true] on conflict.  The caller must undo the trail. *)
let probe st scr root ~on_hyper =
  let db = st.db in
  let tr = scr.trail in
  tr.Simp_db.Vec.size <- 0;
  let set l =
    Bytes.set scr.pval (Simp_db.lidx l) '\001';
    Simp_db.Vec.push tr l
  in
  let ptrue l = Bytes.get scr.pval (Simp_db.lidx l) = '\001' in
  set root;
  let conflict = ref false in
  let i = ref 0 in
  (try
     while !i < Simp_db.Vec.size tr do
       let t = Simp_db.Vec.get tr !i in
       incr i;
       (* Clauses that may have lost the literal ¬t.  Stale occurrence
          entries just cost a scan: evaluating any live clause is sound. *)
       let occ = db.Simp_db.occ.(Simp_db.lidx (-t)) in
       for oi = 0 to Simp_db.Vec.size occ - 1 do
         let ci = Simp_db.Vec.get occ oi in
         if Simp_db.alive db ci then begin
           st.prop_budget <- st.prop_budget - 1;
           let c = db.Simp_db.cl.(ci) in
           let len = Array.length c in
           let sat = ref false and unassigned = ref 0 and u = ref 0 in
           let j = ref 0 in
           while (not !sat) && !j < len do
             let l = c.(!j) in
             if ptrue l then sat := true
             else if not (ptrue (-l)) then begin
               incr unassigned;
               u := l
             end;
             incr j
           done;
           if not !sat then begin
             if !unassigned = 0 then begin
               conflict := true;
               raise Exit
             end
             else if !unassigned = 1 then begin
               set !u;
               if len > 2 then on_hyper !u
             end
           end
         end
       done
     done
   with Exit -> ());
  !conflict

let undo_trail scr =
  let tr = scr.trail in
  for i = 0 to Simp_db.Vec.size tr - 1 do
    Bytes.set scr.pval (Simp_db.lidx (Simp_db.Vec.get tr i)) '\000'
  done;
  tr.Simp_db.Vec.size <- 0

(* Probe both polarities of the highest-occurrence variables touching the
   binary implication graph.  A conflicting probe of [l] makes ¬l a unit
   (failed literal); a literal implied by both polarities is a unit too
   (shared implication); implications through long clauses become
   hyper-binary clauses, thickening the BIG for the SCC pass. *)
let probe_pass st scr ~max_probes =
  let db = st.db in
  let nv = db.Simp_db.nvars in
  let has_bin = Bytes.make (max 1 nv) '\000' in
  for ci = 0 to db.Simp_db.n - 1 do
    if Simp_db.alive db ci && Array.length db.Simp_db.cl.(ci) = 2 then
      Array.iter
        (fun l -> Bytes.set has_bin (abs l - 1) '\001')
        db.Simp_db.cl.(ci)
  done;
  let cands = ref [] in
  for v = nv downto 1 do
    if
      Bytes.get has_bin (v - 1) = '\001'
      && (not (Simp_db.eliminated db v))
      && truth st v = `Open
    then cands := v :: !cands
  done;
  let roots = Array.of_list !cands in
  Array.sort
    (fun a b -> compare (Simp_db.occ_count db b) (Simp_db.occ_count db a))
    roots;
  let n_roots = min max_probes (Array.length roots) in
  let add_hyper root u =
    if st.hyper_budget > 0 then begin
      st.hyper_budget <- st.hyper_budget - 1;
      st.n_hyper <- st.n_hyper + 1;
      match Simp_db.canonical [| -root; u |] with
      | Some lits -> ignore (Simp_db.append db lits)
      | None -> ()
    end
  in
  (try
     for ri = 0 to n_roots - 1 do
       if db.Simp_db.unsat || st.prop_budget <= 0 then raise Exit;
       let v = roots.(ri) in
       if (not (Simp_db.eliminated db v)) && truth st v = `Open then begin
         st.n_probes <- st.n_probes + 1;
         let pos_hypers = ref [] in
         if probe st scr v ~on_hyper:(fun u -> pos_hypers := u :: !pos_hypers)
         then begin
           undo_trail scr;
           st.n_failed <- st.n_failed + 1;
           enqueue_unit st (-v);
           apply_units st
         end
         else begin
           (* Snapshot the positive implications, then probe ¬v. *)
           let tr = scr.trail in
           let pos = Array.sub tr.Simp_db.Vec.data 0 (Simp_db.Vec.size tr) in
           Array.iter
             (fun l -> Bytes.set scr.pmark (Simp_db.lidx l) '\001')
             pos;
           undo_trail scr;
           List.iter (add_hyper v) !pos_hypers;
           let neg_hypers = ref [] in
           let conflict =
             probe st scr (-v) ~on_hyper:(fun u ->
                 neg_hypers := u :: !neg_hypers)
           in
           let shared = ref [] in
           if not conflict then begin
             let tr = scr.trail in
             for i = 1 to Simp_db.Vec.size tr - 1 do
               let l = Simp_db.Vec.get tr i in
               if Bytes.get scr.pmark (Simp_db.lidx l) = '\001' then
                 shared := l :: !shared
             done
           end;
           undo_trail scr;
           Array.iter
             (fun l -> Bytes.set scr.pmark (Simp_db.lidx l) '\000')
             pos;
           if conflict then begin
             st.n_failed <- st.n_failed + 1;
             enqueue_unit st v
           end
           else begin
             List.iter (add_hyper (-v)) !neg_hypers;
             st.n_shared <- st.n_shared + List.length !shared;
             List.iter (enqueue_unit st) !shared
           end;
           apply_units st
         end
       end
     done
   with Exit -> ())

(* ------------------------------------------------------------------ *)
(* Pass 2: 2-SAT SCC equivalent-literal collapsing                     *)
(* ------------------------------------------------------------------ *)

let lit_of_lidx i = (if i land 1 = 1 then -1 else 1) * ((i / 2) + 1)

(* Tarjan over the binary implication graph (nodes = literals; a binary
   clause (a ∨ b) contributes ¬a→b and ¬b→a).  Literals in one strongly
   connected component are equal in every model: a class with a literal
   and its own negation makes the formula unsat; otherwise every
   non-frozen member is substituted by the class representative (frozen
   preferred, then smallest variable) and recorded on the elimination
   stack as the two equivalence clauses. *)
let scc_pass st =
  let db = st.db in
  let n2 = 2 * max 1 db.Simp_db.nvars in
  (* CSR adjacency. *)
  let deg = Array.make n2 0 in
  let count_edges ci =
    if Simp_db.alive db ci && Array.length db.Simp_db.cl.(ci) = 2 then begin
      let c = db.Simp_db.cl.(ci) in
      deg.(Simp_db.lidx (-c.(0))) <- deg.(Simp_db.lidx (-c.(0))) + 1;
      deg.(Simp_db.lidx (-c.(1))) <- deg.(Simp_db.lidx (-c.(1))) + 1
    end
  in
  for ci = 0 to db.Simp_db.n - 1 do
    count_edges ci
  done;
  let start = Array.make (n2 + 1) 0 in
  for i = 0 to n2 - 1 do
    start.(i + 1) <- start.(i) + deg.(i)
  done;
  let adj = Array.make (max 1 start.(n2)) 0 in
  let fill = Array.copy start in
  for ci = 0 to db.Simp_db.n - 1 do
    if Simp_db.alive db ci && Array.length db.Simp_db.cl.(ci) = 2 then begin
      let c = db.Simp_db.cl.(ci) in
      let edge src dst =
        adj.(fill.(src)) <- dst;
        fill.(src) <- fill.(src) + 1
      in
      edge (Simp_db.lidx (-c.(0))) (Simp_db.lidx c.(1));
      edge (Simp_db.lidx (-c.(1))) (Simp_db.lidx c.(0))
    end
  done;
  (* Iterative Tarjan. *)
  let comp = Array.make n2 (-1) in
  let index = Array.make n2 (-1) in
  let low = Array.make n2 0 in
  let on = Bytes.make n2 '\000' in
  let stk = ref [] in
  let next_index = ref 0 and next_comp = ref 0 in
  let frames = Stack.create () in
  let discover u =
    index.(u) <- !next_index;
    low.(u) <- !next_index;
    incr next_index;
    stk := u :: !stk;
    Bytes.set on u '\001';
    Stack.push (u, ref start.(u)) frames
  in
  for s = 0 to n2 - 1 do
    if index.(s) < 0 then begin
      discover s;
      while not (Stack.is_empty frames) do
        let u, pi = Stack.top frames in
        if !pi < start.(u + 1) then begin
          let w = adj.(!pi) in
          incr pi;
          if index.(w) < 0 then discover w
          else if Bytes.get on w = '\001' && index.(w) < low.(u) then
            low.(u) <- index.(w)
        end
        else begin
          ignore (Stack.pop frames);
          (match Stack.top_opt frames with
           | Some (p, _) -> if low.(u) < low.(p) then low.(p) <- low.(u)
           | None -> ());
          if low.(u) = index.(u) then begin
            let closed = ref false in
            while not !closed do
              match !stk with
              | w :: rest ->
                stk := rest;
                Bytes.set on w '\000';
                comp.(w) <- !next_comp;
                if w = u then closed := true
              | [] -> closed := true
            done;
            incr next_comp
          end
        end
      done
    end
  done;
  (* l and ¬l in one component: the implications force l ↔ ¬l. *)
  for v = 1 to db.Simp_db.nvars do
    if comp.(Simp_db.lidx v) = comp.(Simp_db.lidx (-v)) then
      db.Simp_db.unsat <- true
  done;
  if not db.Simp_db.unsat then begin
    let members = Array.make !next_comp [] in
    for i = n2 - 1 downto 0 do
      let v = (i / 2) + 1 in
      if (not (Simp_db.eliminated db v)) && truth st v = `Open then
        members.(comp.(i)) <- lit_of_lidx i :: members.(comp.(i))
    done;
    let subst_vars = ref [] in
    Array.iter
      (fun cls ->
        match cls with
        | [] | [ _ ] -> ()
        | cls ->
          (* Representative: frozen first, then smallest variable.  The
             mirror component substitutes nothing further: its members'
             variables are already eliminated here (except the rep's). *)
          let better a b =
            let fa = Simp_db.frozen db (abs a)
            and fb = Simp_db.frozen db (abs b) in
            if fa <> fb then fa else abs a < abs b
          in
          let rep =
            List.fold_left (fun r l -> if better l r then l else r)
              (List.hd cls) cls
          in
          let collapsed = ref false in
          List.iter
            (fun m ->
              let v = abs m in
              if
                m <> rep && v <> abs rep
                && (not (Simp_db.frozen db v))
                && not (Simp_db.eliminated db v)
              then begin
                let target = if m > 0 then rep else -rep in
                st.subst.(v - 1) <- target;
                Simp_db.push_elim db v
                  [ [| v; -target |]; [| -v; target |] ];
                st.n_collapsed <- st.n_collapsed + 1;
                collapsed := true;
                subst_vars := v :: !subst_vars
              end)
            cls;
          if !collapsed then st.n_classes <- st.n_classes + 1)
      members;
    (* Rewrite every clause touching a substituted variable. *)
    let map_lit l =
      let s = st.subst.(abs l - 1) in
      if s = 0 then l else if l > 0 then s else -s
    in
    List.iter
      (fun v ->
        List.iter
          (fun ci ->
            let mapped = Array.map map_lit db.Simp_db.cl.(ci) in
            Simp_db.kill db ci;
            match Simp_db.canonical mapped with
            | None -> ()
            | Some lits -> ignore (Simp_db.append db lits))
          (Simp_db.occurrences db v @ Simp_db.occurrences db (-v)))
      !subst_vars;
    harvest_units st
  end

(* ------------------------------------------------------------------ *)
(* Pass 3: XOR recovery + GF(2) Gaussian elimination                   *)
(* ------------------------------------------------------------------ *)

let popcount m =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go m 0

(* Symmetric difference of two sorted variable arrays. *)
let sym_diff a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make (la + lb) 0 in
  let w = ref 0 and i = ref 0 and j = ref 0 in
  while !i < la && !j < lb do
    let x = a.(!i) and y = b.(!j) in
    if x = y then begin
      incr i;
      incr j
    end
    else if x < y then begin
      out.(!w) <- x;
      incr w;
      incr i
    end
    else begin
      out.(!w) <- y;
      incr w;
      incr j
    end
  done;
  while !i < la do
    out.(!w) <- a.(!i);
    incr w;
    incr i
  done;
  while !j < lb do
    out.(!w) <- b.(!j);
    incr w;
    incr j
  done;
  Array.sub out 0 !w

(* A k-ary XOR constraint x1⊕…⊕xk = b appears in CNF as the 2^(k-1)
   clauses over the same variable set whose positive-literal count p
   satisfies p ≡ k-1+b (mod 2) — exactly what {!Fl_cnf.Tseytin}'s xor2
   encoding (and the RLL XOR/XNOR gates) emit.  Detection buckets the
   canonical clauses by variable set and checks one parity class for
   completeness; recovered rows then run through sparse GF(2) elimination
   with back-substitution, and the resulting singleton rows (units) and
   pair rows (equivalences) are exported back to CNF — the SCC pass
   collapses the equivalences, cancelling whole chains. *)
let xor_pass st ~max_arity =
  let db = st.db in
  let tbl = Hashtbl.create 512 in
  for ci = 0 to db.Simp_db.n - 1 do
    if Simp_db.alive db ci then begin
      let c = db.Simp_db.cl.(ci) in
      let k = Array.length c in
      if k >= 3 && k <= max_arity then begin
        let vars = Array.map abs c in
        let mask = ref 0 in
        Array.iteri (fun i l -> if l > 0 then mask := !mask lor (1 lsl i)) c;
        let key = Array.to_list vars in
        match Hashtbl.find_opt tbl key with
        | Some r -> r := !mask :: !r
        | None -> Hashtbl.add tbl key (ref [ !mask ])
      end
    end
  done;
  let rows = ref [] in
  Hashtbl.iter
    (fun key masks ->
      let k = List.length key in
      let need = 1 lsl (k - 1) in
      let ms = List.sort_uniq compare !masks in
      if List.length ms >= need then begin
        let even =
          List.length (List.filter (fun m -> popcount m land 1 = 0) ms)
        in
        let odd = List.length ms - even in
        if even = need then
          rows := (Array.of_list key, (1 + k) land 1 = 1) :: !rows;
        if odd = need then rows := (Array.of_list key, k land 1 = 1) :: !rows
      end)
    tbl;
  st.n_xor_rows <- st.n_xor_rows + List.length !rows;
  (* Forward elimination, pivots keyed by each row's smallest variable. *)
  let pivots = Hashtbl.create 64 in
  let rec reduce vars rhs =
    if Array.length vars = 0 then vars, rhs
    else
      match Hashtbl.find_opt pivots vars.(0) with
      | None -> vars, rhs
      | Some (pv, pr) ->
        st.n_gauss_pivots <- st.n_gauss_pivots + 1;
        reduce (sym_diff vars pv) (rhs <> pr)
  in
  List.iter
    (fun (vars, rhs) ->
      let vars, rhs = reduce vars rhs in
      if Array.length vars = 0 then begin
        if rhs then db.Simp_db.unsat <- true
      end
      else Hashtbl.replace pivots vars.(0) (vars, rhs))
    !rows;
  (* Back-substitution, largest pivot first: afterwards every row's tail
     holds only free variables, so short rows are direct consequences. *)
  let leads =
    List.sort (fun a b -> compare b a)
      (Hashtbl.fold (fun k _ acc -> k :: acc) pivots [])
  in
  List.iter
    (fun lead ->
      match Hashtbl.find_opt pivots lead with
      | None -> ()
      | Some (vars0, rhs0) ->
        let vars = ref vars0 and rhs = ref rhs0 in
        let again = ref true in
        while !again do
          again := false;
          (try
             Array.iteri
               (fun i v ->
                 if i > 0 then
                   match Hashtbl.find_opt pivots v with
                   | Some (pv, pr) when v <> lead ->
                     st.n_gauss_pivots <- st.n_gauss_pivots + 1;
                     vars := sym_diff !vars pv;
                     rhs := !rhs <> pr;
                     again := true;
                     raise Exit
                   | _ -> ())
               !vars
           with Exit -> ())
        done;
        Hashtbl.replace pivots lead (!vars, !rhs))
    leads;
  if not db.Simp_db.unsat then begin
    Hashtbl.iter
      (fun _ (vars, rhs) ->
        match Array.length vars with
        | 1 ->
          st.n_gauss_units <- st.n_gauss_units + 1;
          enqueue_unit st (if rhs then vars.(0) else -vars.(0))
        | 2 ->
          let x = vars.(0) and y = vars.(1) in
          st.n_gauss_equivs <- st.n_gauss_equivs + 1;
          if rhs then begin
            (* x ⊕ y = 1 *)
            ignore (Simp_db.append db [| x; y |]);
            ignore (Simp_db.append db [| -x; -y |])
          end
          else begin
            ignore (Simp_db.append db [| x; -y |]);
            ignore (Simp_db.append db [| -x; y |])
          end
        | _ -> ())
      pivots;
    apply_units st
  end

(* ------------------------------------------------------------------ *)

let run ?(rounds = 2) ?(max_probes = 512) ?(max_xor_arity = 5) ?(growth = 0)
    ?(max_occ = 30) ?(probe = true) ?(scc = true) ?(xor = true) ?(elim = true)
    ?scratch:scr ?(label = "inprocess") ~frozen f =
  Fl_obs.with_span "inprocess.run" @@ fun () ->
  let t0 = Unix.gettimeofday () in
  Fl_obs.Counter.incr c_runs;
  let db = Simp_db.create ~frozen f in
  let scr = match scr with Some s -> s | None -> scratch () in
  ensure_scratch scr (2 * max 1 db.Simp_db.nvars);
  let st =
    {
      db;
      assign = Bytes.make (max 1 db.Simp_db.nvars) '\000';
      subst = Array.make (max 1 db.Simp_db.nvars) 0;
      unit_queue = Queue.create ();
      prop_budget = 4_000_000;
      hyper_budget = 4_096;
      n_units = 0;
      n_probes = 0;
      n_failed = 0;
      n_shared = 0;
      n_hyper = 0;
      n_classes = 0;
      n_collapsed = 0;
      n_xor_rows = 0;
      n_gauss_pivots = 0;
      n_gauss_units = 0;
      n_gauss_equivs = 0;
    }
  in
  let vars_before = Simp_db.count_occurring_vars db in
  let clauses_before = Formula.num_clauses f in
  let literals_before = Formula.num_literals f in
  harvest_units st;
  Simp_db.drain_subsumption db;
  let round = ref 0 in
  let progressing = ref true in
  while !progressing && (not db.Simp_db.unsat) && !round < rounds do
    incr round;
    let mark =
      st.n_units + st.n_collapsed + db.Simp_db.n_elim + db.Simp_db.n_sub
    in
    if xor && not db.Simp_db.unsat then xor_pass st ~max_arity:max_xor_arity;
    if probe && not db.Simp_db.unsat then probe_pass st scr ~max_probes;
    if scc && not db.Simp_db.unsat then scc_pass st;
    if not db.Simp_db.unsat then begin
      harvest_units st;
      Simp_db.drain_subsumption db
    end;
    if elim && not db.Simp_db.unsat then
      ignore (Simp_db.elimination_sweep db ~growth ~max_occ);
    progressing :=
      st.n_units + st.n_collapsed + db.Simp_db.n_elim + db.Simp_db.n_sub
      > mark
  done;
  let reduced = Simp_db.extract db in
  let clauses_after, literals_after = Simp_db.live_counts db in
  let stats =
    {
      vars_before;
      vars_after = Simp_db.count_occurring_vars db;
      clauses_before;
      clauses_after;
      literals_before;
      literals_after;
      probes = st.n_probes;
      failed_literals = st.n_failed;
      shared_implications = st.n_shared;
      hyper_binaries = st.n_hyper;
      equiv_classes = st.n_classes;
      equiv_collapsed = st.n_collapsed;
      xor_rows = st.n_xor_rows;
      gauss_pivots = st.n_gauss_pivots;
      gauss_units = st.n_gauss_units;
      gauss_equivs = st.n_gauss_equivs;
      units = st.n_units;
      subsumed = db.Simp_db.n_sub;
      strengthened = db.Simp_db.n_str;
      eliminated = db.Simp_db.n_elim;
      resolvents = db.Simp_db.n_res;
      rounds = !round;
      wall_s = Unix.gettimeofday () -. t0;
    }
  in
  Fl_obs.Counter.add c_units stats.units;
  Fl_obs.Counter.add c_failed stats.failed_literals;
  Fl_obs.Counter.add c_collapsed stats.equiv_collapsed;
  Fl_obs.Counter.add c_xor_rows stats.xor_rows;
  Fl_obs.Counter.add c_gauss_pivots stats.gauss_pivots;
  Fl_obs.Counter.add c_clauses_removed
    (max 0 (stats.clauses_before - stats.clauses_after));
  if Fl_obs.deep_enabled () then begin
    Fl_obs.Hist.record h_probe_yield
      (stats.failed_literals + stats.shared_implications);
    Fl_obs.Hist.record h_xor_rows stats.xor_rows;
    Fl_obs.Hist.record h_gauss_pivots stats.gauss_pivots
  end;
  if Fl_obs.enabled () then
    Fl_obs.emit "inprocess.done"
      ~fields:
        [
          "label", Fl_obs.String label;
          "rounds", Fl_obs.Int stats.rounds;
          "vars_before", Fl_obs.Int stats.vars_before;
          "vars_after", Fl_obs.Int stats.vars_after;
          "clauses_before", Fl_obs.Int stats.clauses_before;
          "clauses_after", Fl_obs.Int stats.clauses_after;
          "probes", Fl_obs.Int stats.probes;
          "failed_literals", Fl_obs.Int stats.failed_literals;
          "shared_implications", Fl_obs.Int stats.shared_implications;
          "hyper_binaries", Fl_obs.Int stats.hyper_binaries;
          "equiv_collapsed", Fl_obs.Int stats.equiv_collapsed;
          "xor_rows", Fl_obs.Int stats.xor_rows;
          "gauss_units", Fl_obs.Int stats.gauss_units;
          "gauss_equivs", Fl_obs.Int stats.gauss_equivs;
          "units", Fl_obs.Int stats.units;
          "eliminated", Fl_obs.Int stats.eliminated;
          "subsumed", Fl_obs.Int stats.subsumed;
          "unsat", Fl_obs.Bool db.Simp_db.unsat;
          "wall_s", Fl_obs.Float stats.wall_s;
        ];
  {
    reduced;
    unsat = db.Simp_db.unsat;
    stack = db.Simp_db.elim_stack;
    assign = st.assign;
    subst = st.subst;
    elim = db.Simp_db.elim_set;
    nvars = db.Simp_db.nvars;
    st = stats;
  }

let formula t = t.reduced
let is_unsat (t : t) = t.unsat
let stats t = t.st
let reconstruct t model = Simp_db.reconstruct_stack t.stack model

(* Map a clause of the pre-inprocessing formula (e.g. an exported learnt
   clause) onto the reduced formula: substituted literals follow the
   representative chain, literals over derived units evaluate, and any
   mention of an eliminated-but-unvalued variable drops the clause (it is
   subsumed by the reconstruction contract, not expressible after
   elimination). *)
let map_clause t lits =
  let resolve l =
    let rec go l depth =
      let v = abs l in
      if v > t.nvars || depth > 64 then `Lit l
      else
        match Bytes.get t.assign (v - 1) with
        | '\001' -> if l > 0 then `True else `False
        | '\002' -> if l > 0 then `False else `True
        | _ ->
          let s = t.subst.(v - 1) in
          if s <> 0 then go (if l > 0 then s else -s) (depth + 1)
          else if Bytes.get t.elim (v - 1) = '\001' then `Drop
          else `Lit l
    in
    go l 0
  in
  let out = Array.make (Array.length lits) 0 in
  let w = ref 0 in
  let keep = ref true in
  (try
     Array.iter
       (fun l ->
         match resolve l with
         | `True | `Drop ->
           keep := false;
           raise Exit
         | `False -> ()
         | `Lit l' ->
           out.(!w) <- l';
           incr w)
       lits
   with Exit -> ());
  if not !keep then None
  else
    match Simp_db.canonical (Array.sub out 0 !w) with
    | None -> None
    | Some [||] -> None
    | Some c -> Some c

let pp_stats fmt st =
  Format.fprintf fmt
    "%d->%d vars, %d->%d clauses (%d units, %d failed literals, %d shared, %d equiv collapsed, %d xor rows, %d gauss pivots, %d eliminated, %d subsumed) in %d round%s, %.3fs"
    st.vars_before st.vars_after st.clauses_before st.clauses_after st.units
    st.failed_literals st.shared_implications st.equiv_collapsed st.xor_rows
    st.gauss_pivots st.eliminated st.subsumed st.rounds
    (if st.rounds = 1 then "" else "s")
    st.wall_s
