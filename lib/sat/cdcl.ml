(* MiniSAT-style CDCL.  Literal encoding: external DIMACS literal [l] maps to
   internal literal [2*(|l|-1) + (l<0)]; [neg l = l lxor 1].  Values are
   per-variable: 0 undefined, 1 true, 2 false. *)

type outcome = Sat | Unsat | Unknown

type stats = {
  decisions : int;
  propagations : int;
  conflicts : int;
  restarts : int;
  learned_clauses : int;
  learned_literals : int;
  reductions : int;
  max_decision_level : int;
}

let zero_stats =
  {
    decisions = 0;
    propagations = 0;
    conflicts = 0;
    restarts = 0;
    learned_clauses = 0;
    learned_literals = 0;
    reductions = 0;
    max_decision_level = 0;
  }

let add_stats a b =
  {
    decisions = a.decisions + b.decisions;
    propagations = a.propagations + b.propagations;
    conflicts = a.conflicts + b.conflicts;
    restarts = a.restarts + b.restarts;
    learned_clauses = a.learned_clauses + b.learned_clauses;
    learned_literals = a.learned_literals + b.learned_literals;
    reductions = a.reductions + b.reductions;
    max_decision_level = max a.max_decision_level b.max_decision_level;
  }

let sub_stats a b =
  {
    decisions = a.decisions - b.decisions;
    propagations = a.propagations - b.propagations;
    conflicts = a.conflicts - b.conflicts;
    restarts = a.restarts - b.restarts;
    learned_clauses = a.learned_clauses - b.learned_clauses;
    learned_literals = a.learned_literals - b.learned_literals;
    reductions = a.reductions - b.reductions;
    max_decision_level = a.max_decision_level;
  }

type budget = { max_conflicts : int; deadline : float }

let no_budget = { max_conflicts = -1; deadline = -1.0 }
let budget_conflicts n = { no_budget with max_conflicts = n }
let budget_seconds s = { no_budget with deadline = Unix.gettimeofday () +. s }

(* Growable int vector. *)
module Vec = struct
  type t = { mutable data : int array; mutable size : int }

  let create () = { data = Array.make 8 0; size = 0 }

  let push v x =
    if v.size = Array.length v.data then begin
      let data' = Array.make (v.size * 2) 0 in
      Array.blit v.data 0 data' 0 v.size;
      v.data <- data'
    end;
    v.data.(v.size) <- x;
    v.size <- v.size + 1

  let get v i = v.data.(i)
  let set v i x = v.data.(i) <- x
  let size v = v.size
  let shrink v n = v.size <- n
end

(* Indexed max-heap over variables ordered by activity. *)
module Heap = struct
  type t = {
    mutable heap : int array;  (* heap position -> var *)
    mutable index : int array;  (* var -> heap position, -1 if absent *)
    mutable size : int;
    act : float array ref;  (* indirection: activity array is re-allocated on growth *)
  }

  let create act = { heap = Array.make 8 0; index = Array.make 8 (-1); size = 0; act }

  let grow h n =
    if n > Array.length h.index then begin
      let cap = max n (2 * Array.length h.index) in
      let index' = Array.make cap (-1) in
      Array.blit h.index 0 index' 0 (Array.length h.index);
      h.index <- index';
      let heap' = Array.make cap 0 in
      Array.blit h.heap 0 heap' 0 h.size;
      h.heap <- heap'
    end

  let lt h a b = !(h.act).(a) > !(h.act).(b)  (* max-heap on activity *)

  let swap h i j =
    let vi = h.heap.(i) and vj = h.heap.(j) in
    h.heap.(i) <- vj;
    h.heap.(j) <- vi;
    h.index.(vi) <- j;
    h.index.(vj) <- i

  let rec up h i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if lt h h.heap.(i) h.heap.(parent) then begin
        swap h i parent;
        up h parent
      end
    end

  let rec down h i =
    let left = (2 * i) + 1 and right = (2 * i) + 2 in
    let best = ref i in
    if left < h.size && lt h h.heap.(left) h.heap.(!best) then best := left;
    if right < h.size && lt h h.heap.(right) h.heap.(!best) then best := right;
    if !best <> i then begin
      swap h i !best;
      down h !best
    end

  let mem h v = v < Array.length h.index && h.index.(v) >= 0

  let insert h v =
    grow h (v + 1);
    if not (mem h v) then begin
      h.heap.(h.size) <- v;
      h.index.(v) <- h.size;
      h.size <- h.size + 1;
      up h h.index.(v)
    end

  let decrease h v = if mem h v then up h h.index.(v)  (* activity increased *)

  let pop h =
    let v = h.heap.(0) in
    h.index.(v) <- -1;
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.heap.(0) <- h.heap.(h.size);
      h.index.(h.heap.(0)) <- 0;
      down h 0
    end;
    v

  let is_empty h = h.size = 0
end

type t = {
  mutable nvars : int;
  mutable ok : bool;  (* false once a top-level contradiction is derived *)
  mutable clauses : int array array;  (* arena: problem + learnt clauses *)
  mutable num_clauses : int;
  mutable clause_learnt : Bytes.t;  (* per arena slot: 1 = learnt *)
  mutable clause_act : float array;  (* learnt-clause activities *)
  mutable cla_inc : float;
  mutable learnt_count : int;
  mutable reductions : int;
  mutable assigns : Bytes.t;  (* var -> 0 undef / 1 true / 2 false *)
  mutable level : int array;
  mutable reason : int array;  (* var -> clause index or -1 *)
  mutable watches : Vec.t array;  (* lit -> clause indices watching lit *)
  mutable bin_watches : Vec.t array;
      (* lit -> flat (implied_lit, clause_index) pairs, stride 2: binary
         clauses propagate off this list without touching the clause
         arena.  Entries are static — no watch surgery — and complete
         (each binary clause is listed under both its literals). *)
  mutable activity : float array ref;
  mutable polarity : Bytes.t;  (* saved phase: 0 -> pick false first *)
  mutable seen : Bytes.t;  (* scratch for conflict analysis *)
  heap : Heap.t;
  trail : Vec.t;
  trail_lim : Vec.t;
  mutable qhead : int;
  mutable var_inc : float;
  (* statistics *)
  mutable n_decisions : int;
  mutable n_propagations : int;
  mutable n_conflicts : int;
  mutable n_restarts : int;
  mutable n_learned : int;
  mutable n_learned_lits : int;
  mutable max_dl : int;
  mutable last_model : Bytes.t option;
  (* periodic progress hook: fires every [progress_every] conflicts with the
     stat deltas accumulated since the last firing.  [progress_next] is
     [max_int] when disabled, so the hot-loop check is one int compare. *)
  mutable progress_every : int;
  mutable progress_next : int;
  mutable progress_mark : stats;
  mutable progress_cb : stats -> unit;
}

let create () =
  let activity = ref (Array.make 8 0.0) in
  {
    nvars = 0;
    ok = true;
    clauses = Array.make 64 [||];
    num_clauses = 0;
    clause_learnt = Bytes.make 64 '\000';
    clause_act = Array.make 64 0.0;
    cla_inc = 1.0;
    learnt_count = 0;
    reductions = 0;
    assigns = Bytes.make 8 '\000';
    level = Array.make 8 0;
    reason = Array.make 8 (-1);
    watches = Array.init 16 (fun _ -> Vec.create ());
    bin_watches = Array.init 16 (fun _ -> Vec.create ());
    activity;
    polarity = Bytes.make 8 '\000';
    seen = Bytes.make 8 '\000';
    heap = Heap.create activity;
    trail = Vec.create ();
    trail_lim = Vec.create ();
    qhead = 0;
    var_inc = 1.0;
    n_decisions = 0;
    n_propagations = 0;
    n_conflicts = 0;
    n_restarts = 0;
    n_learned = 0;
    n_learned_lits = 0;
    max_dl = 0;
    last_model = None;
    progress_every = 0;
    progress_next = max_int;
    progress_mark = zero_stats;
    progress_cb = ignore;
  }

let num_vars s = s.nvars
let num_clauses s = s.num_clauses
let num_learnts s = s.learnt_count

let ensure_vars s n =
  if n > s.nvars then begin
    let old_cap = Bytes.length s.assigns in
    if n > old_cap then begin
      let cap = max n (2 * old_cap) in
      let assigns' = Bytes.make cap '\000' in
      Bytes.blit s.assigns 0 assigns' 0 old_cap;
      s.assigns <- assigns';
      let polarity' = Bytes.make cap '\000' in
      Bytes.blit s.polarity 0 polarity' 0 old_cap;
      s.polarity <- polarity';
      let seen' = Bytes.make cap '\000' in
      Bytes.blit s.seen 0 seen' 0 old_cap;
      s.seen <- seen';
      let level' = Array.make cap 0 in
      Array.blit s.level 0 level' 0 old_cap;
      s.level <- level';
      let reason' = Array.make cap (-1) in
      Array.blit s.reason 0 reason' 0 old_cap;
      s.reason <- reason';
      let act' = Array.make cap 0.0 in
      Array.blit !(s.activity) 0 act' 0 old_cap;
      s.activity := act';
      let watches' = Array.init (2 * cap) (fun _ -> Vec.create ()) in
      Array.blit s.watches 0 watches' 0 (Array.length s.watches);
      s.watches <- watches';
      let bin' = Array.init (2 * cap) (fun _ -> Vec.create ()) in
      Array.blit s.bin_watches 0 bin' 0 (Array.length s.bin_watches);
      s.bin_watches <- bin'
    end;
    for v = s.nvars to n - 1 do
      Heap.insert s.heap v
    done;
    s.nvars <- n
  end

(* --- value manipulation --- *)

let var_of l = l lsr 1
let lneg l = l lxor 1
let lit_of_dimacs l = (2 * (abs l - 1)) lor (if l < 0 then 1 else 0)
let value_var s v = Char.code (Bytes.unsafe_get s.assigns v)

let value_lit s l =
  let v = value_var s (var_of l) in
  if v = 0 then 0 else if l land 1 = 0 then v else 3 - v
(* 1 = true, 2 = false, 0 = undef *)

let decision_level s = Vec.size s.trail_lim

let stats s =
  {
    decisions = s.n_decisions;
    propagations = s.n_propagations;
    conflicts = s.n_conflicts;
    restarts = s.n_restarts;
    learned_clauses = s.n_learned;
    learned_literals = s.n_learned_lits;
    reductions = s.reductions;
    max_decision_level = s.max_dl;
  }

let enqueue s l reason =
  let v = var_of l in
  Bytes.unsafe_set s.assigns v (if l land 1 = 0 then '\001' else '\002');
  s.level.(v) <- decision_level s;
  s.reason.(v) <- reason;
  Vec.push s.trail l

let var_bump s v =
  let act = !(s.activity) in
  act.(v) <- act.(v) +. s.var_inc;
  if act.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do
      act.(i) <- act.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  Heap.decrease s.heap v

let var_decay s = s.var_inc <- s.var_inc /. 0.95

let cla_bump s ci =
  if Bytes.get s.clause_learnt ci = '\001' then begin
    s.clause_act.(ci) <- s.clause_act.(ci) +. s.cla_inc;
    if s.clause_act.(ci) > 1e20 then begin
      for i = 0 to s.num_clauses - 1 do
        s.clause_act.(i) <- s.clause_act.(i) *. 1e-20
      done;
      s.cla_inc <- s.cla_inc *. 1e-20
    end
  end

let cla_decay s = s.cla_inc <- s.cla_inc /. 0.999

let cancel_until s target =
  if decision_level s > target then begin
    let bound = Vec.get s.trail_lim target in
    let i = ref (Vec.size s.trail - 1) in
    while !i >= bound do
      let l = Vec.get s.trail !i in
      let v = var_of l in
      Bytes.unsafe_set s.polarity v (if l land 1 = 0 then '\001' else '\000');
      Bytes.unsafe_set s.assigns v '\000';
      s.reason.(v) <- -1;
      Heap.insert s.heap v;
      decr i
    done;
    Vec.shrink s.trail bound;
    Vec.shrink s.trail_lim target;
    s.qhead <- Vec.size s.trail
  end

(* --- clause management --- *)

let push_clause ?(learnt = false) s clause =
  if s.num_clauses = Array.length s.clauses then begin
    let cap = s.num_clauses * 2 in
    let clauses' = Array.make cap [||] in
    Array.blit s.clauses 0 clauses' 0 s.num_clauses;
    s.clauses <- clauses';
    let flags' = Bytes.make cap '\000' in
    Bytes.blit s.clause_learnt 0 flags' 0 s.num_clauses;
    s.clause_learnt <- flags';
    let act' = Array.make cap 0.0 in
    Array.blit s.clause_act 0 act' 0 s.num_clauses;
    s.clause_act <- act'
  end;
  let idx = s.num_clauses in
  s.clauses.(idx) <- clause;
  Bytes.set s.clause_learnt idx (if learnt then '\001' else '\000');
  s.clause_act.(idx) <- 0.0;
  if learnt then s.learnt_count <- s.learnt_count + 1;
  s.num_clauses <- idx + 1;
  if Array.length clause = 2 then begin
    Vec.push s.bin_watches.(clause.(0)) clause.(1);
    Vec.push s.bin_watches.(clause.(0)) idx;
    Vec.push s.bin_watches.(clause.(1)) clause.(0);
    Vec.push s.bin_watches.(clause.(1)) idx
  end
  else begin
    Vec.push s.watches.(clause.(0)) idx;
    Vec.push s.watches.(clause.(1)) idx
  end;
  idx

(* Add a problem clause; assumes trail is at level 0. *)
let add_internal s lits =
  if s.ok then begin
    (* Simplify against permanent (level-0) assignments and deduplicate. *)
    let module S = Set.Make (Int) in
    let sat = ref false in
    let keep = ref S.empty in
    List.iter
      (fun l ->
        match value_lit s l with
        | 1 -> sat := true
        | 2 -> ()
        | _ ->
          if S.mem (lneg l) !keep then sat := true
          else keep := S.add l !keep)
      lits;
    if not !sat then begin
      match S.elements !keep with
      | [] -> s.ok <- false
      | [ l ] ->
        (* Unit at level 0: enqueue permanently (propagated on next solve). *)
        (match value_lit s l with
         | 1 -> ()
         | 2 -> s.ok <- false
         | _ -> enqueue s l (-1))
      | l0 :: l1 :: rest -> ignore (push_clause s (Array.of_list (l0 :: l1 :: rest)))
    end
  end

let add_clause s lits =
  List.iter (fun l -> ensure_vars s (abs l)) lits;
  cancel_until s 0;
  add_internal s (List.map lit_of_dimacs lits)

let add_clause_a s lits = add_clause s (Array.to_list lits)

let of_formula f =
  let s = create () in
  ensure_vars s (Fl_cnf.Formula.num_vars f);
  Fl_cnf.Formula.iter_clauses f (fun clause ->
      cancel_until s 0;
      add_internal s (List.map lit_of_dimacs (Array.to_list clause)));
  s

(* --- propagation --- *)

(* Returns conflicting clause index or -1. *)
let propagate s =
  let conflict = ref (-1) in
  while !conflict < 0 && s.qhead < Vec.size s.trail do
    let p = Vec.get s.trail s.qhead in
    s.qhead <- s.qhead + 1;
    s.n_propagations <- s.n_propagations + 1;
    let false_lit = lneg p in
    (* Binary fast path: every binary clause containing [false_lit] now
       implies its other literal.  The list is static, so this is a flat
       scan with no arena access and no watch-list surgery. *)
    let bw = s.bin_watches.(false_lit) in
    let nb = Vec.size bw in
    let b = ref 0 in
    while !conflict < 0 && !b < nb do
      let other = Vec.get bw !b in
      (match value_lit s other with
       | 1 -> ()
       | 2 ->
         conflict := Vec.get bw (!b + 1);
         s.qhead <- Vec.size s.trail
       | _ -> enqueue s other (Vec.get bw (!b + 1)));
      b := !b + 2
    done;
    if !conflict < 0 then begin
    let ws = s.watches.(false_lit) in
    let n = Vec.size ws in
    let j = ref 0 in
    let i = ref 0 in
    while !i < n do
      let ci = Vec.get ws !i in
      incr i;
      let clause = s.clauses.(ci) in
      (* Ensure the false literal is in slot 1. *)
      if clause.(0) = false_lit then begin
        clause.(0) <- clause.(1);
        clause.(1) <- false_lit
      end;
      if value_lit s clause.(0) = 1 then begin
        (* Clause already satisfied: keep the watch. *)
        Vec.set ws !j ci;
        incr j
      end
      else begin
        (* Look for a new literal to watch. *)
        let len = Array.length clause in
        let found = ref false in
        let k = ref 2 in
        while (not !found) && !k < len do
          if value_lit s clause.(!k) <> 2 then begin
            clause.(1) <- clause.(!k);
            clause.(!k) <- false_lit;
            Vec.push s.watches.(clause.(1)) ci;
            found := true
          end;
          incr k
        done;
        if not !found then begin
          (* Unit or conflicting. *)
          Vec.set ws !j ci;
          incr j;
          if value_lit s clause.(0) = 2 then begin
            conflict := ci;
            s.qhead <- Vec.size s.trail;
            (* Copy back the rest of the watch list. *)
            while !i < n do
              Vec.set ws !j (Vec.get ws !i);
              incr j;
              incr i
            done
          end
          else enqueue s clause.(0) ci
        end
      end
    done;
    Vec.shrink ws !j
    end
  done;
  !conflict

(* --- conflict analysis (first UIP) --- *)

let analyze s confl =
  let learnt = ref [] in
  let counter = ref 0 in
  let p = ref (-1) in
  let confl = ref confl in
  let index = ref (Vec.size s.trail - 1) in
  let marked = ref [] in
  (* every var whose seen flag was raised *)
  let continue = ref true in
  while !continue do
    cla_bump s !confl;
    let clause = s.clauses.(!confl) in
    (* Skip the implied literal of a reason clause by value, not position:
       binary reasons come off the static binary watch lists, which never
       reorder the arena clause. *)
    for k = 0 to Array.length clause - 1 do
      let q = clause.(k) in
      let v = var_of q in
      if q <> !p && Bytes.get s.seen v = '\000' && s.level.(v) > 0 then begin
        Bytes.set s.seen v '\001';
        marked := v :: !marked;
        var_bump s v;
        if s.level.(v) >= decision_level s then incr counter
        else learnt := q :: !learnt
      end
    done;
    (* Walk the trail backwards to the next marked literal. *)
    while Bytes.get s.seen (var_of (Vec.get s.trail !index)) = '\000' do
      decr index
    done;
    p := Vec.get s.trail !index;
    decr index;
    decr counter;
    if !counter = 0 then continue := false
    else confl := s.reason.(var_of !p)
  done;
  (* The UIP must not count as marked during minimization. *)
  Bytes.set s.seen (var_of !p) '\000';
  (* Local conflict-clause minimization: a tail literal is redundant when its
     reason clause contains only marked or level-0 literals — self-resolution
     removes it without changing the clause's meaning. *)
  let redundant q =
    let v = var_of q in
    let r = s.reason.(v) in
    r >= 0
    && Array.for_all
         (fun l ->
           let lv = var_of l in
           lv = v || s.level.(lv) = 0 || Bytes.get s.seen lv = '\001')
         s.clauses.(r)
  in
  let tail = List.filter (fun q -> not (redundant q)) !learnt in
  (* Clear every raised flag (including dropped literals'). *)
  List.iter (fun v -> Bytes.set s.seen v '\000') !marked;
  let learnt_arr = Array.of_list (lneg !p :: tail) in
  (* Backjump level = highest level among the (minimized) tail. *)
  let btlevel = ref 0 in
  for k = 1 to Array.length learnt_arr - 1 do
    if s.level.(var_of learnt_arr.(k)) > !btlevel then
      btlevel := s.level.(var_of learnt_arr.(k))
  done;
  (* Watch invariant: slot 1 must hold the highest-level tail literal so that
     after backjumping the watched literal is never a stale false literal
     from a lower level (that would silence future unit propagations). *)
  if Array.length learnt_arr > 2 then begin
    let best = ref 1 in
    for k = 2 to Array.length learnt_arr - 1 do
      if s.level.(var_of learnt_arr.(k)) > s.level.(var_of learnt_arr.(!best))
      then best := k
    done;
    let tmp = learnt_arr.(1) in
    learnt_arr.(1) <- learnt_arr.(!best);
    learnt_arr.(!best) <- tmp
  end;
  learnt_arr, !btlevel

(* --- search --- *)

(* Luby restart sequence (1-based): 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... *)
let rec luby_std i =
  let rec pow2m1 k v = if v >= i then k, v else pow2m1 (k + 1) ((2 * v) + 1) in
  let k, v = pow2m1 1 1 in
  if v = i then 1 lsl (k - 1) else luby_std (i - ((v - 1) / 2))

let out_of_budget budget s start_check =
  (budget.max_conflicts >= 0 && s.n_conflicts - start_check >= budget.max_conflicts)
  || (budget.deadline >= 0.0
      && s.n_conflicts land 255 = 0
      && Unix.gettimeofday () > budget.deadline)

(* Drop the less active half of the learnt clauses.  Called only at decision
   level 0: level-0 reasons are never dereferenced by [analyze] (it skips
   level-0 variables), so clearing them is safe, and watches are rebuilt on
   literals that are not permanently false so no future propagation is
   silenced. *)
let reduce_db s =
  assert (decision_level s = 0);
  (* Median learnt activity as the deletion threshold; keep binary clauses. *)
  let acts = ref [] in
  for ci = 0 to s.num_clauses - 1 do
    if Bytes.get s.clause_learnt ci = '\001' && Array.length s.clauses.(ci) > 2
    then acts := s.clause_act.(ci) :: !acts
  done;
  let sorted = List.sort compare !acts in
  let threshold =
    match List.nth_opt sorted (List.length sorted / 2) with
    | Some v -> v
    | None -> infinity
  in
  let keep ci =
    Bytes.get s.clause_learnt ci = '\000'
    || Array.length s.clauses.(ci) <= 2
    || s.clause_act.(ci) > threshold
  in
  let write = ref 0 in
  for ci = 0 to s.num_clauses - 1 do
    if keep ci then begin
      s.clauses.(!write) <- s.clauses.(ci);
      Bytes.set s.clause_learnt !write (Bytes.get s.clause_learnt ci);
      s.clause_act.(!write) <- s.clause_act.(ci);
      incr write
    end
    else s.learnt_count <- s.learnt_count - 1
  done;
  s.num_clauses <- !write;
  (* Level-0 reasons may now dangle; they are never read again. *)
  for i = 0 to Vec.size s.trail - 1 do
    s.reason.(var_of (Vec.get s.trail i)) <- -1
  done;
  (* Rebuild watches, preferring literals that are not permanently false so
     satisfied-then-unwound clauses keep live watches. *)
  for l = 0 to (2 * s.nvars) - 1 do
    Vec.shrink s.watches.(l) 0;
    Vec.shrink s.bin_watches.(l) 0
  done;
  for ci = 0 to s.num_clauses - 1 do
    let clause = s.clauses.(ci) in
    let len = Array.length clause in
    if len = 2 then begin
      (* Binary lists are static and complete (both directions); compaction
         renumbered the arena, so re-register under the new index. *)
      Vec.push s.bin_watches.(clause.(0)) clause.(1);
      Vec.push s.bin_watches.(clause.(0)) ci;
      Vec.push s.bin_watches.(clause.(1)) clause.(0);
      Vec.push s.bin_watches.(clause.(1)) ci
    end
    else begin
      let slot = ref 0 in
      (let k = ref 0 in
       while !slot < 2 && !k < len do
         if value_lit s clause.(!k) <> 2 then begin
           let tmp = clause.(!slot) in
           clause.(!slot) <- clause.(!k);
           clause.(!k) <- tmp;
           incr slot
         end;
         incr k
       done);
      Vec.push s.watches.(clause.(0)) ci;
      Vec.push s.watches.(clause.(1)) ci
    end
  done;
  s.reductions <- s.reductions + 1

exception Found of outcome

let search s assumptions budget conflict_budget start_conflicts =
  let conflicts_this_run = ref 0 in
  try
    while true do
      let confl = propagate s in
      if confl >= 0 then begin
        s.n_conflicts <- s.n_conflicts + 1;
        incr conflicts_this_run;
        if decision_level s = 0 then begin
          s.ok <- false;
          raise (Found Unsat)
        end;
        let learnt, btlevel = analyze s confl in
        cancel_until s (max btlevel 0) ;
        (match learnt with
         | [| unit_lit |] ->
           cancel_until s 0;
           (match value_lit s unit_lit with
            | 2 ->
              s.ok <- false;
              raise (Found Unsat)
            | 1 -> ()
            | _ -> enqueue s unit_lit (-1))
         | _ ->
           let ci = push_clause ~learnt:true s learnt in
           enqueue s learnt.(0) ci);
        s.n_learned <- s.n_learned + 1;
        s.n_learned_lits <- s.n_learned_lits + Array.length learnt;
        var_decay s;
        cla_decay s;
        if s.n_conflicts >= s.progress_next then begin
          let now = stats s in
          s.progress_cb (sub_stats now s.progress_mark);
          s.progress_mark <- now;
          s.progress_next <- s.n_conflicts + s.progress_every
        end;
        if out_of_budget budget s start_conflicts then raise (Found Unknown)
      end
      else begin
        (* No conflict: restart, or decide. *)
        if !conflicts_this_run >= conflict_budget then begin
          cancel_until s 0;
          s.n_restarts <- s.n_restarts + 1;
          if s.learnt_count > 2000 + (500 * s.reductions) then reduce_db s;
          raise Exit
        end;
        let dl = decision_level s in
        if dl < List.length assumptions then begin
          let a = List.nth assumptions dl in
          match value_lit s a with
          | 1 ->
            Vec.push s.trail_lim (Vec.size s.trail)
            (* dummy level: keeps assumption index = level *)
          | 2 -> raise (Found Unsat)
          | _ ->
            Vec.push s.trail_lim (Vec.size s.trail);
            s.n_decisions <- s.n_decisions + 1;
            enqueue s a (-1)
        end
        else begin
          (* Pick an unassigned variable by activity. *)
          let rec pick () =
            if Heap.is_empty s.heap then -1
            else begin
              let v = Heap.pop s.heap in
              if value_var s v = 0 then v else pick ()
            end
          in
          let v = pick () in
          if v < 0 then raise (Found Sat)
          else begin
            let phase_true = Bytes.get s.polarity v = '\001' in
            let l = (2 * v) lor (if phase_true then 0 else 1) in
            Vec.push s.trail_lim (Vec.size s.trail);
            if decision_level s > s.max_dl then s.max_dl <- decision_level s;
            s.n_decisions <- s.n_decisions + 1;
            enqueue s l (-1)
          end
        end
      end
    done;
    assert false
  with
  | Found r -> Some r
  | Exit -> None

let solve ?(assumptions = []) ?(budget = no_budget) s =
  List.iter (fun l -> ensure_vars s (abs l)) assumptions;
  let assumptions = List.map lit_of_dimacs assumptions in
  cancel_until s 0;
  if not s.ok then Unsat
  else begin
    let start_conflicts = s.n_conflicts in
    let rec run i =
      if out_of_budget budget s start_conflicts then Unknown
      else begin
        let conflict_budget = 64 * luby_std i in
        match search s assumptions budget conflict_budget start_conflicts with
        | Some r -> r
        | None -> run (i + 1)
      end
    in
    let result = run 1 in
    (match result with
     | Sat ->
       let m = Bytes.create s.nvars in
       for v = 0 to s.nvars - 1 do
         Bytes.set m v (if value_var s v = 1 then '\001' else '\000')
       done;
       s.last_model <- Some m
     | Unsat | Unknown -> s.last_model <- None);
    cancel_until s 0;
    result
  end

let value s v =
  match s.last_model with
  | None -> invalid_arg "Cdcl.value: no model (last solve was not Sat)"
  | Some m ->
    if v < 1 || v > Bytes.length m then invalid_arg "Cdcl.value: unknown variable";
    Bytes.get m (v - 1) = '\001'

let model s =
  match s.last_model with
  | None -> invalid_arg "Cdcl.model: no model (last solve was not Sat)"
  | Some m -> Array.init (Bytes.length m + 1) (fun i -> i > 0 && Bytes.get m (i - 1) = '\001')

let set_progress s ~every cb =
  if every <= 0 then invalid_arg "Cdcl.set_progress: every must be positive";
  s.progress_every <- every;
  s.progress_next <- s.n_conflicts + every;
  s.progress_mark <- stats s;
  s.progress_cb <- cb

let clear_progress s =
  s.progress_every <- 0;
  s.progress_next <- max_int;
  s.progress_cb <- ignore

let pp_stats fmt st =
  Format.fprintf fmt
    "decisions %d, propagations %d, conflicts %d, restarts %d, learned %d (avg len %.1f), reductions %d, max level %d"
    st.decisions st.propagations st.conflicts st.restarts st.learned_clauses
    (if st.learned_clauses = 0 then 0.0
     else float_of_int st.learned_literals /. float_of_int st.learned_clauses)
    st.reductions st.max_decision_level

let solve_formula ?budget f =
  let s = of_formula f in
  let outcome = solve ?budget s in
  let m = match outcome with Sat -> Some (model s) | Unsat | Unknown -> None in
  outcome, m, stats s
