(* MiniSAT-style CDCL on a flat clause arena.

   Literals are packed ({!Lit}): external DIMACS literal [l] maps to
   [2*(|l|-1) + (l<0)]; [neg l = l lxor 1].  Assignments are one byte per
   variable in {!Lit.Lbool} coding (0 false / 1 true / 2 undef), so a
   literal evaluates with one byte load and one xor: 0 false, 1 true,
   >= 2 undef.

   Every clause lives in the {!Arena}: a [Cref.t] is a word offset into
   one flat int array (header + activity + literals inline), so
   propagation walks contiguous memory instead of chasing a pointer per
   clause.  Watchers carry a blocking literal — a cached literal of the
   clause checked before the arena is touched; when it is already true
   the clause is satisfied and propagation skips the clause body
   entirely (the common case on clause-dense Full-Lock miters). *)

type outcome = Sat | Unsat | Unknown

type stats = {
  decisions : int;
  propagations : int;
  conflicts : int;
  restarts : int;
  learned_clauses : int;
  learned_literals : int;
  reductions : int;
  max_decision_level : int;
}

let zero_stats =
  {
    decisions = 0;
    propagations = 0;
    conflicts = 0;
    restarts = 0;
    learned_clauses = 0;
    learned_literals = 0;
    reductions = 0;
    max_decision_level = 0;
  }

let add_stats a b =
  {
    decisions = a.decisions + b.decisions;
    propagations = a.propagations + b.propagations;
    conflicts = a.conflicts + b.conflicts;
    restarts = a.restarts + b.restarts;
    learned_clauses = a.learned_clauses + b.learned_clauses;
    learned_literals = a.learned_literals + b.learned_literals;
    reductions = a.reductions + b.reductions;
    max_decision_level = max a.max_decision_level b.max_decision_level;
  }

let sub_stats a b =
  {
    decisions = a.decisions - b.decisions;
    propagations = a.propagations - b.propagations;
    conflicts = a.conflicts - b.conflicts;
    restarts = a.restarts - b.restarts;
    learned_clauses = a.learned_clauses - b.learned_clauses;
    learned_literals = a.learned_literals - b.learned_literals;
    reductions = a.reductions - b.reductions;
    max_decision_level = a.max_decision_level;
  }

(* Deep distribution telemetry (DESIGN.md §4f): learnt-clause quality and
   search-shape histograms, recorded in the conflict path only when
   [Fl_obs.set_deep] is on — the off cost is one atomic load and branch
   per conflict.  Striped atomics, so portfolio/sweep domains merge. *)
let h_lbd = Fl_obs.Hist.make "cdcl.lbd"
let h_learnt_len = Fl_obs.Hist.make "cdcl.learnt_len"
let h_conflict_level = Fl_obs.Hist.make "cdcl.conflict_level"
let h_props_per_decision = Fl_obs.Hist.make "cdcl.props_per_decision"

type budget = { max_conflicts : int; deadline : float }

let no_budget = { max_conflicts = -1; deadline = -1.0 }
let budget_conflicts n = { no_budget with max_conflicts = n }
let budget_seconds s = { no_budget with deadline = Unix.gettimeofday () +. s }

(* Search-heuristic configuration — the knobs a portfolio diversifies
   over.  [default_config] reproduces the historical hard-coded
   constants, so a solver created with it behaves bit-for-bit like one
   created before the knobs existed (the determinism tests rely on
   this). *)
type config = {
  var_decay : float;  (* VSIDS activity decay, (0, 1] *)
  clause_decay : float;  (* learnt-clause activity decay, (0, 1] *)
  restart_base : int;  (* conflicts in the first Luby restart segment *)
  phase_default : [ `False | `True | `Random ];  (* unsaved-phase polarity *)
  random_var_freq : float;  (* probability of a random decision, [0, 1) *)
  seed : int;  (* RNG seed for `Random phases / random decisions *)
}

let default_config =
  {
    var_decay = 0.95;
    clause_decay = 0.999;
    restart_base = 64;
    phase_default = `False;
    random_var_freq = 0.0;
    seed = 0;
  }

let check_config c =
  if not (c.var_decay > 0.0 && c.var_decay <= 1.0) then
    invalid_arg "Cdcl.create: var_decay must be in (0, 1]";
  if not (c.clause_decay > 0.0 && c.clause_decay <= 1.0) then
    invalid_arg "Cdcl.create: clause_decay must be in (0, 1]";
  if c.restart_base < 1 then
    invalid_arg "Cdcl.create: restart_base must be >= 1";
  if not (c.random_var_freq >= 0.0 && c.random_var_freq < 1.0) then
    invalid_arg "Cdcl.create: random_var_freq must be in [0, 1)"

(* Growable int vector. *)
module Vec = struct
  type t = { mutable data : int array; mutable size : int }

  let create () = { data = Array.make 8 0; size = 0 }

  let push v x =
    if v.size = Array.length v.data then begin
      let data' = Array.make (v.size * 2) 0 in
      Array.blit v.data 0 data' 0 v.size;
      v.data <- data'
    end;
    Array.unsafe_set v.data v.size x;
    v.size <- v.size + 1

  let get v i = Array.unsafe_get v.data i
  let set v i x = Array.unsafe_set v.data i x
  let size v = v.size
  let shrink v n = v.size <- n
end

(* Indexed max-heap over variables ordered by activity. *)
module Heap = struct
  type t = {
    mutable heap : int array;  (* heap position -> var *)
    mutable index : int array;  (* var -> heap position, -1 if absent *)
    mutable size : int;
    act : float array ref;  (* indirection: activity array is re-allocated on growth *)
  }

  let create act = { heap = Array.make 8 0; index = Array.make 8 (-1); size = 0; act }

  let grow h n =
    if n > Array.length h.index then begin
      let cap = max n (2 * Array.length h.index) in
      let index' = Array.make cap (-1) in
      Array.blit h.index 0 index' 0 (Array.length h.index);
      h.index <- index';
      let heap' = Array.make cap 0 in
      Array.blit h.heap 0 heap' 0 h.size;
      h.heap <- heap'
    end

  let lt h a b = !(h.act).(a) > !(h.act).(b)  (* max-heap on activity *)

  let swap h i j =
    let vi = h.heap.(i) and vj = h.heap.(j) in
    h.heap.(i) <- vj;
    h.heap.(j) <- vi;
    h.index.(vi) <- j;
    h.index.(vj) <- i

  let rec up h i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if lt h h.heap.(i) h.heap.(parent) then begin
        swap h i parent;
        up h parent
      end
    end

  let rec down h i =
    let left = (2 * i) + 1 and right = (2 * i) + 2 in
    let best = ref i in
    if left < h.size && lt h h.heap.(left) h.heap.(!best) then best := left;
    if right < h.size && lt h h.heap.(right) h.heap.(!best) then best := right;
    if !best <> i then begin
      swap h i !best;
      down h !best
    end

  let mem h v = v < Array.length h.index && h.index.(v) >= 0

  let insert h v =
    grow h (v + 1);
    if not (mem h v) then begin
      h.heap.(h.size) <- v;
      h.index.(v) <- h.size;
      h.size <- h.size + 1;
      up h h.index.(v)
    end

  let decrease h v = if mem h v then up h h.index.(v)  (* activity increased *)

  let pop h =
    let v = h.heap.(0) in
    h.index.(v) <- -1;
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.heap.(0) <- h.heap.(h.size);
      h.index.(h.heap.(0)) <- 0;
      down h 0
    end;
    v

  let is_empty h = h.size = 0
end

type t = {
  cfg : config;
  rng : Random.State.t;  (* drawn from only when the config asks for it *)
  (* cooperative cancellation: polled on the budget-check path; a [true]
     return makes the current solve come back [Unknown] *)
  mutable interrupt : unit -> bool;
  mutable nvars : int;
  mutable ok : bool;  (* false once a top-level contradiction is derived *)
  arena : Arena.t;  (* every clause, problem + learnt, packed flat *)
  mutable cla_inc : float;
  mutable reductions : int;
  mutable assigns : Bytes.t;  (* var -> Lbool: 0 false / 1 true / 2 undef *)
  mutable level : int array;
  mutable reason : int array;  (* var -> cref or Cref.none *)
  mutable watches : Vec.t array;
      (* lit -> flat (blocker, cref) pairs, stride 2.  The blocker is
         some other literal of the clause; when it is already true the
         clause is satisfied and the arena is never touched. *)
  mutable bin_watches : Vec.t array;
      (* lit -> flat (implied_lit, cref) pairs, stride 2: binary
         clauses propagate off this list without touching the clause
         arena.  Entries are static — no watch surgery — and complete
         (each binary clause is listed under both its literals). *)
  mutable activity : float array ref;
  mutable polarity : Bytes.t;  (* saved phase: 0 -> pick false first *)
  mutable seen : Bytes.t;  (* scratch for conflict analysis *)
  heap : Heap.t;
  trail : Vec.t;
  trail_lim : Vec.t;
  mutable qhead : int;
  mutable var_inc : float;
  (* Memoized Luby sequence, 1-based: luby.(i-1) = luby(i).  Grows by
     one entry per restart instead of re-deriving the sequence
     recursively from scratch each time. *)
  luby : Vec.t;
  (* statistics *)
  mutable n_decisions : int;
  mutable n_propagations : int;
  mutable n_conflicts : int;
  mutable n_restarts : int;
  mutable n_learned : int;
  mutable n_learned_lits : int;
  mutable max_dl : int;
  mutable last_model : Bytes.t option;
  (* deep-telemetry scratch: stamped level marks for O(len) LBD, and the
     propagation/decision watermarks of the previous conflict *)
  mutable lbd_seen : int array;
  mutable lbd_stamp : int;
  mutable deep_mark_props : int;
  mutable deep_mark_decisions : int;
  (* periodic progress hook: fires every [progress_every] conflicts with the
     stat deltas accumulated since the last firing.  [progress_next] is
     [max_int] when disabled, so the hot-loop check is one int compare. *)
  mutable progress_every : int;
  mutable progress_next : int;
  mutable progress_mark : stats;
  mutable progress_cb : stats -> unit;
}

let no_interrupt () = false

let create ?(config = default_config) () =
  check_config config;
  let activity = ref (Array.make 8 0.0) in
  {
    cfg = config;
    rng = Random.State.make [| config.seed; 0x466c6b |];
    interrupt = no_interrupt;
    nvars = 0;
    ok = true;
    arena = Arena.create ();
    cla_inc = 1.0;
    reductions = 0;
    assigns = Bytes.make 8 '\002';
    level = Array.make 8 0;
    reason = Array.make 8 Arena.Cref.none;
    watches = Array.init 16 (fun _ -> Vec.create ());
    bin_watches = Array.init 16 (fun _ -> Vec.create ());
    activity;
    polarity = Bytes.make 8 '\000';
    seen = Bytes.make 8 '\000';
    heap = Heap.create activity;
    trail = Vec.create ();
    trail_lim = Vec.create ();
    qhead = 0;
    var_inc = 1.0;
    luby = Vec.create ();
    n_decisions = 0;
    n_propagations = 0;
    n_conflicts = 0;
    n_restarts = 0;
    n_learned = 0;
    n_learned_lits = 0;
    max_dl = 0;
    last_model = None;
    lbd_seen = Array.make 8 0;
    lbd_stamp = 0;
    deep_mark_props = 0;
    deep_mark_decisions = 0;
    progress_every = 0;
    progress_next = max_int;
    progress_mark = zero_stats;
    progress_cb = ignore;
  }

let num_vars s = s.nvars
let num_clauses s = Arena.num_clauses s.arena
let num_learnts s = Arena.num_learnts s.arena
let arena_words s = Arena.words s.arena

let ensure_vars s n =
  if n > s.nvars then begin
    let old_cap = Bytes.length s.assigns in
    if n > old_cap then begin
      let cap = max n (2 * old_cap) in
      let assigns' = Bytes.make cap '\002' in
      Bytes.blit s.assigns 0 assigns' 0 old_cap;
      s.assigns <- assigns';
      let polarity' = Bytes.make cap '\000' in
      Bytes.blit s.polarity 0 polarity' 0 old_cap;
      s.polarity <- polarity';
      let seen' = Bytes.make cap '\000' in
      Bytes.blit s.seen 0 seen' 0 old_cap;
      s.seen <- seen';
      let level' = Array.make cap 0 in
      Array.blit s.level 0 level' 0 old_cap;
      s.level <- level';
      let reason' = Array.make cap Arena.Cref.none in
      Array.blit s.reason 0 reason' 0 old_cap;
      s.reason <- reason';
      let act' = Array.make cap 0.0 in
      Array.blit !(s.activity) 0 act' 0 old_cap;
      s.activity := act';
      let watches' = Array.init (2 * cap) (fun _ -> Vec.create ()) in
      Array.blit s.watches 0 watches' 0 (Array.length s.watches);
      s.watches <- watches';
      let bin' = Array.init (2 * cap) (fun _ -> Vec.create ()) in
      Array.blit s.bin_watches 0 bin' 0 (Array.length s.bin_watches);
      s.bin_watches <- bin'
    end;
    for v = s.nvars to n - 1 do
      (match s.cfg.phase_default with
       | `False -> ()
       | `True -> Bytes.set s.polarity v '\001'
       | `Random -> if Random.State.bool s.rng then Bytes.set s.polarity v '\001');
      Heap.insert s.heap v
    done;
    s.nvars <- n
  end

(* --- value manipulation --- *)

let var_of l = l lsr 1
let lneg l = l lxor 1
let lit_of_dimacs = Lit.of_dimacs
let value_var s v = Lit.value_var s.assigns v

(* 0 = false, 1 = true, >= 2 = undef (see {!Lit.value}). *)
let value_lit s l = Lit.value s.assigns l

let decision_level s = Vec.size s.trail_lim

let stats s =
  {
    decisions = s.n_decisions;
    propagations = s.n_propagations;
    conflicts = s.n_conflicts;
    restarts = s.n_restarts;
    learned_clauses = s.n_learned;
    learned_literals = s.n_learned_lits;
    reductions = s.reductions;
    max_decision_level = s.max_dl;
  }

let enqueue s l reason =
  let v = var_of l in
  Lit.assign s.assigns l;
  s.level.(v) <- decision_level s;
  s.reason.(v) <- reason;
  Vec.push s.trail l

let var_bump s v =
  let act = !(s.activity) in
  act.(v) <- act.(v) +. s.var_inc;
  if act.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do
      act.(i) <- act.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  Heap.decrease s.heap v

let var_decay s = s.var_inc <- s.var_inc /. s.cfg.var_decay

let cla_bump s ci =
  if Arena.learnt s.arena ci then begin
    let a = Arena.activity s.arena ci +. s.cla_inc in
    Arena.set_activity s.arena ci a;
    if a > 1e20 then begin
      Arena.iter_learnts s.arena (fun c ->
          Arena.set_activity s.arena c (Arena.activity s.arena c *. 1e-20));
      s.cla_inc <- s.cla_inc *. 1e-20
    end
  end

let cla_decay s = s.cla_inc <- s.cla_inc /. s.cfg.clause_decay

let cancel_until s target =
  if decision_level s > target then begin
    let bound = Vec.get s.trail_lim target in
    let i = ref (Vec.size s.trail - 1) in
    while !i >= bound do
      let l = Vec.get s.trail !i in
      let v = var_of l in
      Bytes.unsafe_set s.polarity v (if l land 1 = 0 then '\001' else '\000');
      Lit.unassign s.assigns v;
      s.reason.(v) <- Arena.Cref.none;
      Heap.insert s.heap v;
      decr i
    done;
    Vec.shrink s.trail bound;
    Vec.shrink s.trail_lim target;
    s.qhead <- Vec.size s.trail
  end

(* --- clause management --- *)

(* Register a clause (already in the arena) with the watch scheme: binary
   clauses go on the static stride-2 binary lists (both directions);
   longer clauses watch slots 0 and 1, each watcher carrying the other
   watched literal as its blocker. *)
let attach s ci =
  let l0 = Arena.lit s.arena ci 0 and l1 = Arena.lit s.arena ci 1 in
  if Arena.size s.arena ci = 2 then begin
    Vec.push s.bin_watches.(l0) l1;
    Vec.push s.bin_watches.(l0) ci;
    Vec.push s.bin_watches.(l1) l0;
    Vec.push s.bin_watches.(l1) ci
  end
  else begin
    Vec.push s.watches.(l0) l1;
    Vec.push s.watches.(l0) ci;
    Vec.push s.watches.(l1) l0;
    Vec.push s.watches.(l1) ci
  end

let push_clause ?(learnt = false) s lits =
  let ci = Arena.alloc s.arena ~learnt lits in
  attach s ci;
  ci

(* Add a problem clause of packed literals; assumes trail is at level 0.
   The array is scratch: sorted and compacted in place, no intermediate
   lists.  Simplifies against permanent (level-0) assignments, drops
   duplicate literals and detects tautologies. *)
let add_internal s lits =
  if s.ok then begin
    (* Keep undefined literals; a true literal satisfies the clause. *)
    let n = Array.length lits in
    let w = ref 0 in
    let sat = ref false in
    (let i = ref 0 in
     while (not !sat) && !i < n do
       let l = lits.(!i) in
       (match value_lit s l with
        | 1 -> sat := true
        | 0 -> ()
        | _ ->
          lits.(!w) <- l;
          incr w);
       incr i
     done);
    if not !sat then begin
      let kept = Array.sub lits 0 !w in
      Array.sort compare kept;
      (* Deduplicate in place; adjacent [2v, 2v+1] is a tautology. *)
      let m = Array.length kept in
      let w = ref 0 in
      (let i = ref 0 in
       while (not !sat) && !i < m do
         let l = kept.(!i) in
         if !i + 1 < m && kept.(!i + 1) = lneg l then sat := true
         else if !w > 0 && kept.(!w - 1) = l then ()
         else begin
           kept.(!w) <- l;
           incr w
         end;
         incr i
       done);
      if not !sat then
        if !w = 0 then s.ok <- false
        else if !w = 1 then begin
          (* Unit at level 0: enqueue permanently (propagated on next
             solve). *)
          match value_lit s kept.(0) with
          | 1 -> ()
          | 0 -> s.ok <- false
          | _ -> enqueue s kept.(0) Arena.Cref.none
        end
        else ignore (push_clause s (Array.sub kept 0 !w))
    end
  end

let add_clause_a s lits =
  Array.iter (fun l -> ensure_vars s (abs l)) lits;
  cancel_until s 0;
  add_internal s (Array.map lit_of_dimacs lits)

let add_clause s lits = add_clause_a s (Array.of_list lits)

let of_formula f =
  let s = create () in
  ensure_vars s (Fl_cnf.Formula.num_vars f);
  Fl_cnf.Formula.iter_clauses f (fun clause ->
      cancel_until s 0;
      add_internal s (Array.map lit_of_dimacs clause));
  s

(* --- propagation --- *)

(* Returns conflicting cref or -1. *)
let propagate s =
  let arena = s.arena in
  let conflict = ref (-1) in
  while !conflict < 0 && s.qhead < Vec.size s.trail do
    let p = Vec.get s.trail s.qhead in
    s.qhead <- s.qhead + 1;
    s.n_propagations <- s.n_propagations + 1;
    let false_lit = lneg p in
    (* Binary fast path: every binary clause containing [false_lit] now
       implies its other literal.  The list is static, so this is a flat
       scan with no arena access and no watch-list surgery. *)
    let bw = s.bin_watches.(false_lit) in
    let nb = Vec.size bw in
    let b = ref 0 in
    while !conflict < 0 && !b < nb do
      let other = Vec.get bw !b in
      (match value_lit s other with
       | 1 -> ()
       | 0 ->
         conflict := Vec.get bw (!b + 1);
         s.qhead <- Vec.size s.trail
       | _ -> enqueue s other (Vec.get bw (!b + 1)));
      b := !b + 2
    done;
    if !conflict < 0 then begin
      let ws = s.watches.(false_lit) in
      let n = Vec.size ws in
      let j = ref 0 in
      let i = ref 0 in
      while !i < n do
        let blocker = Vec.get ws !i in
        let ci = Vec.get ws (!i + 1) in
        i := !i + 2;
        (* Blocking literal: when it is already true the clause is
           satisfied and the arena is never dereferenced. *)
        if value_lit s blocker = 1 then begin
          Vec.set ws !j blocker;
          Vec.set ws (!j + 1) ci;
          j := !j + 2
        end
        else begin
          (* Ensure the false literal is in slot 1. *)
          let l0 = Arena.lit arena ci 0 in
          let first =
            if l0 = false_lit then begin
              let l1 = Arena.lit arena ci 1 in
              Arena.set_lit arena ci 0 l1;
              Arena.set_lit arena ci 1 false_lit;
              l1
            end
            else l0
          in
          if value_lit s first = 1 then begin
            (* Clause already satisfied: keep the watch, cache the true
               literal as the new blocker. *)
            Vec.set ws !j first;
            Vec.set ws (!j + 1) ci;
            j := !j + 2
          end
          else begin
            (* Look for a new literal to watch. *)
            let len = Arena.size arena ci in
            let found = ref false in
            let k = ref 2 in
            while (not !found) && !k < len do
              let lk = Arena.lit arena ci !k in
              if value_lit s lk <> 0 then begin
                Arena.set_lit arena ci 1 lk;
                Arena.set_lit arena ci !k false_lit;
                Vec.push s.watches.(lk) first;
                Vec.push s.watches.(lk) ci;
                found := true
              end;
              incr k
            done;
            if not !found then begin
              (* Unit or conflicting. *)
              Vec.set ws !j first;
              Vec.set ws (!j + 1) ci;
              j := !j + 2;
              if value_lit s first = 0 then begin
                conflict := ci;
                s.qhead <- Vec.size s.trail;
                (* Copy back the rest of the watch list. *)
                while !i < n do
                  Vec.set ws !j (Vec.get ws !i);
                  incr j;
                  incr i
                done
              end
              else enqueue s first ci
            end
          end
        end
      done;
      Vec.shrink ws !j
    end
  done;
  !conflict

(* --- conflict analysis (first UIP) --- *)

let analyze s confl =
  let arena = s.arena in
  let learnt = ref [] in
  let counter = ref 0 in
  let p = ref (-1) in
  let confl = ref confl in
  let index = ref (Vec.size s.trail - 1) in
  let marked = ref [] in
  (* every var whose seen flag was raised *)
  let continue = ref true in
  while !continue do
    cla_bump s !confl;
    (* Skip the implied literal of a reason clause by value, not position:
       binary reasons come off the static binary watch lists, which never
       reorder the arena clause. *)
    let len = Arena.size arena !confl in
    for k = 0 to len - 1 do
      let q = Arena.lit arena !confl k in
      let v = var_of q in
      if q <> !p && Bytes.get s.seen v = '\000' && s.level.(v) > 0 then begin
        Bytes.set s.seen v '\001';
        marked := v :: !marked;
        var_bump s v;
        if s.level.(v) >= decision_level s then incr counter
        else learnt := q :: !learnt
      end
    done;
    (* Walk the trail backwards to the next marked literal. *)
    while Bytes.get s.seen (var_of (Vec.get s.trail !index)) = '\000' do
      decr index
    done;
    p := Vec.get s.trail !index;
    decr index;
    decr counter;
    if !counter = 0 then continue := false
    else confl := s.reason.(var_of !p)
  done;
  (* The UIP must not count as marked during minimization. *)
  Bytes.set s.seen (var_of !p) '\000';
  (* Local conflict-clause minimization: a tail literal is redundant when its
     reason clause contains only marked or level-0 literals — self-resolution
     removes it without changing the clause's meaning. *)
  let redundant q =
    let v = var_of q in
    let r = s.reason.(v) in
    r >= 0
    &&
    let len = Arena.size arena r in
    let ok = ref true in
    let k = ref 0 in
    while !ok && !k < len do
      let lv = var_of (Arena.lit arena r !k) in
      if not (lv = v || s.level.(lv) = 0 || Bytes.get s.seen lv = '\001') then
        ok := false;
      incr k
    done;
    !ok
  in
  let tail = List.filter (fun q -> not (redundant q)) !learnt in
  (* Clear every raised flag (including dropped literals'). *)
  List.iter (fun v -> Bytes.set s.seen v '\000') !marked;
  let learnt_arr = Array.of_list (lneg !p :: tail) in
  (* Backjump level = highest level among the (minimized) tail. *)
  let btlevel = ref 0 in
  for k = 1 to Array.length learnt_arr - 1 do
    if s.level.(var_of learnt_arr.(k)) > !btlevel then
      btlevel := s.level.(var_of learnt_arr.(k))
  done;
  (* Watch invariant: slot 1 must hold the highest-level tail literal so that
     after backjumping the watched literal is never a stale false literal
     from a lower level (that would silence future unit propagations). *)
  if Array.length learnt_arr > 2 then begin
    let best = ref 1 in
    for k = 2 to Array.length learnt_arr - 1 do
      if s.level.(var_of learnt_arr.(k)) > s.level.(var_of learnt_arr.(!best))
      then best := k
    done;
    let tmp = learnt_arr.(1) in
    learnt_arr.(1) <- learnt_arr.(!best);
    learnt_arr.(!best) <- tmp
  end;
  learnt_arr, !btlevel

(* --- search --- *)

(* Luby restart sequence (1-based): 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
   Memoized iteratively: entry [i] only ever refers back to an entry
   [< i], so the cache fills left to right, one entry per restart. *)
let luby s i =
  while Vec.size s.luby < i do
    let j = Vec.size s.luby + 1 in
    (* Smallest k with 2^k - 1 >= j. *)
    let k = ref 1 in
    while (1 lsl !k) - 1 < j do
      incr k
    done;
    let v =
      if (1 lsl !k) - 1 = j then 1 lsl (!k - 1)
      else Vec.get s.luby (j - ((1 lsl (!k - 1)) - 1) - 1)
    in
    Vec.push s.luby v
  done;
  Vec.get s.luby (i - 1)

let out_of_budget budget s start_check =
  (budget.max_conflicts >= 0 && s.n_conflicts - start_check >= budget.max_conflicts)
  || (s.n_conflicts land 255 = 0
      && (s.interrupt ()
          || (budget.deadline >= 0.0 && Unix.gettimeofday () > budget.deadline)))

(* Drop the less active half of the learnt clauses and compact the arena.
   Called only at decision level 0: level-0 reasons are never dereferenced
   by [analyze] (it skips level-0 variables), so clearing them is safe, and
   watches are rebuilt on literals that are not permanently false so no
   future propagation is silenced. *)
let reduce_db s =
  assert (decision_level s = 0);
  let arena = s.arena in
  (* Median learnt activity as the deletion threshold; keep binary clauses. *)
  let acts = ref [] in
  Arena.iter_learnts arena (fun ci ->
      if Arena.size arena ci > 2 then acts := Arena.activity arena ci :: !acts);
  let sorted = List.sort compare !acts in
  let threshold =
    match List.nth_opt sorted (List.length sorted / 2) with
    | Some v -> v
    | None -> infinity
  in
  Arena.iter_learnts arena (fun ci ->
      if Arena.size arena ci > 2 && Arena.activity arena ci <= threshold then
        Arena.kill arena ci);
  (* Compaction renumbers every surviving cref.  Reasons on the (level-0)
     trail are never read again — clear rather than remap them; watch
     lists are rebuilt from the compacted arena below. *)
  let _remap = Arena.compact arena in
  for i = 0 to Vec.size s.trail - 1 do
    s.reason.(var_of (Vec.get s.trail i)) <- Arena.Cref.none
  done;
  (* Rebuild watches, preferring literals that are not permanently false so
     satisfied-then-unwound clauses keep live watches. *)
  for l = 0 to (2 * s.nvars) - 1 do
    Vec.shrink s.watches.(l) 0;
    Vec.shrink s.bin_watches.(l) 0
  done;
  Arena.iter arena (fun ci ->
      let len = Arena.size arena ci in
      if len > 2 then begin
        let slot = ref 0 in
        let k = ref 0 in
        while !slot < 2 && !k < len do
          if value_lit s (Arena.lit arena ci !k) <> 0 then begin
            Arena.swap_lits arena ci !slot !k;
            incr slot
          end;
          incr k
        done
      end;
      attach s ci);
  s.reductions <- s.reductions + 1

(* Learnt-clause LBD (Audemard & Simon: number of distinct decision levels
   among the clause's literals) plus the other conflict-shape samples.
   Runs before backtracking, while the learnt literals' levels are still
   current; the stamped scratch array keeps it allocation-free. *)
let record_conflict_stats s learnt =
  Fl_obs.Hist.record h_conflict_level (decision_level s);
  Fl_obs.Hist.record h_learnt_len (Array.length learnt);
  let stamp = s.lbd_stamp + 1 in
  s.lbd_stamp <- stamp;
  let lbd = ref 0 in
  Array.iter
    (fun l ->
      let lv = s.level.(var_of l) in
      if lv >= Array.length s.lbd_seen then begin
        (* levels can outgrow the var arrays only via repeated-assumption
           dummy levels; grow lazily rather than burden ensure_vars *)
        let cap = max (lv + 1) (2 * Array.length s.lbd_seen) in
        let a = Array.make cap 0 in
        Array.blit s.lbd_seen 0 a 0 (Array.length s.lbd_seen);
        s.lbd_seen <- a
      end;
      if s.lbd_seen.(lv) <> stamp then begin
        s.lbd_seen.(lv) <- stamp;
        incr lbd
      end)
    learnt;
  Fl_obs.Hist.record h_lbd !lbd;
  let dp = s.n_propagations - s.deep_mark_props
  and dd = s.n_decisions - s.deep_mark_decisions in
  s.deep_mark_props <- s.n_propagations;
  s.deep_mark_decisions <- s.n_decisions;
  Fl_obs.Hist.record h_props_per_decision (dp / max 1 dd)

exception Found of outcome

let search s assumptions budget conflict_budget start_conflicts =
  let conflicts_this_run = ref 0 in
  try
    while true do
      let confl = propagate s in
      if confl >= 0 then begin
        s.n_conflicts <- s.n_conflicts + 1;
        incr conflicts_this_run;
        if decision_level s = 0 then begin
          s.ok <- false;
          raise (Found Unsat)
        end;
        let learnt, btlevel = analyze s confl in
        if Fl_obs.deep_enabled () then record_conflict_stats s learnt;
        cancel_until s (max btlevel 0) ;
        (match learnt with
         | [| unit_lit |] ->
           cancel_until s 0;
           (match value_lit s unit_lit with
            | 0 ->
              s.ok <- false;
              raise (Found Unsat)
            | 1 -> ()
            | _ -> enqueue s unit_lit Arena.Cref.none)
         | _ ->
           let ci = push_clause ~learnt:true s learnt in
           enqueue s learnt.(0) ci);
        s.n_learned <- s.n_learned + 1;
        s.n_learned_lits <- s.n_learned_lits + Array.length learnt;
        var_decay s;
        cla_decay s;
        if s.n_conflicts >= s.progress_next then begin
          let now = stats s in
          s.progress_cb (sub_stats now s.progress_mark);
          s.progress_mark <- now;
          s.progress_next <- s.n_conflicts + s.progress_every
        end;
        if out_of_budget budget s start_conflicts then raise (Found Unknown)
      end
      else begin
        (* No conflict: restart, or decide. *)
        if !conflicts_this_run >= conflict_budget then begin
          cancel_until s 0;
          s.n_restarts <- s.n_restarts + 1;
          if Fl_obs.enabled () then
            Fl_obs.emit
              ~fields:
                [
                  "restarts", Fl_obs.Int s.n_restarts;
                  "conflicts", Fl_obs.Int s.n_conflicts;
                  "learnts", Fl_obs.Int (Arena.num_learnts s.arena);
                ]
              "cdcl.restart";
          if Arena.num_learnts s.arena > 2000 + (500 * s.reductions) then
            reduce_db s;
          raise Exit
        end;
        let dl = decision_level s in
        if dl < List.length assumptions then begin
          let a = List.nth assumptions dl in
          match value_lit s a with
          | 1 ->
            Vec.push s.trail_lim (Vec.size s.trail)
            (* dummy level: keeps assumption index = level *)
          | 0 -> raise (Found Unsat)
          | _ ->
            Vec.push s.trail_lim (Vec.size s.trail);
            s.n_decisions <- s.n_decisions + 1;
            enqueue s a Arena.Cref.none
        end
        else begin
          (* Pick an unassigned variable by activity. *)
          let rec pick () =
            if Heap.is_empty s.heap then -1
            else begin
              let v = Heap.pop s.heap in
              if Lit.Lbool.is_undef (value_var s v) then v else pick ()
            end
          in
          let v =
            (* Occasional random decisions (portfolio diversification):
               the picked variable stays in the heap, where a later pop
               skips it while assigned — exactly like any other
               out-of-date heap entry. *)
            if
              s.cfg.random_var_freq > 0.0
              && s.nvars > 0
              && Random.State.float s.rng 1.0 < s.cfg.random_var_freq
            then begin
              let r = Random.State.int s.rng s.nvars in
              if Lit.Lbool.is_undef (value_var s r) then r else pick ()
            end
            else pick ()
          in
          if v < 0 then raise (Found Sat)
          else begin
            let phase_true = Bytes.get s.polarity v = '\001' in
            let l = (2 * v) lor (if phase_true then 0 else 1) in
            Vec.push s.trail_lim (Vec.size s.trail);
            if decision_level s > s.max_dl then s.max_dl <- decision_level s;
            s.n_decisions <- s.n_decisions + 1;
            enqueue s l Arena.Cref.none
          end
        end
      end
    done;
    assert false
  with
  | Found r -> Some r
  | Exit -> None

let solve ?(assumptions = []) ?(budget = no_budget) s =
  List.iter (fun l -> ensure_vars s (abs l)) assumptions;
  let assumptions = List.map lit_of_dimacs assumptions in
  cancel_until s 0;
  if not s.ok then Unsat
  else begin
    let start_conflicts = s.n_conflicts in
    let rec run i =
      if out_of_budget budget s start_conflicts then Unknown
      else begin
        let conflict_budget = s.cfg.restart_base * luby s i in
        match search s assumptions budget conflict_budget start_conflicts with
        | Some r -> r
        | None -> run (i + 1)
      end
    in
    let result = run 1 in
    (match result with
     | Sat ->
       let m = Bytes.create s.nvars in
       for v = 0 to s.nvars - 1 do
         Bytes.set m v (if value_var s v = 1 then '\001' else '\000')
       done;
       s.last_model <- Some m
     | Unsat | Unknown -> s.last_model <- None);
    cancel_until s 0;
    result
  end

let value s v =
  match s.last_model with
  | None -> invalid_arg "Cdcl.value: no model (last solve was not Sat)"
  | Some m ->
    if v < 1 || v > Bytes.length m then invalid_arg "Cdcl.value: unknown variable";
    Bytes.get m (v - 1) = '\001'

let model s =
  match s.last_model with
  | None -> invalid_arg "Cdcl.model: no model (last solve was not Sat)"
  | Some m -> Array.init (Bytes.length m + 1) (fun i -> i > 0 && Bytes.get m (i - 1) = '\001')

(* Learnt-clause export (portfolio clause sharing, inprocessing): every
   live learnt clause, in DIMACS literals.  The callback must not touch
   the solver. *)
let iter_learnts s f =
  Arena.iter_learnts s.arena (fun ci ->
      let len = Arena.size s.arena ci in
      f (Array.init len (fun k -> Lit.to_dimacs (Arena.lit s.arena ci k))))

(* Forced learnt-database reduction at level 0 — the path DB reduction
   takes during search, exposed so tests and inprocessing hooks can drive
   arena compaction and the watch-list rebuild directly. *)
let reduce_now s =
  cancel_until s 0;
  if s.ok then reduce_db s

let config s = s.cfg

(* Cooperative cancellation (portfolio racing): [f] is polled on the
   budget-check path — every 256 conflicts — so a stop request lands
   within a bounded amount of extra search.  A pending interrupt makes
   [solve] return [Unknown]; the solver stays fully usable. *)
let set_interrupt s f = s.interrupt <- f
let clear_interrupt s = s.interrupt <- no_interrupt

let set_progress s ~every cb =
  if every <= 0 then invalid_arg "Cdcl.set_progress: every must be positive";
  s.progress_every <- every;
  s.progress_next <- s.n_conflicts + every;
  s.progress_mark <- stats s;
  s.progress_cb <- cb

let clear_progress s =
  s.progress_every <- 0;
  s.progress_next <- max_int;
  s.progress_cb <- ignore

let pp_stats fmt st =
  Format.fprintf fmt
    "decisions %d, propagations %d, conflicts %d, restarts %d, learned %d (avg len %.1f), reductions %d, max level %d"
    st.decisions st.propagations st.conflicts st.restarts st.learned_clauses
    (if st.learned_clauses = 0 then 0.0
     else float_of_int st.learned_literals /. float_of_int st.learned_clauses)
    st.reductions st.max_decision_level

let solve_formula ?budget f =
  let s = of_formula f in
  let outcome = solve ?budget s in
  let m = match outcome with Sat -> Some (model s) | Unsat | Unknown -> None in
  outcome, m, stats s
