(* One-shot SatELite-style CNF simplification: tautology/duplicate removal,
   backward subsumption, self-subsuming resolution and bounded variable
   elimination (NiVER/SatELite).  The clause database, occurrence lists,
   signatures and the reconstruction stack live in {!Simp_db}, shared with
   the between-iterations {!Inprocess} engine; this module is the
   subsumption + BVE fixpoint driver on top. *)

module Formula = Fl_cnf.Formula

let c_runs = Fl_obs.Counter.make "preprocess.runs"
let c_eliminated = Fl_obs.Counter.make "preprocess.vars_eliminated"
let c_subsumed = Fl_obs.Counter.make "preprocess.clauses_subsumed"
let c_strengthened = Fl_obs.Counter.make "preprocess.literals_strengthened"
let c_resolvents = Fl_obs.Counter.make "preprocess.resolvents_added"
let c_clauses_removed = Fl_obs.Counter.make "preprocess.clauses_removed"

type stats = {
  vars_before : int;
  vars_after : int;
  clauses_before : int;
  clauses_after : int;
  literals_before : int;
  literals_after : int;
  tautologies : int;
  duplicates : int;
  subsumed : int;
  strengthened : int;
  eliminated : int;
  resolvents : int;
  wall_s : float;
}

type t = {
  reduced : Formula.t;
  unsat : bool;
  (* (variable, clauses removed at its elimination), most recent first *)
  stack : (int * int array list) list;
  st : stats;
}

let run ?(growth = 0) ?(max_occ = 40) ?(label = "preprocess") ~frozen f =
  let t0 = Unix.gettimeofday () in
  Fl_obs.Counter.incr c_runs;
  let db = Simp_db.create ~frozen f in
  let vars_before = Simp_db.count_occurring_vars db in
  let clauses_before = Formula.num_clauses f in
  let literals_before = Formula.num_literals f in
  (* Fixpoint: subsumption to quiescence, then one elimination sweep over
     the variables (cheapest first); resolvents re-arm the subsumption
     queue, so loop until a sweep eliminates nothing. *)
  Simp_db.drain_subsumption db;
  let progress = ref true in
  let rounds = ref 0 in
  while !progress && (not db.Simp_db.unsat) && !rounds < 12 do
    incr rounds;
    progress := Simp_db.elimination_sweep db ~growth ~max_occ > 0
  done;
  let reduced = Simp_db.extract db in
  let clauses_after, literals_after = Simp_db.live_counts db in
  let st =
    {
      vars_before;
      vars_after = Simp_db.count_occurring_vars db;
      clauses_before;
      clauses_after;
      literals_before;
      literals_after;
      tautologies = db.Simp_db.n_taut;
      duplicates = db.Simp_db.n_dup;
      subsumed = db.Simp_db.n_sub;
      strengthened = db.Simp_db.n_str;
      eliminated = db.Simp_db.n_elim;
      resolvents = db.Simp_db.n_res;
      wall_s = Unix.gettimeofday () -. t0;
    }
  in
  Fl_obs.Counter.add c_eliminated st.eliminated;
  Fl_obs.Counter.add c_subsumed st.subsumed;
  Fl_obs.Counter.add c_strengthened st.strengthened;
  Fl_obs.Counter.add c_resolvents st.resolvents;
  Fl_obs.Counter.add c_clauses_removed
    (max 0 (st.clauses_before - st.clauses_after));
  if Fl_obs.enabled () then
    Fl_obs.emit "preprocess.done"
      ~fields:
        [
          "label", Fl_obs.String label;
          "vars_before", Fl_obs.Int st.vars_before;
          "vars_after", Fl_obs.Int st.vars_after;
          "clauses_before", Fl_obs.Int st.clauses_before;
          "clauses_after", Fl_obs.Int st.clauses_after;
          "eliminated", Fl_obs.Int st.eliminated;
          "subsumed", Fl_obs.Int st.subsumed;
          "strengthened", Fl_obs.Int st.strengthened;
          "resolvents", Fl_obs.Int st.resolvents;
          "unsat", Fl_obs.Bool db.Simp_db.unsat;
          "wall_s", Fl_obs.Float st.wall_s;
        ];
  { reduced; unsat = db.Simp_db.unsat; stack = db.Simp_db.elim_stack; st }

let formula t = t.reduced
let is_unsat (t : t) = t.unsat
let stats t = t.st
let reconstruct t model = Simp_db.reconstruct_stack t.stack model

let pp_stats fmt st =
  Format.fprintf fmt
    "%d->%d vars, %d->%d clauses, %d->%d literals (%d eliminated, %d subsumed, %d strengthened, %d resolvents, %d taut, %d dup) in %.3fs"
    st.vars_before st.vars_after st.clauses_before st.clauses_after
    st.literals_before st.literals_after st.eliminated st.subsumed
    st.strengthened st.resolvents st.tautologies st.duplicates st.wall_s
