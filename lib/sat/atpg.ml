module Gate = Fl_netlist.Gate
module Circuit = Fl_netlist.Circuit
module Faults = Fl_netlist.Faults
module Sim_word = Fl_netlist.Sim_word
module Formula = Fl_cnf.Formula
module Tseytin = Fl_cnf.Tseytin

type outcome =
  | Test of bool array
  | Untestable
  | Unknown

(* The faulty machine: a copy of [c] with the fault site forced to a
   constant.  Input-site faults keep the port (interface unchanged) and
   redirect consumers to the constant. *)
let inject_fault c ~node ~stuck_at =
  let b = Circuit.Builder.create ~name:(c.Circuit.name ^ "-faulty") () in
  let map = Circuit.copy_nodes_into b c in
  (match (Circuit.node c node).Circuit.kind with
   | Gate.Input | Gate.Key_input ->
     let const = Circuit.Builder.add b (Gate.Const stuck_at) [||] in
     for id = 0 to Circuit.num_nodes c - 1 do
       let fanins = Circuit.Builder.fanins_of b map.(id) in
       if Array.exists (fun f -> f = map.(node)) fanins then
         Circuit.Builder.set_fanins b map.(id)
           (Array.map (fun f -> if f = map.(node) then const else f) fanins)
     done;
     (* Output ports driven directly by the faulty input: *)
     Array.iter
       (fun (port, id) ->
         Circuit.Builder.output b port (if id = node then const else map.(id)))
       c.Circuit.outputs
   | Gate.Const _ | Gate.Buf | Gate.Not | Gate.And | Gate.Nand | Gate.Or
   | Gate.Nor | Gate.Xor | Gate.Xnor | Gate.Mux | Gate.Lut _ ->
     Circuit.Builder.replace b map.(node) (Gate.Const stuck_at) [||];
     Array.iter
       (fun (port, id) -> Circuit.Builder.output b port map.(id))
       c.Circuit.outputs);
  Circuit.of_builder b

type report = {
  tests : bool array list;
  testable : int;
  untestable : int;
  unknown : int;
}

module type S = sig
  val generate :
    ?budget:Cdcl.budget ->
    Circuit.t ->
    keys:bool array ->
    node:int ->
    stuck_at:bool ->
    outcome

  val cover :
    ?budget_per_fault:float ->
    Circuit.t ->
    keys:bool array ->
    faults:(int * bool) list ->
    report
end

module Make (Solver : Solver_intf.S) = struct
  let generate ?(budget = Cdcl.no_budget) c ~keys ~node ~stuck_at =
    if not (Circuit.is_acyclic c) then
      invalid_arg "Atpg.generate: cyclic circuit";
    if Array.length keys <> Circuit.num_keys c then
      invalid_arg "Atpg.generate: key length mismatch";
    let faulty = inject_fault c ~node ~stuck_at in
    let f = Formula.create () in
    let good = Tseytin.encode f c in
    let bad = Tseytin.encode ~share_inputs:good.Tseytin.input_vars f faulty in
    Tseytin.assert_vector f good.Tseytin.key_vars keys;
    Tseytin.assert_vector f bad.Tseytin.key_vars keys;
    let pairs =
      Array.to_list
        (Array.map2 (fun a b -> a, b) good.Tseytin.output_vars bad.Tseytin.output_vars)
    in
    ignore (Tseytin.assert_any_differs f pairs);
    let solver = Solver_intf.load (module Solver) f in
    match Solver.solve ~budget solver with
    | Cdcl.Sat ->
      Test (Array.map (fun v -> Solver.value solver v) good.Tseytin.input_vars)
    | Cdcl.Unsat -> Untestable
    | Cdcl.Unknown -> Unknown

  let cover ?(budget_per_fault = 5.0) c ~keys ~faults =
  let packed_keys = Array.map (fun b -> if b then -1 else 0) keys in
  let tests = ref [] in
  let testable = ref 0 and untestable = ref 0 and unknown = ref 0 in
  (* Packed batches of the accumulated test set, rebuilt lazily. *)
  let batches = ref [] in
  let stale = ref false in
  let rebuild () =
    if !stale then begin
      let rec chunk acc current count = function
        | [] -> if current = [] then acc else List.rev current :: acc
        | v :: rest ->
          if count = Sim_word.lanes then chunk (List.rev current :: acc) [ v ] 1 rest
          else chunk acc (v :: current) (count + 1) rest
      in
      batches := List.map Sim_word.pack (chunk [] [] 0 !tests);
      stale := false
    end
  in
  List.iter
    (fun (node, stuck_at) ->
      rebuild ();
      let fault = { Faults.node; stuck_at } in
      let already =
        List.exists
          (fun inputs -> Faults.detects c ~keys:packed_keys ~inputs fault)
          !batches
      in
      if already then incr testable
      else
        match
          generate ~budget:(Cdcl.budget_seconds budget_per_fault) c ~keys ~node
            ~stuck_at
        with
        | Test v ->
          incr testable;
          tests := v :: !tests;
          stale := true
        | Untestable -> incr untestable
        | Unknown -> incr unknown)
      faults;
    { tests = !tests; testable = !testable; untestable = !untestable; unknown = !unknown }
end

include Make (Solver_intf.Cdcl_backend)

let pp_report fmt r =
  Format.fprintf fmt "%d testable (%d vectors), %d proved untestable, %d unknown"
    r.testable (List.length r.tests) r.untestable r.unknown
