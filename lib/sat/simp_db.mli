(** Shared occurrence-list clause database for the CNF simplifiers.

    {!Preprocess} (the one-shot SatELite pass) and {!Inprocess} (the
    between-iterations engine) both work on this representation: packed
    canonical clauses with per-clause 63-bit variable signatures, literal
    occurrence lists with lazy staleness compaction, a subsumption work
    queue, and one elimination stack driving model reconstruction.  The
    two passes layer their own reasoning (subsumption/BVE fixpoints,
    probing, SCC collapsing, XOR/Gauss) on top.

    Like {!Solver_intf}, the record is exposed directly — the clients
    live in this library and need structural access to clauses and
    occurrence lists.  The internal reasoning steps (subsumption checks,
    resolution, single-variable elimination) are sealed behind the
    sweep/drain entry points. *)

(** Growable int vector (occurrence lists).  [data] beyond [size] is
    garbage; {!Inprocess} snapshots prefixes directly. *)
module Vec : sig
  type t = { mutable data : int array; mutable size : int }

  val create : unit -> t
  val push : t -> int -> unit
  val get : t -> int -> int
  val size : t -> int
end

(** Literal index for occurrence lists: variable [v] occupies slots
    [2*(v-1)] (positive) and [2*(v-1)+1] (negative). *)
val lidx : int -> int

(** Canonicalize a literal array in place: sort by variable, drop
    duplicate literals, detect tautologies.  [None] for a tautology,
    otherwise the clause trimmed to its deduplicated prefix.  The caller
    must own the array (it is sorted and possibly truncated). *)
val canonical : int array -> int array option

type t = {
  nvars : int;
  frozen_set : Bytes.t;  (** var-1 -> ['\001'] when frozen *)
  mutable cl : int array array;  (** [[||]] = dead slot *)
  mutable sg : int array;  (** per-clause variable signature *)
  mutable n : int;  (** clause slots used *)
  occ : Vec.t array;
      (** literal -> clause indices (stale entries allowed) *)
  queue : int Queue.t;  (** subsumption work list *)
  mutable queued : Bytes.t;  (** clause idx -> queued flag *)
  elim_set : Bytes.t;  (** var-1 -> ['\001'] when eliminated *)
  mutable elim_stack : (int * int array list) list;
  mutable unsat : bool;
  (* counters *)
  mutable n_taut : int;
  mutable n_dup : int;
  mutable n_sub : int;
  mutable n_str : int;
  mutable n_elim : int;
  mutable n_res : int;
}

(** [create ~frozen f] loads [f]: canonicalizes every clause, drops
    tautologies and exact duplicates (counted in [n_taut]/[n_dup]), and
    queues everything for subsumption.  Variables in [frozen] are never
    eliminated. *)
val create : frozen:int array -> Fl_cnf.Formula.t -> t

val alive : t -> int -> bool
val frozen : t -> int -> bool
val eliminated : t -> int -> bool

(** [kill db ci] retires clause slot [ci] (idempotent). *)
val kill : t -> int -> unit

(** [append db lits] appends a {e canonical} clause, indexes its
    occurrences and queues it for subsumption.  An empty clause flips
    [unsat] and returns [-1]; otherwise the new clause index. *)
val append : t -> int array -> int

(** [strengthen db ci l] removes literal [l] from clause [ci]
    (self-subsuming resolution); the stale occurrence entry is left for
    lazy compaction. *)
val strengthen : t -> int -> int -> unit

(** [occurrences db l] is the live clause indices currently containing
    literal [l], compacting the occurrence list in place. *)
val occurrences : t -> int -> int list

(** [occ_count db v] is the (possibly stale) occurrence-list length of
    both polarities of variable [v] — the cheap elimination-order
    heuristic. *)
val occ_count : t -> int -> int

(** Run backward subsumption/strengthening until the work queue is empty
    (or [unsat]). *)
val drain_subsumption : t -> unit

(** [elimination_sweep db ~growth ~max_occ] — one bounded-variable-
    elimination sweep over all variables, cheapest first, draining the
    subsumption queue after each.  Returns how many variables the sweep
    eliminated. *)
val elimination_sweep : t -> growth:int -> max_occ:int -> int

(** Number of distinct variables occurring in any (even dead) clause
    slot — the reduced formula's effective variable count. *)
val count_occurring_vars : t -> int

(** [(clauses, literals)] over live slots. *)
val live_counts : t -> int * int

(** Emit the reduced formula, numbering preserved.  Transfers clause-
    array ownership — the db must not be used afterwards. *)
val extract : t -> Fl_cnf.Formula.t

(** [push_elim db v saved] records [v] as eliminated with the clauses
    removed at its elimination — the snapshots {!reconstruct_stack}
    replays.  Also used by {!Inprocess} for equivalence substitutions
    ([v := l] saved as [[v; -l]; [-v; l]]) and derived units ([[l]]). *)
val push_elim : t -> int -> int array list -> unit

(** [reconstruct_stack stack model] replays an elimination stack
    most-recent-first, extending [model] with values for eliminated /
    substituted variables. *)
val reconstruct_stack : (int * int array list) list -> bool array -> bool array
