(* Packed literal representation shared by the solver core.

   A literal is one int: [2*var + sign] over 0-based variables, sign 1 for
   the negated polarity (the MiniSAT convention; see SNIPPETS.md's [Lit]).
   Negation is one xor, the watch-list index is the literal itself, and
   literals live directly in the flat clause arena with no boxing.

   Truth values ([lbool]) are byte-coded for the assignment array:
   0 = false, 1 = true, 2 = undef.  This ordering (unlike the seed's
   undef/true/false) buys a branch-free literal evaluation:

     value(lit) = assigns.(var lit) lxor (sign lit)

   which yields 0 = false, 1 = true and >= 2 = undef relative to the
   literal's polarity — one unsafe byte load and one xor on the hottest
   line of propagation. *)

type t = int

external of_int : int -> t = "%identity"
external to_int : t -> int = "%identity"

let make v sign = (2 * v) lor (if sign then 1 else 0)
let var l = l lsr 1
let sign l = l land 1 = 1
let neg l = l lxor 1
let undef = -1

(* DIMACS literal [l] (non-zero, 1-based variable) <-> packed form. *)
let of_dimacs l = (2 * (abs l - 1)) lor (if l < 0 then 1 else 0)
let to_dimacs l = if l land 1 = 0 then (l lsr 1) + 1 else -((l lsr 1) + 1)

let pp fmt l = Format.pp_print_int fmt (to_dimacs l)

module Lbool = struct
  type t = int

  let false_ = 0
  let true_ = 1
  let undef = 2

  (* Negation by bit-twiddle (SNIPPETS.md): flips false<->true, fixes
     undef.  [(v lxor 1) land lnot (v asr 1)] = 1,0,2 for v = 0,1,2. *)
  let neg v = v lxor 1 land lnot (v asr 1)
  let of_bool b = if b then true_ else false_
  let is_true v = v = true_
  let is_false v = v = false_
  let is_undef v = v >= undef
end

(* Assignment array primitives.  The array is indexed by 0-based variable;
   one byte per variable keeps the whole assignment of a million-variable
   miter in L2. *)

let value_var assigns v = Char.code (Bytes.unsafe_get assigns v)

(* Literal value under [assigns]: 0 false, 1 true, >= 2 undef.  The xor
   folds the literal's sign into the stored polarity; undef (2) maps to
   2 or 3, both covered by the [>= 2] test. *)
let value assigns l =
  Char.code (Bytes.unsafe_get assigns (l lsr 1)) lxor (l land 1)

(* [assign assigns l] makes [l] true: stores 1 for a positive literal,
   0 for a negative one. *)
let assign assigns l =
  Bytes.unsafe_set assigns (l lsr 1) (Char.unsafe_chr (1 - (l land 1)))

let unassign assigns v = Bytes.unsafe_set assigns v '\002'
