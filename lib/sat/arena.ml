(* Flat clause arena: every clause of the solver — problem and learnt —
   lives in one growable int array, addressed by a [Cref.t] word offset.

   Layout of one clause at offset [c]:

     data.(c)              header: size lsl 2  |  dead lsl 1  |  learnt
     data.(c + 1)          activity slot (float bits, see below)
     data.(c + 2 .. c+1+n) the n literals, packed ({!Lit.t})

   Sequential propagation touches header + literals in one cache stream
   instead of chasing a pointer per clause; deletion is a header bit so
   watch lists can skip dead clauses lazily; compaction slides live
   clauses down in one pass and returns a remap for outstanding crefs.

   The activity slot stores the float's IEEE bits shifted right by one
   (OCaml ints are 63-bit); clause activities are non-negative, so losing
   the lowest mantissa bit never reorders two activities by more than one
   ulp — irrelevant for a deletion heuristic. *)

module Cref = struct
  type t = int

  let none = -1
end

type t = {
  mutable data : int array;
  mutable size : int;  (* words used *)
  mutable clauses : int;  (* live clauses *)
  mutable learnts : int;  (* live learnt clauses *)
  mutable wasted : int;  (* words held by dead clauses *)
}

let create () = { data = Array.make 1024 0; size = 0; clauses = 0; learnts = 0; wasted = 0 }

let header_words = 2

let ensure a extra =
  let cap = Array.length a.data in
  if a.size + extra > cap then begin
    let cap' = ref (max 1024 (2 * cap)) in
    while a.size + extra > !cap' do
      cap' := 2 * !cap'
    done;
    let data' = Array.make !cap' 0 in
    Array.blit a.data 0 data' 0 a.size;
    a.data <- data'
  end

let pack_act x = Int64.to_int (Int64.shift_right_logical (Int64.bits_of_float x) 1)
let unpack_act b = Int64.float_of_bits (Int64.shift_left (Int64.of_int b) 1)

let alloc a ~learnt lits =
  let n = Array.length lits in
  if n < 2 then invalid_arg "Arena.alloc: clauses must have >= 2 literals";
  ensure a (header_words + n);
  let c = a.size in
  a.data.(c) <- (n lsl 2) lor (if learnt then 1 else 0);
  a.data.(c + 1) <- 0;  (* pack_act 0.0 = 0 *)
  Array.blit lits 0 a.data (c + header_words) n;
  a.size <- c + header_words + n;
  a.clauses <- a.clauses + 1;
  if learnt then a.learnts <- a.learnts + 1;
  c

let size a c = Array.unsafe_get a.data c lsr 2
let learnt a c = Array.unsafe_get a.data c land 1 = 1
let is_dead a c = Array.unsafe_get a.data c land 2 <> 0
let lit a c i = Array.unsafe_get a.data (c + header_words + i)
let set_lit a c i l = Array.unsafe_set a.data (c + header_words + i) l

let swap_lits a c i j =
  let base = c + header_words in
  let tmp = a.data.(base + i) in
  a.data.(base + i) <- a.data.(base + j);
  a.data.(base + j) <- tmp

let activity a c = unpack_act a.data.(c + 1)
let set_activity a c x = a.data.(c + 1) <- pack_act x

let kill a c =
  if not (is_dead a c) then begin
    a.data.(c) <- a.data.(c) lor 2;
    a.clauses <- a.clauses - 1;
    if learnt a c then a.learnts <- a.learnts - 1;
    a.wasted <- a.wasted + header_words + size a c
  end

let num_clauses a = a.clauses
let num_learnts a = a.learnts
let words a = a.size
let wasted a = a.wasted

let iter a f =
  let c = ref 0 in
  while !c < a.size do
    let len = size a !c in
    if not (is_dead a !c) then f !c;
    c := !c + header_words + len
  done

let iter_learnts a f = iter a (fun c -> if learnt a c then f c)

(* The literals of clause [c], as a fresh array (tests, clause export). *)
let lits a c = Array.sub a.data (c + header_words) (size a c)

(* Slide live clauses down over dead ones, in order.  Returns the cref
   remap: every pre-compaction cref of a live clause maps to its new
   offset; dead crefs map to [Cref.none].  The remap reads forwarding
   addresses written into the old array, so it is O(1) per query and
   valid until the next [compact]. *)
let compact a =
  let old = a.data and old_size = a.size in
  let data' = Array.make (Array.length a.data) 0 in
  let w = ref 0 in
  let c = ref 0 in
  while !c < old_size do
    let header = old.(!c) in
    let len = header lsr 2 in
    if header land 2 = 0 then begin
      Array.blit old !c data' !w (header_words + len);
      (* Forwarding address for the remap, in the old activity slot. *)
      old.(!c + 1) <- !w;
      w := !w + header_words + len
    end;
    c := !c + header_words + len
  done;
  a.data <- data';
  a.size <- !w;
  a.wasted <- 0;
  fun cref ->
    if cref < 0 || cref >= old_size || old.(cref) land 2 <> 0 then Cref.none
    else old.(cref + 1)

(* O(1) snapshot/restore for append-only phases: [mark] records the
   allocation frontier and counters; [restore] truncates back to it,
   dropping every clause allocated since.  Only valid when no pre-mark
   clause was killed and no compaction ran in between — the counters are
   reset, not recomputed. *)
type snapshot = { s_size : int; s_clauses : int; s_learnts : int; s_wasted : int }

let mark a =
  { s_size = a.size; s_clauses = a.clauses; s_learnts = a.learnts; s_wasted = a.wasted }

let restore a snap =
  if snap.s_size > a.size then invalid_arg "Arena.restore: stale snapshot";
  a.size <- snap.s_size;
  a.clauses <- snap.s_clauses;
  a.learnts <- snap.s_learnts;
  a.wasted <- snap.s_wasted
