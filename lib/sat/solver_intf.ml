(* Solver backend abstraction (ROADMAP item): everything the attack
   framework needs from an incremental SAT solver behind one signature, so
   a DPLL fallback, an external DIMACS solver or a different incremental
   backend can slot in without touching the attack loops.  The shared
   outcome/stats/budget vocabulary deliberately lives in {!Cdcl} — it is
   the reference backend and the types predate the abstraction. *)

module type S = sig
  type t

  val create : unit -> t

  (** [ensure_vars s n] makes variables [1..n] known to the solver. *)
  val ensure_vars : t -> int -> unit

  (** [add_clause s lits] adds a clause of DIMACS literals; callable
      between [solve] calls (incremental). *)
  val add_clause : t -> int list -> unit

  val add_clause_a : t -> int array -> unit

  val solve :
    ?assumptions:int list -> ?budget:Cdcl.budget -> t -> Cdcl.outcome

  (** Model access after a [Sat] answer. *)
  val value : t -> int -> bool

  val model : t -> bool array
  val num_vars : t -> int
  val num_clauses : t -> int
  val stats : t -> Cdcl.stats

  (** [iter_learnts s f] exports every live learnt clause as DIMACS
      literals — the hook portfolio clause-sharing builds on.  Backends
      without a learnt database implement it as a no-op (see
      {!No_learnt_export}); callers must treat an empty export as "no
      clauses to share", never as unsat. *)
  val iter_learnts : t -> (int array -> unit) -> unit

  (** Periodic progress hook (see {!Cdcl.set_progress}); backends without
      mid-solve reporting may treat these as no-ops. *)
  val set_progress : t -> every:int -> (Cdcl.stats -> unit) -> unit

  val clear_progress : t -> unit
end

(* Default no-op learnt export for backends that keep no learnt database
   (or cannot enumerate it): [include No_learnt_export] satisfies the
   signature without promising clauses. *)
module No_learnt_export = struct
  let iter_learnts _ _ = ()
end

(* The compile-time proof that {!Cdcl} implements the signature — and the
   default backend handed to {!Fl_attacks.Session}.  [create] is
   eta-expanded to drop the optional [?config] argument. *)
module Cdcl_backend : S with type t = Cdcl.t = struct
  include Cdcl

  let create () = Cdcl.create ()
end

let cdcl : (module S) = (module Cdcl_backend)

(* Backend-generic [Cdcl.of_formula]. *)
let load (type s) (module B : S with type t = s) f : s =
  let sv = B.create () in
  B.ensure_vars sv (Fl_cnf.Formula.num_vars f);
  Fl_cnf.Formula.iter_clauses f (B.add_clause_a sv);
  sv
