(** Flat clause arena.

    All clauses live in one growable int array; a clause is addressed by
    an abstract word offset ({!Cref.t}).  Each clause is a header word
    (size, learnt flag, dead bit), an activity slot and its literals
    inline, so propagation walks a contiguous cache stream instead of
    dereferencing a heap object per clause.  Deletion is lazy (a header
    bit); {!compact} slides live clauses down and hands back a cref
    remap.  See DESIGN.md §4e for the layout and lifetime rules. *)

module Cref : sig
  (** A clause reference: the clause's word offset in the arena.  Crefs
      are stable under {!alloc} and {!kill} but invalidated by
      {!compact} (use the returned remap) and {!restore}. *)
  type t = int

  (** Sentinel for "no clause" (reason slots, remap of a dead cref). *)
  val none : t
end

type t

val create : unit -> t

(** [alloc a ~learnt lits] appends a clause of packed literals and
    returns its cref.  @raise Invalid_argument on fewer than 2 literals
    (units belong on the trail, not in the arena). *)
val alloc : t -> learnt:bool -> int array -> Cref.t

val size : t -> Cref.t -> int
val learnt : t -> Cref.t -> bool
val is_dead : t -> Cref.t -> bool

(** [lit a c i] is the [i]-th literal (packed, {!Lit.t} encoding). *)
val lit : t -> Cref.t -> int -> int

val set_lit : t -> Cref.t -> int -> int -> unit
val swap_lits : t -> Cref.t -> int -> int -> unit

(** Learnt-clause activity, stored inline (1 ulp precision loss). *)
val activity : t -> Cref.t -> float

val set_activity : t -> Cref.t -> float -> unit

(** [kill a c] marks [c] dead; the words are reclaimed at the next
    {!compact}.  Killing twice is a no-op. *)
val kill : t -> Cref.t -> unit

val num_clauses : t -> int
val num_learnts : t -> int

(** Words allocated (live + dead). *)
val words : t -> int

(** Words held by dead clauses. *)
val wasted : t -> int

(** [iter a f] calls [f] on every live cref in address order. *)
val iter : t -> (Cref.t -> unit) -> unit

val iter_learnts : t -> (Cref.t -> unit) -> unit

(** The literals of a clause, as a fresh array. *)
val lits : t -> Cref.t -> int array

(** [compact a] drops dead clauses and returns the remap old cref ->
    new cref ([Cref.none] for dead ones).  Every cref held outside the
    arena must be remapped; the remap is valid until the next
    [compact]. *)
val compact : t -> Cref.t -> Cref.t

(** O(1) snapshot of an append-only arena. *)
type snapshot

val mark : t -> snapshot

(** [restore a s] drops every clause allocated since [mark].  Only valid
    when no pre-mark clause was killed and no compaction ran since.
    @raise Invalid_argument when the snapshot is stale (a compaction
    shrank the arena below the mark). *)
val restore : t -> snapshot -> unit
