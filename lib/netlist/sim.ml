type tristate = View.tristate = V0 | V1 | VX

exception Unresolved = View.Unresolved

let tri_of_bool b = if b then V1 else V0

(* The hot entry points below delegate to the compiled, memoized evaluator
   in {!View}; the [_reference] variants keep the original interpretive
   walk (re-sorting the circuit every call) as the uncached baseline for
   differential tests and benchmarks. *)

let check_widths c ~inputs ~keys =
  if Array.length inputs <> Circuit.num_inputs c then
    invalid_arg
      (Printf.sprintf "Sim: expected %d inputs, got %d" (Circuit.num_inputs c)
         (Array.length inputs));
  if Array.length keys <> Circuit.num_keys c then
    invalid_arg
      (Printf.sprintf "Sim: expected %d key bits, got %d" (Circuit.num_keys c)
         (Array.length keys))

(* Three-valued gate evaluation.  MUX with a known select ignores the
   unselected (possibly X) branch — this is what lets a correct key open a
   structural cycle. *)
let eval_gate_tri kind (args : tristate array) =
  let exception X in
  let bool_of = function V0 -> false | V1 -> true | VX -> raise X in
  match kind with
  | Gate.Mux ->
    (match args.(0) with
     | V0 -> args.(1)
     | V1 -> args.(2)
     | VX ->
       (* X select: output known only when both branches agree. *)
       if args.(1) = args.(2) && args.(1) <> VX then args.(1) else VX)
  | Gate.And | Gate.Nand ->
    let neg = kind = Gate.Nand in
    if Array.exists (fun v -> v = V0) args then tri_of_bool neg
    else if Array.exists (fun v -> v = VX) args then VX
    else tri_of_bool (not neg)
  | Gate.Or | Gate.Nor ->
    let neg = kind = Gate.Nor in
    if Array.exists (fun v -> v = V1) args then tri_of_bool (not neg)
    else if Array.exists (fun v -> v = VX) args then VX
    else tri_of_bool neg
  | Gate.Input | Gate.Key_input | Gate.Const _ | Gate.Buf | Gate.Not | Gate.Xor
  | Gate.Xnor | Gate.Lut _ -> (
    (* Kinds whose output is X as soon as any input is X. *)
    try tri_of_bool (Gate.eval kind (Array.map bool_of args))
    with X -> VX)

let node_values c ~inputs ~keys =
  check_widths c ~inputs ~keys;
  let n = Circuit.num_nodes c in
  let values = Array.make n VX in
  Array.iteri (fun i id -> values.(id) <- tri_of_bool inputs.(i)) c.Circuit.inputs;
  Array.iteri (fun i id -> values.(id) <- tri_of_bool keys.(i)) c.Circuit.keys;
  let eval_node id =
    let nd = Circuit.node c id in
    match nd.Circuit.kind with
    | Gate.Input | Gate.Key_input -> values.(id)
    | Gate.Const b -> tri_of_bool b
    | kind -> eval_gate_tri kind (Array.map (fun f -> values.(f)) nd.Circuit.fanins)
  in
  (match Circuit.compute_topological_order c with
   | Some order -> Array.iter (fun id -> values.(id) <- eval_node id) order
   | None ->
     (* Fixpoint iteration for cyclic circuits.  Values move monotonically
        from X to 0/1 under eval_gate_tri, so at most [n] sweeps settle. *)
     let changed = ref true in
     let sweeps = ref 0 in
     while !changed && !sweeps <= n do
       changed := false;
       incr sweeps;
       for id = 0 to n - 1 do
         if values.(id) = VX then begin
           let v = eval_node id in
           if v <> VX then begin
             values.(id) <- v;
             changed := true
           end
         end
       done
     done);
  values

let eval_tristate_reference c ~inputs ~keys =
  let values = node_values c ~inputs ~keys in
  Array.map (fun (_, id) -> values.(id)) c.Circuit.outputs

let eval_reference c ~inputs ~keys =
  let out = eval_tristate_reference c ~inputs ~keys in
  Array.mapi
    (fun i v ->
      match v with
      | V0 -> false
      | V1 -> true
      | VX ->
        let port, _ = c.Circuit.outputs.(i) in
        raise (Unresolved port))
    out

let eval_node_values c ~inputs ~keys =
  View.eval_node_values (View.of_circuit c) ~inputs ~keys

let eval_tristate c ~inputs ~keys =
  View.eval_tristate (View.of_circuit c) ~inputs ~keys

let eval c ~inputs ~keys = View.eval (View.of_circuit c) ~inputs ~keys

let vector_of_int ~width v = Array.init width (fun i -> v land (1 lsl i) <> 0)

let int_of_vector bits =
  Array.to_list bits
  |> List.rev
  |> List.fold_left (fun acc b -> (acc lsl 1) lor (if b then 1 else 0)) 0

let random_vector rng width = Array.init width (fun _ -> Random.State.bool rng)

let settles ?(probes = 8) ?(seed = 0) c ~keys =
  let rng = Random.State.make [| seed |] in
  let v = View.of_circuit c in
  let width = Circuit.num_inputs c in
  let rec go i =
    if i >= probes then true
    else
      let inputs = random_vector rng width in
      let out = View.eval_tristate v ~inputs ~keys in
      if Array.exists (fun x -> x = VX) out then false else go (i + 1)
  in
  go 0

let equal_on_vectors a b ~keys_a ~keys_b ~vectors =
  let va = View.of_circuit a and vb = View.of_circuit b in
  List.for_all
    (fun inputs ->
      try View.eval va ~inputs ~keys:keys_a = View.eval vb ~inputs ~keys:keys_b
      with Unresolved _ -> false)
    vectors

let equivalent_exhaustive a b ~keys_a ~keys_b =
  let n = Circuit.num_inputs a in
  if n <> Circuit.num_inputs b then
    invalid_arg "Sim.equivalent_exhaustive: input counts differ";
  if n > 20 then invalid_arg "Sim.equivalent_exhaustive: too many inputs";
  let vectors = List.init (1 lsl n) (fun v -> vector_of_int ~width:n v) in
  equal_on_vectors a b ~keys_a ~keys_b ~vectors
