let lanes = Sys.int_size

type word = View.word = { defined : int; value : int }

let all_ones = -1
let undefined = { defined = 0; value = 0 }
let const_word b = { defined = all_ones; value = (if b then all_ones else 0) }

(* Kleene strong three-valued connectives, bit-parallel. *)

let word_not w = { defined = w.defined; value = lnot w.value }

(* AND: defined where all operands are defined, or where some operand is a
   defined 0. Value treats undefined operands as 1 (they cannot force 0). *)
let word_and ws =
  let all_def = Array.fold_left (fun acc w -> acc land w.defined) all_ones ws in
  let forced0 = Array.fold_left (fun acc w -> acc lor (w.defined land lnot w.value)) 0 ws in
  let value = Array.fold_left (fun acc w -> acc land (w.value lor lnot w.defined)) all_ones ws in
  { defined = all_def lor forced0; value }

let word_or ws =
  let all_def = Array.fold_left (fun acc w -> acc land w.defined) all_ones ws in
  let forced1 = Array.fold_left (fun acc w -> acc lor (w.defined land w.value)) 0 ws in
  let value = Array.fold_left (fun acc w -> acc lor (w.value land w.defined)) 0 ws in
  { defined = all_def lor forced1; value }

let word_xor ws =
  let defined = Array.fold_left (fun acc w -> acc land w.defined) all_ones ws in
  let value = Array.fold_left (fun acc w -> acc lxor w.value) 0 ws in
  { defined; value }

(* MUX: defined where the select is defined and the chosen branch is, or
   where both branches agree while defined. *)
let word_mux s a b =
  let chosen_def = s.defined land ((s.value land b.defined) lor (lnot s.value land a.defined)) in
  let agree = a.defined land b.defined land lnot (a.value lxor b.value) in
  (* (s ? b : a) is also right on agreement lanes, where both options are
     equal and the (possibly undefined) select bit picks either. *)
  let value = (s.value land b.value) lor (lnot s.value land a.value) in
  { defined = chosen_def lor agree; value }

let word_lut tt ws =
  let k = Array.length ws in
  (* Conservative definedness: all address bits defined. *)
  let defined = Array.fold_left (fun acc w -> acc land w.defined) all_ones ws in
  let value = ref 0 in
  Array.iteri
    (fun row v ->
      if v then begin
        let m = ref all_ones in
        for j = 0 to k - 1 do
          let bit = row land (1 lsl j) <> 0 in
          m := !m land (if bit then ws.(j).value else lnot ws.(j).value)
        done;
        value := !value lor !m
      end)
    tt;
  { defined; value = !value }

let eval_gate kind ws =
  match kind with
  | Gate.Input | Gate.Key_input ->
    invalid_arg "Sim_word: inputs carry external values"
  | Gate.Const b -> const_word b
  | Gate.Buf -> ws.(0)
  | Gate.Not -> word_not ws.(0)
  | Gate.And -> word_and ws
  | Gate.Nand -> word_not (word_and ws)
  | Gate.Or -> word_or ws
  | Gate.Nor -> word_not (word_or ws)
  | Gate.Xor -> word_xor ws
  | Gate.Xnor -> word_not (word_xor ws)
  | Gate.Mux -> word_mux ws.(0) ws.(1) ws.(2)
  | Gate.Lut tt -> word_lut tt ws

(* The interpretive walk survives only for the [override] path (fault
   injection forces arbitrary node words, which the compiled evaluator does
   not model); the plain path runs on the shared {!View} backend. *)
let eval_tristate_override ~override c ~inputs ~keys =
  if Array.length inputs <> Circuit.num_inputs c then
    invalid_arg "Sim_word: input width mismatch";
  if Array.length keys <> Circuit.num_keys c then
    invalid_arg "Sim_word: key width mismatch";
  let n = Circuit.num_nodes c in
  let values = Array.make n undefined in
  Array.iteri
    (fun i id ->
      values.(id) <-
        (match override id with
         | Some forced -> forced
         | None -> { defined = all_ones; value = inputs.(i) }))
    c.Circuit.inputs;
  Array.iteri
    (fun i id -> values.(id) <- { defined = all_ones; value = keys.(i) })
    c.Circuit.keys;
  let eval_node id =
    match override id with
    | Some forced -> forced
    | None ->
      let nd = Circuit.node c id in
      (match nd.Circuit.kind with
       | Gate.Input | Gate.Key_input -> values.(id)
       | kind -> eval_gate kind (Array.map (fun f -> values.(f)) nd.Circuit.fanins))
  in
  (match Circuit.topological_order c with
   | Some order -> Array.iter (fun id -> values.(id) <- eval_node id) order
   | None ->
     (* Monotone fixpoint: definedness only grows, values on defined lanes
        are stable, so at most n*lanes sweeps — in practice a handful. *)
     let changed = ref true in
     let sweeps = ref 0 in
     while !changed && !sweeps <= n do
       changed := false;
       incr sweeps;
       for id = 0 to n - 1 do
         let v = eval_node id in
         if v.defined land lnot values.(id).defined <> 0 then begin
           (* Merge newly defined lanes, keep previously settled ones. *)
           let keep = values.(id).defined in
           values.(id) <-
             {
               defined = keep lor v.defined;
               value = (values.(id).value land keep) lor (v.value land lnot keep);
             };
           changed := true
         end
       done
     done);
  Array.map (fun (_, id) -> values.(id)) c.Circuit.outputs

let eval_tristate ?override c ~inputs ~keys =
  match override with
  | Some override -> eval_tristate_override ~override c ~inputs ~keys
  | None -> View.eval_words (View.of_circuit c) ~inputs ~keys

let eval c ~inputs ~keys = View.eval_packed (View.of_circuit c) ~inputs ~keys

let pack vectors =
  match vectors with
  | [] -> invalid_arg "Sim_word.pack: no vectors"
  | first :: _ ->
    let width = Array.length first in
    if List.length vectors > lanes then invalid_arg "Sim_word.pack: too many vectors";
    let words = Array.make width 0 in
    List.iteri
      (fun lane v ->
        if Array.length v <> width then invalid_arg "Sim_word.pack: ragged vectors";
        Array.iteri (fun j b -> if b then words.(j) <- words.(j) lor (1 lsl lane)) v)
      vectors;
    words

let unpack ~lanes_used words =
  List.init lanes_used (fun lane ->
      Array.map (fun w -> w land (1 lsl lane) <> 0) words)

let random_words rng ~width =
  (* 63 random bits from two 30-bit draws and one 3-bit draw. *)
  Array.init width (fun _ ->
      Random.State.bits rng
      lor (Random.State.bits rng lsl 30)
      lor ((Random.State.bits rng land 7) lsl 60))

let count_diff_lanes a b =
  if Array.length a <> Array.length b then
    invalid_arg "Sim_word.count_diff_lanes: width mismatch";
  let diff = ref 0 in
  Array.iteri (fun i w -> diff := !diff lor (w lxor b.(i))) a;
  let rec popcount x acc = if x = 0 then acc else popcount (x lsr 1) (acc + (x land 1)) in
  popcount (!diff land max_int) (if !diff < 0 then 1 else 0)
