let escape name =
  String.map (fun c -> if c = '"' || c = '\\' then '_' else c) name

let to_string c =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" (escape c.Circuit.name));
  Buffer.add_string buf "  rankdir=LR;\n  node [fontsize=10];\n";
  (* Declaring nodes in topological order (when one exists) makes graphviz
     lay ranks out left-to-right by logic level. *)
  let order =
    match View.topo_order (View.of_circuit c) with
    | Some order -> order
    | None -> Array.init (Circuit.num_nodes c) Fun.id
  in
  Array.iter (fun id ->
    let nd = Circuit.node c id in
    let shape, extra =
      match nd.Circuit.kind with
      | Gate.Input -> "box", ""
      | Gate.Key_input -> "box", ", color=red, fontcolor=red"
      | Gate.Const _ -> "plaintext", ""
      | Gate.Mux -> "trapezium", ""
      | Gate.Lut _ -> "component", ""
      | Gate.Buf | Gate.Not | Gate.And | Gate.Nand | Gate.Or | Gate.Nor
      | Gate.Xor | Gate.Xnor ->
        "ellipse", ""
    in
    Buffer.add_string buf
      (Printf.sprintf "  n%d [label=\"%s\\n%s\", shape=%s%s];\n" id
         (escape nd.Circuit.name)
         (Gate.to_string nd.Circuit.kind)
         shape extra);
    Array.iteri
      (fun slot f ->
        let attr =
          match nd.Circuit.kind with
          | Gate.Mux when slot = 0 -> " [style=dashed, label=\"s\"]"
          | _ -> ""
        in
        Buffer.add_string buf (Printf.sprintf "  n%d -> n%d%s;\n" f id attr))
      nd.Circuit.fanins)
    order;
  Array.iter
    (fun (port, id) ->
      Buffer.add_string buf
        (Printf.sprintf "  out_%s [label=\"%s\", shape=doublecircle];\n"
           (escape port) (escape port));
      Buffer.add_string buf (Printf.sprintf "  n%d -> out_%s;\n" id (escape port)))
    c.Circuit.outputs;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file c path =
  let oc = open_out path in
  output_string oc (to_string c);
  close_out oc
