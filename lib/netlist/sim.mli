(** Functional simulation of circuits.

    Acyclic circuits are evaluated in topological order.  Cyclic circuits
    (produced by cyclic PLR insertion) are evaluated with three-valued
    (0/1/X) fixpoint iteration: with a key that functionally opens every
    cycle, all outputs resolve to 0/1.

    This module is a thin wrapper over {!View}: evaluation goes through the
    per-circuit compiled evaluator, memoized by circuit physical identity.
    The [_reference] entry points keep the original interpretive walk (a
    fresh topological sort every call) as the uncached baseline for
    differential tests and benchmarks. *)

(** Three-valued logic value (re-export of {!View.tristate}). *)
type tristate = View.tristate = V0 | V1 | VX

exception Unresolved of string
(** Raised by {!eval} when a cyclic circuit leaves an output at X
    (re-export of {!View.Unresolved}). *)

(** [eval c ~inputs ~keys] is the output vector (in [c.outputs] order).
    @raise Invalid_argument on input/key length mismatch.
    @raise Unresolved when a combinational cycle does not settle. *)
val eval : Circuit.t -> inputs:bool array -> keys:bool array -> bool array

(** [eval_tristate c ~inputs ~keys] never raises on unsettled cycles; the
    returned vector may contain [VX]. *)
val eval_tristate :
  Circuit.t -> inputs:bool array -> keys:bool array -> tristate array

(** [eval_node_values c ~inputs ~keys] is the settled value of every node
    (id-indexed), for attacks that observe internal wires. *)
val eval_node_values :
  Circuit.t -> inputs:bool array -> keys:bool array -> tristate array

(** {1 Uncached reference paths}

    Semantically identical to {!eval}/{!eval_tristate} but interpretive and
    unmemoized (each call pays a fresh topological sort).  Used by the
    equivalence property tests and the throughput benchmark. *)

val eval_reference :
  Circuit.t -> inputs:bool array -> keys:bool array -> bool array

val eval_tristate_reference :
  Circuit.t -> inputs:bool array -> keys:bool array -> tristate array

(** [settles c ~keys] is whether a random-probe of the circuit under [keys]
    settles (no X output) on a handful of random input vectors — a cheap
    check that a key functionally opens all cycles. *)
val settles : ?probes:int -> ?seed:int -> Circuit.t -> keys:bool array -> bool

(** {1 Vector helpers} *)

(** [vector_of_int ~width v] is the LSB-first bit vector of [v]. *)
val vector_of_int : width:int -> int -> bool array

val int_of_vector : bool array -> int

(** [random_vector rng width] draws a uniform bit vector. *)
val random_vector : Random.State.t -> int -> bool array

(** [equal_on_vectors a b ~keys_a ~keys_b ~vectors] checks output equality of
    two circuits with the same PI count on the given input vectors. *)
val equal_on_vectors :
  Circuit.t ->
  Circuit.t ->
  keys_a:bool array ->
  keys_b:bool array ->
  vectors:bool array list ->
  bool

(** [equivalent_exhaustive a b ~keys_a ~keys_b] checks equality on all 2^n
    input vectors (intended for small n).
    @raise Invalid_argument when the PI counts differ or exceed 20. *)
val equivalent_exhaustive :
  Circuit.t -> Circuit.t -> keys_a:bool array -> keys_b:bool array -> bool
