type tristate = V0 | V1 | VX

exception Unresolved of string

(* Observability: build/eval counters and per-memo hit/miss rates, all in
   the default Fl_obs registry.  Counters are bare int cells, so the hot
   paths pay one increment per *evaluation pass* (never per node). *)
let c_builds = Fl_obs.Counter.make "view.builds"
let c_cache_hits = Fl_obs.Counter.make "view.cache.hit"
let c_evals = Fl_obs.Counter.make "view.evals"
let c_fixpoint_sweeps = Fl_obs.Counter.make "view.fixpoint_sweeps"
let c_fanouts_hit = Fl_obs.Counter.make "view.memo.fanouts.hit"
let c_fanouts_miss = Fl_obs.Counter.make "view.memo.fanouts.miss"
let c_levels_hit = Fl_obs.Counter.make "view.memo.levels.hit"
let c_levels_miss = Fl_obs.Counter.make "view.memo.levels.miss"
let c_scc_hit = Fl_obs.Counter.make "view.memo.scc.hit"
let c_scc_miss = Fl_obs.Counter.make "view.memo.scc.miss"
let c_coi_hit = Fl_obs.Counter.make "view.memo.coi.hit"
let c_coi_miss = Fl_obs.Counter.make "view.memo.coi.miss"
let c_shash_hit = Fl_obs.Counter.make "view.memo.shash.hit"
let c_shash_miss = Fl_obs.Counter.make "view.memo.shash.miss"

type word = { defined : int; value : int }

let lanes = Sys.int_size
let all_ones = -1

(* One immediate opcode per node; [aux] carries the constant bit or the LUT
   table index, fanins live in one flat array sliced by [fanin_off]. *)
type opcode =
  | Onop  (* inputs and key inputs: values are loaded, never computed *)
  | Oconst
  | Obuf
  | Onot
  | Oand
  | Onand
  | Oor
  | Onor
  | Oxor
  | Oxnor
  | Omux
  | Olut

type t = {
  circuit : Circuit.t;
  topo : int array option;
  order : int array;  (* evaluation order: topo if acyclic, ids otherwise *)
  op : opcode array;
  aux : int array;
  fanin_off : int array;  (* length n+1, offsets into fanin_flat *)
  fanin_flat : int array;
  luts : bool array array;
  (* Scratch value arrays, reused by every evaluation (zero per-eval
     allocation on the per-node path).  Bit i of value.(id) is meaningful
     only when bit i of defined.(id) is set. *)
  defined : int array;
  value : int array;
  mutable fanouts_memo : int array array option;
  mutable levels_memo : int array option option;
  mutable scc_memo : int array option;
  mutable shash_memo : int64 option;
  coi_memo : (int, bool array) Hashtbl.t;  (* node id -> transitive fanin *)
}

let circuit v = v.circuit
let topo_order v = v.topo
let is_acyclic v = v.topo <> None

let build c =
  let n = Circuit.num_nodes c in
  let topo = Circuit.topological_order c in
  let order = match topo with Some o -> o | None -> Array.init n Fun.id in
  let op = Array.make n Onop in
  let aux = Array.make n 0 in
  let fanin_off = Array.make (n + 1) 0 in
  let total = ref 0 in
  for id = 0 to n - 1 do
    fanin_off.(id) <- !total;
    total := !total + Array.length (Circuit.node c id).Circuit.fanins
  done;
  fanin_off.(n) <- !total;
  let fanin_flat = Array.make (max 1 !total) 0 in
  let luts = ref [] in
  let num_luts = ref 0 in
  for id = 0 to n - 1 do
    let nd = Circuit.node c id in
    Array.blit nd.Circuit.fanins 0 fanin_flat fanin_off.(id)
      (Array.length nd.Circuit.fanins);
    op.(id) <-
      (match nd.Circuit.kind with
       | Gate.Input | Gate.Key_input -> Onop
       | Gate.Const b ->
         aux.(id) <- (if b then 1 else 0);
         Oconst
       | Gate.Buf -> Obuf
       | Gate.Not -> Onot
       | Gate.And -> Oand
       | Gate.Nand -> Onand
       | Gate.Or -> Oor
       | Gate.Nor -> Onor
       | Gate.Xor -> Oxor
       | Gate.Xnor -> Oxnor
       | Gate.Mux -> Omux
       | Gate.Lut tt ->
         aux.(id) <- !num_luts;
         incr num_luts;
         luts := Array.copy tt :: !luts;
         Olut)
  done;
  {
    circuit = c;
    topo;
    order;
    op;
    aux;
    fanin_off;
    fanin_flat;
    luts = Array.of_list (List.rev !luts);
    defined = Array.make n 0;
    value = Array.make n 0;
    fanouts_memo = None;
    levels_memo = None;
    scc_memo = None;
    shash_memo = None;
    coi_memo = Hashtbl.create 8;
  }

(* Views are memoized per circuit physical identity (circuits are
   immutable); the ephemeron keys let views die with their circuits.

   The cache is domain-local: a view's scratch arrays are single-threaded
   state, so two domains must never share one view even for the same
   circuit.  Each domain (each Fl_par worker) builds and caches its own
   views; the ephemeron contract is per domain. *)
module Cache = Ephemeron.K1.Make (struct
  type t = Circuit.t

  let equal = ( == )
  let hash c = Hashtbl.hash (Circuit.num_nodes c, c.Circuit.name)
end)

let cache_key : t Cache.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Cache.create 64)

let of_circuit c =
  let cache = Domain.DLS.get cache_key in
  match Cache.find_opt cache c with
  | Some v ->
    Fl_obs.Counter.incr c_cache_hits;
    v
  | None ->
    let v = build c in
    Fl_obs.Counter.incr c_builds;
    Cache.replace cache c v;
    v

(* ------------------------------------------------------------------ *)
(* Cached structural analyses                                          *)
(* ------------------------------------------------------------------ *)

let fanouts v =
  match v.fanouts_memo with
  | Some f ->
    Fl_obs.Counter.incr c_fanouts_hit;
    f
  | None ->
    Fl_obs.Counter.incr c_fanouts_miss;
    let f = Circuit.fanouts v.circuit in
    v.fanouts_memo <- Some f;
    f

let scc v =
  match v.scc_memo with
  | Some s ->
    Fl_obs.Counter.incr c_scc_hit;
    s
  | None ->
    Fl_obs.Counter.incr c_scc_miss;
    let s = Circuit.strongly_connected_components v.circuit in
    v.scc_memo <- Some s;
    s

let levels v =
  match v.levels_memo with
  | Some r ->
    Fl_obs.Counter.incr c_levels_hit;
    r
  | None ->
    Fl_obs.Counter.incr c_levels_miss;
    let r =
      match v.topo with
      | None -> None
      | Some order ->
        let c = v.circuit in
        let lv = Array.make (Circuit.num_nodes c) 0 in
        Array.iter
          (fun id ->
            let fanins = (Circuit.node c id).Circuit.fanins in
            if Array.length fanins > 0 then begin
              let m = Array.fold_left (fun acc f -> max acc lv.(f)) 0 fanins in
              lv.(id) <- m + 1
            end)
          order;
        Some lv
    in
    v.levels_memo <- Some r;
    r

let depth v = Option.map (Array.fold_left max 0) (levels v)

(* Cached per node id (attack loops query the same output cones over and
   over).  The memoized array is shared: callers must not mutate it. *)
let cone_of_influence v id =
  match Hashtbl.find_opt v.coi_memo id with
  | Some cone ->
    Fl_obs.Counter.incr c_coi_hit;
    cone
  | None ->
    Fl_obs.Counter.incr c_coi_miss;
    let cone = Circuit.transitive_fanin v.circuit id in
    Hashtbl.add v.coi_memo id cone;
    cone

(* ------------------------------------------------------------------ *)
(* Structural hash                                                     *)
(* ------------------------------------------------------------------ *)

(* A canonical 64-bit digest of the circuit's structure, invariant under
   node renaming and reordering: names never enter the hash, and every
   node's digest is a function of its gate kind (plus primary-input /
   key-bit position for the interface nodes, constant value, LUT table)
   and its fanins' digests in fanin order — so any topological relabeling
   of the same DAG hashes identically.  Acyclic circuits get one exact
   pass in topological order (each node sees final fanin digests, so the
   digest encodes the whole cone).  Cyclic circuits fall back to bounded
   Weisfeiler–Leman refinement: [cyclic_rounds] simultaneous update
   sweeps, which is likewise order-invariant and separates any two nodes
   whose neighbourhoods differ within that radius.  The final digest
   folds the interface shape, the output drivers in port order (port
   names ignored) and the order-invariant sum of all node digests, so
   logic outside the output cones still counts.

   Mixing is splitmix64: multiply-xor-shift finalization keeps avalanche
   strong enough that the 64-bit digests behave like random keys for the
   serving layer's content-addressed cache (which additionally probes for
   collisions before trusting a hit). *)

let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let h_combine h x = mix64 (Int64.add (Int64.mul h 0x9e3779b97f4a7c15L) x)
let h_int h i = h_combine h (Int64.of_int i)

let cyclic_rounds = 96

let node_seed c pos id =
  let h0 = 0x243f6a8885a308d3L in
  match (Circuit.node c id).Circuit.kind with
  | Gate.Input -> h_int (h_int h0 1) pos.(id)
  | Gate.Key_input -> h_int (h_int h0 2) pos.(id)
  | Gate.Const b -> h_int (h_int h0 3) (if b then 1 else 0)
  | Gate.Buf -> h_int h0 4
  | Gate.Not -> h_int h0 5
  | Gate.And -> h_int h0 6
  | Gate.Nand -> h_int h0 7
  | Gate.Or -> h_int h0 8
  | Gate.Nor -> h_int h0 9
  | Gate.Xor -> h_int h0 10
  | Gate.Xnor -> h_int h0 11
  | Gate.Mux -> h_int h0 12
  | Gate.Lut tt ->
    Array.fold_left
      (fun h b -> h_int h (if b then 1 else 0))
      (h_int (h_int h0 13) (Array.length tt))
      tt

let compute_structural_hash v =
  let c = v.circuit in
  let n = Circuit.num_nodes c in
  (* Interface nodes are tagged by position, not name: input 0 of any
     circuit seeds identically, so isomorphic circuits with permuted ids
     but matching PI/key orders collide (by design). *)
  let pos = Array.make n 0 in
  Array.iteri (fun i id -> pos.(id) <- i) c.Circuit.inputs;
  Array.iteri (fun i id -> pos.(id) <- i) c.Circuit.keys;
  let seed = Array.init n (node_seed c pos) in
  let hash = Array.copy seed in
  let fold_node src id =
    let h = ref seed.(id) in
    for k = v.fanin_off.(id) to v.fanin_off.(id + 1) - 1 do
      h := h_combine !h src.(v.fanin_flat.(k))
    done;
    !h
  in
  (match v.topo with
   | Some order -> Array.iter (fun id -> hash.(id) <- fold_node hash id) order
   | None ->
     let cur = ref (Array.copy seed) in
     let nxt = ref (Array.make n 0L) in
     for _ = 1 to min n cyclic_rounds do
       for id = 0 to n - 1 do
         !nxt.(id) <- fold_node !cur id
       done;
       let t = !cur in
       cur := !nxt;
       nxt := t
     done;
     Array.blit !cur 0 hash 0 n);
  let h = ref 0x452821e638d01377L in
  h := h_int !h (Circuit.num_inputs c);
  h := h_int !h (Circuit.num_keys c);
  h := h_int !h (Circuit.num_outputs c);
  Array.iter (fun (_, id) -> h := h_combine !h hash.(id)) c.Circuit.outputs;
  h_combine !h (Array.fold_left Int64.add 0L hash)

let structural_hash v =
  match v.shash_memo with
  | Some h ->
    Fl_obs.Counter.incr c_shash_hit;
    h
  | None ->
    Fl_obs.Counter.incr c_shash_miss;
    let h = compute_structural_hash v in
    v.shash_memo <- Some h;
    h

let structural_hash_hex v = Printf.sprintf "%016Lx" (structural_hash v)

(* ------------------------------------------------------------------ *)
(* Compiled evaluation                                                 *)
(* ------------------------------------------------------------------ *)

(* Evaluate node [id] (Kleene strong three-valued connectives, bit-parallel)
   and merge the newly defined lanes into the scratch arrays; previously
   settled lanes keep their values, which makes a single forward pass and a
   cyclic fixpoint sweep the same code.  Returns the mask of lanes that
   became defined. *)
let step v id =
  let d = v.defined and vl = v.value in
  let off = v.fanin_off.(id) in
  let nd = ref 0 and nv = ref 0 in
  (match v.op.(id) with
   | Onop -> ()
   | Oconst ->
     nd := all_ones;
     nv := (if v.aux.(id) = 1 then all_ones else 0)
   | Obuf ->
     let f = v.fanin_flat.(off) in
     nd := d.(f);
     nv := vl.(f)
   | Onot ->
     let f = v.fanin_flat.(off) in
     nd := d.(f);
     nv := lnot vl.(f)
   | Oand | Onand ->
     (* Defined where all operands are, or where some operand is a defined
        0; undefined operands cannot force 0. *)
     let last = v.fanin_off.(id + 1) - 1 in
     let all_def = ref all_ones and forced0 = ref 0 and acc = ref all_ones in
     for i = off to last do
       let f = v.fanin_flat.(i) in
       let fd = d.(f) and fv = vl.(f) in
       all_def := !all_def land fd;
       forced0 := !forced0 lor (fd land lnot fv);
       acc := !acc land (fv lor lnot fd)
     done;
     nd := !all_def lor !forced0;
     nv := (if v.op.(id) = Onand then lnot !acc else !acc)
   | Oor | Onor ->
     let last = v.fanin_off.(id + 1) - 1 in
     let all_def = ref all_ones and forced1 = ref 0 and acc = ref 0 in
     for i = off to last do
       let f = v.fanin_flat.(i) in
       let fd = d.(f) and fv = vl.(f) in
       all_def := !all_def land fd;
       forced1 := !forced1 lor (fd land fv);
       acc := !acc lor (fv land fd)
     done;
     nd := !all_def lor !forced1;
     nv := (if v.op.(id) = Onor then lnot !acc else !acc)
   | Oxor | Oxnor ->
     let last = v.fanin_off.(id + 1) - 1 in
     let all_def = ref all_ones and acc = ref 0 in
     for i = off to last do
       let f = v.fanin_flat.(i) in
       all_def := !all_def land d.(f);
       acc := !acc lxor vl.(f)
     done;
     nd := !all_def;
     nv := (if v.op.(id) = Oxnor then lnot !acc else !acc)
   | Omux ->
     (* Defined where the select is defined and the chosen branch is, or
        where both branches agree while defined (an undefined select picks
        either). *)
     let s = v.fanin_flat.(off)
     and a = v.fanin_flat.(off + 1)
     and b = v.fanin_flat.(off + 2) in
     let sd = d.(s) and sv = vl.(s) in
     let ad = d.(a) and av = vl.(a) in
     let bd = d.(b) and bv = vl.(b) in
     let chosen = sd land ((sv land bd) lor (lnot sv land ad)) in
     let agree = ad land bd land lnot (av lxor bv) in
     nd := chosen lor agree;
     nv := (sv land bv) lor (lnot sv land av)
   | Olut ->
     (* Conservative definedness: all address bits defined. *)
     let tt = v.luts.(v.aux.(id)) in
     let k = v.fanin_off.(id + 1) - off in
     let all_def = ref all_ones in
     for i = off to off + k - 1 do
       all_def := !all_def land d.(v.fanin_flat.(i))
     done;
     let acc = ref 0 in
     Array.iteri
       (fun row set ->
         if set then begin
           let m = ref all_ones in
           for j = 0 to k - 1 do
             let fv = vl.(v.fanin_flat.(off + j)) in
             m := !m land (if row land (1 lsl j) <> 0 then fv else lnot fv)
           done;
           acc := !acc lor !m
         end)
       tt;
     nd := !all_def;
     nv := !acc);
  let keep = d.(id) in
  let fresh = !nd land lnot keep in
  if fresh <> 0 then begin
    vl.(id) <- (vl.(id) land keep) lor (!nv land lnot keep);
    d.(id) <- keep lor !nd
  end;
  fresh

let check_widths v ~inputs ~keys =
  let c = v.circuit in
  if inputs <> Circuit.num_inputs c then
    invalid_arg
      (Printf.sprintf "View: expected %d inputs, got %d" (Circuit.num_inputs c)
         inputs);
  if keys <> Circuit.num_keys c then
    invalid_arg
      (Printf.sprintf "View: expected %d key bits, got %d" (Circuit.num_keys c)
         keys)

let reset v =
  let n = Array.length v.defined in
  Array.fill v.defined 0 n 0;
  Array.fill v.value 0 n 0

let run v =
  Fl_obs.Counter.incr c_evals;
  match v.topo with
  | Some order -> Array.iter (fun id -> ignore (step v id)) order
  | None ->
    (* Monotone fixpoint: definedness only grows, settled lanes are stable,
       so at most n sweeps are needed; in practice a handful. *)
    let n = Array.length v.order in
    let changed = ref true in
    let sweeps = ref 0 in
    while !changed && !sweeps <= n do
      changed := false;
      incr sweeps;
      for i = 0 to n - 1 do
        if step v v.order.(i) <> 0 then changed := true
      done
    done;
    Fl_obs.Counter.add c_fixpoint_sweeps !sweeps

let run_packed v ~inputs ~keys =
  check_widths v ~inputs:(Array.length inputs) ~keys:(Array.length keys);
  reset v;
  let c = v.circuit in
  Array.iteri
    (fun i id ->
      v.defined.(id) <- all_ones;
      v.value.(id) <- inputs.(i))
    c.Circuit.inputs;
  Array.iteri
    (fun i id ->
      v.defined.(id) <- all_ones;
      v.value.(id) <- keys.(i))
    c.Circuit.keys;
  run v

let run_bools v ~inputs ~keys =
  check_widths v ~inputs:(Array.length inputs) ~keys:(Array.length keys);
  reset v;
  let c = v.circuit in
  Array.iteri
    (fun i id ->
      v.defined.(id) <- all_ones;
      v.value.(id) <- (if inputs.(i) then all_ones else 0))
    c.Circuit.inputs;
  Array.iteri
    (fun i id ->
      v.defined.(id) <- all_ones;
      v.value.(id) <- (if keys.(i) then all_ones else 0))
    c.Circuit.keys;
  run v

let tristate_of v id =
  if v.defined.(id) land 1 = 0 then VX
  else if v.value.(id) land 1 = 1 then V1
  else V0

let eval_tristate v ~inputs ~keys =
  run_bools v ~inputs ~keys;
  Array.map (fun (_, id) -> tristate_of v id) v.circuit.Circuit.outputs

let eval v ~inputs ~keys =
  run_bools v ~inputs ~keys;
  Array.map
    (fun (port, id) ->
      if v.defined.(id) land 1 = 0 then raise (Unresolved port)
      else v.value.(id) land 1 = 1)
    v.circuit.Circuit.outputs

let eval_node_values v ~inputs ~keys =
  run_bools v ~inputs ~keys;
  Array.init (Circuit.num_nodes v.circuit) (tristate_of v)

let eval_words v ~inputs ~keys =
  run_packed v ~inputs ~keys;
  Array.map
    (fun (_, id) -> { defined = v.defined.(id); value = v.value.(id) })
    v.circuit.Circuit.outputs

let eval_packed v ~inputs ~keys =
  run_packed v ~inputs ~keys;
  Array.map
    (fun (port, id) ->
      if v.defined.(id) <> all_ones then raise (Unresolved port)
      else v.value.(id))
    v.circuit.Circuit.outputs

let broadcast bits = Array.map (fun b -> if b then all_ones else 0) bits

(* ------------------------------------------------------------------ *)
(* Key-correctness probing                                             *)
(* ------------------------------------------------------------------ *)

let random_word rng =
  (* int_size random bits from two 30-bit draws and one top-slice draw. *)
  Random.State.bits rng
  lor (Random.State.bits rng lsl 30)
  lor (Random.State.bits rng lsl 60)

(* Outputs of the two views (already evaluated) agree on every lane of
   [mask]; an undefined lane on either side is a disagreement. *)
let outputs_agree va vb mask =
  let oa = va.circuit.Circuit.outputs and ob = vb.circuit.Circuit.outputs in
  let bad = ref 0 in
  Array.iteri
    (fun i (_, ida) ->
      let _, idb = ob.(i) in
      let def = va.defined.(ida) land vb.defined.(idb) in
      bad :=
        !bad lor lnot def
        lor ((va.value.(ida) lxor vb.value.(idb)) land def))
    oa;
  !bad land mask = 0

let agree_on_probes ?(exhaustive_limit = 10) ?(vectors = 256) ?(seed = 7) va
    ~keys_a vb ~keys_b =
  let n = Circuit.num_inputs va.circuit in
  if Circuit.num_inputs vb.circuit <> n then
    invalid_arg "View.agree_on_probes: input counts differ";
  if Array.length (va.circuit.Circuit.outputs)
     <> Array.length (vb.circuit.Circuit.outputs)
  then invalid_arg "View.agree_on_probes: output counts differ";
  let ka = broadcast keys_a and kb = broadcast keys_b in
  let inputs = Array.make n 0 in
  let probe used =
    let mask = if used >= lanes then all_ones else (1 lsl used) - 1 in
    run_packed va ~inputs ~keys:ka;
    (* va's scratch arrays survive vb's evaluation: each view owns its
       buffers. *)
    run_packed vb ~inputs ~keys:kb;
    outputs_agree va vb mask
  in
  if n <= exhaustive_limit then begin
    let space = 1 lsl n in
    let rec go base =
      base >= space
      ||
      let used = min lanes (space - base) in
      for j = 0 to n - 1 do
        let w = ref 0 in
        for l = 0 to used - 1 do
          if (base + l) land (1 lsl j) <> 0 then w := !w lor (1 lsl l)
        done;
        inputs.(j) <- !w
      done;
      probe used && go (base + used)
    in
    go 0
  end
  else begin
    let rng = Random.State.make [| seed |] in
    let rec go remaining =
      remaining <= 0
      ||
      let used = min lanes remaining in
      for j = 0 to n - 1 do
        inputs.(j) <- random_word rng
      done;
      probe used && go (remaining - used)
    in
    go vectors
  end
