type node = { kind : Gate.t; fanins : int array; name : string }

type t = {
  name : string;
  nodes : node array;
  inputs : int array;
  keys : int array;
  outputs : (string * int) array;
}

module Builder = struct
  type t = {
    circuit_name : string;
    mutable node_count : int;
    mutable kinds : Gate.t array;
    mutable fanin_tab : int array array;
    mutable names : string array;
    name_index : (string, int) Hashtbl.t;
    mutable input_ids : int list;  (* reversed *)
    mutable key_ids : int list;  (* reversed *)
    mutable output_ports : (string * int) list;  (* reversed *)
    mutable fresh : int;
    pending : (int, unit) Hashtbl.t;  (* declared but not yet wired *)
  }

  let create ?(name = "circuit") () =
    {
      circuit_name = name;
      node_count = 0;
      kinds = Array.make 16 Gate.Input;
      fanin_tab = Array.make 16 [||];
      names = Array.make 16 "";
      name_index = Hashtbl.create 64;
      input_ids = [];
      key_ids = [];
      output_ports = [];
      fresh = 0;
      pending = Hashtbl.create 16;
    }

  let size b = b.node_count

  let ensure_capacity b =
    let cap = Array.length b.kinds in
    if b.node_count >= cap then begin
      let cap' = cap * 2 in
      let grow mk a =
        let a' = mk cap' in
        Array.blit a 0 a' 0 cap;
        a'
      in
      b.kinds <- grow (fun n -> Array.make n Gate.Input) b.kinds;
      b.fanin_tab <- grow (fun n -> Array.make n [||]) b.fanin_tab;
      b.names <- grow (fun n -> Array.make n "") b.names
    end

  let fresh_name b =
    let rec go () =
      let candidate = Printf.sprintf "n%d" b.fresh in
      b.fresh <- b.fresh + 1;
      if Hashtbl.mem b.name_index candidate then go () else candidate
    in
    go ()

  let unique_name b base =
    if not (Hashtbl.mem b.name_index base) then base
    else begin
      let rec go i =
        let candidate = Printf.sprintf "%s_c%d" base i in
        if Hashtbl.mem b.name_index candidate then go (i + 1) else candidate
      in
      go 1
    end

  let check_fanins b kind fanins =
    if not (Gate.valid_fanin_count kind (Array.length fanins)) then
      invalid_arg
        (Printf.sprintf "Circuit.Builder: %d fanins invalid for gate %s"
           (Array.length fanins) (Gate.to_string kind));
    Array.iter
      (fun id ->
        if id < 0 || id >= b.node_count then
          invalid_arg (Printf.sprintf "Circuit.Builder: unknown fanin id %d" id))
      fanins

  let push ?name b kind fanins =
    let name =
      match name with
      | None -> fresh_name b
      | Some n ->
        if Hashtbl.mem b.name_index n then
          invalid_arg (Printf.sprintf "Circuit.Builder: duplicate name %S" n);
        n
    in
    ensure_capacity b;
    let id = b.node_count in
    b.kinds.(id) <- kind;
    b.fanin_tab.(id) <- fanins;
    b.names.(id) <- name;
    Hashtbl.add b.name_index name id;
    b.node_count <- id + 1;
    (match kind with
     | Gate.Input -> b.input_ids <- id :: b.input_ids
     | Gate.Key_input -> b.key_ids <- id :: b.key_ids
     | Gate.Const _ | Gate.Buf | Gate.Not | Gate.And | Gate.Nand | Gate.Or
     | Gate.Nor | Gate.Xor | Gate.Xnor | Gate.Mux | Gate.Lut _ ->
       ());
    id

  let add ?name b kind fanins =
    check_fanins b kind fanins;
    push ?name b kind (Array.copy fanins)

  let declare ?name b kind =
    let id = push ?name b kind [||] in
    if not (Gate.valid_fanin_count kind 0) then Hashtbl.replace b.pending id ();
    id

  let input ?name b = add ?name b Gate.Input [||]
  let key_input ?name b = add ?name b Gate.Key_input [||]

  let set_fanins b id fanins =
    if id < 0 || id >= b.node_count then
      invalid_arg "Circuit.Builder.set_fanins: unknown id";
    check_fanins b b.kinds.(id) fanins;
    b.fanin_tab.(id) <- Array.copy fanins;
    Hashtbl.remove b.pending id

  let set_kind b id kind =
    if id < 0 || id >= b.node_count then
      invalid_arg "Circuit.Builder.set_kind: unknown id";
    (match kind, b.kinds.(id) with
     | (Gate.Input | Gate.Key_input), _ | _, (Gate.Input | Gate.Key_input) ->
       invalid_arg "Circuit.Builder.set_kind: cannot change input-ness"
     | _, _ -> ());
    if not (Gate.valid_fanin_count kind (Array.length b.fanin_tab.(id))) then
      invalid_arg "Circuit.Builder.set_kind: fanin count invalid for new kind";
    b.kinds.(id) <- kind

  let replace b id kind fanins =
    if id < 0 || id >= b.node_count then
      invalid_arg "Circuit.Builder.replace: unknown id";
    (match kind, b.kinds.(id) with
     | (Gate.Input | Gate.Key_input), _ | _, (Gate.Input | Gate.Key_input) ->
       invalid_arg "Circuit.Builder.replace: cannot change input-ness"
     | _, _ -> ());
    check_fanins b kind fanins;
    b.kinds.(id) <- kind;
    b.fanin_tab.(id) <- Array.copy fanins;
    Hashtbl.remove b.pending id

  let output b name id =
    if id < 0 || id >= b.node_count then
      invalid_arg "Circuit.Builder.output: unknown id";
    b.output_ports <- (name, id) :: b.output_ports

  let kind_of b id =
    if id < 0 || id >= b.node_count then
      invalid_arg "Circuit.Builder.kind_of: unknown id";
    b.kinds.(id)

  let fanins_of b id =
    if id < 0 || id >= b.node_count then
      invalid_arg "Circuit.Builder.fanins_of: unknown id";
    Array.copy b.fanin_tab.(id)

  let freeze b =
    if b.output_ports = [] then
      invalid_arg "Circuit.Builder.freeze: circuit has no outputs";
    if Hashtbl.length b.pending > 0 then begin
      let id = Hashtbl.fold (fun id () _ -> id) b.pending (-1) in
      invalid_arg
        (Printf.sprintf "Circuit.Builder.freeze: node %S declared but never wired"
           b.names.(id))
    end;
    let nodes =
      Array.init b.node_count (fun id ->
          { kind = b.kinds.(id); fanins = b.fanin_tab.(id); name = b.names.(id) })
    in
    {
      name = b.circuit_name;
      nodes;
      inputs = Array.of_list (List.rev b.input_ids);
      keys = Array.of_list (List.rev b.key_ids);
      outputs = Array.of_list (List.rev b.output_ports);
    }
end

let of_builder = Builder.freeze

(* Two-phase copy (declare, then wire) so forward references and
   combinational cycles survive the trip. *)
let copy_nodes_into b c =
  let map =
    Array.map
      (fun (n : node) -> Builder.declare ~name:(Builder.unique_name b n.name) b n.kind)
      c.nodes
  in
  Array.iteri
    (fun id (n : node) ->
      if Array.length n.fanins > 0 then
        Builder.set_fanins b map.(id) (Array.map (fun f -> map.(f)) n.fanins))
    c.nodes;
  map

let copy_into b c =
  let map = copy_nodes_into b c in
  Array.iter (fun (name, id) -> Builder.output b name map.(id)) c.outputs;
  map

let node c id = c.nodes.(id)
let num_nodes c = Array.length c.nodes
let num_inputs c = Array.length c.inputs
let num_keys c = Array.length c.keys
let num_outputs c = Array.length c.outputs

let num_gates c =
  Array.fold_left
    (fun acc n ->
      match n.kind with
      | Gate.Input | Gate.Key_input | Gate.Const _ -> acc
      | Gate.Buf | Gate.Not | Gate.And | Gate.Nand | Gate.Or | Gate.Nor
      | Gate.Xor | Gate.Xnor | Gate.Mux | Gate.Lut _ ->
        acc + 1)
    0 c.nodes

let find_by_name c name =
  let n = Array.length c.nodes in
  let rec go i =
    if i >= n then None
    else if String.equal c.nodes.(i).name name then Some i
    else go (i + 1)
  in
  go 0

let fanouts c =
  let n = Array.length c.nodes in
  let counts = Array.make n 0 in
  Array.iter
    (fun nd -> Array.iter (fun f -> counts.(f) <- counts.(f) + 1) nd.fanins)
    c.nodes;
  let result = Array.init n (fun i -> Array.make counts.(i) 0) in
  let fill = Array.make n 0 in
  Array.iteri
    (fun id nd ->
      Array.iter
        (fun f ->
          result.(f).(fill.(f)) <- id;
          fill.(f) <- fill.(f) + 1)
        nd.fanins)
    c.nodes;
  result

let compute_topological_order c =
  (* Kahn's algorithm; duplicate fanin edges are counted on both sides, which
     keeps the decrements symmetric. *)
  let n = Array.length c.nodes in
  let indegree = Array.make n 0 in
  Array.iteri
    (fun id nd -> indegree.(id) <- Array.length nd.fanins)
    c.nodes;
  let fan_out = fanouts c in
  let queue = Queue.create () in
  Array.iteri (fun id d -> if d = 0 then Queue.add id queue) indegree;
  let order = Array.make n 0 in
  let filled = ref 0 in
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    order.(!filled) <- id;
    incr filled;
    Array.iter
      (fun consumer ->
        indegree.(consumer) <- indegree.(consumer) - 1;
        if indegree.(consumer) = 0 then Queue.add consumer queue)
      fan_out.(id)
  done;
  if !filled = n then Some order else None

(* Memoized per circuit physical identity (circuits are immutable).  The
   ephemeron keys let cached orders die with their circuits.  Consumers must
   treat the returned array as read-only — it is shared.  The table itself
   is domain-local (Fl_par workers each memoize their own orders), so no
   lock sits on this hot lookup. *)
module Topo_cache = Ephemeron.K1.Make (struct
  type nonrec t = t

  let equal = ( == )
  let hash c = Hashtbl.hash (Array.length c.nodes, c.name)
end)

let topo_cache_key : int array option Topo_cache.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Topo_cache.create 64)

let topological_order c =
  let topo_cache = Domain.DLS.get topo_cache_key in
  match Topo_cache.find_opt topo_cache c with
  | Some r -> r
  | None ->
    let r = compute_topological_order c in
    Topo_cache.replace topo_cache c r;
    r

let is_acyclic c = topological_order c <> None

let transitive_fanin c id =
  let n = Array.length c.nodes in
  let seen = Array.make n false in
  let rec visit i =
    if not seen.(i) then begin
      seen.(i) <- true;
      Array.iter visit c.nodes.(i).fanins
    end
  in
  visit id;
  seen

let reaches c ~src ~dst =
  (* src reaches dst iff src is in the transitive fanin of dst. *)
  (transitive_fanin c dst).(src)

(* Iterative Tarjan over the signal-flow graph (edges fanin -> node). *)
let strongly_connected_components c =
  let n = Array.length c.nodes in
  let fan_out = fanouts c in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let scc = Array.make n (-1) in
  let stack = Stack.create () in
  let next_index = ref 0 in
  let next_scc = ref 0 in
  (* Explicit DFS stack of (node, next-child position). *)
  let visit root =
    let call_stack = ref [ root, ref 0 ] in
    index.(root) <- !next_index;
    lowlink.(root) <- !next_index;
    incr next_index;
    Stack.push root stack;
    on_stack.(root) <- true;
    while !call_stack <> [] do
      match !call_stack with
      | [] -> ()
      | (u, child) :: rest ->
        if !child < Array.length fan_out.(u) then begin
          let v = fan_out.(u).(!child) in
          incr child;
          if index.(v) < 0 then begin
            index.(v) <- !next_index;
            lowlink.(v) <- !next_index;
            incr next_index;
            Stack.push v stack;
            on_stack.(v) <- true;
            call_stack := (v, ref 0) :: !call_stack
          end
          else if on_stack.(v) && index.(v) < lowlink.(u) then
            lowlink.(u) <- index.(v)
        end
        else begin
          call_stack := rest;
          (match rest with
           | (parent, _) :: _ ->
             if lowlink.(u) < lowlink.(parent) then lowlink.(parent) <- lowlink.(u)
           | [] -> ());
          if lowlink.(u) = index.(u) then begin
            let continue = ref true in
            while !continue do
              let w = Stack.pop stack in
              on_stack.(w) <- false;
              scc.(w) <- !next_scc;
              if w = u then continue := false
            done;
            incr next_scc
          end
        end
    done
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then visit v
  done;
  scc

let find_cycles c ~limit =
  (* Bounded DFS cycle enumeration: for each node, search for a path back to
     itself through fanouts.  Sufficient for diagnostics and CycSAT on locked
     circuits where cycles pass through inserted routing blocks. *)
  let n = Array.length c.nodes in
  let fan_out = fanouts c in
  let cycles = ref [] in
  let count = ref 0 in
  let on_path = Array.make n false in
  let rec dfs root path id =
    if !count < limit then
      Array.iter
        (fun next ->
          if !count < limit then
            if next = root then begin
              cycles := List.rev (id :: path) :: !cycles;
              incr count
            end
            else if next > root && not on_path.(next) then begin
              on_path.(next) <- true;
              dfs root (id :: path) next;
              on_path.(next) <- false
            end)
        fan_out.(id)
  in
  let root = ref 0 in
  while !root < n && !count < limit do
    on_path.(!root) <- true;
    dfs !root [] !root;
    on_path.(!root) <- false;
    incr root
  done;
  List.rev !cycles

let kind_histogram c =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun nd ->
      let key = Gate.to_string nd.kind in
      let prev = Option.value ~default:0 (Hashtbl.find_opt tbl key) in
      Hashtbl.replace tbl key (prev + 1))
    c.nodes;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let depth c =
  match topological_order c with
  | None -> None
  | Some order ->
    let level = Array.make (Array.length c.nodes) 0 in
    Array.iter
      (fun id ->
        let nd = c.nodes.(id) in
        if Array.length nd.fanins > 0 then begin
          let m = Array.fold_left (fun acc f -> max acc level.(f)) 0 nd.fanins in
          level.(id) <- m + 1
        end)
      order;
    Some (Array.fold_left max 0 level)

let validate c =
  let n = Array.length c.nodes in
  let seen_names = Hashtbl.create n in
  Array.iteri
    (fun id (nd : node) ->
      if Hashtbl.mem seen_names nd.name then
        invalid_arg (Printf.sprintf "Circuit.validate: duplicate name %S" nd.name);
      Hashtbl.add seen_names nd.name ();
      if not (Gate.valid_fanin_count nd.kind (Array.length nd.fanins)) then
        invalid_arg
          (Printf.sprintf "Circuit.validate: node %d (%s) has bad fanin count" id
             nd.name);
      Array.iter
        (fun f ->
          if f < 0 || f >= n then
            invalid_arg
              (Printf.sprintf "Circuit.validate: node %d references unknown id %d"
                 id f))
        nd.fanins)
    c.nodes;
  Array.iter
    (fun id ->
      match c.nodes.(id).kind with
      | Gate.Input -> ()
      | _ -> invalid_arg "Circuit.validate: inputs array lists a non-input")
    c.inputs;
  Array.iter
    (fun id ->
      match c.nodes.(id).kind with
      | Gate.Key_input -> ()
      | _ -> invalid_arg "Circuit.validate: keys array lists a non-key")
    c.keys;
  if Array.length c.outputs = 0 then
    invalid_arg "Circuit.validate: circuit has no outputs";
  Array.iter
    (fun (_, id) ->
      if id < 0 || id >= n then
        invalid_arg "Circuit.validate: output references unknown id")
    c.outputs

let pp_stats fmt c =
  Format.fprintf fmt
    "@[<v>circuit %s: %d nodes, %d gates, %d inputs, %d keys, %d outputs%s@,%a@]"
    c.name (num_nodes c) (num_gates c) (num_inputs c) (num_keys c)
    (num_outputs c)
    (if is_acyclic c then "" else " (cyclic)")
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.pp_print_string f ", ")
       (fun f (k, v) -> Format.fprintf f "%s:%d" k v))
    (kind_histogram c)
