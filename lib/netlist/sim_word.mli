(** Bit-parallel (word-level) simulation: one native-int word per wire
    simulates {!lanes} independent input vectors at once.

    Semantics match {!Sim}'s three-valued evaluation lane-for-lane: each
    wire carries a (defined, value) word pair, combinational cycles settle
    by fixpoint, and a MUX with a defined select ignores its undefined
    branch.  Used by corruption measurements and random-vector equivalence
    checks, which become ~60x cheaper than scalar simulation. *)

(** Number of parallel lanes (= [Sys.int_size], 63 on 64-bit systems). *)
val lanes : int

type word = View.word = { defined : int; value : int }
(** Per-wire lane bundle; bit [i] of [value] is meaningful only when bit [i]
    of [defined] is set (re-export of {!View.word}). *)

(** [eval_tristate c ~inputs ~keys] — packed counterpart of
    {!Sim.eval_tristate}; input/key words are treated as fully defined.
    [override] (fault injection, forced values) replaces a node's computed
    word when it returns [Some].
    @raise Invalid_argument on width mismatch. *)
val eval_tristate :
  ?override:(int -> word option) ->
  Circuit.t ->
  inputs:int array ->
  keys:int array ->
  word array

(** [eval c ~inputs ~keys] — packed outputs.
    @raise Sim.Unresolved when any lane of any output is undefined. *)
val eval : Circuit.t -> inputs:int array -> keys:int array -> int array

(** [pack vectors] turns up to {!lanes} scalar vectors (all of equal width)
    into packed input words; lane [i] is vector [i]. *)
val pack : bool array list -> int array

(** [unpack ~lanes_used word_outputs] — scalar vectors back, lane-major. *)
val unpack : lanes_used:int -> int array -> bool array list

(** [random_words rng ~width] draws uniformly random packed inputs. *)
val random_words : Random.State.t -> width:int -> int array

(** [count_diff_lanes a b] — number of lanes where the packed output words
    differ (both assumed fully defined). *)
val count_diff_lanes : int array -> int array -> int
