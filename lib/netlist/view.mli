(** Shared per-circuit analysis view with a compiled evaluator.

    A view is a lazily-computed, cached bundle of everything the layers
    above repeatedly ask of one circuit: topological order, acyclicity,
    logic levels, fanout lists, cone of influence, strongly connected
    components — plus a {e compiled evaluator}: a flat instruction array
    built once per circuit that evaluates three-valued scalar and 64-wide
    bitsliced word values with zero per-node allocation on the hot path.

    {!of_circuit} memoizes views per {!Circuit.t} {e physical identity}
    (circuits are immutable, so a view never goes stale); the table is
    ephemeron-keyed, so views die with their circuits, and {e domain-local}:
    each domain builds and caches its own view of a circuit, because the
    scratch arrays below are single-threaded state.  [Fl_par] sweep tasks
    therefore get an isolated view per worker domain for free.  [Sim] and
    [Sim_word] are thin wrappers over this module and share one backend.

    Views are not re-entrant: the scratch value arrays are reused by every
    evaluation, so do not evaluate the same view from within an evaluation
    of it (nothing in this codebase does), and never ship a view value
    across domains — re-call {!of_circuit} on the receiving domain. *)

type t

(** Three-valued logic value (the canonical definition; [Sim.tristate] is a
    re-export). *)
type tristate = V0 | V1 | VX

exception Unresolved of string
(** Raised by the strict evaluators when a combinational cycle leaves an
    output at X.  [Sim.Unresolved] is a re-export of this exception. *)

type word = { defined : int; value : int }
(** Per-wire lane bundle of the bitsliced evaluator; bit [i] of [value] is
    meaningful only when bit [i] of [defined] is set.  [Sim_word.word] is a
    re-export. *)

(** Number of parallel lanes of the word evaluator (= [Sys.int_size]). *)
val lanes : int

(** [of_circuit c] is the cached view of [c], building (and memoizing) it on
    first use. *)
val of_circuit : Circuit.t -> t

val circuit : t -> Circuit.t

(** {1 Cached structural analyses} *)

(** Cached {!Circuit.topological_order}.  Do not mutate the returned
    array — it is shared by every consumer of the view. *)
val topo_order : t -> int array option

val is_acyclic : t -> bool

(** Logic level of every node (longest distance from any source), or [None]
    when cyclic.  Shared array — do not mutate. *)
val levels : t -> int array option

(** Levelised logic depth, as {!Circuit.depth}. *)
val depth : t -> int option

(** Cached {!Circuit.fanouts}.  Shared — do not mutate. *)
val fanouts : t -> int array array

(** Cached {!Circuit.strongly_connected_components}.  Shared — do not
    mutate. *)
val scc : t -> int array

(** [cone_of_influence v id] is the transitive fanin mask of [id] (see
    {!Circuit.transitive_fanin}), cached per node id on first request.
    Shared array — do not mutate.  Hit/miss rates are reported on the
    [view.memo.coi.*] {!Fl_obs} counters, as are the other memoized
    analyses ([view.memo.fanouts.*], [view.memo.levels.*],
    [view.memo.scc.*]) and the evaluator ([view.builds],
    [view.cache.hit], [view.evals], [view.fixpoint_sweeps]). *)
val cone_of_influence : t -> int -> bool array

(** {1 Structural hash}

    A canonical 64-bit digest of the circuit {e structure}: invariant
    under node renaming and node-id permutation (names never enter the
    hash; every node digest depends only on its gate kind — plus
    primary-input / key-bit position for interface nodes, constant value
    and LUT truth table — and its fanins' digests in fanin order), but
    sensitive to the interface shape, output port order and any gate or
    wiring change.  Two structurally isomorphic circuits whose input,
    key and output orders match hash identically; this is the cache key
    of the [Fl_serve] content-addressed miter cache.

    Acyclic circuits are digested exactly in one topological pass.
    Cyclic circuits use bounded Weisfeiler–Leman refinement (96
    simultaneous sweeps), still order-invariant, with the usual WL
    caveat that structures differing only beyond that radius may
    collide.  As with any 64-bit content hash, collisions of genuinely
    different circuits are possible in principle — equality of hashes is
    strong evidence, not proof, of isomorphism (the serve cache probes
    candidate hits with random simulation vectors before trusting
    them).  Memoized per view; hit/miss on [view.memo.shash.*]. *)

val structural_hash : t -> int64

(** [structural_hash_hex v] is the digest as 16 lowercase hex digits. *)
val structural_hash_hex : t -> string

(** {1 Compiled evaluation}

    Acyclic circuits run the instruction array once in topological order;
    cyclic circuits run monotone fixpoint sweeps where lanes move from
    undefined to defined (so a key that functionally opens every cycle
    resolves all outputs). *)

(** [eval v ~inputs ~keys] — output vector in [outputs] order.
    @raise Invalid_argument on input/key width mismatch.
    @raise Unresolved when a combinational cycle does not settle. *)
val eval : t -> inputs:bool array -> keys:bool array -> bool array

(** [eval_tristate v ~inputs ~keys] never raises on unsettled cycles. *)
val eval_tristate : t -> inputs:bool array -> keys:bool array -> tristate array

(** [eval_node_values v ~inputs ~keys] — settled value of every node,
    id-indexed (freshly allocated). *)
val eval_node_values :
  t -> inputs:bool array -> keys:bool array -> tristate array

(** [eval_words v ~inputs ~keys] — bitsliced evaluation of {!lanes} input
    vectors at once; input/key words are treated as fully defined. *)
val eval_words : t -> inputs:int array -> keys:int array -> word array

(** [eval_packed v ~inputs ~keys] — packed outputs.
    @raise Unresolved when any lane of any output is undefined. *)
val eval_packed : t -> inputs:int array -> keys:int array -> int array

(** [broadcast bits] packs a scalar vector into fully-replicated words
    (every lane carries the same bit), for mixing scalar keys with packed
    inputs. *)
val broadcast : bool array -> int array

(** {1 Key-correctness probing}

    The shared "do two circuits agree" helper used by key verification
    ([Locked.key_matches]) and attack post-checks ([Removal]): exhaustive
    when the input space is small, word-batched random probes otherwise. *)

(** [agree_on_probes a ~keys_a b ~keys_b] is whether [a] under [keys_a] and
    [b] under [keys_b] produce identical outputs — on all [2^n] input
    vectors when [n <= exhaustive_limit] (default 10), else on [vectors]
    (default 256) random vectors drawn from [seed] (default 7).  Probes are
    batched {!lanes} per word-sim pass; an output that fails to settle
    counts as disagreement.
    @raise Invalid_argument when the two circuits' input counts differ. *)
val agree_on_probes :
  ?exhaustive_limit:int ->
  ?vectors:int ->
  ?seed:int ->
  t ->
  keys_a:bool array ->
  t ->
  keys_b:bool array ->
  bool
