(** Immutable gate-level netlists.

    A circuit is a vector of nodes indexed by dense integer ids.  Primary
    inputs, key inputs and primary outputs are recorded in order; the node
    graph may contain combinational cycles (cyclic locking creates them), and
    the analysis functions below report this explicitly. *)

type node = private {
  kind : Gate.t;
  fanins : int array;  (** node ids, order is significant (e.g. MUX select) *)
  name : string;  (** unique wire name *)
}

type t = private {
  name : string;
  nodes : node array;
  inputs : int array;  (** ids of [Input] nodes, in primary-input order *)
  keys : int array;  (** ids of [Key_input] nodes, in key-bit order *)
  outputs : (string * int) array;  (** output port name, driving node id *)
}

(** {1 Construction} *)

(** Mutable builder used to assemble a circuit before freezing it. *)
module Builder : sig
  type circuit := t
  type t

  val create : ?name:string -> unit -> t

  (** [add b kind fanins] appends a node and returns its id.  A fresh unique
      wire name is generated unless [name] is provided.
      @raise Invalid_argument on bad fanin count, an unknown fanin id, or a
      duplicate explicit name. *)
  val add : ?name:string -> t -> Gate.t -> int array -> int

  (** [declare b kind] appends a node whose fanins will be supplied later via
      {!set_fanins}; this is how forward references and combinational cycles
      are built.  {!freeze} raises if a declared node was never wired. *)
  val declare : ?name:string -> t -> Gate.t -> int

  (** [input b] adds a primary input (registered in PI order). *)
  val input : ?name:string -> t -> int

  (** [key_input b] adds a key input (registered in key order). *)
  val key_input : ?name:string -> t -> int

  (** [set_fanins b id fanins] rewires an existing node; used by locking
      transformations that redirect consumers into inserted blocks.
      @raise Invalid_argument on bad fanin count or unknown ids. *)
  val set_fanins : t -> int -> int array -> unit

  (** [set_kind b id kind] replaces the gate kind of node [id], keeping its
      fanins (the fanin count must stay valid). *)
  val set_kind : t -> int -> Gate.t -> unit

  (** [replace b id kind fanins] atomically rewrites a node's kind and
      fanins (for transformations that change arity, e.g. demoting a gate to
      a BUF of a LUT output). *)
  val replace : t -> int -> Gate.t -> int array -> unit

  (** [output b name id] registers node [id] as driving output port [name]. *)
  val output : t -> string -> int -> unit

  (** Number of nodes added so far. *)
  val size : t -> int

  val kind_of : t -> int -> Gate.t
  val fanins_of : t -> int -> int array

  (** [unique_name b base] is [base] when free, otherwise a fresh variant. *)
  val unique_name : t -> string -> string

  (** Freeze into an immutable circuit.
      @raise Invalid_argument if no output was declared. *)
  val freeze : t -> circuit
end

(** [of_builder b] is [Builder.freeze b]. *)
val of_builder : Builder.t -> t

(** [copy_into b c] replays every node of [c] into builder [b] and returns
    the id translation table (old id -> new id).  Inputs, keys and outputs of
    [c] are re-declared in [b] in order.  Forward references and
    combinational cycles are preserved; colliding names get fresh variants. *)
val copy_into : Builder.t -> t -> int array

(** [copy_nodes_into b c] is {!copy_into} without declaring the outputs —
    locking passes use it, then redirect wires before declaring their own
    outputs. *)
val copy_nodes_into : Builder.t -> t -> int array

(** {1 Accessors} *)

val node : t -> int -> node
val num_nodes : t -> int
val num_inputs : t -> int
val num_keys : t -> int
val num_outputs : t -> int

(** Number of logic gates (everything except inputs, key inputs, constants). *)
val num_gates : t -> int

(** [find_by_name c name] is the id of the node with wire name [name]. *)
val find_by_name : t -> string -> int option

(** [fanouts c] is, for each node id, the ids of nodes that read it.
    Output-port references are not included. *)
val fanouts : t -> int array array

(** {1 Structure} *)

(** [topological_order c] is [Some order] (fanins before fanouts) when the
    circuit is acyclic, [None] otherwise.  Memoized per circuit physical
    identity; do not mutate the returned array. *)
val topological_order : t -> int array option

(** [compute_topological_order c] is {!topological_order} without the memo
    table — a fresh O(N) sort per call.  Exists as the honest uncached
    reference path for benchmarks and differential tests. *)
val compute_topological_order : t -> int array option

val is_acyclic : t -> bool

(** [transitive_fanin c id] is the set of node ids that can reach [id]
    (including [id]), as a boolean id-indexed mask. *)
val transitive_fanin : t -> int -> bool array

(** [reaches c ~src ~dst] is whether there is a directed path from [src] to
    [dst] (a node reaches itself). *)
val reaches : t -> src:int -> dst:int -> bool

(** [strongly_connected_components c] assigns every node an SCC id (dense,
    arbitrary order).  Nodes on a common combinational cycle share an id. *)
val strongly_connected_components : t -> int array

(** [find_cycles c ~limit] enumerates up to [limit] elementary cycles
    (each as a list of node ids).  Used by CycSAT condition generation and by
    diagnostics; not guaranteed to be exhaustive beyond [limit]. *)
val find_cycles : t -> limit:int -> int list list

(** Count of nodes per gate kind name, e.g. [("nand", 12)]. *)
val kind_histogram : t -> (string * int) list

(** Levelised logic depth (longest path from any input), or [None] if
    cyclic. *)
val depth : t -> int option

(** [validate c] re-checks all structural invariants.
    @raise Invalid_argument with a diagnostic when one fails. *)
val validate : t -> unit

val pp_stats : Format.formatter -> t -> unit
