type stats = {
  constants_folded : int;
  buffers_collapsed : int;
  gates_simplified : int;
  dead_nodes_removed : int;
}

(* The pass works on mutable copies of the kind/fanin tables.  BUF nodes act
   as alias pointers: [resolve] chases BUF chains (outside cycles), so
   turning a node into [Buf target] is how every "replace by an equivalent
   wire" rule is expressed. *)
let run c =
  let n = Circuit.num_nodes c in
  let kinds = Array.init n (fun id -> (Circuit.node c id).Circuit.kind) in
  let fanins = Array.init n (fun id -> Array.copy (Circuit.node c id).Circuit.fanins) in
  (* Nodes on combinational cycles are left untouched. *)
  let scc = View.scc (View.of_circuit c) in
  let scc_size = Hashtbl.create 16 in
  Array.iter
    (fun s -> Hashtbl.replace scc_size s (1 + Option.value ~default:0 (Hashtbl.find_opt scc_size s)))
    scc;
  let in_cycle id =
    Hashtbl.find scc_size scc.(id) > 1
    || Array.exists (fun f -> f = id) fanins.(id)
  in
  let cyclic = Array.init n in_cycle in
  let rec resolve id =
    match kinds.(id) with
    | Gate.Buf when not cyclic.(id) -> resolve fanins.(id).(0)
    | _ -> id
  in
  let const_of id =
    match kinds.(resolve id) with Gate.Const b -> Some b | _ -> None
  in
  let consts = ref 0 and buffers = ref 0 and simplified = ref 0 in
  let set_const id b =
    incr consts;
    kinds.(id) <- Gate.Const b;
    fanins.(id) <- [||]
  in
  let set_alias id target =
    incr buffers;
    kinds.(id) <- Gate.Buf;
    fanins.(id) <- [| target |]
  in
  let set_gate id kind fs =
    incr simplified;
    kinds.(id) <- kind;
    fanins.(id) <- fs
  in
  (* One simplification attempt; returns true when the node changed. *)
  let simplify id =
    if cyclic.(id) then false
    else begin
      let before_kind = kinds.(id) and before_fanins = fanins.(id) in
      let fs = Array.map resolve fanins.(id) in
      if fs <> fanins.(id) then fanins.(id) <- fs;
      (match kinds.(id) with
       | Gate.Input | Gate.Key_input | Gate.Const _ -> ()
       | Gate.Buf ->
         (match const_of fs.(0) with
          | Some b -> set_const id b
          | None -> ())
       | Gate.Not ->
         (match const_of fs.(0) with
          | Some b -> set_const id (not b)
          | None -> ())
       | (Gate.And | Gate.Nand | Gate.Or | Gate.Nor) as kind ->
         let is_and = kind = Gate.And || kind = Gate.Nand in
         let negated = kind = Gate.Nand || kind = Gate.Nor in
         let annihilator = not is_and in
         (* absorbing constant: 0 for AND, 1 for OR *)
         let absorbed =
           Array.exists (fun f -> const_of f = Some annihilator) fs
         in
         if absorbed then set_const id (annihilator <> negated)
         else begin
           (* Drop identity constants and duplicate operands. *)
           let seen = Hashtbl.create 4 in
           let keep =
             Array.to_list fs
             |> List.filter (fun f ->
                    match const_of f with
                    | Some _ -> false  (* identity constant *)
                    | None ->
                      if Hashtbl.mem seen f then false
                      else begin
                        Hashtbl.add seen f ();
                        true
                      end)
           in
           match keep with
           | [] -> set_const id (is_and <> negated)
           | [ x ] -> if negated then set_gate id Gate.Not [| x |] else set_alias id x
           | many when List.length many < Array.length fs ->
             set_gate id kind (Array.of_list many)
           | _ -> ()
         end
       | (Gate.Xor | Gate.Xnor) as kind ->
         let flip0 = kind = Gate.Xnor in
         let const_parity = ref false in
         let counts = Hashtbl.create 4 in
         Array.iter
           (fun f ->
             match const_of f with
             | Some b -> if b then const_parity := not !const_parity
             | None ->
               Hashtbl.replace counts f
                 (1 + Option.value ~default:0 (Hashtbl.find_opt counts f)))
           fs;
         let operands =
           Hashtbl.fold (fun f k acc -> if k land 1 = 1 then f :: acc else acc) counts []
           |> List.sort compare
         in
         let flip = flip0 <> !const_parity in
         (match operands with
          | [] -> set_const id flip
          | [ x ] -> if flip then set_gate id Gate.Not [| x |] else set_alias id x
          | many ->
            let changed =
              List.length many < Array.length fs || flip <> flip0
            in
            if changed then
              set_gate id (if flip then Gate.Xnor else Gate.Xor) (Array.of_list many))
       | Gate.Mux ->
         let s = fs.(0) and a = fs.(1) and b = fs.(2) in
         (match const_of s with
          | Some sel -> set_alias id (if sel then b else a)
          | None ->
            if a = b then set_alias id a
            else
              (match const_of a, const_of b with
               | Some false, Some true -> set_alias id s
               | Some true, Some false -> set_gate id Gate.Not [| s |]
               | _, _ -> ()))
       | Gate.Lut tt ->
         (* Cofactor constant address bits. *)
         let free = ref [] in
         let fixed_mask = ref 0 and fixed_val = ref 0 in
         Array.iteri
           (fun j f ->
             match const_of f with
             | Some b ->
               fixed_mask := !fixed_mask lor (1 lsl j);
               if b then fixed_val := !fixed_val lor (1 lsl j)
             | None -> free := j :: !free)
           fs;
         if !fixed_mask <> 0 then begin
           let free = List.rev !free in
           let kf = List.length free in
           let table =
             Array.init (1 lsl kf) (fun row ->
                 let idx = ref !fixed_val in
                 List.iteri
                   (fun bit j -> if row land (1 lsl bit) <> 0 then idx := !idx lor (1 lsl j))
                   free;
                 tt.(!idx))
           in
           match free with
           | [] -> set_const id table.(0)
           | [ j ] ->
             (match table with
              | [| false; true |] -> set_alias id fs.(j)
              | [| true; false |] -> set_gate id Gate.Not [| fs.(j) |]
              | [| v; _ |] when v = table.(1) -> set_const id v
              | _ -> set_gate id (Gate.Lut table) [| fs.(j) |])
           | js -> set_gate id (Gate.Lut table) (Array.of_list (List.map (fun j -> fs.(j)) js))
         end
         else if Array.for_all (fun v -> v = tt.(0)) tt then
           (* Uniform tables collapse even without constant inputs. *)
           set_const id tt.(0));
      (not (Gate.equal kinds.(id) before_kind)) || fanins.(id) <> before_fanins
    end
  in
  (* Structural hashing: nodes computing the same function of the same
     (resolved) operands collapse to one representative.  Commutative gates
     are keyed on sorted fanins. *)
  let cse_pass () =
    let table = Hashtbl.create 256 in
    let changed = ref false in
    for id = 0 to n - 1 do
      if not cyclic.(id) then begin
        let fs = Array.map resolve fanins.(id) in
        let signature =
          match kinds.(id) with
          | Gate.Input | Gate.Key_input | Gate.Buf -> None
          | Gate.Const b -> Some ("const", [ (if b then 1 else 0) ])
          | (Gate.And | Gate.Nand | Gate.Or | Gate.Nor | Gate.Xor | Gate.Xnor) as k ->
            let sorted = Array.copy fs in
            Array.sort compare sorted;
            Some (Gate.to_string k, Array.to_list sorted)
          | Gate.Not -> Some ("not", Array.to_list fs)
          | Gate.Mux -> Some ("mux", Array.to_list fs)
          | Gate.Lut tt ->
            let key =
              "lut:" ^ String.init (Array.length tt) (fun i -> if tt.(i) then '1' else '0')
            in
            Some (key, Array.to_list fs)
        in
        match signature with
        | None -> ()
        | Some sig_ ->
          (match Hashtbl.find_opt table sig_ with
           | None -> Hashtbl.add table sig_ id
           | Some rep when rep = id -> ()
           | Some rep ->
             set_alias id rep;
             changed := true)
      end
    done;
    !changed
  in
  (* Sweep to fixpoint (bounded by n sweeps; in practice a few). *)
  let changed = ref true in
  let sweeps = ref 0 in
  while !changed && !sweeps < n + 1 do
    changed := false;
    incr sweeps;
    for id = 0 to n - 1 do
      if simplify id then changed := true
    done;
    if cse_pass () then changed := true
  done;
  (* Rebuild: keep the interface (all inputs/keys, same output ports), emit
     only nodes reachable from the outputs through resolved fanins. *)
  let live = Array.make n false in
  let rec mark id =
    let id = resolve id in
    if not live.(id) then begin
      live.(id) <- true;
      Array.iter mark fanins.(id)
    end
  in
  Array.iter (fun (_, id) -> mark id) c.Circuit.outputs;
  let b = Circuit.Builder.create ~name:c.Circuit.name () in
  let map = Array.make n (-1) in
  Array.iter
    (fun id ->
      map.(id) <- Circuit.Builder.input ~name:(Circuit.node c id).Circuit.name b)
    c.Circuit.inputs;
  Array.iter
    (fun id ->
      map.(id) <- Circuit.Builder.key_input ~name:(Circuit.node c id).Circuit.name b)
    c.Circuit.keys;
  for id = 0 to n - 1 do
    if live.(id) && map.(id) < 0 && resolve id = id then
      map.(id) <-
        Circuit.Builder.declare ~name:(Circuit.node c id).Circuit.name b kinds.(id)
  done;
  let emitted = ref 0 in
  for id = 0 to n - 1 do
    if live.(id) && resolve id = id then begin
      match kinds.(id) with
      | Gate.Input | Gate.Key_input -> ()
      | _ ->
        incr emitted;
        if Array.length fanins.(id) > 0 then
          Circuit.Builder.set_fanins b map.(id)
            (Array.map (fun f -> map.(resolve f)) fanins.(id))
    end
  done;
  Array.iter
    (fun (port, id) -> Circuit.Builder.output b port map.(resolve id))
    c.Circuit.outputs;
  let result = Circuit.of_builder b in
  let removed = Circuit.num_gates c - Circuit.num_gates result in
  ( result,
    {
      constants_folded = !consts;
      buffers_collapsed = !buffers;
      gates_simplified = !simplified;
      dead_nodes_removed = max 0 removed;
    } )

let hardwire_keys c key =
  if Array.length key <> Circuit.num_keys c then
    invalid_arg "Opt.hardwire_keys: key length mismatch";
  let b = Circuit.Builder.create ~name:(c.Circuit.name ^ "-activated") () in
  let n = Circuit.num_nodes c in
  let map = Array.make n (-1) in
  (* Keys become constants; everything else is copied two-phase. *)
  let key_index = Hashtbl.create 16 in
  Array.iteri (fun i id -> Hashtbl.add key_index id i) c.Circuit.keys;
  for id = 0 to n - 1 do
    let nd = Circuit.node c id in
    map.(id) <-
      (match Hashtbl.find_opt key_index id with
       | Some i ->
         Circuit.Builder.add ~name:nd.Circuit.name b (Gate.Const key.(i)) [||]
       | None -> Circuit.Builder.declare ~name:nd.Circuit.name b nd.Circuit.kind)
  done;
  for id = 0 to n - 1 do
    let nd = Circuit.node c id in
    if (not (Hashtbl.mem key_index id)) && Array.length nd.Circuit.fanins > 0 then
      Circuit.Builder.set_fanins b map.(id)
        (Array.map (fun f -> map.(f)) nd.Circuit.fanins)
  done;
  Array.iter
    (fun (port, id) -> Circuit.Builder.output b port map.(id))
    c.Circuit.outputs;
  Circuit.of_builder b

let pp_stats fmt s =
  Format.fprintf fmt
    "%d constants folded, %d buffers collapsed, %d gates simplified, %d dead gates removed"
    s.constants_folded s.buffers_collapsed s.gates_simplified s.dead_nodes_removed
