module Gate = Fl_netlist.Gate
module Circuit = Fl_netlist.Circuit
module View = Fl_netlist.View

type encoding = {
  node_var : int array;
  input_vars : int array;
  key_vars : int array;
  output_vars : int array;
}

(* Binary XOR: the 4 clauses of Table 1. *)
let encode_xor2 f ~out a b =
  Formula.add_clause f [ -a; -b; -out ];
  Formula.add_clause f [ a; b; -out ];
  Formula.add_clause f [ a; -b; out ];
  Formula.add_clause f [ -a; b; out ]

(* n-ary XOR via a balanced pairwise tree of fresh variables; the final
   stage optionally complements for XNOR.  Same n-1 XOR2 stages (and thus
   clause count and shapes) as a linear chain, but log instead of linear
   depth, so unit propagation across a wide XOR resolves in O(log n)
   implication steps. *)
let encode_xor_chain f ~out ~negated fanins =
  let n = Array.length fanins in
  assert (n >= 2);
  let rec reduce layer =
    let m = Array.length layer in
    if m <= 2 then layer
    else begin
      let next = Array.make ((m + 1) / 2) 0 in
      for i = 0 to (m / 2) - 1 do
        let t = Formula.fresh_var f in
        encode_xor2 f ~out:t layer.(2 * i) layer.(2 * i + 1);
        next.(i) <- t
      done;
      if m land 1 = 1 then next.(((m + 1) / 2) - 1) <- layer.(m - 1);
      reduce next
    end
  in
  let pair = reduce fanins in
  let a = pair.(0) and b = pair.(1) in
  if negated then begin
    (* out = XNOR(a, b) *)
    Formula.add_clause f [ -a; -b; out ];
    Formula.add_clause f [ a; b; out ];
    Formula.add_clause f [ a; -b; -out ];
    Formula.add_clause f [ -a; b; -out ]
  end
  else encode_xor2 f ~out a b

let encode_gate f kind ~out ~fanins =
  let n = Array.length fanins in
  if not (Gate.valid_fanin_count kind n) then
    invalid_arg "Tseytin.encode_gate: fanin count mismatch";
  match kind with
  | Gate.Input | Gate.Key_input ->
    invalid_arg "Tseytin.encode_gate: inputs are free variables"
  | Gate.Const b -> Formula.add_clause f [ (if b then out else -out) ]
  | Gate.Buf ->
    Formula.add_clause f [ fanins.(0); -out ];
    Formula.add_clause f [ -fanins.(0); out ]
  | Gate.Not ->
    Formula.add_clause f [ -fanins.(0); -out ];
    Formula.add_clause f [ fanins.(0); out ]
  | Gate.And ->
    (* (¬A1 ∨ … ∨ ¬An ∨ C) ∧ ∧i (Ai ∨ ¬C) *)
    Formula.add_clause_a f
      (Array.append (Array.map (fun a -> -a) fanins) [| out |]);
    Array.iter (fun a -> Formula.add_clause f [ a; -out ]) fanins
  | Gate.Nand ->
    Formula.add_clause_a f
      (Array.append (Array.map (fun a -> -a) fanins) [| -out |]);
    Array.iter (fun a -> Formula.add_clause f [ a; out ]) fanins
  | Gate.Or ->
    Formula.add_clause_a f (Array.append fanins [| -out |]);
    Array.iter (fun a -> Formula.add_clause f [ -a; out ]) fanins
  | Gate.Nor ->
    Formula.add_clause_a f (Array.append fanins [| out |]);
    Array.iter (fun a -> Formula.add_clause f [ -a; -out ]) fanins
  | Gate.Xor -> encode_xor_chain f ~out ~negated:false fanins
  | Gate.Xnor -> encode_xor_chain f ~out ~negated:true fanins
  | Gate.Mux ->
    (* C = A·¬S + B·S with fanins [S; A; B] — Table 1's four clauses. *)
    let s = fanins.(0) and a = fanins.(1) and b = fanins.(2) in
    Formula.add_clause f [ s; -a; out ];
    Formula.add_clause f [ s; a; -out ];
    Formula.add_clause f [ -s; -b; out ];
    Formula.add_clause f [ -s; b; -out ]
  | Gate.Lut tt ->
    (* One clause per table row: (row holds) -> out = tt(row). *)
    let rows = Array.length tt in
    for row = 0 to rows - 1 do
      let body =
        Array.to_list
          (Array.mapi
             (fun j a -> if row land (1 lsl j) <> 0 then -a else a)
             fanins)
      in
      let head = if tt.(row) then out else -out in
      Formula.add_clause f (body @ [ head ])
    done

let encode ?share_inputs ?share_keys f c =
  let n = Circuit.num_nodes c in
  let node_var = Array.make n 0 in
  (* Assign variables to inputs first (shared or fresh). *)
  let assign_ports ports shared label =
    match shared with
    | None -> Array.iter (fun id -> node_var.(id) <- Formula.fresh_var f) ports
    | Some vars ->
      if Array.length vars <> Array.length ports then
        invalid_arg (Printf.sprintf "Tseytin.encode: shared %s length mismatch" label);
      Array.iteri (fun i id -> node_var.(id) <- vars.(i)) ports
  in
  assign_ports c.Circuit.inputs share_inputs "inputs";
  assign_ports c.Circuit.keys share_keys "keys";
  for id = 0 to n - 1 do
    if node_var.(id) = 0 then node_var.(id) <- Formula.fresh_var f
  done;
  (* Gate clauses go out in topological order when acyclic (fanin-defining
     clauses before their consumers helps unit propagation); variable
     numbering above stays in id order either way. *)
  let emit id =
    let nd = Circuit.node c id in
    match nd.Circuit.kind with
    | Gate.Input | Gate.Key_input -> ()
    | kind ->
      encode_gate f kind ~out:node_var.(id)
        ~fanins:(Array.map (fun fid -> node_var.(fid)) nd.Circuit.fanins)
  in
  (match View.topo_order (View.of_circuit c) with
   | Some order -> Array.iter emit order
   | None ->
     for id = 0 to n - 1 do
       emit id
     done);
  {
    node_var;
    input_vars = Array.map (fun id -> node_var.(id)) c.Circuit.inputs;
    key_vars = Array.map (fun id -> node_var.(id)) c.Circuit.keys;
    output_vars = Array.map (fun (_, id) -> node_var.(id)) c.Circuit.outputs;
  }

let assert_equal f a b =
  Formula.add_clause f [ -a; b ];
  Formula.add_clause f [ a; -b ]

let xor_out f a b =
  let x = Formula.fresh_var f in
  encode_xor2 f ~out:x a b;
  x

let assert_any_differs f pairs =
  let diffs = List.map (fun (a, b) -> xor_out f a b) pairs in
  Formula.add_clause f diffs;
  Array.of_list diffs

let assert_lit f lit = Formula.add_clause f [ lit ]

let assert_vector f vars bits =
  if Array.length vars <> Array.length bits then
    invalid_arg "Tseytin.assert_vector: length mismatch";
  Array.iteri (fun i v -> assert_lit f (if bits.(i) then v else -v)) vars
