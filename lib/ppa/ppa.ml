module Gate = Fl_netlist.Gate
module Circuit = Fl_netlist.Circuit

type estimate = { area_um2 : float; power_nw : float; delay_ns : float }

let ceil_log2 n =
  let rec go k m = if m >= n then k else go (k + 1) (m * 2) in
  go 0 1

(* Per-node cost after decomposition into 2-input slices. *)
let node_cost library use_stt_luts kind fanin =
  let slice = Cell_library.cell_of library kind ~fanin:2 in
  match kind with
  | Gate.Input | Gate.Key_input | Gate.Const _ -> Cell_library.zero
  | Gate.Buf | Gate.Not -> slice
  | Gate.Mux -> slice
  | Gate.Lut tt ->
    if use_stt_luts then
      Stt_lut.estimate ~k:(max 1 (ceil_log2 (Array.length tt)))
    else Cell_library.cell_of library kind ~fanin
  | Gate.And | Gate.Nand | Gate.Or | Gate.Nor | Gate.Xor | Gate.Xnor ->
    let slices = float_of_int (max 1 (fanin - 1)) in
    let depth = float_of_int (ceil_log2 (max 2 fanin)) in
    {
      Cell_library.area_um2 = slice.Cell_library.area_um2 *. slices;
      power_nw = slice.Cell_library.power_nw *. slices;
      delay_ns = slice.Cell_library.delay_ns *. depth;
    }

let of_circuit ?(library = Cell_library.generic_32nm) ?(use_stt_luts = true) c =
  let n = Circuit.num_nodes c in
  let costs =
    Array.init n (fun id ->
        let nd = Circuit.node c id in
        node_cost library use_stt_luts nd.Circuit.kind (Array.length nd.Circuit.fanins))
  in
  let area = Array.fold_left (fun acc k -> acc +. k.Cell_library.area_um2) 0.0 costs in
  let power = Array.fold_left (fun acc k -> acc +. k.Cell_library.power_nw) 0.0 costs in
  (* Longest-path delay.  Acyclic circuits use one pass over the view's
     cached topological order; cyclic ones fall back to a DFS whose
     gray-node detection skips cycle back edges. *)
  let delay =
    match Fl_netlist.View.topo_order (Fl_netlist.View.of_circuit c) with
    | Some order ->
      let arr = Array.make n 0.0 in
      Array.iter
        (fun id ->
          let nd = Circuit.node c id in
          let best =
            Array.fold_left (fun acc f -> Float.max acc arr.(f)) 0.0
              nd.Circuit.fanins
          in
          arr.(id) <- best +. costs.(id).Cell_library.delay_ns)
        order;
      Array.fold_left (fun acc (_, id) -> Float.max acc arr.(id)) 0.0
        c.Circuit.outputs
    | None ->
      let memo = Array.make n nan in
      let color = Array.make n 0 in
      let rec arrival id =
        if color.(id) = 1 then 0.0 (* on the current DFS path: skip the back edge *)
        else if not (Float.is_nan memo.(id)) then memo.(id)
        else begin
          color.(id) <- 1;
          let nd = Circuit.node c id in
          let best =
            Array.fold_left (fun acc f -> Float.max acc (arrival f)) 0.0
              nd.Circuit.fanins
          in
          color.(id) <- 2;
          let v = best +. costs.(id).Cell_library.delay_ns in
          memo.(id) <- v;
          v
        end
      in
      Array.fold_left (fun acc (_, id) -> Float.max acc (arrival id)) 0.0
        c.Circuit.outputs
  in
  { area_um2 = area; power_nw = power; delay_ns = delay }

let of_cln ?library spec = of_circuit ?library (Fl_cln.Cln.standalone spec)

let locking_overhead ?library ~original locked =
  let a = of_circuit ?library original in
  let b = of_circuit ?library locked in
  (b.area_um2 /. a.area_um2, b.power_nw /. a.power_nw, b.delay_ns /. a.delay_ns)

let pp fmt e =
  Format.fprintf fmt "area %.1f um2, power %.1f nW, delay %.2f ns" e.area_um2
    e.power_nw e.delay_ns
