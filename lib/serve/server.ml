module Circuit = Fl_netlist.Circuit
module Bench_io = Fl_netlist.Bench_io
module View = Fl_netlist.View
module Locked = Fl_locking.Locked
module Fulllock = Fl_core.Fulllock
module Ppa = Fl_ppa.Ppa
module Session = Fl_attacks.Session
module Sat_attack = Fl_attacks.Sat_attack
module Cycsat = Fl_attacks.Cycsat
module Appsat = Fl_attacks.Appsat
module Cdcl = Fl_sat.Cdcl
module Json = Fl_obs.Json

let c_requests = Fl_obs.Counter.make "serve.requests"
let c_errors = Fl_obs.Counter.make "serve.errors"
let c_events_sent = Fl_obs.Counter.make "serve.events.sent"

type config = {
  socket : string;
  jobs : int;
  max_timeout : float;
  max_conflicts : int;
  cache_circuits : int;
  cache_bases : int;
}

let default_config ~socket =
  {
    socket;
    jobs = 1;
    max_timeout = 300.0;
    max_conflicts = 2_000_000;
    cache_circuits = 64;
    cache_bases = 64;
  }

(* One client connection.  [wlock] serializes frame writes (worker
   domains stream events mid-task while the reader thread may answer a
   concurrent status request on the same connection) and guards the
   [alive]/[closed]/[inflight] state.  The fd is closed exactly once:
   by whoever observes "reader finished and no task in flight". *)
type conn = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  wlock : Mutex.t;
  mutable alive : bool;  (* reader still running *)
  mutable closed : bool;
  mutable inflight : int;  (* queued or executing requests *)
}

type job = { req : Protocol.request; jconn : conn }

type counts = {
  mutable n_requests : int;
  mutable n_lock : int;
  mutable n_attack : int;
  mutable n_analyze : int;
  mutable n_status : int;
  mutable n_errors : int;
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  pool : Fl_par.t;
  cache : Cache.t;
  queue : job Queue.t;
  qlock : Mutex.t;
  qcond : Condition.t;
  mutable stopping : bool;  (* guarded by qlock *)
  slock : Mutex.t;  (* guards conns + counts *)
  mutable conns : conn list;
  counts : counts;
  start_time : float;
  mutable listener : Thread.t option;
  mutable scheduler : Thread.t option;
  mutable readers : Thread.t list;  (* guarded by slock *)
}

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* ------------------------------------------------------------------ *)
(* Connection plumbing                                                 *)
(* ------------------------------------------------------------------ *)

let close_conn_locked conn =
  if not conn.closed then begin
    conn.closed <- true;
    (* close_out flushes and closes the shared fd; the in_channel must
       not be closed again. *)
    try close_out conn.oc with _ -> (try Unix.close conn.fd with _ -> ())
  end

(* [write_line conn line] returns whether the write reached the socket;
   a failed write marks the connection dead so later frames are dropped
   silently (the client is gone — aborting the attack would waste the
   cache warm-up it paid for). *)
let write_line conn line =
  locked conn.wlock (fun () ->
      if conn.closed then false
      else
        try
          output_string conn.oc line;
          output_char conn.oc '\n';
          flush conn.oc;
          true
        with _ -> false)

let task_started conn = locked conn.wlock (fun () -> conn.inflight <- conn.inflight + 1)

let task_finished conn =
  locked conn.wlock (fun () ->
      conn.inflight <- conn.inflight - 1;
      if (not conn.alive) && conn.inflight <= 0 then close_conn_locked conn)

let reader_finished conn =
  locked conn.wlock (fun () ->
      conn.alive <- false;
      if conn.inflight <= 0 then close_conn_locked conn)

(* ------------------------------------------------------------------ *)
(* Request helpers                                                     *)
(* ------------------------------------------------------------------ *)

exception Reject of string

let reject fmt = Printf.ksprintf (fun s -> raise (Reject s)) fmt

let require what = function
  | Some v -> v
  | None -> reject "missing %S member" what

let send_error t conn ~id msg =
  locked t.slock (fun () -> t.counts.n_errors <- t.counts.n_errors + 1);
  Fl_obs.Counter.incr c_errors;
  ignore (write_line conn (Protocol.error_frame ~id msg))

(* Server-enforced budget clamping: a missing ask gets the cap as its
   default, an ask above the cap is clamped (and reported as such). *)
let clamp_float cap = function
  | None -> (cap, false)
  | Some v when v > cap -> (cap, true)
  | Some v -> ((if v <= 0.0 then cap else v), false)

let clamp_int cap = function
  | None -> (cap, false)
  | Some v when v > cap -> (cap, true)
  | Some v -> ((if v <= 0 then cap else v), false)

let hit_string = function `Hit -> "hit" | `Miss -> "miss"

let key_to_string key =
  String.init (Array.length key) (fun i -> if key.(i) then '1' else '0')

(* Per-request telemetry: run [f] under a scoped sink forwarding the
   selected events to the requesting client.  The sink runs on the
   domain executing the attack, outside the global sink lock; a write
   failure flips [dead] so a vanished client costs one failed syscall,
   not one per iteration. *)
let with_request_sink (req : Protocol.request) conn f =
  match req.Protocol.events with
  | Protocol.Events_none -> f ()
  | mode ->
    let dead = ref false in
    let keep name =
      match mode with
      | Protocol.Events_all -> true
      | _ ->
        String.length name >= 7 && String.equal (String.sub name 0 7) "attack."
    in
    let sink e =
      if (not !dead) && keep e.Fl_obs.name then
        if write_line conn (Protocol.event_frame ~id:req.Protocol.id e) then
          Fl_obs.Counter.incr c_events_sent
        else dead := true
    in
    Fl_obs.with_scoped_sink sink f

(* ------------------------------------------------------------------ *)
(* Ops                                                                 *)
(* ------------------------------------------------------------------ *)

(* Raising twin of the CLI's scheme dispatcher. *)
let lock_scheme rng (req : Protocol.request) c =
  let key_bits = req.Protocol.key_bits in
  match req.Protocol.scheme with
  | "full-lock" ->
    let sizes = Fulllock.parse_plr_sizes req.Protocol.plr in
    let configs = List.map (fun n -> Fulllock.default_config ~n) sizes in
    Fulllock.lock rng
      ~policy:(if req.Protocol.cyclic then `Cyclic else `Acyclic)
      ~configs c
  | "rll" -> Fl_locking.Rll.lock rng ~key_bits c
  | "mux" -> Fl_locking.Mux_lock.lock rng ~key_bits c
  | "sarlock" -> Fl_locking.Sarlock.lock rng ~key_bits c
  | "antisat" -> Fl_locking.Antisat.lock rng ~key_bits c
  | "lutlock" -> Fl_locking.Lut_lock.lock rng ~gates:(max 1 (key_bits / 4)) c
  | "crosslock" -> Fl_locking.Cross_lock.lock rng ~n:(max 2 key_bits) c
  | "sfll" ->
    Fl_locking.Sfll.lock rng ~key_bits ~h:(max 0 (key_bits / 8)) c
  | "cyclic" -> Fl_locking.Cyclic_lock.lock rng ~cycles:key_bits c
  | other ->
    reject
      "unknown scheme %S (full-lock, rll, mux, sarlock, antisat, sfll, \
       lutlock, crosslock, cyclic)"
      other

let run_lock t (req : Protocol.request) conn =
  let text = require "circuit" req.Protocol.circuit in
  let c, hit = Cache.circuit_of_text t.cache text in
  let rng = Random.State.make [| req.Protocol.seed |] in
  let bundle =
    try lock_scheme rng req c
    with Invalid_argument msg -> reject "lock failed: %s" msg
  in
  if not (Locked.verify bundle) then
    reject "internal error: correct key does not verify";
  let a, p, d = Ppa.locking_overhead ~original:c bundle.Locked.locked in
  let lc = bundle.Locked.locked in
  ignore
    (write_line conn
       (Protocol.result_frame ~id:req.Protocol.id ~op:"lock"
          [
            "scheme", Json.Jstring bundle.Locked.scheme;
            "locked", Json.Jstring (Bench_io.to_string lc);
            "key", Json.Jstring (key_to_string bundle.Locked.correct_key);
            "key_bits", Json.Jint (Array.length bundle.Locked.correct_key);
            "gates", Json.Jint (Circuit.num_gates lc);
            ( "structural_hash",
              Json.Jstring (View.structural_hash_hex (View.of_circuit lc)) );
            "area_overhead", Json.Jfloat a;
            "power_overhead", Json.Jfloat p;
            "delay_overhead", Json.Jfloat d;
            "cache", Json.Jstring (hit_string hit);
          ]))

let stats_json (s : Cdcl.stats) rest =
  ("decisions", Json.Jint s.Cdcl.decisions)
  :: ("propagations", Json.Jint s.Cdcl.propagations)
  :: ("conflicts", Json.Jint s.Cdcl.conflicts)
  :: ("restarts", Json.Jint s.Cdcl.restarts)
  :: ("learned_clauses", Json.Jint s.Cdcl.learned_clauses)
  :: ("learned_literals", Json.Jint s.Cdcl.learned_literals)
  :: ("reductions", Json.Jint s.Cdcl.reductions)
  :: ("max_decision_level", Json.Jint s.Cdcl.max_decision_level)
  :: rest

let run_attack t (req : Protocol.request) conn =
  let locked_text = require "locked" req.Protocol.locked in
  let oracle_text = require "oracle" req.Protocol.oracle in
  let lc0, _ = Cache.circuit_of_text t.cache locked_text in
  let orc, _ = Cache.circuit_of_text t.cache oracle_text in
  if Circuit.num_keys lc0 = 0 then
    reject "locked circuit has no key inputs";
  if Circuit.num_inputs orc <> Circuit.num_inputs lc0 then
    reject "oracle input count %d does not match locked circuit's %d"
      (Circuit.num_inputs orc) (Circuit.num_inputs lc0);
  if Circuit.num_outputs orc <> Circuit.num_outputs lc0 then
    reject "oracle output count %d does not match locked circuit's %d"
      (Circuit.num_outputs orc) (Circuit.num_outputs lc0);
  let mode =
    match req.Protocol.kind with
    | "sat" | "appsat" -> Cache.Sat
    | "cycsat" -> Cache.Cycsat
    | k -> reject "unknown attack kind %S (sat|cycsat|appsat)" k
  in
  let base, base_hit = Cache.base_for t.cache ~mode lc0 in
  (* Attack the cached circuit: the base's miter encodes its node
     numbering, and position-preserving isomorphism (what the structural
     hash certifies, probe-checked in the cache) makes the recovered key
     valid for the request's circuit too. *)
  let lc = Session.Base.circuit base in
  let bundle =
    {
      Locked.locked = lc;
      oracle = orc;
      correct_key = Array.make (Circuit.num_keys lc) false;
      scheme = "serve";
    }
  in
  let timeout, t_clamped = clamp_float t.cfg.max_timeout req.Protocol.timeout in
  let max_conflicts, c_clamped =
    clamp_int t.cfg.max_conflicts req.Protocol.max_conflicts
  in
  let budget_fields rest =
    ("timeout_s", Json.Jfloat timeout)
    :: ("max_conflicts", Json.Jint max_conflicts)
    :: ("clamped", Json.Jbool (t_clamped || c_clamped))
    :: ("cache", Json.Jstring (hit_string base_hit))
    :: rest
  in
  let frame =
    with_request_sink req conn (fun () ->
        match req.Protocol.kind with
        | "appsat" ->
          let r = Appsat.run ~base ~timeout bundle in
          Protocol.result_frame ~id:req.Protocol.id ~op:"attack"
            (("kind", Json.Jstring "appsat")
             :: ( "status",
                  Json.Jstring
                    (match r.Appsat.key with
                     | Some _ when r.Appsat.exact -> "broken"
                     | Some _ -> "approximate"
                     | None -> "no_key_found") )
             :: (match r.Appsat.key with
                 | Some k -> [ "key", Json.Jstring (key_to_string k) ]
                 | None -> [])
             @ budget_fields
                 [
                   "estimated_error", Json.Jfloat r.Appsat.estimated_error;
                   "exact", Json.Jbool r.Appsat.exact;
                   "iterations", Json.Jint r.Appsat.iterations;
                   "random_queries", Json.Jint r.Appsat.random_queries;
                   "wall_s", Json.Jfloat r.Appsat.wall_time;
                 ])
        | kind ->
          let r =
            if kind = "cycsat" then
              Cycsat.run ~base ~timeout ~max_conflicts bundle
            else Sat_attack.run ~base ~timeout ~max_conflicts bundle
          in
          let status, key =
            match r.Sat_attack.status with
            | Sat_attack.Broken key -> ("broken", Some key)
            | Sat_attack.Timeout -> ("timeout", None)
            | Sat_attack.Iteration_limit -> ("iteration_limit", None)
            | Sat_attack.No_key_found -> ("no_key_found", None)
          in
          Protocol.result_frame ~id:req.Protocol.id ~op:"attack"
            (("kind", Json.Jstring kind)
             :: ("status", Json.Jstring status)
             :: (match key with
                 | Some k -> [ "key", Json.Jstring (key_to_string k) ]
                 | None -> [])
             @ ("key_is_correct", Json.Jbool r.Sat_attack.key_is_correct)
               :: ("iterations", Json.Jint r.Sat_attack.iterations)
               :: ("wall_s", Json.Jfloat r.Sat_attack.wall_time)
               :: ( "clause_var_ratio",
                    Json.Jfloat r.Sat_attack.clause_var_ratio )
               :: stats_json r.Sat_attack.solver (budget_fields [])))
  in
  ignore (write_line conn frame)

let run_analyze t (req : Protocol.request) conn =
  let text = require "circuit" req.Protocol.circuit in
  let c, hit = Cache.circuit_of_text t.cache text in
  let v = View.of_circuit c in
  let e = Ppa.of_circuit c in
  let shape_fields rest =
    ("name", Json.Jstring c.Circuit.name)
    :: ("gates", Json.Jint (Circuit.num_gates c))
    :: ("inputs", Json.Jint (Circuit.num_inputs c))
    :: ("keys", Json.Jint (Circuit.num_keys c))
    :: ("outputs", Json.Jint (Circuit.num_outputs c))
    :: (match View.depth v with
        | Some d -> [ "depth", Json.Jint d ]
        | None ->
          [ "feedback_edges", Json.Jint (Cycsat.num_feedback_edges c) ])
    @ ("structural_hash", Json.Jstring (View.structural_hash_hex v))
      :: ("area_um2", Json.Jfloat e.Ppa.area_um2)
      :: ("power_nw", Json.Jfloat e.Ppa.power_nw)
      :: ("delay_ns", Json.Jfloat e.Ppa.delay_ns)
      :: rest
  in
  (* Security stats need an oracle to compare against and a keyed
     netlist to corrupt. *)
  let corruption =
    match req.Protocol.oracle with
    | Some otext when Circuit.num_keys c > 0 ->
      let orc, _ = Cache.circuit_of_text t.cache otext in
      if
        Circuit.num_inputs orc = Circuit.num_inputs c
        && Circuit.num_outputs orc = Circuit.num_outputs c
      then begin
        let bundle =
          {
            Locked.locked = c;
            oracle = orc;
            correct_key = Array.make (Circuit.num_keys c) false;
            scheme = "serve";
          }
        in
        let rng = Random.State.make [| req.Protocol.seed; 0xc0de |] in
        [
          ( "output_corruption",
            Json.Jfloat (Locked.output_corruption_fast bundle rng) );
        ]
      end
      else reject "oracle interface does not match the circuit"
    | _ -> []
  in
  ignore
    (write_line conn
       (Protocol.result_frame ~id:req.Protocol.id ~op:"analyze"
          (shape_fields
             (corruption @ [ "cache", Json.Jstring (hit_string hit) ]))))

let status_fields t =
  let cache_stats = Cache.stats t.cache in
  let cache_member k =
    match List.assoc_opt k cache_stats with Some v -> v | None -> 0
  in
  let counts = locked t.slock (fun () ->
      let c = t.counts in
      ( c.n_requests, c.n_lock, c.n_attack, c.n_analyze, c.n_status,
        c.n_errors ))
  in
  let requests, locks, attacks, analyzes, statuses, errors = counts in
  let queue_depth, inflight =
    locked t.qlock (fun () ->
        ( Queue.length t.queue,
          locked t.slock (fun () ->
              List.fold_left (fun acc c -> acc + c.inflight) 0 t.conns) ))
  in
  [
    "uptime_s", Json.Jfloat (Unix.gettimeofday () -. t.start_time);
    "jobs", Json.Jint t.cfg.jobs;
    "max_timeout_s", Json.Jfloat t.cfg.max_timeout;
    "max_conflicts", Json.Jint t.cfg.max_conflicts;
    "queue_depth", Json.Jint queue_depth;
    "inflight", Json.Jint inflight;
    "requests", Json.Jint requests;
    "requests.lock", Json.Jint locks;
    "requests.attack", Json.Jint attacks;
    "requests.analyze", Json.Jint analyzes;
    "requests.status", Json.Jint statuses;
    "errors", Json.Jint errors;
    (* [cache.hit] / [cache.miss] are the prepared-base cache — the
       counters that prove Tseytin + preprocessing were skipped. *)
    "cache.hit", Json.Jint (cache_member "base.hit");
    "cache.miss", Json.Jint (cache_member "base.miss");
    "cache.circuit.hit", Json.Jint (cache_member "circuit.hit");
    "cache.circuit.miss", Json.Jint (cache_member "circuit.miss");
    "cache.collisions", Json.Jint (cache_member "collisions");
    "cache.circuits", Json.Jint (cache_member "circuits");
    "cache.bases", Json.Jint (cache_member "bases");
  ]

(* ------------------------------------------------------------------ *)
(* Scheduling                                                          *)
(* ------------------------------------------------------------------ *)

let exec_job t { req; jconn } =
  Fun.protect
    ~finally:(fun () -> task_finished jconn)
    (fun () ->
      try
        match req.Protocol.op with
        | "lock" -> run_lock t req jconn
        | "attack" -> run_attack t req jconn
        | "analyze" -> run_analyze t req jconn
        | op -> send_error t jconn ~id:req.Protocol.id ("bad queued op " ^ op)
      with
      | Reject msg -> send_error t jconn ~id:req.Protocol.id msg
      | Bench_io.Parse_error (line, msg) ->
        send_error t jconn ~id:req.Protocol.id
          (Printf.sprintf "bench parse error at line %d: %s" line msg)
      | exn ->
        send_error t jconn ~id:req.Protocol.id
          ("internal error: " ^ Printexc.to_string exn))

let scheduler_loop t =
  let rec loop () =
    let batch =
      locked t.qlock (fun () ->
          while Queue.is_empty t.queue && not t.stopping do
            Condition.wait t.qcond t.qlock
          done;
          let jobs = ref [] in
          while not (Queue.is_empty t.queue) do
            jobs := Queue.pop t.queue :: !jobs
          done;
          List.rev !jobs)
    in
    match batch with
    | [] -> () (* stopping and drained *)
    | jobs ->
      let tasks =
        Array.of_list (List.map (fun j () -> exec_job t j) jobs)
      in
      (* Tasks catch everything and write their own frames, so Failed /
         Cancelled outcomes are harness-level surprises — answer the
         affected clients so nobody hangs awaiting a terminal frame. *)
      let outcomes = Fl_par.run t.pool tasks in
      Array.iteri
        (fun i outcome ->
          match outcome with
          | Fl_par.Done () | Fl_par.Late ((), _) -> ()
          | Fl_par.Failed (msg, _) ->
            let j = List.nth jobs i in
            send_error t j.jconn ~id:j.req.Protocol.id
              ("task failed: " ^ msg)
          | Fl_par.Cancelled ->
            let j = List.nth jobs i in
            send_error t j.jconn ~id:j.req.Protocol.id "task cancelled")
        outcomes;
      loop ()
  in
  loop ()

let initiate_stop t =
  let fresh =
    locked t.qlock (fun () ->
        let fresh = not t.stopping in
        t.stopping <- true;
        Condition.broadcast t.qcond;
        fresh)
  in
  if fresh then begin
    (* Closing a listening fd does not wake a thread blocked in accept
       (Linux semantics); a throwaway self-connection does.  The
       listener re-checks [stopping] after every accept and exits; the
       fd itself is closed in [wait] after the join. *)
    (let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
     (try Unix.connect fd (Unix.ADDR_UNIX t.cfg.socket) with _ -> ());
     try Unix.close fd with _ -> ());
    (* Wake every reader blocked in input_line; owners close the fds. *)
    locked t.slock (fun () ->
        List.iter
          (fun c -> try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with _ -> ())
          t.conns)
  end

let stopping t = locked t.qlock (fun () -> t.stopping)

(* ------------------------------------------------------------------ *)
(* Connection reader                                                   *)
(* ------------------------------------------------------------------ *)

let handle_line t conn line =
  let line = String.trim line in
  if line <> "" then begin
    Fl_obs.Counter.incr c_requests;
    match Protocol.parse_request line with
    | Error msg -> send_error t conn ~id:"" msg
    | Ok req ->
      let count f =
        locked t.slock (fun () ->
            t.counts.n_requests <- t.counts.n_requests + 1;
            f t.counts)
      in
      (match req.Protocol.op with
       | "status" ->
         count (fun c -> c.n_status <- c.n_status + 1);
         ignore
           (write_line conn
              (Protocol.result_frame ~id:req.Protocol.id ~op:"status"
                 (status_fields t)))
       | "shutdown" ->
         count (fun _ -> ());
         ignore
           (write_line conn
              (Protocol.result_frame ~id:req.Protocol.id ~op:"shutdown"
                 [ "stopping", Json.Jbool true ]));
         initiate_stop t
       | ("lock" | "attack" | "analyze") as op ->
         count (fun c ->
             match op with
             | "lock" -> c.n_lock <- c.n_lock + 1
             | "attack" -> c.n_attack <- c.n_attack + 1
             | _ -> c.n_analyze <- c.n_analyze + 1);
         let enqueued =
           locked t.qlock (fun () ->
               if t.stopping then false
               else begin
                 task_started conn;
                 Queue.push { req; jconn = conn } t.queue;
                 Condition.signal t.qcond;
                 true
               end)
         in
         if not enqueued then
           send_error t conn ~id:req.Protocol.id "server is shutting down"
       | op -> send_error t conn ~id:req.Protocol.id ("unknown op " ^ op))
  end

let reader_loop t conn =
  (try
     while not (stopping t) do
       handle_line t conn (input_line conn.ic)
     done
   with End_of_file | Sys_error _ -> ());
  reader_finished conn

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let listener_loop t =
  let rec loop () =
    match Unix.accept t.listen_fd with
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      if stopping t then () else loop ()
    | exception Unix.Unix_error _ -> () (* listener closed: stopping *)
    | exception Sys_error _ -> ()
    | fd, _ when stopping t ->
      (* The wake-up self-connection (or a late client). *)
      (try Unix.close fd with _ -> ())
    | fd, _ ->
      let conn =
        {
          fd;
          ic = Unix.in_channel_of_descr fd;
          oc = Unix.out_channel_of_descr fd;
          wlock = Mutex.create ();
          alive = true;
          closed = false;
          inflight = 0;
        }
      in
      let th = Thread.create (fun () -> reader_loop t conn) () in
      locked t.slock (fun () ->
          t.conns <- conn :: t.conns;
          t.readers <- th :: t.readers);
      loop ()
  in
  loop ()

let start cfg =
  if Sys.os_type = "Unix" then
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (try Unix.unlink cfg.socket with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket);
     Unix.listen listen_fd 16
   with e ->
     (try Unix.close listen_fd with _ -> ());
     raise e);
  let t =
    {
      cfg;
      listen_fd;
      pool = Fl_par.create ~name:"serve" ~jobs:(max 1 cfg.jobs) ();
      cache =
        Cache.create ~max_circuits:cfg.cache_circuits
          ~max_bases:cfg.cache_bases ();
      queue = Queue.create ();
      qlock = Mutex.create ();
      qcond = Condition.create ();
      stopping = false;
      slock = Mutex.create ();
      conns = [];
      counts =
        {
          n_requests = 0;
          n_lock = 0;
          n_attack = 0;
          n_analyze = 0;
          n_status = 0;
          n_errors = 0;
        };
      start_time = Unix.gettimeofday ();
      listener = None;
      scheduler = None;
      readers = [];
    }
  in
  t.listener <- Some (Thread.create (fun () -> listener_loop t) ());
  t.scheduler <- Some (Thread.create (fun () -> scheduler_loop t) ());
  t

let stop t = initiate_stop t

let wait t =
  (match t.listener with Some th -> Thread.join th | None -> ());
  (try Unix.close t.listen_fd with _ -> ());
  (match t.scheduler with Some th -> Thread.join th | None -> ());
  let readers = locked t.slock (fun () -> t.readers) in
  List.iter Thread.join readers;
  Fl_par.shutdown t.pool;
  (try Unix.unlink t.cfg.socket with Unix.Unix_error _ -> ())

let run cfg = wait (start cfg)
