module Json = Fl_obs.Json

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  mutable closed : bool;
}

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  {
    fd;
    ic = Unix.in_channel_of_descr fd;
    oc = Unix.out_channel_of_descr fd;
    closed = false;
  }

let close t =
  if not t.closed then begin
    t.closed <- true;
    (* close_out closes the shared fd; the in_channel must not be
       closed separately. *)
    try close_out t.oc with _ -> (try Unix.close t.fd with _ -> ())
  end

let request ?on_event t req =
  if t.closed then Result.Error "connection closed"
  else
    match
      output_string t.oc (Json.encode (Protocol.request_to_json req));
      output_char t.oc '\n';
      flush t.oc
    with
    | exception e -> Result.Error ("write failed: " ^ Printexc.to_string e)
    | () ->
      let want = req.Protocol.id in
      let rec loop () =
        match input_line t.ic with
        | exception (End_of_file | Sys_error _) ->
          Result.Error "connection closed before the terminal frame"
        | line ->
          (match Protocol.parse_frame line with
           | Result.Error msg -> Result.Error msg
           | Result.Ok (id, _) when id <> want -> loop ()
           | Result.Ok (_, Protocol.Event e) ->
             (match on_event with Some f -> f e | None -> ());
             loop ()
           | Result.Ok (_, Protocol.Result j) -> Result.Ok j
           | Result.Ok (_, Protocol.Error msg) -> Result.Error msg)
      in
      loop ()
