module Json = Fl_obs.Json

type events_mode = Events_none | Events_attack | Events_all

let events_mode_of_string = function
  | "none" -> Ok Events_none
  | "attack" -> Ok Events_attack
  | "all" -> Ok Events_all
  | other -> Error (Printf.sprintf "bad events mode %S (none|attack|all)" other)

let events_mode_to_string = function
  | Events_none -> "none"
  | Events_attack -> "attack"
  | Events_all -> "all"

type request = {
  id : string;
  op : string;
  kind : string;
  scheme : string;
  plr : string;
  cyclic : bool;
  key_bits : int;
  seed : int;
  circuit : string option;
  locked : string option;
  oracle : string option;
  timeout : float option;
  max_conflicts : int option;
  events : events_mode;
}

let default_request =
  {
    id = "";
    op = "";
    kind = "sat";
    scheme = "full-lock";
    plr = "1x8";
    cyclic = false;
    key_bits = 16;
    seed = 1;
    circuit = None;
    locked = None;
    oracle = None;
    timeout = None;
    max_conflicts = None;
    events = Events_attack;
  }

(* Typed member accessors over the parsed object; each mismatch is a
   protocol error with the member named, not a silent default. *)
exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let get_string k = function
  | Json.Jstring s -> s
  | _ -> bad "member %S must be a string" k

let get_bool k = function
  | Json.Jbool b -> b
  | _ -> bad "member %S must be a boolean" k

let get_int k = function
  | Json.Jint i -> i
  | _ -> bad "member %S must be an integer" k

let get_float k = function
  | Json.Jint i -> float_of_int i
  | Json.Jfloat f -> f
  | _ -> bad "member %S must be a number" k

let parse_request line =
  match Json.parse line with
  | exception Json.Parse_error msg -> Error ("malformed JSON: " ^ msg)
  | Json.Jobj members ->
    (try
       let r =
         List.fold_left
           (fun r (k, v) ->
             match k with
             | "id" -> { r with id = get_string k v }
             | "op" -> { r with op = get_string k v }
             | "kind" -> { r with kind = get_string k v }
             | "scheme" -> { r with scheme = get_string k v }
             | "plr" -> { r with plr = get_string k v }
             | "cyclic" -> { r with cyclic = get_bool k v }
             | "key_bits" -> { r with key_bits = get_int k v }
             | "seed" -> { r with seed = get_int k v }
             | "circuit" -> { r with circuit = Some (get_string k v) }
             | "locked" -> { r with locked = Some (get_string k v) }
             | "oracle" -> { r with oracle = Some (get_string k v) }
             | "timeout" -> { r with timeout = Some (get_float k v) }
             | "max_conflicts" ->
               { r with max_conflicts = Some (get_int k v) }
             | "events" ->
               (match events_mode_of_string (get_string k v) with
                | Ok m -> { r with events = m }
                | Error e -> raise (Bad e))
             | _ -> r (* unknown members: forward compatibility *))
           default_request members
       in
       if r.op = "" then Error "missing \"op\" member" else Ok r
     with Bad msg -> Error msg)
  | _ -> Error "request must be a JSON object"

let request_to_json r =
  let str k v rest = (k, Json.Jstring v) :: rest in
  let opt_str k v rest =
    match v with None -> rest | Some s -> (k, Json.Jstring s) :: rest
  in
  let fields = [] in
  let fields =
    if r.events = default_request.events then fields
    else str "events" (events_mode_to_string r.events) fields
  in
  let fields =
    match r.max_conflicts with
    | None -> fields
    | Some m -> ("max_conflicts", Json.Jint m) :: fields
  in
  let fields =
    match r.timeout with
    | None -> fields
    | Some t -> ("timeout", Json.Jfloat t) :: fields
  in
  let fields = opt_str "oracle" r.oracle fields in
  let fields = opt_str "locked" r.locked fields in
  let fields = opt_str "circuit" r.circuit fields in
  let fields =
    if r.seed = default_request.seed then fields
    else ("seed", Json.Jint r.seed) :: fields
  in
  let fields =
    if r.key_bits = default_request.key_bits then fields
    else ("key_bits", Json.Jint r.key_bits) :: fields
  in
  let fields =
    if r.cyclic then ("cyclic", Json.Jbool true) :: fields else fields
  in
  let fields =
    if r.plr = default_request.plr then fields else str "plr" r.plr fields
  in
  let fields =
    if r.scheme = default_request.scheme then fields
    else str "scheme" r.scheme fields
  in
  let fields =
    if r.kind = default_request.kind then fields else str "kind" r.kind fields
  in
  let fields = str "op" r.op fields in
  let fields = if r.id = "" then fields else str "id" r.id fields in
  Json.Jobj fields

(* ------------------------------------------------------------------ *)
(* Frames                                                              *)
(* ------------------------------------------------------------------ *)

(* Event frames splice [id]/[frame] in front of the flat single-line
   event encoding, keeping Json.to_string the only event serializer. *)
let event_frame ~id e =
  let body = Json.to_string e in
  let buf = Buffer.create (String.length body + 32) in
  Buffer.add_string buf "{\"id\":";
  Buffer.add_string buf (Json.string_to_string id);
  Buffer.add_string buf ",\"frame\":\"event\",";
  Buffer.add_substring buf body 1 (String.length body - 1);
  Buffer.contents buf

let result_frame ~id ~op fields =
  Json.encode
    (Json.Jobj
       (("id", Json.Jstring id)
        :: ("frame", Json.Jstring "result")
        :: ("op", Json.Jstring op)
        :: fields))

let error_frame ~id message =
  Json.encode
    (Json.Jobj
       [
         "id", Json.Jstring id;
         "frame", Json.Jstring "error";
         "message", Json.Jstring message;
       ])

type frame = Event of Fl_obs.event | Result of Json.t | Error of string

let parse_frame line =
  match Json.parse line with
  | exception Json.Parse_error msg -> Result.Error ("malformed JSON: " ^ msg)
  | Json.Jobj _ as j ->
    let id =
      match Json.member "id" j with Some (Json.Jstring s) -> s | _ -> ""
    in
    (match Json.member "frame" j with
     | Some (Json.Jstring "event") ->
       (* Re-parse through the flat-event reader; the extra [id]/[frame]
          members land in the field list and are stripped. *)
       (match Json.of_string line with
        | e ->
          let fields =
            List.filter
              (fun (k, _) -> k <> "id" && k <> "frame")
              e.Fl_obs.fields
          in
          Result.Ok (id, Event { e with Fl_obs.fields })
        | exception Json.Parse_error msg ->
          Result.Error ("malformed event frame: " ^ msg))
     | Some (Json.Jstring "result") -> Result.Ok (id, Result j)
     | Some (Json.Jstring "error") ->
       let message =
         match Json.member "message" j with
         | Some (Json.Jstring m) -> m
         | _ -> "unknown error"
       in
       Result.Ok (id, Error message)
     | _ -> Result.Error "frame without a valid \"frame\" member")
  | _ -> Result.Error "frame must be a JSON object"
