(** The attack-as-a-service daemon.

    A Unix-domain-socket server speaking the newline-delimited JSON
    protocol of {!Protocol}.  Architecture:

    - a {e listener} thread accepts connections; each connection gets a
      {e reader} thread that parses request lines.  [status] and
      [shutdown] are answered inline (they must not queue behind a long
      attack); [lock] / [attack] / [analyze] are enqueued;
    - one {e scheduler} thread owns the shared {!Fl_par} pool — the pool
      contract (one batch at a time, submitted from one domain) is
      honoured by construction.  It drains the queue into batches and
      blocks in [Fl_par.run]; queued requests of concurrent clients run
      in parallel across the pool's worker domains;
    - each request executes as one pool task: it resolves circuits and
      prepared bases through the shared {!Cache}, runs the attack under
      a per-request {!Fl_obs.with_scoped_sink} that forwards selected
      events to {e its own} client as [event] frames (scoped sinks are
      domain-local, so concurrent requests never see each other's
      telemetry), and writes its terminal [result] frame itself.  Frame
      writes are serialized per connection; different clients write to
      different sockets, so their streams cannot interleave.

    Budgets: the server clamps every request's wall and conflict asks to
    [max_timeout] / [max_conflicts] (requests that ask for nothing get
    the caps as defaults), so a client cannot pin a worker domain
    indefinitely.  The effective budgets and whether clamping occurred
    are reported in the result frame.

    Shutdown (request or {!stop}) closes the listener, rejects further
    work, lets in-flight batches finish, and wakes every blocked reader
    by shutting down its socket. *)

type config = {
  socket : string;  (** Unix-domain socket path (created; removed on exit) *)
  jobs : int;  (** {!Fl_par} pool width; 1 = inline on the scheduler *)
  max_timeout : float;  (** wall-budget cap and default, seconds *)
  max_conflicts : int;  (** solver-conflict cap and default *)
  cache_circuits : int;  (** text-level cache entries *)
  cache_bases : int;  (** prepared-base cache entries *)
}

(** [jobs = 1], 300 s wall cap, 2M conflict cap, 64-entry caches. *)
val default_config : socket:string -> config

type t

(** [start cfg] binds the socket (replacing a stale file), spawns the
    listener and scheduler threads and returns immediately.
    @raise Unix.Unix_error when the socket cannot be bound. *)
val start : config -> t

(** [wait t] blocks until the server stops (a [shutdown] request or
    {!stop}), then joins every thread, shuts the pool down and removes
    the socket file. *)
val wait : t -> unit

(** [stop t] initiates shutdown programmatically.  Idempotent; returns
    without waiting (follow with {!wait}). *)
val stop : t -> unit

(** [run cfg] is [wait (start cfg)]. *)
val run : config -> unit
