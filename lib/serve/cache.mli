(** The daemon's content-addressed cache: the amortisation layer that
    makes serving the same host circuit twice cheap.

    Two levels:

    - {e text level} — MD5 digest of the raw [.bench] text to the parsed
      {!Fl_netlist.Circuit.t}.  A hit skips parsing, and because the
      {e same physical circuit} is returned, the per-domain
      {!Fl_netlist.View} memo (keyed by physical identity) and every
      view-level analysis (including {!Fl_netlist.View.structural_hash})
      come back for free on any domain that has seen the circuit.
    - {e base level} — {!Fl_netlist.View.structural_hash} of the locked
      circuit plus the attack mode to a prepared
      {!Fl_attacks.Session.Base}.  A hit skips the miter Tseytin
      encoding, the CycSAT cycle analysis (the emitter is captured in
      the base) and the one-shot SatELite preprocessing; each session
      then only pays a formula copy.  Keying by {e structural} hash
      means a renamed or node-permuted copy of a known circuit still
      hits.

    A 64-bit structural hash can collide in principle, so a base hit for
    a circuit that is not physically the cached one is {e probed} first:
    the two circuits must agree on random simulation vectors under
    shared random keys ({!Fl_netlist.View.agree_on_probes}).  A probe
    failure counts on [collisions] and is served as a miss (the fresh
    base replaces the cached entry).

    On a base hit the caller must attack {!Fl_attacks.Session.Base.circuit}
    (the cached circuit) instead of its own parse — the cached miter
    encodes that node numbering; positional key/input/output isomorphism
    makes the recovered key valid for the request's circuit.

    Both levels are bounded (FIFO eviction) and mutex-guarded: worker
    domains running requests in parallel share one cache. *)

type t

val create : ?max_circuits:int -> ?max_bases:int -> unit -> t

(** [circuit_of_text t text] parses [text] or returns the cached parse.
    @raise Fl_netlist.Bench_io.Parse_error on malformed bench text. *)
val circuit_of_text :
  t -> string -> Fl_netlist.Circuit.t * [ `Hit | `Miss ]

(** Attack mode of a prepared base.  [Sat] bases (plain miter, used by
    sat and appsat attacks) and [Cycsat] bases (no-cycle condition
    asserted) are cached separately — same circuit, different CNF. *)
type mode = Sat | Cycsat

val mode_to_string : mode -> string

(** [base_for t ~mode c] returns a prepared base for [c], building (and
    caching) it on miss. *)
val base_for :
  t -> mode:mode -> Fl_netlist.Circuit.t ->
  Fl_attacks.Session.Base.t * [ `Hit | `Miss ]

(** Per-instance counters, stable key order:
    [circuit.hit], [circuit.miss], [base.hit], [base.miss],
    [collisions], [circuits], [bases] (current occupancy). *)
val stats : t -> (string * int) list
