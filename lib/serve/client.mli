(** Blocking client for the {!Server} daemon.

    One connection, one request at a time: {!request} writes the request
    line and reads frames until the terminal [result] or [error] frame
    arrives, invoking [on_event] for each streamed [event] frame in
    between.  Frames whose [id] does not match the request's are
    dropped (the server never interleaves streams on one connection
    unless the caller pipelines requests itself). *)

type t

(** [connect path] connects to the daemon's Unix-domain socket.
    @raise Unix.Unix_error when the socket cannot be reached. *)
val connect : string -> t

(** [request ?on_event t req] sends [req] and blocks until its terminal
    frame: [Ok json] for a [result] frame, [Error msg] for an [error]
    frame or a transport/protocol failure (connection closed mid-stream,
    malformed frame). *)
val request :
  ?on_event:(Fl_obs.event -> unit) ->
  t ->
  Protocol.request ->
  (Fl_obs.Json.t, string) result

(** [close t] closes the connection.  Idempotent. *)
val close : t -> unit
