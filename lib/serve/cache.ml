module Circuit = Fl_netlist.Circuit
module Bench_io = Fl_netlist.Bench_io
module View = Fl_netlist.View
module Session = Fl_attacks.Session

(* Global counters mirror the per-instance ones so daemon traces and
   --stats snapshots see cache behaviour without asking the server. *)
let c_circuit_hit = Fl_obs.Counter.make "serve.cache.circuit.hit"
let c_circuit_miss = Fl_obs.Counter.make "serve.cache.circuit.miss"
let c_base_hit = Fl_obs.Counter.make "serve.cache.base.hit"
let c_base_miss = Fl_obs.Counter.make "serve.cache.base.miss"
let c_collision = Fl_obs.Counter.make "serve.cache.collision"

type mode = Sat | Cycsat

let mode_to_string = function Sat -> "sat" | Cycsat -> "cycsat"

(* A bounded FIFO-evicting string-keyed table.  FIFO (not LRU) keeps the
   bookkeeping at one queue push per insert; the cache exists to absorb
   bursts of requests against the same few circuits, for which any
   reasonable policy behaves identically. *)
module Bounded = struct
  type 'a t = {
    table : (string, 'a) Hashtbl.t;
    order : string Queue.t;
    max : int;
  }

  let create max = { table = Hashtbl.create 32; order = Queue.create (); max }
  let find t k = Hashtbl.find_opt t.table k

  let add t k v =
    if not (Hashtbl.mem t.table k) then begin
      if Hashtbl.length t.table >= t.max then begin
        match Queue.take_opt t.order with
        | Some oldest -> Hashtbl.remove t.table oldest
        | None -> ()
      end;
      Queue.push k t.order
    end;
    Hashtbl.replace t.table k v

  let size t = Hashtbl.length t.table
end

type t = {
  lock : Mutex.t;
  circuits : Circuit.t Bounded.t;  (* MD5 of bench text -> parse *)
  bases : Session.Base.t Bounded.t;  (* structural hash + mode -> base *)
  mutable circuit_hit : int;
  mutable circuit_miss : int;
  mutable base_hit : int;
  mutable base_miss : int;
  mutable collisions : int;
}

let create ?(max_circuits = 64) ?(max_bases = 64) () =
  {
    lock = Mutex.create ();
    circuits = Bounded.create (max 1 max_circuits);
    bases = Bounded.create (max 1 max_bases);
    circuit_hit = 0;
    circuit_miss = 0;
    base_hit = 0;
    base_miss = 0;
    collisions = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let circuit_of_text t text =
  let key = Digest.to_hex (Digest.string text) in
  match locked t (fun () -> Bounded.find t.circuits key) with
  | Some c ->
    locked t (fun () -> t.circuit_hit <- t.circuit_hit + 1);
    Fl_obs.Counter.incr c_circuit_hit;
    (c, `Hit)
  | None ->
    (* Parse outside the lock: malformed text must not poison it, and
       parsing large benches under a shared mutex would serialize
       unrelated requests. *)
    let c = Bench_io.parse_string text in
    locked t (fun () ->
        t.circuit_miss <- t.circuit_miss + 1;
        Bounded.add t.circuits key c);
    Fl_obs.Counter.incr c_circuit_miss;
    (c, `Miss)

(* Cheap functional cross-check of a structural-hash hit against a
   circuit that is not physically the cached one: random probes under
   two shared random keys.  Cost is a few word-sim passes — noise next
   to the Tseytin + SatELite work a false hit would corrupt. *)
let probe_agree cached_c c =
  let va = View.of_circuit cached_c and vb = View.of_circuit c in
  let nk = Circuit.num_keys c in
  let rng = Random.State.make [| 0x5e21e; nk |] in
  let trials = 2 in
  let rec go i =
    i >= trials
    ||
    let key = Array.init nk (fun _ -> Random.State.bool rng) in
    View.agree_on_probes ~vectors:128 ~seed:(Random.State.bits rng) va
      ~keys_a:key vb ~keys_b:key
    && go (i + 1)
  in
  (* A true 64-bit collision may not even have matching interface widths;
     any probe failure mode means "not the same circuit". *)
  try go 0 with _ -> false

let base_for t ~mode c =
  let hash = View.structural_hash_hex (View.of_circuit c) in
  let key = hash ^ ":" ^ mode_to_string mode in
  let cached = locked t (fun () -> Bounded.find t.bases key) in
  let hit =
    match cached with
    | Some b when Session.Base.circuit b == c -> Some b
    | Some b ->
      if probe_agree (Session.Base.circuit b) c then Some b
      else begin
        locked t (fun () -> t.collisions <- t.collisions + 1);
        Fl_obs.Counter.incr c_collision;
        None
      end
    | None -> None
  in
  match hit with
  | Some b ->
    locked t (fun () -> t.base_hit <- t.base_hit + 1);
    Fl_obs.Counter.incr c_base_hit;
    (b, `Hit)
  | None ->
    (* Prepare outside the lock — this is the expensive path (Tseytin +
       preprocessing, plus cycle analysis for Cycsat bases).  Two
       racing requests for the same new circuit may both prepare; the
       second insert wins, which is wasteful once but always sound. *)
    let b =
      match mode with
      | Sat -> Session.Base.prepare ~label:"serve" c
      | Cycsat ->
        Session.Base.prepare
          ~extra_key_constraint:(Fl_attacks.Cycsat.no_cycle_condition c)
          ~label:"serve" c
    in
    locked t (fun () ->
        t.base_miss <- t.base_miss + 1;
        Bounded.add t.bases key b);
    Fl_obs.Counter.incr c_base_miss;
    (b, `Miss)

let stats t =
  locked t (fun () ->
      [
        "circuit.hit", t.circuit_hit;
        "circuit.miss", t.circuit_miss;
        "base.hit", t.base_hit;
        "base.miss", t.base_miss;
        "collisions", t.collisions;
        "circuits", Bounded.size t.circuits;
        "bases", Bounded.size t.bases;
      ])
