(** Wire protocol of the [Fl_serve] daemon: newline-delimited JSON.

    Each request is one JSON object on one line; the server answers with
    zero or more {e event} frames (streamed mid-request telemetry)
    followed by exactly one terminal frame — {e result} on success,
    {e error} otherwise.  Every frame echoes the request's [id], so a
    client multiplexing several requests over one connection can route
    frames; a well-formed exchange never interleaves frames of different
    {e connections} (each connection has its own socket), and frames are
    written atomically (one [write] per line under a per-connection
    lock), so lines never tear.

    Request schema (unknown members are ignored for forward
    compatibility):

    {v
    {"id":"r1","op":"attack","kind":"sat",
     "locked":"<bench text>","oracle":"<bench text>",
     "timeout":30.0,"max_conflicts":200000,"events":"attack"}
    {"id":"r2","op":"lock","circuit":"<bench text>","scheme":"rll",
     "key_bits":16,"seed":1}
    {"id":"r3","op":"analyze","circuit":"<bench text>",
     "oracle":"<bench text, optional>"}
    {"id":"r4","op":"status"}
    {"id":"r5","op":"shutdown"}
    v}

    Circuits travel inline as [.bench] text — that is what makes the
    server's cache content-addressed rather than path-dependent.

    Frame schemas:

    {v
    {"id":"r1","frame":"event","ts":...,"event":"attack.iteration",...}
    {"id":"r1","frame":"result","op":"attack",...}
    {"id":"r1","frame":"error","message":"..."}
    v}

    Event frames are the flat {!Fl_obs.Json.to_string} encoding of the
    forwarded event with [id] and [frame] members prepended. *)

(** Which events of the serving attack are streamed back as [event]
    frames. *)
type events_mode =
  | Events_none  (** no scoped sink is installed at all *)
  | Events_attack  (** names starting with ["attack."] (default) *)
  | Events_all  (** everything the request's span emits *)

val events_mode_of_string : string -> (events_mode, string) result
val events_mode_to_string : events_mode -> string

(** A parsed request.  [op] is the verb; the remaining members carry
    each verb's parameters and hold their defaults otherwise. *)
type request = {
  id : string;  (** echoed on every frame; defaults to [""] *)
  op : string;  (** lock / attack / analyze / status / shutdown *)
  kind : string;  (** attack flavour: sat (default) / cycsat / appsat *)
  scheme : string;  (** lock scheme (default ["full-lock"]) *)
  plr : string;  (** Full-Lock PLR sizes (default ["1x8"]) *)
  cyclic : bool;  (** Full-Lock cyclic PLR insertion *)
  key_bits : int;  (** key width for non-Full-Lock schemes (default 16) *)
  seed : int;  (** lock RNG seed (default 1) *)
  circuit : string option;  (** bench text: lock / analyze host *)
  locked : string option;  (** bench text: attack target *)
  oracle : string option;  (** bench text: attack / analyze oracle *)
  timeout : float option;  (** requested wall budget, seconds *)
  max_conflicts : int option;  (** requested solver-conflict budget *)
  events : events_mode;
}

(** All defaults, [id = ""], [op = ""]. *)
val default_request : request

(** [parse_request line] decodes one request line.  [Error] carries a
    human-readable reason (malformed JSON, non-object, missing/ill-typed
    member). *)
val parse_request : string -> (request, string) result

(** [request_to_json r] is the wire form (used by the client; omits
    members still at their defaults). *)
val request_to_json : request -> Fl_obs.Json.t

(** {1 Frame encoding (server side)} *)

val event_frame : id:string -> Fl_obs.event -> string
val result_frame : id:string -> op:string -> (string * Fl_obs.Json.t) list -> string
val error_frame : id:string -> string -> string

(** {1 Frame decoding (client side)} *)

type frame =
  | Event of Fl_obs.event  (** [id]/[frame] members already stripped *)
  | Result of Fl_obs.Json.t  (** the whole frame object *)
  | Error of string  (** the [message] member *)

(** [parse_frame line] is [(id, frame)]. *)
val parse_frame : string -> (string * frame, string) result
