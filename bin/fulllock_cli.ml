(* fulllock — command-line front end.

   Sub-commands:
     generate   draw a random benchmark-style circuit
     suite      emit a circuit from the built-in ISCAS/MCNC-shaped suite
     stats      netlist statistics and PPA estimate
     lock       apply a locking scheme, write locked netlist + key file
     verify     check a key against an oracle netlist
     attack     run SAT / CycSAT / AppSAT / removal / brute-force attacks *)

open Cmdliner

module Circuit = Fl_netlist.Circuit
module Bench_io = Fl_netlist.Bench_io
module Generator = Fl_netlist.Generator
module Bench_suite = Fl_netlist.Bench_suite
module Locked = Fl_locking.Locked
module Fulllock = Fl_core.Fulllock
module Ppa = Fl_ppa.Ppa

(* ---------- shared helpers ---------- *)

let read_circuit path =
  try Bench_io.parse_file path with
  | Bench_io.Parse_error (line, msg) ->
    Printf.eprintf "%s:%d: %s\n" path line msg;
    exit 1
  | Sys_error msg ->
    Printf.eprintf "%s\n" msg;
    exit 1

let write_circuit c path =
  Bench_io.write_file c path;
  Printf.printf "wrote %s (%d gates, %d inputs, %d keys, %d outputs)\n" path
    (Circuit.num_gates c) (Circuit.num_inputs c) (Circuit.num_keys c)
    (Circuit.num_outputs c)

let key_to_string key =
  String.init (Array.length key) (fun i -> if key.(i) then '1' else '0')

let key_of_string text =
  let text = String.trim text in
  Array.init (String.length text) (fun i ->
      match text.[i] with
      | '0' -> false
      | '1' -> true
      | c -> Printf.eprintf "bad key character %C\n" c; exit 1)

let write_key key path =
  let oc = open_out path in
  output_string oc (key_to_string key);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s (%d key bits)\n" path (Array.length key)

let read_key path =
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  key_of_string line

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let out_arg =
  Arg.(required & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE"
         ~doc:"Output .bench file.")

(* ---------- generate ---------- *)

let generate_cmd =
  let run gates inputs outputs seed out =
    let profile =
      { Generator.num_inputs = inputs; num_outputs = outputs; num_gates = gates;
        max_fanin = 4; and_bias = 0.8 }
    in
    let c = Generator.random ~seed ~name:(Filename.remove_extension (Filename.basename out)) profile in
    write_circuit c out
  in
  let gates = Arg.(value & opt int 200 & info [ "gates" ] ~doc:"Gate count.") in
  let inputs = Arg.(value & opt int 16 & info [ "inputs" ] ~doc:"Primary inputs.") in
  let outputs = Arg.(value & opt int 8 & info [ "outputs" ] ~doc:"Primary outputs.") in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a random combinational circuit")
    Term.(const run $ gates $ inputs $ outputs $ seed_arg $ out_arg)

(* ---------- suite ---------- *)

let suite_cmd =
  let run name scale out =
    match Bench_suite.find name with
    | None ->
      Printf.eprintf "unknown suite circuit %S; available: %s\n" name
        (String.concat ", " Bench_suite.names);
      exit 1
    | Some _ -> write_circuit (Bench_suite.load_scaled name ~scale) out
  in
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME"
           ~doc:"Suite circuit (c432, c880, apex2, ...).")
  in
  let scale = Arg.(value & opt int 1 & info [ "scale" ] ~doc:"Shrink factor (>= 1).") in
  Cmd.v
    (Cmd.info "suite" ~doc:"Emit a circuit of the ISCAS/MCNC-shaped suite")
    Term.(const run $ name_arg $ scale $ out_arg)

(* ---------- stats ---------- *)

let stats_cmd =
  let run path ppa =
    let c = read_circuit path in
    Format.printf "%a@." Circuit.pp_stats c;
    (match Circuit.depth c with
     | Some d -> Printf.printf "logic depth: %d\n" d
     | None ->
       Printf.printf "combinational cycles: %d feedback edge(s)\n"
         (Fl_attacks.Cycsat.num_feedback_edges c));
    if ppa then Format.printf "PPA: %a@." Ppa.pp (Ppa.of_circuit c)
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let ppa = Arg.(value & flag & info [ "ppa" ] ~doc:"Include the PPA estimate.") in
  Cmd.v (Cmd.info "stats" ~doc:"Print netlist statistics") Term.(const run $ path $ ppa)

(* ---------- lock ---------- *)

let lock_scheme rng scheme plr cyclic key_bits c =
  match scheme with
  | "full-lock" ->
    let sizes = Fulllock.parse_plr_sizes plr in
    let configs = List.map (fun n -> Fulllock.default_config ~n) sizes in
    Fulllock.lock rng ~policy:(if cyclic then `Cyclic else `Acyclic) ~configs c
  | "rll" -> Fl_locking.Rll.lock rng ~key_bits c
  | "mux" -> Fl_locking.Mux_lock.lock rng ~key_bits c
  | "sarlock" -> Fl_locking.Sarlock.lock rng ~key_bits c
  | "antisat" -> Fl_locking.Antisat.lock rng ~key_bits c
  | "lutlock" -> Fl_locking.Lut_lock.lock rng ~gates:(max 1 (key_bits / 4)) c
  | "crosslock" -> Fl_locking.Cross_lock.lock rng ~n:(max 2 key_bits) c
  | "sfll" -> Fl_locking.Sfll.lock rng ~key_bits ~h:(max 0 (key_bits / 8)) c
  | "cyclic" -> Fl_locking.Cyclic_lock.lock rng ~cycles:key_bits c
  | other ->
    Printf.eprintf
      "unknown scheme %S (full-lock, rll, mux, sarlock, antisat, sfll, lutlock, \
       crosslock, cyclic)\n"
      other;
    exit 1

let lock_cmd =
  let run input out key_out scheme plr cyclic key_bits seed =
    let c = read_circuit input in
    let rng = Random.State.make [| seed |] in
    let locked =
      try lock_scheme rng scheme plr cyclic key_bits c
      with Invalid_argument msg -> Printf.eprintf "lock failed: %s\n" msg; exit 1
    in
    if not (Locked.verify locked) then begin
      Printf.eprintf "internal error: correct key does not verify\n";
      exit 1
    end;
    write_circuit locked.Locked.locked out;
    write_key locked.Locked.correct_key key_out;
    let a, p, d = Ppa.locking_overhead ~original:c locked.Locked.locked in
    Printf.printf "scheme %s: overhead area %.2fx, power %.2fx, delay %.2fx\n"
      locked.Locked.scheme a p d
  in
  let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let key_out =
    Arg.(value & opt string "key.txt" & info [ "key-out" ] ~doc:"Key output file.")
  in
  let scheme =
    Arg.(value & opt string "full-lock" & info [ "scheme" ] ~doc:"Locking scheme.")
  in
  let plr =
    Arg.(value & opt string "1x8" & info [ "plr" ]
           ~doc:"Full-Lock PLR sizes, e.g. \"2x16 + 1x8\".")
  in
  let cyclic = Arg.(value & flag & info [ "cyclic" ] ~doc:"Cyclic PLR insertion.") in
  let key_bits =
    Arg.(value & opt int 16 & info [ "key-bits" ] ~doc:"Key bits (non-Full-Lock schemes).")
  in
  Cmd.v
    (Cmd.info "lock" ~doc:"Lock a netlist and emit the correct key")
    Term.(const run $ input $ out_arg $ key_out $ scheme $ plr $ cyclic $ key_bits $ seed_arg)

(* ---------- optimize / activate / export ---------- *)

let optimize_cmd =
  let run input out =
    let c = read_circuit input in
    let optimized, stats = Fl_netlist.Opt.run c in
    Format.printf "%a@." Fl_netlist.Opt.pp_stats stats;
    write_circuit optimized out
  in
  let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  Cmd.v
    (Cmd.info "optimize" ~doc:"Constant-fold, sweep buffers and dead logic")
    Term.(const run $ input $ out_arg)

let activate_cmd =
  let run input key_path out sweep =
    let c = read_circuit input in
    let key = read_key key_path in
    if Array.length key <> Circuit.num_keys c then begin
      Printf.eprintf "key has %d bits, circuit expects %d\n" (Array.length key)
        (Circuit.num_keys c);
      exit 1
    end;
    let activated = Fl_netlist.Opt.hardwire_keys c key in
    let final =
      if sweep then begin
        let swept, stats = Fl_netlist.Opt.run activated in
        Format.printf "%a@." Fl_netlist.Opt.pp_stats stats;
        swept
      end
      else activated
    in
    write_circuit final out
  in
  let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"LOCKED") in
  let key = Arg.(required & pos 1 (some file) None & info [] ~docv:"KEYFILE") in
  let sweep =
    Arg.(value & opt bool true & info [ "sweep" ] ~doc:"Run the optimizer afterwards.")
  in
  Cmd.v
    (Cmd.info "activate" ~doc:"Hardwire a key into a locked netlist")
    Term.(const run $ input $ key $ out_arg $ sweep)

let export_cmd =
  let run input out =
    let c = read_circuit input in
    Fl_netlist.Verilog.write_file c out;
    Printf.printf "wrote %s (structural Verilog)\n" out
  in
  let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  Cmd.v
    (Cmd.info "export-verilog" ~doc:"Convert a .bench netlist to structural Verilog")
    Term.(const run $ input $ out_arg)

let equiv_cmd =
  let run a_path b_path keys_a_path =
    let a = read_circuit a_path in
    let b = read_circuit b_path in
    let keys_a =
      match keys_a_path with
      | Some p -> read_key p
      | None -> [||]
    in
    match Fl_sat.Equiv.check ~keys_a a b with
    | Fl_sat.Equiv.Equivalent ->
      print_endline "equivalent (SAT-proved)"
    | Fl_sat.Equiv.Unknown ->
      print_endline "unknown";
      exit 1
    | Fl_sat.Equiv.Different { inputs; _ } ->
      Printf.printf "DIFFERENT, counterexample input: %s\n"
        (String.init (Array.length inputs) (fun i -> if inputs.(i) then '1' else '0'));
      exit 1
  in
  let a = Arg.(required & pos 0 (some file) None & info [] ~docv:"A") in
  let b = Arg.(required & pos 1 (some file) None & info [] ~docv:"B") in
  let key =
    Arg.(value & opt (some file) None & info [ "key-a" ]
           ~doc:"Pin A's key inputs to this key file.")
  in
  Cmd.v
    (Cmd.info "equiv" ~doc:"Formally check two netlists for equivalence")
    Term.(const run $ a $ b $ key)

(* ---------- coverage / testgen ---------- *)

let read_optional_key path_opt circuit =
  match path_opt with
  | Some p ->
    let key = read_key p in
    if Array.length key <> Circuit.num_keys circuit then begin
      Printf.eprintf "key has %d bits, circuit expects %d\n" (Array.length key)
        (Circuit.num_keys circuit);
      exit 1
    end;
    key
  | None ->
    if Circuit.num_keys circuit > 0 then begin
      Printf.eprintf "circuit has key inputs; pass --key\n";
      exit 1
    end;
    [||]

let coverage_cmd =
  let run path key_path count seed =
    let c = read_circuit path in
    let keys = read_optional_key key_path c in
    let cov = Fl_netlist.Faults.random_coverage c ~keys ~count ~seed in
    Format.printf "%a@." Fl_netlist.Faults.pp_coverage cov
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let key = Arg.(value & opt (some file) None & info [ "key" ] ~doc:"Activation key file.") in
  let count = Arg.(value & opt int 128 & info [ "vectors" ] ~doc:"Random test vectors.") in
  let cov_seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Vector seed.") in
  Cmd.v
    (Cmd.info "coverage" ~doc:"Stuck-at fault coverage of random vectors")
    Term.(const run $ path $ key $ count $ cov_seed)

let testgen_cmd =
  let run path key_path out budget =
    let c = read_circuit path in
    if not (Circuit.is_acyclic c) then begin
      Printf.eprintf "ATPG needs an acyclic netlist (activate the key first)\n";
      exit 1
    end;
    let keys = read_optional_key key_path c in
    let faults =
      List.map
        (fun f -> f.Fl_netlist.Faults.node, f.Fl_netlist.Faults.stuck_at)
        (Fl_netlist.Faults.enumerate c)
    in
    let r = Fl_sat.Atpg.cover ~budget_per_fault:budget c ~keys ~faults in
    Format.printf "%a@." Fl_sat.Atpg.pp_report r;
    let oc = open_out out in
    List.iter
      (fun v ->
        Array.iter (fun b -> output_char oc (if b then '1' else '0')) v;
        output_char oc '\n')
      r.Fl_sat.Atpg.tests;
    close_out oc;
    Printf.printf "wrote %s (%d vectors)\n" out (List.length r.Fl_sat.Atpg.tests)
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let key = Arg.(value & opt (some file) None & info [ "key" ] ~doc:"Activation key file.") in
  let out = Arg.(value & opt string "tests.txt" & info [ "o"; "out" ] ~doc:"Vector file.") in
  let budget =
    Arg.(value & opt float 5.0 & info [ "budget" ] ~doc:"SAT budget per fault (s).")
  in
  Cmd.v
    (Cmd.info "testgen" ~doc:"SAT ATPG: generate stuck-at tests, prove redundancies")
    Term.(const run $ path $ key $ out $ budget)

(* ---------- verify ---------- *)

let bundle ~locked_path ~oracle_path ~key =
  let locked = read_circuit locked_path in
  let oracle = read_circuit oracle_path in
  { Locked.locked; oracle; correct_key = key; scheme = "cli" }

let verify_cmd =
  let run locked_path oracle_path key_path =
    let key = read_key key_path in
    let l = bundle ~locked_path ~oracle_path ~key in
    if Locked.verify l then print_endline "key is functionally correct"
    else begin
      print_endline "key is WRONG";
      exit 1
    end
  in
  let locked = Arg.(required & pos 0 (some file) None & info [] ~docv:"LOCKED") in
  let oracle = Arg.(required & pos 1 (some file) None & info [] ~docv:"ORACLE") in
  let key = Arg.(required & pos 2 (some file) None & info [] ~docv:"KEYFILE") in
  Cmd.v
    (Cmd.info "verify" ~doc:"Check a key against the oracle netlist")
    Term.(const run $ locked $ oracle $ key)

(* ---------- attack ---------- *)

let attack_cmd =
  let run kind locked_path oracle_path timeout key_out trace stats inp_on
      inp_off inp_every pf_jobs pf_det seed cube_depth cdcl_var_decay
      cdcl_restart_base cdcl_phase cdcl_random_freq =
    (match trace with None -> () | Some file -> Fl_cli.install_trace file);
    (* Same validation (and exit-2 behaviour) as the getopt-style
       binaries: --inprocess/--no-inprocess are mutually exclusive. *)
    let inp = Fl_cli.check_inprocess ~on:inp_on ~off:inp_off ~every:inp_every in
    let inprocess = inp.Fl_cli.enabled in
    let inprocess_every = inp.Fl_cli.every in
    let portfolio =
      Fl_cli.check_solver ?portfolio:pf_jobs ~det:pf_det ?seed ?cube_depth
        ?var_decay:cdcl_var_decay ?restart_base:cdcl_restart_base
        ?phase:(Option.map Fl_cli.parse_phase cdcl_phase)
        ?random_freq:cdcl_random_freq ()
    in
    if stats then begin
      (* Deep telemetry so the snapshot includes the cdcl.* histograms. *)
      Fl_obs.set_deep true;
      Fl_cli.stats_on_exit ()
    end;
    let locked = read_circuit locked_path in
    let oracle = read_circuit oracle_path in
    let l =
      { Locked.locked; oracle; correct_key = Array.make (Circuit.num_keys locked) false;
        scheme = "cli" }
    in
    let save_key key =
      match key_out with
      | Some path -> write_key key path
      | None -> Printf.printf "recovered key: %s\n" (key_to_string key)
    in
    let progress i t = Printf.eprintf "\riteration %d (%.1fs)%!" i t in
    (match kind with
     | "sat" | "cycsat" ->
       let result =
         if kind = "sat" then
           Fl_attacks.Sat_attack.run ~timeout ~progress ?inprocess
             ?inprocess_every ?portfolio l
         else
           Fl_attacks.Cycsat.run ~timeout ~progress ?inprocess
             ?inprocess_every ?portfolio l
       in
       prerr_newline ();
       Format.printf "%a@." Fl_attacks.Sat_attack.pp_result result;
       (match result.Fl_attacks.Sat_attack.status with
        | Fl_attacks.Sat_attack.Broken key -> save_key key
        | _ -> exit 1)
     | "appsat" ->
       let result = Fl_attacks.Appsat.run ~timeout l in
       Format.printf "%a@." Fl_attacks.Appsat.pp_result result;
       (match result.Fl_attacks.Appsat.key with
        | Some key -> save_key key
        | None -> exit 1)
     | "removal" ->
       let result = Fl_attacks.Removal.run l in
       Printf.printf "flip gates removed: %d, MUXes bypassed: %d, equivalent: %b\n"
         result.Fl_attacks.Removal.removed_flip_gates
         result.Fl_attacks.Removal.bypassed_mux_islands
         result.Fl_attacks.Removal.equivalent;
       if not result.Fl_attacks.Removal.equivalent then exit 1
     | "bruteforce" ->
       let result = Fl_attacks.Brute_force.run l in
       (match result.Fl_attacks.Brute_force.key with
        | Some key ->
          Printf.printf "found after %d keys (%.2fs)\n"
            result.Fl_attacks.Brute_force.keys_tried
            result.Fl_attacks.Brute_force.wall_time;
          save_key key
        | None ->
          print_endline "no functionally correct key found";
          exit 1)
     | other ->
       Printf.eprintf "unknown attack %S (sat, cycsat, appsat, removal, bruteforce)\n" other;
       exit 1)
  in
  let kind = Arg.(value & opt string "sat" & info [ "kind" ] ~doc:"Attack kind.") in
  let locked = Arg.(required & pos 0 (some file) None & info [] ~docv:"LOCKED") in
  let oracle = Arg.(required & pos 1 (some file) None & info [] ~docv:"ORACLE") in
  let timeout =
    Arg.(value & opt float 60.0 & info [ "timeout" ] ~doc:"Wall-clock budget (s).")
  in
  let key_out =
    Arg.(value & opt (some string) None & info [ "key-out" ] ~doc:"Save the key here.")
  in
  let trace =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Append structured JSONL events (one per attack iteration, \
                 solver progress) to $(docv).")
  in
  let stats =
    Arg.(value & flag & info [ "stats" ]
           ~doc:"Print the full metric snapshot (counters, gauges, solver \
                 histograms) on exit.")
  in
  let inp_on =
    Arg.(value & flag & info [ "inprocess" ]
           ~doc:"Re-simplify the attack formula (probing, equivalent-literal \
                 collapsing, XOR/Gauss) every N DIP iterations, rebuilding \
                 the solver (SAT/CycSAT attacks only).")
  in
  let inp_off =
    Arg.(value & flag & info [ "no-inprocess" ]
           ~doc:"Force the between-iterations simplification off.")
  in
  let inp_every =
    Arg.(value & opt (some int) None & info [ "inprocess-every" ] ~docv:"N"
           ~doc:"Inprocessing period in DIP iterations (default 8).")
  in
  let pf_jobs =
    Arg.(value & opt (some int) None & info [ "portfolio" ] ~docv:"N"
           ~doc:"Front the miter solver with a portfolio of $(docv) diverse \
                 CDCL members raced across domains; the first decisive \
                 member wins and the losers are cancelled (SAT/CycSAT \
                 attacks only).")
  in
  let pf_det =
    Arg.(value & flag & info [ "portfolio-det" ]
           ~doc:"Deterministic portfolio: one member (picked by --seed), \
                 no domains — bit-for-bit reproducible.")
  in
  let seed =
    Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"N"
           ~doc:"Solver seed: diversifies portfolio members and picks the \
                 deterministic member.")
  in
  let cube_depth =
    Arg.(value & opt (some int) None & info [ "cube-depth" ] ~docv:"D"
           ~doc:"Cube-and-conquer: split each miter solve into 2^$(docv) \
                 cubes over the highest-fanout key variables.")
  in
  let cdcl_var_decay =
    Arg.(value & opt (some float) None & info [ "cdcl-var-decay" ] ~docv:"F"
           ~doc:"VSIDS activity decay in (0,1), default 0.95.")
  in
  let cdcl_restart_base =
    Arg.(value & opt (some int) None & info [ "cdcl-restart-base" ] ~docv:"N"
           ~doc:"Luby restart unit in conflicts, default 64.")
  in
  let cdcl_phase =
    Arg.(value & opt (some string) None & info [ "cdcl-phase" ] ~docv:"P"
           ~doc:"Saved-phase default: false, true or random.")
  in
  let cdcl_random_freq =
    Arg.(value & opt (some float) None & info [ "cdcl-random-freq" ] ~docv:"F"
           ~doc:"Fraction of random decisions in [0,1], default 0.")
  in
  Cmd.v
    (Cmd.info "attack" ~doc:"Attack a locked netlist with oracle access")
    Term.(const run $ kind $ locked $ oracle $ timeout $ key_out $ trace
          $ stats $ inp_on $ inp_off $ inp_every $ pf_jobs $ pf_det $ seed
          $ cube_depth $ cdcl_var_decay $ cdcl_restart_base $ cdcl_phase
          $ cdcl_random_freq)

(* ---------- serve / client ---------- *)

let socket_arg =
  Arg.(required & opt (some string) None
       & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let serve_cmd =
  let run socket jobs max_timeout max_conflicts trace stats =
    (match trace with None -> () | Some file -> Fl_cli.install_trace file);
    if stats then Fl_cli.stats_on_exit ();
    if jobs < 1 then begin
      Printf.eprintf "--jobs needs a positive integer, got %d\n" jobs;
      exit 2
    end;
    let cfg =
      { (Fl_serve.Server.default_config ~socket) with
        Fl_serve.Server.jobs; max_timeout; max_conflicts }
    in
    Printf.eprintf "fulllock serve: listening on %s (%d jobs)\n%!" socket jobs;
    match Fl_serve.Server.run cfg with
    | () -> prerr_endline "fulllock serve: stopped"
    | exception Unix.Unix_error (e, fn, arg) ->
      Printf.eprintf "cannot serve on %s: %s (%s %s)\n" socket
        (Unix.error_message e) fn arg;
      exit 1
  in
  let jobs =
    Arg.(value & opt int 1
         & info [ "jobs" ] ~docv:"N"
             ~doc:"Worker pool width (default 1: requests run one at a time \
                   on the scheduler).")
  in
  let max_timeout =
    Arg.(value & opt float 300.0
         & info [ "max-timeout" ] ~docv:"SECONDS"
             ~doc:"Per-request wall-budget cap and default.")
  in
  let max_conflicts =
    Arg.(value & opt int 2_000_000
         & info [ "max-conflicts" ] ~docv:"N"
             ~doc:"Per-request solver-conflict cap and default.")
  in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Append the daemon's structured JSONL events to $(docv).")
  in
  let stats =
    Arg.(value & flag
         & info [ "stats" ] ~doc:"Print the full metric snapshot on exit.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the attack-as-a-service daemon on a Unix socket")
    Term.(const run $ socket_arg $ jobs $ max_timeout $ max_conflicts
          $ trace $ stats)

let client_cmd =
  let run socket op kind scheme plr cyclic key_bits seed circuit locked oracle
      timeout max_conflicts events quiet =
    let events_mode =
      match Fl_serve.Protocol.events_mode_of_string events with
      | Ok m -> m
      | Error msg -> Printf.eprintf "%s\n" msg; exit 2
    in
    let slurp_opt = Option.map Fl_cli.slurp in
    let req =
      { Fl_serve.Protocol.id = Printf.sprintf "cli-%d" (Unix.getpid ());
        op; kind; scheme; plr; cyclic; key_bits; seed;
        circuit = slurp_opt circuit;
        locked = slurp_opt locked;
        oracle = slurp_opt oracle;
        timeout; max_conflicts;
        events = events_mode }
    in
    let c =
      try Fl_serve.Client.connect socket
      with Unix.Unix_error (e, _, _) ->
        Printf.eprintf "cannot connect to %s: %s\n" socket
          (Unix.error_message e);
        exit 1
    in
    let on_event e =
      if not quiet then
        Printf.eprintf "%s\n%!" (Fl_obs.Json.to_string e)
    in
    let outcome = Fl_serve.Client.request ~on_event c req in
    Fl_serve.Client.close c;
    match outcome with
    | Ok json ->
      print_endline (Fl_obs.Json.encode json)
    | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1
  in
  let op =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"OP"
             ~doc:"Request op: lock, attack, analyze, status or shutdown.")
  in
  let kind =
    Arg.(value & opt string "sat"
         & info [ "kind" ] ~doc:"Attack kind: sat, cycsat or appsat.")
  in
  let scheme =
    Arg.(value & opt string "full-lock" & info [ "scheme" ] ~doc:"Lock scheme.")
  in
  let plr =
    Arg.(value & opt string "1x8"
         & info [ "plr" ] ~doc:"Full-Lock PLR block sizes.")
  in
  let cyclic =
    Arg.(value & flag & info [ "cyclic" ] ~doc:"Full-Lock cyclic insertion.")
  in
  let key_bits =
    Arg.(value & opt int 16 & info [ "key-bits" ] ~doc:"Key width.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Lock RNG seed.") in
  let circuit =
    Arg.(value & opt (some string) None
         & info [ "circuit" ] ~docv:"FILE"
             ~doc:"Host circuit .bench for lock/analyze ($(b,-) = stdin).")
  in
  let locked =
    Arg.(value & opt (some string) None
         & info [ "locked" ] ~docv:"FILE"
             ~doc:"Locked circuit .bench for attack ($(b,-) = stdin).")
  in
  let oracle =
    Arg.(value & opt (some string) None
         & info [ "oracle" ] ~docv:"FILE"
             ~doc:"Oracle .bench for attack/analyze ($(b,-) = stdin).")
  in
  let timeout =
    Arg.(value & opt (some float) None
         & info [ "timeout" ] ~docv:"SECONDS"
             ~doc:"Requested wall budget (the server clamps to its cap).")
  in
  let max_conflicts =
    Arg.(value & opt (some int) None
         & info [ "max-conflicts" ] ~docv:"N"
             ~doc:"Requested solver-conflict budget.")
  in
  let events =
    Arg.(value & opt string "attack"
         & info [ "events" ] ~docv:"MODE"
             ~doc:"Streamed telemetry: none, attack or all.")
  in
  let quiet =
    Arg.(value & flag
         & info [ "quiet-events" ]
             ~doc:"Consume event frames silently instead of echoing them \
                   to stderr.")
  in
  Cmd.v
    (Cmd.info "client" ~doc:"Send one request to a running fulllock daemon")
    Term.(const run $ socket_arg $ op $ kind $ scheme $ plr $ cyclic
          $ key_bits $ seed $ circuit $ locked $ oracle $ timeout
          $ max_conflicts $ events $ quiet)

let () =
  let doc = "Full-Lock logic locking toolbox (DAC'19 reproduction)" in
  let info = Cmd.info "fulllock" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ generate_cmd; suite_cmd; stats_cmd; lock_cmd; verify_cmd; attack_cmd;
            optimize_cmd; activate_cmd; export_cmd; equiv_cmd; coverage_cmd;
            testgen_cmd; serve_cmd; client_cmd ]))
