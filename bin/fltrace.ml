(* Offline analyzer for Fl_obs JSONL traces (written by --trace FILE).

   fltrace summary FILE   event counts and a wall-clock breakdown
   fltrace spans FILE     aggregated span profile (calls, total, self)
   fltrace flame FILE     folded stacks for flamegraph.pl
   fltrace attack FILE    DIP trajectory table from attack.* records

   Every command tolerates truncated or interleaved traces: unparsable
   lines are skipped (and counted), span.end events with no open span are
   reported as unmatched.  TRACE may be "-" for stdin: the trace is read
   exactly once (events are held in memory), so piping a live capture
   works for every command. *)

module Obs = Fl_obs
module Json = Fl_obs.Json
module Profile = Fl_obs.Profile

let usage () =
  prerr_endline
    "usage: fltrace {summary|spans|flame|attack} TRACE.jsonl\n\n\
    \  TRACE may be - to read the trace from stdin\n\
    \  summary  per-event counts and wall-clock breakdown\n\
    \  spans    span profile tree: calls, total and self time\n\
    \  flame    folded stacks (pipe into flamegraph.pl)\n\
    \  attack   DIP trajectory table from attack.iteration records";
  exit 2

(* ------------------------------------------------------------------ *)
(* Trace reading                                                       *)
(* ------------------------------------------------------------------ *)

(* Load the parsable events of [path] ("-" = stdin) in one pass,
   counting skipped lines (blank or unparsable — a live-written trace can
   end in a torn line).  One pass matters for stdin: it cannot be
   reopened, so every command works off this in-memory list. *)
let load_events path =
  let ic =
    if path = "-" then stdin
    else
      try open_in path
      with Sys_error msg ->
        Printf.eprintf "fltrace: %s\n" msg;
        exit 1
  in
  let skipped = ref 0 in
  let events = ref [] in
  (try
     while true do
       let line = input_line ic in
       if String.trim line = "" then incr skipped
       else
         match Json.of_string line with
         | e -> events := e :: !events
         | exception Json.Parse_error _ -> incr skipped
     done
   with End_of_file -> ());
  if path <> "-" then close_in ic;
  List.rev !events, !skipped

let fold_events path f init =
  let events, skipped = load_events path in
  List.fold_left f init events, skipped

let profile_of_events events =
  let p = Profile.create () in
  List.iter (Profile.add_event p) events;
  p

let field name e = List.assoc_opt name e.Obs.fields

let field_int name e =
  match field name e with
  | Some (Obs.Int i) -> Some i
  | Some (Obs.Float f) -> Some (int_of_float f)
  | _ -> None

let field_float name e =
  match field name e with
  | Some (Obs.Float f) -> Some f
  | Some (Obs.Int i) -> Some (float_of_int i)
  | _ -> None

let field_str name e =
  match field name e with Some (Obs.String s) -> Some s | _ -> None

(* ------------------------------------------------------------------ *)
(* summary                                                             *)
(* ------------------------------------------------------------------ *)

let summary path =
  let events, skipped = load_events path in
  let counts : (string, int ref) Hashtbl.t = Hashtbl.create 64 in
  let n, t0, t1 =
    List.fold_left
      (fun (n, t0, t1) e ->
        (* Collapse the per-span event names so `span.begin:session.solve_dip`
           and its siblings aggregate under one row each. *)
        let name =
          match String.index_opt e.Obs.name ':' with
          | Some i -> String.sub e.Obs.name 0 i
          | None -> e.Obs.name
        in
        (match Hashtbl.find_opt counts name with
         | Some r -> incr r
         | None -> Hashtbl.add counts name (ref 1));
        n + 1, Float.min t0 e.Obs.ts, Float.max t1 e.Obs.ts)
      (0, Float.infinity, Float.neg_infinity)
      events
  in
  if n = 0 then begin
    Printf.printf "%s: no parsable events (%d lines skipped)\n" path skipped;
    exit (if skipped > 0 then 1 else 0)
  end;
  Printf.printf "%s: %d events in %.3fs of wall clock%s\n\n" path n (t1 -. t0)
    (if skipped > 0 then Printf.sprintf " (%d lines skipped)" skipped else "");
  let rows =
    Hashtbl.fold (fun name r acc -> (name, !r) :: acc) counts []
    |> List.sort (fun (na, ca) (nb, cb) ->
           match compare cb ca with 0 -> compare na nb | c -> c)
  in
  Printf.printf "%-32s %10s\n" "event" "count";
  List.iter (fun (name, c) -> Printf.printf "%-32s %10d\n" name c) rows;
  (* Parallel execution: par.batch.done aggregated per pool, and the
     portfolio races (winner configurations, cancellations, clause
     exchange) grouped alongside. *)
  let batches = List.filter (fun e -> e.Obs.name = "par.batch.done") events in
  if batches <> [] then begin
    let pools : (string, int * int * int * int * float * float) Hashtbl.t =
      Hashtbl.create 8
    in
    List.iter
      (fun e ->
        let pool = Option.value ~default:"?" (field_str "pool" e) in
        let gi n = Option.value ~default:0 (field_int n e) in
        let gf n = Option.value ~default:0.0 (field_float n e) in
        let b, t, f, c, ts, ws =
          Option.value ~default:(0, 0, 0, 0, 0.0, 0.0)
            (Hashtbl.find_opt pools pool)
        in
        Hashtbl.replace pools pool
          ( b + 1, t + gi "tasks", f + gi "failed", c + gi "cancelled",
            ts +. gf "task_seconds", ws +. gf "wall_seconds" ))
      batches;
    Printf.printf "\n%-16s %8s %8s %7s %9s %10s %10s %8s\n" "pool" "batches"
      "tasks" "failed" "cancelled" "task_s" "wall_s" "speedup";
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) pools []
    |> List.sort compare
    |> List.iter (fun (pool, (b, t, f, c, ts, ws)) ->
           Printf.printf "%-16s %8d %8d %7d %9d %10.3f %10.3f %8.2f\n" pool b
             t f c ts ws
             (if ws > 0.0 then ts /. ws else 0.0))
  end;
  let races =
    List.filter (fun e -> e.Obs.name = "portfolio.race.done") events
  in
  if races <> [] then begin
    let outcomes : (string, int) Hashtbl.t = Hashtbl.create 4 in
    let winners : (int, int) Hashtbl.t = Hashtbl.create 8 in
    let bump tbl k =
      Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))
    in
    let cancelled = ref 0 and exported = ref 0 and imported = ref 0 in
    let cubed = ref 0 in
    List.iter
      (fun e ->
        bump outcomes (Option.value ~default:"?" (field_str "outcome" e));
        (match field_int "winner_config" e with
         | Some w when w >= 0 -> bump winners w
         | _ -> ());
        let gi n = Option.value ~default:0 (field_int n e) in
        cancelled := !cancelled + gi "cancelled";
        exported := !exported + gi "shared_exported";
        imported := !imported + gi "shared_imported";
        if gi "cubes" > 0 then incr cubed)
      races;
    let hist tbl pp =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
      |> List.sort compare
      |> List.map (fun (k, v) -> Printf.sprintf "%s:%d" (pp k) v)
      |> String.concat " "
    in
    Printf.printf
      "\nportfolio: %d races (%d cubed), outcomes %s\n\
      \           winner configs %s\n\
      \           %d members cancelled, %d learnts exported, %d imported\n"
      (List.length races) !cubed
      (hist outcomes Fun.id)
      (hist winners string_of_int)
      !cancelled !exported !imported
  end;
  (* Wall breakdown: where the top-level spans spent the trace. *)
  let p = profile_of_events events in
  let roots = Profile.roots p in
  if roots <> [] then begin
    let wall = t1 -. t0 in
    Printf.printf "\n%-32s %8s %12s %7s\n" "top-level span" "calls" "total_s"
      "%wall";
    List.iter
      (fun (r : Profile.tree) ->
        Printf.printf "%-32s %8d %12.3f %6.1f%%\n" r.Profile.tname
          r.Profile.calls r.Profile.total_s
          (if wall > 0.0 then 100.0 *. r.Profile.total_s /. wall else 0.0))
      roots;
    let spanned = List.fold_left (fun a r -> a +. r.Profile.total_s) 0.0 roots in
    Printf.printf "%-32s %8s %12.3f %6.1f%%\n" "(outside any span)" ""
      (Float.max 0.0 (wall -. spanned))
      (if wall > 0.0 then 100.0 *. Float.max 0.0 (wall -. spanned) /. wall
       else 0.0)
  end;
  if Profile.unmatched p > 0 then
    Printf.printf "\n%d unmatched span.end events (truncated trace?)\n"
      (Profile.unmatched p)

(* ------------------------------------------------------------------ *)
(* spans                                                               *)
(* ------------------------------------------------------------------ *)

let spans path =
  let events, _ = load_events path in
  let p = profile_of_events events in
  let roots = Profile.roots p in
  if roots = [] then begin
    Printf.printf "%s: no span events\n" path;
    exit 0
  end;
  Printf.printf "%-48s %8s %12s %12s\n" "span" "calls" "total_s" "self_s";
  let rec pr_tree indent (t : Profile.tree) =
    Printf.printf "%-48s %8d %12.3f %12.3f\n"
      (String.make (2 * indent) ' ' ^ t.Profile.tname)
      t.Profile.calls t.Profile.total_s t.Profile.self_s;
    List.iter (pr_tree (indent + 1)) t.Profile.children
  in
  List.iter (pr_tree 0) roots;
  if Profile.unmatched p > 0 then
    Printf.printf "(%d unmatched span.end events)\n" (Profile.unmatched p)

(* ------------------------------------------------------------------ *)
(* flame                                                               *)
(* ------------------------------------------------------------------ *)

(* flamegraph.pl wants integer sample counts; we emit self time in
   microseconds, so 1 sample = 1µs. *)
let flame path =
  let events, _ = load_events path in
  let p = profile_of_events events in
  List.iter
    (fun (stack, self_s) ->
      let us = int_of_float ((self_s *. 1e6) +. 0.5) in
      if us > 0 then Printf.printf "%s %d\n" stack us)
    (Profile.flame p)

(* ------------------------------------------------------------------ *)
(* attack                                                              *)
(* ------------------------------------------------------------------ *)

(* One table row per attack.iteration / attack.exhausted / attack.timeout
   record.  A trace may hold many attack runs (a bench sweep): a new table
   starts when the (attack, scheme) pair changes or the iteration counter
   stops growing. *)
let attack path =
  let header label scheme =
    Printf.printf "\n== attack %s on %s ==\n" label scheme;
    Printf.printf "%6s %9s %8s %7s %10s %10s %12s %9s %s\n" "iter" "clauses"
      "vars" "ratio" "elapsed_s" "conflicts" "propagations" "decisions" "note"
  in
  let last = ref None in
  let rows = ref 0 in
  let emit_row e note =
    let label = Option.value ~default:"?" (field_str "attack" e) in
    let scheme = Option.value ~default:"?" (field_str "scheme" e) in
    let iter = Option.value ~default:0 (field_int "iter" e) in
    (match !last with
     | Some (l, s, i) when l = label && s = scheme && iter > i -> ()
     | _ -> header label scheme);
    last := Some (label, scheme, iter);
    incr rows;
    let gi name = Option.value ~default:0 (field_int name e) in
    let gf name = Option.value ~default:0.0 (field_float name e) in
    Printf.printf "%6d %9d %8d %7.2f %10.3f %10d %12d %9d %s\n" iter
      (gi "clauses") (gi "vars")
      (gf "clause_var_ratio")
      (gf "elapsed_s") (gi "conflicts") (gi "propagations") (gi "decisions")
      note
  in
  let (), skipped =
    fold_events path
      (fun () e ->
        match e.Obs.name with
        | "attack.iteration" ->
          let screened =
            match field "screened" e with
            | Some (Obs.Bool true) -> "screened"
            | _ -> ""
          in
          emit_row e screened
        | "attack.exhausted" -> emit_row e "exhausted (key extraction next)"
        | "attack.timeout" -> emit_row e "TIMEOUT"
        | _ -> ())
      ()
  in
  if !rows = 0 then
    Printf.printf "%s: no attack.iteration records%s\n" path
      (if skipped > 0 then Printf.sprintf " (%d lines skipped)" skipped else "")

let () =
  match Array.to_list Sys.argv with
  | [ _; "summary"; path ] -> summary path
  | [ _; "spans"; path ] -> spans path
  | [ _; "flame"; path ] -> flame path
  | [ _; "attack"; path ] -> attack path
  | _ -> usage ()
