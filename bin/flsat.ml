(* flsat — standalone DIMACS front end for the CDCL solver.

     flsat problem.cnf [--budget-seconds S] [--dpll] [--inprocess]
       [--stats] [--trace FILE]

   Prints "s SATISFIABLE" with a "v ..." model line, "s UNSATISFIABLE", or
   "s UNKNOWN", following the SAT-competition output conventions.
   --inprocess runs the Fl_sat.Inprocess engine (probing, equivalent-
   literal collapsing, XOR/Gauss, subsumption, elimination; nothing
   frozen) over the input before solving; models are reconstructed to the
   original variables before printing.  --trace appends structured JSONL
   events (cdcl.progress every 1024 conflicts, span.begin/end around the
   solve, the final solve record) to FILE; --stats prints the solver
   one-liner plus the full metric snapshot (counters and the cdcl.*
   histograms) on exit. *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let budget_arg, args = Fl_cli.take_opt "--budget-seconds" args in
  let trace, args = Fl_cli.take_opt "--trace" args in
  let use_dpll, args = Fl_cli.take_flag "--dpll" args in
  let show_stats, args = Fl_cli.take_flag "--stats" args in
  let inp, args = Fl_cli.take_inprocess args in
  let spec, args = Fl_cli.take_solver args in
  let path =
    match args with
    | [ p ] when String.length p > 0 && p.[0] <> '-' -> p
    | _ ->
      prerr_endline
        "usage: flsat problem.cnf [--budget-seconds S] [--dpll] [--inprocess] [--stats] [--trace FILE]\n\
        \       [--portfolio N] [--portfolio-det] [--seed N] [--cube-depth D] [--cdcl-* ...]";
      prerr_endline Fl_cli.solver_usage;
      exit 2
  in
  if use_dpll && spec <> None then begin
    prerr_endline "--dpll and the --portfolio/--cdcl-* group are mutually exclusive";
    exit 2
  end;
  let budget = ref (-1.0) in
  (match budget_arg with
   | None -> ()
   | Some v ->
     (match float_of_string_opt v with
      | Some s -> budget := s
      | None ->
        Printf.eprintf "--budget-seconds needs a number, got %S\n" v;
        exit 2));
  let use_dpll = ref use_dpll and show_stats = ref show_stats in
  (match trace with None -> () | Some file -> Fl_cli.install_trace file);
  (* The histograms need the deep switch, not a sink: a --stats run should
     show the LBD/conflict-level distributions even without --trace. *)
  if !show_stats then Fl_obs.set_deep true;
  let text =
    let ic = open_in path in
    let len = in_channel_length ic in
    let t = really_input_string ic len in
    close_in ic;
    t
  in
  let formula =
    try Fl_cnf.Formula.of_dimacs text
    with Fl_cnf.Formula.Dimacs_error msg ->
      Printf.eprintf "%s: %s\n" path msg;
      exit 2
  in
  (* One-shot inprocessing: nothing frozen, so unit/equivalence/
     elimination reconstruction covers every variable.  An Unsat verdict
     decides the instance outright. *)
  let ip =
    if inp.Fl_cli.enabled = Some true then
      Some (Fl_sat.Inprocess.run ~label:"flsat" ~frozen:[||] formula)
    else None
  in
  (match ip with
   | Some ip ->
     if !show_stats then
       Format.eprintf "c inprocess: %a@." Fl_sat.Inprocess.pp_stats
         (Fl_sat.Inprocess.stats ip);
     if Fl_sat.Inprocess.is_unsat ip then begin
       if !show_stats then Fl_cli.print_stats ();
       print_endline "s UNSATISFIABLE";
       exit 20
     end
   | None -> ());
  let solve_formula =
    match ip with Some ip -> Fl_sat.Inprocess.formula ip | None -> formula
  in
  if !use_dpll then begin
    let outcome, stats = Fl_obs.with_span "flsat.solve" (fun () -> Fl_sat.Dpll.solve solve_formula) in
    if !show_stats then begin
      Format.eprintf "c %a@." Fl_sat.Dpll.pp_stats stats;
      Fl_cli.print_stats ()
    end;
    match outcome with
    | Fl_sat.Dpll.Sat ->
      print_endline "s SATISFIABLE";
      exit 10
    | Fl_sat.Dpll.Unsat ->
      print_endline "s UNSATISFIABLE";
      exit 20
    | Fl_sat.Dpll.Aborted ->
      print_endline "s UNKNOWN";
      exit 0
  end
  else begin
    let budget =
      if !budget > 0.0 then Fl_sat.Cdcl.budget_seconds !budget
      else Fl_sat.Cdcl.no_budget
    in
    (* Backend-generic solve path: plain CDCL by default, a Portfolio
       (racing / cubing / deterministic) when solver flags were given. *)
    let (module B : Fl_sat.Solver_intf.S) =
      match spec with
      | None -> Fl_sat.Solver_intf.cdcl
      | Some spec -> Fl_sat.Portfolio.backend spec
    in
    let s = Fl_sat.Solver_intf.load (module B) solve_formula in
    let stats_fields (d : Fl_sat.Cdcl.stats) =
      [
        "decisions", Fl_obs.Int d.Fl_sat.Cdcl.decisions;
        "propagations", Fl_obs.Int d.Fl_sat.Cdcl.propagations;
        "conflicts", Fl_obs.Int d.Fl_sat.Cdcl.conflicts;
        "restarts", Fl_obs.Int d.Fl_sat.Cdcl.restarts;
        "learned_clauses", Fl_obs.Int d.Fl_sat.Cdcl.learned_clauses;
        "reductions", Fl_obs.Int d.Fl_sat.Cdcl.reductions;
        "max_decision_level", Fl_obs.Int d.Fl_sat.Cdcl.max_decision_level;
      ]
    in
    if Fl_obs.enabled () then
      B.set_progress s ~every:1024 (fun delta ->
          Fl_obs.emit "cdcl.progress" ~fields:(stats_fields delta));
    let t0 = Unix.gettimeofday () in
    let outcome = Fl_obs.with_span "flsat.solve" (fun () -> B.solve ~budget s) in
    let stats = B.stats s in
    if Fl_obs.enabled () then
      Fl_obs.emit "cdcl.solve"
        ~fields:
          (("outcome",
            Fl_obs.String
              (match outcome with
               | Fl_sat.Cdcl.Sat -> "sat"
               | Fl_sat.Cdcl.Unsat -> "unsat"
               | Fl_sat.Cdcl.Unknown -> "unknown"))
           :: ("clauses", Fl_obs.Int (Fl_cnf.Formula.num_clauses solve_formula))
           :: ("vars", Fl_obs.Int (Fl_cnf.Formula.num_vars solve_formula))
           :: ("elapsed_s", Fl_obs.Float (Unix.gettimeofday () -. t0))
           :: stats_fields stats);
    if !show_stats then begin
      Format.eprintf "c %a@." Fl_sat.Cdcl.pp_stats stats;
      Fl_cli.print_stats ()
    end;
    match outcome with
    | Fl_sat.Cdcl.Sat ->
      let m =
        let m = B.model s in
        match ip with
        | Some ip -> Fl_sat.Inprocess.reconstruct ip m
        | None -> m
      in
      print_endline "s SATISFIABLE";
      let buf = Buffer.create 256 in
      Buffer.add_string buf "v";
      for v = 1 to Fl_cnf.Formula.num_vars formula do
        Buffer.add_string buf (Printf.sprintf " %d" (if m.(v) then v else -v))
      done;
      Buffer.add_string buf " 0";
      print_endline (Buffer.contents buf);
      exit 10
    | Fl_sat.Cdcl.Unsat ->
      print_endline "s UNSATISFIABLE";
      exit 20
    | Fl_sat.Cdcl.Unknown ->
      print_endline "s UNKNOWN";
      exit 0
  end
