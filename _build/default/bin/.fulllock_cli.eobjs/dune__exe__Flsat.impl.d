bin/flsat.ml: Array Buffer Fl_cnf Fl_sat Format List Printf String Sys
