bin/fulllock_cli.ml: Arg Array Cmd Cmdliner Filename Fl_attacks Fl_core Fl_locking Fl_netlist Fl_ppa Fl_sat Format List Printf Random String Term
