bin/flsat.mli:
