bin/fulllock_cli.mli:
