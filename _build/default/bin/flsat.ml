(* flsat — standalone DIMACS front end for the CDCL solver.

     flsat problem.cnf [--budget-seconds S] [--dpll] [--stats]

   Prints "s SATISFIABLE" with a "v ..." model line, "s UNSATISFIABLE", or
   "s UNKNOWN", following the SAT-competition output conventions. *)

let () =
  let path = ref None in
  let budget = ref (-1.0) in
  let use_dpll = ref false in
  let show_stats = ref false in
  let rec parse = function
    | [] -> ()
    | "--budget-seconds" :: v :: rest ->
      budget := float_of_string v;
      parse rest
    | "--dpll" :: rest ->
      use_dpll := true;
      parse rest
    | "--stats" :: rest ->
      show_stats := true;
      parse rest
    | arg :: rest when !path = None && String.length arg > 0 && arg.[0] <> '-' ->
      path := Some arg;
      parse rest
    | arg :: _ ->
      Printf.eprintf "unknown argument %S\n" arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let path =
    match !path with
    | Some p -> p
    | None ->
      prerr_endline "usage: flsat problem.cnf [--budget-seconds S] [--dpll] [--stats]";
      exit 2
  in
  let text =
    let ic = open_in path in
    let len = in_channel_length ic in
    let t = really_input_string ic len in
    close_in ic;
    t
  in
  let formula =
    try Fl_cnf.Formula.of_dimacs text
    with Fl_cnf.Formula.Dimacs_error msg ->
      Printf.eprintf "%s: %s\n" path msg;
      exit 2
  in
  if !use_dpll then begin
    let outcome, stats = Fl_sat.Dpll.solve formula in
    if !show_stats then Format.eprintf "c %a@." Fl_sat.Dpll.pp_stats stats;
    match outcome with
    | Fl_sat.Dpll.Sat ->
      print_endline "s SATISFIABLE";
      exit 10
    | Fl_sat.Dpll.Unsat ->
      print_endline "s UNSATISFIABLE";
      exit 20
    | Fl_sat.Dpll.Aborted ->
      print_endline "s UNKNOWN";
      exit 0
  end
  else begin
    let budget =
      if !budget > 0.0 then Fl_sat.Cdcl.budget_seconds !budget
      else Fl_sat.Cdcl.no_budget
    in
    let outcome, model, stats = Fl_sat.Cdcl.solve_formula ~budget formula in
    if !show_stats then Format.eprintf "c %a@." Fl_sat.Cdcl.pp_stats stats;
    match outcome, model with
    | Fl_sat.Cdcl.Sat, Some m ->
      print_endline "s SATISFIABLE";
      let buf = Buffer.create 256 in
      Buffer.add_string buf "v";
      for v = 1 to Fl_cnf.Formula.num_vars formula do
        Buffer.add_string buf (Printf.sprintf " %d" (if m.(v) then v else -v))
      done;
      Buffer.add_string buf " 0";
      print_endline (Buffer.contents buf);
      exit 10
    | Fl_sat.Cdcl.Unsat, _ ->
      print_endline "s UNSATISFIABLE";
      exit 20
    | _, _ ->
      print_endline "s UNKNOWN";
      exit 0
  end
