lib/cnf/formula.mli: Format
