lib/cnf/formula.ml: Array Buffer Format List Printf String
