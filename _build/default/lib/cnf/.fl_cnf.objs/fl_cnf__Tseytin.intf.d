lib/cnf/tseytin.mli: Fl_netlist Formula
