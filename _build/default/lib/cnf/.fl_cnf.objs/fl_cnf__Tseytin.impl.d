lib/cnf/tseytin.ml: Array Fl_netlist Formula List Printf
