lib/cnf/miter.mli: Fl_netlist Formula Tseytin
