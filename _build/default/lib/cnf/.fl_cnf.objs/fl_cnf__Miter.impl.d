lib/cnf/miter.ml: Array Fl_netlist Formula Tseytin
