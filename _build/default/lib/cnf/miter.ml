module Circuit = Fl_netlist.Circuit

type t = {
  formula : Formula.t;
  inputs : int array;
  keys_a : int array;
  keys_b : int array;
  outputs_a : int array;
  outputs_b : int array;
  enc_a : Tseytin.encoding;
  enc_b : Tseytin.encoding;
}

let build c =
  if Circuit.num_keys c = 0 then
    invalid_arg "Miter.build: circuit has no key inputs";
  let f = Formula.create () in
  let enc_a = Tseytin.encode f c in
  let enc_b = Tseytin.encode ~share_inputs:enc_a.Tseytin.input_vars f c in
  let pairs =
    Array.to_list
      (Array.map2 (fun a b -> a, b) enc_a.Tseytin.output_vars
         enc_b.Tseytin.output_vars)
  in
  let _diffs = Tseytin.assert_any_differs f pairs in
  {
    formula = f;
    inputs = enc_a.Tseytin.input_vars;
    keys_a = enc_a.Tseytin.key_vars;
    keys_b = enc_b.Tseytin.key_vars;
    outputs_a = enc_a.Tseytin.output_vars;
    outputs_b = enc_b.Tseytin.output_vars;
    enc_a;
    enc_b;
  }

let add_io_constraint m c ~inputs ~outputs =
  let f = m.formula in
  let pin keys =
    let enc = Tseytin.encode ~share_keys:keys f c in
    Tseytin.assert_vector f enc.Tseytin.input_vars inputs;
    Tseytin.assert_vector f enc.Tseytin.output_vars outputs
  in
  pin m.keys_a;
  pin m.keys_b

let clause_variable_ratio c = Formula.ratio (build c).formula
