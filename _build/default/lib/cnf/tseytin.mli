(** Tseytin transformation of circuits into CNF (Table 1 of the paper).

    Each circuit node gets a CNF variable; each gate contributes the clause
    set of Table 1 (n-ary gates and LUTs use their standard generalisation;
    n-ary XOR/XNOR introduce fresh chain variables). *)

(** Result of encoding one circuit copy. *)
type encoding = {
  node_var : int array;  (** node id -> CNF variable *)
  input_vars : int array;  (** PI order *)
  key_vars : int array;  (** key order *)
  output_vars : int array;  (** output order *)
}

(** [encode_gate f kind ~out ~fanins] appends the clauses forcing variable
    [out] to equal [kind(fanins)].
    @raise Invalid_argument for [Input]/[Key_input] or a fanin-count
    mismatch. *)
val encode_gate : Formula.t -> Fl_netlist.Gate.t -> out:int -> fanins:int array -> unit

(** [encode f c] encodes circuit [c] into [f] with fresh variables.

    [share_inputs]/[share_keys] pre-assign the variables of primary/key
    inputs — this is how the SAT-attack miter instantiates two copies with
    common inputs and distinct keys.
    @raise Invalid_argument on a length mismatch. *)
val encode :
  ?share_inputs:int array -> ?share_keys:int array -> Formula.t -> Fl_netlist.Circuit.t -> encoding

(** [assert_equal f a b] adds [a <-> b]. *)
val assert_equal : Formula.t -> int -> int -> unit

(** [xor_out f a b] allocates and returns [x = a XOR b]. *)
val xor_out : Formula.t -> int -> int -> int

(** [assert_any_differs f pairs] adds clauses forcing at least one pair to
    differ — the miter output constraint.  Returns the fresh difference
    variables (one per pair). *)
val assert_any_differs : Formula.t -> (int * int) list -> int array

(** [assert_lit f lit] adds the unit clause \[lit\]. *)
val assert_lit : Formula.t -> Formula.lit -> unit

(** [assert_vector f vars bits] pins each variable to the corresponding bit. *)
val assert_vector : Formula.t -> int array -> bool array -> unit
