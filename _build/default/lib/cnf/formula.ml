type lit = int

let neg l = -l
let var_of_lit l = abs l
let is_pos l = l > 0

type t = {
  mutable vars : int;
  mutable clause_count : int;
  mutable store : lit array array;
  mutable literal_count : int;
}

let create () = { vars = 0; clause_count = 0; store = Array.make 64 [||]; literal_count = 0 }

let fresh_var f =
  f.vars <- f.vars + 1;
  f.vars

let fresh_vars f n = Array.init n (fun _ -> fresh_var f)

let reserve f n = if n > f.vars then f.vars <- n

let check_lit f l =
  if l = 0 then invalid_arg "Formula.add_clause: zero literal";
  let v = abs l in
  if v > f.vars then
    invalid_arg (Printf.sprintf "Formula.add_clause: variable %d not allocated" v)

let push f clause =
  let cap = Array.length f.store in
  if f.clause_count >= cap then begin
    let store' = Array.make (cap * 2) [||] in
    Array.blit f.store 0 store' 0 cap;
    f.store <- store'
  end;
  f.store.(f.clause_count) <- clause;
  f.clause_count <- f.clause_count + 1;
  f.literal_count <- f.literal_count + Array.length clause

let add_clause_a f clause =
  if Array.length clause = 0 then invalid_arg "Formula.add_clause: empty clause";
  Array.iter (check_lit f) clause;
  push f clause

let add_clause f lits = add_clause_a f (Array.of_list lits)

let num_vars f = f.vars
let num_clauses f = f.clause_count
let num_literals f = f.literal_count

let clauses f = Array.sub f.store 0 f.clause_count

let iter_clauses f k =
  for i = 0 to f.clause_count - 1 do
    k f.store.(i)
  done

let ratio f = if f.vars = 0 then 0.0 else float_of_int f.clause_count /. float_of_int f.vars

let copy f =
  {
    vars = f.vars;
    clause_count = f.clause_count;
    store = Array.map Array.copy (Array.sub f.store 0 f.clause_count);
    literal_count = f.literal_count;
  }

let to_dimacs f =
  let buf = Buffer.create (f.literal_count * 4) in
  Buffer.add_string buf (Printf.sprintf "p cnf %d %d\n" f.vars f.clause_count);
  iter_clauses f (fun clause ->
      Array.iter (fun l -> Buffer.add_string buf (string_of_int l); Buffer.add_char buf ' ') clause;
      Buffer.add_string buf "0\n");
  Buffer.contents buf

let write_dimacs f path =
  let oc = open_out path in
  output_string oc (to_dimacs f);
  close_out oc

exception Dimacs_error of string

let of_dimacs text =
  let f = create () in
  let current = ref [] in
  let handle_token token =
    match int_of_string_opt token with
    | None -> raise (Dimacs_error (Printf.sprintf "bad literal %S" token))
    | Some 0 ->
      (match !current with
       | [] -> raise (Dimacs_error "empty clause in input")
       | lits ->
         List.iter (fun l -> reserve f (abs l)) lits;
         add_clause f (List.rev lits);
         current := [])
    | Some l -> current := l :: !current
  in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = 'c' || line.[0] = 'p' || line.[0] = '%' then ()
         else
           String.split_on_char ' ' line
           |> List.concat_map (String.split_on_char '\t')
           |> List.filter (fun tok -> tok <> "")
           |> List.iter handle_token);
  if !current <> [] then raise (Dimacs_error "trailing clause without terminating 0");
  f

let pp_stats fmt f =
  Format.fprintf fmt "%d vars, %d clauses, %d literals, ratio %.2f" f.vars
    f.clause_count f.literal_count (ratio f)
