(** Miter construction for oracle-guided attacks.

    The miter instantiates two copies of a locked circuit that share the
    primary inputs but carry independent key variables, and asserts that at
    least one output pair differs.  Satisfying assignments yield
    discriminating input patterns (DIPs). *)

type t = {
  formula : Formula.t;
  inputs : int array;  (** shared primary-input variables *)
  keys_a : int array;  (** key variables of copy A *)
  keys_b : int array;  (** key variables of copy B *)
  outputs_a : int array;
  outputs_b : int array;
  enc_a : Tseytin.encoding;  (** full node-variable map of copy A *)
  enc_b : Tseytin.encoding;
}

(** [build c] constructs the miter formula for locked circuit [c].
    @raise Invalid_argument when [c] has no key inputs. *)
val build : Fl_netlist.Circuit.t -> t

(** [add_io_constraint m ~inputs ~outputs] encodes one oracle observation:
    both key copies must reproduce output [outputs] on input [inputs].  Fresh
    circuit copies are instantiated inside [m.formula] with the pinned
    input values. *)
val add_io_constraint :
  t -> Fl_netlist.Circuit.t -> inputs:bool array -> outputs:bool array -> unit

(** [clause_variable_ratio c] is the clauses-to-variables ratio of the
    initial attack formula on [c] — the metric of Fig. 7. *)
val clause_variable_ratio : Fl_netlist.Circuit.t -> float
