(** CNF formulas in DIMACS literal convention.

    A literal is a non-zero integer: variable [v >= 1] appears positively as
    [v] and negatively as [-v].  The formula tracks the variable count and
    accumulates clauses; it is the exchange format between the Tseytin
    encoder, the SAT solvers and the attack framework. *)

type lit = int

val neg : lit -> lit
val var_of_lit : lit -> int
val is_pos : lit -> bool

type t

val create : unit -> t

(** [fresh_var f] allocates a new variable (numbered from 1). *)
val fresh_var : t -> int

(** [fresh_vars f n] allocates [n] consecutive variables. *)
val fresh_vars : t -> int -> int array

(** [reserve f n] ensures variables [1..n] are allocated. *)
val reserve : t -> int -> unit

(** [add_clause f lits] appends a clause.
    @raise Invalid_argument on an empty clause, a zero literal, or a literal
    whose variable was never allocated. *)
val add_clause : t -> lit list -> unit

val add_clause_a : t -> lit array -> unit

val num_vars : t -> int
val num_clauses : t -> int

(** Total number of literal occurrences. *)
val num_literals : t -> int

(** Clauses in insertion order.  The returned arrays are owned by the
    formula; callers must not mutate them. *)
val clauses : t -> lit array array

val iter_clauses : t -> (lit array -> unit) -> unit

(** Clauses-to-variables ratio — the paper's SAT-hardness metric (§3). *)
val ratio : t -> float

val copy : t -> t

(** {1 DIMACS} *)

val to_dimacs : t -> string
val write_dimacs : t -> string -> unit

exception Dimacs_error of string

(** Parses a DIMACS [cnf] problem; tolerates missing/incorrect header
    counts. *)
val of_dimacs : string -> t

val pp_stats : Format.formatter -> t -> unit
