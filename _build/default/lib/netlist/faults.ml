type fault = { node : int; stuck_at : bool }

let enumerate c =
  let result = ref [] in
  for id = Circuit.num_nodes c - 1 downto 0 do
    match (Circuit.node c id).Circuit.kind with
    | Gate.Key_input | Gate.Const _ -> ()
    | Gate.Input | Gate.Buf | Gate.Not | Gate.And | Gate.Nand | Gate.Or
    | Gate.Nor | Gate.Xor | Gate.Xnor | Gate.Mux | Gate.Lut _ ->
      result := { node = id; stuck_at = false } :: { node = id; stuck_at = true } :: !result
  done;
  !result

let fault_override fault id =
  if id = fault.node then
    Some
      { Sim_word.defined = -1; value = (if fault.stuck_at then -1 else 0) }
  else None

let detects c ~keys ~inputs fault =
  let good = Sim_word.eval_tristate c ~inputs ~keys in
  let faulty = Sim_word.eval_tristate ~override:(fault_override fault) c ~inputs ~keys in
  let hit = ref false in
  Array.iteri
    (fun i g ->
      let f = faulty.(i) in
      (* Detected where the good machine settles and the faulty machine
         either settles to a different value or fails to settle. *)
      let diff =
        g.Sim_word.defined
        land ((f.Sim_word.defined land (g.Sim_word.value lxor f.Sim_word.value))
              lor lnot f.Sim_word.defined)
      in
      if diff <> 0 then hit := true)
    good;
  !hit

type coverage = { total : int; detected : int; undetected : fault list }

let coverage c ~keys ~vectors =
  let packed_keys = Array.map (fun b -> if b then -1 else 0) keys in
  (* Pack the test set into batches of [lanes] vectors. *)
  let rec batches acc current count = function
    | [] -> if current = [] then List.rev acc else List.rev (List.rev current :: acc)
    | v :: rest ->
      if count = Sim_word.lanes then batches (List.rev current :: acc) [ v ] 1 rest
      else batches acc (v :: current) (count + 1) rest
  in
  let packed_batches =
    List.map Sim_word.pack (batches [] [] 0 vectors)
  in
  let faults = enumerate c in
  let undetected =
    List.filter
      (fun fault ->
        not
          (List.exists
             (fun inputs -> detects c ~keys:packed_keys ~inputs fault)
             packed_batches))
      faults
  in
  {
    total = List.length faults;
    detected = List.length faults - List.length undetected;
    undetected;
  }

let random_coverage c ~keys ~count ~seed =
  let rng = Random.State.make [| seed |] in
  let width = Circuit.num_inputs c in
  let vectors =
    List.init count (fun _ -> Array.init width (fun _ -> Random.State.bool rng))
  in
  coverage c ~keys ~vectors

let coverage_fraction cov =
  if cov.total = 0 then 1.0 else float_of_int cov.detected /. float_of_int cov.total

let pp_coverage fmt cov =
  Format.fprintf fmt "%d/%d stuck-at faults detected (%.1f%%)" cov.detected
    cov.total
    (100.0 *. coverage_fraction cov)
