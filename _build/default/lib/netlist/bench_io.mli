(** ISCAS-85 [.bench] format reader and writer.

    The dialect accepted matches the classic benchmark distribution plus the
    extensions used by logic-locking tools:

    {v
    # comment
    INPUT(a)
    KEYINPUT(k0)          # extension: key input (also accepted: INPUT(keyinput0))
    OUTPUT(y)
    w1 = NAND(a, b)
    w2 = MUX(s, a, b)
    w3 = LUT 0x8 (a, b)   # extension: constant LUT, hex table LSB-first
    v}

    Input names starting with [keyinput] are treated as key inputs, matching
    the convention of published locked benchmarks. *)

exception Parse_error of int * string
(** [(line, message)] *)

val parse_string : ?name:string -> string -> Circuit.t
val parse_file : string -> Circuit.t

val to_string : Circuit.t -> string
val write_file : Circuit.t -> string -> unit
