(** Stuck-at fault simulation.

    The classic manufacturing-test model: a fault fixes one gate output (or
    primary input) at 0 or 1; a test vector {e detects} it when some primary
    output differs from the fault-free response.  Fault simulation is
    word-parallel (63 vectors per pass, via {!Sim_word}), serial in faults.

    Logic locking interacts with testability in both directions: an
    unactivated (wrongly keyed) circuit cannot be meaningfully tested, and
    the lock's own gates must be covered by production tests — this module
    quantifies both (see the [testability] example and the locking tests). *)

type fault = {
  node : int;  (** faulty node id (gate output or primary input wire) *)
  stuck_at : bool;
}

(** All collapsed single stuck-at faults: two per primary input and per gate
    output (constants and key inputs excluded — key inputs are pinned by
    activation, not testable logic). *)
val enumerate : Circuit.t -> fault list

(** [detects c ~keys ~inputs fault] — whether any of the packed test vectors
    detects [fault] (the key word vector is applied to both good and faulty
    machine).  Cyclic circuits use fixpoint evaluation; lanes that settle
    differently (or only one machine settles) count as detections. *)
val detects : Circuit.t -> keys:int array -> inputs:int array -> fault -> bool

type coverage = {
  total : int;
  detected : int;
  undetected : fault list;
}

(** [coverage c ~keys ~vectors] — fault coverage of a test set (scalar
    vectors, internally packed).  [keys] are scalar key values applied
    throughout (use the correct key for an activated part). *)
val coverage : Circuit.t -> keys:bool array -> vectors:bool array list -> coverage

(** [random_coverage c ~keys ~count ~seed] — coverage of [count] random
    vectors. *)
val random_coverage :
  Circuit.t -> keys:bool array -> count:int -> seed:int -> coverage

val coverage_fraction : coverage -> float
val pp_coverage : Format.formatter -> coverage -> unit
