(** Netlist clean-up transformations.

    A small optimizer in the style of a synthesis "sweep" pass: constant
    propagation, operand-level simplification (annihilators, identities,
    duplicate fanins), buffer chasing, and dead-node elimination.  Locking
    passes leave BUFs and redundant structure behind; [run] also powers
    {!hardwire_keys}, which bakes a key into a locked netlist — composing it
    with [run] recovers an activated, key-free design. *)

type stats = {
  constants_folded : int;
  buffers_collapsed : int;
  gates_simplified : int;
  dead_nodes_removed : int;
}

(** [run c] returns a functionally equivalent circuit (same inputs, keys and
    output ports) with simplifications applied to fixpoint, plus statistics.
    Nodes on combinational cycles are kept untouched (their value may depend
    on stabilisation order). *)
val run : Circuit.t -> Circuit.t * stats

(** [hardwire_keys c key] replaces every key input with the corresponding
    constant; the result has no key inputs.  Combine with {!run} to fold
    the lock away:

    {[ let activated, _ = Opt.run (Opt.hardwire_keys locked key) ]}
    @raise Invalid_argument on key-length mismatch. *)
val hardwire_keys : Circuit.t -> bool array -> Circuit.t

val pp_stats : Format.formatter -> stats -> unit
