type profile = {
  num_inputs : int;
  num_outputs : int;
  num_gates : int;
  max_fanin : int;
  and_bias : float;
}

let default_profile =
  { num_inputs = 8; num_outputs = 4; num_gates = 60; max_fanin = 4; and_bias = 0.8 }

let pick_kind rng bias =
  let roll = Random.State.float rng 1.0 in
  if roll < bias then
    match Random.State.int rng 4 with
    | 0 -> Gate.And
    | 1 -> Gate.Nand
    | 2 -> Gate.Or
    | _ -> Gate.Nor
  else
    match Random.State.int rng 3 with
    | 0 -> Gate.Xor
    | 1 -> Gate.Xnor
    | _ -> Gate.Not

(* The generator grows the circuit gate by gate, always drawing fanins from
   already-created nodes (guaranteeing acyclicity), with a locality bias so
   depth grows like a real netlist rather than collapsing into two levels.
   A final sweep retargets unread nodes into extra output cones so nothing
   dangles. *)
let random ~seed ~name profile =
  if profile.num_inputs < 2 then invalid_arg "Generator.random: need >= 2 inputs";
  if profile.num_outputs < 1 then invalid_arg "Generator.random: need >= 1 output";
  if profile.num_gates < profile.num_outputs then
    invalid_arg "Generator.random: need at least as many gates as outputs";
  let max_fanin = max 2 (min 5 profile.max_fanin) in
  let rng = Random.State.make [| seed; 0x9e3779b9 |] in
  let b = Circuit.Builder.create ~name () in
  let inputs =
    Array.init profile.num_inputs (fun i ->
        Circuit.Builder.input ~name:(Printf.sprintf "i%d" i) b)
  in
  let gates = Array.make profile.num_gates 0 in
  let pick_source upto =
    (* Prefer recent nodes: deepens the circuit. *)
    let pool = profile.num_inputs + upto in
    if upto > 0 && Random.State.float rng 1.0 < 0.7 then begin
      let window = max 1 (upto / 3) in
      let offset = Random.State.int rng window in
      gates.(upto - 1 - offset)
    end
    else begin
      let idx = Random.State.int rng pool in
      if idx < profile.num_inputs then inputs.(idx)
      else gates.(idx - profile.num_inputs)
    end
  in
  for g = 0 to profile.num_gates - 1 do
    let kind = pick_kind rng profile.and_bias in
    let fanin_count =
      match Gate.arity kind with
      | Some k -> k
      | None -> 2 + Random.State.int rng (max_fanin - 1)
    in
    let fanins = Array.make fanin_count 0 in
    let rec fill i attempts =
      if i < fanin_count then begin
        let src = pick_source g in
        (* Avoid duplicate fanins when the pool allows it. *)
        let dup = Array.exists (fun f -> f = src) (Array.sub fanins 0 i) in
        if dup && attempts < 8 then fill i (attempts + 1)
        else begin
          fanins.(i) <- src;
          fill (i + 1) 0
        end
      end
    in
    fill 0 0;
    gates.(g) <- Circuit.Builder.add ~name:(Printf.sprintf "g%d" g) b kind fanins
  done;
  (* Mark consumed nodes, then fold every unread gate and input into the
     output cones so that the circuit has no dead logic. *)
  let read = Hashtbl.create (profile.num_gates * 2) in
  Array.iter (fun g -> Array.iter (fun f -> Hashtbl.replace read f ()) (Circuit.Builder.fanins_of b g)) gates;
  let unread =
    let from_inputs =
      Array.to_list inputs |> List.filter (fun id -> not (Hashtbl.mem read id))
    in
    let from_gates =
      Array.to_list gates |> List.filter (fun id -> not (Hashtbl.mem read id))
    in
    from_inputs @ from_gates
  in
  (* Choose output drivers: the last gates, with unread nodes XOR-folded in. *)
  let rec chunks k xs =
    if k <= 1 then [ xs ]
    else begin
      let len = List.length xs in
      let take = (len + k - 1) / k in
      let rec split i acc rest =
        if i = 0 then List.rev acc, rest
        else
          match rest with
          | [] -> List.rev acc, []
          | x :: tl -> split (i - 1) (x :: acc) tl
      in
      let first, rest = split take [] xs in
      first :: chunks (k - 1) rest
    end
  in
  let base_drivers =
    List.init profile.num_outputs (fun i ->
        gates.(profile.num_gates - 1 - (i mod profile.num_gates)))
  in
  let groups = chunks profile.num_outputs unread in
  List.iteri
    (fun i driver ->
      let extra = try List.nth groups i with Failure _ -> [] in
      let all = driver :: List.filter (fun x -> x <> driver) extra in
      let out_id =
        match all with
        | [ single ] -> single
        | several ->
          Circuit.Builder.add ~name:(Printf.sprintf "fold%d" i) b Gate.Xor
            (Array.of_list several)
      in
      Circuit.Builder.output b (Printf.sprintf "o%d" i) out_id)
    base_drivers;
  let c = Circuit.of_builder b in
  Circuit.validate c;
  c
