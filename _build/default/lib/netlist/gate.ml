type t =
  | Input
  | Key_input
  | Const of bool
  | Buf
  | Not
  | And
  | Nand
  | Or
  | Nor
  | Xor
  | Xnor
  | Mux
  | Lut of bool array

let equal a b =
  match a, b with
  | Lut ta, Lut tb -> ta = tb
  | Const x, Const y -> x = y
  | Input, Input
  | Key_input, Key_input
  | Buf, Buf
  | Not, Not
  | And, And
  | Nand, Nand
  | Or, Or
  | Nor, Nor
  | Xor, Xor
  | Xnor, Xnor
  | Mux, Mux ->
    true
  | ( ( Input | Key_input | Const _ | Buf | Not | And | Nand | Or | Nor | Xor
      | Xnor | Mux | Lut _ ),
      _ ) ->
    false

(* [log2_exact n] is [Some k] when [n = 2^k]. *)
let log2_exact n =
  let rec go k m = if m = n then Some k else if m > n then None else go (k + 1) (m * 2) in
  if n <= 0 then None else go 0 1

let arity = function
  | Input | Key_input | Const _ -> Some 0
  | Buf | Not -> Some 1
  | Mux -> Some 3
  | Lut tt ->
    (match log2_exact (Array.length tt) with
     | Some k -> Some k
     | None -> invalid_arg "Gate.arity: LUT table length is not a power of 2")
  | And | Nand | Or | Nor | Xor | Xnor -> None

let valid_fanin_count kind n =
  match arity kind with
  | Some k -> n = k
  | None -> n >= 2

let eval kind inputs =
  let n = Array.length inputs in
  if not (valid_fanin_count kind n) then
    invalid_arg
      (Printf.sprintf "Gate.eval: %d fanins invalid for this gate kind" n);
  let all_true () = Array.for_all (fun b -> b) inputs in
  let any_true () = Array.exists (fun b -> b) inputs in
  let parity () = Array.fold_left (fun acc b -> if b then not acc else acc) false inputs in
  match kind with
  | Input | Key_input ->
    invalid_arg "Gate.eval: inputs carry external values, they are not evaluated"
  | Const b -> b
  | Buf -> inputs.(0)
  | Not -> not inputs.(0)
  | And -> all_true ()
  | Nand -> not (all_true ())
  | Or -> any_true ()
  | Nor -> not (any_true ())
  | Xor -> parity ()
  | Xnor -> not (parity ())
  | Mux -> if inputs.(0) then inputs.(2) else inputs.(1)
  | Lut tt ->
    let idx = ref 0 in
    for i = n - 1 downto 0 do
      idx := (!idx lsl 1) lor (if inputs.(i) then 1 else 0)
    done;
    tt.(!idx)

let negate = function
  | Buf -> Not
  | Not -> Buf
  | And -> Nand
  | Nand -> And
  | Or -> Nor
  | Nor -> Or
  | Xor -> Xnor
  | Xnor -> Xor
  | Const b -> Const (not b)
  | Lut tt -> Lut (Array.map not tt)
  | Input | Key_input | Mux ->
    invalid_arg "Gate.negate: no complemented cell for this kind"

let is_negatable = function
  | Buf | Not | And | Nand | Or | Nor | Xor | Xnor | Const _ | Lut _ -> true
  | Input | Key_input | Mux -> false

let truth_table kind ~arity:k =
  if not (valid_fanin_count kind k) then
    invalid_arg "Gate.truth_table: arity invalid for this gate kind";
  let size = 1 lsl k in
  let inputs_of i = Array.init k (fun j -> i land (1 lsl j) <> 0) in
  match kind with
  | Input | Key_input ->
    invalid_arg "Gate.truth_table: inputs have no truth table"
  | Lut tt -> Array.copy tt
  | Const _ | Buf | Not | And | Nand | Or | Nor | Xor | Xnor | Mux ->
    Array.init size (fun i -> eval kind (inputs_of i))

let to_string = function
  | Input -> "input"
  | Key_input -> "keyinput"
  | Const false -> "const0"
  | Const true -> "const1"
  | Buf -> "buf"
  | Not -> "not"
  | And -> "and"
  | Nand -> "nand"
  | Or -> "or"
  | Nor -> "nor"
  | Xor -> "xor"
  | Xnor -> "xnor"
  | Mux -> "mux"
  | Lut tt ->
    (match log2_exact (Array.length tt) with
     | Some k -> Printf.sprintf "lut%d" k
     | None -> "lut?")

let of_string s =
  match String.lowercase_ascii s with
  | "input" -> Some Input
  | "keyinput" -> Some Key_input
  | "const0" -> Some (Const false)
  | "const1" -> Some (Const true)
  | "buf" | "buff" -> Some Buf
  | "not" | "inv" -> Some Not
  | "and" -> Some And
  | "nand" -> Some Nand
  | "or" -> Some Or
  | "nor" -> Some Nor
  | "xor" -> Some Xor
  | "xnor" -> Some Xnor
  | "mux" -> Some Mux
  | _ -> None

let pp fmt kind = Format.pp_print_string fmt (to_string kind)
