(** Gate kinds of the gate-level netlist IR.

    The IR supports the primitive cells of Table 1 of the Full-Lock paper
    (AND/NAND/OR/NOR/BUF/NOT/XOR/XNOR/MUX) plus constant-table LUTs, constants
    and the two kinds of circuit inputs (primary inputs and key inputs). *)

type t =
  | Input  (** primary input; no fanins *)
  | Key_input  (** key input driven by tamper-proof memory; no fanins *)
  | Const of bool  (** constant 0 / 1; no fanins *)
  | Buf  (** identity; 1 fanin *)
  | Not  (** negation; 1 fanin *)
  | And  (** n-ary conjunction; >= 2 fanins *)
  | Nand
  | Or
  | Nor
  | Xor  (** n-ary parity *)
  | Xnor  (** complemented parity *)
  | Mux  (** fanins [s; a; b]: selects [a] when [s] is false, [b] otherwise *)
  | Lut of bool array
      (** constant truth table over k fanins; entry [i] is the output for the
          input valuation whose bit [j] (LSB = fanin 0) encodes fanin [j].
          The array length must be [2^k]. *)

val equal : t -> t -> bool

(** [arity kind] is [Some n] when the kind requires exactly [n] fanins,
    [None] for the n-ary kinds (And/Nand/Or/Nor/Xor/Xnor accept any n >= 2). *)
val arity : t -> int option

(** [valid_fanin_count kind n] checks that a node of kind [kind] may have
    [n] fanins. *)
val valid_fanin_count : t -> int -> bool

(** [eval kind inputs] evaluates the gate on concrete fanin values.
    @raise Invalid_argument on a fanin-count mismatch. *)
val eval : t -> bool array -> bool

(** [negate kind] is the complemented cell of [kind] (e.g. And -> Nand,
    Xor -> Xnor, Buf -> Not, Lut tt -> Lut (map not tt)).
    @raise Invalid_argument for Input/Key_input/Mux, which have no
    complemented cell in the library. *)
val negate : t -> t

(** [is_negatable kind] is whether {!negate} succeeds on [kind]. *)
val is_negatable : t -> bool

(** [truth_table kind ~arity] is the LUT contents realising [kind] over
    [arity] inputs (LSB = fanin 0), suitable for [Lut].
    @raise Invalid_argument when [kind] cannot drive a logic value or the
    arity is invalid for [kind]. *)
val truth_table : t -> arity:int -> bool array

(** Canonical lower-case name, e.g. ["nand"], ["lut4"]. *)
val to_string : t -> string

(** Inverse of {!to_string} for the fixed-name kinds (not [Lut]/[Const]). *)
val of_string : string -> t option

val pp : Format.formatter -> t -> unit
