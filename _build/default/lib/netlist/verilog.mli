(** Structural Verilog export and import (gate-level subset).

    The writer emits one module built from Verilog gate primitives
    ([and], [nand], [or], [nor], [xor], [xnor], [buf], [not]) plus
    [assign] statements for MUXes (ternary), LUTs (sum of products) and
    constants — synthesizable by any tool.  The reader accepts the same
    subset: one module, scalar ports, primitive instantiations and
    [assign]s with [~ & | ^ ?:] expressions.  Ports whose name starts with
    [keyinput] are treated as key inputs, matching the [.bench]
    convention. *)

exception Parse_error of int * string
(** [(line, message)] *)

(** [to_string ?module_name c] renders the circuit. *)
val to_string : ?module_name:string -> Circuit.t -> string

val write_file : ?module_name:string -> Circuit.t -> string -> unit

(** [parse_string text] parses a single module.  [assign] expressions are
    decomposed into gate nodes.
    @raise Parse_error on anything outside the subset. *)
val parse_string : ?name:string -> string -> Circuit.t

val parse_file : string -> Circuit.t
