(** The benchmark suite used by the paper's evaluation (Tables 4 and 5).

    The ISCAS-85 and MCNC netlists themselves are not redistributable, so each
    entry (except the public [c17], which is embedded verbatim) is a seeded
    synthetic circuit with exactly the gate and I/O counts the paper reports.
    The substitution is documented in DESIGN.md. *)

type entry = {
  circuit_name : string;
  gates : int;
  inputs : int;
  outputs : int;
  family : [ `Iscas85 | `Mcnc ];
}

(** The thirteen circuits of Table 5, in paper order. *)
val entries : entry list

val find : string -> entry option

(** [load name] builds the suite circuit (deterministic across runs).
    @raise Not_found for an unknown name. *)
val load : string -> Circuit.t

(** [load_scaled name ~scale] shrinks the gate/IO counts by [scale] (>= 1)
    for fast test and bench runs while keeping the circuit's shape; scale 1 is
    {!load}. *)
val load_scaled : string -> scale:int -> Circuit.t

(** The real ISCAS-85 [c17] netlist (public domain, 6 NAND gates). *)
val c17 : unit -> Circuit.t

val names : string list
