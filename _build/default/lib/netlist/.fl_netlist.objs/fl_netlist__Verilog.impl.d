lib/netlist/verilog.ml: Array Buffer Circuit Filename Gate Hashtbl List Option Printf String
