lib/netlist/faults.mli: Circuit Format
