lib/netlist/sim_word.ml: Array Circuit Gate List Random Sim Sys
