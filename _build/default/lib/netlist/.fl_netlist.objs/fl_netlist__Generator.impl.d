lib/netlist/generator.ml: Array Circuit Gate Hashtbl List Printf Random
