lib/netlist/bench_suite.mli: Circuit
