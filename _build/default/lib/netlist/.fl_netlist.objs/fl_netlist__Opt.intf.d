lib/netlist/opt.mli: Circuit Format
