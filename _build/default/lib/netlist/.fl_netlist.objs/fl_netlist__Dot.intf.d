lib/netlist/dot.mli: Circuit
