lib/netlist/gate.ml: Array Format Printf String
