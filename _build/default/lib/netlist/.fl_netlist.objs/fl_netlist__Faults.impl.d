lib/netlist/faults.ml: Array Circuit Format Gate List Random Sim_word
