lib/netlist/dot.ml: Array Buffer Circuit Gate Printf String
