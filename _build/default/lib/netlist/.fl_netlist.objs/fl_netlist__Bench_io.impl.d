lib/netlist/bench_io.ml: Array Buffer Circuit Filename Gate Hashtbl List Printf String
