lib/netlist/bench_suite.ml: Bench_io Char Generator List String
