lib/netlist/sim_word.mli: Circuit Random
