lib/netlist/sim.ml: Array Circuit Gate List Printf Random
