lib/netlist/opt.ml: Array Circuit Format Gate Hashtbl List Option String
