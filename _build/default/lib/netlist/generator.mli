(** Seeded random combinational-circuit generation.

    Generated circuits are valid DAGs where every gate lies on a path to some
    output; they stand in for benchmark suites that cannot be redistributed. *)

type profile = {
  num_inputs : int;
  num_outputs : int;
  num_gates : int;
  max_fanin : int;  (** clipped to \[2, 5\]; matches the ISCAS fan-in range *)
  and_bias : float;
      (** 0..1: fraction of AND/NAND/OR/NOR vs XOR/XNOR/NOT — ISCAS circuits
          are NAND-heavy, so the suite uses a high bias *)
}

val default_profile : profile

(** [random ~seed ~name profile] draws a circuit matching [profile].  The
    construction guarantees: acyclic, every input is read, every gate
    transitively feeds an output, gate count is exactly [profile.num_gates].
    @raise Invalid_argument on a degenerate profile. *)
val random : seed:int -> name:string -> profile -> Circuit.t
