(** Graphviz DOT export for visual inspection of (locked) netlists. *)

(** [to_string c] renders the circuit; inputs are boxes, key inputs are
    red boxes, outputs are double circles. *)
val to_string : Circuit.t -> string

val write_file : Circuit.t -> string -> unit
