type entry = {
  circuit_name : string;
  gates : int;
  inputs : int;
  outputs : int;
  family : [ `Iscas85 | `Mcnc ];
}

(* Gate and I/O counts exactly as reported in Table 5 of the paper. *)
let entries =
  [
    { circuit_name = "c432"; gates = 160; inputs = 36; outputs = 7; family = `Iscas85 };
    { circuit_name = "c499"; gates = 202; inputs = 41; outputs = 32; family = `Iscas85 };
    { circuit_name = "c880"; gates = 386; inputs = 60; outputs = 26; family = `Iscas85 };
    { circuit_name = "c1355"; gates = 546; inputs = 41; outputs = 32; family = `Iscas85 };
    { circuit_name = "c1908"; gates = 880; inputs = 33; outputs = 25; family = `Iscas85 };
    { circuit_name = "c2670"; gates = 1193; inputs = 157; outputs = 64; family = `Iscas85 };
    { circuit_name = "c3540"; gates = 1669; inputs = 50; outputs = 22; family = `Iscas85 };
    { circuit_name = "c5315"; gates = 2307; inputs = 178; outputs = 123; family = `Iscas85 };
    { circuit_name = "c7552"; gates = 3512; inputs = 206; outputs = 107; family = `Iscas85 };
    { circuit_name = "apex2"; gates = 610; inputs = 39; outputs = 3; family = `Mcnc };
    { circuit_name = "apex4"; gates = 5360; inputs = 10; outputs = 19; family = `Mcnc };
    { circuit_name = "i4"; gates = 338; inputs = 192; outputs = 6; family = `Mcnc };
    { circuit_name = "i7"; gates = 1315; inputs = 199; outputs = 67; family = `Mcnc };
  ]

let names = List.map (fun e -> e.circuit_name) entries

let find name =
  List.find_opt (fun e -> String.equal e.circuit_name name) entries

(* Stable per-circuit seed so the suite is reproducible across runs. *)
let seed_of_name name =
  String.fold_left (fun acc c -> (acc * 131) + Char.code c) 7 name land 0x3fffffff

let load_scaled name ~scale =
  if scale < 1 then invalid_arg "Bench_suite.load_scaled: scale must be >= 1";
  match find name with
  | None -> raise Not_found
  | Some e ->
    let shrink v floor = max floor (v / scale) in
    let profile =
      {
        Generator.num_inputs = shrink e.inputs 4;
        num_outputs = shrink e.outputs 1;
        num_gates = shrink e.gates 8;
        max_fanin = 4;
        and_bias = (match e.family with `Iscas85 -> 0.85 | `Mcnc -> 0.7);
      }
    in
    Generator.random ~seed:(seed_of_name name) ~name profile

let load name = load_scaled name ~scale:1

let c17_text =
  "# c17 (ISCAS-85, public)\n\
   INPUT(G1)\n\
   INPUT(G2)\n\
   INPUT(G3)\n\
   INPUT(G6)\n\
   INPUT(G7)\n\
   OUTPUT(G22)\n\
   OUTPUT(G23)\n\
   G10 = NAND(G1, G3)\n\
   G11 = NAND(G3, G6)\n\
   G16 = NAND(G2, G11)\n\
   G19 = NAND(G11, G7)\n\
   G22 = NAND(G10, G16)\n\
   G23 = NAND(G16, G19)\n"

let c17 () = Bench_io.parse_string ~name:"c17" c17_text
