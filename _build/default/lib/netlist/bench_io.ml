exception Parse_error of int * string

let fail line fmt = Printf.ksprintf (fun s -> raise (Parse_error (line, s))) fmt

type line_decl =
  | L_input of string
  | L_key_input of string
  | L_output of string
  | L_gate of string * Gate.t * string list

let is_key_name name =
  let prefix = "keyinput" in
  String.length name >= String.length prefix
  && String.lowercase_ascii (String.sub name 0 (String.length prefix)) = prefix

let strip_comment s =
  match String.index_opt s '#' with
  | Some i -> String.sub s 0 i
  | None -> s

let parse_call lineno s =
  (* "GATE(a, b, c)" or "LUT 0x8 (a, b)" -> kind, operand names *)
  match String.index_opt s '(' with
  | None -> fail lineno "expected '(' in gate application %S" s
  | Some lp ->
    if s.[String.length s - 1] <> ')' then fail lineno "missing ')' in %S" s;
    let head = String.trim (String.sub s 0 lp) in
    let args_str = String.sub s (lp + 1) (String.length s - lp - 2) in
    let args =
      String.split_on_char ',' args_str
      |> List.map String.trim
      |> List.filter (fun a -> a <> "")
    in
    let kind =
      match String.split_on_char ' ' head |> List.filter (fun w -> w <> "") with
      | [ word ] ->
        (match Gate.of_string word with
         | Some k -> k
         | None -> fail lineno "unknown gate kind %S" word)
      | [ lut; hex ] when String.lowercase_ascii lut = "lut" ->
        let table_bits =
          match int_of_string_opt hex with
          | Some v -> v
          | None -> fail lineno "bad LUT table constant %S" hex
        in
        let arity = List.length args in
        if arity < 1 || arity > 16 then fail lineno "LUT arity %d unsupported" arity;
        let tt = Array.init (1 lsl arity) (fun i -> table_bits land (1 lsl i) <> 0) in
        Gate.Lut tt
      | _ -> fail lineno "cannot parse gate head %S" head
    in
    kind, args

let parse_line lineno raw =
  let s = String.trim (strip_comment raw) in
  if s = "" then None
  else
    let upper_prefix prefix =
      String.length s > String.length prefix
      && String.uppercase_ascii (String.sub s 0 (String.length prefix)) = prefix
    in
    let inside () =
      match String.index_opt s '(' with
      | Some lp when s.[String.length s - 1] = ')' ->
        String.trim (String.sub s (lp + 1) (String.length s - lp - 2))
      | Some _ | None -> fail lineno "malformed declaration %S" s
    in
    if upper_prefix "INPUT" then begin
      let name = inside () in
      if is_key_name name then Some (L_key_input name) else Some (L_input name)
    end
    else if upper_prefix "KEYINPUT" then Some (L_key_input (inside ()))
    else if upper_prefix "OUTPUT" then Some (L_output (inside ()))
    else
      match String.index_opt s '=' with
      | None -> fail lineno "cannot parse line %S" s
      | Some eq ->
        let lhs = String.trim (String.sub s 0 eq) in
        let rhs = String.trim (String.sub s (eq + 1) (String.length s - eq - 1)) in
        if lhs = "" then fail lineno "empty target name";
        let kind, args = parse_call lineno rhs in
        Some (L_gate (lhs, kind, args))

let parse_string ?(name = "bench") text =
  let decls =
    String.split_on_char '\n' text
    |> List.mapi (fun i raw -> i + 1, raw)
    |> List.filter_map (fun (i, raw) -> parse_line i raw)
  in
  let b = Circuit.Builder.create ~name () in
  let ids = Hashtbl.create 64 in
  (* Pass 1: declare every named node so forward references and cycles
     resolve. *)
  let declare wire kind =
    if Hashtbl.mem ids wire then
      fail 0 "wire %S defined more than once" wire
    else Hashtbl.add ids wire (Circuit.Builder.declare ~name:wire b kind)
  in
  List.iter
    (fun decl ->
      match decl with
      | L_input wire -> declare wire Gate.Input
      | L_key_input wire -> declare wire Gate.Key_input
      | L_output _ -> ()
      | L_gate (wire, kind, _) -> declare wire kind)
    decls;
  let lookup wire =
    match Hashtbl.find_opt ids wire with
    | Some id -> id
    | None -> fail 0 "wire %S is used but never defined" wire
  in
  (* Pass 2: wire fanins and outputs in file order. *)
  List.iter
    (fun decl ->
      match decl with
      | L_input _ | L_key_input _ -> ()
      | L_output wire -> Circuit.Builder.output b wire (lookup wire)
      | L_gate (wire, _, args) ->
        Circuit.Builder.set_fanins b (lookup wire)
          (Array.of_list (List.map lookup args)))
    decls;
  Circuit.of_builder b

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse_string ~name:(Filename.remove_extension (Filename.basename path)) text

let gate_call node =
  let buf = Buffer.create 32 in
  (match node.Circuit.kind with
   | Gate.Lut tt ->
     let v = ref 0 in
     for i = Array.length tt - 1 downto 0 do
       v := (!v lsl 1) lor (if tt.(i) then 1 else 0)
     done;
     Buffer.add_string buf (Printf.sprintf "LUT 0x%x " !v)
   | Gate.Const b ->
     (* Constants are printed as 0-ary gate calls CONST0()/CONST1(). *)
     Buffer.add_string buf (if b then "CONST1" else "CONST0")
   | kind -> Buffer.add_string buf (String.uppercase_ascii (Gate.to_string kind)));
  buf

let to_string c =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "# %s\n" c.Circuit.name);
  Buffer.add_string buf
    (Printf.sprintf "# %d inputs, %d keys, %d outputs, %d gates\n"
       (Circuit.num_inputs c) (Circuit.num_keys c) (Circuit.num_outputs c)
       (Circuit.num_gates c));
  Array.iter
    (fun id ->
      Buffer.add_string buf
        (Printf.sprintf "INPUT(%s)\n" (Circuit.node c id).Circuit.name))
    c.Circuit.inputs;
  Array.iter
    (fun id ->
      Buffer.add_string buf
        (Printf.sprintf "KEYINPUT(%s)\n" (Circuit.node c id).Circuit.name))
    c.Circuit.keys;
  Array.iter
    (fun (port, _) -> Buffer.add_string buf (Printf.sprintf "OUTPUT(%s)\n" port))
    c.Circuit.outputs;
  for id = 0 to Circuit.num_nodes c - 1 do
    let nd = Circuit.node c id in
    match nd.Circuit.kind with
    | Gate.Input | Gate.Key_input -> ()
    | _ ->
      let call = gate_call nd in
      let args =
        Array.to_list nd.Circuit.fanins
        |> List.map (fun f -> (Circuit.node c f).Circuit.name)
        |> String.concat ", "
      in
      Buffer.add_string buf
        (Printf.sprintf "%s = %s(%s)\n" nd.Circuit.name
           (Buffer.contents call |> String.trim)
           args)
  done;
  (* Output ports whose name differs from the driving wire need a BUF alias on
     re-parse; we emit them as comments for information. *)
  Array.iter
    (fun (port, id) ->
      let wire = (Circuit.node c id).Circuit.name in
      if not (String.equal port wire) then
        Buffer.add_string buf (Printf.sprintf "%s = BUF(%s)\n" port wire))
    c.Circuit.outputs;
  Buffer.contents buf

let write_file c path =
  let oc = open_out path in
  output_string oc (to_string c);
  close_out oc
