lib/bdd/bdd.mli: Fl_locking Fl_netlist
