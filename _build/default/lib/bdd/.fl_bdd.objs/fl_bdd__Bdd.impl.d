lib/bdd/bdd.ml: Array Fl_locking Fl_netlist Hashtbl Option
