(** Reduced ordered binary decision diagrams (ROBDD).

    Hash-consed Shannon cofactor trees with a unique table and a computed
    cache: equal functions share one canonical node, so equivalence is
    pointer equality, and model counting is a linear walk.  The paper's
    reference [29] uses BDD analysis for its locking trade-off study; here
    BDDs supply exact corruption numbers (cross-checking the sampled
    estimators) and a canonical equivalence oracle independent of the SAT
    path.

    Sizes are bounded by [node_limit]; circuits that blow past it (locked
    netlists are designed to!) raise {!Too_large} — itself a measurement. *)

type manager
type node

exception Too_large

(** [create ~num_vars ()] — variables are indexed [0 .. num_vars-1] and
    ordered by index.  [node_limit] defaults to 1_000_000. *)
val create : ?node_limit:int -> num_vars:int -> unit -> manager

val num_vars : manager -> int
val fls : node
val tru : node

(** [var m i] — the projection function of variable [i]. *)
val var : manager -> int -> node

val mk_not : manager -> node -> node
val mk_and : manager -> node -> node -> node
val mk_or : manager -> node -> node -> node
val mk_xor : manager -> node -> node -> node

(** [ite m i t e] — if-then-else composition. *)
val ite : manager -> node -> node -> node -> node

(** Canonical: equal functions are physically the same node. *)
val equal : node -> node -> bool

(** Number of internal nodes reachable from [n] (constants excluded). *)
val size : manager -> node -> int

(** Total live nodes in the manager. *)
val total_nodes : manager -> int

(** Exact number of satisfying assignments over all [num_vars] variables. *)
val sat_count : manager -> node -> float

val eval : manager -> node -> bool array -> bool

(** A satisfying assignment ([None] for the constant false). *)
val any_sat : manager -> node -> bool array option

(** {1 Circuits} *)

(** [of_circuit m c ~keys] builds one BDD per output over the circuit's
    primary inputs (variable [i] = input [i]); key inputs are pinned to
    [keys].  Acyclic circuits only.
    @raise Invalid_argument on cyclic circuits, key/variable mismatches.
    @raise Too_large when the manager overflows. *)
val of_circuit : manager -> Fl_netlist.Circuit.t -> keys:bool array -> node array

(** [exact_corruption locked ~key] — the exact fraction of (input, output)
    pairs on which the locked circuit under [key] differs from the oracle:
    the number the sampled {!Fl_locking.Locked.output_corruption} estimates.
    @raise Too_large / Invalid_argument as {!of_circuit}. *)
val exact_corruption :
  ?node_limit:int -> Fl_locking.Locked.t -> key:bool array -> float

(** [circuit_size ?node_limit c ~keys] — total BDD nodes of all outputs
    ([None] when the build exceeds the limit): the obfuscation metric of the
    BDD trade-off analysis. *)
val circuit_size :
  ?node_limit:int -> Fl_netlist.Circuit.t -> keys:bool array -> int option
