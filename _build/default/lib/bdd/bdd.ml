module Gate = Fl_netlist.Gate
module Circuit = Fl_netlist.Circuit

type node = int
(* 0 = false, 1 = true, >= 2 internal *)

exception Too_large

type manager = {
  nvars : int;
  node_limit : int;
  mutable var_tab : int array;  (* node -> top variable (nvars for terminals) *)
  mutable low_tab : int array;
  mutable high_tab : int array;
  mutable count : int;
  unique : (int * int * int, int) Hashtbl.t;
  ite_cache : (int * int * int, int) Hashtbl.t;
}

let fls = 0
let tru = 1

let create ?(node_limit = 1_000_000) ~num_vars () =
  let m =
    {
      nvars = num_vars;
      node_limit;
      var_tab = Array.make 1024 0;
      low_tab = Array.make 1024 0;
      high_tab = Array.make 1024 0;
      count = 2;
      unique = Hashtbl.create 4096;
      ite_cache = Hashtbl.create 4096;
    }
  in
  (* Terminals sit below every variable. *)
  m.var_tab.(fls) <- num_vars;
  m.var_tab.(tru) <- num_vars;
  m

let num_vars m = m.nvars
let level m n = m.var_tab.(n)

let mk m v lo hi =
  if lo = hi then lo
  else
    match Hashtbl.find_opt m.unique (v, lo, hi) with
    | Some n -> n
    | None ->
      if m.count >= m.node_limit then raise Too_large;
      if m.count >= Array.length m.var_tab then begin
        let cap = 2 * Array.length m.var_tab in
        let grow a =
          let a' = Array.make cap 0 in
          Array.blit a 0 a' 0 m.count;
          a'
        in
        m.var_tab <- grow m.var_tab;
        m.low_tab <- grow m.low_tab;
        m.high_tab <- grow m.high_tab
      end;
      let n = m.count in
      m.count <- n + 1;
      m.var_tab.(n) <- v;
      m.low_tab.(n) <- lo;
      m.high_tab.(n) <- hi;
      Hashtbl.add m.unique (v, lo, hi) n;
      n

let var m i =
  if i < 0 || i >= m.nvars then invalid_arg "Bdd.var: index out of range";
  mk m i fls tru

let cofactors m n v =
  if level m n = v then m.low_tab.(n), m.high_tab.(n) else n, n

let rec ite m f g h =
  if f = tru then g
  else if f = fls then h
  else if g = h then g
  else if g = tru && h = fls then f
  else
    match Hashtbl.find_opt m.ite_cache (f, g, h) with
    | Some r -> r
    | None ->
      let v = min (level m f) (min (level m g) (level m h)) in
      let f0, f1 = cofactors m f v in
      let g0, g1 = cofactors m g v in
      let h0, h1 = cofactors m h v in
      let lo = ite m f0 g0 h0 in
      let hi = ite m f1 g1 h1 in
      let r = mk m v lo hi in
      Hashtbl.add m.ite_cache (f, g, h) r;
      r

let mk_not m a = ite m a fls tru
let mk_and m a b = ite m a b fls
let mk_or m a b = ite m a tru b
let mk_xor m a b = ite m a (mk_not m b) b

let equal (a : node) (b : node) = a = b

let size m n =
  let seen = Hashtbl.create 64 in
  let rec walk n =
    if n > 1 && not (Hashtbl.mem seen n) then begin
      Hashtbl.add seen n ();
      walk m.low_tab.(n);
      walk m.high_tab.(n)
    end
  in
  walk n;
  Hashtbl.length seen

let total_nodes m = m.count

let sat_count m n =
  (* S(n): satisfying assignments over variables [level n .. nvars-1]. *)
  let memo = Hashtbl.create 64 in
  let rec s n =
    if n = fls then 0.0
    else if n = tru then 1.0
    else
      match Hashtbl.find_opt memo n with
      | Some v -> v
      | None ->
        let here = level m n in
        let lo = m.low_tab.(n) and hi = m.high_tab.(n) in
        let weight child =
          s child *. (2.0 ** float_of_int (level m child - here - 1))
        in
        let v = weight lo +. weight hi in
        Hashtbl.add memo n v;
        v
  in
  s n *. (2.0 ** float_of_int (level m n))

let eval m n assignment =
  if Array.length assignment <> m.nvars then invalid_arg "Bdd.eval: width mismatch";
  let rec walk n =
    if n = tru then true
    else if n = fls then false
    else if assignment.(m.var_tab.(n)) then walk m.high_tab.(n)
    else walk m.low_tab.(n)
  in
  walk n

let any_sat m n =
  if n = fls then None
  else begin
    (* In a reduced BDD every non-false node reaches true; prefer low. *)
    let assignment = Array.make m.nvars false in
    let rec walk n =
      if n <> tru then begin
        if m.low_tab.(n) <> fls then walk m.low_tab.(n)
        else begin
          assignment.(m.var_tab.(n)) <- true;
          walk m.high_tab.(n)
        end
      end
    in
    walk n;
    Some assignment
  end

let of_circuit m c ~keys =
  if not (Circuit.is_acyclic c) then invalid_arg "Bdd.of_circuit: cyclic circuit";
  if Circuit.num_inputs c <> m.nvars then
    invalid_arg "Bdd.of_circuit: manager variable count must equal input count";
  if Array.length keys <> Circuit.num_keys c then
    invalid_arg "Bdd.of_circuit: key length mismatch";
  let n = Circuit.num_nodes c in
  let node_bdd = Array.make n fls in
  Array.iteri (fun i id -> node_bdd.(id) <- var m i) c.Circuit.inputs;
  Array.iteri
    (fun i id -> node_bdd.(id) <- (if keys.(i) then tru else fls))
    c.Circuit.keys;
  let order = Option.get (Circuit.topological_order c) in
  let fold_binary op neutral fanins =
    Array.fold_left (fun acc f -> op acc node_bdd.(f)) neutral fanins
  in
  Array.iter
    (fun id ->
      let nd = Circuit.node c id in
      let fanins = nd.Circuit.fanins in
      node_bdd.(id) <-
        (match nd.Circuit.kind with
         | Gate.Input | Gate.Key_input -> node_bdd.(id)
         | Gate.Const b -> if b then tru else fls
         | Gate.Buf -> node_bdd.(fanins.(0))
         | Gate.Not -> mk_not m node_bdd.(fanins.(0))
         | Gate.And -> fold_binary (mk_and m) tru fanins
         | Gate.Nand -> mk_not m (fold_binary (mk_and m) tru fanins)
         | Gate.Or -> fold_binary (mk_or m) fls fanins
         | Gate.Nor -> mk_not m (fold_binary (mk_or m) fls fanins)
         | Gate.Xor -> fold_binary (mk_xor m) fls fanins
         | Gate.Xnor -> mk_not m (fold_binary (mk_xor m) fls fanins)
         | Gate.Mux ->
           ite m node_bdd.(fanins.(0)) node_bdd.(fanins.(2)) node_bdd.(fanins.(1))
         | Gate.Lut tt ->
           let result = ref fls in
           Array.iteri
             (fun row v ->
               if v then begin
                 let term = ref tru in
                 Array.iteri
                   (fun j f ->
                     let lit =
                       if row land (1 lsl j) <> 0 then node_bdd.(f)
                       else mk_not m node_bdd.(f)
                     in
                     term := mk_and m !term lit)
                   fanins;
                 result := mk_or m !result !term
               end)
             tt;
           !result))
    order;
  Array.map (fun (_, id) -> node_bdd.(id)) c.Circuit.outputs

let exact_corruption ?node_limit locked ~key =
  let oracle = locked.Fl_locking.Locked.oracle in
  let lc = locked.Fl_locking.Locked.locked in
  let n_in = Circuit.num_inputs oracle in
  let m = create ?node_limit ~num_vars:n_in () in
  let good = of_circuit m oracle ~keys:[||] in
  let bad = of_circuit m lc ~keys:key in
  let total = ref 0.0 in
  Array.iteri
    (fun i g ->
      let diff = mk_xor m g bad.(i) in
      total := !total +. sat_count m diff)
    good;
  !total /. (float_of_int (Array.length good) *. (2.0 ** float_of_int n_in))

let circuit_size ?node_limit c ~keys =
  match
    let m = create ?node_limit ~num_vars:(Circuit.num_inputs c) () in
    let outs = of_circuit m c ~keys in
    (* Count distinct nodes over all outputs. *)
    let seen = Hashtbl.create 1024 in
    let rec walk n =
      if n > 1 && not (Hashtbl.mem seen n) then begin
        Hashtbl.add seen n ();
        walk m.low_tab.(n);
        walk m.high_tab.(n)
      end
    in
    Array.iter walk outs;
    Hashtbl.length seen
  with
  | size -> Some size
  | exception Too_large -> None
