(** Fixed-clause-length random k-SAT (the model of Mitchell, Selman and
    Levesque used for Fig. 1: clauses of exactly [k] distinct variables with
    independent random polarities). *)

(** [fixed_length rng ~num_vars ~num_clauses ~k] draws a formula.
    @raise Invalid_argument when [k > num_vars] or arguments are
    non-positive. *)
val fixed_length :
  Random.State.t -> num_vars:int -> num_clauses:int -> k:int -> Fl_cnf.Formula.t

(** [ratio_sweep rng ~num_vars ~k ~ratios ~samples] generates [samples]
    formulas per clause/variable ratio and reports the median DPLL
    recursive-call count and the fraction satisfiable — the data behind
    Fig. 1. *)
val ratio_sweep :
  Random.State.t ->
  num_vars:int ->
  k:int ->
  ratios:float list ->
  samples:int ->
  (float * int * float) list
(** (ratio, median recursive calls, fraction satisfiable) *)
