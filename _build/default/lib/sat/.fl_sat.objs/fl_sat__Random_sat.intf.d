lib/sat/random_sat.mli: Fl_cnf Random
