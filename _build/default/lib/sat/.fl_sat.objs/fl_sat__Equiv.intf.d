lib/sat/equiv.mli: Cdcl Fl_netlist Format
