lib/sat/atpg.mli: Cdcl Fl_netlist Format
