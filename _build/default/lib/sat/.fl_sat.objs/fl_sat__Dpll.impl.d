lib/sat/dpll.ml: Array Fl_cnf Format
