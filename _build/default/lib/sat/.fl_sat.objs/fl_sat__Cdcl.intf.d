lib/sat/cdcl.mli: Fl_cnf Format
