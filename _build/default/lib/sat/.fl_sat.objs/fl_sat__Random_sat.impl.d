lib/sat/random_sat.ml: Array Dpll Fl_cnf List Random
