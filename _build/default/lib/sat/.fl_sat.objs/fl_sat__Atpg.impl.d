lib/sat/atpg.ml: Array Cdcl Fl_cnf Fl_netlist Format List
