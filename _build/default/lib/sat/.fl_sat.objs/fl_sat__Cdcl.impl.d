lib/sat/cdcl.ml: Array Bytes Char Fl_cnf Format Int List Set Unix
