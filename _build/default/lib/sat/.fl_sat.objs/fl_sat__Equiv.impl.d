lib/sat/equiv.ml: Array Cdcl Fl_cnf Fl_netlist Format
