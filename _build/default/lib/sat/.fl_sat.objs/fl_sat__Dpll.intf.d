lib/sat/dpll.mli: Fl_cnf Format
