type outcome = Sat | Unsat | Aborted

type stats = {
  recursive_calls : int;
  unit_propagations : int;
  pure_literals : int;
  max_depth : int;
  backtracks : int;
}

exception Abort

(* Literal index: positive literal of var v (1-based) is [2*(v-1)], negative
   is [2*(v-1)+1]. *)
let lit_index l = (2 * (abs l - 1)) lor (if l < 0 then 1 else 0)

type state = {
  num_vars : int;
  clauses : int array array;  (* DIMACS literals *)
  occurs : int array array;  (* lit index -> clause ids *)
  sat_stamp : int array;  (* clause -> trail stamp that satisfied it, or -1 *)
  free_count : int array;  (* unassigned literals per unsatisfied clause *)
  assign : int array;  (* var (1-based) -> 0 undef / 1 true / 2 false *)
  lit_active : int array;  (* lit index -> # unsatisfied clauses with lit *)
  mutable unsat_clauses : int;
  trail : int array;  (* assigned DIMACS literals, stamp = position *)
  mutable trail_size : int;
  (* counters *)
  mutable calls : int;
  mutable units : int;
  mutable pures : int;
  mutable depth_max : int;
  mutable backtracks : int;
  max_calls : int;
}

let build f max_calls =
  let num_vars = Fl_cnf.Formula.num_vars f in
  let clauses = Fl_cnf.Formula.clauses f in
  let nlits = 2 * num_vars in
  let occ_count = Array.make nlits 0 in
  Array.iter (fun c -> Array.iter (fun l -> occ_count.(lit_index l) <- occ_count.(lit_index l) + 1) c) clauses;
  let occurs = Array.init nlits (fun i -> Array.make occ_count.(i) 0) in
  let fill = Array.make nlits 0 in
  Array.iteri
    (fun ci c ->
      Array.iter
        (fun l ->
          let li = lit_index l in
          occurs.(li).(fill.(li)) <- ci;
          fill.(li) <- fill.(li) + 1)
        c)
    clauses;
  {
    num_vars;
    clauses;
    occurs;
    sat_stamp = Array.make (Array.length clauses) (-1);
    free_count = Array.map Array.length clauses;
    assign = Array.make (num_vars + 1) 0;
    lit_active = Array.copy occ_count;
    unsat_clauses = Array.length clauses;
    trail = Array.make (max 1 num_vars) 0;
    trail_size = 0;
    calls = 0;
    units = 0;
    pures = 0;
    depth_max = 0;
    backtracks = 0;
    max_calls;
  }

(* Assign literal [l] true.  Returns false on an empty clause (conflict). *)
let assign_lit st l =
  let stamp = st.trail_size in
  st.trail.(st.trail_size) <- l;
  st.trail_size <- st.trail_size + 1;
  st.assign.(abs l) <- (if l > 0 then 1 else 2);
  (* Clauses containing l become satisfied. *)
  Array.iter
    (fun ci ->
      if st.sat_stamp.(ci) < 0 then begin
        st.sat_stamp.(ci) <- stamp;
        st.unsat_clauses <- st.unsat_clauses - 1;
        Array.iter
          (fun q ->
            let qi = lit_index q in
            st.lit_active.(qi) <- st.lit_active.(qi) - 1)
          st.clauses.(ci)
      end)
    st.occurs.(lit_index l);
  (* Clauses containing ¬l lose a free literal. *)
  let conflict = ref false in
  Array.iter
    (fun ci ->
      if st.sat_stamp.(ci) < 0 then begin
        st.free_count.(ci) <- st.free_count.(ci) - 1;
        if st.free_count.(ci) = 0 then conflict := true
      end)
    st.occurs.(lit_index (-l));
  not !conflict

(* Undo assignments down to trail size [target]. *)
let undo_to st target =
  while st.trail_size > target do
    st.trail_size <- st.trail_size - 1;
    let stamp = st.trail_size in
    let l = st.trail.(stamp) in
    st.assign.(abs l) <- 0;
    Array.iter
      (fun ci -> if st.sat_stamp.(ci) < 0 then st.free_count.(ci) <- st.free_count.(ci) + 1)
      st.occurs.(lit_index (-l));
    Array.iter
      (fun ci ->
        if st.sat_stamp.(ci) = stamp then begin
          st.sat_stamp.(ci) <- -1;
          st.unsat_clauses <- st.unsat_clauses + 1;
          Array.iter
            (fun q ->
              let qi = lit_index q in
              st.lit_active.(qi) <- st.lit_active.(qi) + 1)
            st.clauses.(ci)
        end)
      st.occurs.(lit_index l)
  done

(* Find an unsatisfied unit clause and return its free literal. *)
let find_unit st =
  let n = Array.length st.clauses in
  let rec go ci =
    if ci >= n then None
    else if st.sat_stamp.(ci) < 0 && st.free_count.(ci) = 1 then begin
      let clause = st.clauses.(ci) in
      let rec pick k =
        if st.assign.(abs clause.(k)) = 0 then clause.(k) else pick (k + 1)
      in
      Some (pick 0)
    end
    else go (ci + 1)
  in
  go 0

(* Find a pure literal among unsatisfied clauses. *)
let find_pure st =
  let rec go v =
    if v > st.num_vars then None
    else if st.assign.(v) <> 0 then go (v + 1)
    else begin
      let pos = st.lit_active.(lit_index v) in
      let neg = st.lit_active.(lit_index (-v)) in
      if pos > 0 && neg = 0 then Some v
      else if neg > 0 && pos = 0 then Some (-v)
      else go (v + 1)
    end
  in
  go 1

(* Branching heuristic: the first free literal of the first unsatisfied
   clause — the historical Davis-Putnam choice, matching the fixed-length
   3-SAT experiments of Mitchell et al. *)
let pick_branch st =
  let n = Array.length st.clauses in
  let rec go ci =
    if ci >= n then None
    else if st.sat_stamp.(ci) < 0 then begin
      let clause = st.clauses.(ci) in
      let rec pick k =
        if st.assign.(abs clause.(k)) = 0 then clause.(k) else pick (k + 1)
      in
      Some (pick 0)
    end
    else go (ci + 1)
  in
  go 0

let rec dpll st depth =
  st.calls <- st.calls + 1;
  if st.max_calls >= 0 && st.calls > st.max_calls then raise Abort;
  if depth > st.depth_max then st.depth_max <- depth;
  let frame = st.trail_size in
  let conflict = ref false in
  (* Unit propagation to fixpoint. *)
  let rec propagate () =
    if not !conflict then
      match find_unit st with
      | None -> ()
      | Some l ->
        st.units <- st.units + 1;
        if assign_lit st l then propagate () else conflict := true
  in
  propagate ();
  (* Pure-literal elimination to fixpoint (never conflicts). *)
  let rec purify () =
    if not !conflict then
      match find_pure st with
      | None -> ()
      | Some l ->
        st.pures <- st.pures + 1;
        if assign_lit st l then purify () else conflict := true
  in
  purify ();
  if !conflict then begin
    st.backtracks <- st.backtracks + 1;
    undo_to st frame;
    false
  end
  else if st.unsat_clauses = 0 then true
  else begin
    match pick_branch st with
    | None ->
      (* No free literal in an unsatisfied clause: empty clause. *)
      st.backtracks <- st.backtracks + 1;
      undo_to st frame;
      false
    | Some l ->
      let try_branch lit =
        let sub_frame = st.trail_size in
        if assign_lit st lit then begin
          if dpll st (depth + 1) then true
          else begin
            undo_to st sub_frame;
            false
          end
        end
        else begin
          st.backtracks <- st.backtracks + 1;
          undo_to st sub_frame;
          false
        end
      in
      if try_branch l then true
      else if try_branch (-l) then true
      else begin
        undo_to st frame;
        false
      end
  end

let solve ?(max_calls = -1) f =
  let st = build f max_calls in
  let outcome =
    if Array.exists (fun c -> Array.length c = 0) st.clauses then Unsat
    else begin
      try if dpll st 0 then Sat else Unsat with Abort -> Aborted
    end
  in
  ( outcome,
    {
      recursive_calls = st.calls;
      unit_propagations = st.units;
      pure_literals = st.pures;
      max_depth = st.depth_max;
      backtracks = st.backtracks;
    } )

let pp_stats fmt st =
  Format.fprintf fmt "calls %d, units %d, pures %d, max depth %d, backtracks %d"
    st.recursive_calls st.unit_propagations st.pure_literals st.max_depth
    st.backtracks
