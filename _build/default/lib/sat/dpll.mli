(** Textbook DPLL (Algorithm 1 of the paper), instrumented.

    Unit propagation, pure-literal elimination, then branching; each
    branching step is one recursive call and one extra level in the decision
    tree.  The recursive-call counter is the quantity plotted in Fig. 1 and
    the [M] of the paper's equation (2). *)

type outcome = Sat | Unsat | Aborted  (** [Aborted]: call limit reached *)

type stats = {
  recursive_calls : int;  (** branching DPLL invocations (the paper's M) *)
  unit_propagations : int;
  pure_literals : int;
  max_depth : int;
  backtracks : int;
}

(** [solve ?max_calls f] decides [f].  [max_calls] bounds the number of
    branching calls (default unlimited). *)
val solve : ?max_calls:int -> Fl_cnf.Formula.t -> outcome * stats

(** [model_after_sat] style access is intentionally absent: the paper only
    uses DPLL to measure search-tree size; use {!Cdcl} when a model is
    needed. *)

val pp_stats : Format.formatter -> stats -> unit
