let fixed_length rng ~num_vars ~num_clauses ~k =
  if num_vars < 1 || num_clauses < 1 || k < 1 then
    invalid_arg "Random_sat.fixed_length: non-positive size";
  if k > num_vars then invalid_arg "Random_sat.fixed_length: k > num_vars";
  let f = Fl_cnf.Formula.create () in
  Fl_cnf.Formula.reserve f num_vars;
  let scratch = Array.make k 0 in
  for _ = 1 to num_clauses do
    (* Draw k distinct variables by rejection (k is tiny). *)
    let filled = ref 0 in
    while !filled < k do
      let v = 1 + Random.State.int rng num_vars in
      let dup =
        let rec chk i = i < !filled && (scratch.(i) = v || chk (i + 1)) in
        chk 0
      in
      if not dup then begin
        scratch.(!filled) <- v;
        incr filled
      end
    done;
    let lits =
      Array.to_list
        (Array.map
           (fun v -> if Random.State.bool rng then v else -v)
           (Array.sub scratch 0 k))
    in
    Fl_cnf.Formula.add_clause f lits
  done;
  f

let median xs =
  let sorted = List.sort compare xs in
  List.nth sorted (List.length sorted / 2)

let ratio_sweep rng ~num_vars ~k ~ratios ~samples =
  List.map
    (fun ratio ->
      let num_clauses = max 1 (int_of_float (ratio *. float_of_int num_vars)) in
      let calls = ref [] in
      let sat_count = ref 0 in
      for _ = 1 to samples do
        let f = fixed_length rng ~num_vars ~num_clauses ~k in
        let outcome, st = Dpll.solve f in
        (match outcome with
         | Dpll.Sat -> incr sat_count
         | Dpll.Unsat | Dpll.Aborted -> ());
        calls := st.Dpll.recursive_calls :: !calls
      done;
      ratio, median !calls, float_of_int !sat_count /. float_of_int samples)
    ratios
