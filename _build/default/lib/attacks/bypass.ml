module Gate = Fl_netlist.Gate
module Circuit = Fl_netlist.Circuit
module Opt = Fl_netlist.Opt
module Formula = Fl_cnf.Formula
module Tseytin = Fl_cnf.Tseytin
module Cdcl = Fl_sat.Cdcl
module Equiv = Fl_sat.Equiv
module Locked = Fl_locking.Locked

type cube = {
  care : bool array;
  values : bool array;
  flips : bool array;
}

type result =
  | Bypassed of {
      wrong_key : bool array;
      cubes : cube list;
      repaired : Circuit.t;
      overhead_gates : int;
    }
  | Too_many_cubes of { wrong_key : bool array; found : int }
  | Inconclusive

(* One dual-copy instance: locked (key pinned) vs oracle on shared inputs.
   Returns the shared input variables and the per-output XOR variables. *)
let difference_instance locked ~key f =
  let enc_locked = Tseytin.encode f locked.Locked.locked in
  let enc_oracle =
    Tseytin.encode ~share_inputs:enc_locked.Tseytin.input_vars f
      locked.Locked.oracle
  in
  Tseytin.assert_vector f enc_locked.Tseytin.key_vars key;
  let diffs =
    Array.map2
      (fun a b -> Tseytin.xor_out f a b)
      enc_locked.Tseytin.output_vars enc_oracle.Tseytin.output_vars
  in
  enc_locked.Tseytin.input_vars, diffs

(* Is it true that on every input of the cube, locked(x, key) differs from
   the oracle by exactly [flips]?  UNSAT of the violation query is the
   proof. *)
let cube_exact ~deadline locked ~key cube =
  let f = Formula.create () in
  let inputs, diffs = difference_instance locked ~key f in
  Array.iteri
    (fun i v ->
      if cube.care.(i) then
        Tseytin.assert_lit f (if cube.values.(i) then v else -v))
    inputs;
  (* Violation: some output's difference disagrees with the expected flip. *)
  let violations =
    Array.to_list
      (Array.mapi
         (fun o d ->
           if cube.flips.(o) then -d else d)
         diffs)
  in
  Formula.add_clause f violations;
  let solver = Cdcl.of_formula f in
  match Cdcl.solve ~budget:(Cdcl.budget_seconds (deadline -. Unix.gettimeofday ())) solver with
  | Cdcl.Unsat -> `Exact
  | Cdcl.Sat -> `Violated
  | Cdcl.Unknown -> `Timeout

(* Greedy cube widening: try to drop each input bit, keeping the drop when
   the widened cube still disagrees by the same constant flip pattern. *)
let generalize ~deadline locked ~key minterm flips =
  let n = Array.length minterm in
  let cube = { care = Array.make n true; values = Array.copy minterm; flips } in
  let timeout = ref false in
  for i = 0 to n - 1 do
    if not !timeout then begin
      cube.care.(i) <- false;
      match cube_exact ~deadline locked ~key cube with
      | `Exact -> ()
      | `Violated -> cube.care.(i) <- true
      | `Timeout ->
        cube.care.(i) <- true;
        timeout := true
    end
  done;
  if !timeout then `Timeout else `Cube cube

(* Enumerate disagreement cubes, blocking each found cube's fixed bits. *)
let disagreement_cubes ~deadline locked ~key ~limit =
  let f = Formula.create () in
  let inputs, diffs = difference_instance locked ~key f in
  Formula.add_clause f (Array.to_list diffs);
  let solver = Cdcl.of_formula f in
  let rec loop acc count =
    if count > limit then `Too_many count
    else begin
      let budget = Cdcl.budget_seconds (deadline -. Unix.gettimeofday ()) in
      match Cdcl.solve ~budget solver with
      | Cdcl.Unsat -> `All (List.rev acc)
      | Cdcl.Unknown -> `Timeout
      | Cdcl.Sat ->
        let minterm = Array.map (fun v -> Cdcl.value solver v) inputs in
        let wrong = Locked.eval_locked locked ~key ~inputs:minterm in
        let right = Locked.query_oracle locked minterm in
        let flips = Array.map2 (fun w r -> w <> r) wrong right in
        (match generalize ~deadline locked ~key minterm flips with
         | `Timeout -> `Timeout
         | `Cube cube ->
           (* Block the whole cube. *)
           let blocking =
             Array.to_list inputs
             |> List.mapi (fun i v ->
                    if cube.care.(i) then Some (if cube.values.(i) then -v else v)
                    else None)
             |> List.filter_map Fun.id
           in
           (match blocking with
            | [] ->
              (* The cube covers the whole input space: one universal flip. *)
              `All (List.rev (cube :: acc))
            | clause ->
              Cdcl.add_clause solver clause;
              loop (cube :: acc) (count + 1)))
    end
  in
  loop [] 0

(* Wrap the wrongly-keyed core with comparators that flip the disagreeing
   outputs on each cube. *)
let build_repair locked ~key ~cubes =
  let core = Opt.hardwire_keys locked.Locked.locked key in
  let b = Circuit.Builder.create ~name:(core.Circuit.name ^ "-bypassed") () in
  let map = Circuit.copy_nodes_into b core in
  let inputs = Array.map (fun id -> map.(id)) core.Circuit.inputs in
  let per_output_flips = Array.make (Circuit.num_outputs core) ([] : int list) in
  List.iter
    (fun cube ->
      let literals =
        Array.to_list inputs
        |> List.mapi (fun i v ->
               if not cube.care.(i) then None
               else if cube.values.(i) then Some v
               else Some (Circuit.Builder.add b Gate.Not [| v |]))
        |> List.filter_map Fun.id
      in
      let matcher =
        match literals with
        | [] -> Circuit.Builder.add b (Gate.Const true) [||]
        | [ single ] -> single
        | several -> Circuit.Builder.add b Gate.And (Array.of_list several)
      in
      Array.iteri
        (fun o_idx flip ->
          if flip then per_output_flips.(o_idx) <- matcher :: per_output_flips.(o_idx))
        cube.flips)
    cubes;
  Array.iteri
    (fun o_idx (port, id) ->
      let driver =
        match per_output_flips.(o_idx) with
        | [] -> map.(id)
        | [ single ] -> Circuit.Builder.add b Gate.Xor [| map.(id); single |]
        | several ->
          let any = Circuit.Builder.add b Gate.Or (Array.of_list several) in
          Circuit.Builder.add b Gate.Xor [| map.(id); any |]
      in
      Circuit.Builder.output b port driver)
    core.Circuit.outputs;
  let repaired = Circuit.of_builder b in
  repaired, Circuit.num_gates repaired - Circuit.num_gates core

let run ?(max_cubes = 32) ?(timeout = 30.0) ?(seed = 0xb1fa55) locked =
  if not (Circuit.is_acyclic locked.Locked.locked) then
    invalid_arg "Bypass.run: cyclic locked netlist";
  let deadline = Unix.gettimeofday () +. timeout in
  let rng = Random.State.make [| seed |] in
  let nk = Locked.num_key_bits locked in
  let wrong_key =
    let k = Array.init nk (fun _ -> Random.State.bool rng) in
    if k = locked.Locked.correct_key then Array.map not k else k
  in
  match disagreement_cubes ~deadline locked ~key:wrong_key ~limit:max_cubes with
  | `Timeout -> Inconclusive
  | `Too_many found -> Too_many_cubes { wrong_key; found }
  | `All cubes ->
    let repaired, overhead_gates = build_repair locked ~key:wrong_key ~cubes in
    (* The construction must be exact: verify formally. *)
    (match Equiv.check repaired locked.Locked.oracle with
     | Equiv.Equivalent -> Bypassed { wrong_key; cubes; repaired; overhead_gates }
     | Equiv.Different _ | Equiv.Unknown -> Inconclusive)

let pp_result fmt = function
  | Bypassed { cubes; overhead_gates; _ } ->
    Format.fprintf fmt
      "BYPASSED: %d disagreement cube(s), %d bypass gates (oracle-equivalent)"
      (List.length cubes) overhead_gates
  | Too_many_cubes { found; _ } ->
    Format.fprintf fmt "resists: more than %d disagreement cubes" (found - 1)
  | Inconclusive -> Format.pp_print_string fmt "inconclusive (budget)"
