(** Removal attack (Yasin et al.): cut out the locking circuitry and keep
    the original function.

    Two strategies are combined:
    - {b flip-gate excision}: a 2-input XOR/XNOR with exactly one
      key-tainted operand (the SARLock/Anti-SAT pattern, guided by SPS skew)
      is replaced by its key-free operand;
    - {b identity bypass}: key-fed MUX islands (crossbars, CLNs) are
      bypassed by guessing that each island output equals one of its data
      inputs (the identity routing guess).

    The attack then checks the stripped netlist against the oracle.  It
    succeeds on point-function schemes, partially on Cross-Lock, and fails
    on Full-Lock: the twisted (negated) leading gates and key-programmed
    LUTs make every bypass guess functionally wrong (§4.2.2). *)

type result = {
  stripped : Fl_netlist.Circuit.t;  (** the candidate de-obfuscated netlist *)
  removed_flip_gates : int;
  bypassed_mux_islands : int;
  equivalent : bool;  (** functional match with the oracle *)
}

(** [run ?vectors ?seed locked] — equivalence is checked on [vectors]
    random inputs (default 256), exhaustively when the input count is
    small. *)
val run : ?vectors:int -> ?seed:int -> Fl_locking.Locked.t -> result
