(** Bypass attack (Xu et al., CHES'17 — the paper's reference [29]).

    Against a low-corruption scheme the attacker does not recover the key at
    all: they pick an {e arbitrary} wrong key, characterise the few places
    where the wrongly-keyed circuit disagrees with the oracle, and wrap the
    chip in a small "bypass" comparator that flips the outputs back exactly
    there.  The bypass cost tracks the size of that disagreement set —
    negligible for SARLock/SFLL-style point functions, astronomically large
    for high-corruption schemes like Full-Lock (§2's third advantage of the
    per-iteration-hardness approach).

    Disagreements are enumerated as {e cubes}: each SAT-discovered minterm
    is greedily widened by dropping input bits, with a SAT proof at every
    step that the whole cube disagrees by one constant output-flip pattern.
    SARLock's single comparator cube is recovered exactly this way. *)

(** A set of inputs (fixed bits given by [care]/[values]) on which the
    wrongly-keyed circuit differs from the oracle by XORing [flips] onto the
    outputs. *)
type cube = {
  care : bool array;  (** which input positions are fixed *)
  values : bool array;  (** their values (don't-care positions arbitrary) *)
  flips : bool array;  (** per-output correction *)
}

type result =
  | Bypassed of {
      wrong_key : bool array;
      cubes : cube list;
      repaired : Fl_netlist.Circuit.t;  (** wrong-keyed core + bypass logic *)
      overhead_gates : int;
    }
  | Too_many_cubes of { wrong_key : bool array; found : int }
      (** enumeration exceeded [max_cubes]: bypass impractical *)
  | Inconclusive  (** solver budget exhausted *)

(** [run ?max_cubes ?timeout ?seed locked] — defaults: give up beyond 32
    cubes, 30 s budget.  The repaired netlist, when returned, is verified
    equivalent to the oracle.
    @raise Invalid_argument on cyclic locked netlists. *)
val run :
  ?max_cubes:int ->
  ?timeout:float ->
  ?seed:int ->
  Fl_locking.Locked.t ->
  result

val pp_result : Format.formatter -> result -> unit
