module Circuit = Fl_netlist.Circuit
module Sim = Fl_netlist.Sim
module Locked = Fl_locking.Locked

type result = {
  key : bool array option;
  estimated_error : float;
  exact : bool;
  iterations : int;
  random_queries : int;
  wall_time : float;
}

(* Error rate of a key candidate on random inputs; also returns the
   disagreeing queries so they can reinforce the constraint set. *)
let estimate_error locked rng ~samples key =
  let n = Circuit.num_inputs locked.Locked.oracle in
  let wrong = ref [] in
  for _ = 1 to samples do
    let inputs = Sim.random_vector rng n in
    let reference = Locked.query_oracle locked inputs in
    let agree =
      match Locked.eval_locked locked ~key ~inputs with
      | outputs -> outputs = reference
      | exception Sim.Unresolved _ -> false
    in
    if not agree then wrong := (inputs, reference) :: !wrong
  done;
  float_of_int (List.length !wrong) /. float_of_int samples, !wrong

let run ?(timeout = 60.0) ?(max_iterations = max_int) ?(settle_every = 4)
    ?(samples = 64) ?(error_threshold = 0.01) ?(seed = 0) locked =
  let deadline = Unix.gettimeofday () +. timeout in
  let session = Session.create ~deadline locked in
  let rng = Random.State.make [| seed; 0xa99 |] in
  let queries = ref 0 in
  let finish ?key ?(error = 1.0) ~exact () =
    {
      key;
      estimated_error = error;
      exact;
      iterations = Session.iterations session;
      random_queries = !queries;
      wall_time = Session.elapsed session;
    }
  in
  let try_settle () =
    match Session.candidate_key session with
    | `Key key ->
      let error, disagreements = estimate_error locked rng ~samples key in
      queries := !queries + samples;
      if error <= error_threshold then Some (finish ~key ~error ~exact:false ())
      else begin
        (* Reinforce: add the disagreeing oracle observations. *)
        List.iter
          (fun (inputs, outputs) -> Session.constrain_io session ~inputs ~outputs)
          disagreements;
        None
      end
    | `None | `Timeout -> None
  in
  let rec loop () =
    if Session.iterations session >= max_iterations then
      match Session.candidate_key session with
      | `Key key ->
        let error, _ = estimate_error locked rng ~samples key in
        finish ~key ~error ~exact:false ()
      | `None | `Timeout -> finish ~exact:false ()
    else
      match Session.find_dip session with
      | `Timeout -> finish ~exact:false ()
      | `Exhausted ->
        (match Session.candidate_key session with
         | `Key key -> finish ~key ~error:0.0 ~exact:true ()
         | `None | `Timeout -> finish ~exact:false ())
      | `Dip dip ->
        Session.observe session dip;
        if Session.iterations session mod settle_every = 0 then
          match try_settle () with Some r -> r | None -> loop ()
        else loop ()
  in
  loop ()

let pp_result fmt r =
  Format.fprintf fmt
    "%s key, error %.3f%s, %d iterations, %d random queries, %.2fs"
    (match r.key with Some _ -> "found" | None -> "no")
    r.estimated_error
    (if r.exact then " (exact)" else "")
    r.iterations r.random_queries r.wall_time
