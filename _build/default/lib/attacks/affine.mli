(** Algebraic (affine) attack — §4.2.3 of the paper.

    A bare CLN computes an affine function over GF(2): [y = A·x ⊕ b] where
    [A] is a permutation matrix and [b] the inversion mask.  An attacker who
    can query the block recovers [A] and [b] from [n+1] basis queries and
    deobfuscates the routing without touching the key.  Full-Lock defeats
    this by fusing non-linear key-programmed LUTs onto the CLN outputs: the
    PLR is no longer affine. *)

type fit = {
  matrix : bool array array;  (** m×n over GF(2) *)
  offset : bool array;  (** m *)
  is_affine : bool;  (** fit verified on random samples *)
  counterexamples : int;  (** samples contradicting the fit *)
}

(** [fit_function ?samples ?seed ~arity f] queries [f] on the zero vector
    and the unit vectors to build the candidate (A, b), then verifies on
    [samples] random vectors (default 128). *)
val fit_function :
  ?samples:int -> ?seed:int -> arity:int -> (bool array -> bool array) -> fit

(** [attack_oracle locked] fits the locked bundle's {e oracle} — decides
    whether the protected block is affine-expressible, i.e. whether the
    algebraic attack applies. *)
val attack_oracle : ?samples:int -> ?seed:int -> Fl_locking.Locked.t -> fit

(** [apply fit x] evaluates the fitted affine map. *)
val apply : fit -> bool array -> bool array
