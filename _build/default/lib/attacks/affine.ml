module Circuit = Fl_netlist.Circuit
module Sim = Fl_netlist.Sim
module Locked = Fl_locking.Locked

type fit = {
  matrix : bool array array;
  offset : bool array;
  is_affine : bool;
  counterexamples : int;
}

let apply fit x =
  Array.mapi
    (fun row b0 ->
      let acc = ref b0 in
      Array.iteri (fun col a -> if a && x.(col) then acc := not !acc) fit.matrix.(row);
      !acc)
    fit.offset

let fit_function ?(samples = 128) ?(seed = 5) ~arity f =
  let zero = Array.make arity false in
  let offset = f zero in
  let m = Array.length offset in
  (* Column j of A = f(e_j) xor f(0). *)
  let columns =
    Array.init arity (fun j ->
        let e = Array.make arity false in
        e.(j) <- true;
        Array.map2 (fun v b -> v <> b) (f e) offset)
  in
  let matrix = Array.init m (fun row -> Array.init arity (fun col -> columns.(col).(row))) in
  let candidate = { matrix; offset; is_affine = true; counterexamples = 0 } in
  let rng = Random.State.make [| seed |] in
  let counterexamples = ref 0 in
  for _ = 1 to samples do
    let x = Sim.random_vector rng arity in
    if f x <> apply candidate x then incr counterexamples
  done;
  { candidate with is_affine = !counterexamples = 0; counterexamples = !counterexamples }

let attack_oracle ?samples ?seed locked =
  let oracle = locked.Locked.oracle in
  let arity = Circuit.num_inputs oracle in
  fit_function ?samples ?seed ~arity (fun inputs -> Locked.query_oracle locked inputs)
