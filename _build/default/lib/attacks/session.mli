(** Shared state of an oracle-guided attack: the miter, the accumulated
    observation constraints, and the key-recovery formula.  {!Sat_attack},
    {!Cycsat} (via its key-condition emitter) and {!Appsat} all drive their
    loops through this module. *)

type t

(** [create ?extra_key_constraint ~deadline locked] builds the miter and the
    key-recovery formula; [extra_key_constraint] is asserted over both miter
    key copies and the recovery keys.  [deadline] is an absolute Unix
    time. *)
val create :
  ?extra_key_constraint:(Fl_cnf.Formula.t -> int array -> unit) ->
  deadline:float ->
  Fl_locking.Locked.t ->
  t

(** [find_dip s] solves the miter for the next discriminating input
    pattern.  Increments the iteration counter on success. *)
val find_dip : t -> [ `Dip of bool array | `Exhausted | `Timeout ]

(** [observe s dip] queries the oracle on [dip] and constrains both key
    copies and the recovery formula with the observed behaviour. *)
val observe : t -> bool array -> unit

(** [constrain_io s ~inputs ~outputs] adds an arbitrary I/O observation
    (AppSAT's random queries). *)
val constrain_io : t -> inputs:bool array -> outputs:bool array -> unit

(** [candidate_key s] solves the recovery formula for a key consistent with
    every observation so far. *)
val candidate_key : t -> [ `Key of bool array | `None | `Timeout ]

val iterations : t -> int
val solver_stats : t -> Fl_sat.Cdcl.stats
val clause_var_ratio : t -> float
val elapsed : t -> float
val out_of_time : t -> bool
