(** Signal Probability Skew analysis (Yasin et al., ASP-DAC'17).

    Propagates signal probabilities (independence assumption, inputs and
    keys at p = 0.5) through the locked netlist and ranks wires by skew
    |p − 0.5|.  Anti-SAT's AND trees produce an extremely skewed flip wire
    feeding the output XOR — which is how SPS locates and removes the block.
    Full-Lock's CLN outputs sit near p = 0.5, so the analysis finds nothing
    to cut (§2, §4.2). *)

(** [probabilities c] is the signal probability of every node (id-indexed).
    Cyclic circuits get a fixpoint estimate (unknowns start at 0.5). *)
val probabilities : Fl_netlist.Circuit.t -> float array

(** [key_tainted c] marks every node in the transitive fanout of a key
    input (shared with the removal attack). *)
val key_tainted : Fl_netlist.Circuit.t -> bool array

(** [skew_ranking c ~top] — the [top] most skewed key-dependent wires as
    (node id, probability, skew), most skewed first. *)
val skew_ranking : Fl_netlist.Circuit.t -> top:int -> (int * float * float) list

(** [flip_wire_skew locked] — for each 2-input XOR/XNOR whose one operand is
    key-dependent and the other key-free (the flip-gate pattern), the skew of
    the key-dependent operand.  An entry close to 0.5 means SPS pinpoints a
    removable point-function block. *)
val flip_wire_skew : Fl_locking.Locked.t -> (int * float) list

(** [identifies_block ?threshold locked] — whether SPS finds a flip wire
    with skew above [threshold] (default 0.45). *)
val identifies_block : ?threshold:float -> Fl_locking.Locked.t -> bool
