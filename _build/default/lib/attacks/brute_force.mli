(** Exhaustive key search — the baseline every locking scheme must at least
    beat, and the ground-truth oracle for testing the SAT attack on small
    key spaces. *)

type result = {
  key : bool array option;  (** first functionally-correct key found *)
  keys_tried : int;
  wall_time : float;
}

(** [run ?vectors ?max_keys locked] tests keys in numeric order against the
    oracle on random vectors (exhaustively over inputs when few).
    @raise Invalid_argument when the key space exceeds [max_keys]
    (default 2^20). *)
val run : ?vectors:int -> ?max_keys:int -> Fl_locking.Locked.t -> result
