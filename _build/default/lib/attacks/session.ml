module Circuit = Fl_netlist.Circuit
module Formula = Fl_cnf.Formula
module Tseytin = Fl_cnf.Tseytin
module Miter = Fl_cnf.Miter
module Cdcl = Fl_sat.Cdcl
module Locked = Fl_locking.Locked

(* A formula paired with an incremental solver: [sync] feeds the solver only
   the clauses appended since the last call, so the DIP loop stays linear in
   the number of iterations instead of rebuilding quadratically. *)
type tracked = {
  formula : Formula.t;
  solver : Cdcl.t;
  mutable loaded : int;  (* clauses already in the solver *)
}

let tracked_of formula = { formula; solver = Cdcl.create (); loaded = 0 }

let sync tr =
  Cdcl.ensure_vars tr.solver (Formula.num_vars tr.formula);
  let clauses = Formula.clauses tr.formula in
  for i = tr.loaded to Array.length clauses - 1 do
    Cdcl.add_clause_a tr.solver clauses.(i)
  done;
  tr.loaded <- Array.length clauses

type t = {
  locked : Locked.t;
  miter : Miter.t;
  miter_tracked : tracked;
  key_tracked : tracked;
  key_vars : int array;
  deadline : float;
  start : float;
  mutable iteration_count : int;
  mutable stats : Cdcl.stats;
}

let zero_stats =
  {
    Cdcl.decisions = 0;
    propagations = 0;
    conflicts = 0;
    restarts = 0;
    learned_clauses = 0;
    learned_literals = 0;
    max_decision_level = 0;
  }

let add_stats a b =
  {
    Cdcl.decisions = a.Cdcl.decisions + b.Cdcl.decisions;
    propagations = a.Cdcl.propagations + b.Cdcl.propagations;
    conflicts = a.Cdcl.conflicts + b.Cdcl.conflicts;
    restarts = a.Cdcl.restarts + b.Cdcl.restarts;
    learned_clauses = a.Cdcl.learned_clauses + b.Cdcl.learned_clauses;
    learned_literals = a.Cdcl.learned_literals + b.Cdcl.learned_literals;
    max_decision_level = max a.Cdcl.max_decision_level b.Cdcl.max_decision_level;
  }

let create ?extra_key_constraint ~deadline locked =
  let circuit = locked.Locked.locked in
  let miter = Miter.build circuit in
  let key_formula = Formula.create () in
  let key_vars = Formula.fresh_vars key_formula (Circuit.num_keys circuit) in
  (match extra_key_constraint with
   | Some add ->
     add key_formula key_vars;
     add miter.Miter.formula miter.Miter.keys_a;
     add miter.Miter.formula miter.Miter.keys_b
   | None -> ());
  {
    locked;
    miter;
    miter_tracked = tracked_of miter.Miter.formula;
    key_tracked = tracked_of key_formula;
    key_vars;
    deadline;
    start = Unix.gettimeofday ();
    iteration_count = 0;
    stats = zero_stats;
  }

let elapsed s = Unix.gettimeofday () -. s.start
let out_of_time s = Unix.gettimeofday () > s.deadline
let budget s = Cdcl.budget_seconds (s.deadline -. Unix.gettimeofday ())

let find_dip s =
  if out_of_time s then `Timeout
  else begin
    sync s.miter_tracked;
    let solver = s.miter_tracked.solver in
    let before = Cdcl.stats solver in
    let outcome = Cdcl.solve ~budget:(budget s) solver in
    let after = Cdcl.stats solver in
    s.stats <-
      add_stats s.stats
        {
          after with
          Cdcl.decisions = after.Cdcl.decisions - before.Cdcl.decisions;
          propagations = after.Cdcl.propagations - before.Cdcl.propagations;
          conflicts = after.Cdcl.conflicts - before.Cdcl.conflicts;
          restarts = after.Cdcl.restarts - before.Cdcl.restarts;
          learned_clauses = after.Cdcl.learned_clauses - before.Cdcl.learned_clauses;
          learned_literals = after.Cdcl.learned_literals - before.Cdcl.learned_literals;
        };
    match outcome with
    | Cdcl.Unknown -> `Timeout
    | Cdcl.Unsat -> `Exhausted
    | Cdcl.Sat ->
      s.iteration_count <- s.iteration_count + 1;
      `Dip (Array.map (fun v -> Cdcl.value solver v) s.miter.Miter.inputs)
  end

let constrain_io s ~inputs ~outputs =
  let circuit = s.locked.Locked.locked in
  Miter.add_io_constraint s.miter circuit ~inputs ~outputs;
  let key_formula = s.key_tracked.formula in
  let enc = Tseytin.encode ~share_keys:s.key_vars key_formula circuit in
  Tseytin.assert_vector key_formula enc.Tseytin.input_vars inputs;
  Tseytin.assert_vector key_formula enc.Tseytin.output_vars outputs

let observe s dip =
  let outputs = Locked.query_oracle s.locked dip in
  constrain_io s ~inputs:dip ~outputs

let candidate_key s =
  sync s.key_tracked;
  let solver = s.key_tracked.solver in
  let outcome = Cdcl.solve ~budget:(budget s) solver in
  match outcome with
  | Cdcl.Sat -> `Key (Array.map (fun v -> Cdcl.value solver v) s.key_vars)
  | Cdcl.Unsat -> `None
  | Cdcl.Unknown -> `Timeout

let iterations s = s.iteration_count
let solver_stats s = s.stats
let clause_var_ratio s = Formula.ratio s.miter.Miter.formula
