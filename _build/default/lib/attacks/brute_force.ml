module Locked = Fl_locking.Locked

type result = {
  key : bool array option;
  keys_tried : int;
  wall_time : float;
}

let run ?(vectors = 64) ?(max_keys = 1 lsl 20) locked =
  let start = Unix.gettimeofday () in
  let nk = Locked.num_key_bits locked in
  if nk >= 62 || 1 lsl nk > max_keys then
    invalid_arg "Brute_force.run: key space too large";
  let total = 1 lsl nk in
  let rec go i =
    if i >= total then None, total
    else begin
      let key = Array.init nk (fun b -> i land (1 lsl b) <> 0) in
      if Locked.key_matches ~vectors locked ~key then Some key, i + 1 else go (i + 1)
    end
  in
  let key, keys_tried = go 0 in
  { key; keys_tried; wall_time = Unix.gettimeofday () -. start }
