lib/attacks/cycsat.mli: Fl_cnf Fl_locking Fl_netlist Sat_attack
