lib/attacks/session.ml: Array Fl_cnf Fl_locking Fl_netlist Fl_sat Unix
