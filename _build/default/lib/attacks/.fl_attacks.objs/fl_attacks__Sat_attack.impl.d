lib/attacks/sat_attack.ml: Fl_locking Fl_netlist Fl_sat Format Session Unix
