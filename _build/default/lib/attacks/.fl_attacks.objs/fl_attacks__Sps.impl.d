lib/attacks/sps.ml: Array Fl_locking Fl_netlist Float List
