lib/attacks/sps.mli: Fl_locking Fl_netlist
