lib/attacks/session.mli: Fl_cnf Fl_locking Fl_sat
