lib/attacks/removal.mli: Fl_locking Fl_netlist
