lib/attacks/brute_force.mli: Fl_locking
