lib/attacks/brute_force.ml: Array Fl_locking Unix
