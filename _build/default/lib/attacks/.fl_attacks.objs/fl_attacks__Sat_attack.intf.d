lib/attacks/sat_attack.mli: Fl_cnf Fl_locking Fl_sat Format
