lib/attacks/cycsat.ml: Array Fl_cnf Fl_locking Fl_netlist Hashtbl List Sat_attack
