lib/attacks/removal.ml: Array Fl_locking Fl_netlist Random Sps
