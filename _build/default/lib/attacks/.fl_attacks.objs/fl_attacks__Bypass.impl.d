lib/attacks/bypass.ml: Array Fl_cnf Fl_locking Fl_netlist Fl_sat Format Fun List Random Unix
