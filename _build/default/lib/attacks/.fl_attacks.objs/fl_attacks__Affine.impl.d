lib/attacks/affine.ml: Array Fl_locking Fl_netlist Random
