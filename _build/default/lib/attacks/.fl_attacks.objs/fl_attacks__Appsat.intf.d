lib/attacks/appsat.mli: Fl_locking Format
