lib/attacks/bypass.mli: Fl_locking Fl_netlist Format
