lib/attacks/affine.mli: Fl_locking
