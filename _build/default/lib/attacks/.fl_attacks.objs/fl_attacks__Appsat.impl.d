lib/attacks/appsat.ml: Fl_locking Fl_netlist Format List Random Session Unix
