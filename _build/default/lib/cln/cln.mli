(** Key-configurable logarithmic networks (CLN) — §3.1 of the paper.

    A CLN permutes (and optionally negates) N wires under key control.  It is
    the routing half of a PLR.  This module builds the MUX/XOR netlist inside
    a circuit builder, decodes keys into their semantic action, and samples
    routable (permutation-realising) keys for lock generation. *)

type inverter_placement =
  | No_inverters
  | Outputs_only  (** one key-configurable inverter per output wire *)
  | Per_stage  (** one per wire after every switch stage *)

type spec = {
  n : int;  (** wire count, power of two *)
  topology : Topology.kind;
  style : Switch_box.style;
  inverters : inverter_placement;
  planes : int;
      (** vertically cascaded copies (the P of LOG(N,M,P)); each output picks
          its plane through key-selected MUXes.  [planes > 1] requires
          [inverters <> Per_stage]. *)
}

(** Paper defaults: near-non-blocking banyan, independent MUX boxes,
    output inverters, single plane. *)
val default_spec : n:int -> spec

val blocking_spec : n:int -> spec
(** Shuffle-based blocking CLN of Fig. 3 (omega topology). *)

(** [log_nmp_spec ~n ~m ~p] — the general Shyy–Lea LOG(N,m,p) network:
    banyan with [m] extra stages, [p] vertical copies (e.g. the paper's
    strictly non-blocking LOG(64,3,6)). *)
val log_nmp_spec : n:int -> m:int -> p:int -> spec

val topology : spec -> Topology.t

(** Total key bits: per-plane switch-box bits + plane-select bits +
    inverter bits. *)
val num_key_bits : spec -> int

(** Switch-boxes over all planes (selection MUXes not included). *)
val num_switch_boxes : spec -> int

(** Semantic action of a key.  [source.(j)] is the input index whose value
    drives output [j] (with [Independent] boxes an input may drive several
    outputs — a broadcast); [inverted.(j)] tells whether output [j] is
    negated. *)
type action = { source : int array; inverted : bool array }

(** [decode spec ~key] computes the action.
    @raise Invalid_argument on a key-length mismatch. *)
val decode : spec -> key:bool array -> action

val is_permutation : action -> bool

(** [random_routable_key spec rng] draws a key whose action is a uniform
    sample over realisable {e permutations} (switch-boxes restricted to
    pass/exchange; inverter bits uniform). *)
val random_routable_key : spec -> Random.State.t -> bool array

(** [key_for_identity spec] is the all-pass, no-inversion key. *)
val key_for_identity : spec -> bool array

(** [set_inversions spec key ~inverted] adjusts the inverter bits of a
    routable (permutation) key in place until {!decode}'s inversion pattern
    equals [inverted] — each inverter bit toggles exactly one output under a
    permutation configuration, so a greedy sweep converges.
    @raise Invalid_argument when the spec lacks the inverters to realise the
    pattern. *)
val set_inversions : spec -> bool array -> inverted:bool array -> unit

(** [inverter_bit_indices spec] is the positions within the key vector that
    control inverters (in traversal order).  With [Per_stage] placement these
    are interleaved with the switch-box bits, so callers that adjust
    inversions must use this list rather than assume a contiguous suffix. *)
val inverter_bit_indices : spec -> int list

(** [key_of_swaps spec swaps] is the key whose switch-box [i] (in traversal
    order: layer by layer, box by box) passes or exchanges according to
    [swaps.(i)], with every inverter off.
    @raise Invalid_argument unless [swaps] has one entry per switch-box. *)
val key_of_swaps : spec -> bool array -> bool array

(** [build spec builder ~inputs ~keys] compiles the CLN.  [inputs] are node
    ids carrying the N wires; [keys] supplies [num_key_bits spec] key-input
    node ids.  Returns the N output node ids (position order). *)
val build :
  spec ->
  Fl_netlist.Circuit.Builder.t ->
  inputs:int array ->
  keys:int array ->
  int array

(** [standalone spec] packages the CLN as a locked circuit of its own:
    N primary inputs, key inputs, N outputs — the object attacked in
    Table 2. *)
val standalone : ?name:string -> spec -> Fl_netlist.Circuit.t

(** [apply_action action values] routes concrete values the way the netlist
    would (for cross-checking build vs decode). *)
val apply_action : action -> bool array -> bool array

val pp_spec : Format.formatter -> spec -> unit
