type layer = Route of int array | Switch

type kind =
  | Omega
  | Butterfly
  | Baseline
  | Log_extra of int
  | Near_non_blocking
  | Benes

type t = { n : int; kind : kind; layers : layer list; switch_layers : int }

let log2_exact n =
  let rec go k m = if m = n then Some k else if m > n then None else go (k + 1) (m * 2) in
  if n <= 0 then None else go 0 1

(* Perfect shuffle on m-bit indices: left-rotate.  The wire at position j
   moves to position sigma(j); the Route array is its inverse. *)
let shuffle_route n m =
  let sigma j = ((j lsl 1) lor (j lsr (m - 1))) land (n - 1) in
  let route = Array.make n 0 in
  for j = 0 to n - 1 do
    route.(sigma j) <- j
  done;
  route

(* Permutation bringing wires that differ in bit [k] onto adjacent pairs:
   pi(i) moves bit k of i into bit 0, shifting bits 0..k-1 up by one.
   Route array is pi^-1: the wire landing at position p came from pi^-1(p). *)
let pair_bit_route n k =
  let pi i =
    let bit = (i lsr k) land 1 in
    let low = i land ((1 lsl k) - 1) in
    let high = i lsr (k + 1) in
    (high lsl (k + 1)) lor (low lsl 1) lor bit
  in
  let route = Array.make n 0 in
  for i = 0 to n - 1 do
    route.(pi i) <- i
  done;
  route

let inverse_route route =
  let n = Array.length route in
  let inv = Array.make n 0 in
  for i = 0 to n - 1 do
    inv.(route.(i)) <- i
  done;
  inv

(* One butterfly stage on bit k, keeping positions natural afterwards:
   route in, switch, route back. *)
let stage_on_bit n k =
  if k = 0 then [ Switch ]
  else begin
    let r = pair_bit_route n k in
    [ Route r; Switch; Route (inverse_route r) ]
  end

let make kind ~n =
  let m =
    match log2_exact n with
    | Some m when m >= 1 -> m
    | Some _ | None ->
      invalid_arg "Topology.make: n must be a power of two >= 2"
  in
  let butterfly_desc = List.init m (fun s -> stage_on_bit n (m - 1 - s)) in
  let ascending upto = List.init upto (fun s -> stage_on_bit n (s + 1)) in
  let layers =
    match kind with
    | Omega -> List.concat (List.init m (fun _ -> [ Route (shuffle_route n m); Switch ]))
    | Butterfly -> List.concat butterfly_desc
    | Baseline ->
      (* reversed butterfly: exchange distances 1, 2, …, N/2 *)
      List.concat (List.init m (fun s -> stage_on_bit n s))
    | Log_extra extra ->
      if extra < 0 || extra > m - 1 then
        invalid_arg "Topology.make: extra stages out of range";
      List.concat (butterfly_desc @ ascending extra)
    | Near_non_blocking ->
      let extra = max 0 (m - 2) in
      List.concat (butterfly_desc @ ascending extra)
    | Benes ->
      let extra = m - 1 in
      List.concat (butterfly_desc @ ascending extra)
  in
  let switch_layers =
    List.length (List.filter (function Switch -> true | Route _ -> false) layers)
  in
  { n; kind; layers; switch_layers }

let num_switch_boxes t = t.switch_layers * t.n / 2

let log_nmp_switch_boxes ~n ~m ~p =
  let rec log2 acc v = if v <= 1 then acc else log2 (acc + 1) (v / 2) in
  let stages = log2 0 n + m in
  let plane = stages * n / 2 in
  (* Output selection: each of the n outputs picks one of p planes through a
     tree of (p - 1) 2:1 MUXes = (p - 1) / 2 switch-box equivalents each
     (a 2x2 box is two MUXes). *)
  (p * plane) + (n * (p - 1) / 2)

let kind_to_string = function
  | Omega -> "omega"
  | Butterfly -> "butterfly"
  | Baseline -> "baseline"
  | Log_extra m -> Printf.sprintf "log-extra-%d" m
  | Near_non_blocking -> "near-non-blocking"
  | Benes -> "benes"

let thread t values ~switch =
  let current = ref (Array.copy values) in
  let layer_index = ref 0 in
  List.iter
    (fun layer ->
      match layer with
      | Route r -> current := Array.map (fun src -> !current.(src)) r
      | Switch ->
        let next = Array.copy !current in
        for box = 0 to (t.n / 2) - 1 do
          let a = !current.(2 * box) and b = !current.((2 * box) + 1) in
          let a', b' = switch ~layer_index:!layer_index ~box a b in
          next.(2 * box) <- a';
          next.((2 * box) + 1) <- b'
        done;
        current := next;
        incr layer_index)
    t.layers;
  !current
