module Gate = Fl_netlist.Gate
module Circuit = Fl_netlist.Circuit

type style = Independent | Swap

let key_bits = function Independent -> 2 | Swap -> 1
let mux_count = function Independent | Swap -> 2

let decode style bits (a, b) =
  match style, bits with
  | Independent, [| s0; s1 |] ->
    (* out0 = s0 ? b : a;  out1 = s1 ? a : b *)
    (if s0 then b else a), (if s1 then a else b)
  | Swap, [| s |] -> if s then b, a else a, b
  | (Independent | Swap), _ ->
    invalid_arg "Switch_box.decode: wrong number of key bits"

let is_permutation style bits =
  match style, bits with
  | Independent, [| s0; s1 |] -> s0 = s1
  | Swap, [| _ |] -> true
  | (Independent | Swap), _ ->
    invalid_arg "Switch_box.is_permutation: wrong number of key bits"

let config_for_swap style ~swap =
  match style with
  | Independent -> [| swap; swap |]
  | Swap -> [| swap |]

let build style builder ~key_ids ~a ~b =
  match style, key_ids with
  | Independent, [| k0; k1 |] ->
    (* Mux fanins [s; x; y]: s=0 -> x.  out0: k0=0 -> a; out1: k1=0 -> b. *)
    let o0 = Circuit.Builder.add builder Gate.Mux [| k0; a; b |] in
    let o1 = Circuit.Builder.add builder Gate.Mux [| k1; b; a |] in
    o0, o1
  | Swap, [| k |] ->
    let o0 = Circuit.Builder.add builder Gate.Mux [| k; a; b |] in
    let o1 = Circuit.Builder.add builder Gate.Mux [| k; b; a |] in
    o0, o1
  | (Independent | Swap), _ ->
    invalid_arg "Switch_box.build: wrong number of key ids"

let style_to_string = function Independent -> "independent" | Swap -> "swap"
