(** 2×2 switch-boxes built from key-driven MUXes.

    [Independent] is the paper's construction: each output is a 2:1 MUX over
    both inputs with its own key bit, so a box consumes two key bits and its
    configuration space includes the two broadcasts — the attacker cannot
    assume the box is a permutation.  [Swap] shares one select between the
    two MUXes (pass/exchange only), halving the key bits; it is kept as an
    ablation point. *)

type style = Independent | Swap

(** Key bits consumed by one box. *)
val key_bits : style -> int

(** MUX2 gate count of one box (for PPA accounting). *)
val mux_count : style -> int

(** [decode style bits (a, b)] is the pair of outputs as selections of the
    inputs, given the box's key bits ([bits] has length [key_bits style]).
    Convention: all-zero keys pass straight through. *)
val decode : style -> bool array -> 'a * 'a -> 'a * 'a

(** [is_permutation style bits] — whether this configuration routes both
    inputs (no broadcast). *)
val is_permutation : style -> bool array -> bool

(** [config_for_swap style ~swap] is the canonical key-bit pattern realising
    pass ([swap = false]) or exchange ([swap = true]). *)
val config_for_swap : style -> swap:bool -> bool array

(** [build style builder ~key_ids ~a ~b] emits the MUXes into a circuit
    builder; [key_ids] supplies [key_bits style] key-input node ids.
    Returns the two output node ids. *)
val build :
  style ->
  Fl_netlist.Circuit.Builder.t ->
  key_ids:int array ->
  a:int ->
  b:int ->
  int * int

val style_to_string : style -> string
