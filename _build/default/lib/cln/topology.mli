(** Layered descriptions of log₂N switching networks.

    A network over [n] wires (n a power of two) is a sequence of layers:
    fixed [Route] permutations and [Switch] layers.  Every [Switch] layer
    places one 2×2 switch-box on each adjacent pair [(0,1), (2,3), …] of the
    current wire positions; the topologies differ only in the routing between
    switch layers — exactly the paper's observation that all blocking
    log₂N networks share the same (N/2)·log₂N switch-box count. *)

type layer =
  | Route of int array
      (** [Route r]: the wire arriving at position [i] comes from previous
          position [r.(i)] *)
  | Switch  (** a column of N/2 switch-boxes on adjacent pairs *)

type kind =
  | Omega  (** perfect-shuffle blocking network (Fig. 3) *)
  | Butterfly  (** banyan/butterfly blocking network *)
  | Baseline  (** baseline blocking network (reversed butterfly) *)
  | Log_extra of int
      (** banyan with [m] extra mirrored stages: LOG(N, m, 1) of Shyy–Lea.
          [Log_extra 0] is the plain banyan. *)
  | Near_non_blocking
      (** LOG(N, log₂N − 2, 1) — the paper's almost non-blocking CLN
          (Fig. 4) *)
  | Benes  (** rearrangeably non-blocking, 2·log₂N − 1 switch stages *)

type t = private {
  n : int;
  kind : kind;
  layers : layer list;
  switch_layers : int;  (** number of [Switch] layers *)
}

(** [make kind ~n] builds the layered description.
    @raise Invalid_argument unless [n] is a power of two >= 2, or when the
    kind needs more stages than [n] allows. *)
val make : kind -> n:int -> t

(** Number of 2×2 switch-boxes: [switch_layers * n / 2]. *)
val num_switch_boxes : t -> int

(** [log_nmp_switch_boxes ~n ~m ~p] — switch-box count of a general
    Shyy–Lea LOG(N,m,p) network: [p] vertically cascaded planes of a banyan
    with [m] extra stages, plus the per-output p:1 selection multiplexers
    (counted in 2:1 equivalents).  Used to reproduce the paper's §3.1 cost
    argument that the strictly non-blocking LOG(64,3,6) is ~5x larger than a
    blocking CLN, motivating the p = 1 almost non-blocking choice. *)
val log_nmp_switch_boxes : n:int -> m:int -> p:int -> int

val kind_to_string : kind -> string

(** [apply_routes t sources] threads an array of per-position values through
    the network, calling [switch] for each switch layer with the pair values
    and the (layer, box) position, expecting the transformed pair. *)
val thread :
  t -> 'a array -> switch:(layer_index:int -> box:int -> 'a -> 'a -> 'a * 'a) -> 'a array
