module Gate = Fl_netlist.Gate
module Circuit = Fl_netlist.Circuit

type inverter_placement = No_inverters | Outputs_only | Per_stage

type spec = {
  n : int;
  topology : Topology.kind;
  style : Switch_box.style;
  inverters : inverter_placement;
  planes : int;
}

let default_spec ~n =
  {
    n;
    topology = Topology.Near_non_blocking;
    style = Switch_box.Independent;
    inverters = Outputs_only;
    planes = 1;
  }

let blocking_spec ~n =
  {
    n;
    topology = Topology.Omega;
    style = Switch_box.Independent;
    inverters = Outputs_only;
    planes = 1;
  }

let log_nmp_spec ~n ~m ~p =
  {
    n;
    topology = Topology.Log_extra m;
    style = Switch_box.Independent;
    inverters = Outputs_only;
    planes = p;
  }

let check_spec spec =
  if spec.planes < 1 then invalid_arg "Cln: planes must be >= 1";
  if spec.planes > 1 && spec.inverters = Per_stage then
    invalid_arg "Cln: per-stage inverters are only supported with a single plane"

let ceil_log2 v =
  let rec go k m = if m >= v then k else go (k + 1) (m * 2) in
  go 0 1

(* Select bits consumed per output when picking among the planes. *)
let select_bits spec = if spec.planes = 1 then 0 else max 1 (ceil_log2 spec.planes)

let topology spec = Topology.make spec.topology ~n:spec.n

let num_switch_boxes spec =
  spec.planes * Topology.num_switch_boxes (topology spec)

let num_key_bits spec =
  check_spec spec;
  let topo = topology spec in
  let plane_switch_bits =
    Topology.num_switch_boxes topo * Switch_box.key_bits spec.style
  in
  let plane_inverter_bits =
    match spec.inverters with
    | Per_stage -> topo.Topology.switch_layers * spec.n
    | No_inverters | Outputs_only -> 0
  in
  let output_inverter_bits =
    match spec.inverters with Outputs_only -> spec.n | No_inverters | Per_stage -> 0
  in
  (spec.planes * (plane_switch_bits + plane_inverter_bits))
  + (spec.n * select_bits spec)
  + output_inverter_bits

(* The single traversal [build], [decode] and the key generators all use, so
   their key-bit consumption order can never diverge.  Key layout: per-plane
   switch (and per-stage inverter) bits in plane order, then the per-output
   plane-select bits, then the output inverter bits.  [switch ~kidx a b]
   consumes [Switch_box.key_bits style] bits starting at [kidx];
   [select ~kidx choices] consumes [select_bits spec]; [invert ~kidx v]
   consumes one. *)
let traverse spec values ~switch ~invert ~select =
  check_spec spec;
  let topo = topology spec in
  let bits_per_box = Switch_box.key_bits spec.style in
  let kctr = ref 0 in
  let take n =
    let i = !kctr in
    kctr := i + n;
    i
  in
  let run_plane () =
    let current = ref (Array.copy values) in
    let invert_all () =
      current := Array.map (fun v -> invert ~kidx:(take 1) v) !current
    in
    List.iter
      (fun layer ->
        match layer with
        | Topology.Route r -> current := Array.map (fun src -> !current.(src)) r
        | Topology.Switch ->
          let next = Array.copy !current in
          for box = 0 to (spec.n / 2) - 1 do
            let a = !current.(2 * box) and b = !current.((2 * box) + 1) in
            let kidx = take bits_per_box in
            let a', b' = switch ~kidx a b in
            next.(2 * box) <- a';
            next.((2 * box) + 1) <- b'
          done;
          current := next;
          (match spec.inverters with
           | Per_stage -> invert_all ()
           | No_inverters | Outputs_only -> ()))
      topo.Topology.layers;
    !current
  in
  let plane_outputs = Array.init spec.planes (fun _ -> run_plane ()) in
  let selected =
    if spec.planes = 1 then plane_outputs.(0)
    else
      Array.init spec.n (fun j ->
          let kidx = take (select_bits spec) in
          select ~kidx (Array.map (fun plane -> plane.(j)) plane_outputs))
  in
  let final =
    match spec.inverters with
    | Outputs_only -> Array.map (fun v -> invert ~kidx:(take 1) v) selected
    | No_inverters | Per_stage -> selected
  in
  final, !kctr

type action = { source : int array; inverted : bool array }

let decode spec ~key =
  if Array.length key <> num_key_bits spec then
    invalid_arg "Cln.decode: key length mismatch";
  let start = Array.init spec.n (fun i -> i, false) in
  let bits_per_box = Switch_box.key_bits spec.style in
  let sel_bits = select_bits spec in
  let result, consumed =
    traverse spec start
      ~switch:(fun ~kidx a b ->
        Switch_box.decode spec.style (Array.sub key kidx bits_per_box) (a, b))
      ~select:(fun ~kidx choices ->
        let index = ref 0 in
        for b = sel_bits - 1 downto 0 do
          index := (!index lsl 1) lor (if key.(kidx + b) then 1 else 0)
        done;
        (* Padding planes in the selection tree replicate plane 0. *)
        if !index < Array.length choices then choices.(!index) else choices.(0))
      ~invert:(fun ~kidx (src, inv) -> if key.(kidx) then src, not inv else src, inv)
  in
  assert (consumed = Array.length key);
  { source = Array.map fst result; inverted = Array.map snd result }

let is_permutation action =
  let n = Array.length action.source in
  let seen = Array.make n false in
  Array.for_all
    (fun src ->
      if seen.(src) then false
      else begin
        seen.(src) <- true;
        true
      end)
    action.source

let random_routable_key spec rng =
  let key = Array.make (num_key_bits spec) false in
  let dummy = Array.make spec.n () in
  (* All outputs select the same plane, so the combined action is that
     plane's permutation; the other planes carry decoy configurations. *)
  let chosen_plane =
    if spec.planes = 1 then 0 else Random.State.int rng spec.planes
  in
  let sel_bits = select_bits spec in
  let _, consumed =
    traverse spec dummy
      ~switch:(fun ~kidx () () ->
        let cfg = Switch_box.config_for_swap spec.style ~swap:(Random.State.bool rng) in
        Array.blit cfg 0 key kidx (Array.length cfg);
        (), ())
      ~select:(fun ~kidx _choices ->
        for b = 0 to sel_bits - 1 do
          key.(kidx + b) <- chosen_plane land (1 lsl b) <> 0
        done)
      ~invert:(fun ~kidx () ->
        key.(kidx) <- Random.State.bool rng;
        ())
  in
  assert (consumed = Array.length key);
  key

let key_for_identity spec = Array.make (num_key_bits spec) false

let inverter_bit_indices spec =
  let acc = ref [] in
  let dummy = Array.make spec.n () in
  let _, _ =
    traverse spec dummy
      ~switch:(fun ~kidx:_ () () -> (), ())
      ~select:(fun ~kidx:_ _ -> ())
      ~invert:(fun ~kidx () -> acc := kidx :: !acc)
  in
  List.rev !acc

let set_inversions spec key ~inverted =
  if Array.length inverted <> spec.n then
    invalid_arg "Cln.set_inversions: pattern length mismatch";
  let mismatches () =
    let action = decode spec ~key in
    let count = ref 0 in
    Array.iteri
      (fun j inv -> if inv <> inverted.(j) then incr count)
      action.inverted;
    !count
  in
  let current = ref (mismatches ()) in
  List.iter
    (fun idx ->
      if !current > 0 then begin
        key.(idx) <- not key.(idx);
        let after = mismatches () in
        if after < !current then current := after else key.(idx) <- not key.(idx)
      end)
    (inverter_bit_indices spec);
  if !current > 0 then
    invalid_arg "Cln.set_inversions: not enough inverters to realise the pattern"

let key_of_swaps spec swaps =
  if spec.planes <> 1 then
    invalid_arg "Cln.key_of_swaps: single-plane networks only";
  if Array.length swaps <> num_switch_boxes spec then
    invalid_arg "Cln.key_of_swaps: need one swap bit per switch-box";
  let key = Array.make (num_key_bits spec) false in
  let box = ref 0 in
  let dummy = Array.make spec.n () in
  let _, _ =
    traverse spec dummy
      ~switch:(fun ~kidx () () ->
        let cfg = Switch_box.config_for_swap spec.style ~swap:swaps.(!box) in
        incr box;
        Array.blit cfg 0 key kidx (Array.length cfg);
        (), ())
      ~select:(fun ~kidx:_ _ -> ())
      ~invert:(fun ~kidx:_ () -> ())
  in
  key

let build spec builder ~inputs ~keys =
  if Array.length inputs <> spec.n then invalid_arg "Cln.build: need n input wires";
  if Array.length keys <> num_key_bits spec then
    invalid_arg "Cln.build: key id count mismatch";
  let bits_per_box = Switch_box.key_bits spec.style in
  let sel_bits = select_bits spec in
  (* Plane selection: a MUX tree over the plane outputs, padded with plane 0
     (matching decode's convention). *)
  let mux_tree select_ids data =
    let padded_len = 1 lsl sel_bits in
    let padded =
      Array.init padded_len (fun i ->
          if i < Array.length data then data.(i) else data.(0))
    in
    let rec reduce values level =
      match Array.length values with
      | 1 -> values.(0)
      | len ->
        let next =
          Array.init (len / 2) (fun i ->
              Circuit.Builder.add builder Gate.Mux
                [| select_ids.(level); values.(2 * i); values.((2 * i) + 1) |])
        in
        reduce next (level + 1)
    in
    reduce padded 0
  in
  let outputs, consumed =
    traverse spec inputs
      ~switch:(fun ~kidx a b ->
        Switch_box.build spec.style builder
          ~key_ids:(Array.sub keys kidx bits_per_box)
          ~a ~b)
      ~select:(fun ~kidx choices ->
        mux_tree (Array.sub keys kidx sel_bits) choices)
      ~invert:(fun ~kidx wire ->
        Circuit.Builder.add builder Gate.Xor [| wire; keys.(kidx) |])
  in
  assert (consumed = Array.length keys);
  outputs

let standalone ?name spec =
  let name =
    match name with
    | Some n -> n
    | None ->
      Printf.sprintf "cln-%s-%d" (Topology.kind_to_string spec.topology) spec.n
  in
  let b = Circuit.Builder.create ~name () in
  let inputs =
    Array.init spec.n (fun i -> Circuit.Builder.input ~name:(Printf.sprintf "x%d" i) b)
  in
  let keys =
    Array.init (num_key_bits spec) (fun i ->
        Circuit.Builder.key_input ~name:(Printf.sprintf "keyinput%d" i) b)
  in
  let outputs = build spec b ~inputs ~keys in
  Array.iteri
    (fun i out -> Circuit.Builder.output b (Printf.sprintf "y%d" i) out)
    outputs;
  Circuit.of_builder b

let apply_action action values =
  Array.mapi (fun j src -> values.(src) <> action.inverted.(j)) action.source

let pp_spec fmt spec =
  Format.fprintf fmt "CLN n=%d %s boxes=%s inverters=%s (%d SwB, %d key bits)"
    spec.n
    (Topology.kind_to_string spec.topology)
    (Switch_box.style_to_string spec.style)
    (match spec.inverters with
     | No_inverters -> "none"
     | Outputs_only -> "outputs"
     | Per_stage -> "per-stage")
    (num_switch_boxes spec) (num_key_bits spec)
