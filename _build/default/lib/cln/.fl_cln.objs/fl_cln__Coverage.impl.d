lib/cln/coverage.ml: Array Cln Format Hashtbl Printf Random Topology
