lib/cln/switch_box.ml: Fl_netlist
