lib/cln/topology.ml: Array List Printf
