lib/cln/topology.mli:
