lib/cln/coverage.mli: Cln Format
