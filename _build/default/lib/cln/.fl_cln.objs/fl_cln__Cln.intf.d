lib/cln/cln.mli: Fl_netlist Format Random Switch_box Topology
