lib/cln/cln.ml: Array Fl_netlist Format List Printf Random Switch_box Topology
