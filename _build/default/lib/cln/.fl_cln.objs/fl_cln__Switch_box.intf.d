lib/cln/switch_box.mli: Fl_netlist
