(* The MTJ crossbar scales with 2^k storage cells, but the CMOS periphery
   (sense amplifier, word-line decoder) dominates for small k — which is why
   the paper reports negligible overhead up to k = 5. *)
let estimate ~k =
  if k < 1 || k > 8 then invalid_arg "Stt_lut.estimate: k out of range";
  let cells = float_of_int (1 lsl k) in
  {
    Cell_library.area_um2 = 0.035 +. (0.0022 *. cells);
    power_nw = 1.6 +. (0.09 *. cells);  (* near-zero leakage: low slope *)
    delay_ns = 0.095 +. (0.006 *. float_of_int k);  (* GHz-class read *)
  }

let cmos_equivalent ?(library = Cell_library.generic_32nm) k =
  if k < 1 then invalid_arg "Stt_lut.cmos_equivalent: k out of range";
  (* A k-input basic gate decomposes into (k-1) 2-input cells in a tree of
     depth ceil(log2 k); average over the AND/OR/XOR mix. *)
  let slices = float_of_int (max 1 (k - 1)) in
  let depth = float_of_int (int_of_float (Float.ceil (Float.log2 (float_of_int (max 2 k))))) in
  let avg f =
    (f (Cell_library.cell_of library Fl_netlist.Gate.And ~fanin:2)
     +. f (Cell_library.cell_of library Fl_netlist.Gate.Or ~fanin:2)
     +. f (Cell_library.cell_of library Fl_netlist.Gate.Xor ~fanin:2))
    /. 3.0
  in
  {
    Cell_library.area_um2 = avg (fun c -> c.Cell_library.area_um2) *. slices;
    power_nw = avg (fun c -> c.Cell_library.power_nw) *. slices;
    delay_ns = avg (fun c -> c.Cell_library.delay_ns) *. depth;
  }

let overhead ?library k =
  let lut = estimate ~k in
  let cmos = cmos_equivalent ?library k in
  ( lut.Cell_library.area_um2 /. cmos.Cell_library.area_um2,
    lut.Cell_library.power_nw /. cmos.Cell_library.power_nw,
    lut.Cell_library.delay_ns /. cmos.Cell_library.delay_ns )
