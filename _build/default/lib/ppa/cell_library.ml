module Gate = Fl_netlist.Gate

type cell = { area_um2 : float; power_nw : float; delay_ns : float }

type entry = {
  inv : cell;
  buf : cell;
  nand2 : cell;
  nor2 : cell;
  and2 : cell;
  or2 : cell;
  xor2 : cell;
  xnor2 : cell;
  mux2 : cell;
}

type t = entry

(* Calibrated so a shuffle-based N=32 CLN (160 MUX2 + 32 XOR2) comes out
   near the paper's 10.1 um² / 448 nW / 0.82 ns (Table 3). *)
let generic_32nm =
  let c a p d = { area_um2 = a; power_nw = p; delay_ns = d } in
  {
    inv = c 0.020 0.9 0.020;
    buf = c 0.025 1.1 0.030;
    nand2 = c 0.030 1.4 0.032;
    nor2 = c 0.030 1.4 0.036;
    and2 = c 0.040 1.8 0.045;
    or2 = c 0.040 1.8 0.048;
    xor2 = c 0.062 2.8 0.075;
    xnor2 = c 0.062 2.8 0.075;
    mux2 = c 0.051 2.2 0.140;
  }

let zero = { area_um2 = 0.0; power_nw = 0.0; delay_ns = 0.0 }

let add a b =
  {
    area_um2 = a.area_um2 +. b.area_um2;
    power_nw = a.power_nw +. b.power_nw;
    delay_ns = a.delay_ns +. b.delay_ns;
  }

let cell_of lib kind ~fanin =
  ignore fanin;
  match kind with
  | Gate.Input | Gate.Key_input | Gate.Const _ -> zero
  | Gate.Buf -> lib.buf
  | Gate.Not -> lib.inv
  | Gate.And -> lib.and2
  | Gate.Nand -> lib.nand2
  | Gate.Or -> lib.or2
  | Gate.Nor -> lib.nor2
  | Gate.Xor -> lib.xor2
  | Gate.Xnor -> lib.xnor2
  | Gate.Mux -> lib.mux2
  | Gate.Lut tt ->
    (* Costed by the STT-LUT model in Stt_lut; fall back to an equivalent
       MUX-tree estimate here so plain LUT gates are never free. *)
    let k = max 1 (int_of_float (Float.round (Float.log2 (float_of_int (Array.length tt))))) in
    let muxes = float_of_int ((1 lsl k) - 1) in
    {
      area_um2 = lib.mux2.area_um2 *. muxes;
      power_nw = lib.mux2.power_nw *. muxes;
      delay_ns = lib.mux2.delay_ns *. float_of_int k;
    }

let scale lib ~area ~power ~delay =
  let s c =
    {
      area_um2 = c.area_um2 *. area;
      power_nw = c.power_nw *. power;
      delay_ns = c.delay_ns *. delay;
    }
  in
  {
    inv = s lib.inv;
    buf = s lib.buf;
    nand2 = s lib.nand2;
    nor2 = s lib.nor2;
    and2 = s lib.and2;
    or2 = s lib.or2;
    xor2 = s lib.xor2;
    xnor2 = s lib.xnor2;
    mux2 = s lib.mux2;
  }
