(** Standard-cell area/power/delay data.

    The paper evaluates with the Synopsys generic 32nm educational library;
    that library is not redistributable, so the default here is an analytic
    model {e calibrated} so that the CLN figures land in the range of the
    paper's Table 3 (e.g. a shuffle-based N=32 CLN around 10 um² / 450 nW /
    0.8 ns).  Relative comparisons — blocking vs non-blocking, CLN vs PLR,
    STT-LUT vs CMOS — are what the experiments reproduce. *)

type cell = {
  area_um2 : float;
  power_nw : float;  (** average switching + leakage at nominal activity *)
  delay_ns : float;  (** pin-to-pin *)
}

type t

(** The calibrated pseudo-32nm library. *)
val generic_32nm : t

(** [cell_of library kind ~fanin] is the cost of one library cell
    implementing a 2-input slice of [kind]; n-ary gates are decomposed by
    {!Ppa}.  LUT kinds are costed via {!Stt_lut}. *)
val cell_of : t -> Fl_netlist.Gate.t -> fanin:int -> cell

(** [scale library ~area ~power ~delay] derives a re-scaled library (for
    technology exploration examples). *)
val scale : t -> area:float -> power:float -> delay:float -> t

val zero : cell
val add : cell -> cell -> cell
