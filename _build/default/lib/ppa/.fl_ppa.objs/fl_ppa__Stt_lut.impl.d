lib/ppa/stt_lut.ml: Cell_library Fl_netlist Float
