lib/ppa/cell_library.ml: Array Fl_netlist Float
