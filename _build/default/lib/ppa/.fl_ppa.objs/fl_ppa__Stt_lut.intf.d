lib/ppa/stt_lut.mli: Cell_library
