lib/ppa/ppa.ml: Array Cell_library Fl_cln Fl_netlist Float Format Stt_lut
