lib/ppa/ppa.mli: Cell_library Fl_cln Fl_netlist Format
