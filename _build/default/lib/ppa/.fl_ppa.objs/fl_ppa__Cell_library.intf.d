lib/ppa/cell_library.mli: Fl_netlist
