(** Area/power/delay estimation of netlists, CLNs and locking overheads. *)

type estimate = {
  area_um2 : float;
  power_nw : float;
  delay_ns : float;  (** critical path; for cyclic netlists the longest
                         acyclic path (back edges skipped) *)
}

(** [of_circuit ?library ?use_stt_luts c] sums decomposed cell costs.  N-ary
    gates decompose into trees of 2-input cells; constant-table LUT gates are
    costed as STT-LUTs when [use_stt_luts] (default true), as MUX trees
    otherwise. *)
val of_circuit :
  ?library:Cell_library.t -> ?use_stt_luts:bool -> Fl_netlist.Circuit.t -> estimate

(** [of_cln spec] — the standalone CLN netlist (Table 3 rows). *)
val of_cln : ?library:Cell_library.t -> Fl_cln.Cln.spec -> estimate

(** [locking_overhead ~original locked] — (area ratio, power ratio, delay
    ratio) of the locked over the original netlist. *)
val locking_overhead :
  ?library:Cell_library.t ->
  original:Fl_netlist.Circuit.t ->
  Fl_netlist.Circuit.t ->
  float * float * float

val pp : Format.formatter -> estimate -> unit
