(** Spin-Transfer-Torque LUT model (Fig. 5 of the paper).

    Full-Lock's LUT layer uses STT-MTJ based look-up tables: GHz-class
    speed, near-zero leakage, CMOS-compatible.  The paper's Fig. 5 shows
    that up to 5 inputs their power/delay/area overhead versus standard
    CMOS cells is negligible and grows sharply afterwards; this analytic
    model reproduces that shape. *)

(** [estimate ~k] — one STT-LUT with [k] inputs. *)
val estimate : k:int -> Cell_library.cell

(** [cmos_equivalent k] — the average CMOS standard-cell cost of a [k]-input
    basic gate (decomposed into 2-input cells), the baseline Fig. 5 compares
    against. *)
val cmos_equivalent : ?library:Cell_library.t -> int -> Cell_library.cell

(** [overhead k] — (area ratio, power ratio, delay ratio) of STT-LUT vs the
    CMOS equivalent; close to 1.0 for k <= 5. *)
val overhead : ?library:Cell_library.t -> int -> float * float * float
