lib/core/fulllock.ml: Array Fl_cln Fl_locking Fl_netlist Format Hashtbl List Printf Random String
