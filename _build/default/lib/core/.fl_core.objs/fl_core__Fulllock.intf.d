lib/core/fulllock.mli: Fl_cln Fl_locking Fl_netlist Format Random
