(** Full-Lock: SAT-hard logic locking with fully programmable logic and
    routing blocks (the paper's §3).

    One PLR =
    - a group of selected wires whose {e leading} gates may be negated
      ("twisted" into the network, §3.2),
    - a key-configurable logarithmic network (CLN) routing those wires under
      a secret permutation with key-configurable inverters, and
    - a LUT layer replacing the gates {e driven by} the CLN outputs with
      key-programmable LUTs.

    With the correct key the CLN applies the permutation and inversions that
    reconstruct every original wire, and each LUT holds its gate's truth
    table — the locked netlist is functionally the original by
    construction. *)

type config = {
  cln : Fl_cln.Cln.spec;
  lut_layer : bool;  (** replace CLN-output consumer gates with keyed LUTs *)
  negate_leading : bool;
      (** randomly negate selected leading gates; compensated by the CLN's
          key-configurable inverters (requires them) *)
  max_lut_inputs : int;  (** consumer gates above this fan-in keep their logic *)
}

(** Paper-default PLR of size [n]: near-non-blocking CLN, LUT layer on,
    leading-gate negation on, LUTs up to 5 inputs. *)
val default_config : n:int -> config

(** Blocking-CLN variant (shuffle network), for the Table 2/3 comparisons. *)
val blocking_config : n:int -> config

(** Key bits one PLR consumes on a circuit (CLN bits; LUT bits depend on the
    consumer gates met at insertion time, so they are reported on the result
    instead). *)
val cln_key_bits : config -> int

type insertion_policy =
  [ `Acyclic  (** selected wires mutually independent — no cycles *)
  | `Cyclic  (** wires picked among connected logic — cycles likely *) ]

(** [lock rng ?policy ~configs c] inserts one PLR per config (all in one
    pass, over disjoint wire groups) and returns the locked bundle.
    @raise Invalid_argument when wires cannot be selected, a config's [n]
    exceeds available gates, or [negate_leading] is set without
    inverters. *)
val lock :
  Random.State.t ->
  ?policy:insertion_policy ->
  configs:config list ->
  Fl_netlist.Circuit.t ->
  Fl_locking.Locked.t

(** [lock_one rng ?policy ~n c] — single PLR with {!default_config}. *)
val lock_one :
  Random.State.t ->
  ?policy:insertion_policy ->
  n:int ->
  Fl_netlist.Circuit.t ->
  Fl_locking.Locked.t

(** [standalone_cln_lock spec rng] wraps a bare CLN as a locked circuit whose
    oracle is the CLN under a secret routable key — the object of the
    Table 2 attack experiments. *)
val standalone_cln_lock : Fl_cln.Cln.spec -> Random.State.t -> Fl_locking.Locked.t

(** [parse_plr_sizes "2x16 + 1x8"] is [[16; 16; 8]] — helper for
    reproducing Table 5 rows ("2×16×16 + 1×8×8" means two PLRs with 16-wire
    CLNs plus one with an 8-wire CLN). *)
val parse_plr_sizes : string -> int list

val pp_config : Format.formatter -> config -> unit
