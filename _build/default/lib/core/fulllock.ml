module Gate = Fl_netlist.Gate
module Circuit = Fl_netlist.Circuit
module Cln = Fl_cln.Cln
module Locked = Fl_locking.Locked
module Util = Fl_locking.Insertion_util
module Pass = Util.Pass

type config = {
  cln : Cln.spec;
  lut_layer : bool;
  negate_leading : bool;
  max_lut_inputs : int;
}

let default_config ~n =
  { cln = Cln.default_spec ~n; lut_layer = true; negate_leading = true; max_lut_inputs = 5 }

let blocking_config ~n = { (default_config ~n) with cln = Cln.blocking_spec ~n }

let cln_key_bits config = Cln.num_key_bits config.cln

type insertion_policy = [ `Acyclic | `Cyclic ]

(* Insert one PLR over the already-mapped wire group. *)
let insert_plr p rng config (wires : int array) =
  let b = Pass.builder p in
  let n = config.cln.Cln.n in
  assert (Array.length wires = n);
  let mapped = Array.map (fun w -> Pass.wire p w) wires in
  (* 1. Twist: negate some leading gates. *)
  let inv_lead = Array.make n false in
  if config.negate_leading then
    Array.iteri
      (fun i mid ->
        let kind = Circuit.Builder.kind_of b mid in
        if Gate.is_negatable kind && Random.State.bool rng then begin
          Circuit.Builder.set_kind b mid (Gate.negate kind);
          inv_lead.(i) <- true
        end)
      mapped;
  (* 2. CLN key: random routable permutation, inverters set to compensate
     the negations. *)
  let key = Cln.random_routable_key config.cln rng in
  let action = Cln.decode config.cln ~key in
  let needed = Array.map (fun src -> inv_lead.(src)) action.Cln.source in
  (try Cln.set_inversions config.cln key ~inverted:needed
   with Invalid_argument _ ->
     invalid_arg "Fulllock: could not compensate leading-gate negations");
  let action = Cln.decode config.cln ~key in
  assert (Array.for_all2 (fun a b -> a = b) action.Cln.inverted
            (Array.map (fun src -> inv_lead.(src)) action.Cln.source));
  (* 3. Build the CLN. *)
  let key_ids = Util.Key_bag.fresh_vector (Pass.bag p) key in
  let barrier = Pass.snapshot p in
  let outs = Cln.build config.cln b ~inputs:mapped ~keys:key_ids in
  (* 4. Rewire every consumer of wire source(j) to CLN output j. *)
  Array.iteri
    (fun j out ->
      Pass.redirect_wire ~limit:barrier p ~from_id:mapped.(action.Cln.source.(j))
        ~to_id:out)
    outs;
  (* 5. LUT layer: gates now reading CLN outputs become keyed LUTs. *)
  if config.lut_layer then begin
    let consumers = Hashtbl.create 16 in
    let out_set = Hashtbl.create 16 in
    Array.iter (fun o -> Hashtbl.replace out_set o ()) outs;
    for id = 0 to barrier - 1 do
      if Array.exists (fun f -> Hashtbl.mem out_set f) (Circuit.Builder.fanins_of b id)
      then Hashtbl.replace consumers id ()
    done;
    Hashtbl.iter
      (fun gid () ->
        let kind = Circuit.Builder.kind_of b gid in
        let fanins = Circuit.Builder.fanins_of b gid in
        let arity = Array.length fanins in
        match kind with
        | Gate.Input | Gate.Key_input | Gate.Const _ -> ()
        | Gate.Buf | Gate.Not | Gate.And | Gate.Nand | Gate.Or | Gate.Nor
        | Gate.Xor | Gate.Xnor | Gate.Mux | Gate.Lut _ ->
          if arity >= 1 && arity <= config.max_lut_inputs then begin
            let truth_table = Gate.truth_table kind ~arity in
            let lut = Util.keyed_lut b (Pass.bag p) ~addr:fanins ~truth_table in
            Circuit.Builder.replace b gid Gate.Buf [| lut |]
          end)
      consumers
  end

let validate_config config =
  if config.negate_leading && config.cln.Cln.inverters = Cln.No_inverters then
    invalid_arg "Fulllock.lock: negate_leading requires CLN inverters";
  if config.max_lut_inputs < 1 then invalid_arg "Fulllock.lock: max_lut_inputs < 1"

let lock rng ?(policy = `Acyclic) ~configs orig =
  if configs = [] then invalid_arg "Fulllock.lock: no PLR configs";
  List.iter validate_config configs;
  let total = List.fold_left (fun acc c -> acc + c.cln.Cln.n) 0 configs in
  let selection_policy =
    match policy with `Acyclic -> `Independent | `Cyclic -> `Connected
  in
  let wires =
    Util.select_wires orig rng ~count:total ~policy:selection_policy
  in
  let p = Pass.start ~name:"fulllock" orig in
  let offset = ref 0 in
  List.iter
    (fun config ->
      let group = Array.sub wires !offset config.cln.Cln.n in
      offset := !offset + config.cln.Cln.n;
      insert_plr p rng config group)
    configs;
  Pass.finish p ~scheme:"full-lock"

let lock_one rng ?policy ~n orig = lock rng ?policy ~configs:[ default_config ~n ] orig

let standalone_cln_lock spec rng =
  let locked = Cln.standalone spec in
  let correct_key = Cln.random_routable_key spec rng in
  let action = Cln.decode spec ~key:correct_key in
  (* Oracle: the fixed permutation + inversions the secret key realises. *)
  let b = Circuit.Builder.create ~name:"cln-oracle" () in
  let inputs =
    Array.init spec.Cln.n (fun i -> Circuit.Builder.input ~name:(Printf.sprintf "x%d" i) b)
  in
  Array.iteri
    (fun j src ->
      let driver =
        if action.Cln.inverted.(j) then
          Circuit.Builder.add b Gate.Not [| inputs.(src) |]
        else Circuit.Builder.add b Gate.Buf [| inputs.(src) |]
      in
      Circuit.Builder.output b (Printf.sprintf "y%d" j) driver)
    action.Cln.source;
  {
    Locked.locked;
    oracle = Circuit.of_builder b;
    correct_key;
    scheme = Printf.sprintf "cln-%s" (Fl_cln.Topology.kind_to_string spec.Cln.topology);
  }

let parse_plr_sizes text =
  (* "2x16 + 1x8" -> [16; 16; 8] *)
  String.split_on_char '+' text
  |> List.concat_map (fun part ->
         let part = String.trim part in
         if part = "" then []
         else
           match String.split_on_char 'x' (String.lowercase_ascii part) with
           | [ count; size ] ->
             let count = int_of_string (String.trim count) in
             let size = int_of_string (String.trim size) in
             List.init count (fun _ -> size)
           | [ size ] -> [ int_of_string (String.trim size) ]
           | _ -> invalid_arg "Fulllock.parse_plr_sizes")

let pp_config fmt config =
  Format.fprintf fmt "PLR{%a%s%s}" Cln.pp_spec config.cln
    (if config.lut_layer then ", LUT layer" else "")
    (if config.negate_leading then ", twisted" else "")
