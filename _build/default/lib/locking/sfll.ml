module Gate = Fl_netlist.Gate
module Circuit = Fl_netlist.Circuit
module Pass = Insertion_util.Pass

(* Combinational "exactly [h] of [bits] are 1", built by the dynamic
   programming recurrence E(i,j) = (~b_i & E(i-1,j)) | (b_i & E(i-1,j-1)).
   O(w*h) two-input gates. *)
let exactly b ~bits ~h =
  let w = Array.length bits in
  let const v = Circuit.Builder.add b (Gate.Const v) [||] in
  (* row.(j) = E(i, j) for the current i; only 0..h tracked. *)
  let row = Array.make (h + 1) (const false) in
  row.(0) <- const true;
  for i = 0 to w - 1 do
    let d = bits.(i) in
    let nd = Circuit.Builder.add b Gate.Not [| d |] in
    let prev = Array.copy row in
    for j = 0 to h do
      let keep = Circuit.Builder.add b Gate.And [| nd; prev.(j) |] in
      row.(j) <-
        (if j = 0 then keep
         else begin
           let take = Circuit.Builder.add b Gate.And [| d; prev.(j - 1) |] in
           Circuit.Builder.add b Gate.Or [| keep; take |]
         end)
    done
  done;
  row.(h)

let lock rng ~key_bits ~h orig =
  let width = min key_bits (Circuit.num_inputs orig) in
  if width < 1 then invalid_arg "Sfll.lock: need at least one input";
  if h < 0 || h > width then invalid_arg "Sfll.lock: h out of range";
  let p = Pass.start ~name:"sfll" orig in
  let b = Pass.builder p in
  let secret = Array.init width (fun _ -> Random.State.bool rng) in
  let keys = Insertion_util.Key_bag.fresh_vector (Pass.bag p) secret in
  let inputs = Array.init width (fun i -> Pass.wire p orig.Circuit.inputs.(i)) in
  (* Strip: HD(x, secret) = h with the secret hard-wired — this is the
     functionality removed from the shipped netlist. *)
  let strip_bits =
    Array.init width (fun i ->
        let c = Circuit.Builder.add b (Gate.Const secret.(i)) [||] in
        Circuit.Builder.add b Gate.Xor [| inputs.(i); c |])
  in
  let strip = exactly b ~bits:strip_bits ~h in
  (* Restore: HD(x, key) = h with the applied key. *)
  let restore_bits =
    Array.init width (fun i -> Circuit.Builder.add b Gate.Xor [| inputs.(i); keys.(i) |])
  in
  let restore = exactly b ~bits:restore_bits ~h in
  let _, first_out = orig.Circuit.outputs.(0) in
  let target = Pass.wire p first_out in
  let flipped = Circuit.Builder.add b Gate.Xor [| target; strip; restore |] in
  Pass.set_driver p ~output_index:0 ~to_id:flipped;
  Pass.finish p ~scheme:"sfll-hd"
