module Circuit = Fl_netlist.Circuit
module Sim = Fl_netlist.Sim

type t = {
  locked : Circuit.t;
  oracle : Circuit.t;
  correct_key : bool array;
  scheme : string;
}

let query_oracle t inputs = Sim.eval t.oracle ~inputs ~keys:[||]
let eval_locked t ~key ~inputs = Sim.eval t.locked ~inputs ~keys:key

let key_matches ?(exhaustive_limit = 10) ?(vectors = 256) ?(seed = 7) t ~key =
  let n = Circuit.num_inputs t.oracle in
  let agree inputs =
    match eval_locked t ~key ~inputs with
    | outputs -> outputs = query_oracle t inputs
    | exception Sim.Unresolved _ -> false
  in
  if n <= exhaustive_limit then begin
    let rec go v = v >= 1 lsl n || (agree (Sim.vector_of_int ~width:n v) && go (v + 1)) in
    go 0
  end
  else begin
    let rng = Random.State.make [| seed |] in
    let rec go i = i >= vectors || (agree (Sim.random_vector rng n) && go (i + 1)) in
    go 0
  end

let verify ?exhaustive_limit ?vectors ?seed t =
  key_matches ?exhaustive_limit ?vectors ?seed t ~key:t.correct_key

let output_corruption ?(trials = 16) ?(vectors = 64) t rng =
  let n = Circuit.num_inputs t.oracle in
  let nk = Array.length t.correct_key in
  let total = ref 0.0 in
  let samples = ref 0 in
  for _ = 1 to trials do
    let key = Array.init nk (fun _ -> Random.State.bool rng) in
    if key <> t.correct_key then
      for _ = 1 to vectors do
        let inputs = Sim.random_vector rng n in
        let reference = query_oracle t inputs in
        let fraction =
          match eval_locked t ~key ~inputs with
          | outputs ->
            let diff = ref 0 in
            Array.iteri (fun i v -> if v <> reference.(i) then incr diff) outputs;
            float_of_int !diff /. float_of_int (Array.length reference)
          | exception Sim.Unresolved _ -> 1.0
        in
        total := !total +. fraction;
        incr samples
      done
  done;
  if !samples = 0 then 0.0 else !total /. float_of_int !samples

let output_corruption_fast ?(trials = 16) ?(batches = 2) t rng =
  let n = Circuit.num_inputs t.oracle in
  let nk = Array.length t.correct_key in
  let corrupted = ref 0 and total = ref 0 in
  let popcount x =
    let rec go x acc = if x = 0 then acc else go (x lsr 1) (acc + (x land 1)) in
    go (x land max_int) (if x < 0 then 1 else 0)
  in
  for _ = 1 to trials do
    let key = Array.init nk (fun _ -> Random.State.bool rng) in
    if key <> t.correct_key then begin
      let packed_key = Array.map (fun b -> if b then -1 else 0) key in
      for _ = 1 to batches do
        let inputs = Fl_netlist.Sim_word.random_words rng ~width:n in
        let reference = Fl_netlist.Sim_word.eval t.oracle ~inputs ~keys:[||] in
        let out = Fl_netlist.Sim_word.eval_tristate t.locked ~inputs ~keys:packed_key in
        Array.iteri
          (fun i w ->
            (* A lane is corrupted when it differs from the oracle or never
               settles (undefined). *)
            let bad =
              lnot w.Fl_netlist.Sim_word.defined
              lor ((w.Fl_netlist.Sim_word.value lxor reference.(i))
                   land w.Fl_netlist.Sim_word.defined)
            in
            corrupted := !corrupted + popcount bad;
            total := !total + Fl_netlist.Sim_word.lanes)
          out
      done
    end
  done;
  if !total = 0 then 0.0 else float_of_int !corrupted /. float_of_int !total

let num_key_bits t = Array.length t.correct_key

let pp fmt t =
  Format.fprintf fmt "%s: %d gates locked with %d key bits (oracle: %d gates)"
    t.scheme (Circuit.num_gates t.locked) (num_key_bits t)
    (Circuit.num_gates t.oracle)
