(** Cyclic logic locking in the spirit of SRCLock (Roshanisefat et al.,
    GLSVLSI'18 — the paper's reference [16]).

    Key-controlled MUXes introduce feedback edges: with the correct key the
    MUX selects the original forward wire and the circuit is a DAG
    functionally; wrong keys close real combinational loops, trapping a
    plain (acyclic) SAT attack in spurious stabilisations or oscillation.
    CycSAT's no-structural-cycle preprocessing is the published counter —
    exercised against this scheme in the tests. *)

(** [lock rng ~cycles c] inserts [cycles] feedback MUXes.  Each picks a wire
    [w] and a node [d] strictly downstream of [w], and replaces [w]'s
    consumers with [MUX(k, w, d)]: the correct key bit 0 selects [w], key
    bit 1 closes the [w -> … -> d -> MUX -> …] loop.
    @raise Invalid_argument when no suitable wire pairs exist. *)
val lock : Random.State.t -> cycles:int -> Fl_netlist.Circuit.t -> Locked.t
