(** SARLock (Yasin et al., HOST'16): a comparator-based point function that
    flips one output only when the applied input equals the applied key and
    the key is wrong.  Each DIP rules out exactly one key, forcing ~2^|K| SAT
    iterations — at the price of near-zero output corruption (§2 of the
    Full-Lock paper). *)

(** [lock rng ~key_bits c] — [key_bits] is clipped to the circuit's input
    count.  The flip is XORed into the first output. *)
val lock : Random.State.t -> key_bits:int -> Fl_netlist.Circuit.t -> Locked.t
