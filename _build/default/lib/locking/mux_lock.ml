module Gate = Fl_netlist.Gate
module Circuit = Fl_netlist.Circuit
module Pass = Insertion_util.Pass

let lock rng ~key_bits orig =
  let p = Pass.start ~name:"mux" orig in
  let b = Pass.builder p in
  let wires = Insertion_util.select_wires orig rng ~count:key_bits ~policy:`Any in
  let num_nodes = Circuit.num_nodes orig in
  Array.iter
    (fun w ->
      (* Decoy: any original node not in the transitive fanout of [w] (and
         not [w] itself), so MUX insertion cannot close a cycle. *)
      let in_fanout = Array.make num_nodes false in
      for id = 0 to num_nodes - 1 do
        if Circuit.reaches orig ~src:w ~dst:id then in_fanout.(id) <- true
      done;
      let decoys = ref [] in
      for id = 0 to num_nodes - 1 do
        match (Circuit.node orig id).Circuit.kind with
        | Gate.Key_input | Gate.Const _ -> ()
        | Gate.Input | Gate.Buf | Gate.Not | Gate.And | Gate.Nand | Gate.Or
        | Gate.Nor | Gate.Xor | Gate.Xnor | Gate.Mux | Gate.Lut _ ->
          if (not in_fanout.(id)) && id <> w then decoys := id :: !decoys
      done;
      match !decoys with
      | [] -> ()  (* no safe decoy for this wire; skip it *)
      | ds ->
        let decoy = List.nth ds (Random.State.int rng (List.length ds)) in
        let mw = Pass.wire p w and md = Pass.wire p decoy in
        let true_on_one = Random.State.bool rng in
        let k = Insertion_util.Key_bag.fresh (Pass.bag p) true_on_one in
        let limit = Pass.snapshot p in
        let fanins = if true_on_one then [| k; md; mw |] else [| k; mw; md |] in
        let m = Circuit.Builder.add b Gate.Mux fanins in
        Pass.redirect_wire ~limit p ~from_id:mw ~to_id:m)
    wires;
  Pass.finish p ~scheme:"mux-lock"
