(** Cross-Lock (Shamsi et al., GLSVLSI'18): interconnect locking through an
    N×N one-time-programmable crossbar.  Each crossbar output is a full MUX
    tree over all N selected wires with its own ⌈log₂N⌉ select key bits —
    dense, but a single shallow MUX tree per output; Full-Lock's cascaded
    switch-boxes produce much harder per-iteration SAT instances (Table 5). *)

(** [lock rng ~n c] routes [n] mutually independent wires (no path between
    any two — the insertion stays acyclic) through a crossbar configured
    with a random permutation.
    @raise Invalid_argument when [n] independent wires cannot be found. *)
val lock : Random.State.t -> n:int -> Fl_netlist.Circuit.t -> Locked.t
