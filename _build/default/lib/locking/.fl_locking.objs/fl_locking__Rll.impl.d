lib/locking/rll.ml: Array Fl_netlist Insertion_util Random
