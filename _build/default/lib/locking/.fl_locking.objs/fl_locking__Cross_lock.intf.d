lib/locking/cross_lock.mli: Fl_netlist Locked Random
