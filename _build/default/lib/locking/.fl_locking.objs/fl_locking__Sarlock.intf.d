lib/locking/sarlock.mli: Fl_netlist Locked Random
