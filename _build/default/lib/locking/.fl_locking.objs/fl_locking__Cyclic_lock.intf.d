lib/locking/cyclic_lock.mli: Fl_netlist Locked Random
