lib/locking/sfll.ml: Array Fl_netlist Insertion_util Random
