lib/locking/cyclic_lock.ml: Array Fl_netlist Insertion_util List Random
