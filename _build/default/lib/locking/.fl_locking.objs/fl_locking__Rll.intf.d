lib/locking/rll.mli: Fl_netlist Locked Random
