lib/locking/antisat.mli: Fl_netlist Locked Random
