lib/locking/locked.mli: Fl_netlist Format Random
