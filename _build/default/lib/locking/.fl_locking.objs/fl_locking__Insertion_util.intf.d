lib/locking/insertion_util.mli: Fl_netlist Locked Random
