lib/locking/sarlock.ml: Array Fl_netlist Insertion_util Random
