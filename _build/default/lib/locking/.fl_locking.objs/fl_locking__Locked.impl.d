lib/locking/locked.ml: Array Fl_netlist Format Random
