lib/locking/insertion_util.ml: Array Fl_netlist Hashtbl List Locked Option Printf Random
