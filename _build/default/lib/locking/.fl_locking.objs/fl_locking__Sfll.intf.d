lib/locking/sfll.mli: Fl_netlist Locked Random
