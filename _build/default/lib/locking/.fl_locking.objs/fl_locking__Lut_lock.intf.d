lib/locking/lut_lock.mli: Fl_netlist Locked Random
