lib/locking/antisat.ml: Array Fl_netlist Insertion_util Random
