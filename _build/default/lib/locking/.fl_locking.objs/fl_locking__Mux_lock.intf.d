lib/locking/mux_lock.mli: Fl_netlist Locked Random
