lib/locking/cross_lock.ml: Array Fl_netlist Insertion_util Random
