(** SFLL-HD (Yasin et al., CCS'17 — the paper's reference [30],
    "provably-secure logic locking").

    Stripped-functionality locking: the design is shipped with the minterms
    at Hamming distance [h] from a secret pattern {e stripped} (hard-wired
    flip), and a restore unit flips them back whenever the applied key is at
    distance [h] from the input.  With the correct key (= the secret
    pattern) strip and restore cancel everywhere.  Each wrong key corrupts
    C(w,h)·2^(n-w) input patterns, giving the scheme its tunable — and for
    small [h], very low — corruption, which Full-Lock's §2 argues is the
    fundamental weakness of this family. *)

(** [lock rng ~key_bits ~h c] — [key_bits] is clipped to the input count;
    [h] must satisfy [0 <= h <= key_bits].
    @raise Invalid_argument on a bad [h]. *)
val lock :
  Random.State.t -> key_bits:int -> h:int -> Fl_netlist.Circuit.t -> Locked.t
