(** LUT-Lock (Kamali et al., ISVLSI'18): selected gates are replaced by
    key-programmable LUTs (MUX trees whose leaves are key bits).  The
    translated CNF is MUX-based like Full-Lock's, but without back-to-back
    cascading the DPLL tree stays shallow (Fig. 7 discussion). *)

(** [lock rng ~gates c] replaces [gates] randomly chosen gates of fan-in
    <= [max_fanin] (default 4) with keyed LUTs; a gate with [k] fanins
    consumes [2^k] key bits. *)
val lock :
  ?max_fanin:int -> Random.State.t -> gates:int -> Fl_netlist.Circuit.t -> Locked.t
