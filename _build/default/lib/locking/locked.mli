(** A locked circuit bundled with its oracle and correct key.

    Every locking scheme in this library (and Full-Lock itself) produces this
    record; every attack consumes it.  The [oracle] is the original,
    key-free netlist — the attacker may only query it as a black box. *)

type t = {
  locked : Fl_netlist.Circuit.t;
  oracle : Fl_netlist.Circuit.t;
  correct_key : bool array;
  scheme : string;
}

(** [query_oracle t inputs] is the black-box oracle response. *)
val query_oracle : t -> bool array -> bool array

(** [eval_locked t ~key ~inputs] evaluates the locked netlist; cyclic locked
    circuits that do not settle under [key] raise {!Fl_netlist.Sim.Unresolved}. *)
val eval_locked : t -> key:bool array -> inputs:bool array -> bool array

(** [verify t] checks that the locked circuit under [correct_key] matches
    the oracle — exhaustively when the input count is at most [exhaustive_limit]
    (default 10), otherwise on [vectors] random vectors (default 256). *)
val verify : ?exhaustive_limit:int -> ?vectors:int -> ?seed:int -> t -> bool

(** [key_matches t ~key] — functional correctness of an arbitrary key
    (random-vector equivalence, same knobs as {!verify}). *)
val key_matches :
  ?exhaustive_limit:int -> ?vectors:int -> ?seed:int -> t -> key:bool array -> bool

(** [output_corruption t ~trials ~vectors rng] is the average fraction of
    output bits that differ from the oracle under uniformly random wrong
    keys — the paper's output-corruption argument against SARLock-style
    schemes (§2).  Unsettled cyclic evaluations count as fully corrupted. *)
val output_corruption :
  ?trials:int -> ?vectors:int -> t -> Random.State.t -> float

(** [output_corruption_fast t rng] — like {!output_corruption} but using
    the 63-lane word-level simulator ({!Fl_netlist.Sim_word}); [batches]
    packed batches of 63 vectors per wrong key (default 2). *)
val output_corruption_fast :
  ?trials:int -> ?batches:int -> t -> Random.State.t -> float

val num_key_bits : t -> int
val pp : Format.formatter -> t -> unit
