(** Shared machinery for locking transformations: key-bit bookkeeping,
    consumer redirection, wire selection, keyed LUT synthesis. *)

module Key_bag : sig
  (** Collects key inputs as a locking pass creates them; the correct-key
      array comes out aligned with the circuit's key order because the bag is
      the only creator of key inputs. *)
  type t

  val create : Fl_netlist.Circuit.Builder.t -> t

  (** [fresh bag correct_value] adds one key input and records its correct
      value; returns the node id. *)
  val fresh : t -> bool -> int

  (** [fresh_vector bag values] adds one key input per entry. *)
  val fresh_vector : t -> bool array -> int array

  val correct_key : t -> bool array
  val count : t -> int
end

(** [redirect b ~from_id ~to_id ~limit] rewires every fanin reference to
    [from_id] into [to_id] among nodes with id < [limit] (pass
    [Builder.size b] to cover everything built so far).  Nodes listed in
    [except] are skipped (e.g. the inserted block reading the original
    wire). *)
val redirect :
  Fl_netlist.Circuit.Builder.t ->
  from_id:int ->
  to_id:int ->
  limit:int ->
  ?except:int list ->
  unit ->
  unit

(** [select_wires c rng ~count ~policy] picks distinct gate output wires.

    [`Independent] guarantees no directed path between any two selected
    wires (safe for acyclic insertion); [`Any] places no constraint (used
    for cyclic insertion); [`Connected] prefers wires with paths between
    them (to provoke cycles).
    @raise Invalid_argument when the circuit cannot supply [count] wires
    under the policy. *)
val select_wires :
  Fl_netlist.Circuit.t ->
  Random.State.t ->
  count:int ->
  policy:[ `Independent | `Any | `Connected ] ->
  int array

(** [keyed_lut b bag ~addr ~truth_table] synthesises a key-programmable LUT
    as a MUX tree over [2^k] fresh key bits whose correct values are
    [truth_table] (LSB-first, matching {!Fl_netlist.Gate.Lut}).  Returns the
    output node id. *)
val keyed_lut :
  Fl_netlist.Circuit.Builder.t ->
  Key_bag.t ->
  addr:int array ->
  truth_table:bool array ->
  int

(** [lockable_gates c] is the ids of gates whose output wire a scheme may
    cut: combinational gates (not inputs/keys/constants). *)
val lockable_gates : Fl_netlist.Circuit.t -> int array

(** The skeleton every locking pass follows: copy the original netlist,
    mutate it, then freeze with the original output ports. *)
module Pass : sig
  type t

  (** [start ~name orig] copies the nodes of [orig] into a fresh builder. *)
  val start : name:string -> Fl_netlist.Circuit.t -> t

  val builder : t -> Fl_netlist.Circuit.Builder.t
  val bag : t -> Key_bag.t

  (** [wire p id] is the new-builder id of original node [id]. *)
  val wire : t -> int -> int

  (** [redirect_wire p ~from_id ~to_id] rewires consumers of [from_id] and
      pending output drivers to [to_id].  Only nodes with id < [limit] are
      touched; [limit] defaults to [to_id] (correct when the inserted block
      was built contiguously ending at [to_id]).  Pass the id of the first
      node of the inserted block when the block's own reads of [from_id]
      must be preserved. *)
  val redirect_wire : ?limit:int -> t -> from_id:int -> to_id:int -> unit

  (** Current builder size — snapshot before building a block to use as the
      redirect [limit]. *)
  val snapshot : t -> int

  (** [set_driver p ~output_index ~to_id] repoints one output port only,
      leaving internal consumers untouched (point-function schemes flip the
      primary output, not the internal wire). *)
  val set_driver : t -> output_index:int -> to_id:int -> unit

  (** [finish p ~scheme] freezes the builder, re-declaring the original
      output ports on the (possibly redirected) drivers. *)
  val finish : t -> scheme:string -> Locked.t
end
