module Gate = Fl_netlist.Gate
module Circuit = Fl_netlist.Circuit
module Pass = Insertion_util.Pass

let ceil_log2 n =
  let rec go k m = if m >= n then k else go (k + 1) (m * 2) in
  go 0 1

(* Full MUX tree: output = data.(value of select bits, LSB-first). *)
let mux_tree b ~select ~data =
  let rec reduce values level =
    match Array.length values with
    | 1 -> values.(0)
    | len ->
      let next =
        Array.init (len / 2) (fun i ->
            Circuit.Builder.add b Gate.Mux
              [| select.(level); values.(2 * i); values.((2 * i) + 1) |])
      in
      reduce next (level + 1)
  in
  reduce data 0

let lock rng ~n orig =
  if n < 2 then invalid_arg "Cross_lock.lock: need n >= 2";
  let p = Pass.start ~name:"crosslock" orig in
  let b = Pass.builder p in
  let wires = Insertion_util.select_wires orig rng ~count:n ~policy:`Independent in
  let mapped = Array.map (fun w -> Pass.wire p w) wires in
  (* Random permutation: crossbar output j delivers wire sigma.(j). *)
  let sigma = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = sigma.(i) in
    sigma.(i) <- sigma.(j);
    sigma.(j) <- t
  done;
  let bits = max 1 (ceil_log2 n) in
  let padded = 1 lsl bits in
  let data = Array.init padded (fun i -> if i < n then mapped.(i) else mapped.(0)) in
  let barrier = Pass.snapshot p in
  let outputs =
    Array.init n (fun j ->
        let select =
          Insertion_util.Key_bag.fresh_vector (Pass.bag p)
            (Array.init bits (fun bit -> sigma.(j) land (1 lsl bit) <> 0))
        in
        mux_tree b ~select ~data)
  in
  Array.iteri
    (fun j out ->
      Pass.redirect_wire ~limit:barrier p ~from_id:mapped.(sigma.(j)) ~to_id:out)
    outputs;
  Pass.finish p ~scheme:"cross-lock"
