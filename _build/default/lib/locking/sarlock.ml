module Gate = Fl_netlist.Gate
module Circuit = Fl_netlist.Circuit
module Pass = Insertion_util.Pass

let lock rng ~key_bits orig =
  let width = min key_bits (Circuit.num_inputs orig) in
  if width < 1 then invalid_arg "Sarlock.lock: need at least one input";
  let p = Pass.start ~name:"sarlock" orig in
  let b = Pass.builder p in
  let secret = Array.init width (fun _ -> Random.State.bool rng) in
  let keys = Insertion_util.Key_bag.fresh_vector (Pass.bag p) secret in
  let inputs = Array.init width (fun i -> Pass.wire p orig.Circuit.inputs.(i)) in
  (* match_i = x_i XNOR k_i; cmp = AND match_i  (x equals applied key) *)
  let matches =
    Array.init width (fun i -> Circuit.Builder.add b Gate.Xnor [| inputs.(i); keys.(i) |])
  in
  let cmp =
    if width = 1 then matches.(0) else Circuit.Builder.add b Gate.And matches
  in
  (* wrong_i = k_i XOR secret_i (secret hardwired); wrong = OR wrong_i *)
  let consts =
    Array.map (fun bit -> Circuit.Builder.add b (Gate.Const bit) [||]) secret
  in
  let wrongs =
    Array.init width (fun i -> Circuit.Builder.add b Gate.Xor [| keys.(i); consts.(i) |])
  in
  let wrong =
    if width = 1 then wrongs.(0) else Circuit.Builder.add b Gate.Or wrongs
  in
  let flip = Circuit.Builder.add b Gate.And [| cmp; wrong |] in
  (* XOR the flip into the first output port only: the point function must
     not leak into internal logic, or the one-key-per-DIP property breaks. *)
  let _, first_out = orig.Circuit.outputs.(0) in
  let target = Pass.wire p first_out in
  let flipped = Circuit.Builder.add b Gate.Xor [| target; flip |] in
  Pass.set_driver p ~output_index:0 ~to_id:flipped;
  Pass.finish p ~scheme:"sarlock"
