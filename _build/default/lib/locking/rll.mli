(** Random logic locking (EPIC-style): XOR/XNOR key gates on random wires —
    the primitive scheme the SAT attack of Subramanyan et al. breaks in
    polynomial time.  Baseline for Fig. 7. *)

(** [lock rng ~key_bits c] inserts [key_bits] key gates.  Each locked wire
    gets an XOR (correct bit 0) or XNOR (correct bit 1), chosen at random.
    @raise Invalid_argument when the circuit has fewer gates than
    [key_bits]. *)
val lock : Random.State.t -> key_bits:int -> Fl_netlist.Circuit.t -> Locked.t
