module Gate = Fl_netlist.Gate
module Circuit = Fl_netlist.Circuit
module Pass = Insertion_util.Pass

let lock rng ~cycles orig =
  if cycles < 1 then invalid_arg "Cyclic_lock.lock: need cycles >= 1";
  let candidates = Insertion_util.lockable_gates orig in
  if Array.length candidates < 2 then
    invalid_arg "Cyclic_lock.lock: circuit too small";
  let p = Pass.start ~name:"cyclic" orig in
  let b = Pass.builder p in
  let inserted = ref 0 in
  let attempts = ref 0 in
  (* Pick (w, d) with d strictly downstream of w so selecting d closes a
     real loop through the MUX. *)
  while !inserted < cycles && !attempts < 40 * cycles do
    incr attempts;
    let w = candidates.(Random.State.int rng (Array.length candidates)) in
    let downstream =
      Array.to_list candidates
      |> List.filter (fun d -> d <> w && Circuit.reaches orig ~src:w ~dst:d)
    in
    match downstream with
    | [] -> ()
    | ds ->
      let d = List.nth ds (Random.State.int rng (List.length ds)) in
      let mw = Pass.wire p w and md = Pass.wire p d in
      let k = Insertion_util.Key_bag.fresh (Pass.bag p) false in
      let limit = Pass.snapshot p in
      (* key = 0 selects the true wire; key = 1 closes the loop. *)
      let m = Circuit.Builder.add b Gate.Mux [| k; mw; md |] in
      Pass.redirect_wire ~limit p ~from_id:mw ~to_id:m;
      incr inserted
  done;
  if !inserted < cycles then
    invalid_arg "Cyclic_lock.lock: not enough connected wire pairs";
  Pass.finish p ~scheme:"cyclic-lock"
