module Gate = Fl_netlist.Gate
module Circuit = Fl_netlist.Circuit
module Pass = Insertion_util.Pass

let lock rng ~key_bits orig =
  let p = Pass.start ~name:"rll" orig in
  let b = Pass.builder p in
  let wires = Insertion_util.select_wires orig rng ~count:key_bits ~policy:`Any in
  Array.iter
    (fun w ->
      let mw = Pass.wire p w in
      let use_xnor = Random.State.bool rng in
      let k = Insertion_util.Key_bag.fresh (Pass.bag p) use_xnor in
      let limit = Pass.snapshot p in
      let kind = if use_xnor then Gate.Xnor else Gate.Xor in
      let g = Circuit.Builder.add b kind [| mw; k |] in
      Pass.redirect_wire ~limit p ~from_id:mw ~to_id:g)
    wires;
  Pass.finish p ~scheme:"rll"
