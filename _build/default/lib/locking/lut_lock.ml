module Gate = Fl_netlist.Gate
module Circuit = Fl_netlist.Circuit
module Pass = Insertion_util.Pass

(* Replace gate [gid] (original-circuit id) in place: build a keyed LUT over
   the gate's fanins, then demote the gate to a BUF of the LUT output.
   Keeping the node id intact preserves all consumer edges. *)
let lutify p gid =
  let b = Pass.builder p in
  let mid = Pass.wire p gid in
  let kind = Circuit.Builder.kind_of b mid in
  let fanins = Circuit.Builder.fanins_of b mid in
  let truth_table = Gate.truth_table kind ~arity:(Array.length fanins) in
  let lut = Insertion_util.keyed_lut b (Pass.bag p) ~addr:fanins ~truth_table in
  Circuit.Builder.replace b mid Gate.Buf [| lut |]

let replaceable ?(max_fanin = 4) c id =
  let nd = Circuit.node c id in
  match nd.Circuit.kind with
  | Gate.Input | Gate.Key_input | Gate.Const _ -> false
  | Gate.Buf | Gate.Not | Gate.And | Gate.Nand | Gate.Or | Gate.Nor | Gate.Xor
  | Gate.Xnor | Gate.Mux | Gate.Lut _ ->
    let a = Array.length nd.Circuit.fanins in
    a >= 1 && a <= max_fanin

let lock ?(max_fanin = 4) rng ~gates orig =
  let candidates =
    Insertion_util.lockable_gates orig
    |> Array.to_list
    |> List.filter (replaceable ~max_fanin orig)
    |> Array.of_list
  in
  if Array.length candidates < gates then
    invalid_arg "Lut_lock.lock: not enough low-fanin gates";
  (* Shuffle and take the first [gates]. *)
  let order = Array.init (Array.length candidates) (fun i -> i) in
  for i = Array.length order - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- t
  done;
  let p = Pass.start ~name:"lutlock" orig in
  for i = 0 to gates - 1 do
    lutify p candidates.(order.(i))
  done;
  Pass.finish p ~scheme:"lut-lock"
