module Gate = Fl_netlist.Gate
module Circuit = Fl_netlist.Circuit
module Pass = Insertion_util.Pass

let lock rng ~key_bits orig =
  let width = min (max 1 (key_bits / 2)) (Circuit.num_inputs orig) in
  let p = Pass.start ~name:"antisat" orig in
  let b = Pass.builder p in
  let secret = Array.init width (fun _ -> Random.State.bool rng) in
  (* Correct key: K1 = K2 (both equal to [secret]). *)
  let k1 = Insertion_util.Key_bag.fresh_vector (Pass.bag p) secret in
  let k2 = Insertion_util.Key_bag.fresh_vector (Pass.bag p) secret in
  let inputs = Array.init width (fun i -> Pass.wire p orig.Circuit.inputs.(i)) in
  let xor_layer keys =
    Array.init width (fun i -> Circuit.Builder.add b Gate.Xor [| inputs.(i); keys.(i) |])
  in
  let and_tree wires =
    if width = 1 then wires.(0) else Circuit.Builder.add b Gate.And wires
  in
  let g1 = and_tree (xor_layer k1) in
  let g2 = and_tree (xor_layer k2) in
  let not_g2 = Circuit.Builder.add b Gate.Not [| g2 |] in
  let flip = Circuit.Builder.add b Gate.And [| g1; not_g2 |] in
  let _, first_out = orig.Circuit.outputs.(0) in
  let target = Pass.wire p first_out in
  let flipped = Circuit.Builder.add b Gate.Xor [| target; flip |] in
  Pass.set_driver p ~output_index:0 ~to_id:flipped;
  Pass.finish p ~scheme:"anti-sat"
