(** Anti-SAT (Xie & Srivastava, CHES'16): the flip signal is
    [g(X ⊕ K1) ∧ ¬g(X ⊕ K2)] with [g] an AND tree.  Any key with [K1 = K2]
    is correct (the flip is identically zero); wrong keys corrupt very few
    input patterns.  The SPS attack locates the block by the extreme signal
    probability skew of the AND trees — reproduced in [Fl_attacks.Sps]. *)

(** [lock rng ~key_bits c] uses [key_bits/2] input bits per half (clipped to
    the input count), i.e. the key is [K1 ++ K2]. *)
val lock : Random.State.t -> key_bits:int -> Fl_netlist.Circuit.t -> Locked.t
