(** MUX-based locking: each locked wire is replaced by a key-driven 2:1 MUX
    choosing between the true wire and a random decoy wire.  Decoys are
    restricted to wires outside the locked wire's transitive fanout, so the
    result stays acyclic. *)

(** [lock rng ~key_bits c] inserts [key_bits] key MUXes.
    @raise Invalid_argument when the circuit is too small. *)
val lock : Random.State.t -> key_bits:int -> Fl_netlist.Circuit.t -> Locked.t
