(* Ablations over the design choices called out in DESIGN.md:
   1. blocking topology family (same switch-box count, different wiring)
   2. extra stages m of LOG(N, m, 1)
   3. inverter placement
   4. LUT layer on/off and switch-box style
   All measured as SAT-attack effort on a standalone N=8 CLN / PLR. *)

module Cln = Fl_cln.Cln
module Topology = Fl_cln.Topology
module Switch_box = Fl_cln.Switch_box
module Fulllock = Fl_core.Fulllock
module Sat_attack = Fl_attacks.Sat_attack
module Ppa = Fl_ppa.Ppa
module Bench_suite = Fl_netlist.Bench_suite
module Locked = Fl_locking.Locked

let attack ~timeout locked =
  let r = Sat_attack.run ~timeout locked in
  match r.Sat_attack.status with
  | Sat_attack.Broken _ ->
    ( Printf.sprintf "%d" r.Sat_attack.iterations,
      Tables.seconds r.Sat_attack.wall_time,
      Printf.sprintf "%d" r.Sat_attack.solver.Fl_sat.Cdcl.conflicts )
  | Sat_attack.Timeout ->
    Printf.sprintf "%d*" r.Sat_attack.iterations, "TO",
    Printf.sprintf "%d" r.Sat_attack.solver.Fl_sat.Cdcl.conflicts
  | Sat_attack.Iteration_limit | Sat_attack.No_key_found -> "-", "-", "-"

let spec_row ~timeout label spec =
  let rng = Random.State.make [| Hashtbl.hash label |] in
  let locked = Fulllock.standalone_cln_lock spec rng in
  let iters, time, conflicts = attack ~timeout locked in
  let e = Ppa.of_cln spec in
  [
    label;
    string_of_int (Cln.num_key_bits spec);
    iters;
    time;
    conflicts;
    Printf.sprintf "%.2f" e.Ppa.area_um2;
  ]

let header = [ "configuration"; "key bits"; "SAT iters"; "time (s)"; "conflicts"; "area" ]

let topology_ablation ~timeout () =
  let n = 8 in
  let rows =
    List.map
      (fun (label, kind) ->
        spec_row ~timeout label { (Cln.default_spec ~n) with Cln.topology = kind })
      [
        "omega (blocking)", Topology.Omega;
        "butterfly (blocking)", Topology.Butterfly;
        "baseline (blocking)", Topology.Baseline;
        "LOG(8,1,1) near-non-blocking", Topology.Near_non_blocking;
        "benes (rearrangeable)", Topology.Benes;
      ]
  in
  Tables.print ~title:"Ablation 1 — topology family at N=8" header rows

let stages_ablation ~timeout () =
  let n = 16 in
  let rows =
    List.map
      (fun extra ->
        spec_row ~timeout
          (Printf.sprintf "LOG(16,%d,1)" extra)
          { (Cln.default_spec ~n) with Cln.topology = Topology.Log_extra extra })
      [ 0; 1; 2; 3 ]
  in
  Tables.print ~title:"Ablation 2 — extra cascaded stages m of LOG(16,m,1)" header rows

let planes_ablation ~timeout () =
  (* Vertical copies (the P of LOG(N,m,p)): more planes inflate the key
     space and area without the per-iteration payoff of extra stages —
     the paper's reason for settling on p = 1 (§3.1). *)
  let rows =
    List.map
      (fun p ->
        spec_row ~timeout
          (Printf.sprintf "LOG(8,1,%d)" p)
          (Cln.log_nmp_spec ~n:8 ~m:1 ~p))
      [ 1; 2; 3 ]
  in
  Tables.print ~title:"Ablation 2b — vertical copies p of LOG(8,1,p)" header rows

let inverter_ablation ~timeout () =
  let n = 8 in
  let rows =
    List.map
      (fun (label, placement) ->
        spec_row ~timeout label { (Cln.default_spec ~n) with Cln.inverters = placement })
      [
        "no inverters", Cln.No_inverters;
        "output inverters", Cln.Outputs_only;
        "per-stage inverters", Cln.Per_stage;
      ]
  in
  Tables.print ~title:"Ablation 3 — key-configurable inverter placement (N=8)" header rows

let style_and_lut_ablation ~timeout ~scale () =
  let c = Bench_suite.load_scaled "c880" ~scale in
  let cases =
    [
      ("PLR: CLN only (no LUTs, no twist)",
       { (Fulllock.default_config ~n:8) with Fulllock.lut_layer = false;
         negate_leading = false });
      ("PLR: CLN + twist (no LUTs)",
       { (Fulllock.default_config ~n:8) with Fulllock.lut_layer = false });
      ("PLR: full (CLN + twist + LUTs)", Fulllock.default_config ~n:8);
      ("PLR: swap-style boxes (1 key bit/box)",
       { (Fulllock.default_config ~n:8) with
         Fulllock.cln =
           { (Cln.default_spec ~n:8) with Cln.style = Switch_box.Swap } });
    ]
  in
  let rows =
    List.map
      (fun (label, config) ->
        let rng = Random.State.make [| Hashtbl.hash label |] in
        let locked = Fulllock.lock rng ~configs:[ config ] c in
        let iters, time, conflicts = attack ~timeout locked in
        [
          label;
          string_of_int (Locked.num_key_bits locked);
          iters;
          time;
          conflicts;
          "-";
        ])
      cases
  in
  Tables.print ~title:"Ablation 4 — PLR composition on a c880-scale host" header rows

let run ~deep () =
  let timeout = if deep then 60.0 else 10.0 in
  let scale = if deep then 2 else 4 in
  topology_ablation ~timeout ();
  stages_ablation ~timeout ();
  planes_ablation ~timeout ();
  inverter_ablation ~timeout ();
  style_and_lut_ablation ~timeout ~scale ()
