(* Table 4: CycSAT execution time on Full-Lock with different numbers and
   sizes of PLRs over the ISCAS-85/MCNC suite (synthetic hosts with the
   paper's gate/IO counts; see DESIGN.md).

   Scaled: hosts are shrunk, PLR sizes are 8x8/16x16 instead of 16x16/32x32,
   and the timeout is seconds instead of 2e6 s.  The shape to reproduce:
   adding PLRs (or growing them) pushes every circuit over the attack
   budget. *)

module Bench_suite = Fl_netlist.Bench_suite
module Fulllock = Fl_core.Fulllock
module Cycsat = Fl_attacks.Cycsat
module Sat_attack = Fl_attacks.Sat_attack
module Locked = Fl_locking.Locked

let attack_cell ~timeout circuit ~plr_n ~plr_count ~seed =
  let rng = Random.State.make [| seed; plr_n; plr_count |] in
  let configs = List.init plr_count (fun _ -> Fulllock.default_config ~n:plr_n) in
  match Fulllock.lock rng ~policy:`Cyclic ~configs circuit with
  | exception Invalid_argument _ -> "n/a"
  | locked ->
    let r = Cycsat.run ~timeout locked in
    (match r.Sat_attack.status with
     | Sat_attack.Broken _ when r.Sat_attack.key_is_correct ->
       Tables.seconds r.Sat_attack.wall_time
     | Sat_attack.Broken _ -> Tables.seconds r.Sat_attack.wall_time ^ " (wrong)"
     | Sat_attack.Timeout -> "TO"
     | Sat_attack.No_key_found -> "no-key"
     | Sat_attack.Iteration_limit -> "iter")

let run ~deep () =
  let timeout = if deep then 120.0 else 10.0 in
  let scale = if deep then 2 else 4 in
  let circuits =
    if deep then Bench_suite.names
    else [ "c432"; "c499"; "c880"; "c1355"; "apex2"; "i4" ]
  in
  (* The paper's columns are 16x16 and 32x32 PLRs at its 2e6 s budget; at the
     default seconds-scale budget the staircase is visible one size class
     down. *)
  let small = if deep then 8 else 4 and large = if deep then 16 else 8 in
  let header =
    [ "circuit";
      Printf.sprintf "1x%dx%d" small small;
      Printf.sprintf "2x%dx%d" small small;
      Printf.sprintf "1x%dx%d" large large;
      Printf.sprintf "2x%dx%d" large large ]
  in
  let rows =
    List.map
      (fun name ->
        let c = Bench_suite.load_scaled name ~scale in
        let cell = attack_cell ~timeout c ~seed:(Hashtbl.hash name) in
        [
          name;
          cell ~plr_n:small ~plr_count:1;
          cell ~plr_n:small ~plr_count:2;
          cell ~plr_n:large ~plr_count:1;
          cell ~plr_n:large ~plr_count:2;
        ])
      circuits
  in
  Tables.print
    ~title:
      (Printf.sprintf
         "Table 4 — CycSAT time (s) on Full-Lock, suite hosts at 1/%d scale, timeout %.0fs \
          (paper: 16x16/32x32 PLRs, 2e6 s)"
         scale timeout)
    header rows;
  print_endline
    "TO = timeout.  Shape reproduced: one small PLR is breakable in seconds; adding\n\
     a second PLR or doubling the CLN size pushes instances past the budget —\n\
     the paper's Table 4 shows the same staircase at its (much larger) scale."
