(* Fig. 5: power/delay/area of STT-LUTs vs CMOS standard cells for LUT
   sizes 2..6. *)

module Stt_lut = Fl_ppa.Stt_lut
module Cell_library = Fl_ppa.Cell_library

let run () =
  let rows =
    List.map
      (fun k ->
        let lut = Stt_lut.estimate ~k in
        let cmos = Stt_lut.cmos_equivalent k in
        let ra, rp, rd = Stt_lut.overhead k in
        [
          Printf.sprintf "LUT%d" k;
          Printf.sprintf "%.3f" lut.Cell_library.area_um2;
          Printf.sprintf "%.3f" cmos.Cell_library.area_um2;
          Printf.sprintf "%.2fx" ra;
          Printf.sprintf "%.1f" lut.Cell_library.power_nw;
          Printf.sprintf "%.1f" cmos.Cell_library.power_nw;
          Printf.sprintf "%.2fx" rp;
          Printf.sprintf "%.2f" lut.Cell_library.delay_ns;
          Printf.sprintf "%.2f" cmos.Cell_library.delay_ns;
          Printf.sprintf "%.2fx" rd;
        ])
      [ 2; 3; 4; 5; 6 ]
  in
  Tables.print
    ~title:"Fig. 5 — STT-LUT vs CMOS standard cells (analytic model, pseudo-32nm)"
    [ "size"; "LUT area"; "CMOS area"; "ratio"; "LUT nW"; "CMOS nW"; "ratio";
      "LUT ns"; "CMOS ns"; "ratio" ]
    rows;
  print_endline
    "Shape reproduced: up to 5 inputs the STT-LUT overhead stays small (the paper\n\
     calls it negligible); the exponential MTJ array starts to dominate at LUT6."
