(* Table 3: power/area/delay and SAT resiliency of blocking vs almost
   non-blocking CLNs (calibrated pseudo-32nm library). *)

module Cln = Fl_cln.Cln
module Topology = Fl_cln.Topology
module Ppa = Fl_ppa.Ppa
module Fulllock = Fl_core.Fulllock
module Sat_attack = Fl_attacks.Sat_attack

let resilient ~timeout spec =
  (* A CLN is marked resilient when the SAT attack cannot finish within the
     scaled budget. *)
  let rng = Random.State.make [| 0x7e57 |] in
  let locked = Fulllock.standalone_cln_lock spec rng in
  let r = Sat_attack.run ~timeout locked in
  match r.Sat_attack.status with
  | Sat_attack.Timeout -> true
  | Sat_attack.Broken _ | Sat_attack.Iteration_limit | Sat_attack.No_key_found -> false

let log_spec ~n ~extra =
  { (Cln.default_spec ~n) with Cln.topology = Topology.Log_extra extra }

let run ~deep () =
  let timeout = if deep then 120.0 else 15.0 in
  let specs =
    [
      "Shuffle (N=32)", Cln.blocking_spec ~n:32;
      "LOG(32,3,1)", log_spec ~n:32 ~extra:3;
      "Shuffle (N=64)", Cln.blocking_spec ~n:64;
      "LOG(64,4,1)", log_spec ~n:64 ~extra:4;
      "Shuffle (N=128)", Cln.blocking_spec ~n:128;
      "Shuffle (N=256)", Cln.blocking_spec ~n:256;
      "Shuffle (N=512)", Cln.blocking_spec ~n:512;
    ]
  in
  let rows =
    List.map
      (fun (label, spec) ->
        let e = Ppa.of_cln spec in
        let res = resilient ~timeout spec in
        [
          label;
          Printf.sprintf "%.1f" e.Ppa.area_um2;
          Printf.sprintf "%.1f" e.Ppa.power_nw;
          Printf.sprintf "%.2f" e.Ppa.delay_ns;
          (if res then "yes" else "no");
        ])
      specs
  in
  Tables.print
    ~title:
      (Printf.sprintf
         "Table 3 — PPA and SAT resiliency of CLNs (resiliency at %.0fs scaled budget)"
         timeout)
    [ "CLN"; "area (um2)"; "power (nW)"; "delay (ns)"; "SAT-resilient" ]
    rows;
  (* §3.1's cost argument for choosing p = 1: the strictly non-blocking
     LOG(64,3,6) is several times the blocking CLN. *)
  let blocking_boxes =
    Fl_cln.Topology.num_switch_boxes (Fl_cln.Topology.make Fl_cln.Topology.Omega ~n:64)
  in
  let strict = Fl_cln.Topology.log_nmp_switch_boxes ~n:64 ~m:3 ~p:6 in
  let almost = Fl_cln.Topology.log_nmp_switch_boxes ~n:64 ~m:4 ~p:1 in
  Printf.printf
    "Switch-box budget at N=64: blocking %d, almost non-blocking LOG(64,4,1) %d \
     (%.1fx), strictly non-blocking LOG(64,3,6) %d (%.1fx) - the paper's Section 3.1 \
     argument for p = 1.\n"
    blocking_boxes almost
    (float_of_int almost /. float_of_int blocking_boxes)
    strict
    (float_of_int strict /. float_of_int blocking_boxes);
  print_endline
    "Shape reproduced: the almost non-blocking LOG(64,4,1) already resists while\n\
     blocking shuffle networks need N=512, at several times the area and power."
