(* Table 1: Tseytin transformation of the basic gates, generated from the
   actual encoder (so the printed table is what the attack really uses). *)

module Gate = Fl_netlist.Gate
module Formula = Fl_cnf.Formula
module Tseytin = Fl_cnf.Tseytin

(* Variable names: fanins A, B, ...; the output (last variable) is C. *)
let literal_name ~arity l =
  let base v = if v = arity + 1 then "C" else String.make 1 (Char.chr (Char.code 'A' + v - 1)) in
  if l > 0 then base l else "~" ^ base (-l)

let cnf_of kind arity =
  let f = Formula.create () in
  let fanins = Formula.fresh_vars f arity in
  let out = Formula.fresh_var f in
  Tseytin.encode_gate f kind ~out ~fanins;
  let clause_string clause =
    "("
    ^ String.concat " | "
        (List.map (literal_name ~arity) (Array.to_list clause))
    ^ ")"
  in
  let clauses = Array.to_list (Formula.clauses f) in
  String.concat " & " (List.map clause_string clauses), Formula.num_clauses f

let run () =
  (* MUX uses variable order S, A, B in the paper; our encoder's fanins are
     [S; A; B] with fresh vars 1, 2, 3 — relabel S=1 for readability. *)
  let rows =
    List.map
      (fun (label, kind, arity) ->
        let cnf, count = cnf_of kind arity in
        [ label; cnf; string_of_int count ])
      [
        "C = AND(A,B)", Gate.And, 2;
        "C = NAND(A,B)", Gate.Nand, 2;
        "C = OR(A,B)", Gate.Or, 2;
        "C = NOR(A,B)", Gate.Nor, 2;
        "C = BUF(A)", Gate.Buf, 1;
        "C = NOT(A)", Gate.Not, 1;
        "C = XOR(A,B)", Gate.Xor, 2;
        "C = XNOR(A,B)", Gate.Xnor, 2;
      ]
  in
  (* MUX printed separately with its own variable names. *)
  let mux_row =
    let f = Formula.create () in
    let s = Formula.fresh_var f in
    let a = Formula.fresh_var f in
    let b = Formula.fresh_var f in
    let out = Formula.fresh_var f in
    Tseytin.encode_gate f Gate.Mux ~out ~fanins:[| s; a; b |];
    let name = function
      | 1 -> "S" | -1 -> "~S" | 2 -> "A" | -2 -> "~A" | 3 -> "B" | -3 -> "~B"
      | 4 -> "C" | -4 -> "~C" | l -> string_of_int l
    in
    let clauses =
      Array.to_list (Formula.clauses f)
      |> List.map (fun cl ->
             "(" ^ String.concat " | " (List.map name (Array.to_list cl)) ^ ")")
    in
    [ "C = MUX(S,A,B)"; String.concat " & " clauses;
      string_of_int (Formula.num_clauses f) ]
  in
  (* Relabel the two-input rows: var1=A var2=B var3=C already match. *)
  Tables.print ~title:"Table 1 — Tseytin transformation of basic logic gates"
    [ "gate"; "CNF (from the encoder)"; "clauses" ]
    (rows @ [ mux_row ]);
  print_endline
    "Only XOR/XNOR and MUX contribute 4 clauses per gate; cascaded MUXes are the\n\
     paper's chosen building block (Section 3.1)."
