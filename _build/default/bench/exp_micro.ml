(* Bechamel micro-benchmarks: one Test.make per table/figure kernel, so the
   cost of each experiment's inner loop is tracked over time. *)

open Bechamel
open Toolkit

module Generator = Fl_netlist.Generator
module Sim = Fl_netlist.Sim
module Bench_suite = Fl_netlist.Bench_suite
module Formula = Fl_cnf.Formula
module Tseytin = Fl_cnf.Tseytin
module Miter = Fl_cnf.Miter
module Cln = Fl_cln.Cln
module Fulllock = Fl_core.Fulllock
module Ppa = Fl_ppa.Ppa

let fig1_kernel =
  (* one hard random 3-SAT instance at the phase transition *)
  let rng = Random.State.make [| 1 |] in
  let f = Fl_sat.Random_sat.fixed_length rng ~num_vars:30 ~num_clauses:129 ~k:3 in
  Test.make ~name:"fig1: dpll @ ratio 4.3 (30 vars)"
    (Staged.stage (fun () -> ignore (Fl_sat.Dpll.solve f)))

let table2_kernel =
  let rng = Random.State.make [| 2 |] in
  let locked = Fulllock.standalone_cln_lock (Cln.blocking_spec ~n:8) rng in
  Test.make ~name:"table2: sat attack on blocking CLN n=8"
    (Staged.stage (fun () ->
         ignore (Fl_attacks.Sat_attack.run ~timeout:30.0 locked)))

let table3_kernel =
  Test.make ~name:"table3: ppa of CLN n=64"
    (Staged.stage (fun () -> ignore (Ppa.of_cln (Cln.default_spec ~n:64))))

let table4_kernel =
  let c = Bench_suite.load_scaled "c432" ~scale:4 in
  Test.make ~name:"table4: full-lock insertion (n=8, cyclic)"
    (Staged.stage (fun () ->
         let rng = Random.State.make [| 4 |] in
         ignore (Fulllock.lock_one rng ~policy:`Cyclic ~n:8 c)))

let table5_kernel =
  let c = Bench_suite.load_scaled "c432" ~scale:4 in
  let rng = Random.State.make [| 5 |] in
  let locked = Fulllock.lock_one rng ~policy:`Cyclic ~n:8 c in
  Test.make ~name:"table5: cycsat preprocessing (NC conditions)"
    (Staged.stage (fun () ->
         let f = Formula.create () in
         let vars =
           Formula.fresh_vars f (Fl_locking.Locked.num_key_bits locked)
         in
         Fl_attacks.Cycsat.no_cycle_condition locked.Fl_locking.Locked.locked f vars))

let fig7_kernel =
  let c = Bench_suite.load_scaled "c880" ~scale:4 in
  let rng = Random.State.make [| 7 |] in
  let locked = Fulllock.lock_one rng ~n:8 c in
  Test.make ~name:"fig7: miter construction + ratio"
    (Staged.stage (fun () ->
         ignore (Miter.clause_variable_ratio locked.Fl_locking.Locked.locked)))

let substrate_kernels =
  [
    (let c = Bench_suite.load_scaled "c1355" ~scale:2 in
     Test.make ~name:"substrate: tseytin encode (c1355/2)"
       (Staged.stage (fun () ->
            let f = Formula.create () in
            ignore (Tseytin.encode f c))));
    (let c = Bench_suite.load_scaled "c1355" ~scale:2 in
     let rng = Random.State.make [| 8 |] in
     let inputs = Sim.random_vector rng (Fl_netlist.Circuit.num_inputs c) in
     Test.make ~name:"substrate: simulation (c1355/2)"
       (Staged.stage (fun () -> ignore (Sim.eval c ~inputs ~keys:[||]))));
    Test.make ~name:"substrate: cln build n=64"
      (Staged.stage (fun () -> ignore (Cln.standalone (Cln.default_spec ~n:64))));
    (let profile =
       { Generator.num_inputs = 32; num_outputs = 16; num_gates = 1000;
         max_fanin = 4; and_bias = 0.8 }
     in
     Test.make ~name:"substrate: generator 1000 gates"
       (Staged.stage (fun () -> ignore (Generator.random ~seed:9 ~name:"g" profile))));
  ]

let all_tests =
  Test.make_grouped ~name:"fulllock"
    ([ fig1_kernel; table2_kernel; table3_kernel; table4_kernel; table5_kernel;
       fig7_kernel ]
     @ substrate_kernels)

let run () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:(Some 10) ()
  in
  let raw = Benchmark.all cfg instances all_tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (v :: _) -> v
        | Some [] | None -> Float.nan
      in
      let pretty =
        if Float.is_nan ns then "n/a"
        else if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
        else Printf.sprintf "%.0f ns" ns
      in
      rows := [ name; pretty ] :: !rows)
    results;
  let sorted = List.sort compare !rows in
  Tables.print ~title:"Micro-benchmarks (Bechamel, monotonic clock, OLS)"
    [ "kernel"; "time/run" ] sorted
