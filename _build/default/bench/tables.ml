(* Minimal fixed-width table rendering for the experiment reports. *)

let hline widths =
  let parts = List.map (fun w -> String.make (w + 2) '-') widths in
  "+" ^ String.concat "+" parts ^ "+"

let render_row widths cells =
  let padded =
    List.map2
      (fun w cell ->
        let cell = if String.length cell > w then String.sub cell 0 w else cell in
        Printf.sprintf " %-*s " w cell)
      widths cells
  in
  "|" ^ String.concat "|" padded ^ "|"

(* [print ~title header rows] renders a boxed table. *)
let print ~title header rows =
  let columns = List.length header in
  let widths =
    List.init columns (fun i ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length (List.nth header i))
          rows)
  in
  Printf.printf "\n== %s ==\n" title;
  print_endline (hline widths);
  print_endline (render_row widths header);
  print_endline (hline widths);
  List.iter (fun row -> print_endline (render_row widths row)) rows;
  print_endline (hline widths)

let seconds v = if v >= 100.0 then Printf.sprintf "%.0f" v else Printf.sprintf "%.2f" v
