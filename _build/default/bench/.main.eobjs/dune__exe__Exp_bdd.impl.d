bench/exp_bdd.ml: Array Fl_bdd Fl_core Fl_locking Fl_netlist Hashtbl List Printf Random Tables
