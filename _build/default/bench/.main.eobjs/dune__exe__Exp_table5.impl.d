bench/exp_table5.ml: Array Fl_attacks Fl_core Fl_locking Fl_netlist Hashtbl List Option Printf Random String Tables
