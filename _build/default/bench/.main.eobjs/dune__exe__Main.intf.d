bench/main.mli:
