bench/exp_table2.ml: Fl_attacks Fl_cln Fl_core List Printf Random Tables
