bench/exp_table4.ml: Fl_attacks Fl_core Fl_locking Fl_netlist Hashtbl List Printf Random Tables
