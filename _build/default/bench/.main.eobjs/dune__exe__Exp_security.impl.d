bench/exp_security.ml: Array Fl_attacks Fl_bdd Fl_cln Fl_core Fl_locking Fl_netlist Float Hashtbl List Printf Random String Tables
