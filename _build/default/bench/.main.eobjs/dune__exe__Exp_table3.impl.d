bench/exp_table3.ml: Fl_attacks Fl_cln Fl_core Fl_ppa List Printf Random Tables
