bench/main.ml: Array Exp_ablate Exp_bdd Exp_fig1 Exp_fig5 Exp_fig7 Exp_micro Exp_security Exp_table1 Exp_table2 Exp_table3 Exp_table4 Exp_table5 List Printf String Sys Unix
