bench/exp_micro.ml: Analyze Bechamel Benchmark Fl_attacks Fl_cln Fl_cnf Fl_core Fl_locking Fl_netlist Fl_ppa Fl_sat Float Hashtbl Instance List Measure Printf Random Staged Tables Test Time Toolkit
