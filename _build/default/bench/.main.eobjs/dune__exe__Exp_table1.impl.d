bench/exp_table1.ml: Array Char Fl_cnf Fl_netlist List String Tables
