bench/exp_fig7.ml: Fl_cnf Fl_core Fl_locking Fl_netlist Float Hashtbl List Printf Random String Tables
