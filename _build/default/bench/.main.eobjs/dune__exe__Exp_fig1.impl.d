bench/exp_fig1.ml: Fl_sat List Printf Random String Tables
