bench/exp_fig5.ml: Fl_ppa List Printf Tables
