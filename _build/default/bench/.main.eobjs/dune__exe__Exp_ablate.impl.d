bench/exp_ablate.ml: Fl_attacks Fl_cln Fl_core Fl_locking Fl_netlist Fl_ppa Fl_sat Hashtbl List Printf Random Tables
