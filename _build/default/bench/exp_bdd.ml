(* BDD trade-off analysis (in the style of the paper's reference [29]):
   the canonical BDD size of the locked function under a wrong key is an
   obfuscation metric orthogonal to SAT hardness — point-function schemes
   barely move it, routing obfuscation inflates it or blows it up. *)

module Circuit = Fl_netlist.Circuit
module Generator = Fl_netlist.Generator
module Locked = Fl_locking.Locked
module Fulllock = Fl_core.Fulllock
module Bdd = Fl_bdd.Bdd

let run ~deep () =
  let inputs = if deep then 14 else 12 in
  let host =
    Generator.random ~seed:303 ~name:"bdd-host"
      { Generator.num_inputs = inputs; num_outputs = 4; num_gates = 110;
        max_fanin = 3; and_bias = 0.75 }
  in
  let node_limit = if deep then 4_000_000 else 1_000_000 in
  let base = Bdd.circuit_size ~node_limit host ~keys:[||] in
  let cases =
    [
      ("SARLock", fun rng -> Fl_locking.Sarlock.lock rng ~key_bits:8 host);
      ("SFLL-HD (h=2)", fun rng -> Fl_locking.Sfll.lock rng ~key_bits:8 ~h:2 host);
      ("RLL (XOR)", fun rng -> Fl_locking.Rll.lock rng ~key_bits:8 host);
      ("LUT-Lock", fun rng -> Fl_locking.Lut_lock.lock rng ~gates:6 host);
      ("Cross-Lock", fun rng -> Fl_locking.Cross_lock.lock rng ~n:8 host);
      ("Full-Lock", fun rng -> Fulllock.lock_one rng ~n:8 host);
    ]
  in
  let show = function
    | Some v -> string_of_int v
    | None -> Printf.sprintf "> %d (blow-up)" node_limit
  in
  let rows =
    List.map
      (fun (name, lock) ->
        let rng = Random.State.make [| Hashtbl.hash name; 5 |] in
        let locked = lock rng in
        let lc = locked.Locked.locked in
        let wrong = Array.map not locked.Locked.correct_key in
        let correct_size =
          Bdd.circuit_size ~node_limit lc ~keys:locked.Locked.correct_key
        in
        let wrong_size = Bdd.circuit_size ~node_limit lc ~keys:wrong in
        [ name; show correct_size; show wrong_size ])
      cases
  in
  Tables.print
    ~title:
      (Printf.sprintf
         "BDD trade-off analysis — canonical function size (host: %s, %d nodes)"
         (match base with Some v -> string_of_int v | None -> "?")
         inputs)
    [ "scheme"; "BDD size @ correct key"; "BDD size @ wrong key" ]
    rows;
  print_endline
    "Every correct key reproduces the host's canonical function (identical BDD\n\
     size - a strong end-to-end invariant).  SARLock's wrong keys barely move\n\
     it (a point flip: why bypass is cheap), while LUT/routing schemes replace\n\
     the function wholesale."
