(* Table 2: SAT attack iterations and execution time on blocking
   (shuffle-based) vs almost non-blocking CLNs of growing size.

   The absolute budget is scaled down from the paper's 2e6-second testbed
   runs; the *shape* to reproduce is (1) exponential growth with N and
   (2) the almost non-blocking CLN timing out at a much smaller N than the
   blocking one. *)

module Cln = Fl_cln.Cln
module Fulllock = Fl_core.Fulllock
module Sat_attack = Fl_attacks.Sat_attack

let attack_row ~timeout spec seed =
  let rng = Random.State.make [| seed |] in
  let locked = Fulllock.standalone_cln_lock spec rng in
  let r = Sat_attack.run ~timeout locked in
  let per_iter =
    if r.Sat_attack.iterations = 0 then "-"
    else
      Printf.sprintf "%.3f"
        (r.Sat_attack.wall_time /. float_of_int r.Sat_attack.iterations)
  in
  match r.Sat_attack.status with
  | Sat_attack.Broken _ when r.Sat_attack.key_is_correct ->
    ( string_of_int r.Sat_attack.iterations,
      Tables.seconds r.Sat_attack.wall_time,
      per_iter )
  | Sat_attack.Broken _ ->
    ( Printf.sprintf "%d (wrong key)" r.Sat_attack.iterations,
      Tables.seconds r.Sat_attack.wall_time,
      per_iter )
  | Sat_attack.Timeout -> Printf.sprintf "%d*" r.Sat_attack.iterations, "TO", per_iter
  | Sat_attack.Iteration_limit | Sat_attack.No_key_found -> "-", "-", per_iter

let run ~deep () =
  let sizes = if deep then [ 4; 8; 16; 32; 64 ] else [ 4; 8; 16; 32 ] in
  let timeout = if deep then 300.0 else 20.0 in
  let header =
    [ "CLN size (N)"; "blocking iters"; "blocking time (s)"; "blocking s/iter";
      "non-blocking iters"; "non-blocking time (s)"; "non-blocking s/iter" ]
  in
  let rows =
    List.map
      (fun n ->
        let bi, bt, bp = attack_row ~timeout (Cln.blocking_spec ~n) (n + 1) in
        let ni, nt, np = attack_row ~timeout (Cln.default_spec ~n) (n + 2) in
        [ string_of_int n; bi; bt; bp; ni; nt; np ])
      sizes
  in
  Tables.print
    ~title:
      (Printf.sprintf
         "Table 2 — SAT attack on blocking vs almost non-blocking CLN (timeout %.0fs; \
          paper used 2e6 s)"
         timeout)
    header rows;
  print_endline
    "TO = timeout; N* = iterations completed before the timeout.  The paper's shape:\n\
     time grows exponentially with N and the almost non-blocking CLN resists at a\n\
     size (N=64) where the blocking CLN still falls (N<512)."
