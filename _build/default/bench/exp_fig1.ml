(* Fig. 1: median DPLL recursive calls vs clause/variable ratio on random
   fixed-length 3-SAT, reproducing the Mitchell/Selman/Levesque phase
   transition the paper builds on. *)

(* Median CDCL conflicts on the same distribution: the modern solver sees
   the same phase transition the 1992 DPLL experiments did. *)
let cdcl_median rng ~num_vars ~ratio ~samples =
  let counts =
    List.init samples (fun _ ->
        let num_clauses = max 1 (int_of_float (ratio *. float_of_int num_vars)) in
        let f = Fl_sat.Random_sat.fixed_length rng ~num_vars ~num_clauses ~k:3 in
        let _, _, stats = Fl_sat.Cdcl.solve_formula f in
        stats.Fl_sat.Cdcl.conflicts)
  in
  List.nth (List.sort compare counts) (samples / 2)

let run ~deep () =
  let num_vars = if deep then 50 else 40 in
  let samples = if deep then 41 else 21 in
  let ratios = [ 2.0; 2.5; 3.0; 3.5; 4.0; 4.3; 4.6; 5.0; 5.5; 6.0; 7.0; 8.0 ] in
  let rng = Random.State.make [| 0xF161 |] in
  let sweep =
    Fl_sat.Random_sat.ratio_sweep rng ~num_vars ~k:3 ~ratios ~samples
  in
  let crng = Random.State.make [| 0xF162 |] in
  let cdcl_vars = if deep then 175 else 120 in
  let cdcl =
    List.map (fun ratio -> cdcl_median crng ~num_vars:cdcl_vars ~ratio ~samples) ratios
  in
  let peak =
    List.fold_left (fun acc (_, calls, _) -> max acc calls) 1 sweep
  in
  let rows =
    List.map2
      (fun (ratio, calls, sat_fraction) conflicts ->
        let bar = String.make (max 1 (40 * calls / peak)) '#' in
        [
          Printf.sprintf "%.1f" ratio;
          string_of_int calls;
          Printf.sprintf "%.0f%%" (100.0 *. sat_fraction);
          string_of_int conflicts;
          bar;
        ])
      sweep cdcl
  in
  Tables.print
    ~title:
      (Printf.sprintf
         "Fig. 1 — median DPLL recursive calls (%d vars) and CDCL conflicts (%d vars),           random 3-SAT, %d samples/ratio"
         num_vars cdcl_vars samples)
    [ "clauses/vars"; "median DPLL calls"; "satisfiable"; "CDCL conflicts"; "profile" ]
    rows;
  let best_ratio, best_calls, _ =
    List.fold_left
      (fun (br, bc, bs) (r, c, s) -> if c > bc then r, c, s else br, bc, bs)
      (0.0, 0, 0.0) sweep
  in
  Printf.printf
    "Peak at ratio %.1f (%d calls) — the paper reports the hard band 3..6 with the\n\
     hardest instances near 4.3.\n"
    best_ratio best_calls
