test/test_ppa.mli:
