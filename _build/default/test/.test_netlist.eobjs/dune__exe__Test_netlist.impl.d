test/test_netlist.ml: Alcotest Array Char Fl_netlist Format List Option Printf QCheck2 QCheck_alcotest String
