test/test_locking.mli:
