test/test_attacks.ml: Alcotest Array Fl_attacks Fl_cln Fl_cnf Fl_core Fl_locking Fl_netlist Fl_sat List Printf QCheck2 QCheck_alcotest Random
