test/test_locking.ml: Alcotest Array Fl_cln Fl_core Fl_locking Fl_netlist Float List Printf QCheck2 QCheck_alcotest Random
