test/test_cln.ml: Alcotest Array Fl_cln Fl_netlist Float Format List Printf QCheck2 QCheck_alcotest Random
