test/test_cnf.ml: Alcotest Array Fl_cnf Fl_netlist Fl_sat List Printf QCheck2 QCheck_alcotest
