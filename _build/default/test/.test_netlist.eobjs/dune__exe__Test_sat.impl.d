test/test_sat.ml: Alcotest Array Fl_cnf Fl_sat List Printf QCheck2 QCheck_alcotest Random
