test/test_ppa.ml: Alcotest Fl_cln Fl_core Fl_locking Fl_netlist Fl_ppa Float List Printf Random
