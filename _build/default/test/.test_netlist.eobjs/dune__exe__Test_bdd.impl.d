test/test_bdd.ml: Alcotest Array Fl_bdd Fl_core Fl_locking Fl_netlist Float Option Printf QCheck2 QCheck_alcotest Random
