test/test_tools.ml: Alcotest Array Char Fl_core Fl_locking Fl_netlist Fl_sat List Option Printf QCheck2 QCheck_alcotest Random String
