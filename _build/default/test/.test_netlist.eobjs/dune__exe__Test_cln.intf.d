test/test_cln.mli:
