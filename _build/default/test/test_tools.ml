(* Tests for the tooling layer: Opt (netlist clean-up + key hardwiring),
   Equiv (SAT equivalence), Sim_word (bit-parallel simulation), Verilog I/O. *)

module Gate = Fl_netlist.Gate
module Circuit = Fl_netlist.Circuit
module Sim = Fl_netlist.Sim
module Sim_word = Fl_netlist.Sim_word
module Opt = Fl_netlist.Opt
module Verilog = Fl_netlist.Verilog
module Generator = Fl_netlist.Generator
module Bench_suite = Fl_netlist.Bench_suite
module Equiv = Fl_sat.Equiv
module Atpg = Fl_sat.Atpg
module Faults = Fl_netlist.Faults
module Locked = Fl_locking.Locked
module Fulllock = Fl_core.Fulllock

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let host ?(seed = 31) ?(gates = 90) () =
  Generator.random ~seed ~name:"host"
    { Generator.num_inputs = 9; num_outputs = 4; num_gates = gates;
      max_fanin = 3; and_bias = 0.75 }

(* ------------------------------------------------------------------ *)
(* Opt                                                                 *)
(* ------------------------------------------------------------------ *)

let test_opt_preserves_function () =
  let c = host () in
  let optimized, _ = Opt.run c in
  Circuit.validate optimized;
  check bool_t "equivalent" true
    (Sim.equivalent_exhaustive c optimized ~keys_a:[||] ~keys_b:[||])

let test_opt_folds_constants () =
  (* y = (a AND 0) OR (b AND 1) must fold to y = b. *)
  let b = Circuit.Builder.create ~name:"fold" () in
  let a = Circuit.Builder.input ~name:"a" b in
  let b_in = Circuit.Builder.input ~name:"b" b in
  let zero = Circuit.Builder.add b (Gate.Const false) [||] in
  let one = Circuit.Builder.add b (Gate.Const true) [||] in
  let g1 = Circuit.Builder.add b Gate.And [| a; zero |] in
  let g2 = Circuit.Builder.add b Gate.And [| b_in; one |] in
  let g3 = Circuit.Builder.add b Gate.Or [| g1; g2 |] in
  Circuit.Builder.output b "y" g3;
  let c = Circuit.of_builder b in
  let optimized, stats = Opt.run c in
  check int_t "no gates left" 0 (Circuit.num_gates optimized);
  check bool_t "constants folded" true (stats.Opt.constants_folded >= 1);
  check bool_t "function kept" true
    (Sim.equivalent_exhaustive c optimized ~keys_a:[||] ~keys_b:[||])

let test_opt_collapses_buffers () =
  let b = Circuit.Builder.create ~name:"bufs" () in
  let a = Circuit.Builder.input ~name:"a" b in
  let b1 = Circuit.Builder.add b Gate.Buf [| a |] in
  let b2 = Circuit.Builder.add b Gate.Buf [| b1 |] in
  let b3 = Circuit.Builder.add b Gate.Buf [| b2 |] in
  let g = Circuit.Builder.add b Gate.Not [| b3 |] in
  Circuit.Builder.output b "y" g;
  let c = Circuit.of_builder b in
  let optimized, _ = Opt.run c in
  check int_t "only the NOT left" 1 (Circuit.num_gates optimized)

let test_opt_simplifies_xor_pairs () =
  (* XOR(a, a, b) = b *)
  let b = Circuit.Builder.create ~name:"xp" () in
  let a = Circuit.Builder.input ~name:"a" b in
  let b_in = Circuit.Builder.input ~name:"b" b in
  let g = Circuit.Builder.add b Gate.Xor [| a; a; b_in |] in
  Circuit.Builder.output b "y" g;
  let c = Circuit.of_builder b in
  let optimized, _ = Opt.run c in
  check int_t "gone" 0 (Circuit.num_gates optimized);
  check bool_t "function kept" true
    (Sim.equivalent_exhaustive c optimized ~keys_a:[||] ~keys_b:[||])

let test_opt_mux_rules () =
  (* Mux(s, x, x) = x and Mux(s, 0, 1) = s. *)
  let b = Circuit.Builder.create ~name:"mux" () in
  let s = Circuit.Builder.input ~name:"s" b in
  let x = Circuit.Builder.input ~name:"x" b in
  let zero = Circuit.Builder.add b (Gate.Const false) [||] in
  let one = Circuit.Builder.add b (Gate.Const true) [||] in
  let m1 = Circuit.Builder.add b Gate.Mux [| s; x; x |] in
  let m2 = Circuit.Builder.add b Gate.Mux [| s; zero; one |] in
  Circuit.Builder.output b "y1" m1;
  Circuit.Builder.output b "y2" m2;
  let c = Circuit.of_builder b in
  let optimized, _ = Opt.run c in
  check int_t "all muxes gone" 0 (Circuit.num_gates optimized);
  check bool_t "function kept" true
    (Sim.equivalent_exhaustive c optimized ~keys_a:[||] ~keys_b:[||])

let test_opt_structural_hashing () =
  (* Two identical AND gates collapse into one. *)
  let b = Circuit.Builder.create ~name:"cse" () in
  let x = Circuit.Builder.input ~name:"x" b in
  let y = Circuit.Builder.input ~name:"y" b in
  let g1 = Circuit.Builder.add b Gate.And [| x; y |] in
  let g2 = Circuit.Builder.add b Gate.And [| y; x |] in
  (* commutative: same signature *)
  let g3 = Circuit.Builder.add b Gate.Xor [| g1; g2 |] in
  Circuit.Builder.output b "z" g3;
  let c = Circuit.of_builder b in
  let optimized, _ = Opt.run c in
  (* XOR(g, g) = 0 -> whole circuit folds to a constant. *)
  check int_t "all gates folded" 0 (Circuit.num_gates optimized);
  check bool_t "function kept" true
    (Sim.equivalent_exhaustive c optimized ~keys_a:[||] ~keys_b:[||])

let test_hardwire_recovers_oracle () =
  (* Activating a Full-Lock'd netlist with the correct key and sweeping must
     give back the oracle's function — and fold away most of the lock. *)
  let c = host () in
  let rng = Random.State.make [| 3 |] in
  let locked = Fulllock.lock_one rng ~n:4 c in
  let activated = Opt.hardwire_keys locked.Locked.locked locked.Locked.correct_key in
  check int_t "no keys left" 0 (Circuit.num_keys activated);
  let swept, stats = Opt.run activated in
  check bool_t "equivalent to oracle" true
    (Sim.equivalent_exhaustive swept c ~keys_a:[||] ~keys_b:[||]);
  check bool_t "lock mostly folded away" true
    (Circuit.num_gates swept < Circuit.num_gates locked.Locked.locked);
  check bool_t "did real work" true
    (stats.Opt.constants_folded + stats.Opt.buffers_collapsed
     + stats.Opt.gates_simplified
     > 0)

let test_hardwire_wrong_key_differs () =
  let c = host () in
  let rng = Random.State.make [| 4 |] in
  let locked = Fulllock.lock_one rng ~n:4 c in
  let wrong = Array.map not locked.Locked.correct_key in
  let activated, _ = Opt.run (Opt.hardwire_keys locked.Locked.locked wrong) in
  check bool_t "differs from oracle" false
    (Sim.equivalent_exhaustive activated c ~keys_a:[||] ~keys_b:[||])

(* ------------------------------------------------------------------ *)
(* Equiv                                                               *)
(* ------------------------------------------------------------------ *)

let test_equiv_reflexive () =
  let c = host () in
  check bool_t "c = c" true (Equiv.check c c = Equiv.Equivalent)

let test_equiv_finds_difference () =
  let c = host () in
  let b = Circuit.Builder.create ~name:"mut" () in
  let map = Circuit.copy_nodes_into b c in
  (* Negate the driver of output 0. *)
  let _, out0 = c.Circuit.outputs.(0) in
  let inv = Circuit.Builder.add b Gate.Not [| map.(out0) |] in
  Array.iteri
    (fun i (port, id) ->
      Circuit.Builder.output b port (if i = 0 then inv else map.(id)))
    c.Circuit.outputs;
  let mutated = Circuit.of_builder b in
  match Equiv.check c mutated with
  | Equiv.Different { inputs; outputs_a; outputs_b } ->
    check bool_t "counterexample is real" true
      (Sim.eval c ~inputs ~keys:[||] = outputs_a
       && Sim.eval mutated ~inputs ~keys:[||] = outputs_b
       && outputs_a <> outputs_b)
  | Equiv.Equivalent | Equiv.Unknown -> Alcotest.fail "expected Different"

let test_equiv_agrees_with_opt () =
  (* Optimised circuits are formally equivalent to their originals. *)
  for seed = 0 to 5 do
    let c = host ~seed () in
    let optimized, _ = Opt.run c in
    check bool_t
      (Printf.sprintf "seed %d" seed)
      true
      (Equiv.check c optimized = Equiv.Equivalent)
  done

let test_equiv_check_key () =
  let c = host () in
  let rng = Random.State.make [| 5 |] in
  let locked = Fl_locking.Rll.lock rng ~key_bits:6 c in
  check bool_t "correct key proves" true
    (Equiv.check_key ~locked:locked.Locked.locked ~oracle:c locked.Locked.correct_key
     = Equiv.Equivalent);
  let wrong = Array.map not locked.Locked.correct_key in
  (match Equiv.check_key ~locked:locked.Locked.locked ~oracle:c wrong with
   | Equiv.Different _ -> ()
   | Equiv.Equivalent | Equiv.Unknown -> Alcotest.fail "wrong key not caught")

let test_equiv_rejects_cyclic () =
  let c = host ~gates:100 () in
  let rng = Random.State.make [| 23 |] in
  let rec find_cyclic s =
    if s > 40 then None
    else begin
      let rng2 = Random.State.make [| s |] in
      let l = Fulllock.lock_one rng2 ~policy:`Cyclic ~n:4 c in
      if Circuit.is_acyclic l.Locked.locked then find_cyclic (s + 1) else Some l
    end
  in
  ignore rng;
  match find_cyclic 0 with
  | None -> ()
  | Some l ->
    (try
       ignore (Equiv.check_key ~locked:l.Locked.locked ~oracle:c l.Locked.correct_key);
       Alcotest.fail "expected Invalid_argument for cyclic circuit"
     with Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* Sim_word                                                            *)
(* ------------------------------------------------------------------ *)

let test_word_matches_scalar () =
  let c = host () in
  let rng = Random.State.make [| 6 |] in
  let vectors =
    List.init Sim_word.lanes (fun _ -> Sim.random_vector rng (Circuit.num_inputs c))
  in
  let packed = Sim_word.pack vectors in
  let word_out = Sim_word.eval c ~inputs:packed ~keys:[||] in
  let unpacked = Sim_word.unpack ~lanes_used:(List.length vectors) word_out in
  List.iteri
    (fun lane v ->
      let expected = Sim.eval c ~inputs:v ~keys:[||] in
      check (Alcotest.array bool_t)
        (Printf.sprintf "lane %d" lane)
        expected (List.nth unpacked lane))
    vectors

let test_word_cyclic_matches_scalar () =
  let c = host ~gates:100 () in
  let rng = Random.State.make [| 7 |] in
  let locked =
    let rec go s =
      let l = Fulllock.lock_one (Random.State.make [| s |]) ~policy:`Cyclic ~n:4 c in
      if Circuit.is_acyclic l.Locked.locked then go (s + 1) else l
    in
    go 0
  in
  let lc = locked.Locked.locked in
  let key = locked.Locked.correct_key in
  let vectors = List.init 16 (fun _ -> Sim.random_vector rng (Circuit.num_inputs lc)) in
  let packed = Sim_word.pack vectors in
  let packed_keys = Array.map (fun b -> if b then -1 else 0) key in
  let word_out = Sim_word.eval lc ~inputs:packed ~keys:packed_keys in
  let unpacked = Sim_word.unpack ~lanes_used:16 word_out in
  List.iteri
    (fun lane v ->
      let expected = Sim.eval lc ~inputs:v ~keys:key in
      check (Alcotest.array bool_t)
        (Printf.sprintf "cyclic lane %d" lane)
        expected (List.nth unpacked lane))
    vectors

let test_word_unresolved () =
  (* y = NOT y: every lane undefined. *)
  let b = Circuit.Builder.create ~name:"osc" () in
  let _x = Circuit.Builder.input ~name:"x" b in
  let inv = Circuit.Builder.declare ~name:"inv" b Gate.Not in
  Circuit.Builder.set_fanins b inv [| inv |];
  Circuit.Builder.output b "y" inv;
  let c = Circuit.of_builder b in
  (try
     ignore (Sim_word.eval c ~inputs:[| 0 |] ~keys:[||]);
     Alcotest.fail "expected Unresolved"
   with Sim.Unresolved _ -> ());
  let tri = Sim_word.eval_tristate c ~inputs:[| 0 |] ~keys:[||] in
  check int_t "all lanes undefined" 0 tri.(0).Sim_word.defined

let test_word_count_diff () =
  check int_t "no diff" 0 (Sim_word.count_diff_lanes [| 5; 3 |] [| 5; 3 |]);
  check int_t "two lanes" 2 (Sim_word.count_diff_lanes [| 0b101 |] [| 0b000 |]);
  check int_t "across words" 2 (Sim_word.count_diff_lanes [| 1; 2 |] [| 0; 0 |])

(* ------------------------------------------------------------------ *)
(* Faults                                                              *)
(* ------------------------------------------------------------------ *)

let test_faults_enumerate () =
  let c = Bench_suite.c17 () in
  (* 5 inputs + 6 gates, 2 faults each *)
  check int_t "fault count" 22 (List.length (Faults.enumerate c))

let test_faults_xor_detects_everything () =
  (* y = a XOR b: every single stuck-at fault is detectable, and the
     exhaustive test set detects them all. *)
  let b = Circuit.Builder.create ~name:"x" () in
  let a = Circuit.Builder.input ~name:"a" b in
  let b_in = Circuit.Builder.input ~name:"b" b in
  let g = Circuit.Builder.add b Gate.Xor [| a; b_in |] in
  Circuit.Builder.output b "y" g;
  let c = Circuit.of_builder b in
  let vectors = List.init 4 (fun v -> Sim.vector_of_int ~width:2 v) in
  let cov = Faults.coverage c ~keys:[||] ~vectors in
  check int_t "all detected" cov.Faults.total cov.Faults.detected

let test_faults_undetectable_redundant () =
  (* y = a OR (a AND b): the AND gate is redundant logic; its stuck-at-0
     fault is undetectable by any vector. *)
  let b = Circuit.Builder.create ~name:"red" () in
  let a = Circuit.Builder.input ~name:"a" b in
  let b_in = Circuit.Builder.input ~name:"b" b in
  let g_and = Circuit.Builder.add ~name:"g_and" b Gate.And [| a; b_in |] in
  let g_or = Circuit.Builder.add b Gate.Or [| a; g_and |] in
  Circuit.Builder.output b "y" g_or;
  let c = Circuit.of_builder b in
  let vectors = List.init 4 (fun v -> Sim.vector_of_int ~width:2 v) in
  let cov = Faults.coverage c ~keys:[||] ~vectors in
  let gid = Option.get (Circuit.find_by_name c "g_and") in
  check bool_t "and s-a-0 undetectable" true
    (List.exists
       (fun f -> f.Faults.node = gid && f.Faults.stuck_at = false)
       cov.Faults.undetected)

let test_faults_coverage_c17 () =
  let c = Bench_suite.c17 () in
  let vectors = List.init 32 (fun v -> Sim.vector_of_int ~width:5 v) in
  let cov = Faults.coverage c ~keys:[||] ~vectors in
  (* c17 is fully testable: exhaustive vectors detect every fault. *)
  check int_t "full coverage" cov.Faults.total cov.Faults.detected

let test_faults_locking_reduces_testability () =
  (* The locked netlist contains MUX fabric where deselected paths are
     unobservable under the activation key: the same random test set covers
     a smaller fraction of its faults than of the original's. *)
  let c = host () in
  let rng = Random.State.make [| 91 |] in
  let locked = Fulllock.lock_one rng ~n:4 c in
  let lc = locked.Locked.locked in
  let vectors =
    List.init 128 (fun i ->
        Sim.random_vector (Random.State.make [| i |]) (Circuit.num_inputs lc))
  in
  let orig_cov = Faults.coverage c ~keys:[||] ~vectors in
  let locked_cov = Faults.coverage lc ~keys:locked.Locked.correct_key ~vectors in
  check bool_t
    (Printf.sprintf "original %.2f > locked %.2f"
       (Faults.coverage_fraction orig_cov)
       (Faults.coverage_fraction locked_cov))
    true
    (Faults.coverage_fraction orig_cov > Faults.coverage_fraction locked_cov);
  check bool_t "locked still has undetectable lock faults" true
    (List.length locked_cov.Faults.undetected > List.length orig_cov.Faults.undetected)

(* ------------------------------------------------------------------ *)
(* ATPG                                                                *)
(* ------------------------------------------------------------------ *)

let test_atpg_generates_tests () =
  (* Every fault of c17 is testable; generated vectors must actually detect
     their faults (cross-checked against the fault simulator). *)
  let c = Bench_suite.c17 () in
  List.iter
    (fun fault ->
      match Atpg.generate c ~keys:[||] ~node:fault.Faults.node
              ~stuck_at:fault.Faults.stuck_at with
      | Atpg.Test v ->
        let packed = Sim_word.pack [ v ] in
        check bool_t "vector detects its fault" true
          (Faults.detects c ~keys:[||] ~inputs:packed fault)
      | Atpg.Untestable -> Alcotest.fail "c17 fault reported untestable"
      | Atpg.Unknown -> Alcotest.fail "budget too small")
    (Faults.enumerate c)

let test_atpg_proves_redundancy () =
  (* y = a OR (a AND b): the AND's stuck-at-0 is provably untestable. *)
  let b = Circuit.Builder.create ~name:"red" () in
  let a = Circuit.Builder.input ~name:"a" b in
  let b_in = Circuit.Builder.input ~name:"b" b in
  let g_and = Circuit.Builder.add ~name:"g_and" b Gate.And [| a; b_in |] in
  let g_or = Circuit.Builder.add b Gate.Or [| a; g_and |] in
  Circuit.Builder.output b "y" g_or;
  let c = Circuit.of_builder b in
  let gid = Option.get (Circuit.find_by_name c "g_and") in
  check bool_t "untestable proved" true
    (Atpg.generate c ~keys:[||] ~node:gid ~stuck_at:false = Atpg.Untestable);
  check bool_t "s-a-1 testable" true
    (match Atpg.generate c ~keys:[||] ~node:gid ~stuck_at:true with
     | Atpg.Test _ -> true
     | Atpg.Untestable | Atpg.Unknown -> false)

let test_atpg_cover_c17 () =
  let c = Bench_suite.c17 () in
  let faults =
    List.map (fun f -> f.Faults.node, f.Faults.stuck_at) (Faults.enumerate c)
  in
  let r = Atpg.cover c ~keys:[||] ~faults in
  check int_t "all testable" (List.length faults) r.Atpg.testable;
  check int_t "no unknowns" 0 r.Atpg.unknown;
  (* The resulting compact test set achieves full fault coverage. *)
  let cov = Faults.coverage c ~keys:[||] ~vectors:r.Atpg.tests in
  check int_t "full coverage" cov.Faults.total cov.Faults.detected

let test_atpg_cover_locked () =
  (* Production-test flow for an activated locked part: ATPG closes the gap
     left by random vectors and proves the rest redundant. *)
  let c = host ~gates:60 () in
  let rng = Random.State.make [| 92 |] in
  let locked = Fulllock.lock_one rng ~n:4 c in
  let lc = locked.Locked.locked in
  let keys = locked.Locked.correct_key in
  let faults =
    List.map (fun f -> f.Faults.node, f.Faults.stuck_at) (Faults.enumerate lc)
  in
  let r = Atpg.cover ~budget_per_fault:10.0 lc ~keys ~faults in
  check int_t "no unknowns" 0 r.Atpg.unknown;
  check bool_t "lock logic contains redundancy" true (r.Atpg.untestable > 0);
  let cov = Faults.coverage lc ~keys ~vectors:r.Atpg.tests in
  check int_t "testable faults all covered"
    r.Atpg.testable cov.Faults.detected

(* ------------------------------------------------------------------ *)
(* Verilog                                                             *)
(* ------------------------------------------------------------------ *)

let test_verilog_roundtrip_simple () =
  let c = Bench_suite.c17 () in
  let text = Verilog.to_string c in
  let c2 = Verilog.parse_string text in
  check bool_t "roundtrip equivalent" true
    (Sim.equivalent_exhaustive c c2 ~keys_a:[||] ~keys_b:[||])

let test_verilog_roundtrip_locked () =
  (* Locked netlists have MUXes, XOR inverters, constants and key inputs —
     the whole Verilog surface. *)
  let c = host () in
  let rng = Random.State.make [| 8 |] in
  let locked = Fulllock.lock_one rng ~n:4 c in
  let lc = locked.Locked.locked in
  let c2 = Verilog.parse_string (Verilog.to_string lc) in
  check int_t "keys preserved" (Circuit.num_keys lc) (Circuit.num_keys c2);
  let key = locked.Locked.correct_key in
  let rng2 = Random.State.make [| 9 |] in
  let vectors = List.init 64 (fun _ -> Sim.random_vector rng2 (Circuit.num_inputs lc)) in
  check bool_t "roundtrip equivalent" true
    (Sim.equal_on_vectors lc c2 ~keys_a:key ~keys_b:key ~vectors)

let test_verilog_parses_handwritten () =
  let text =
    "module adder_bit (a, b, cin, sum, cout);\n\
    \  input a, b, cin;\n\
    \  output sum, cout;\n\
    \  wire t;\n\
    \  assign t = a ^ b;\n\
    \  assign sum = t ^ cin;\n\
    \  assign cout = (a & b) | (t & cin);\n\
     endmodule\n"
  in
  let c = Verilog.parse_string text in
  Circuit.validate c;
  check int_t "inputs" 3 (Circuit.num_inputs c);
  check int_t "outputs" 2 (Circuit.num_outputs c);
  (* Full adder truth check. *)
  for v = 0 to 7 do
    let inputs = Sim.vector_of_int ~width:3 v in
    let out = Sim.eval c ~inputs ~keys:[||] in
    let a = inputs.(0) and b = inputs.(1) and cin = inputs.(2) in
    let sum = a <> b <> cin in
    let cout = (a && b) || ((a <> b) && cin) in
    check (Alcotest.array bool_t) (Printf.sprintf "v=%d" v) [| sum; cout |] out
  done

let test_verilog_mux_ternary () =
  let text =
    "module m (s, a, b, y);\n  input s, a, b;\n  output y;\n\
    \  assign y = s ? a : b;\nendmodule\n"
  in
  let c = Verilog.parse_string text in
  (* s=1 -> a *)
  check (Alcotest.array bool_t) "s=1" [| true |]
    (Sim.eval c ~inputs:[| true; true; false |] ~keys:[||]);
  check (Alcotest.array bool_t) "s=0" [| false |]
    (Sim.eval c ~inputs:[| false; true; false |] ~keys:[||])

let test_verilog_keyinput_convention () =
  let text =
    "module m (a, keyinput0, y);\n  input a, keyinput0;\n  output y;\n\
    \  xor g0 (y, a, keyinput0);\nendmodule\n"
  in
  let c = Verilog.parse_string text in
  check int_t "one key" 1 (Circuit.num_keys c);
  check int_t "one input" 1 (Circuit.num_inputs c)

let test_verilog_errors () =
  List.iter
    (fun text ->
      try
        ignore (Verilog.parse_string text);
        Alcotest.failf "expected parse error for %S" text
      with Verilog.Parse_error _ -> ())
    [
      "module m (a);\n  input a;\nendmodule extra\n" |> String.map (fun c -> c);
      "module m (a, y); input a; output y; assign y = a +\nendmodule\n";
      "module m (a, y); input a; output y; frobnicate g (y, a);\nendmodule\n";
      "module m (a, y); input a; output y; assign y = undriven_wire; endmodule\n";
      "no module here\n";
    ]

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let qcheck_case ?(count = 40) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let prop_opt_equivalent =
  let gen = QCheck2.Gen.int_bound 5000 in
  qcheck_case "opt preserves function" gen (fun seed ->
      let c = host ~seed ~gates:(50 + (seed mod 70)) () in
      let optimized, _ = Opt.run c in
      Equiv.check c optimized = Equiv.Equivalent)

let prop_word_sim_matches =
  let gen = QCheck2.Gen.(pair (int_bound 5000) (int_bound 10000)) in
  qcheck_case "word sim = scalar sim" gen (fun (seed, vseed) ->
      let c = host ~seed () in
      let rng = Random.State.make [| vseed |] in
      let vectors = List.init 8 (fun _ -> Sim.random_vector rng (Circuit.num_inputs c)) in
      let out = Sim_word.eval c ~inputs:(Sim_word.pack vectors) ~keys:[||] in
      let unpacked = Sim_word.unpack ~lanes_used:8 out in
      List.for_all2
        (fun v got -> Sim.eval c ~inputs:v ~keys:[||] = got)
        vectors unpacked)

let prop_verilog_roundtrip =
  let gen = QCheck2.Gen.int_bound 5000 in
  qcheck_case ~count:30 "verilog roundtrip" gen (fun seed ->
      let c = host ~seed () in
      let c2 = Verilog.parse_string (Verilog.to_string c) in
      Equiv.check c c2 = Equiv.Equivalent)

let prop_verilog_parser_total =
  let gen =
    QCheck2.Gen.(string_size ~gen:(map Char.chr (int_range 9 122)) (int_range 0 200))
  in
  qcheck_case ~count:300 "verilog parser is total" gen (fun text ->
      match Verilog.parse_string ("module m (a);\n" ^ text ^ "\nendmodule") with
      | _ -> true
      | exception Verilog.Parse_error _ -> true
      | exception Invalid_argument _ -> true)

let prop_hardwire_correct_key =
  let gen = QCheck2.Gen.int_bound 5000 in
  qcheck_case ~count:20 "hardwired correct key = oracle" gen (fun seed ->
      let c = host ~seed:(seed + 3) () in
      let rng = Random.State.make [| seed |] in
      let locked = Fulllock.lock_one rng ~n:4 c in
      let activated, _ =
        Opt.run (Opt.hardwire_keys locked.Locked.locked locked.Locked.correct_key)
      in
      Equiv.check activated c = Equiv.Equivalent)

let () =
  Alcotest.run "tools"
    [
      ( "opt",
        [
          Alcotest.test_case "preserves function" `Quick test_opt_preserves_function;
          Alcotest.test_case "folds constants" `Quick test_opt_folds_constants;
          Alcotest.test_case "collapses buffers" `Quick test_opt_collapses_buffers;
          Alcotest.test_case "xor pairs" `Quick test_opt_simplifies_xor_pairs;
          Alcotest.test_case "mux rules" `Quick test_opt_mux_rules;
          Alcotest.test_case "structural hashing" `Quick test_opt_structural_hashing;
          Alcotest.test_case "hardwire + sweep = oracle" `Quick test_hardwire_recovers_oracle;
          Alcotest.test_case "hardwire wrong key" `Quick test_hardwire_wrong_key_differs;
        ] );
      ( "equiv",
        [
          Alcotest.test_case "reflexive" `Quick test_equiv_reflexive;
          Alcotest.test_case "finds difference" `Quick test_equiv_finds_difference;
          Alcotest.test_case "agrees with opt" `Quick test_equiv_agrees_with_opt;
          Alcotest.test_case "check key" `Quick test_equiv_check_key;
          Alcotest.test_case "rejects cyclic" `Quick test_equiv_rejects_cyclic;
        ] );
      ( "sim_word",
        [
          Alcotest.test_case "matches scalar" `Quick test_word_matches_scalar;
          Alcotest.test_case "cyclic matches scalar" `Quick test_word_cyclic_matches_scalar;
          Alcotest.test_case "unresolved" `Quick test_word_unresolved;
          Alcotest.test_case "count diff" `Quick test_word_count_diff;
        ] );
      ( "faults",
        [
          Alcotest.test_case "enumerate" `Quick test_faults_enumerate;
          Alcotest.test_case "xor full coverage" `Quick test_faults_xor_detects_everything;
          Alcotest.test_case "redundant undetectable" `Quick test_faults_undetectable_redundant;
          Alcotest.test_case "c17 coverage" `Quick test_faults_coverage_c17;
          Alcotest.test_case "locking reduces testability" `Quick test_faults_locking_reduces_testability;
        ] );
      ( "atpg",
        [
          Alcotest.test_case "generates tests" `Quick test_atpg_generates_tests;
          Alcotest.test_case "proves redundancy" `Quick test_atpg_proves_redundancy;
          Alcotest.test_case "covers c17" `Quick test_atpg_cover_c17;
          Alcotest.test_case "covers locked part" `Slow test_atpg_cover_locked;
        ] );
      ( "verilog",
        [
          Alcotest.test_case "roundtrip c17" `Quick test_verilog_roundtrip_simple;
          Alcotest.test_case "roundtrip locked" `Quick test_verilog_roundtrip_locked;
          Alcotest.test_case "handwritten" `Quick test_verilog_parses_handwritten;
          Alcotest.test_case "mux ternary" `Quick test_verilog_mux_ternary;
          Alcotest.test_case "keyinput convention" `Quick test_verilog_keyinput_convention;
          Alcotest.test_case "errors" `Quick test_verilog_errors;
        ] );
      ( "properties",
        [
          prop_opt_equivalent;
          prop_word_sim_matches;
          prop_verilog_roundtrip;
          prop_verilog_parser_total;
          prop_hardwire_correct_key;
        ] );
    ]
