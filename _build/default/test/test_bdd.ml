(* Tests for Fl_bdd: ROBDD canonicity, model counting, circuit conversion,
   exact corruption. *)

module Gate = Fl_netlist.Gate
module Circuit = Fl_netlist.Circuit
module Sim = Fl_netlist.Sim
module Generator = Fl_netlist.Generator
module Bench_suite = Fl_netlist.Bench_suite
module Locked = Fl_locking.Locked
module Bdd = Fl_bdd.Bdd

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let float_t = Alcotest.float 1e-9

let test_constants_and_vars () =
  let m = Bdd.create ~num_vars:3 () in
  check bool_t "tru <> fls" false (Bdd.equal Bdd.tru Bdd.fls);
  let x0 = Bdd.var m 0 in
  check bool_t "var canonical" true (Bdd.equal x0 (Bdd.var m 0));
  check int_t "var size" 1 (Bdd.size m x0);
  check float_t "var sat count" 4.0 (Bdd.sat_count m x0)

let test_boolean_laws () =
  let m = Bdd.create ~num_vars:4 () in
  let a = Bdd.var m 0 and b = Bdd.var m 1 and c = Bdd.var m 2 in
  (* Canonicity turns algebraic identities into physical equality. *)
  check bool_t "commutativity" true
    (Bdd.equal (Bdd.mk_and m a b) (Bdd.mk_and m b a));
  check bool_t "de morgan" true
    (Bdd.equal
       (Bdd.mk_not m (Bdd.mk_and m a b))
       (Bdd.mk_or m (Bdd.mk_not m a) (Bdd.mk_not m b)));
  check bool_t "associativity" true
    (Bdd.equal
       (Bdd.mk_or m a (Bdd.mk_or m b c))
       (Bdd.mk_or m (Bdd.mk_or m a b) c));
  check bool_t "xor self" true (Bdd.equal (Bdd.mk_xor m a a) Bdd.fls);
  check bool_t "excluded middle" true
    (Bdd.equal (Bdd.mk_or m a (Bdd.mk_not m a)) Bdd.tru);
  check bool_t "ite idempotent" true (Bdd.equal (Bdd.ite m a a Bdd.fls) a)

let test_sat_count () =
  let m = Bdd.create ~num_vars:3 () in
  let a = Bdd.var m 0 and b = Bdd.var m 1 and c = Bdd.var m 2 in
  check float_t "and" 2.0 (Bdd.sat_count m (Bdd.mk_and m a b));
  check float_t "or" 6.0 (Bdd.sat_count m (Bdd.mk_or m a b));
  check float_t "xor3" 4.0 (Bdd.sat_count m (Bdd.mk_xor m (Bdd.mk_xor m a b) c));
  check float_t "tru" 8.0 (Bdd.sat_count m Bdd.tru);
  check float_t "fls" 0.0 (Bdd.sat_count m Bdd.fls)

let test_any_sat () =
  let m = Bdd.create ~num_vars:3 () in
  let a = Bdd.var m 0 and c = Bdd.var m 2 in
  let f = Bdd.mk_and m a (Bdd.mk_not m c) in
  (match Bdd.any_sat m f with
   | Some witness -> check bool_t "witness satisfies" true (Bdd.eval m f witness)
   | None -> Alcotest.fail "sat function has no witness");
  check bool_t "fls has none" true (Bdd.any_sat m Bdd.fls = None)

let test_node_limit () =
  let m = Bdd.create ~node_limit:8 ~num_vars:10 () in
  try
    (* Parity of 10 variables needs > 8 nodes. *)
    let parity = ref Bdd.fls in
    for i = 0 to 9 do
      parity := Bdd.mk_xor m !parity (Bdd.var m i)
    done;
    Alcotest.fail "expected Too_large"
  with Bdd.Too_large -> ()

let test_of_circuit_matches_sim () =
  let c = Bench_suite.c17 () in
  let m = Bdd.create ~num_vars:5 () in
  let outs = Bdd.of_circuit m c ~keys:[||] in
  for v = 0 to 31 do
    let inputs = Sim.vector_of_int ~width:5 v in
    let expected = Sim.eval c ~inputs ~keys:[||] in
    Array.iteri
      (fun i out ->
        check bool_t (Printf.sprintf "v=%d out=%d" v i) expected.(i)
          (Bdd.eval m out inputs))
      outs
  done

let test_equivalence_via_canonicity () =
  (* The optimizer's output is the same BDD node as the original's. *)
  let c =
    Generator.random ~seed:8 ~name:"g"
      { Generator.num_inputs = 8; num_outputs = 3; num_gates = 60;
        max_fanin = 3; and_bias = 0.7 }
  in
  let optimized, _ = Fl_netlist.Opt.run c in
  let m = Bdd.create ~num_vars:8 () in
  let a = Bdd.of_circuit m c ~keys:[||] in
  let b = Bdd.of_circuit m optimized ~keys:[||] in
  Array.iteri
    (fun i x -> check bool_t (Printf.sprintf "out %d" i) true (Bdd.equal x b.(i)))
    a

let test_exact_corruption_sarlock () =
  (* SARLock with w compared bits over n inputs: a wrong key corrupts
     exactly 2^(n-w) of the 2^n inputs on 1 of the outputs — the BDD count
     must be exactly that. *)
  let c =
    Generator.random ~seed:5 ~name:"h"
      { Generator.num_inputs = 8; num_outputs = 4; num_gates = 50;
        max_fanin = 3; and_bias = 0.8 }
  in
  let rng = Random.State.make [| 3 |] in
  let locked = Fl_locking.Sarlock.lock rng ~key_bits:6 c in
  let wrong = Array.map not locked.Locked.correct_key in
  let corruption = Bdd.exact_corruption locked ~key:wrong in
  (* 2^(8-6) = 4 corrupted inputs, 1 of 4 outputs, 2^8 inputs. *)
  check float_t "exact sarlock corruption" (4.0 /. (4.0 *. 256.0)) corruption

let test_exact_corruption_correct_key_zero () =
  let c =
    Generator.random ~seed:6 ~name:"h"
      { Generator.num_inputs = 8; num_outputs = 4; num_gates = 60;
        max_fanin = 3; and_bias = 0.8 }
  in
  let rng = Random.State.make [| 4 |] in
  let locked = Fl_locking.Rll.lock rng ~key_bits:8 c in
  check float_t "correct key corrupts nothing" 0.0
    (Bdd.exact_corruption locked ~key:locked.Locked.correct_key)

let test_exact_vs_sampled_corruption () =
  (* The word-parallel sampler must approximate the exact BDD number. *)
  let c =
    Generator.random ~seed:7 ~name:"h"
      { Generator.num_inputs = 10; num_outputs = 4; num_gates = 70;
        max_fanin = 3; and_bias = 0.8 }
  in
  let rng = Random.State.make [| 5 |] in
  let locked = Fl_core.Fulllock.lock_one rng ~n:4 c in
  (* average exact corruption over the sampler's own wrong keys is hard to
     align; instead compare on one fixed wrong key. *)
  let wrong = Array.map not locked.Locked.correct_key in
  let exact = Bdd.exact_corruption locked ~key:wrong in
  (* sampled on the same key: *)
  let n = 10 in
  let samples = 4096 in
  let srng = Random.State.make [| 9 |] in
  let diff = ref 0 in
  for _ = 1 to samples do
    let inputs = Sim.random_vector srng n in
    let a = Locked.eval_locked locked ~key:wrong ~inputs in
    let b = Locked.query_oracle locked inputs in
    Array.iteri (fun i v -> if v <> b.(i) then incr diff) a
  done;
  let sampled = float_of_int !diff /. float_of_int (samples * 4) in
  check bool_t
    (Printf.sprintf "sampled %.4f ~ exact %.4f" sampled exact)
    true
    (Float.abs (sampled -. exact) < 0.05)

let test_locked_bdd_blowup () =
  (* The BDD trade-off view of obfuscation: locking (with free key
     variables pinned to a wrong key, CLN muxes everywhere) inflates BDD
     size versus the bare host. *)
  let c =
    Generator.random ~seed:9 ~name:"h"
      { Generator.num_inputs = 10; num_outputs = 4; num_gates = 80;
        max_fanin = 3; and_bias = 0.8 }
  in
  let rng = Random.State.make [| 6 |] in
  let locked = Fl_core.Fulllock.lock_one rng ~n:8 c in
  let base = Option.get (Bdd.circuit_size c ~keys:[||]) in
  match Bdd.circuit_size locked.Locked.locked ~keys:locked.Locked.correct_key with
  | None -> ()  (* blew the node limit: maximal blow-up, claim holds *)
  | Some locked_size ->
    check bool_t
      (Printf.sprintf "locked %d >= base %d" locked_size base)
      true (locked_size >= base)

let qcheck_case ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let prop_bdd_matches_sim =
  let gen = QCheck2.Gen.(pair (int_bound 2000) (int_bound 0xffff)) in
  qcheck_case "bdd = simulation" gen (fun (seed, stim) ->
      let c =
        Generator.random ~seed ~name:"p"
          { Generator.num_inputs = 7; num_outputs = 3; num_gates = 40;
            max_fanin = 3; and_bias = 0.7 }
      in
      let m = Bdd.create ~num_vars:7 () in
      let outs = Bdd.of_circuit m c ~keys:[||] in
      let inputs = Array.init 7 (fun i -> stim land (1 lsl i) <> 0) in
      let expected = Sim.eval c ~inputs ~keys:[||] in
      Array.for_all2 (fun e out -> e = Bdd.eval m out inputs) expected outs)

let prop_sat_count_matches_enumeration =
  let gen = QCheck2.Gen.int_bound 2000 in
  qcheck_case ~count:30 "sat_count = enumeration" gen (fun seed ->
      let c =
        Generator.random ~seed:(seed + 13) ~name:"p"
          { Generator.num_inputs = 6; num_outputs = 1; num_gates = 30;
            max_fanin = 3; and_bias = 0.7 }
      in
      let m = Bdd.create ~num_vars:6 () in
      let outs = Bdd.of_circuit m c ~keys:[||] in
      let counted = Bdd.sat_count m outs.(0) in
      let enumerated = ref 0 in
      for v = 0 to 63 do
        let inputs = Sim.vector_of_int ~width:6 v in
        if (Sim.eval c ~inputs ~keys:[||]).(0) then incr enumerated
      done;
      counted = float_of_int !enumerated)

let () =
  Alcotest.run "bdd"
    [
      ( "core",
        [
          Alcotest.test_case "constants and vars" `Quick test_constants_and_vars;
          Alcotest.test_case "boolean laws" `Quick test_boolean_laws;
          Alcotest.test_case "sat count" `Quick test_sat_count;
          Alcotest.test_case "any sat" `Quick test_any_sat;
          Alcotest.test_case "node limit" `Quick test_node_limit;
        ] );
      ( "circuits",
        [
          Alcotest.test_case "c17 matches sim" `Quick test_of_circuit_matches_sim;
          Alcotest.test_case "canonicity = equivalence" `Quick test_equivalence_via_canonicity;
          Alcotest.test_case "exact corruption sarlock" `Quick test_exact_corruption_sarlock;
          Alcotest.test_case "correct key zero" `Quick test_exact_corruption_correct_key_zero;
          Alcotest.test_case "exact vs sampled" `Quick test_exact_vs_sampled_corruption;
          Alcotest.test_case "locked blowup" `Quick test_locked_bdd_blowup;
        ] );
      "properties", [ prop_bdd_matches_sim; prop_sat_count_matches_enumeration ];
    ]
