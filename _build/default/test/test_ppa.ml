(* Tests for Fl_ppa: cell library, STT-LUT model, netlist PPA. *)

module Circuit = Fl_netlist.Circuit
module Generator = Fl_netlist.Generator
module Cln = Fl_cln.Cln
module Ppa = Fl_ppa.Ppa
module Stt_lut = Fl_ppa.Stt_lut
module Cell_library = Fl_ppa.Cell_library
module Fulllock = Fl_core.Fulllock
module Locked = Fl_locking.Locked

let check = Alcotest.check
let bool_t = Alcotest.bool

let test_cln_calibration () =
  (* The calibrated library should land the shuffle-32 CLN in the
     neighbourhood of Table 3's 10.1 um2 / 448 nW / 0.82 ns. *)
  let e = Ppa.of_cln (Cln.blocking_spec ~n:32) in
  check bool_t (Printf.sprintf "area %.1f near 10.1" e.Ppa.area_um2) true
    (e.Ppa.area_um2 > 5.0 && e.Ppa.area_um2 < 20.0);
  check bool_t (Printf.sprintf "power %.0f near 448" e.Ppa.power_nw) true
    (e.Ppa.power_nw > 200.0 && e.Ppa.power_nw < 900.0);
  check bool_t (Printf.sprintf "delay %.2f near 0.82" e.Ppa.delay_ns) true
    (e.Ppa.delay_ns > 0.4 && e.Ppa.delay_ns < 1.6)

let test_non_blocking_costs_about_2x () =
  (* §3.1: the almost non-blocking CLN costs roughly 2x the blocking CLN of
     the same size (log2N-2 extra stages). *)
  List.iter
    (fun n ->
      let blocking = Ppa.of_cln (Cln.blocking_spec ~n) in
      let nnb = Ppa.of_cln (Cln.default_spec ~n) in
      let ratio = nnb.Ppa.area_um2 /. blocking.Ppa.area_um2 in
      check bool_t (Printf.sprintf "n=%d ratio %.2f in [1.3, 2.2]" n ratio) true
        (ratio > 1.3 && ratio < 2.2))
    [ 16; 32; 64 ]

let test_area_grows_with_n () =
  let areas =
    List.map (fun n -> (Ppa.of_cln (Cln.blocking_spec ~n)).Ppa.area_um2) [ 8; 16; 32; 64 ]
  in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a < b && monotone rest
    | [ _ ] | [] -> true
  in
  check bool_t "monotone" true (monotone areas)

let test_resilient_nnb_cheaper_than_resilient_blocking () =
  (* Table 3's punchline: the smallest SAT-resilient non-blocking CLN
     (N=64) costs far less power than the smallest SAT-resilient blocking
     CLN (N=512). *)
  let nnb64 = Ppa.of_cln (Cln.default_spec ~n:64) in
  let blocking512 = Ppa.of_cln (Cln.blocking_spec ~n:512) in
  check bool_t "power advantage" true
    (nnb64.Ppa.power_nw < blocking512.Ppa.power_nw /. 2.0);
  check bool_t "area advantage" true
    (nnb64.Ppa.area_um2 < blocking512.Ppa.area_um2 /. 2.0)

let test_stt_lut_overhead_shape () =
  (* Fig. 5: negligible overhead up to k = 5, growing at k = 6. *)
  let area_ratio k = let a, _, _ = Stt_lut.overhead k in a in
  List.iter
    (fun k ->
      check bool_t (Printf.sprintf "k=%d cheap" k) true (area_ratio k < 2.0))
    [ 2; 3; 4; 5 ];
  check bool_t "k=6 grows" true (area_ratio 6 > area_ratio 4);
  check bool_t "monotone 4..6" true (area_ratio 5 <= area_ratio 6)

let test_stt_lut_delay_flat () =
  let _, _, d2 = Stt_lut.overhead 2 in
  let _, _, d5 = Stt_lut.overhead 5 in
  ignore d2;
  (* GHz-class: delay stays within ~2x of CMOS even at k = 5. *)
  check bool_t "delay bounded" true (d5 < 2.5)

let test_locking_overhead_above_one () =
  let c =
    Generator.random ~seed:5 ~name:"h"
      { Generator.num_inputs = 10; num_outputs = 4; num_gates = 90;
        max_fanin = 3; and_bias = 0.8 }
  in
  let rng = Random.State.make [| 1 |] in
  let l = Fulllock.lock_one rng ~n:4 c in
  let a, p, d = Ppa.locking_overhead ~original:c l.Locked.locked in
  check bool_t "area grows" true (a > 1.0);
  check bool_t "power grows" true (p > 1.0);
  check bool_t "delay grows" true (d >= 1.0)

let test_cyclic_delay_terminates () =
  let c =
    Generator.random ~seed:9 ~name:"h"
      { Generator.num_inputs = 8; num_outputs = 4; num_gates = 90;
        max_fanin = 3; and_bias = 0.8 }
  in
  let rng = Random.State.make [| 2 |] in
  let l = Fulllock.lock_one rng ~policy:`Cyclic ~n:4 c in
  let e = Ppa.of_circuit l.Locked.locked in
  check bool_t "finite delay" true (Float.is_finite e.Ppa.delay_ns && e.Ppa.delay_ns > 0.0)

let test_scaled_library () =
  let lib = Cell_library.scale Cell_library.generic_32nm ~area:2.0 ~power:1.0 ~delay:1.0 in
  let base = Ppa.of_cln (Cln.blocking_spec ~n:16) in
  let scaled = Ppa.of_cln ~library:lib (Cln.blocking_spec ~n:16) in
  check (Alcotest.float 1e-6) "area doubles"
    (base.Ppa.area_um2 *. 2.0) scaled.Ppa.area_um2

let () =
  Alcotest.run "ppa"
    [
      ( "cln",
        [
          Alcotest.test_case "calibration" `Quick test_cln_calibration;
          Alcotest.test_case "non-blocking ~2x" `Quick test_non_blocking_costs_about_2x;
          Alcotest.test_case "monotone in n" `Quick test_area_grows_with_n;
          Alcotest.test_case "resilient nnb cheaper" `Quick test_resilient_nnb_cheaper_than_resilient_blocking;
        ] );
      ( "stt_lut",
        [
          Alcotest.test_case "overhead shape" `Quick test_stt_lut_overhead_shape;
          Alcotest.test_case "delay flat" `Quick test_stt_lut_delay_flat;
        ] );
      ( "netlist",
        [
          Alcotest.test_case "locking overhead" `Quick test_locking_overhead_above_one;
          Alcotest.test_case "cyclic delay" `Quick test_cyclic_delay_terminates;
          Alcotest.test_case "scaled library" `Quick test_scaled_library;
        ] );
    ]
