(* Tests for Fl_netlist: gates, circuits, simulation, bench I/O, generator. *)

module Gate = Fl_netlist.Gate
module Circuit = Fl_netlist.Circuit
module Sim = Fl_netlist.Sim
module Bench_io = Fl_netlist.Bench_io
module Generator = Fl_netlist.Generator
module Bench_suite = Fl_netlist.Bench_suite

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Gate semantics                                                      *)
(* ------------------------------------------------------------------ *)

let test_gate_truth_tables () =
  let two_input_cases =
    [
      Gate.And, [| false; false; false; true |];
      Gate.Nand, [| true; true; true; false |];
      Gate.Or, [| false; true; true; true |];
      Gate.Nor, [| true; false; false; false |];
      Gate.Xor, [| false; true; true; false |];
      Gate.Xnor, [| true; false; false; true |];
    ]
  in
  List.iter
    (fun (kind, expected) ->
      let tt = Gate.truth_table kind ~arity:2 in
      check (Alcotest.array bool_t) (Gate.to_string kind) expected tt)
    two_input_cases

let test_gate_mux () =
  (* fanins [s; a; b] : s=0 -> a, s=1 -> b *)
  check bool_t "s=0 picks a" true (Gate.eval Gate.Mux [| false; true; false |]);
  check bool_t "s=1 picks b" false (Gate.eval Gate.Mux [| true; true; false |]);
  check bool_t "s=1 picks b (true)" true (Gate.eval Gate.Mux [| true; false; true |])

let test_gate_nary () =
  check bool_t "and3" true (Gate.eval Gate.And [| true; true; true |]);
  check bool_t "and3 f" false (Gate.eval Gate.And [| true; false; true |]);
  check bool_t "xor3 parity" true (Gate.eval Gate.Xor [| true; true; true |]);
  check bool_t "xnor3" false (Gate.eval Gate.Xnor [| true; true; true |]);
  check bool_t "nor3" true (Gate.eval Gate.Nor [| false; false; false |])

let test_gate_lut () =
  (* LUT implementing 2-input AND: table index = b<<1 | a *)
  let lut = Gate.Lut [| false; false; false; true |] in
  check bool_t "lut and 11" true (Gate.eval lut [| true; true |]);
  check bool_t "lut and 01" false (Gate.eval lut [| true; false |]);
  check (Alcotest.option int_t) "lut arity" (Some 2) (Gate.arity lut)

let test_gate_negate () =
  let pairs = [ Gate.And, Gate.Nand; Gate.Or, Gate.Nor; Gate.Xor, Gate.Xnor; Gate.Buf, Gate.Not ] in
  List.iter
    (fun (a, b) ->
      check bool_t "negate fwd" true (Gate.equal (Gate.negate a) b);
      check bool_t "negate bwd" true (Gate.equal (Gate.negate b) a))
    pairs;
  check bool_t "negate lut" true
    (Gate.equal
       (Gate.negate (Gate.Lut [| true; false |]))
       (Gate.Lut [| false; true |]));
  check bool_t "mux not negatable" false (Gate.is_negatable Gate.Mux)

let test_gate_negate_semantics () =
  (* negate k must complement eval on every input combination. *)
  List.iter
    (fun kind ->
      let arity = 2 in
      let tt = Gate.truth_table kind ~arity in
      let ntt = Gate.truth_table (Gate.negate kind) ~arity in
      Array.iteri
        (fun i v -> check bool_t "complement" (not v) ntt.(i))
        tt)
    [ Gate.And; Gate.Nand; Gate.Or; Gate.Nor; Gate.Xor; Gate.Xnor ]

let test_gate_string_roundtrip () =
  List.iter
    (fun kind ->
      match Gate.of_string (Gate.to_string kind) with
      | Some back -> check bool_t (Gate.to_string kind) true (Gate.equal kind back)
      | None -> Alcotest.failf "of_string failed for %s" (Gate.to_string kind))
    [ Gate.Input; Gate.Key_input; Gate.Buf; Gate.Not; Gate.And; Gate.Nand;
      Gate.Or; Gate.Nor; Gate.Xor; Gate.Xnor; Gate.Mux ]

(* ------------------------------------------------------------------ *)
(* Circuit construction and structure                                  *)
(* ------------------------------------------------------------------ *)

(* y = (a AND b) XOR c *)
let simple_circuit () =
  let b = Circuit.Builder.create ~name:"simple" () in
  let a = Circuit.Builder.input ~name:"a" b in
  let b_in = Circuit.Builder.input ~name:"b" b in
  let c = Circuit.Builder.input ~name:"c" b in
  let g1 = Circuit.Builder.add ~name:"g1" b Gate.And [| a; b_in |] in
  let g2 = Circuit.Builder.add ~name:"g2" b Gate.Xor [| g1; c |] in
  Circuit.Builder.output b "y" g2;
  Circuit.of_builder b

let test_builder_basic () =
  let c = simple_circuit () in
  Circuit.validate c;
  check int_t "nodes" 5 (Circuit.num_nodes c);
  check int_t "gates" 2 (Circuit.num_gates c);
  check int_t "inputs" 3 (Circuit.num_inputs c);
  check int_t "keys" 0 (Circuit.num_keys c);
  check bool_t "acyclic" true (Circuit.is_acyclic c);
  check (Alcotest.option int_t) "depth" (Some 2) (Circuit.depth c)

let test_builder_rejects_bad_fanins () =
  let b = Circuit.Builder.create () in
  let a = Circuit.Builder.input b in
  (try
     ignore (Circuit.Builder.add b Gate.Mux [| a |]);
     Alcotest.fail "expected failure on bad arity"
   with Invalid_argument _ -> ());
  (try
     ignore (Circuit.Builder.add b Gate.And [| a; 99 |]);
     Alcotest.fail "expected failure on unknown id"
   with Invalid_argument _ -> ())

let test_builder_duplicate_name () =
  let b = Circuit.Builder.create () in
  let _ = Circuit.Builder.input ~name:"x" b in
  try
    ignore (Circuit.Builder.input ~name:"x" b);
    Alcotest.fail "expected duplicate-name failure"
  with Invalid_argument _ -> ()

let test_declare_enables_cycles () =
  (* Build a 2-node combinational cycle through MUXes and check detection. *)
  let b = Circuit.Builder.create ~name:"cyc" () in
  let s = Circuit.Builder.key_input ~name:"k" b in
  let x = Circuit.Builder.input ~name:"x" b in
  let m1 = Circuit.Builder.declare ~name:"m1" b Gate.Mux in
  let m2 = Circuit.Builder.add ~name:"m2" b Gate.Mux [| s; m1; x |] in
  Circuit.Builder.set_fanins b m1 [| s; x; m2 |];
  Circuit.Builder.output b "y" m2;
  let c = Circuit.of_builder b in
  check bool_t "cyclic" false (Circuit.is_acyclic c);
  let cycles = Circuit.find_cycles c ~limit:10 in
  check bool_t "found a cycle" true (List.length cycles >= 1)

let test_freeze_rejects_unwired_declare () =
  let b = Circuit.Builder.create () in
  let x = Circuit.Builder.input b in
  let _pending = Circuit.Builder.declare b Gate.And in
  Circuit.Builder.output b "y" x;
  try
    ignore (Circuit.of_builder b);
    Alcotest.fail "expected freeze failure"
  with Invalid_argument _ -> ()

let test_fanouts () =
  let c = simple_circuit () in
  let fo = Circuit.fanouts c in
  (* input a (id 0) feeds only g1 *)
  check int_t "a fanout" 1 (Array.length fo.(0));
  (* g1 feeds g2 *)
  let g1 = Option.get (Circuit.find_by_name c "g1") in
  let g2 = Option.get (Circuit.find_by_name c "g2") in
  check (Alcotest.array int_t) "g1 -> g2" [| g2 |] fo.(g1)

let test_reaches () =
  let c = simple_circuit () in
  let a = Option.get (Circuit.find_by_name c "a") in
  let g2 = Option.get (Circuit.find_by_name c "g2") in
  check bool_t "a reaches g2" true (Circuit.reaches c ~src:a ~dst:g2);
  check bool_t "g2 does not reach a" false (Circuit.reaches c ~src:g2 ~dst:a)

let test_copy_into () =
  let c = simple_circuit () in
  let b = Circuit.Builder.create ~name:"copy" () in
  let map = Circuit.copy_into b c in
  let c2 = Circuit.of_builder b in
  check int_t "same node count" (Circuit.num_nodes c) (Circuit.num_nodes c2);
  check int_t "map length" (Circuit.num_nodes c) (Array.length map);
  check bool_t "equivalent" true
    (Sim.equivalent_exhaustive c c2 ~keys_a:[||] ~keys_b:[||])

(* ------------------------------------------------------------------ *)
(* Simulation                                                          *)
(* ------------------------------------------------------------------ *)

let test_sim_simple () =
  let c = simple_circuit () in
  let expect a b cin =
    let lhs = Sim.eval c ~inputs:[| a; b; cin |] ~keys:[||] in
    check (Alcotest.array bool_t)
      (Printf.sprintf "%b%b%b" a b cin)
      [| (a && b) <> cin |]
      lhs
  in
  List.iter
    (fun (a, b, cin) -> expect a b cin)
    [ false, false, false; true, true, false; true, true, true; false, true, true ]

let test_sim_vector_helpers () =
  let v = Sim.vector_of_int ~width:4 0b1011 in
  check (Alcotest.array bool_t) "vector lsb-first" [| true; true; false; true |] v;
  check int_t "roundtrip" 0b1011 (Sim.int_of_vector v)

let test_sim_cyclic_opened_by_mux () =
  (* m1 = MUX(k, x, m2); m2 = MUX(k, m1, x); structural cycle m1 <-> m2.
     Both key values functionally open the cycle; output must equal x. *)
  let b = Circuit.Builder.create ~name:"cyc2" () in
  let k = Circuit.Builder.key_input ~name:"k" b in
  let x = Circuit.Builder.input ~name:"x" b in
  let m1 = Circuit.Builder.declare ~name:"m1" b Gate.Mux in
  let m2 = Circuit.Builder.add ~name:"m2" b Gate.Mux [| k; m1; x |] in
  Circuit.Builder.set_fanins b m1 [| k; x; m2 |];
  Circuit.Builder.output b "y" m2;
  let c = Circuit.of_builder b in
  List.iter
    (fun (kv, xv) ->
      let out = Sim.eval c ~inputs:[| xv |] ~keys:[| kv |] in
      check bool_t (Printf.sprintf "k=%b x=%b" kv xv) xv out.(0))
    [ false, false; false, true; true, false; true, true ]

let test_sim_cyclic_unresolved () =
  (* y = NOT y : never settles, eval must raise, tristate must report X. *)
  let b = Circuit.Builder.create ~name:"osc" () in
  let _x = Circuit.Builder.input ~name:"x" b in
  let inv = Circuit.Builder.declare ~name:"inv" b Gate.Not in
  Circuit.Builder.set_fanins b inv [| inv |];
  Circuit.Builder.output b "y" inv;
  let c = Circuit.of_builder b in
  let tri = Sim.eval_tristate c ~inputs:[| false |] ~keys:[||] in
  check bool_t "X output" true (tri.(0) = Sim.VX);
  (try
     ignore (Sim.eval c ~inputs:[| false |] ~keys:[||]);
     Alcotest.fail "expected Unresolved"
   with Sim.Unresolved _ -> ())

let test_sim_settles () =
  let c = simple_circuit () in
  check bool_t "acyclic settles" true (Sim.settles c ~keys:[||])

(* ------------------------------------------------------------------ *)
(* Bench I/O                                                           *)
(* ------------------------------------------------------------------ *)

let test_c17_parses () =
  let c = Bench_suite.c17 () in
  Circuit.validate c;
  check int_t "inputs" 5 (Circuit.num_inputs c);
  check int_t "outputs" 2 (Circuit.num_outputs c);
  check int_t "gates" 6 (Circuit.num_gates c)

(* Reference c17 function computed straight from the netlist equations. *)
let c17_reference inputs =
  match inputs with
  | [| g1; g2; g3; g6; g7 |] ->
    let nand a b = not (a && b) in
    let g10 = nand g1 g3 in
    let g11 = nand g3 g6 in
    let g16 = nand g2 g11 in
    let g19 = nand g11 g7 in
    [| nand g10 g16; nand g16 g19 |]
  | _ -> assert false

let test_c17_functional () =
  let c = Bench_suite.c17 () in
  for v = 0 to 31 do
    let inputs = Sim.vector_of_int ~width:5 v in
    let got = Sim.eval c ~inputs ~keys:[||] in
    check (Alcotest.array bool_t) (Printf.sprintf "v=%d" v) (c17_reference inputs) got
  done

let test_bench_roundtrip () =
  let c = Bench_suite.c17 () in
  let text = Bench_io.to_string c in
  let c2 = Bench_io.parse_string text in
  check bool_t "roundtrip equivalent" true
    (Sim.equivalent_exhaustive c c2 ~keys_a:[||] ~keys_b:[||])

let test_bench_keyinput_convention () =
  let text =
    "INPUT(a)\nINPUT(keyinput0)\nOUTPUT(y)\ny = XOR(a, keyinput0)\n"
  in
  let c = Bench_io.parse_string text in
  check int_t "one PI" 1 (Circuit.num_inputs c);
  check int_t "one key" 1 (Circuit.num_keys c);
  let out = Sim.eval c ~inputs:[| true |] ~keys:[| true |] in
  check bool_t "xor" false out.(0)

let test_bench_lut_roundtrip () =
  let text = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = LUT 0x8 (a, b)\n" in
  let c = Bench_io.parse_string text in
  let out = Sim.eval c ~inputs:[| true; true |] ~keys:[||] in
  check bool_t "lut 0x8 = and" true out.(0);
  let out0 = Sim.eval c ~inputs:[| true; false |] ~keys:[||] in
  check bool_t "lut 0x8 = and (10)" false out0.(0);
  let c2 = Bench_io.parse_string (Bench_io.to_string c) in
  check bool_t "lut roundtrip" true
    (Sim.equivalent_exhaustive c c2 ~keys_a:[||] ~keys_b:[||])

let test_bench_parse_errors () =
  List.iter
    (fun text ->
      try
        ignore (Bench_io.parse_string text);
        Alcotest.failf "expected parse error for %S" text
      with Bench_io.Parse_error _ -> ())
    [
      "y = FROB(a)\n";
      "INPUT(a)\nOUTPUT(y)\ny = AND(a, undefined_wire)\n";
      "INPUT(a)\nOUTPUT(y)\ny = AND(a\n";
      "garbage line\n";
    ]

(* ------------------------------------------------------------------ *)
(* Generator and bench suite                                           *)
(* ------------------------------------------------------------------ *)

let test_generator_respects_profile () =
  let profile =
    { Generator.num_inputs = 12; num_outputs = 5; num_gates = 80; max_fanin = 4; and_bias = 0.8 }
  in
  let c = Generator.random ~seed:42 ~name:"gen" profile in
  Circuit.validate c;
  check int_t "inputs" 12 (Circuit.num_inputs c);
  check int_t "outputs" 5 (Circuit.num_outputs c);
  check bool_t "acyclic" true (Circuit.is_acyclic c);
  (* gate count: exactly num_gates plus possibly fold gates (<= num_outputs) *)
  check bool_t "gate count near profile" true
    (Circuit.num_gates c >= 80 && Circuit.num_gates c <= 80 + 5)

let test_generator_deterministic () =
  let profile = Generator.default_profile in
  let c1 = Generator.random ~seed:7 ~name:"g" profile in
  let c2 = Generator.random ~seed:7 ~name:"g" profile in
  check bool_t "same netlist text" true
    (String.equal (Bench_io.to_string c1) (Bench_io.to_string c2));
  let c3 = Generator.random ~seed:8 ~name:"g" profile in
  check bool_t "different seed differs" false
    (String.equal (Bench_io.to_string c1) (Bench_io.to_string c3))

let test_generator_no_dead_logic () =
  let c = Generator.random ~seed:3 ~name:"g" Generator.default_profile in
  let fo = Circuit.fanouts c in
  let is_output id = Array.exists (fun (_, o) -> o = id) c.Circuit.outputs in
  for id = 0 to Circuit.num_nodes c - 1 do
    let used = Array.length fo.(id) > 0 || is_output id in
    check bool_t (Printf.sprintf "node %d used" id) true used
  done

let test_suite_entries () =
  check int_t "13 circuits" 13 (List.length Bench_suite.entries);
  let c432 = Option.get (Bench_suite.find "c432") in
  check int_t "c432 gates" 160 c432.Bench_suite.gates;
  check int_t "c432 inputs" 36 c432.Bench_suite.inputs;
  check int_t "c432 outputs" 7 c432.Bench_suite.outputs

let test_suite_load_scaled () =
  let c = Bench_suite.load_scaled "c880" ~scale:8 in
  Circuit.validate c;
  check bool_t "small" true (Circuit.num_gates c < 120);
  check int_t "inputs scaled" (60 / 8) (Circuit.num_inputs c)

let test_suite_load_full_counts () =
  let c = Bench_suite.load "c432" in
  Circuit.validate c;
  check int_t "inputs" 36 (Circuit.num_inputs c);
  check int_t "outputs" 7 (Circuit.num_outputs c);
  check bool_t "gates >= 160" true (Circuit.num_gates c >= 160)

(* ------------------------------------------------------------------ *)
(* Miscellaneous exports                                               *)
(* ------------------------------------------------------------------ *)

let test_dot_export () =
  let c = Bench_suite.c17 () in
  let dot = Fl_netlist.Dot.to_string c in
  check bool_t "digraph" true (String.length dot > 0 && String.sub dot 0 7 = "digraph");
  (* every node and every output port appears *)
  check bool_t "has edges" true
    (String.split_on_char '\n' dot |> List.exists (fun l -> String.length l > 4 && String.sub l 2 1 = "n"))

let test_const_bench_roundtrip () =
  let b = Circuit.Builder.create ~name:"consts" () in
  let x = Circuit.Builder.input ~name:"x" b in
  let one = Circuit.Builder.add b (Gate.Const true) [||] in
  let g = Circuit.Builder.add b Gate.Xor [| x; one |] in
  Circuit.Builder.output b "y" g;
  let c = Circuit.of_builder b in
  let c2 = Bench_io.parse_string (Bench_io.to_string c) in
  check bool_t "const roundtrip" true
    (Sim.equivalent_exhaustive c c2 ~keys_a:[||] ~keys_b:[||])

let test_pp_stats_smoke () =
  let c = Bench_suite.c17 () in
  let text = Format.asprintf "%a" Circuit.pp_stats c in
  check bool_t "mentions nand" true
    (String.length text > 0
     && (let found = ref false in
         String.iteri (fun i _ ->
             if i + 4 <= String.length text && String.sub text i 4 = "nand" then found := true)
           text;
         !found))

let test_kind_histogram () =
  let c = Bench_suite.c17 () in
  check (Alcotest.list (Alcotest.pair Alcotest.string int_t)) "histogram"
    [ "input", 5; "nand", 6 ]
    (Circuit.kind_histogram c)

let test_depth_c17 () =
  check (Alcotest.option int_t) "depth 3" (Some 3) (Circuit.depth (Bench_suite.c17 ()))

let test_sccs () =
  (* Acyclic: every node its own SCC; with one cycle, the two nodes share. *)
  let c = Bench_suite.c17 () in
  let scc = Circuit.strongly_connected_components c in
  let distinct = List.sort_uniq compare (Array.to_list scc) in
  check int_t "all singleton" (Circuit.num_nodes c) (List.length distinct);
  let b = Circuit.Builder.create ~name:"cyc" () in
  let k = Circuit.Builder.key_input ~name:"k" b in
  let x = Circuit.Builder.input ~name:"x" b in
  let m1 = Circuit.Builder.declare ~name:"m1" b Gate.Mux in
  let m2 = Circuit.Builder.add ~name:"m2" b Gate.Mux [| k; m1; x |] in
  Circuit.Builder.set_fanins b m1 [| k; x; m2 |];
  Circuit.Builder.output b "y" m2;
  let cy = Circuit.of_builder b in
  let scc = Circuit.strongly_connected_components cy in
  check bool_t "cycle shares scc" true (scc.(m1) = scc.(m2))

(* ------------------------------------------------------------------ *)
(* Property-based tests                                                *)
(* ------------------------------------------------------------------ *)

let qcheck_case ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let prop_lut_matches_gate =
  (* A LUT built from a gate's truth table is functionally the gate. *)
  let gen =
    QCheck2.Gen.(
      pair
        (oneofl [ Gate.And; Gate.Nand; Gate.Or; Gate.Nor; Gate.Xor; Gate.Xnor ])
        (pair (int_range 2 4) (int_bound 0xffff)))
  in
  qcheck_case "lut = gate" gen (fun (kind, (arity, stim)) ->
      let tt = Gate.truth_table kind ~arity in
      let lut = Gate.Lut tt in
      let inputs = Array.init arity (fun i -> stim land (1 lsl i) <> 0) in
      Gate.eval lut inputs = Gate.eval kind inputs)

let prop_generator_valid =
  let gen =
    QCheck2.Gen.(
      tup4 (int_range 2 10) (int_range 1 6) (int_range 6 120) (int_bound 10_000))
  in
  qcheck_case ~count:50 "generator always valid" gen
    (fun (ins, outs, gates, seed) ->
      let gates = max gates outs in
      let profile =
        { Generator.num_inputs = ins; num_outputs = outs; num_gates = gates;
          max_fanin = 4; and_bias = 0.8 }
      in
      let c = Generator.random ~seed ~name:"prop" profile in
      Circuit.validate c;
      Circuit.is_acyclic c)

let prop_sim_tristate_agrees =
  (* On acyclic circuits, tristate eval must agree with boolean eval. *)
  let gen = QCheck2.Gen.(pair (int_bound 1000) (int_bound 0xffffff)) in
  qcheck_case ~count:60 "tristate = boolean on acyclic" gen (fun (seed, stim) ->
      let c = Generator.random ~seed ~name:"p" Generator.default_profile in
      let n = Circuit.num_inputs c in
      let inputs = Array.init n (fun i -> stim land (1 lsl (i mod 24)) <> 0) in
      let bools = Sim.eval c ~inputs ~keys:[||] in
      let tris = Sim.eval_tristate c ~inputs ~keys:[||] in
      Array.for_all2
        (fun b t -> match t with Sim.V0 -> not b | Sim.V1 -> b | Sim.VX -> false)
        bools tris)

let prop_parser_total =
  (* The .bench parser must fail only with Parse_error (or succeed), never
     crash with an unexpected exception, on arbitrary input. *)
  let gen = QCheck2.Gen.(string_size ~gen:(map Char.chr (int_range 9 122)) (int_range 0 200)) in
  qcheck_case ~count:300 "bench parser is total" gen (fun text ->
      match Bench_io.parse_string text with
      | _ -> true
      | exception Bench_io.Parse_error _ -> true
      | exception Invalid_argument _ -> true)

let prop_bench_roundtrip =
  let gen = QCheck2.Gen.(pair (int_bound 1000) (int_bound 0xffffff)) in
  qcheck_case ~count:40 "bench roundtrip preserves function" gen
    (fun (seed, stim) ->
      let c = Generator.random ~seed ~name:"rt" Generator.default_profile in
      let c2 = Bench_io.parse_string (Bench_io.to_string c) in
      let n = Circuit.num_inputs c in
      let inputs = Array.init n (fun i -> stim land (1 lsl (i mod 24)) <> 0) in
      Sim.eval c ~inputs ~keys:[||] = Sim.eval c2 ~inputs ~keys:[||])

let () =
  Alcotest.run "netlist"
    [
      ( "gate",
        [
          Alcotest.test_case "truth tables" `Quick test_gate_truth_tables;
          Alcotest.test_case "mux" `Quick test_gate_mux;
          Alcotest.test_case "n-ary" `Quick test_gate_nary;
          Alcotest.test_case "lut" `Quick test_gate_lut;
          Alcotest.test_case "negate" `Quick test_gate_negate;
          Alcotest.test_case "negate semantics" `Quick test_gate_negate_semantics;
          Alcotest.test_case "string roundtrip" `Quick test_gate_string_roundtrip;
        ] );
      ( "circuit",
        [
          Alcotest.test_case "builder basic" `Quick test_builder_basic;
          Alcotest.test_case "bad fanins" `Quick test_builder_rejects_bad_fanins;
          Alcotest.test_case "duplicate name" `Quick test_builder_duplicate_name;
          Alcotest.test_case "declare cycles" `Quick test_declare_enables_cycles;
          Alcotest.test_case "unwired declare" `Quick test_freeze_rejects_unwired_declare;
          Alcotest.test_case "fanouts" `Quick test_fanouts;
          Alcotest.test_case "reaches" `Quick test_reaches;
          Alcotest.test_case "copy_into" `Quick test_copy_into;
        ] );
      ( "sim",
        [
          Alcotest.test_case "simple" `Quick test_sim_simple;
          Alcotest.test_case "vector helpers" `Quick test_sim_vector_helpers;
          Alcotest.test_case "cycle opened by mux" `Quick test_sim_cyclic_opened_by_mux;
          Alcotest.test_case "cycle unresolved" `Quick test_sim_cyclic_unresolved;
          Alcotest.test_case "settles" `Quick test_sim_settles;
        ] );
      ( "bench_io",
        [
          Alcotest.test_case "c17 parses" `Quick test_c17_parses;
          Alcotest.test_case "c17 functional" `Quick test_c17_functional;
          Alcotest.test_case "roundtrip" `Quick test_bench_roundtrip;
          Alcotest.test_case "keyinput convention" `Quick test_bench_keyinput_convention;
          Alcotest.test_case "lut roundtrip" `Quick test_bench_lut_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_bench_parse_errors;
        ] );
      ( "generator",
        [
          Alcotest.test_case "respects profile" `Quick test_generator_respects_profile;
          Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
          Alcotest.test_case "no dead logic" `Quick test_generator_no_dead_logic;
          Alcotest.test_case "suite entries" `Quick test_suite_entries;
          Alcotest.test_case "suite scaled" `Quick test_suite_load_scaled;
          Alcotest.test_case "suite full counts" `Quick test_suite_load_full_counts;
        ] );
      ( "misc",
        [
          Alcotest.test_case "dot export" `Quick test_dot_export;
          Alcotest.test_case "const roundtrip" `Quick test_const_bench_roundtrip;
          Alcotest.test_case "pp_stats" `Quick test_pp_stats_smoke;
          Alcotest.test_case "kind histogram" `Quick test_kind_histogram;
          Alcotest.test_case "depth c17" `Quick test_depth_c17;
          Alcotest.test_case "sccs" `Quick test_sccs;
        ] );
      ( "properties",
        [ prop_lut_matches_gate; prop_generator_valid; prop_sim_tristate_agrees;
          prop_bench_roundtrip; prop_parser_total ] );
    ]
