(* Tests for Fl_sat: CDCL solver, DPLL solver, random k-SAT. *)

module Formula = Fl_cnf.Formula
module Cdcl = Fl_sat.Cdcl
module Dpll = Fl_sat.Dpll
module Random_sat = Fl_sat.Random_sat

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* Reference brute-force SAT decision. *)
let brute_sat f =
  let n = Formula.num_vars f in
  assert (n <= 22);
  let clauses = Formula.clauses f in
  let satisfied assignment =
    Array.for_all
      (fun clause ->
        Array.exists
          (fun l ->
            let value = assignment land (1 lsl (abs l - 1)) <> 0 in
            if l > 0 then value else not value)
          clause)
      clauses
  in
  let rec go a = a < 1 lsl n && (satisfied a || go (a + 1)) in
  go 0

let model_satisfies f model =
  Array.for_all
    (fun clause ->
      Array.exists (fun l -> if l > 0 then model.(l) else not model.(abs l)) clause)
    (Formula.clauses f)

(* ------------------------------------------------------------------ *)
(* CDCL unit tests                                                     *)
(* ------------------------------------------------------------------ *)

let test_cdcl_trivial_sat () =
  let s = Cdcl.create () in
  Cdcl.add_clause s [ 1; 2 ];
  Cdcl.add_clause s [ -1; 2 ];
  check bool_t "sat" true (Cdcl.solve s = Cdcl.Sat);
  check bool_t "x2 true" true (Cdcl.value s 2)

let test_cdcl_trivial_unsat () =
  let s = Cdcl.create () in
  Cdcl.add_clause s [ 1 ];
  Cdcl.add_clause s [ -1 ];
  check bool_t "unsat" true (Cdcl.solve s = Cdcl.Unsat)

let test_cdcl_units_chain () =
  let s = Cdcl.create () in
  Cdcl.add_clause s [ 1 ];
  Cdcl.add_clause s [ -1; 2 ];
  Cdcl.add_clause s [ -2; 3 ];
  Cdcl.add_clause s [ -3; 4 ];
  check bool_t "sat" true (Cdcl.solve s = Cdcl.Sat);
  check bool_t "propagated" true (Cdcl.value s 4)

(* Pigeonhole principle PHP(n+1, n): always unsat, requires real search. *)
let pigeonhole pigeons holes =
  let s = Cdcl.create () in
  let var p h = (p * holes) + h + 1 in
  for p = 0 to pigeons - 1 do
    Cdcl.add_clause s (List.init holes (fun h -> var p h))
  done;
  for h = 0 to holes - 1 do
    for p1 = 0 to pigeons - 1 do
      for p2 = p1 + 1 to pigeons - 1 do
        Cdcl.add_clause s [ -var p1 h; -var p2 h ]
      done
    done
  done;
  s

let test_cdcl_pigeonhole () =
  List.iter
    (fun n ->
      let s = pigeonhole (n + 1) n in
      check bool_t (Printf.sprintf "php %d" n) true (Cdcl.solve s = Cdcl.Unsat))
    [ 2; 3; 4; 5 ]

let test_cdcl_pigeonhole_sat_when_fits () =
  let s = pigeonhole 4 4 in
  check bool_t "fits" true (Cdcl.solve s = Cdcl.Sat)

let test_cdcl_assumptions () =
  let s = Cdcl.create () in
  Cdcl.add_clause s [ 1; 2 ];
  Cdcl.add_clause s [ -1; 3 ];
  check bool_t "sat under a=1" true (Cdcl.solve ~assumptions:[ 1 ] s = Cdcl.Sat);
  check bool_t "3 implied" true (Cdcl.value s 3);
  check bool_t "sat under -1" true (Cdcl.solve ~assumptions:[ -1 ] s = Cdcl.Sat);
  check bool_t "2 implied" true (Cdcl.value s 2);
  (* Conflicting assumptions *)
  check bool_t "unsat under 1,-3" true
    (Cdcl.solve ~assumptions:[ 1; -3 ] s = Cdcl.Unsat);
  (* Solver is reusable after assumption-unsat. *)
  check bool_t "still sat" true (Cdcl.solve s = Cdcl.Sat)

let test_cdcl_incremental () =
  let s = Cdcl.create () in
  Cdcl.add_clause s [ 1; 2 ];
  check bool_t "sat" true (Cdcl.solve s = Cdcl.Sat);
  Cdcl.add_clause s [ -1 ];
  check bool_t "still sat" true (Cdcl.solve s = Cdcl.Sat);
  check bool_t "2 forced" true (Cdcl.value s 2);
  Cdcl.add_clause s [ -2 ];
  check bool_t "now unsat" true (Cdcl.solve s = Cdcl.Unsat);
  (* Permanently unsat. *)
  check bool_t "stays unsat" true (Cdcl.solve s = Cdcl.Unsat)

let test_cdcl_budget () =
  (* A hard pigeonhole with a one-conflict budget must return Unknown. *)
  let s = pigeonhole 8 7 in
  let outcome = Cdcl.solve ~budget:(Cdcl.budget_conflicts 1) s in
  check bool_t "unknown" true (outcome = Cdcl.Unknown);
  (* And with no budget it finishes. *)
  check bool_t "finishes" true (Cdcl.solve s = Cdcl.Unsat)

let test_cdcl_survives_db_reduction () =
  (* A phase-transition instance with tens of thousands of conflicts drives
     the learnt-clause database through several reductions; the model must
     still satisfy every clause. *)
  let rng = Random.State.make [| 42; 225 |] in
  let f = Random_sat.fixed_length rng ~num_vars:225 ~num_clauses:967 ~k:3 in
  let outcome, model, stats = Cdcl.solve_formula f in
  check bool_t "enough conflicts to reduce" true (stats.Cdcl.conflicts > 2500);
  match outcome, model with
  | Cdcl.Sat, Some m -> check bool_t "model valid" true (model_satisfies f m)
  | Cdcl.Unsat, None ->
    (* if unsat, cross-check with DPLL on a shrunken... too slow; accept *)
    ()
  | _ -> Alcotest.fail "unexpected outcome"

let test_cdcl_stats_accumulate () =
  let s = pigeonhole 5 4 in
  ignore (Cdcl.solve s);
  let st = Cdcl.stats s in
  check bool_t "conflicts > 0" true (st.Cdcl.conflicts > 0);
  check bool_t "decisions > 0" true (st.Cdcl.decisions > 0);
  check bool_t "learned > 0" true (st.Cdcl.learned_clauses > 0)

let test_cdcl_empty_clause_via_simplification () =
  let s = Cdcl.create () in
  Cdcl.add_clause s [ 1 ];
  Cdcl.add_clause s [ -1; 2 ];
  Cdcl.add_clause s [ -2 ];
  check bool_t "unsat" true (Cdcl.solve s = Cdcl.Unsat)

let test_cdcl_duplicate_and_tautology () =
  let s = Cdcl.create () in
  (* Tautological clause x | -x is dropped; duplicate literals collapse. *)
  Cdcl.add_clause s [ 1; -1 ];
  Cdcl.add_clause s [ 2; 2; 2 ];
  check bool_t "sat" true (Cdcl.solve s = Cdcl.Sat);
  check bool_t "2 true" true (Cdcl.value s 2)

(* ------------------------------------------------------------------ *)
(* DPLL                                                                *)
(* ------------------------------------------------------------------ *)

let test_dpll_trivial () =
  let f = Formula.create () in
  Formula.reserve f 2;
  Formula.add_clause f [ 1; 2 ];
  Formula.add_clause f [ -1 ];
  let outcome, st = Dpll.solve f in
  check bool_t "sat" true (outcome = Dpll.Sat);
  check bool_t "used units" true (st.Dpll.unit_propagations > 0)

let test_dpll_unsat () =
  let f = Formula.create () in
  Formula.reserve f 2;
  Formula.add_clause f [ 1; 2 ];
  Formula.add_clause f [ 1; -2 ];
  Formula.add_clause f [ -1; 2 ];
  Formula.add_clause f [ -1; -2 ];
  let outcome, _ = Dpll.solve f in
  check bool_t "unsat" true (outcome = Dpll.Unsat)

let test_dpll_pure_literal () =
  let f = Formula.create () in
  Formula.reserve f 3;
  Formula.add_clause f [ 1; 2 ];
  Formula.add_clause f [ 1; 3 ];
  let outcome, st = Dpll.solve f in
  check bool_t "sat" true (outcome = Dpll.Sat);
  check bool_t "purified" true (st.Dpll.pure_literals > 0)

let test_dpll_abort () =
  let rng = Random.State.make [| 5 |] in
  let f = Random_sat.fixed_length rng ~num_vars:60 ~num_clauses:258 ~k:3 in
  let outcome, st = Dpll.solve ~max_calls:3 f in
  match outcome with
  | Dpll.Aborted -> check bool_t "counted" true (st.Dpll.recursive_calls >= 3)
  | Dpll.Sat | Dpll.Unsat ->
    (* solved within 3 calls: acceptable, nothing to check *)
    ()

(* ------------------------------------------------------------------ *)
(* Random k-SAT + cross-checking                                       *)
(* ------------------------------------------------------------------ *)

let test_random_sat_shape () =
  let rng = Random.State.make [| 1 |] in
  let f = Random_sat.fixed_length rng ~num_vars:20 ~num_clauses:50 ~k:3 in
  check int_t "clauses" 50 (Formula.num_clauses f);
  check int_t "vars" 20 (Formula.num_vars f);
  Fl_cnf.Formula.iter_clauses f (fun c ->
      check int_t "k=3" 3 (Array.length c);
      (* distinct variables in each clause *)
      let vars = Array.map abs c in
      Array.sort compare vars;
      check bool_t "distinct" true (vars.(0) <> vars.(1) && vars.(1) <> vars.(2)))

let test_phase_transition_shape () =
  (* The paper's Fig. 1: the DPLL-calls curve must peak inside the 3..6
     band, dominating both the under- and over-constrained regimes. *)
  let rng = Random.State.make [| 9 |] in
  let sweep =
    Random_sat.ratio_sweep rng ~num_vars:36 ~k:3 ~ratios:[ 2.0; 4.3; 8.0 ]
      ~samples:21
  in
  match sweep with
  | [ (_, low, satfrac_low); (_, peak, _); (_, high, satfrac_high) ] ->
    check bool_t "peak >= under-constrained" true (peak >= low);
    check bool_t "peak >= over-constrained" true (peak >= high);
    check bool_t "under-constrained mostly sat" true (satfrac_low > 0.8);
    check bool_t "over-constrained mostly unsat" true (satfrac_high < 0.2)
  | _ -> Alcotest.fail "sweep shape"

(* ------------------------------------------------------------------ *)
(* Properties: CDCL and DPLL agree with brute force                    *)
(* ------------------------------------------------------------------ *)

let qcheck_case ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let random_formula_gen =
  QCheck2.Gen.(
    let* num_vars = int_range 3 12 in
    let* ratio_pct = int_range 100 700 in
    let* seed = int_bound 1_000_000 in
    return (num_vars, ratio_pct, seed))

let make_formula (num_vars, ratio_pct, seed) =
  let rng = Random.State.make [| seed |] in
  let num_clauses = max 1 (num_vars * ratio_pct / 100) in
  Random_sat.fixed_length rng ~num_vars ~num_clauses ~k:(min 3 num_vars)

let prop_cdcl_correct =
  qcheck_case ~count:200 "cdcl = brute force" random_formula_gen (fun params ->
      let f = make_formula params in
      let outcome, model, _ = Cdcl.solve_formula f in
      match outcome, model with
      | Cdcl.Sat, Some m -> brute_sat f && model_satisfies f m
      | Cdcl.Unsat, None -> not (brute_sat f)
      | _ -> false)

let prop_dpll_correct =
  qcheck_case ~count:150 "dpll = brute force" random_formula_gen (fun params ->
      let f = make_formula params in
      let outcome, _ = Dpll.solve f in
      match outcome with
      | Dpll.Sat -> brute_sat f
      | Dpll.Unsat -> not (brute_sat f)
      | Dpll.Aborted -> false)

let prop_cdcl_dpll_agree =
  qcheck_case ~count:100 "cdcl agrees with dpll" random_formula_gen (fun params ->
      let f = make_formula params in
      let c, _, _ = Cdcl.solve_formula f in
      let d, _ = Dpll.solve f in
      match c, d with
      | Cdcl.Sat, Dpll.Sat | Cdcl.Unsat, Dpll.Unsat -> true
      | _ -> false)

let prop_cdcl_assumption_consistency =
  (* If sat under assumption l, the model must satisfy l. *)
  qcheck_case ~count:100 "assumption in model" random_formula_gen (fun params ->
      let f = make_formula params in
      let s = Cdcl.of_formula f in
      match Cdcl.solve ~assumptions:[ 1 ] s with
      | Cdcl.Sat -> Cdcl.value s 1
      | Cdcl.Unsat ->
        (* then adding the unit clause must also be unsat *)
        Cdcl.add_clause s [ 1 ];
        Cdcl.solve s = Cdcl.Unsat
      | Cdcl.Unknown -> false)

let () =
  Alcotest.run "sat"
    [
      ( "cdcl",
        [
          Alcotest.test_case "trivial sat" `Quick test_cdcl_trivial_sat;
          Alcotest.test_case "trivial unsat" `Quick test_cdcl_trivial_unsat;
          Alcotest.test_case "unit chain" `Quick test_cdcl_units_chain;
          Alcotest.test_case "pigeonhole unsat" `Quick test_cdcl_pigeonhole;
          Alcotest.test_case "pigeonhole sat" `Quick test_cdcl_pigeonhole_sat_when_fits;
          Alcotest.test_case "assumptions" `Quick test_cdcl_assumptions;
          Alcotest.test_case "incremental" `Quick test_cdcl_incremental;
          Alcotest.test_case "budget" `Quick test_cdcl_budget;
          Alcotest.test_case "stats" `Quick test_cdcl_stats_accumulate;
          Alcotest.test_case "db reduction" `Quick test_cdcl_survives_db_reduction;
          Alcotest.test_case "level0 unsat" `Quick test_cdcl_empty_clause_via_simplification;
          Alcotest.test_case "tautology" `Quick test_cdcl_duplicate_and_tautology;
        ] );
      ( "dpll",
        [
          Alcotest.test_case "trivial" `Quick test_dpll_trivial;
          Alcotest.test_case "unsat" `Quick test_dpll_unsat;
          Alcotest.test_case "pure literal" `Quick test_dpll_pure_literal;
          Alcotest.test_case "abort" `Quick test_dpll_abort;
        ] );
      ( "random_sat",
        [
          Alcotest.test_case "shape" `Quick test_random_sat_shape;
          Alcotest.test_case "phase transition" `Slow test_phase_transition_shape;
        ] );
      ( "properties",
        [
          prop_cdcl_correct;
          prop_dpll_correct;
          prop_cdcl_dpll_agree;
          prop_cdcl_assumption_consistency;
        ] );
    ]
