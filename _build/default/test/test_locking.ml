(* Tests for Fl_locking (baseline schemes) and Fl_core (Full-Lock). *)

module Circuit = Fl_netlist.Circuit
module Sim = Fl_netlist.Sim
module Generator = Fl_netlist.Generator
module Bench_suite = Fl_netlist.Bench_suite
module Locked = Fl_locking.Locked
module Fulllock = Fl_core.Fulllock
module Cln = Fl_cln.Cln
module Topology = Fl_cln.Topology

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let host ?(seed = 101) ?(gates = 70) ?(inputs = 10) () =
  Generator.random ~seed ~name:"host"
    { Generator.num_inputs = inputs; num_outputs = 4; num_gates = gates;
      max_fanin = 3; and_bias = 0.8 }

(* ------------------------------------------------------------------ *)
(* Baseline schemes: correct key is functionally correct; a perturbed
   key is not.                                                        *)
(* ------------------------------------------------------------------ *)

let scheme_cases =
  [
    ("rll", fun rng c -> Fl_locking.Rll.lock rng ~key_bits:8 c);
    ("mux", fun rng c -> Fl_locking.Mux_lock.lock rng ~key_bits:8 c);
    ("sarlock", fun rng c -> Fl_locking.Sarlock.lock rng ~key_bits:6 c);
    ("antisat", fun rng c -> Fl_locking.Antisat.lock rng ~key_bits:12 c);
    ("lutlock", fun rng c -> Fl_locking.Lut_lock.lock rng ~gates:5 c);
    ("crosslock", fun rng c -> Fl_locking.Cross_lock.lock rng ~n:4 c);
    ("sfll", fun rng c -> Fl_locking.Sfll.lock rng ~key_bits:6 ~h:2 c);
  ]

let test_schemes_verify () =
  let c = host () in
  List.iter
    (fun (name, lock) ->
      let rng = Random.State.make [| 5 |] in
      let l = lock rng c in
      Circuit.validate l.Locked.locked;
      check bool_t (name ^ " has keys") true (Locked.num_key_bits l > 0);
      check int_t (name ^ " key inputs") (Locked.num_key_bits l)
        (Circuit.num_keys l.Locked.locked);
      check bool_t (name ^ " verify") true (Locked.verify l))
    scheme_cases

let test_schemes_locked_is_keyed_superset () =
  let c = host () in
  List.iter
    (fun (name, lock) ->
      let rng = Random.State.make [| 6 |] in
      let l = lock rng c in
      check int_t (name ^ " same inputs") (Circuit.num_inputs c)
        (Circuit.num_inputs l.Locked.locked);
      check int_t (name ^ " same outputs") (Circuit.num_outputs c)
        (Circuit.num_outputs l.Locked.locked);
      check bool_t (name ^ " grew") true
        (Circuit.num_gates l.Locked.locked >= Circuit.num_gates c))
    scheme_cases

let test_wrong_key_detected () =
  let c = host () in
  List.iter
    (fun (name, lock) ->
      let rng = Random.State.make [| 7 |] in
      let l = lock rng c in
      (* Perturb the key: flip one bit for the point-function schemes (an
         all-bit flip keeps Anti-SAT's K1 = K2 family intact!), all bits for
         the rest.  Equality is then checked exhaustively (<= 10 inputs). *)
      let wrong =
        if name = "antisat" || name = "sarlock" || name = "sfll" then begin
          let w = Array.copy l.Locked.correct_key in
          w.(0) <- not w.(0);
          w
        end
        else Array.map not l.Locked.correct_key
      in
      check bool_t (name ^ " perturbed key wrong") false
        (Locked.key_matches l ~key:wrong))
    scheme_cases

let test_sfll_hd_properties () =
  (* SFLL-HD: corruption per wrong key is tiny for small h, and any key at
     the right Hamming distance relationship flips exactly the strip/restore
     difference set. *)
  let c = host ~inputs:8 () in
  let rng = Random.State.make [| 71 |] in
  let l = Fl_locking.Sfll.lock rng ~key_bits:6 ~h:1 c in
  check bool_t "verify" true (Locked.verify l);
  let corr = Locked.output_corruption l (Random.State.make [| 2 |]) in
  check bool_t (Printf.sprintf "low corruption (%.4f)" corr) true (corr < 0.08)

let test_sfll_rejects_bad_h () =
  let c = host () in
  let rng = Random.State.make [| 72 |] in
  try
    ignore (Fl_locking.Sfll.lock rng ~key_bits:4 ~h:9 c);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_cyclic_lock_creates_cycles () =
  let c = host ~gates:100 () in
  let rng = Random.State.make [| 73 |] in
  let l = Fl_locking.Cyclic_lock.lock rng ~cycles:3 c in
  check bool_t "structurally cyclic" false (Circuit.is_acyclic l.Locked.locked);
  check bool_t "verify via fixpoint" true (Locked.verify l);
  check int_t "one key bit per cycle" 3 (Locked.num_key_bits l)

let test_cyclic_lock_wrong_key_oscillates_or_corrupts () =
  let c = host ~gates:100 () in
  let rng = Random.State.make [| 74 |] in
  let l = Fl_locking.Cyclic_lock.lock rng ~cycles:2 c in
  let wrong = Array.map not l.Locked.correct_key in
  check bool_t "wrong key detected" false (Locked.key_matches l ~key:wrong)

let test_sarlock_low_corruption () =
  (* SARLock corrupts a single input pattern per wrong key; RLL corrupts
     broadly.  The gap is the paper's §2 argument. *)
  let c = host ~inputs:6 () in
  let rng = Random.State.make [| 8 |] in
  let sar = Fl_locking.Sarlock.lock rng ~key_bits:6 c in
  let rll = Fl_locking.Rll.lock rng ~key_bits:6 c in
  let corr_sar = Locked.output_corruption sar (Random.State.make [| 1 |]) in
  let corr_rll = Locked.output_corruption rll (Random.State.make [| 1 |]) in
  check bool_t
    (Printf.sprintf "sarlock (%.4f) << rll (%.4f)" corr_sar corr_rll)
    true
    (corr_sar < 0.05 && corr_rll > 0.05)

let test_antisat_correct_key_family () =
  (* Any key with K1 = K2 is functionally correct for Anti-SAT. *)
  let c = host () in
  let rng = Random.State.make [| 9 |] in
  let l = Fl_locking.Antisat.lock rng ~key_bits:12 c in
  let nk = Locked.num_key_bits l in
  let half = nk / 2 in
  let other = Array.init nk (fun i -> i * 31 mod 7 = 0) in
  let aligned = Array.init nk (fun i -> other.(i mod half)) in
  check bool_t "K1=K2 correct" true (Locked.key_matches l ~key:aligned)

let test_crosslock_acyclic () =
  let c = host ~gates:120 () in
  let rng = Random.State.make [| 10 |] in
  let l = Fl_locking.Cross_lock.lock rng ~n:8 c in
  check bool_t "acyclic" true (Circuit.is_acyclic l.Locked.locked);
  check bool_t "verify" true (Locked.verify l);
  (* n=8 crossbar: 8 outputs x 3 select bits *)
  check int_t "key bits" 24 (Locked.num_key_bits l)

let test_lutlock_key_budget () =
  let c = host () in
  let rng = Random.State.make [| 11 |] in
  let l = Fl_locking.Lut_lock.lock rng ~gates:4 c in
  (* each LUT of arity a uses 2^a bits, a <= 4 -> between 4*2 and 4*16 *)
  check bool_t "key budget" true
    (Locked.num_key_bits l >= 8 && Locked.num_key_bits l <= 64)

(* ------------------------------------------------------------------ *)
(* Full-Lock                                                           *)
(* ------------------------------------------------------------------ *)

let test_fulllock_verify_acyclic () =
  let c = host ~gates:80 () in
  let rng = Random.State.make [| 20 |] in
  let l = Fulllock.lock_one rng ~n:4 c in
  Circuit.validate l.Locked.locked;
  check bool_t "acyclic" true (Circuit.is_acyclic l.Locked.locked);
  check bool_t "verify" true (Locked.verify l)

let test_fulllock_verify_n8 () =
  let c = host ~gates:160 ~inputs:12 () in
  let rng = Random.State.make [| 21 |] in
  let l = Fulllock.lock_one rng ~n:8 c in
  check bool_t "verify" true (Locked.verify l)

let test_fulllock_multi_plr () =
  let c = host ~gates:200 ~inputs:12 () in
  let rng = Random.State.make [| 22 |] in
  let l =
    Fulllock.lock rng
      ~configs:[ Fulllock.default_config ~n:4; Fulllock.default_config ~n:4 ]
      c
  in
  check bool_t "verify" true (Locked.verify l);
  check bool_t "more keys than one PLR" true
    (Locked.num_key_bits l > Fulllock.cln_key_bits (Fulllock.default_config ~n:4))

let test_fulllock_cyclic_policy () =
  let c = host ~gates:120 () in
  let rng = Random.State.make [| 23 |] in
  let l = Fulllock.lock_one rng ~policy:`Cyclic ~n:4 c in
  (* Cyclic insertion on connected wires creates structural cycles (with
     this seed it does); the correct key must still settle and verify. *)
  check bool_t "verify (fixpoint sim)" true (Locked.verify l)

let test_fulllock_cyclic_creates_cycles () =
  (* Over several seeds, the `Cyclic policy must produce at least one
     structurally cyclic locked circuit. *)
  let c = host ~gates:120 () in
  let found = ref false in
  for seed = 0 to 9 do
    if not !found then begin
      let rng = Random.State.make [| seed |] in
      let l = Fulllock.lock_one rng ~policy:`Cyclic ~n:4 c in
      if not (Circuit.is_acyclic l.Locked.locked) then found := true
    end
  done;
  check bool_t "some cyclic instance" true !found

let test_fulllock_acyclic_never_cycles () =
  let c = host ~gates:150 () in
  for seed = 0 to 9 do
    let rng = Random.State.make [| seed |] in
    let l = Fulllock.lock_one rng ~policy:`Acyclic ~n:4 c in
    check bool_t (Printf.sprintf "seed %d acyclic" seed) true
      (Circuit.is_acyclic l.Locked.locked)
  done

let test_fulllock_wrong_key () =
  let c = host ~gates:80 () in
  let rng = Random.State.make [| 24 |] in
  let l = Fulllock.lock_one rng ~n:4 c in
  let wrong = Array.copy l.Locked.correct_key in
  wrong.(0) <- not wrong.(0);
  (* bit 0 is a CLN switch bit: the route breaks *)
  check bool_t "flipped switch bit wrong" false (Locked.key_matches l ~key:wrong)

let test_corruption_estimators_agree () =
  (* Scalar and word-parallel corruption estimates must roughly agree. *)
  let c = host ~gates:80 ~inputs:8 () in
  let rng = Random.State.make [| 55 |] in
  let l = Fulllock.lock_one rng ~n:4 c in
  let slow = Locked.output_corruption ~trials:12 ~vectors:63 l (Random.State.make [| 6 |]) in
  let fast = Locked.output_corruption_fast ~trials:12 ~batches:1 l (Random.State.make [| 6 |]) in
  check bool_t
    (Printf.sprintf "slow %.3f ~ fast %.3f" slow fast)
    true
    (Float.abs (slow -. fast) < 0.15)

let test_fulllock_high_corruption () =
  let c = host ~gates:80 ~inputs:8 () in
  let rng = Random.State.make [| 25 |] in
  let l = Fulllock.lock_one rng ~n:4 c in
  let corr = Locked.output_corruption l (Random.State.make [| 2 |]) in
  check bool_t (Printf.sprintf "corruption %.3f > 0.05" corr) true (corr > 0.05)

let test_fulllock_without_luts_or_twist () =
  let c = host ~gates:80 () in
  let rng = Random.State.make [| 26 |] in
  let config =
    { (Fulllock.default_config ~n:4) with Fulllock.lut_layer = false;
      negate_leading = false }
  in
  let l = Fulllock.lock rng ~configs:[ config ] c in
  check bool_t "verify" true (Locked.verify l);
  (* key bits = CLN bits exactly *)
  check int_t "cln-only keys" (Fulllock.cln_key_bits config) (Locked.num_key_bits l)

let test_fulllock_negate_requires_inverters () =
  let c = host () in
  let rng = Random.State.make [| 27 |] in
  let config =
    { (Fulllock.default_config ~n:4) with
      Fulllock.cln = { (Cln.default_spec ~n:4) with Cln.inverters = Cln.No_inverters } }
  in
  try
    ignore (Fulllock.lock rng ~configs:[ config ] c);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_fulllock_blocking_variant () =
  let c = host ~gates:100 () in
  let rng = Random.State.make [| 28 |] in
  let l = Fulllock.lock rng ~configs:[ Fulllock.blocking_config ~n:8 ] c in
  check bool_t "verify" true (Locked.verify l)

let test_fulllock_multi_plane_cln () =
  (* A PLR built on the general LOG(N,m,p) network with vertical copies. *)
  let c = host ~gates:110 () in
  let rng = Random.State.make [| 30; 2 |] in
  let config =
    { (Fulllock.default_config ~n:8) with
      Fulllock.cln = Cln.log_nmp_spec ~n:8 ~m:1 ~p:3 }
  in
  let l = Fulllock.lock rng ~configs:[ config ] c in
  check bool_t "verify" true (Locked.verify l);
  (* p planes multiply the switch-box key budget. *)
  check bool_t "key budget grew" true
    (Locked.num_key_bits l > Fulllock.cln_key_bits (Fulllock.default_config ~n:8))

let test_fulllock_per_stage_inverters () =
  let c = host ~gates:100 () in
  let rng = Random.State.make [| 29 |] in
  let config =
    { (Fulllock.default_config ~n:4) with
      Fulllock.cln = { (Cln.default_spec ~n:4) with Cln.inverters = Cln.Per_stage } }
  in
  let l = Fulllock.lock rng ~configs:[ config ] c in
  check bool_t "verify" true (Locked.verify l)

let test_standalone_cln_lock () =
  List.iter
    (fun spec ->
      let rng = Random.State.make [| 30 |] in
      let l = Fulllock.standalone_cln_lock spec rng in
      check bool_t "verify" true (Locked.verify l))
    [ Cln.blocking_spec ~n:8; Cln.default_spec ~n:8; Cln.default_spec ~n:4 ]

let test_parse_plr_sizes () =
  check (Alcotest.list int_t) "2x16 + 1x8" [ 16; 16; 8 ]
    (Fulllock.parse_plr_sizes "2x16 + 1x8");
  check (Alcotest.list int_t) "32" [ 32 ] (Fulllock.parse_plr_sizes "32");
  check (Alcotest.list int_t) "3x16" [ 16; 16; 16 ] (Fulllock.parse_plr_sizes "3x16")

let test_fulllock_on_c17 () =
  (* c17 is tiny; a 2-wire PLR still fits and must verify exhaustively. *)
  let c = Bench_suite.c17 () in
  let rng = Random.State.make [| 31 |] in
  let config = Fulllock.default_config ~n:2 in
  let l = Fulllock.lock rng ~configs:[ config ] c in
  check bool_t "verify (exhaustive)" true (Locked.verify l)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let qcheck_case ?(count = 40) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let prop_fulllock_always_verifies =
  let gen = QCheck2.Gen.(pair (int_bound 10_000) (int_range 0 1)) in
  qcheck_case "full-lock correct key always verifies" gen (fun (seed, n_exp) ->
      let n = 4 lsl n_exp in
      let c = host ~seed ~gates:(120 + (seed mod 60)) ~inputs:12 () in
      let rng = Random.State.make [| seed; 99 |] in
      let l = Fulllock.lock_one rng ~n c in
      Locked.verify l)

let prop_fulllock_cyclic_verifies =
  let gen = QCheck2.Gen.int_bound 10_000 in
  qcheck_case ~count:25 "cyclic full-lock verifies via fixpoint" gen (fun seed ->
      let c = host ~seed:(seed + 7) ~gates:90 () in
      let rng = Random.State.make [| seed; 3 |] in
      let l = Fulllock.lock_one rng ~policy:`Cyclic ~n:4 c in
      Locked.verify l)

let prop_baselines_verify =
  let gen = QCheck2.Gen.(pair (int_bound 10_000) (int_range 0 6)) in
  qcheck_case "baselines verify" gen (fun (seed, which) ->
      let c = host ~seed:(seed + 13) () in
      let rng = Random.State.make [| seed |] in
      let _, lock = List.nth scheme_cases which in
      Locked.verify (lock rng c))

let () =
  Alcotest.run "locking"
    [
      ( "baselines",
        [
          Alcotest.test_case "verify" `Quick test_schemes_verify;
          Alcotest.test_case "shape" `Quick test_schemes_locked_is_keyed_superset;
          Alcotest.test_case "wrong key" `Quick test_wrong_key_detected;
          Alcotest.test_case "sarlock low corruption" `Quick test_sarlock_low_corruption;
          Alcotest.test_case "sfll-hd" `Quick test_sfll_hd_properties;
          Alcotest.test_case "sfll bad h" `Quick test_sfll_rejects_bad_h;
          Alcotest.test_case "cyclic lock cycles" `Quick test_cyclic_lock_creates_cycles;
          Alcotest.test_case "cyclic lock wrong key" `Quick test_cyclic_lock_wrong_key_oscillates_or_corrupts;
          Alcotest.test_case "antisat key family" `Quick test_antisat_correct_key_family;
          Alcotest.test_case "crosslock acyclic" `Quick test_crosslock_acyclic;
          Alcotest.test_case "lutlock key budget" `Quick test_lutlock_key_budget;
        ] );
      ( "fulllock",
        [
          Alcotest.test_case "verify acyclic" `Quick test_fulllock_verify_acyclic;
          Alcotest.test_case "verify n=8" `Quick test_fulllock_verify_n8;
          Alcotest.test_case "multi PLR" `Quick test_fulllock_multi_plr;
          Alcotest.test_case "cyclic policy" `Quick test_fulllock_cyclic_policy;
          Alcotest.test_case "cyclic creates cycles" `Quick test_fulllock_cyclic_creates_cycles;
          Alcotest.test_case "acyclic stays acyclic" `Quick test_fulllock_acyclic_never_cycles;
          Alcotest.test_case "wrong key" `Quick test_fulllock_wrong_key;
          Alcotest.test_case "high corruption" `Quick test_fulllock_high_corruption;
          Alcotest.test_case "corruption estimators agree" `Quick test_corruption_estimators_agree;
          Alcotest.test_case "no luts/twist" `Quick test_fulllock_without_luts_or_twist;
          Alcotest.test_case "negate needs inverters" `Quick test_fulllock_negate_requires_inverters;
          Alcotest.test_case "blocking variant" `Quick test_fulllock_blocking_variant;
          Alcotest.test_case "per-stage inverters" `Quick test_fulllock_per_stage_inverters;
          Alcotest.test_case "multi-plane cln" `Quick test_fulllock_multi_plane_cln;
          Alcotest.test_case "standalone cln" `Quick test_standalone_cln_lock;
          Alcotest.test_case "parse plr sizes" `Quick test_parse_plr_sizes;
          Alcotest.test_case "c17" `Quick test_fulllock_on_c17;
        ] );
      ( "properties",
        [ prop_fulllock_always_verifies; prop_fulllock_cyclic_verifies; prop_baselines_verify ] );
    ]
