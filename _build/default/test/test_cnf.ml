(* Tests for Fl_cnf: formulas, DIMACS, Tseytin transform, miter. *)

module Gate = Fl_netlist.Gate
module Circuit = Fl_netlist.Circuit
module Sim = Fl_netlist.Sim
module Generator = Fl_netlist.Generator
module Formula = Fl_cnf.Formula
module Tseytin = Fl_cnf.Tseytin
module Miter = Fl_cnf.Miter

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* Brute-force SAT check used as the reference implementation. *)
let brute_force_models f =
  let n = Formula.num_vars f in
  assert (n <= 20);
  let clauses = Formula.clauses f in
  let satisfied assignment =
    Array.for_all
      (fun clause ->
        Array.exists
          (fun l ->
            let v = abs l in
            let value = assignment land (1 lsl (v - 1)) <> 0 in
            if l > 0 then value else not value)
          clause)
      clauses
  in
  let count = ref 0 in
  for a = 0 to (1 lsl n) - 1 do
    if satisfied a then incr count
  done;
  !count

(* ------------------------------------------------------------------ *)
(* Formula                                                             *)
(* ------------------------------------------------------------------ *)

let test_formula_basics () =
  let f = Formula.create () in
  let a = Formula.fresh_var f in
  let b = Formula.fresh_var f in
  Formula.add_clause f [ a; -b ];
  Formula.add_clause f [ -a; b ];
  check int_t "vars" 2 (Formula.num_vars f);
  check int_t "clauses" 2 (Formula.num_clauses f);
  check int_t "literals" 4 (Formula.num_literals f);
  check (Alcotest.float 1e-9) "ratio" 1.0 (Formula.ratio f)

let test_formula_rejects_bad_clauses () =
  let f = Formula.create () in
  let a = Formula.fresh_var f in
  (try
     Formula.add_clause f [];
     Alcotest.fail "empty clause accepted"
   with Invalid_argument _ -> ());
  (try
     Formula.add_clause f [ a; 0 ];
     Alcotest.fail "zero literal accepted"
   with Invalid_argument _ -> ());
  try
    Formula.add_clause f [ 5 ];
    Alcotest.fail "unallocated variable accepted"
  with Invalid_argument _ -> ()

let test_dimacs_roundtrip () =
  let f = Formula.create () in
  let vars = Formula.fresh_vars f 4 in
  Formula.add_clause f [ vars.(0); -vars.(1); vars.(3) ];
  Formula.add_clause f [ -vars.(2) ];
  let text = Formula.to_dimacs f in
  let f2 = Formula.of_dimacs text in
  check int_t "clauses" (Formula.num_clauses f) (Formula.num_clauses f2);
  check int_t "vars >= used" 4 (Formula.num_vars f2);
  check bool_t "same clause content" true
    (Formula.clauses f = Formula.clauses f2)

let test_dimacs_errors () =
  (try
     ignore (Formula.of_dimacs "1 x 0\n");
     Alcotest.fail "expected error"
   with Formula.Dimacs_error _ -> ());
  try
    ignore (Formula.of_dimacs "1 2 3\n");
    Alcotest.fail "expected trailing-clause error"
  with Formula.Dimacs_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Tseytin gate encodings: each gate's CNF must have exactly the models
   of its truth table.                                                 *)
(* ------------------------------------------------------------------ *)

let count_gate_models kind arity =
  let f = Formula.create () in
  let fanins = Formula.fresh_vars f arity in
  let out = Formula.fresh_var f in
  Tseytin.encode_gate f kind ~out ~fanins;
  (* Model count must be 2^arity: every input combination has exactly one
     consistent output. *)
  brute_force_models f

let test_gate_encodings_model_count () =
  List.iter
    (fun (kind, arity) ->
      check int_t
        (Printf.sprintf "%s/%d" (Gate.to_string kind) arity)
        (1 lsl arity)
        (count_gate_models kind arity))
    [
      Gate.And, 2; Gate.Nand, 2; Gate.Or, 2; Gate.Nor, 2; Gate.Xor, 2;
      Gate.Xnor, 2; Gate.Buf, 1; Gate.Not, 1; Gate.Mux, 3; Gate.And, 3;
      Gate.Nand, 4; Gate.Or, 3; Gate.Nor, 4; Gate.Xor, 3; Gate.Xnor, 3;
      Gate.Lut [| true; false; true; true |], 2;
    ]

let test_gate_encoding_functional () =
  (* Pin inputs, check the only model's output matches Gate.eval. *)
  let kinds =
    [ Gate.And; Gate.Nand; Gate.Or; Gate.Nor; Gate.Xor; Gate.Xnor; Gate.Mux;
      Gate.Lut [| false; true; true; true; false; false; true; false |] ]
  in
  List.iter
    (fun kind ->
      let arity = match Gate.arity kind with Some a -> a | None -> 2 in
      for stim = 0 to (1 lsl arity) - 1 do
        let f = Formula.create () in
        let fanins = Formula.fresh_vars f arity in
        let out = Formula.fresh_var f in
        Tseytin.encode_gate f kind ~out ~fanins;
        let bits = Array.init arity (fun i -> stim land (1 lsl i) <> 0) in
        Tseytin.assert_vector f fanins bits;
        let expected = Gate.eval kind bits in
        (* Force output to the wrong value: must be unsat (0 models). *)
        let f_bad = Formula.copy f in
        Tseytin.assert_lit f_bad (if expected then -out else out);
        check int_t
          (Printf.sprintf "%s bad stim=%d" (Gate.to_string kind) stim)
          0 (brute_force_models f_bad);
        Tseytin.assert_lit f (if expected then out else -out);
        check int_t
          (Printf.sprintf "%s good stim=%d" (Gate.to_string kind) stim)
          1 (brute_force_models f)
      done)
    kinds

let test_table1_clause_counts () =
  (* Table 1: 2-input AND/OR/NAND/NOR have 3 clauses; XOR/XNOR/MUX have 4;
     BUF/NOT have 2. *)
  let clause_count kind arity =
    let f = Formula.create () in
    let fanins = Formula.fresh_vars f arity in
    let out = Formula.fresh_var f in
    Tseytin.encode_gate f kind ~out ~fanins;
    Formula.num_clauses f
  in
  check int_t "and" 3 (clause_count Gate.And 2);
  check int_t "nand" 3 (clause_count Gate.Nand 2);
  check int_t "or" 3 (clause_count Gate.Or 2);
  check int_t "nor" 3 (clause_count Gate.Nor 2);
  check int_t "xor" 4 (clause_count Gate.Xor 2);
  check int_t "xnor" 4 (clause_count Gate.Xnor 2);
  check int_t "mux" 4 (clause_count Gate.Mux 3);
  check int_t "buf" 2 (clause_count Gate.Buf 1);
  check int_t "not" 2 (clause_count Gate.Not 1)

(* ------------------------------------------------------------------ *)
(* Whole-circuit encoding vs simulation                                *)
(* ------------------------------------------------------------------ *)

let check_circuit_encoding c vectors =
  List.iter
    (fun inputs ->
      let f = Formula.create () in
      let enc = Tseytin.encode f c in
      Tseytin.assert_vector f enc.Tseytin.input_vars inputs;
      let expected = Sim.eval c ~inputs ~keys:[||] in
      (* Assert the expected outputs: satisfiable. *)
      let f_good = Formula.copy f in
      Tseytin.assert_vector f_good enc.Tseytin.output_vars expected;
      check bool_t "good is sat" true (brute_force_models f_good > 0);
      (* Assert some output flipped: unsatisfiable. *)
      let f_bad = Formula.copy f in
      Tseytin.assert_lit f_bad
        (let v = enc.Tseytin.output_vars.(0) in
         if expected.(0) then -v else v);
      check int_t "bad is unsat" 0 (brute_force_models f_bad))
    vectors

let test_c17_encoding () =
  let c = Fl_netlist.Bench_suite.c17 () in
  let vectors = List.init 8 (fun v -> Sim.vector_of_int ~width:5 (v * 4 mod 32)) in
  check_circuit_encoding c vectors

let test_random_circuit_encoding () =
  let profile =
    { Generator.num_inputs = 6; num_outputs = 2; num_gates = 25; max_fanin = 3; and_bias = 0.6 }
  in
  let c = Generator.random ~seed:11 ~name:"enc" profile in
  (* Brute force limit: formula has ~num_nodes vars, keep below 20. *)
  if Circuit.num_nodes c + 4 <= 20 then
    check_circuit_encoding c (List.init 4 (fun v -> Sim.vector_of_int ~width:6 (v * 13 mod 64)))
  else begin
    (* Large circuit: only shape checks. *)
    let f = Formula.create () in
    let enc = Tseytin.encode f c in
    check bool_t "vars cover nodes" true (Formula.num_vars f >= Circuit.num_nodes c);
    check bool_t "outputs mapped" true (Array.length enc.Tseytin.output_vars = 2)
  end

let test_shared_inputs_encoding () =
  (* Two copies sharing inputs: same circuit, no keys -> outputs must be
     provably equal (forcing a difference is unsat). *)
  let c = Fl_netlist.Bench_suite.c17 () in
  let f = Formula.create () in
  let a = Tseytin.encode f c in
  let b = Tseytin.encode ~share_inputs:a.Tseytin.input_vars f c in
  let pairs =
    Array.to_list (Array.map2 (fun x y -> x, y) a.Tseytin.output_vars b.Tseytin.output_vars)
  in
  ignore (Tseytin.assert_any_differs f pairs);
  (* 2 copies of c17 -> too many vars for brute force; use the CDCL solver. *)
  let outcome, _, _ = Fl_sat.Cdcl.solve_formula f in
  check bool_t "copies equal" true (outcome = Fl_sat.Cdcl.Unsat)

(* ------------------------------------------------------------------ *)
(* Miter                                                               *)
(* ------------------------------------------------------------------ *)

(* y = x XOR k : flipping the key flips the output, so a DIP exists. *)
let xor_locked () =
  let b = Circuit.Builder.create ~name:"xl" () in
  let x = Circuit.Builder.input ~name:"x" b in
  let k = Circuit.Builder.key_input ~name:"k" b in
  let y = Circuit.Builder.add ~name:"y" b Gate.Xor [| x; k |] in
  Circuit.Builder.output b "y" y;
  Circuit.of_builder b

let test_miter_finds_dip () =
  let c = xor_locked () in
  let m = Miter.build c in
  let outcome, _, _ = Fl_sat.Cdcl.solve_formula m.Miter.formula in
  check bool_t "dip exists" true (outcome = Fl_sat.Cdcl.Sat)

let test_miter_io_constraint_rules_out_keys () =
  let c = xor_locked () in
  let m = Miter.build c in
  (* Oracle with k* = 1: input x=0 -> y=1. *)
  Miter.add_io_constraint m c ~inputs:[| false |] ~outputs:[| true |];
  (* Now both key copies must be 1, so no further DIP exists. *)
  let outcome, _, _ = Fl_sat.Cdcl.solve_formula m.Miter.formula in
  check bool_t "no dip left" true (outcome = Fl_sat.Cdcl.Unsat)

let test_miter_requires_keys () =
  let c = Fl_netlist.Bench_suite.c17 () in
  try
    ignore (Miter.build c);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_ratio_positive () =
  let c = xor_locked () in
  let r = Miter.clause_variable_ratio c in
  check bool_t "ratio > 0" true (r > 0.0)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let qcheck_case ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let prop_encoding_matches_sim =
  (* For random small circuits and vectors, CDCL on the pinned encoding gives
     exactly the simulated outputs. *)
  let gen = QCheck2.Gen.(pair (int_bound 500) (int_bound 0xffff)) in
  qcheck_case "tseytin matches simulation" gen (fun (seed, stim) ->
      let profile =
        { Generator.num_inputs = 5; num_outputs = 3; num_gates = 30; max_fanin = 4; and_bias = 0.7 }
      in
      let c = Generator.random ~seed ~name:"p" profile in
      let inputs = Array.init 5 (fun i -> stim land (1 lsl i) <> 0) in
      let f = Formula.create () in
      let enc = Tseytin.encode f c in
      Tseytin.assert_vector f enc.Tseytin.input_vars inputs;
      match Fl_sat.Cdcl.solve_formula f with
      | Fl_sat.Cdcl.Sat, Some model, _ ->
        let expected = Sim.eval c ~inputs ~keys:[||] in
        Array.for_all2
          (fun v e -> model.(v) = e)
          enc.Tseytin.output_vars expected
      | _ -> false)

let () =
  Alcotest.run "cnf"
    [
      ( "formula",
        [
          Alcotest.test_case "basics" `Quick test_formula_basics;
          Alcotest.test_case "bad clauses" `Quick test_formula_rejects_bad_clauses;
          Alcotest.test_case "dimacs roundtrip" `Quick test_dimacs_roundtrip;
          Alcotest.test_case "dimacs errors" `Quick test_dimacs_errors;
        ] );
      ( "tseytin",
        [
          Alcotest.test_case "model counts" `Quick test_gate_encodings_model_count;
          Alcotest.test_case "functional" `Quick test_gate_encoding_functional;
          Alcotest.test_case "table1 clause counts" `Quick test_table1_clause_counts;
          Alcotest.test_case "c17 encoding" `Quick test_c17_encoding;
          Alcotest.test_case "random circuit" `Quick test_random_circuit_encoding;
          Alcotest.test_case "shared inputs" `Quick test_shared_inputs_encoding;
        ] );
      ( "miter",
        [
          Alcotest.test_case "finds dip" `Quick test_miter_finds_dip;
          Alcotest.test_case "io constraint" `Quick test_miter_io_constraint_rules_out_keys;
          Alcotest.test_case "requires keys" `Quick test_miter_requires_keys;
          Alcotest.test_case "ratio positive" `Quick test_ratio_positive;
        ] );
      "properties", [ prop_encoding_matches_sim ];
    ]
