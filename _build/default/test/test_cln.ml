(* Tests for Fl_cln: topologies, switch-boxes, CLN build/decode agreement,
   permutation coverage (blocking vs non-blocking), routing. *)

module Circuit = Fl_netlist.Circuit
module Sim = Fl_netlist.Sim
module Topology = Fl_cln.Topology
module Switch_box = Fl_cln.Switch_box
module Cln = Fl_cln.Cln
module Coverage = Fl_cln.Coverage

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Topology                                                            *)
(* ------------------------------------------------------------------ *)

let test_switch_box_counts () =
  (* All blocking log2 N networks have (N/2) log2 N switch-boxes (§3.1). *)
  List.iter
    (fun kind ->
      List.iter
        (fun n ->
          let t = Topology.make kind ~n in
          let m = int_of_float (Float.round (Float.log2 (float_of_int n))) in
          check int_t
            (Printf.sprintf "%s n=%d" (Topology.kind_to_string kind) n)
            (n / 2 * m)
            (Topology.num_switch_boxes t))
        [ 2; 4; 8; 16; 32 ])
    [ Topology.Omega; Topology.Butterfly; Topology.Baseline ]

let test_near_non_blocking_stages () =
  (* LOG(N, log2N - 2, 1): log2 N + (log2 N - 2) switch stages. *)
  List.iter
    (fun (n, expected_stages) ->
      let t = Topology.make Topology.Near_non_blocking ~n in
      check int_t (Printf.sprintf "n=%d" n) expected_stages t.Topology.switch_layers)
    [ 4, 2; 8, 4; 16, 6; 32, 8; 64, 10 ]

let test_benes_stages () =
  List.iter
    (fun (n, expected) ->
      let t = Topology.make Topology.Benes ~n in
      check int_t (Printf.sprintf "n=%d" n) expected t.Topology.switch_layers)
    [ 4, 3; 8, 5; 16, 7 ]

let test_log_nmp_cost () =
  (* §3.1: LOG(64,3,6) is >5x a blocking CLN; LOG(64,4,1) is ~1.7x. *)
  let blocking =
    Topology.num_switch_boxes (Topology.make Topology.Omega ~n:64)
  in
  let strict = Topology.log_nmp_switch_boxes ~n:64 ~m:3 ~p:6 in
  let almost = Topology.log_nmp_switch_boxes ~n:64 ~m:4 ~p:1 in
  check bool_t
    (Printf.sprintf "strict %d > 5x blocking %d" strict blocking)
    true
    (strict > 5 * blocking);
  check bool_t "almost ~2x blocking" true
    (almost < 2 * blocking);
  (* p = 1, m = log2 n - 2 must agree with the built topology. *)
  check int_t "consistency with Near_non_blocking" almost
    (Topology.num_switch_boxes (Topology.make Topology.Near_non_blocking ~n:64))

let test_topology_rejects_bad_n () =
  List.iter
    (fun n ->
      try
        ignore (Topology.make Topology.Omega ~n);
        Alcotest.failf "accepted n=%d" n
      with Invalid_argument _ -> ())
    [ 0; 1; 3; 6; 100 ]

let test_thread_identity () =
  (* With pass-through boxes, threading must be the identity permutation
     (all Route layers in every topology compose to identity). *)
  List.iter
    (fun kind ->
      let t = Topology.make kind ~n:8 in
      let result =
        Topology.thread t
          (Array.init 8 (fun i -> i))
          ~switch:(fun ~layer_index:_ ~box:_ a b -> a, b)
      in
      check (Alcotest.array int_t)
        (Topology.kind_to_string kind)
        (Array.init 8 (fun i -> i))
        result)
    [ Topology.Butterfly; Topology.Baseline; Topology.Near_non_blocking; Topology.Benes ]

let test_thread_omega_identity () =
  (* Omega's shuffle layers also compose to the identity over log2 N stages
     when boxes pass straight through. *)
  let t = Topology.make Topology.Omega ~n:8 in
  let result =
    Topology.thread t
      (Array.init 8 (fun i -> i))
      ~switch:(fun ~layer_index:_ ~box:_ a b -> a, b)
  in
  check (Alcotest.array int_t) "omega identity" (Array.init 8 (fun i -> i)) result

(* ------------------------------------------------------------------ *)
(* Switch boxes                                                        *)
(* ------------------------------------------------------------------ *)

let test_switch_box_decode () =
  (* Independent: zero = pass, ones = swap, mixed = broadcast. *)
  check (Alcotest.pair int_t int_t) "pass" (1, 2)
    (Switch_box.decode Switch_box.Independent [| false; false |] (1, 2));
  check (Alcotest.pair int_t int_t) "swap" (2, 1)
    (Switch_box.decode Switch_box.Independent [| true; true |] (1, 2));
  check (Alcotest.pair int_t int_t) "broadcast b" (2, 2)
    (Switch_box.decode Switch_box.Independent [| true; false |] (1, 2));
  check (Alcotest.pair int_t int_t) "broadcast a" (1, 1)
    (Switch_box.decode Switch_box.Independent [| false; true |] (1, 2));
  check (Alcotest.pair int_t int_t) "swap style" (2, 1)
    (Switch_box.decode Switch_box.Swap [| true |] (1, 2))

let test_switch_box_permutation_flag () =
  check bool_t "pass is perm" true
    (Switch_box.is_permutation Switch_box.Independent [| false; false |]);
  check bool_t "swap is perm" true
    (Switch_box.is_permutation Switch_box.Independent [| true; true |]);
  check bool_t "broadcast is not" false
    (Switch_box.is_permutation Switch_box.Independent [| true; false |]);
  check bool_t "swap style always perm" true
    (Switch_box.is_permutation Switch_box.Swap [| true |])

(* ------------------------------------------------------------------ *)
(* CLN build/decode agreement                                          *)
(* ------------------------------------------------------------------ *)

let specs_under_test =
  let open Cln in
  [
    { n = 4; topology = Topology.Omega; style = Switch_box.Independent; inverters = Outputs_only; planes = 1 };
    { n = 8; topology = Topology.Omega; style = Switch_box.Independent; inverters = Outputs_only; planes = 1 };
    { n = 8; topology = Topology.Butterfly; style = Switch_box.Swap; inverters = No_inverters; planes = 1 };
    { n = 8; topology = Topology.Near_non_blocking; style = Switch_box.Independent; inverters = Outputs_only; planes = 1 };
    { n = 8; topology = Topology.Near_non_blocking; style = Switch_box.Independent; inverters = Per_stage; planes = 1 };
    { n = 4; topology = Topology.Benes; style = Switch_box.Swap; inverters = Outputs_only; planes = 1 };
    { n = 16; topology = Topology.Near_non_blocking; style = Switch_box.Independent; inverters = Outputs_only; planes = 1 };
    { n = 8; topology = Topology.Baseline; style = Switch_box.Independent; inverters = No_inverters; planes = 1 };
    Cln.log_nmp_spec ~n:8 ~m:1 ~p:2;
    Cln.log_nmp_spec ~n:4 ~m:0 ~p:3;
    { (Cln.log_nmp_spec ~n:8 ~m:2 ~p:2) with Cln.style = Switch_box.Swap };
  ]

let test_key_bits_match_circuit () =
  List.iter
    (fun spec ->
      let c = Cln.standalone spec in
      Circuit.validate c;
      check int_t
        (Format.asprintf "%a" Cln.pp_spec spec)
        (Cln.num_key_bits spec) (Circuit.num_keys c);
      check int_t "inputs" spec.Cln.n (Circuit.num_inputs c);
      check int_t "outputs" spec.Cln.n (Circuit.num_outputs c))
    specs_under_test

let test_build_decode_agree () =
  (* The compiled netlist and the semantic decoder must agree on every
     (key, input) sample — including non-routable (broadcast) keys. *)
  let rng = Random.State.make [| 77 |] in
  List.iter
    (fun spec ->
      let c = Cln.standalone spec in
      let nk = Cln.num_key_bits spec in
      for _ = 1 to 25 do
        let key = Array.init nk (fun _ -> Random.State.bool rng) in
        let action = Cln.decode spec ~key in
        let inputs = Sim.random_vector rng spec.Cln.n in
        let from_circuit = Sim.eval c ~inputs ~keys:key in
        let from_decode = Cln.apply_action action inputs in
        check (Alcotest.array bool_t)
          (Format.asprintf "%a" Cln.pp_spec spec)
          from_decode from_circuit
      done)
    specs_under_test

let test_identity_key () =
  List.iter
    (fun spec ->
      let action = Cln.decode spec ~key:(Cln.key_for_identity spec) in
      check (Alcotest.array int_t)
        (Format.asprintf "%a" Cln.pp_spec spec)
        (Array.init spec.Cln.n (fun i -> i))
        action.Cln.source;
      check bool_t "no inversions" false (Array.exists (fun b -> b) action.Cln.inverted))
    specs_under_test

let test_routable_keys_are_permutations () =
  let rng = Random.State.make [| 13 |] in
  List.iter
    (fun spec ->
      for _ = 1 to 30 do
        let key = Cln.random_routable_key spec rng in
        let action = Cln.decode spec ~key in
        check bool_t
          (Format.asprintf "%a" Cln.pp_spec spec)
          true
          (Cln.is_permutation action)
      done)
    specs_under_test

let test_broadcast_keys_detected () =
  (* With Independent boxes, a mixed config somewhere should often produce a
     non-permutation; make one deliberately. *)
  let spec = Cln.default_spec ~n:4 in
  let key = Cln.key_for_identity spec in
  key.(0) <- true;
  (* box 0 bits = (1,0): broadcast *)
  let action = Cln.decode spec ~key in
  check bool_t "broadcast detected" false (Cln.is_permutation action)

let test_key_of_swaps_roundtrip () =
  let spec = Cln.blocking_spec ~n:8 in
  let boxes = Cln.num_switch_boxes spec in
  let rng = Random.State.make [| 3 |] in
  for _ = 1 to 10 do
    let swaps = Array.init boxes (fun _ -> Random.State.bool rng) in
    let key = Cln.key_of_swaps spec swaps in
    let action = Cln.decode spec ~key in
    check bool_t "swaps give permutation" true (Cln.is_permutation action);
    check bool_t "no inversion" false (Array.exists (fun b -> b) action.Cln.inverted)
  done

(* ------------------------------------------------------------------ *)
(* Coverage: blocking vs non-blocking                                  *)
(* ------------------------------------------------------------------ *)

let test_benes_covers_all_n4 () =
  let spec =
    { (Cln.default_spec ~n:4) with Cln.topology = Topology.Benes;
      style = Switch_box.Swap; inverters = Cln.No_inverters }
  in
  let r = Coverage.measure spec in
  check bool_t "exhaustive" true r.Coverage.exhaustive;
  check int_t "all 24 permutations" 24 r.Coverage.distinct_permutations

let test_blocking_misses_permutations_n4 () =
  let spec =
    { (Cln.blocking_spec ~n:4) with Cln.style = Switch_box.Swap;
      inverters = Cln.No_inverters }
  in
  let r = Coverage.measure spec in
  check bool_t "exhaustive" true r.Coverage.exhaustive;
  check bool_t "misses permutations" true (r.Coverage.distinct_permutations < 24)

let test_non_blocking_beats_blocking_n8 () =
  let blocking = Coverage.measure (Cln.blocking_spec ~n:8) in
  let nnb = Coverage.measure (Cln.default_spec ~n:8) in
  check bool_t "nnb > blocking" true
    (nnb.Coverage.distinct_permutations > blocking.Coverage.distinct_permutations);
  (* A blocking omega-8 realises at most 2^12 = 4096 of 40320 permutations. *)
  check bool_t "blocking limited" true (blocking.Coverage.distinct_permutations <= 4096)

let test_benes_covers_all_n8 () =
  let spec =
    { (Cln.default_spec ~n:8) with Cln.topology = Topology.Benes;
      style = Switch_box.Swap; inverters = Cln.No_inverters }
  in
  let r = Coverage.measure ~max_keys:(1 lsl 20) spec in
  check bool_t "exhaustive" true r.Coverage.exhaustive;
  check int_t "all 40320" 40320 r.Coverage.distinct_permutations

(* ------------------------------------------------------------------ *)
(* Router                                                              *)
(* ------------------------------------------------------------------ *)

let random_permutation rng n =
  let p = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = p.(i) in
    p.(i) <- p.(j);
    p.(j) <- t
  done;
  p

let test_benes_routes_everything () =
  let spec =
    { (Cln.default_spec ~n:8) with Cln.topology = Topology.Benes } in
  let rng = Random.State.make [| 21 |] in
  for _ = 1 to 40 do
    let p = random_permutation rng 8 in
    check bool_t "routes" true (Coverage.routes_permutation spec p)
  done

let test_omega_blocks_something () =
  let spec = Cln.blocking_spec ~n:8 in
  let rng = Random.State.make [| 22 |] in
  let blocked = ref 0 in
  for _ = 1 to 60 do
    let p = random_permutation rng 8 in
    if not (Coverage.routes_permutation spec p) then incr blocked
  done;
  check bool_t "some permutation blocked" true (!blocked > 0)

let test_decoded_keys_are_routable () =
  (* Any permutation obtained from a routable key must be routed by the
     router (consistency between decode and routes_permutation). *)
  let rng = Random.State.make [| 23 |] in
  List.iter
    (fun spec ->
      for _ = 1 to 10 do
        let key = Cln.random_routable_key spec rng in
        let action = Cln.decode spec ~key in
        check bool_t
          (Format.asprintf "%a" Cln.pp_spec spec)
          true
          (Coverage.routes_permutation spec action.Cln.source)
      done)
    [ Cln.blocking_spec ~n:8; Cln.default_spec ~n:8; Cln.default_spec ~n:16 ]

let test_route_returns_working_key () =
  (* route spec perm must produce a key whose decode is exactly perm. *)
  let rng = Random.State.make [| 31 |] in
  List.iter
    (fun spec ->
      for _ = 1 to 15 do
        let p = random_permutation rng spec.Cln.n in
        match Coverage.route spec p with
        | None -> ()  (* blocking networks legitimately reject some *)
        | Some key ->
          let action = Cln.decode spec ~key in
          check (Alcotest.array int_t) "routes the permutation" p action.Cln.source;
          check bool_t "no inversions" false
            (Array.exists (fun b -> b) action.Cln.inverted)
      done)
    [ Cln.blocking_spec ~n:8;
      Cln.default_spec ~n:8;
      { (Cln.default_spec ~n:8) with Cln.topology = Topology.Benes } ]

let test_route_benes_always_succeeds () =
  let spec = { (Cln.default_spec ~n:16) with Cln.topology = Topology.Benes } in
  let rng = Random.State.make [| 32 |] in
  for _ = 1 to 10 do
    let p = random_permutation rng 16 in
    match Coverage.route spec p with
    | None -> Alcotest.fail "benes must route every permutation"
    | Some key ->
      check (Alcotest.array int_t) "exact" p (Cln.decode spec ~key).Cln.source
  done

let test_route_with_inversions () =
  let spec = Cln.default_spec ~n:8 in
  let rng = Random.State.make [| 33 |] in
  let p = random_permutation rng 8 in
  let inverted = Array.init 8 (fun i -> i mod 3 = 0) in
  match Coverage.route spec ~inverted p with
  | None -> ()  (* permutation not routable: try identity, always routable *)
  | Some key ->
    let action = Cln.decode spec ~key in
    check (Alcotest.array int_t) "perm" p action.Cln.source;
    check (Alcotest.array bool_t) "inversions" inverted action.Cln.inverted

let test_set_inversions () =
  let spec = Cln.default_spec ~n:8 in
  let rng = Random.State.make [| 34 |] in
  let key = Cln.random_routable_key spec rng in
  let pattern = Array.init 8 (fun i -> i land 1 = 1) in
  Cln.set_inversions spec key ~inverted:pattern;
  check (Alcotest.array bool_t) "pattern applied" pattern
    (Cln.decode spec ~key).Cln.inverted

let test_set_inversions_without_inverters () =
  let spec = { (Cln.default_spec ~n:4) with Cln.inverters = Cln.No_inverters } in
  let key = Cln.key_for_identity spec in
  try
    Cln.set_inversions spec key ~inverted:[| true; false; false; false |];
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_identity_always_routable () =
  List.iter
    (fun spec ->
      if spec.Cln.planes = 1 then
        check bool_t "identity routable" true
          (Coverage.routes_permutation spec (Array.init spec.Cln.n (fun i -> i))))
    specs_under_test

let test_router_rejects_multi_plane () =
  let spec = Cln.log_nmp_spec ~n:8 ~m:1 ~p:2 in
  try
    ignore (Coverage.routes_permutation spec (Array.init 8 (fun i -> i)));
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let qcheck_case ?(count = 60) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let prop_build_decode_agree =
  let gen =
    QCheck2.Gen.(
      let* n_exp = int_range 1 4 in
      let* topo = oneofl [ Topology.Omega; Topology.Butterfly; Topology.Baseline;
                           Topology.Near_non_blocking; Topology.Benes ] in
      let* style = oneofl [ Switch_box.Independent; Switch_box.Swap ] in
      let* planes = int_range 1 3 in
      let* inv =
        if planes > 1 then oneofl [ Cln.No_inverters; Cln.Outputs_only ]
        else oneofl [ Cln.No_inverters; Cln.Outputs_only; Cln.Per_stage ]
      in
      let* seed = int_bound 100_000 in
      return (1 lsl n_exp, topo, style, inv, planes, seed))
  in
  qcheck_case "build = decode on random spec/key/input" gen
    (fun (n, topology, style, inverters, planes, seed) ->
      let spec = { Cln.n; topology; style; inverters; planes } in
      let rng = Random.State.make [| seed |] in
      let c = Cln.standalone spec in
      let key = Array.init (Cln.num_key_bits spec) (fun _ -> Random.State.bool rng) in
      let inputs = Sim.random_vector rng n in
      let circuit_out = Sim.eval c ~inputs ~keys:key in
      let decode_out = Cln.apply_action (Cln.decode spec ~key) inputs in
      circuit_out = decode_out)

let prop_routable_round_trip =
  let gen = QCheck2.Gen.(pair (int_range 1 4) (int_bound 100_000)) in
  qcheck_case "routable key -> permutation -> routable" gen (fun (n_exp, seed) ->
      let spec = Cln.default_spec ~n:(1 lsl n_exp) in
      let rng = Random.State.make [| seed |] in
      let key = Cln.random_routable_key spec rng in
      let action = Cln.decode spec ~key in
      Cln.is_permutation action && Coverage.routes_permutation spec action.Cln.source)

let () =
  Alcotest.run "cln"
    [
      ( "topology",
        [
          Alcotest.test_case "switch box counts" `Quick test_switch_box_counts;
          Alcotest.test_case "nnb stages" `Quick test_near_non_blocking_stages;
          Alcotest.test_case "benes stages" `Quick test_benes_stages;
          Alcotest.test_case "log(n,m,p) cost" `Quick test_log_nmp_cost;
          Alcotest.test_case "bad n" `Quick test_topology_rejects_bad_n;
          Alcotest.test_case "thread identity" `Quick test_thread_identity;
          Alcotest.test_case "omega identity" `Quick test_thread_omega_identity;
        ] );
      ( "switch_box",
        [
          Alcotest.test_case "decode" `Quick test_switch_box_decode;
          Alcotest.test_case "permutation flag" `Quick test_switch_box_permutation_flag;
        ] );
      ( "cln",
        [
          Alcotest.test_case "key bits = circuit keys" `Quick test_key_bits_match_circuit;
          Alcotest.test_case "build/decode agree" `Quick test_build_decode_agree;
          Alcotest.test_case "identity key" `Quick test_identity_key;
          Alcotest.test_case "routable keys are permutations" `Quick test_routable_keys_are_permutations;
          Alcotest.test_case "broadcast detected" `Quick test_broadcast_keys_detected;
          Alcotest.test_case "key_of_swaps" `Quick test_key_of_swaps_roundtrip;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "benes n=4 complete" `Quick test_benes_covers_all_n4;
          Alcotest.test_case "blocking n=4 incomplete" `Quick test_blocking_misses_permutations_n4;
          Alcotest.test_case "nnb beats blocking n=8" `Quick test_non_blocking_beats_blocking_n8;
          Alcotest.test_case "benes n=8 complete" `Slow test_benes_covers_all_n8;
        ] );
      ( "router",
        [
          Alcotest.test_case "benes routes everything" `Quick test_benes_routes_everything;
          Alcotest.test_case "omega blocks" `Quick test_omega_blocks_something;
          Alcotest.test_case "decoded keys routable" `Quick test_decoded_keys_are_routable;
          Alcotest.test_case "route returns working key" `Quick test_route_returns_working_key;
          Alcotest.test_case "route benes complete" `Quick test_route_benes_always_succeeds;
          Alcotest.test_case "route with inversions" `Quick test_route_with_inversions;
          Alcotest.test_case "set inversions" `Quick test_set_inversions;
          Alcotest.test_case "set inversions without inverters" `Quick test_set_inversions_without_inverters;
          Alcotest.test_case "identity routable" `Quick test_identity_always_routable;
          Alcotest.test_case "router rejects multi-plane" `Quick test_router_rejects_multi_plane;
        ] );
      "properties", [ prop_build_decode_agree; prop_routable_round_trip ];
    ]
