  $ fulllock generate --gates 100 --inputs 8 --outputs 4 --seed 3 -o host.bench
  $ fulllock lock host.bench --scheme full-lock --plr 1x4 --seed 5 \
  >   -o locked.bench --key-out key.txt | sed 's/ (.*//' | head -2
  $ fulllock verify locked.bench host.bench key.txt
  $ fulllock attack locked.bench host.bench --kind sat --timeout 60 \
  >   --key-out recovered.txt 2>/dev/null | tail -1 | sed 's/ (.*//'
  $ fulllock verify locked.bench host.bench recovered.txt
  $ fulllock activate locked.bench key.txt -o activated.bench > /dev/null
  $ fulllock equiv activated.bench host.bench
  $ fulllock export-verilog activated.bench -o activated.v
  $ tr '01' '10' < key.txt > wrong.txt
  $ fulllock verify locked.bench host.bench wrong.txt
  $ fulllock lock host.bench --scheme rll --key-bits 8 --seed 7 \
  >   -o rll.bench --key-out rll_key.txt | tail -1 | sed 's/: .*//'
  $ fulllock coverage activated.bench --vectors 64
  $ fulllock testgen activated.bench -o tests.txt | tail -1 | sed 's/ (.*//'
  $ printf 'p cnf 2 2\n1 2 0\n-1 0\n' > f.cnf
  $ flsat f.cnf
  $ printf 'p cnf 1 2\n1 0\n-1 0\n' > u.cnf
  $ flsat u.cnf
