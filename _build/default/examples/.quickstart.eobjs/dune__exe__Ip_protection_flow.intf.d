examples/ip_protection_flow.mli:
