examples/quickstart.ml: Fl_attacks Fl_core Fl_locking Fl_netlist Format Printf Random
