examples/ip_protection_flow.ml: Array Filename Fl_core Fl_locking Fl_netlist Fl_ppa Format List Printf Random Unix
