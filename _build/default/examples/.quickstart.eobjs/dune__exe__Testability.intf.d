examples/testability.mli:
