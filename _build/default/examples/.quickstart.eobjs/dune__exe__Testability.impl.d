examples/testability.ml: Fl_core Fl_locking Fl_netlist Fl_sat Format List Printf Random
