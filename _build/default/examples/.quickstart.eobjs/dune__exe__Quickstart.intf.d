examples/quickstart.mli:
