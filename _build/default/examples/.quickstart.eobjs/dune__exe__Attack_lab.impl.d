examples/attack_lab.ml: Fl_attacks Fl_core Fl_locking Fl_netlist Hashtbl List Printf Random String
