examples/design_space.ml: Fl_attacks Fl_cln Fl_core Fl_locking Fl_netlist Fl_ppa Hashtbl List Printf Random String
