(* Testability flow: locking and manufacturing test pull in opposite
   directions.  This example quantifies the tension on one part and then
   closes it the way a test engineer would:

   1. measure random-vector stuck-at coverage of the original IP,
   2. lock it with Full-Lock and re-measure (coverage drops: deselected MUX
      paths and LUT leaves hide faults),
   3. run SAT-based ATPG on the activated part to top coverage back up and
      *prove* the remaining faults redundant.

     dune exec examples/testability.exe *)

module Circuit = Fl_netlist.Circuit
module Generator = Fl_netlist.Generator
module Faults = Fl_netlist.Faults
module Locked = Fl_locking.Locked
module Fulllock = Fl_core.Fulllock
module Atpg = Fl_sat.Atpg

let () =
  (* A datapath-flavoured host (XOR-rich, well observable) and a deliberately
     small random budget, so the ATPG stage has real work to do. *)
  let ip =
    Generator.random ~seed:1199 ~name:"pipeline-stage"
      { Generator.num_inputs = 12; num_outputs = 6; num_gates = 110;
        max_fanin = 3; and_bias = 0.45 }
  in
  let random_tests = 8 in

  (* 1. Baseline testability of the unlocked IP. *)
  let base = Faults.random_coverage ip ~keys:[||] ~count:random_tests ~seed:1 in
  Format.printf "original IP:        %a@." Faults.pp_coverage base;

  (* 2. Lock and re-measure with the same budget of random vectors. *)
  let rng = Random.State.make [| 77 |] in
  let locked = Fulllock.lock_one rng ~n:8 ip in
  assert (Locked.verify locked);
  let lc = locked.Locked.locked in
  let keys = locked.Locked.correct_key in
  let after =
    Faults.random_coverage lc ~keys ~count:random_tests ~seed:1
  in
  Format.printf "locked (activated): %a@." Faults.pp_coverage after;
  Printf.printf
    "  -> locking grew the fault universe (%d -> %d) and hid part of it from\n\
    \     random tests (the deselected CLN paths and LUT leaves)\n"
    base.Faults.total after.Faults.total;

  (* 3. ATPG top-up on the faults the random set missed. *)
  let missed =
    List.map (fun f -> f.Faults.node, f.Faults.stuck_at) after.Faults.undetected
  in
  Printf.printf "running SAT ATPG on the %d missed faults...\n%!" (List.length missed);
  let r = Atpg.cover ~budget_per_fault:10.0 lc ~keys ~faults:missed in
  Format.printf "ATPG: %a@." Atpg.pp_report r;

  (* Final coverage: random set + ATPG vectors. *)
  let all_vectors =
    r.Atpg.tests
    @ List.init random_tests (fun i ->
          Fl_netlist.Sim.random_vector (Random.State.make [| 1; i |])
            (Circuit.num_inputs lc))
  in
  ignore all_vectors;
  let final = Faults.coverage lc ~keys ~vectors:all_vectors in
  Format.printf "final test set:     %a@." Faults.pp_coverage final;
  Printf.printf
    "remaining %d faults are SAT-PROVED untestable (redundant lock fabric under\n\
     this activation key) - sign-off with a redundancy waiver, as for any\n\
     design with structural redundancy.\n"
    r.Atpg.untestable
