(* Design-space exploration: for a fixed host, sweep PLR configurations and
   report the security/overhead trade-off — what a designer would run to
   pick a Full-Lock configuration under a PPA budget.

     dune exec examples/design_space.exe *)

module Circuit = Fl_netlist.Circuit
module Generator = Fl_netlist.Generator
module Cln = Fl_cln.Cln
module Topology = Fl_cln.Topology
module Locked = Fl_locking.Locked
module Fulllock = Fl_core.Fulllock
module Sat_attack = Fl_attacks.Sat_attack
module Cycsat = Fl_attacks.Cycsat
module Ppa = Fl_ppa.Ppa

let host =
  Generator.random ~seed:77 ~name:"dsp-block"
    { Generator.num_inputs = 14; num_outputs = 6; num_gates = 220;
      max_fanin = 4; and_bias = 0.8 }

let timeout = 15.0

type point = {
  label : string;
  configs : Fulllock.config list;
}

let points =
  let nnb n = Fulllock.default_config ~n in
  let blocking n = Fulllock.blocking_config ~n in
  let no_luts n = { (Fulllock.default_config ~n) with Fulllock.lut_layer = false } in
  let benes n =
    { (Fulllock.default_config ~n) with
      Fulllock.cln = { (Cln.default_spec ~n) with Cln.topology = Topology.Benes } }
  in
  [
    { label = "1 PLR n=4 (nnb)"; configs = [ nnb 4 ] };
    { label = "1 PLR n=8 (blocking)"; configs = [ blocking 8 ] };
    { label = "1 PLR n=8 (nnb)"; configs = [ nnb 8 ] };
    { label = "1 PLR n=8 (benes)"; configs = [ benes 8 ] };
    { label = "1 PLR n=8, no LUTs"; configs = [ no_luts 8 ] };
    { label = "2 PLR n=8 (nnb)"; configs = [ nnb 8; nnb 8 ] };
    { label = "1 PLR n=16 (nnb)"; configs = [ nnb 16 ] };
  ]

let () =
  Printf.printf "host: %d gates; attack budget %.0fs per point\n\n"
    (Circuit.num_gates host) timeout;
  Printf.printf "%-22s | %8s | %9s | %9s | %9s | %s\n" "configuration" "key bits"
    "area x" "power x" "delay x" "security (CycSAT)";
  print_endline (String.make 92 '-');
  List.iter
    (fun point ->
      let rng = Random.State.make [| Hashtbl.hash point.label |] in
      match Fulllock.lock rng ~policy:`Cyclic ~configs:point.configs host with
      | exception Invalid_argument msg ->
        Printf.printf "%-22s | %s\n" point.label ("skipped: " ^ msg)
      | locked ->
        assert (Locked.verify locked);
        let area, power, delay =
          Ppa.locking_overhead ~original:host locked.Locked.locked
        in
        let r = Cycsat.run ~timeout locked in
        let security =
          match r.Sat_attack.status with
          | Sat_attack.Timeout ->
            Printf.sprintf "RESISTS (%d DIPs in budget)" r.Sat_attack.iterations
          | Sat_attack.Broken _ when r.Sat_attack.key_is_correct ->
            Printf.sprintf "broken in %.1fs" r.Sat_attack.wall_time
          | Sat_attack.Broken _ -> "broken (wrong key)"
          | Sat_attack.Iteration_limit | Sat_attack.No_key_found -> "inconclusive"
        in
        Printf.printf "%-22s | %8d | %8.2fx | %8.2fx | %8.2fx | %s\n%!" point.label
          (Locked.num_key_bits locked) area power delay security)
    points;
  print_endline
    "\nPick the cheapest RESISTS row: the paper's recommendation is the smallest\n\
     near-non-blocking PLR that exhausts the attacker's budget (Table 5)."
