(* IP-protection flow: the scenario from the paper's introduction.  A design
   house is about to send a netlist to an untrusted foundry.  It locks the
   design, checks the PPA budget, writes the locked netlist for tape-out and
   keeps the key for post-fabrication activation.

     dune exec examples/ip_protection_flow.exe *)

module Circuit = Fl_netlist.Circuit
module Bench_io = Fl_netlist.Bench_io
module Bench_suite = Fl_netlist.Bench_suite
module Locked = Fl_locking.Locked
module Fulllock = Fl_core.Fulllock
module Ppa = Fl_ppa.Ppa
module Sim = Fl_netlist.Sim

let out_dir = Filename.concat (Filename.get_temp_dir_name ()) "fulllock-flow"

let () =
  (* The IP: a c2670-shaped controller (Table 5 row; synthetic stand-in at
     1/4 scale so the example runs in seconds). *)
  let ip = Bench_suite.load_scaled "c2670" ~scale:4 in
  Format.printf "IP to protect: %a@." Circuit.pp_stats ip;

  (* Lock with two PLRs, cyclic insertion (no wire restrictions - Section
     3.3's selling point over Cross-Lock). *)
  let rng = Random.State.make [| 20260706 |] in
  let configs = List.map (fun n -> Fulllock.default_config ~n) [ 8; 8 ] in
  let locked = Fulllock.lock rng ~policy:`Cyclic ~configs ip in
  assert (Locked.verify locked);

  (* PPA sign-off: the overhead must fit the budget. *)
  let area, power, delay = Ppa.locking_overhead ~original:ip locked.Locked.locked in
  Printf.printf "overhead: area %.2fx, power %.2fx, delay %.2fx\n" area power delay;
  Format.printf "locked netlist PPA: %a@." Ppa.pp (Ppa.of_circuit locked.Locked.locked);

  (* Tape-out artefacts: locked .bench to the foundry, key to the vault. *)
  (try Unix.mkdir out_dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let locked_path = Filename.concat out_dir "c2670_locked.bench" in
  let key_path = Filename.concat out_dir "c2670_key.txt" in
  Bench_io.write_file locked.Locked.locked locked_path;
  let oc = open_out key_path in
  Array.iter (fun b -> output_char oc (if b then '1' else '0')) locked.Locked.correct_key;
  output_char oc '\n';
  close_out oc;
  Printf.printf "foundry package: %s\nkey (%d bits, stays in-house): %s\n"
    locked_path
    (Locked.num_key_bits locked)
    key_path;

  (* Activation check: reload what the foundry would get, program the key,
     compare against the golden model on random vectors. *)
  let fabricated = Bench_io.parse_file locked_path in
  let rng = Random.State.make [| 5 |] in
  let vectors = List.init 200 (fun _ -> Sim.random_vector rng (Circuit.num_inputs ip)) in
  let activated_ok =
    Sim.equal_on_vectors fabricated ip ~keys_a:locked.Locked.correct_key ~keys_b:[||]
      ~vectors
  in
  Printf.printf "post-fab activation check (200 vectors): %s\n"
    (if activated_ok then "PASS" else "FAIL");

  (* And what an overproduced, unactivated chip would do: *)
  let zero_key = Array.make (Locked.num_key_bits locked) false in
  let corrupted =
    List.exists
      (fun inputs ->
        match Sim.eval fabricated ~inputs ~keys:zero_key with
        | out -> out <> Sim.eval ip ~inputs ~keys:[||]
        | exception Sim.Unresolved _ -> true)
      vectors
  in
  Printf.printf "unactivated chip misbehaves: %b (that is the point)\n" corrupted
