(* Quickstart: lock a circuit with Full-Lock, check the key, watch the SAT
   attack struggle.

     dune exec examples/quickstart.exe *)

module Circuit = Fl_netlist.Circuit
module Generator = Fl_netlist.Generator
module Locked = Fl_locking.Locked
module Fulllock = Fl_core.Fulllock
module Sat_attack = Fl_attacks.Sat_attack

let () =
  (* 1. A host design: any combinational netlist works (parse a .bench file
     with Fl_netlist.Bench_io, or generate one). *)
  let host =
    Generator.random ~seed:2026 ~name:"accumulator-slice"
      { Generator.num_inputs = 12; num_outputs = 6; num_gates = 150;
        max_fanin = 4; and_bias = 0.8 }
  in
  Format.printf "host: %a@." Circuit.pp_stats host;

  (* 2. Lock it: one PLR with an 8-wire near-non-blocking CLN, twisted
     leading gates and an STT-LUT layer (the paper's default). *)
  let rng = Random.State.make [| 42 |] in
  let locked = Fulllock.lock_one rng ~n:8 host in
  Format.printf "locked: %a@." Locked.pp locked;

  (* 3. The correct key reproduces the host exactly. *)
  assert (Locked.verify locked);
  print_endline "correct key verifies: the locked netlist is the host";

  (* 4. A wrong key corrupts the outputs broadly (unlike SARLock-style
     schemes, Full-Lock has high output corruption). *)
  let corruption = Locked.output_corruption locked (Random.State.make [| 7 |]) in
  Printf.printf "output corruption under random wrong keys: %.1f%%\n"
    (100.0 *. corruption);

  (* 5. Attack it: the oracle-guided SAT attack gets the black-box host and
     the locked netlist.  At n=8 with LUTs this already hurts. *)
  print_endline "running the SAT attack (30s budget)...";
  let result = Sat_attack.run ~timeout:30.0 locked in
  Format.printf "attack: %a@." Sat_attack.pp_result result;
  (match result.Sat_attack.status with
   | Sat_attack.Timeout ->
     print_endline "the attack ran out of budget - scale n up for real designs"
   | Sat_attack.Broken _ when result.Sat_attack.key_is_correct ->
     print_endline
       "broken at this toy size - the paper uses 16..32-wire PLRs, where each\n\
        SAT iteration alone takes hours"
   | Sat_attack.Broken _ | Sat_attack.Iteration_limit | Sat_attack.No_key_found ->
     print_endline "attack finished without a usable key")
