(* Attack lab: pit every attack in the library against every locking scheme
   on the same host and print the result matrix — the one-screen summary of
   the paper's security claims.

     dune exec examples/attack_lab.exe *)

module Generator = Fl_netlist.Generator
module Locked = Fl_locking.Locked
module Fulllock = Fl_core.Fulllock
module Sat_attack = Fl_attacks.Sat_attack
module Cycsat = Fl_attacks.Cycsat
module Appsat = Fl_attacks.Appsat
module Removal = Fl_attacks.Removal
module Sps = Fl_attacks.Sps

let host =
  Generator.random ~seed:404 ~name:"lab-host"
    { Generator.num_inputs = 10; num_outputs = 5; num_gates = 120;
      max_fanin = 3; and_bias = 0.8 }

let schemes =
  [
    ("RLL", fun rng -> Fl_locking.Rll.lock rng ~key_bits:10 host);
    ("SARLock", fun rng -> Fl_locking.Sarlock.lock rng ~key_bits:8 host);
    ("Anti-SAT", fun rng -> Fl_locking.Antisat.lock rng ~key_bits:16 host);
    ("SFLL-HD", fun rng -> Fl_locking.Sfll.lock rng ~key_bits:8 ~h:1 host);
    ("Cyclic", fun rng -> Fl_locking.Cyclic_lock.lock rng ~cycles:4 host);
    ("LUT-Lock", fun rng -> Fl_locking.Lut_lock.lock rng ~gates:5 host);
    ("Cross-Lock", fun rng -> Fl_locking.Cross_lock.lock rng ~n:8 host);
    ("Full-Lock", fun rng -> Fulllock.lock_one rng ~policy:`Cyclic ~n:8 host);
  ]

let timeout = 20.0

let sat_cell locked =
  (* CycSAT degrades to the plain SAT attack on acyclic circuits, so it is
     the right tool for every scheme here. *)
  let r = Cycsat.run ~timeout locked in
  match r.Sat_attack.status with
  | Sat_attack.Broken _ when r.Sat_attack.key_is_correct ->
    Printf.sprintf "broken (%d DIPs, %.1fs)" r.Sat_attack.iterations
      r.Sat_attack.wall_time
  | Sat_attack.Broken _ -> "wrong key"
  | Sat_attack.Timeout -> "RESISTS"
  | Sat_attack.Iteration_limit | Sat_attack.No_key_found -> "inconclusive"

let appsat_cell locked =
  let r = Appsat.run ~timeout ~error_threshold:0.01 locked in
  match r.Appsat.key with
  | Some _ when r.Appsat.exact -> "exact key"
  | Some _ when r.Appsat.estimated_error <= 0.01 ->
    Printf.sprintf "approx key (%.2f%% err)" (100.0 *. r.Appsat.estimated_error)
  | Some _ | None -> "RESISTS"

let removal_cell locked =
  let r = Removal.run locked in
  if r.Removal.equivalent then "excised" else "RESISTS"

let sps_cell locked = if Sps.identifies_block locked then "flagged" else "hidden"

let () =
  Printf.printf "host: %d gates, attack budget %.0fs each\n\n"
    (Fl_netlist.Circuit.num_gates host) timeout;
  Printf.printf "%-12s | %-24s | %-24s | %-8s | %-7s | %s\n" "scheme"
    "SAT/CycSAT" "AppSAT" "removal" "SPS" "corruption";
  print_endline (String.make 100 '-');
  List.iter
    (fun (name, lock) ->
      let rng = Random.State.make [| Hashtbl.hash name; 11 |] in
      let locked = lock rng in
      let corruption = Locked.output_corruption locked (Random.State.make [| 3 |]) in
      Printf.printf "%-12s | %-24s | %-24s | %-8s | %-7s | %.4f\n%!" name
        (sat_cell locked) (appsat_cell locked) (removal_cell locked)
        (sps_cell locked) corruption)
    schemes;
  print_endline
    "\nReading guide: Full-Lock should RESIST the SAT family while keeping high\n\
     corruption; SARLock/Anti-SAT fall to AppSAT/removal/SPS instead (Section 2\n\
     and Section 4.2 of the paper)."
