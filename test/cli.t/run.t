End-to-end CLI flow: generate a host, lock it with Full-Lock, verify the
key, recover a key with the SAT attack, activate, and prove equivalence.

  $ fulllock generate --gates 100 --inputs 8 --outputs 4 --seed 3 -o host.bench
  wrote host.bench (104 gates, 8 inputs, 0 keys, 4 outputs)

  $ fulllock lock host.bench --scheme full-lock --plr 1x4 --seed 5 \
  >   -o locked.bench --key-out key.txt | sed 's/ (.*//' | head -2
  wrote locked.bench
  wrote key.txt

  $ fulllock verify locked.bench host.bench key.txt
  key is functionally correct

  $ fulllock attack locked.bench host.bench --kind sat --timeout 60 \
  >   --key-out recovered.txt 2>/dev/null | tail -1 | sed 's/ (.*//'
  wrote recovered.txt

  $ fulllock verify locked.bench host.bench recovered.txt
  key is functionally correct

  $ fulllock activate locked.bench key.txt -o activated.bench > /dev/null

  $ fulllock equiv activated.bench host.bench
  equivalent (SAT-proved)

  $ fulllock export-verilog activated.bench -o activated.v
  wrote activated.v (structural Verilog)

A wrong key must be rejected:

  $ tr '01' '10' < key.txt > wrong.txt
  $ fulllock verify locked.bench host.bench wrong.txt
  key is WRONG
  [1]

The locking schemes are validated on the way out (rll quick check):

  $ fulllock lock host.bench --scheme rll --key-bits 8 --seed 7 \
  >   -o rll.bench --key-out rll_key.txt | tail -1 | sed 's/: .*//'
  scheme rll

Fault coverage and ATPG on the activated part:

  $ fulllock coverage activated.bench --vectors 64
  109/264 stuck-at faults detected (41.3%)

  $ fulllock testgen activated.bench -o tests.txt | tail -1 | sed 's/ (.*//'
  wrote tests.txt

flsat solves DIMACS:

  $ printf 'p cnf 2 2\n1 2 0\n-1 0\n' > f.cnf
  $ flsat f.cnf
  s SATISFIABLE
  v -1 2 0
  [10]

  $ printf 'p cnf 1 2\n1 0\n-1 0\n' > u.cnf
  $ flsat u.cnf
  s UNSATISFIABLE
  [20]

Trace analysis: record an attack with --trace, then read the JSONL back
with fltrace.  The summary counts every record type, the attack table
ends at exhaustion, and the flame output is folded stacks.

  $ fulllock attack locked.bench host.bench --kind sat --timeout 60 \
  >   --trace trace.jsonl > /dev/null 2>&1

  $ fltrace summary trace.jsonl | grep -cE "span.(begin|end)"
  2

  $ fltrace summary trace.jsonl | grep -oE "attack.iteration|attack.exhausted" | sort -u
  attack.exhausted
  attack.iteration

  $ fltrace spans trace.jsonl | head -2 | sed 's/ [0-9. ]*$//'
  span                                                calls      total_s       self_s
  attack.sat

  $ fltrace attack trace.jsonl | head -2 | sed 's/ *$//'
  
  == attack sat on cli ==

fltrace flame emits "stack integer-microseconds" lines, root first:

  $ fltrace flame trace.jsonl | awk '{ if ($2 !~ /^[0-9]+$/) exit 1 } END { if (NR == 0) exit 1 }'

  $ [ $(fltrace flame trace.jsonl | cut -d' ' -f1 | grep -c "^attack.sat") -ge 1 ]

Unknown commands and unreadable files fail with a usage/IO error:

  $ fltrace bogus trace.jsonl
  usage: fltrace {summary|spans|flame|attack} TRACE.jsonl
  
    summary  per-event counts and wall-clock breakdown
    spans    span profile tree: calls, total and self time
    flame    folded stacks (pipe into flamegraph.pl)
    attack   DIP trajectory table from attack.iteration records
  [2]

  $ fltrace summary missing.jsonl
  fltrace: missing.jsonl: No such file or directory
  [1]
