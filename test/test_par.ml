(* Tests for Fl_par: deterministic result ordering (parallel = jobs-1
   semantics), retry and failure bookkeeping, cancellation, soft-timeout
   marking, pool reuse across batches, the map_reduce/sequential-fold
   equivalence, and the par.* event stream. *)

module Par = Fl_par
module Obs = Fl_obs

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let qcheck_case ?(count = 30) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let values outcomes = Array.to_list outcomes |> List.filter_map Par.value

(* ------------------------------------------------------------------ *)
(* Ordering and determinism                                            *)
(* ------------------------------------------------------------------ *)

let test_results_land_by_index () =
  (* Tasks finish in scrambled order (later tasks sleep less); results must
     come back by submission index regardless. *)
  let n = 12 in
  let tasks =
    Array.init n (fun i () ->
        Unix.sleepf (0.002 *. float_of_int (n - i));
        i * i)
  in
  Par.with_pool ~jobs:4 (fun p ->
      let out = Par.run p tasks in
      check (Alcotest.list int_t) "squares in index order"
        (List.init n (fun i -> i * i))
        (values out))

let test_parallel_matches_sequential () =
  let xs = List.init 40 (fun i -> i) in
  let f x = (x * 7919) mod 101 in
  let seq = Par.with_pool ~jobs:1 (fun p -> Par.map_list p f xs) in
  let par = Par.with_pool ~jobs:3 (fun p -> Par.map_list p f xs) in
  check (Alcotest.list int_t) "jobs=3 equals jobs=1"
    (List.filter_map Par.value seq)
    (List.filter_map Par.value par)

(* ------------------------------------------------------------------ *)
(* Retry, failure, cancellation                                        *)
(* ------------------------------------------------------------------ *)

let test_retry_then_succeed () =
  (* Fails on the first two attempts, succeeds on the third. *)
  let attempts = Atomic.make 0 in
  let flaky () =
    if Atomic.fetch_and_add attempts 1 < 2 then failwith "flaky" else 42
  in
  Par.with_pool ~jobs:1 (fun p ->
      let out = Par.run p ~retries:2 [| flaky |] in
      (match out.(0) with
       | Par.Done 42 -> ()
       | _ -> Alcotest.fail "expected Done 42 after retries");
      let s = Par.last_stats p in
      check int_t "two retries recorded" 2 s.Par.retries;
      check int_t "completed" 1 s.Par.completed)

let test_failure_and_cancellation () =
  (* jobs=1 runs in index order, so everything after the fatal task is
     deterministically cancelled. *)
  let tasks =
    [|
      (fun () -> 1);
      (fun () -> failwith "boom");
      (fun () -> 3);
      (fun () -> 4);
    |]
  in
  Par.with_pool ~jobs:1 (fun p ->
      let out = Par.run p ~retries:1 tasks in
      (match out.(0) with Par.Done 1 -> () | _ -> Alcotest.fail "task 0 Done");
      (match out.(1) with
       | Par.Failed (msg, attempts) ->
         let contains_boom =
           let n = String.length msg in
           let rec go i = i + 4 <= n && (String.sub msg i 4 = "boom" || go (i + 1)) in
           go 0
         in
         check bool_t "message kept" true contains_boom;
         check int_t "initial try + one retry" 2 attempts
       | _ -> Alcotest.fail "task 1 Failed");
      (match out.(2), out.(3) with
       | Par.Cancelled, Par.Cancelled -> ()
       | _ -> Alcotest.fail "tasks after the failure cancelled");
      let s = Par.last_stats p in
      check int_t "failed" 1 s.Par.failed;
      check int_t "cancelled" 2 s.Par.cancelled;
      check int_t "retries" 1 s.Par.retries;
      (* get/map_reduce surface the failure as an exception. *)
      check bool_t "get raises" true
        (match Par.get out.(1) with
         | _ -> false
         | exception Failure _ -> true))

(* ------------------------------------------------------------------ *)
(* Soft timeout                                                        *)
(* ------------------------------------------------------------------ *)

let test_late_marking () =
  Par.with_pool ~jobs:1 (fun p ->
      let out =
        Par.run p ~timeout:0.005
          [| (fun () -> Unix.sleepf 0.03; "slow"); (fun () -> "fast") |]
      in
      (match out.(0) with
       | Par.Late ("slow", elapsed) ->
         check bool_t "elapsed recorded" true (elapsed >= 0.005)
       | _ -> Alcotest.fail "slow task marked Late");
      (match out.(1) with
       | Par.Done "fast" -> ()
       | _ -> Alcotest.fail "fast task Done");
      check int_t "late counted" 1 (Par.last_stats p).Par.late;
      (* Late results still carry their value. *)
      check bool_t "value kept" true (Par.value out.(0) = Some "slow"))

(* ------------------------------------------------------------------ *)
(* Pool reuse                                                          *)
(* ------------------------------------------------------------------ *)

let test_pool_reuse_across_batches () =
  Par.with_pool ~jobs:3 (fun p ->
      let b1 = Par.map p (fun x -> x + 1) (Array.init 10 Fun.id) in
      check (Alcotest.list int_t) "first batch"
        (List.init 10 (fun i -> i + 1))
        (values b1);
      let b2 = Par.map p (fun x -> x * 2) (Array.init 7 Fun.id) in
      check (Alcotest.list int_t) "second batch on same workers"
        (List.init 7 (fun i -> 2 * i))
        (values b2);
      check int_t "stats are per batch" 7 (Par.last_stats p).Par.tasks)

let test_empty_batch () =
  Par.with_pool ~jobs:2 (fun p ->
      check int_t "empty batch" 0 (Array.length (Par.run p [||])))

(* ------------------------------------------------------------------ *)
(* map_reduce = map + fold                                             *)
(* ------------------------------------------------------------------ *)

let map_reduce_matches_sequential =
  qcheck_case "parallel map_reduce = List.map + fold"
    QCheck2.Gen.(pair (list_size (0 -- 25) small_int) (2 -- 4))
    (fun (xs, jobs) ->
      let f x = (x * 31) lxor 5 in
      let reduce acc v = (acc * 17) + v in
      let expected = List.fold_left reduce 3 (List.map f xs) in
      let got =
        Par.with_pool ~jobs (fun p ->
            Par.map_reduce p ~map:f ~reduce ~init:3 xs)
      in
      expected = got)

(* ------------------------------------------------------------------ *)
(* Events and counters                                                 *)
(* ------------------------------------------------------------------ *)

let test_par_events () =
  let events = ref [] in
  Obs.with_sink
    (fun e -> if String.length e.Obs.name >= 4
               && String.sub e.Obs.name 0 4 = "par." then events := e :: !events)
    (fun () ->
      Par.with_pool ~name:"evpool" ~jobs:2 (fun p ->
          ignore (Par.map p (fun x -> x) (Array.init 3 Fun.id))));
  let count name =
    List.length (List.filter (fun e -> e.Obs.name = name) !events)
  in
  check int_t "three starts" 3 (count "par.task.start");
  check int_t "three dones" 3 (count "par.task.done");
  check int_t "one batch record" 1 (count "par.batch.done");
  List.iter
    (fun e ->
      if e.Obs.name = "par.task.start" then
        match List.assoc_opt "pool" e.Obs.fields with
        | Some (Obs.String "evpool") -> ()
        | _ -> Alcotest.fail "task event tagged with pool name")
    !events

let test_counters_merge_across_domains () =
  (* Worker-domain increments must be visible in the global snapshot:
     par.tasks grows by exactly the number of tasks submitted. *)
  let before = Obs.Counter.value (Obs.Counter.make "par.tasks") in
  Par.with_pool ~jobs:3 (fun p ->
      ignore (Par.map p (fun x -> x) (Array.init 11 Fun.id)));
  let after = Obs.Counter.value (Obs.Counter.make "par.tasks") in
  check int_t "worker increments merged" 11 (after - before)

(* ------------------------------------------------------------------ *)
(* Streaming submission                                                *)
(* ------------------------------------------------------------------ *)

let test_submit_await () =
  Par.with_pool ~jobs:3 (fun p ->
      let hs = List.init 10 (fun i -> Par.submit p (fun _ -> i * i)) in
      let out = List.map Par.await hs in
      check (Alcotest.list int_t) "streamed values by handle"
        (List.init 10 (fun i -> i * i))
        (List.filter_map Par.value out))

let test_submit_inline_jobs1 () =
  (* A jobs = 1 pool runs the task inline before submit returns. *)
  Par.with_pool ~jobs:1 (fun p ->
      let ran = ref false in
      let h =
        Par.submit p (fun _ ->
            ran := true;
            7)
      in
      check bool_t "ran inline" true !ran;
      check bool_t "settled before await" true (Par.poll h <> None);
      match Par.await h with
      | Par.Done 7 -> ()
      | _ -> Alcotest.fail "expected Done 7")

let test_await_any_and_cancel () =
  Par.with_pool ~jobs:2 (fun p ->
      (* The slow task never finishes on its own; await_any must come back
         with the fast one, and cancel must wind the slow one down
         cooperatively (its produced value is kept). *)
      let slow stop =
        let rec wait () =
          if stop () then "cancelled"
          else begin
            Unix.sleepf 0.002;
            wait ()
          end
        in
        wait ()
      in
      let fast _ =
        Unix.sleepf 0.01;
        "fast"
      in
      let hs = [ Par.submit p slow; Par.submit p fast ] in
      let i, o = Par.await_any hs in
      check int_t "fast settled first" 1 i;
      (match o with
       | Par.Done "fast" -> ()
       | _ -> Alcotest.fail "expected Done fast");
      List.iter Par.cancel hs;
      match Par.await (List.hd hs) with
      | Par.Done "cancelled" -> ()
      | Par.Cancelled -> ()
      | _ -> Alcotest.fail "slow task should wind down after cancel")

let test_cancel_before_start () =
  Par.with_pool ~jobs:2 (fun p ->
      (* Both workers are pinned on blockers, so the third submission is
         still queued when it is cancelled: it must settle Cancelled, never
         run. *)
      let release = Atomic.make false in
      let blocker _ =
        while not (Atomic.get release) do
          Unix.sleepf 0.002
        done;
        0
      in
      let b1 = Par.submit p blocker in
      let b2 = Par.submit p blocker in
      let h = Par.submit p (fun _ -> 1) in
      Par.cancel h;
      Atomic.set release true;
      (match Par.await h with
       | Par.Cancelled -> ()
       | Par.Done _ -> Alcotest.fail "queued task ran despite cancel"
       | _ -> Alcotest.fail "unexpected outcome");
      ignore (Par.await b1);
      ignore (Par.await b2))

let test_nested_submission_rejected () =
  (* The documented deadlock is now a fail-fast error: calling back into
     the pool from one of its own tasks raises Invalid_argument — on the
     jobs = 1 inline path and from a worker domain alike. *)
  Par.with_pool ~jobs:1 (fun p ->
      let h =
        Par.submit p (fun _ ->
            match Par.run p [| (fun () -> 0) |] with
            | _ -> "no-raise"
            | exception Invalid_argument _ -> "raised")
      in
      match Par.await h with
      | Par.Done "raised" -> ()
      | _ -> Alcotest.fail "inline nested run must raise Invalid_argument");
  Par.with_pool ~jobs:2 (fun p ->
      let h =
        Par.submit p (fun _ ->
            match Par.submit p (fun _ -> 0) with
            | _ -> "no-raise"
            | exception Invalid_argument _ -> "raised")
      in
      match Par.await h with
      | Par.Done "raised" -> ()
      | _ -> Alcotest.fail "worker nested submit must raise Invalid_argument")

let test_streaming_alongside_batches () =
  (* Streamed handles and batch runs share the pool without corrupting
     each other's accounting. *)
  Par.with_pool ~jobs:2 (fun p ->
      let h = Par.submit p (fun _ -> 41) in
      let out = Par.run p (Array.init 5 (fun i () -> i)) in
      check (Alcotest.list int_t) "batch intact" [ 0; 1; 2; 3; 4 ]
        (values out);
      (match Par.await h with
       | Par.Done 41 -> ()
       | _ -> Alcotest.fail "streamed task intact");
      check int_t "batch stats count batch tasks only" 5
        (Par.last_stats p).Par.tasks)

let () =
  Alcotest.run "fl_par"
    [
      ( "ordering",
        [
          Alcotest.test_case "results land by index" `Quick
            test_results_land_by_index;
          Alcotest.test_case "parallel = sequential" `Quick
            test_parallel_matches_sequential;
        ] );
      ( "failures",
        [
          Alcotest.test_case "retry then succeed" `Quick test_retry_then_succeed;
          Alcotest.test_case "failure cancels the rest" `Quick
            test_failure_and_cancellation;
          Alcotest.test_case "late marking" `Quick test_late_marking;
        ] );
      ( "batches",
        [
          Alcotest.test_case "pool reuse" `Quick test_pool_reuse_across_batches;
          Alcotest.test_case "empty batch" `Quick test_empty_batch;
          map_reduce_matches_sequential;
        ] );
      ( "observability",
        [
          Alcotest.test_case "par events" `Quick test_par_events;
          Alcotest.test_case "counters merge" `Quick
            test_counters_merge_across_domains;
        ] );
      ( "streaming",
        [
          Alcotest.test_case "submit/await" `Quick test_submit_await;
          Alcotest.test_case "jobs=1 inline" `Quick test_submit_inline_jobs1;
          Alcotest.test_case "await_any + cancel" `Quick
            test_await_any_and_cancel;
          Alcotest.test_case "cancel before start" `Quick
            test_cancel_before_start;
          Alcotest.test_case "nested submission rejected" `Quick
            test_nested_submission_rejected;
          Alcotest.test_case "streams alongside batches" `Quick
            test_streaming_alongside_batches;
        ] );
    ]
