(* Tests for Fl_sat: CDCL solver, DPLL solver, preprocessing, random k-SAT. *)

module Formula = Fl_cnf.Formula
module Cdcl = Fl_sat.Cdcl
module Dpll = Fl_sat.Dpll
module Preprocess = Fl_sat.Preprocess
module Inprocess = Fl_sat.Inprocess
module Random_sat = Fl_sat.Random_sat
module Arena = Fl_sat.Arena
module Lit = Fl_sat.Lit

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* Reference brute-force SAT decision. *)
let brute_sat f =
  let n = Formula.num_vars f in
  assert (n <= 22);
  let clauses = Formula.clauses f in
  let satisfied assignment =
    Array.for_all
      (fun clause ->
        Array.exists
          (fun l ->
            let value = assignment land (1 lsl (abs l - 1)) <> 0 in
            if l > 0 then value else not value)
          clause)
      clauses
  in
  let rec go a = a < 1 lsl n && (satisfied a || go (a + 1)) in
  go 0

let model_satisfies f model =
  Array.for_all
    (fun clause ->
      Array.exists (fun l -> if l > 0 then model.(l) else not model.(abs l)) clause)
    (Formula.clauses f)

(* ------------------------------------------------------------------ *)
(* CDCL unit tests                                                     *)
(* ------------------------------------------------------------------ *)

let test_cdcl_trivial_sat () =
  let s = Cdcl.create () in
  Cdcl.add_clause s [ 1; 2 ];
  Cdcl.add_clause s [ -1; 2 ];
  check bool_t "sat" true (Cdcl.solve s = Cdcl.Sat);
  check bool_t "x2 true" true (Cdcl.value s 2)

let test_cdcl_trivial_unsat () =
  let s = Cdcl.create () in
  Cdcl.add_clause s [ 1 ];
  Cdcl.add_clause s [ -1 ];
  check bool_t "unsat" true (Cdcl.solve s = Cdcl.Unsat)

let test_cdcl_units_chain () =
  let s = Cdcl.create () in
  Cdcl.add_clause s [ 1 ];
  Cdcl.add_clause s [ -1; 2 ];
  Cdcl.add_clause s [ -2; 3 ];
  Cdcl.add_clause s [ -3; 4 ];
  check bool_t "sat" true (Cdcl.solve s = Cdcl.Sat);
  check bool_t "propagated" true (Cdcl.value s 4)

(* Pigeonhole principle PHP(n+1, n): always unsat, requires real search. *)
let pigeonhole pigeons holes =
  let s = Cdcl.create () in
  let var p h = (p * holes) + h + 1 in
  for p = 0 to pigeons - 1 do
    Cdcl.add_clause s (List.init holes (fun h -> var p h))
  done;
  for h = 0 to holes - 1 do
    for p1 = 0 to pigeons - 1 do
      for p2 = p1 + 1 to pigeons - 1 do
        Cdcl.add_clause s [ -var p1 h; -var p2 h ]
      done
    done
  done;
  s

let test_cdcl_pigeonhole () =
  List.iter
    (fun n ->
      let s = pigeonhole (n + 1) n in
      check bool_t (Printf.sprintf "php %d" n) true (Cdcl.solve s = Cdcl.Unsat))
    [ 2; 3; 4; 5 ]

let test_cdcl_pigeonhole_sat_when_fits () =
  let s = pigeonhole 4 4 in
  check bool_t "fits" true (Cdcl.solve s = Cdcl.Sat)

let test_cdcl_assumptions () =
  let s = Cdcl.create () in
  Cdcl.add_clause s [ 1; 2 ];
  Cdcl.add_clause s [ -1; 3 ];
  check bool_t "sat under a=1" true (Cdcl.solve ~assumptions:[ 1 ] s = Cdcl.Sat);
  check bool_t "3 implied" true (Cdcl.value s 3);
  check bool_t "sat under -1" true (Cdcl.solve ~assumptions:[ -1 ] s = Cdcl.Sat);
  check bool_t "2 implied" true (Cdcl.value s 2);
  (* Conflicting assumptions *)
  check bool_t "unsat under 1,-3" true
    (Cdcl.solve ~assumptions:[ 1; -3 ] s = Cdcl.Unsat);
  (* Solver is reusable after assumption-unsat. *)
  check bool_t "still sat" true (Cdcl.solve s = Cdcl.Sat)

let test_cdcl_incremental () =
  let s = Cdcl.create () in
  Cdcl.add_clause s [ 1; 2 ];
  check bool_t "sat" true (Cdcl.solve s = Cdcl.Sat);
  Cdcl.add_clause s [ -1 ];
  check bool_t "still sat" true (Cdcl.solve s = Cdcl.Sat);
  check bool_t "2 forced" true (Cdcl.value s 2);
  Cdcl.add_clause s [ -2 ];
  check bool_t "now unsat" true (Cdcl.solve s = Cdcl.Unsat);
  (* Permanently unsat. *)
  check bool_t "stays unsat" true (Cdcl.solve s = Cdcl.Unsat)

let test_cdcl_budget () =
  (* A hard pigeonhole with a one-conflict budget must return Unknown. *)
  let s = pigeonhole 8 7 in
  let outcome = Cdcl.solve ~budget:(Cdcl.budget_conflicts 1) s in
  check bool_t "unknown" true (outcome = Cdcl.Unknown);
  (* And with no budget it finishes. *)
  check bool_t "finishes" true (Cdcl.solve s = Cdcl.Unsat)

let test_cdcl_survives_db_reduction () =
  (* A phase-transition instance with tens of thousands of conflicts drives
     the learnt-clause database through several reductions; the model must
     still satisfy every clause. *)
  let rng = Random.State.make [| 42; 225 |] in
  let f = Random_sat.fixed_length rng ~num_vars:225 ~num_clauses:967 ~k:3 in
  let outcome, model, stats = Cdcl.solve_formula f in
  check bool_t "enough conflicts to reduce" true (stats.Cdcl.conflicts > 2500);
  match outcome, model with
  | Cdcl.Sat, Some m -> check bool_t "model valid" true (model_satisfies f m)
  | Cdcl.Unsat, None ->
    (* if unsat, cross-check with DPLL on a shrunken... too slow; accept *)
    ()
  | _ -> Alcotest.fail "unexpected outcome"

let test_cdcl_stats_accumulate () =
  let s = pigeonhole 5 4 in
  ignore (Cdcl.solve s);
  let st = Cdcl.stats s in
  check bool_t "conflicts > 0" true (st.Cdcl.conflicts > 0);
  check bool_t "decisions > 0" true (st.Cdcl.decisions > 0);
  check bool_t "learned > 0" true (st.Cdcl.learned_clauses > 0)

let test_cdcl_empty_clause_via_simplification () =
  let s = Cdcl.create () in
  Cdcl.add_clause s [ 1 ];
  Cdcl.add_clause s [ -1; 2 ];
  Cdcl.add_clause s [ -2 ];
  check bool_t "unsat" true (Cdcl.solve s = Cdcl.Unsat)

let test_cdcl_duplicate_and_tautology () =
  let s = Cdcl.create () in
  (* Tautological clause x | -x is dropped; duplicate literals collapse. *)
  Cdcl.add_clause s [ 1; -1 ];
  Cdcl.add_clause s [ 2; 2; 2 ];
  check bool_t "sat" true (Cdcl.solve s = Cdcl.Sat);
  check bool_t "2 true" true (Cdcl.value s 2)

let test_cdcl_binary_watch_rebuild () =
  (* Direct check that the binary-implication watch lists survive a
     learnt-database reduction.  A long binary chain 1 -> 2 -> ... -> k
     shares the solver with a satisfiable pigeonhole block that forces
     real conflicts (so the reduction has learnt clauses to compact);
     after [reduce_now] rebuilds every watch list over the compacted
     arena, asserting the chain end from its start must still propagate
     the whole chain — through the rebuilt binary lists, not the general
     watchers. *)
  let k = 24 in
  (* Conflicts come from a phase-transition 3-SAT block on variables past
     the chain; only non-binary learnt clauses live in the arena, so probe
     seeds (deterministically) until one leaves a satisfiable instance
     with a non-empty learnt database. *)
  let shift l = if l > 0 then l + k else l - k in
  let rec build seed =
    if seed > 50 then Alcotest.fail "no seed gave sat + learnts";
    let s = Cdcl.create () in
    for i = 1 to k - 1 do
      Cdcl.add_clause s [ -i; i + 1 ]
    done;
    let rng = Random.State.make [| seed; 120 |] in
    let f = Random_sat.fixed_length rng ~num_vars:120 ~num_clauses:505 ~k:3 in
    Formula.iter_clauses f (fun c ->
        Cdcl.add_clause_a s (Array.map shift c));
    if Cdcl.solve s = Cdcl.Sat && Cdcl.num_learnts s > 0 then s
    else build (seed + 1)
  in
  let s = build 0 in
  (* The export hook sees exactly the live learnt clauses. *)
  let exported = ref 0 in
  Cdcl.iter_learnts s (fun c ->
      incr exported;
      check bool_t "exported non-unit" true (Array.length c >= 1));
  check int_t "export count" (Cdcl.num_learnts s) !exported;
  Cdcl.reduce_now s;
  (* Propagation through the rebuilt binary watches: assuming the chain
     head must imply every link up to the tail. *)
  check bool_t "sat after reduce" true (Cdcl.solve ~assumptions:[ 1 ] s = Cdcl.Sat);
  for i = 1 to k do
    check bool_t (Printf.sprintf "chain %d" i) true (Cdcl.value s i)
  done;
  (* And the contrapositive direction. *)
  check bool_t "sat under -k" true (Cdcl.solve ~assumptions:[ -k ] s = Cdcl.Sat);
  check bool_t "head forced false" false (Cdcl.value s 1);
  (* A second reduction on the already-compacted arena is also safe. *)
  Cdcl.reduce_now s;
  check bool_t "still sat" true (Cdcl.solve ~assumptions:[ 1 ] s = Cdcl.Sat);
  check bool_t "still propagates" true (Cdcl.value s k)

(* ------------------------------------------------------------------ *)
(* DPLL                                                                *)
(* ------------------------------------------------------------------ *)

let test_dpll_trivial () =
  let f = Formula.create () in
  Formula.reserve f 2;
  Formula.add_clause f [ 1; 2 ];
  Formula.add_clause f [ -1 ];
  let outcome, st = Dpll.solve f in
  check bool_t "sat" true (outcome = Dpll.Sat);
  check bool_t "used units" true (st.Dpll.unit_propagations > 0)

let test_dpll_unsat () =
  let f = Formula.create () in
  Formula.reserve f 2;
  Formula.add_clause f [ 1; 2 ];
  Formula.add_clause f [ 1; -2 ];
  Formula.add_clause f [ -1; 2 ];
  Formula.add_clause f [ -1; -2 ];
  let outcome, _ = Dpll.solve f in
  check bool_t "unsat" true (outcome = Dpll.Unsat)

let test_dpll_pure_literal () =
  let f = Formula.create () in
  Formula.reserve f 3;
  Formula.add_clause f [ 1; 2 ];
  Formula.add_clause f [ 1; 3 ];
  let outcome, st = Dpll.solve f in
  check bool_t "sat" true (outcome = Dpll.Sat);
  check bool_t "purified" true (st.Dpll.pure_literals > 0)

let test_dpll_abort () =
  let rng = Random.State.make [| 5 |] in
  let f = Random_sat.fixed_length rng ~num_vars:60 ~num_clauses:258 ~k:3 in
  let outcome, st = Dpll.solve ~max_calls:3 f in
  match outcome with
  | Dpll.Aborted -> check bool_t "counted" true (st.Dpll.recursive_calls >= 3)
  | Dpll.Sat | Dpll.Unsat ->
    (* solved within 3 calls: acceptable, nothing to check *)
    ()

(* QCheck helpers, shared by the preprocessing and solver properties. *)
let qcheck_case ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let random_formula_gen =
  QCheck2.Gen.(
    let* num_vars = int_range 3 12 in
    let* ratio_pct = int_range 100 700 in
    let* seed = int_bound 1_000_000 in
    return (num_vars, ratio_pct, seed))

let make_formula (num_vars, ratio_pct, seed) =
  let rng = Random.State.make [| seed |] in
  let num_clauses = max 1 (num_vars * ratio_pct / 100) in
  Random_sat.fixed_length rng ~num_vars ~num_clauses ~k:(min 3 num_vars)

(* ------------------------------------------------------------------ *)
(* Clause arena                                                        *)
(* ------------------------------------------------------------------ *)

let arena_gen =
  QCheck2.Gen.(
    let* n = int_range 1 60 in
    let* seed = int_bound 1_000_000 in
    return (n, seed))

let prop_arena_roundtrip =
  (* Add -> iterate -> kill some -> compact -> iterate: iteration returns
     exactly the live clauses in address order with literals, learnt flags
     and activities intact, and the remap sends every dead cref to
     [Cref.none] and every live cref to its relocated twin. *)
  qcheck_case ~count:200 "arena round-trips clauses across compaction"
    arena_gen (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let mk _ =
        let len = 2 + Random.State.int rng 7 in
        Array.init len (fun _ -> Random.State.int rng 64)
      in
      let clauses = Array.init n mk in
      let a = Arena.create () in
      let crefs =
        Array.mapi (fun i c -> Arena.alloc a ~learnt:(i mod 2 = 0) c) clauses
      in
      Array.iteri (fun i c -> Arena.set_activity a c (float_of_int i)) crefs;
      (* Round-trip 1: everything still there, in order. *)
      let seen = ref [] in
      Arena.iter a (fun c -> seen := Arena.lits a c :: !seen);
      let trip1 = Array.of_list (List.rev !seen) in
      let live = Array.map (fun _ -> true) crefs in
      Array.iteri
        (fun i c ->
          if Random.State.int rng 3 = 0 then begin
            live.(i) <- false;
            Arena.kill a c
          end)
        crefs;
      let remap = Arena.compact a in
      let ok_remap =
        Array.for_all (fun x -> x)
          (Array.mapi
             (fun i c ->
               let c' = remap c in
               if not live.(i) then c' = Arena.Cref.none
               else
                 c' <> Arena.Cref.none
                 && Arena.lits a c' = clauses.(i)
                 && Arena.learnt a c' = (i mod 2 = 0)
                 && Arena.activity a c' = float_of_int i)
             crefs)
      in
      (* Round-trip 2: iteration sees exactly the live clauses, in order. *)
      let seen2 = ref [] in
      Arena.iter a (fun c -> seen2 := Arena.lits a c :: !seen2);
      let trip2 = Array.of_list (List.rev !seen2) in
      let expect2 =
        Array.of_list
          (List.filteri (fun i _ -> live.(i)) (Array.to_list clauses))
      in
      let n_live = Array.length expect2 in
      let n_live_learnt =
        Array.length
          (Array.of_list
             (List.filteri
                (fun i _ -> live.(i) && i mod 2 = 0)
                (Array.to_list clauses)))
      in
      trip1 = clauses && ok_remap && trip2 = expect2
      && Arena.num_clauses a = n_live
      && Arena.num_learnts a = n_live_learnt
      && Arena.wasted a = 0)

let test_arena_snapshot () =
  let a = Arena.create () in
  let c0 = Arena.alloc a ~learnt:false [| 0; 2 |] in
  let snap = Arena.mark a in
  let _c1 = Arena.alloc a ~learnt:true [| 1; 3; 5 |] in
  let _c2 = Arena.alloc a ~learnt:false [| 4; 6 |] in
  check int_t "3 clauses" 3 (Arena.num_clauses a);
  Arena.restore a snap;
  check int_t "back to 1" 1 (Arena.num_clauses a);
  check int_t "no learnts" 0 (Arena.num_learnts a);
  check bool_t "pre-mark clause intact" true (Arena.lits a c0 = [| 0; 2 |]);
  check bool_t "unit rejected" true
    (match Arena.alloc a ~learnt:false [| 7 |] with
     | exception Invalid_argument _ -> true
     | _ -> false)

(* ------------------------------------------------------------------ *)
(* Preprocessing                                                       *)
(* ------------------------------------------------------------------ *)

let formula_of nvars clause_lists =
  let f = Formula.create () in
  Formula.reserve f nvars;
  List.iter (Formula.add_clause f) clause_lists;
  f

let all_vars f = Array.init (Formula.num_vars f) (fun i -> i + 1)

let test_pre_taut_dup () =
  let f = formula_of 2 [ [ 1; -1 ]; [ 1; 2 ]; [ 2; 1 ] ] in
  let p = Preprocess.run ~frozen:(all_vars f) f in
  let st = Preprocess.stats p in
  check int_t "tautologies" 1 st.Preprocess.tautologies;
  check int_t "duplicates" 1 st.Preprocess.duplicates;
  check int_t "clauses after" 1 st.Preprocess.clauses_after;
  check bool_t "sat" false (Preprocess.is_unsat p)

let test_pre_subsumption () =
  let f = formula_of 3 [ [ 1 ]; [ 1; 2; 3 ] ] in
  let p = Preprocess.run ~frozen:(all_vars f) f in
  let st = Preprocess.stats p in
  check int_t "subsumed" 1 st.Preprocess.subsumed;
  check int_t "clauses after" 1 st.Preprocess.clauses_after

let test_pre_self_subsumption () =
  (* [1;2] resolved against [-1;2;3] strengthens the latter to [2;3]. *)
  let f = formula_of 3 [ [ 1; 2 ]; [ -1; 2; 3 ] ] in
  let p = Preprocess.run ~frozen:(all_vars f) f in
  let st = Preprocess.stats p in
  check bool_t "strengthened" true (st.Preprocess.strengthened >= 1);
  check int_t "clauses after" 2 st.Preprocess.clauses_after;
  check int_t "literals after" 4 st.Preprocess.literals_after

let test_pre_elimination_and_frozen () =
  let f = formula_of 3 [ [ 1; 3 ]; [ -3; 2 ] ] in
  (* 3 unfrozen: eliminated, leaving the single resolvent [1;2]. *)
  let p = Preprocess.run ~frozen:[| 1; 2 |] f in
  let st = Preprocess.stats p in
  check int_t "eliminated" 1 st.Preprocess.eliminated;
  check int_t "resolvents" 1 st.Preprocess.resolvents;
  check int_t "clauses after" 1 st.Preprocess.clauses_after;
  (* Everything frozen: nothing may be eliminated. *)
  let p2 = Preprocess.run ~frozen:(all_vars f) f in
  check int_t "frozen protected" 0 (Preprocess.stats p2).Preprocess.eliminated

let test_pre_reconstruct () =
  let f = formula_of 3 [ [ 1; 3 ]; [ -3; 2 ] ] in
  let p = Preprocess.run ~frozen:[| 1; 2 |] f in
  (* A model of the reduced formula ([1;2]) leaving the eliminated 3 to be
     reconstructed: 1=false forces 3=true, which forces nothing else. *)
  let m = Preprocess.reconstruct p [| false; false; true; false |] in
  check bool_t "original satisfied" true (model_satisfies f m);
  check bool_t "frozen 1 unchanged" false m.(1);
  check bool_t "frozen 2 unchanged" true m.(2)

let test_pre_unsat () =
  let f = formula_of 1 [ [ 1 ]; [ -1 ] ] in
  let p = Preprocess.run ~frozen:[||] f in
  check bool_t "unsat" true (Preprocess.is_unsat p)

let random_frozen_formula_gen =
  QCheck2.Gen.(
    let* params = random_formula_gen in
    let* frozen_pct = int_range 0 100 in
    return (params, frozen_pct))

let prop_preprocess_preserves_sat =
  qcheck_case ~count:200 "preprocess preserves satisfiability"
    random_frozen_formula_gen (fun ((num_vars, _, _) as params, frozen_pct) ->
      let f = make_formula params in
      let frozen =
        Array.init (num_vars * frozen_pct / 100) (fun i -> i + 1)
      in
      let p = Preprocess.run ~frozen f in
      if Preprocess.is_unsat p then not (brute_sat f)
      else
        match Cdcl.solve_formula (Preprocess.formula p) with
        | Cdcl.Sat, Some m, _ ->
          (* The reconstructed model must satisfy the original clause by
             clause, with frozen values passed through unchanged. *)
          let full = Preprocess.reconstruct p m in
          brute_sat f
          && model_satisfies f full
          && Array.for_all (fun v -> full.(v) = m.(v)) frozen
        | Cdcl.Unsat, None, _ -> not (brute_sat f)
        | _ -> false)

let prop_preprocess_incremental =
  (* The Session usage pattern: preprocess a Tseytin encoding with the
     interface frozen, then add constraints (output pins) afterwards. *)
  qcheck_case ~count:40 "preprocess + later pins (c17)"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let c = Fl_netlist.Bench_suite.c17 () in
      let f = Formula.create () in
      let enc = Fl_cnf.Tseytin.encode f c in
      let frozen =
        Array.append enc.Fl_cnf.Tseytin.input_vars enc.Fl_cnf.Tseytin.output_vars
      in
      let p = Preprocess.run ~frozen f in
      let rng = Random.State.make [| seed |] in
      let pins =
        Array.map
          (fun v -> if Random.State.bool rng then v else -v)
          enc.Fl_cnf.Tseytin.output_vars
      in
      let reduced = Preprocess.formula p in
      Array.iter (fun l -> Formula.add_clause reduced [ l ]) pins;
      Array.iter (fun l -> Formula.add_clause f [ l ]) pins;
      (not (Preprocess.is_unsat p))
      &&
      match Cdcl.solve_formula f, Cdcl.solve_formula reduced with
      | (Cdcl.Sat, _, _), (Cdcl.Sat, Some m, _) ->
        model_satisfies f (Preprocess.reconstruct p m)
      | (Cdcl.Unsat, _, _), (Cdcl.Unsat, _, _) -> true
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Inprocessing                                                        *)
(* ------------------------------------------------------------------ *)

let test_inp_failed_literal () =
  (* Probing 1 propagates 2 and 3, falsifying [¬2;¬3] — so ¬1 is a unit.
     No clause pair here admits self-subsuming resolution, so subsumption
     alone cannot find it; [¬1;4] makes 1 the highest-occurrence variable,
     so it is probed (and fails) before the shared-implication path can
     assign it. *)
  let f = formula_of 4 [ [ -1; 2 ]; [ -1; 3 ]; [ -1; 4 ]; [ -2; -3 ] ] in
  let ip = Inprocess.run ~scc:false ~xor:false ~elim:false ~frozen:(all_vars f) f in
  let st = Inprocess.stats ip in
  check bool_t "sat" false (Inprocess.is_unsat ip);
  check bool_t "failed literal found" true (st.Inprocess.failed_literals >= 1);
  (match Cdcl.solve_formula (Inprocess.formula ip) with
   | Cdcl.Sat, Some m, _ ->
     let full = Inprocess.reconstruct ip m in
     check bool_t "model satisfies original" true (model_satisfies f full);
     check bool_t "1 forced false" false full.(1)
   | _ -> Alcotest.fail "reduced formula should be sat")

let test_inp_scc_equivalence () =
  (* 1 ≡ 2 via the binary implication cycle; 2 is unfrozen, so it collapses
     into 1 and [2;3] is rewritten to [1;3]. *)
  let f = formula_of 3 [ [ 1; -2 ]; [ -1; 2 ]; [ 2; 3 ] ] in
  let ip =
    Inprocess.run ~probe:false ~xor:false ~elim:false ~frozen:[| 1; 3 |] f
  in
  let st = Inprocess.stats ip in
  check bool_t "sat" false (Inprocess.is_unsat ip);
  check int_t "collapsed" 1 st.Inprocess.equiv_collapsed;
  (* map_clause follows the substitution. *)
  check bool_t "map_clause substitutes" true
    (Inprocess.map_clause ip [| 2; 3 |] = Some [| 1; 3 |]);
  check bool_t "map_clause drops tautology" true
    (Inprocess.map_clause ip [| 2; -1 |] = None);
  (match Cdcl.solve_formula (Inprocess.formula ip) with
   | Cdcl.Sat, Some m, _ ->
     let full = Inprocess.reconstruct ip m in
     check bool_t "model satisfies original" true (model_satisfies f full);
     check bool_t "equivalence holds" true (full.(1) = full.(2))
   | _ -> Alcotest.fail "reduced formula should be sat")

let test_inp_xor_roundtrip () =
  (* The xor chain encoding (as emitted by encode_xor_chain / xor_out)
     leaves one 2^(k-1) clause block per stage; recovery must lift both
     stages to GF(2) rows. *)
  let f = Formula.create () in
  let a = Formula.fresh_var f in
  let b = Formula.fresh_var f in
  let c = Formula.fresh_var f in
  let t1 = Fl_cnf.Tseytin.xor_out f a b in
  let t2 = Fl_cnf.Tseytin.xor_out f t1 c in
  ignore t2;
  let ip =
    Inprocess.run ~probe:false ~scc:false ~elim:false ~frozen:[| a; b; c |] f
  in
  let st = Inprocess.stats ip in
  check bool_t "sat" false (Inprocess.is_unsat ip);
  check int_t "both stages recovered" 2 st.Inprocess.xor_rows;
  (* Pin the chain output and both inputs: unit reasoning through the
     recovered structure must force the remaining input. *)
  let g = Formula.create () in
  let a = Formula.fresh_var g in
  let b = Formula.fresh_var g in
  let c = Formula.fresh_var g in
  let t1 = Fl_cnf.Tseytin.xor_out g a b in
  let t2 = Fl_cnf.Tseytin.xor_out g t1 c in
  Formula.add_clause g [ t2 ];
  Formula.add_clause g [ a ];
  Formula.add_clause g [ -b ];
  let ip = Inprocess.run ~frozen:[| a; b; c |] g in
  check bool_t "pinned chain sat" false (Inprocess.is_unsat ip);
  (match Cdcl.solve_formula (Inprocess.formula ip) with
   | Cdcl.Sat, Some m, _ ->
     let full = Inprocess.reconstruct ip m in
     check bool_t "model satisfies original" true (model_satisfies g full);
     check bool_t "a" true full.(a);
     check bool_t "b" false full.(b);
     (* a ⊕ b ⊕ c = t2 = 1, so c = 0. *)
     check bool_t "c forced" false full.(c)
   | _ -> Alcotest.fail "reduced formula should be sat")

let test_inp_gauss_unsat () =
  (* a⊕b⊕c = 0, c⊕d⊕e = 0, a⊕b⊕d⊕e = 1: each XOR block is stable under
     subsumption (clauses of one block differ in two literals), and no
     single block is contradictory — only GF(2) elimination across the
     three rows (sum = "0 = 1") refutes it. *)
  let block3 vars rhs =
    (* clauses over [x;y;z] whose positive count p satisfies p ≡ 2+rhs. *)
    let x, y, z = (List.nth vars 0, List.nth vars 1, List.nth vars 2) in
    if rhs = 0 then
      [ [ -x; -y; -z ]; [ x; y; -z ]; [ x; -y; z ]; [ -x; y; z ] ]
    else [ [ x; y; z ]; [ x; -y; -z ]; [ -x; y; -z ]; [ -x; -y; z ] ]
  in
  let block4 vars =
    (* w⊕x⊕y⊕z = 1: even positive count. *)
    let w, x, y, z =
      (List.nth vars 0, List.nth vars 1, List.nth vars 2, List.nth vars 3)
    in
    let clauses = ref [] in
    for m = 0 to 15 do
      let p = (m land 1) + (m lsr 1 land 1) + (m lsr 2 land 1) + (m lsr 3 land 1) in
      if p land 1 = 0 then
        clauses :=
          [
            (if m land 1 = 1 then w else -w);
            (if m land 2 = 2 then x else -x);
            (if m land 4 = 4 then y else -y);
            (if m land 8 = 8 then z else -z);
          ]
          :: !clauses
    done;
    !clauses
  in
  let f =
    formula_of 5
      (block3 [ 1; 2; 3 ] 0 @ block3 [ 3; 4; 5 ] 0 @ block4 [ 1; 2; 4; 5 ])
  in
  let ip =
    Inprocess.run ~probe:false ~scc:false ~elim:false ~frozen:(all_vars f) f
  in
  check bool_t "unsat" true (Inprocess.is_unsat ip);
  check int_t "all rows recovered" 3 (Inprocess.stats ip).Inprocess.xor_rows

let prop_inprocess_pass pass_name ~probe ~scc ~xor ~elim =
  qcheck_case ~count:150
    (Printf.sprintf "inprocess (%s) preserves satisfiability" pass_name)
    random_frozen_formula_gen (fun ((num_vars, _, _) as params, frozen_pct) ->
      let f = make_formula params in
      let frozen =
        Array.init (num_vars * frozen_pct / 100) (fun i -> i + 1)
      in
      let ip = Inprocess.run ~probe ~scc ~xor ~elim ~frozen f in
      if Inprocess.is_unsat ip then not (brute_sat f)
      else
        match Cdcl.solve_formula (Inprocess.formula ip) with
        | Cdcl.Sat, Some m, _ ->
          let full = Inprocess.reconstruct ip m in
          brute_sat f
          && model_satisfies f full
          && Array.for_all (fun v -> full.(v) = m.(v)) frozen
        | Cdcl.Unsat, None, _ -> not (brute_sat f)
        | _ -> false)

let prop_inprocess_probe =
  prop_inprocess_pass "probing" ~probe:true ~scc:false ~xor:false ~elim:false

let prop_inprocess_scc =
  prop_inprocess_pass "scc" ~probe:false ~scc:true ~xor:false ~elim:false

let prop_inprocess_xor =
  prop_inprocess_pass "xor/gauss" ~probe:false ~scc:false ~xor:true ~elim:false

let prop_inprocess_all =
  prop_inprocess_pass "all passes" ~probe:true ~scc:true ~xor:true ~elim:true

let prop_inprocess_map_clause =
  (* Learnt-replay soundness: any clause implied by the original formula,
     mapped onto the reduced space, must keep the reduced formula
     equisatisfiable.  Implied clauses are simulated by extending true
     clauses of a brute-force model (or skipping unsat instances). *)
  qcheck_case ~count:100 "inprocess map_clause keeps models"
    random_frozen_formula_gen (fun ((num_vars, _, _) as params, frozen_pct) ->
      let f = make_formula params in
      let frozen =
        Array.init (num_vars * frozen_pct / 100) (fun i -> i + 1)
      in
      let ip = Inprocess.run ~frozen f in
      if Inprocess.is_unsat ip then not (brute_sat f)
      else begin
        let reduced = Inprocess.formula ip in
        (* Map every original clause (each trivially implied) and add the
           survivors; satisfiability must not change. *)
        Formula.iter_clauses f (fun c ->
            match Inprocess.map_clause ip c with
            | Some c' when Array.length c' > 0 ->
              Formula.add_clause reduced (Array.to_list c')
            | _ -> ());
        match Cdcl.solve_formula reduced with
        | Cdcl.Sat, Some m, _ ->
          brute_sat f && model_satisfies f (Inprocess.reconstruct ip m)
        | Cdcl.Unsat, None, _ -> not (brute_sat f)
        | _ -> false
      end)

(* ------------------------------------------------------------------ *)
(* Random k-SAT + cross-checking                                       *)
(* ------------------------------------------------------------------ *)

let test_random_sat_shape () =
  let rng = Random.State.make [| 1 |] in
  let f = Random_sat.fixed_length rng ~num_vars:20 ~num_clauses:50 ~k:3 in
  check int_t "clauses" 50 (Formula.num_clauses f);
  check int_t "vars" 20 (Formula.num_vars f);
  Fl_cnf.Formula.iter_clauses f (fun c ->
      check int_t "k=3" 3 (Array.length c);
      (* distinct variables in each clause *)
      let vars = Array.map abs c in
      Array.sort compare vars;
      check bool_t "distinct" true (vars.(0) <> vars.(1) && vars.(1) <> vars.(2)))

let test_phase_transition_shape () =
  (* The paper's Fig. 1: the DPLL-calls curve must peak inside the 3..6
     band, dominating both the under- and over-constrained regimes. *)
  let rng = Random.State.make [| 9 |] in
  let sweep =
    Random_sat.ratio_sweep rng ~num_vars:36 ~k:3 ~ratios:[ 2.0; 4.3; 8.0 ]
      ~samples:21
  in
  match sweep with
  | [ (_, low, satfrac_low); (_, peak, _); (_, high, satfrac_high) ] ->
    check bool_t "peak >= under-constrained" true (peak >= low);
    check bool_t "peak >= over-constrained" true (peak >= high);
    check bool_t "under-constrained mostly sat" true (satfrac_low > 0.8);
    check bool_t "over-constrained mostly unsat" true (satfrac_high < 0.2)
  | _ -> Alcotest.fail "sweep shape"

(* ------------------------------------------------------------------ *)
(* Properties: CDCL and DPLL agree with brute force                    *)
(* ------------------------------------------------------------------ *)

let prop_cdcl_correct =
  qcheck_case ~count:200 "cdcl = brute force" random_formula_gen (fun params ->
      let f = make_formula params in
      let outcome, model, _ = Cdcl.solve_formula f in
      match outcome, model with
      | Cdcl.Sat, Some m -> brute_sat f && model_satisfies f m
      | Cdcl.Unsat, None -> not (brute_sat f)
      | _ -> false)

let prop_dpll_correct =
  qcheck_case ~count:150 "dpll = brute force" random_formula_gen (fun params ->
      let f = make_formula params in
      let outcome, _ = Dpll.solve f in
      match outcome with
      | Dpll.Sat -> brute_sat f
      | Dpll.Unsat -> not (brute_sat f)
      | Dpll.Aborted -> false)

let prop_cdcl_dpll_agree =
  qcheck_case ~count:100 "cdcl agrees with dpll" random_formula_gen (fun params ->
      let f = make_formula params in
      let c, _, _ = Cdcl.solve_formula f in
      let d, _ = Dpll.solve f in
      match c, d with
      | Cdcl.Sat, Dpll.Sat | Cdcl.Unsat, Dpll.Unsat -> true
      | _ -> false)

let prop_cdcl_assumption_consistency =
  (* If sat under assumption l, the model must satisfy l. *)
  qcheck_case ~count:100 "assumption in model" random_formula_gen (fun params ->
      let f = make_formula params in
      let s = Cdcl.of_formula f in
      match Cdcl.solve ~assumptions:[ 1 ] s with
      | Cdcl.Sat -> Cdcl.value s 1
      | Cdcl.Unsat ->
        (* then adding the unit clause must also be unsat *)
        Cdcl.add_clause s [ 1 ];
        Cdcl.solve s = Cdcl.Unsat
      | Cdcl.Unknown -> false)

let prop_cdcl_circuit_reference =
  (* Post-refactor solver vs the untouched DPLL reference on the circuit
     suite: a Tseytin-encoded c17 with random input/output pins must get
     the same sat/unsat answer, and every Sat model must satisfy the
     encoding clause by clause.  This is the layout refactor's
     end-to-end guard — packed literals, byte assignments, blocking
     literals and arena compaction all sit on this path. *)
  qcheck_case ~count:60 "cdcl matches dpll on pinned c17"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let c = Fl_netlist.Bench_suite.c17 () in
      let f = Formula.create () in
      let enc = Fl_cnf.Tseytin.encode f c in
      let rng = Random.State.make [| seed |] in
      Array.iter
        (fun v -> Formula.add_clause f [ (if Random.State.bool rng then v else -v) ])
        enc.Fl_cnf.Tseytin.output_vars;
      Array.iter
        (fun v ->
          if Random.State.int rng 3 = 0 then
            Formula.add_clause f [ (if Random.State.bool rng then v else -v) ])
        enc.Fl_cnf.Tseytin.input_vars;
      let outcome, model, _ = Cdcl.solve_formula f in
      let d, _ = Dpll.solve f in
      match outcome, model, d with
      | Cdcl.Sat, Some m, Dpll.Sat -> model_satisfies f m
      | Cdcl.Unsat, None, Dpll.Unsat -> true
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Portfolio                                                           *)
(* ------------------------------------------------------------------ *)

module Portfolio = Fl_sat.Portfolio

let portfolio_of_formula spec f =
  let t = Portfolio.create spec in
  Portfolio.ensure_vars t (Formula.num_vars f);
  Formula.iter_clauses f (Portfolio.add_clause_a t);
  t

let prop_portfolio_matches_brute =
  (* Racing three diverse members across domains must still decide every
     instance like brute force, and any Sat model must check out. *)
  qcheck_case ~count:60 "portfolio race = brute force" random_formula_gen
    (fun params ->
      let f = make_formula params in
      let spec = { Portfolio.default_spec with Portfolio.workers = 3 } in
      let t = portfolio_of_formula spec f in
      match Portfolio.solve t with
      | Cdcl.Sat -> brute_sat f && model_satisfies f (Portfolio.model t)
      | Cdcl.Unsat -> not (brute_sat f)
      | Cdcl.Unknown -> false)

let prop_portfolio_det_reproducible =
  (* Deterministic mode spawns no domains and must be bit-for-bit
     reproducible: two runs of the same spec agree on outcome, model and
     every stats field.  With [seed mod workers = 0] the single member
     runs the base configuration, so the run also equals the plain
     sequential Cdcl reference exactly. *)
  qcheck_case ~count:60 "deterministic portfolio reproducible"
    QCheck2.Gen.(pair random_formula_gen (int_bound 5))
    (fun (params, seed) ->
      let f = make_formula params in
      let spec =
        { Portfolio.default_spec with
          Portfolio.workers = 3; seed; deterministic = true }
      in
      let run () =
        let t = portfolio_of_formula spec f in
        let o = Portfolio.solve t in
        let m = match o with Cdcl.Sat -> Some (Portfolio.model t) | _ -> None in
        o, m, Portfolio.stats t
      in
      let o1, m1, s1 = run () in
      let o2, m2, s2 = run () in
      let reproducible = o1 = o2 && m1 = m2 && s1 = s2 in
      let matches_reference =
        if seed mod 3 <> 0 then true
        else begin
          let rc, rm, rs = Cdcl.solve_formula f in
          o1 = rc && m1 = rm && s1 = rs
        end
      in
      reproducible && matches_reference)

let prop_portfolio_cube_matches_brute =
  (* Cube-and-conquer: 2^2 sign cubes over variables 1 and 2; any Sat cube
     decides Sat, all-Unsat decides Unsat.  Must agree with brute force. *)
  qcheck_case ~count:60 "cube-and-conquer = brute force" random_formula_gen
    (fun params ->
      let f = make_formula params in
      let spec =
        { Portfolio.default_spec with
          Portfolio.workers = 2; cube_depth = 2; cube_vars = [| 1; 2 |] }
      in
      let t = portfolio_of_formula spec f in
      match Portfolio.solve t with
      | Cdcl.Sat -> brute_sat f && model_satisfies f (Portfolio.model t)
      | Cdcl.Unsat -> not (brute_sat f)
      | Cdcl.Unknown -> false)

let prop_portfolio_incremental_sharing_sound =
  (* The learnt-clause exchange imports across members at the solve
     boundary; an incremental session (solve, add the rest of the
     clauses, solve again) must stay correct afterwards — shared learnts
     are consequences of the common database, never of assumptions. *)
  qcheck_case ~count:40 "clause sharing keeps incremental solves sound"
    random_formula_gen
    (fun params ->
      let f = make_formula params in
      let clauses = Formula.clauses f in
      let half = Array.length clauses / 2 in
      let spec = { Portfolio.default_spec with Portfolio.workers = 3 } in
      let t = Portfolio.create spec in
      Portfolio.ensure_vars t (Formula.num_vars f);
      Array.iteri
        (fun i c -> if i < half then Portfolio.add_clause_a t c)
        clauses;
      (* First race under an assumption: learnts get exchanged here. *)
      ignore (Portfolio.solve ~assumptions:[ 1 ] t);
      Array.iteri
        (fun i c -> if i >= half then Portfolio.add_clause_a t c)
        clauses;
      match Portfolio.solve t with
      | Cdcl.Sat -> brute_sat f && model_satisfies f (Portfolio.model t)
      | Cdcl.Unsat -> not (brute_sat f)
      | Cdcl.Unknown -> false)

let test_portfolio_member_configs_diverse () =
  let spec = { Portfolio.default_spec with Portfolio.workers = 6; seed = 7 } in
  let c0 = Portfolio.member_config spec 0 in
  check bool_t "member 0 is the base config" true
    (c0 = spec.Portfolio.base_config);
  (* every non-base member differs from the base in seed at least *)
  for i = 1 to 5 do
    let ci = Portfolio.member_config spec i in
    check bool_t "diversified" true (ci <> c0)
  done

let test_portfolio_backend_conforms () =
  (* The first-class backend must slot into Solver_intf consumers. *)
  let spec = { Portfolio.default_spec with Portfolio.workers = 2 } in
  let (module B : Fl_sat.Solver_intf.S) = Portfolio.backend spec in
  let f = Formula.create () in
  ignore (Formula.fresh_vars f 3);
  Formula.add_clause f [ 1; 2 ];
  Formula.add_clause f [ -1; 2 ];
  Formula.add_clause f [ -2; 3 ];
  let s = Fl_sat.Solver_intf.load (module B) f in
  (match B.solve s with
   | Cdcl.Sat -> check bool_t "2 then 3" true (B.value s 2 && B.value s 3)
   | _ -> Alcotest.fail "expected Sat");
  check int_t "vars" 3 (B.num_vars s)

let test_portfolio_spec_validation () =
  let bad spec =
    match Portfolio.create spec with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  check bool_t "workers >= 1" true
    (bad { Portfolio.default_spec with Portfolio.workers = 0 });
  check bool_t "cube_depth bounded" true
    (bad { Portfolio.default_spec with Portfolio.cube_depth = 17 });
  check bool_t "share_cap >= 0" true
    (bad { Portfolio.default_spec with Portfolio.share_cap = -1 })

let () =
  Alcotest.run "sat"
    [
      ( "cdcl",
        [
          Alcotest.test_case "trivial sat" `Quick test_cdcl_trivial_sat;
          Alcotest.test_case "trivial unsat" `Quick test_cdcl_trivial_unsat;
          Alcotest.test_case "unit chain" `Quick test_cdcl_units_chain;
          Alcotest.test_case "pigeonhole unsat" `Quick test_cdcl_pigeonhole;
          Alcotest.test_case "pigeonhole sat" `Quick test_cdcl_pigeonhole_sat_when_fits;
          Alcotest.test_case "assumptions" `Quick test_cdcl_assumptions;
          Alcotest.test_case "incremental" `Quick test_cdcl_incremental;
          Alcotest.test_case "budget" `Quick test_cdcl_budget;
          Alcotest.test_case "stats" `Quick test_cdcl_stats_accumulate;
          Alcotest.test_case "db reduction" `Quick test_cdcl_survives_db_reduction;
          Alcotest.test_case "level0 unsat" `Quick test_cdcl_empty_clause_via_simplification;
          Alcotest.test_case "tautology" `Quick test_cdcl_duplicate_and_tautology;
          Alcotest.test_case "binary watch rebuild" `Quick
            test_cdcl_binary_watch_rebuild;
        ] );
      ( "arena",
        [
          prop_arena_roundtrip;
          Alcotest.test_case "snapshot + restore" `Quick test_arena_snapshot;
        ] );
      ( "dpll",
        [
          Alcotest.test_case "trivial" `Quick test_dpll_trivial;
          Alcotest.test_case "unsat" `Quick test_dpll_unsat;
          Alcotest.test_case "pure literal" `Quick test_dpll_pure_literal;
          Alcotest.test_case "abort" `Quick test_dpll_abort;
        ] );
      ( "preprocess",
        [
          Alcotest.test_case "tautology + duplicate" `Quick test_pre_taut_dup;
          Alcotest.test_case "subsumption" `Quick test_pre_subsumption;
          Alcotest.test_case "self-subsumption" `Quick test_pre_self_subsumption;
          Alcotest.test_case "elimination + frozen" `Quick
            test_pre_elimination_and_frozen;
          Alcotest.test_case "reconstruction" `Quick test_pre_reconstruct;
          Alcotest.test_case "unsat" `Quick test_pre_unsat;
          prop_preprocess_preserves_sat;
          prop_preprocess_incremental;
        ] );
      ( "inprocess",
        [
          Alcotest.test_case "failed literal" `Quick test_inp_failed_literal;
          Alcotest.test_case "scc equivalence" `Quick test_inp_scc_equivalence;
          Alcotest.test_case "xor round-trip" `Quick test_inp_xor_roundtrip;
          Alcotest.test_case "gauss unsat" `Quick test_inp_gauss_unsat;
          prop_inprocess_probe;
          prop_inprocess_scc;
          prop_inprocess_xor;
          prop_inprocess_all;
          prop_inprocess_map_clause;
        ] );
      ( "random_sat",
        [
          Alcotest.test_case "shape" `Quick test_random_sat_shape;
          Alcotest.test_case "phase transition" `Slow test_phase_transition_shape;
        ] );
      ( "properties",
        [
          prop_cdcl_correct;
          prop_dpll_correct;
          prop_cdcl_dpll_agree;
          prop_cdcl_assumption_consistency;
          prop_cdcl_circuit_reference;
        ] );
      ( "portfolio",
        [
          prop_portfolio_matches_brute;
          prop_portfolio_det_reproducible;
          prop_portfolio_cube_matches_brute;
          prop_portfolio_incremental_sharing_sound;
          Alcotest.test_case "member configs diverse" `Quick
            test_portfolio_member_configs_diverse;
          Alcotest.test_case "backend conforms" `Quick
            test_portfolio_backend_conforms;
          Alcotest.test_case "spec validation" `Quick
            test_portfolio_spec_validation;
        ] );
    ]
